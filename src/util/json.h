// Minimal JSON emission and parsing.
//
// Emission: every experiment harness appends flat rows to a
// BENCH_<name>.json file (JSON Lines: one object per line) so the perf
// trajectory of the repo can be tracked across PRs by dumb tooling — no
// nesting. Only the value shapes the benches need are supported:
// strings, bools, integers and doubles.
//
// Parsing: JsonValue is a small recursive-descent reader for the
// documents this library itself writes — deadlock certificates and
// validation-campaign repro dumps (src/valid/). Numbers keep their
// source token so full-range 64-bit seeds round-trip exactly instead of
// being squeezed through a double.
#pragma once

#include <cstdint>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

namespace nocdr {

/// Escapes \p raw for use inside a JSON string literal (quotes excluded).
std::string JsonEscape(const std::string& raw);

/// One flat JSON object; keys keep insertion order.
class JsonObject {
 public:
  JsonObject& Set(const std::string& key, const std::string& value);
  JsonObject& Set(const std::string& key, const char* value);
  JsonObject& Set(const std::string& key, bool value);
  JsonObject& Set(const std::string& key, double value);
  JsonObject& Set(const std::string& key, std::uint64_t value);
  JsonObject& Set(const std::string& key, std::int64_t value);
  /// Catch-all for the zoo of integer types (std::size_t, int, ...).
  template <typename Int>
    requires std::is_integral_v<Int>
  JsonObject& Set(const std::string& key, Int value) {
    if constexpr (std::is_signed_v<Int>) {
      return Set(key, static_cast<std::int64_t>(value));
    } else {
      return Set(key, static_cast<std::uint64_t>(value));
    }
  }

  /// Splices \p json_fragment in verbatim as the value of \p key — the
  /// one escape hatch from the flat-rows-only rule, for embedding a
  /// document this library itself rendered (e.g. a certificate object
  /// inside a serve response). The caller owns the fragment's validity.
  JsonObject& SetRaw(const std::string& key, const std::string& json_fragment);

  /// Renders {"k":v,...}.
  [[nodiscard]] std::string Dump() const;

 private:
  /// Pre-rendered key/value fragments.
  std::vector<std::pair<std::string, std::string>> fields_;
};

/// A parsed JSON value.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  /// Parses one JSON document (surrounding whitespace allowed). Throws
  /// InvalidModelError with an offset-annotated message on malformed
  /// input or trailing garbage.
  static JsonValue Parse(const std::string& text);

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool IsNull() const { return kind_ == Kind::kNull; }

  /// Scalar accessors; each throws InvalidModelError when the value has
  /// the wrong kind (or, for the integer readers, does not fit).
  [[nodiscard]] bool AsBool() const;
  [[nodiscard]] double AsDouble() const;
  [[nodiscard]] std::uint64_t AsUint() const;
  [[nodiscard]] std::int64_t AsInt() const;
  [[nodiscard]] const std::string& AsString() const;

  /// Array elements; throws unless kind() == kArray.
  [[nodiscard]] const std::vector<JsonValue>& Items() const;

  /// Object member lookup: Find returns nullptr when absent, At throws.
  /// Both throw unless kind() == kObject.
  [[nodiscard]] const JsonValue* Find(const std::string& key) const;
  [[nodiscard]] const JsonValue& At(const std::string& key) const;

  /// Object members in source order; throws unless kind() == kObject.
  [[nodiscard]] const std::vector<std::pair<std::string, JsonValue>>&
  Members() const;

 private:
  class Parser;

  Kind kind_ = Kind::kNull;
  /// Decoded string for kString, source token for kNumber.
  std::string scalar_;
  bool bool_ = false;
  std::vector<JsonValue> items_;                          // kArray
  std::vector<std::pair<std::string, JsonValue>> members_;  // kObject
};

/// Accumulates rows for one bench and writes them as BENCH_<name>.json
/// (JSON Lines) in the current working directory.
class BenchJsonWriter {
 public:
  explicit BenchJsonWriter(std::string bench_name);

  void AddRow(JsonObject row);

  [[nodiscard]] std::size_t RowCount() const { return rows_.size(); }

  /// Writes the file; returns its path, or an empty string on I/O error.
  std::string Write() const;

 private:
  std::string bench_name_;
  std::vector<std::string> rows_;  // pre-rendered lines
};

}  // namespace nocdr
