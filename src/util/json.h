// Minimal JSON emission for benchmark row tracking.
//
// Every experiment harness appends flat rows to a BENCH_<name>.json file
// (JSON Lines: one object per line) so the perf trajectory of the repo
// can be tracked across PRs by dumb tooling — no parser dependencies,
// no nesting. Only the value shapes the benches need are supported:
// strings, bools, integers and doubles.
#pragma once

#include <cstdint>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

namespace nocdr {

/// Escapes \p raw for use inside a JSON string literal (quotes excluded).
std::string JsonEscape(const std::string& raw);

/// One flat JSON object; keys keep insertion order.
class JsonObject {
 public:
  JsonObject& Set(const std::string& key, const std::string& value);
  JsonObject& Set(const std::string& key, const char* value);
  JsonObject& Set(const std::string& key, bool value);
  JsonObject& Set(const std::string& key, double value);
  JsonObject& Set(const std::string& key, std::uint64_t value);
  JsonObject& Set(const std::string& key, std::int64_t value);
  /// Catch-all for the zoo of integer types (std::size_t, int, ...).
  template <typename Int>
    requires std::is_integral_v<Int>
  JsonObject& Set(const std::string& key, Int value) {
    if constexpr (std::is_signed_v<Int>) {
      return Set(key, static_cast<std::int64_t>(value));
    } else {
      return Set(key, static_cast<std::uint64_t>(value));
    }
  }

  /// Renders {"k":v,...}.
  [[nodiscard]] std::string Dump() const;

 private:
  /// Pre-rendered key/value fragments.
  std::vector<std::pair<std::string, std::string>> fields_;
};

/// Accumulates rows for one bench and writes them as BENCH_<name>.json
/// (JSON Lines) in the current working directory.
class BenchJsonWriter {
 public:
  explicit BenchJsonWriter(std::string bench_name);

  void AddRow(JsonObject row);

  [[nodiscard]] std::size_t RowCount() const { return rows_.size(); }

  /// Writes the file; returns its path, or an empty string on I/O error.
  std::string Write() const;

 private:
  std::string bench_name_;
  std::vector<std::string> rows_;  // pre-rendered lines
};

}  // namespace nocdr
