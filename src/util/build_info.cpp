#include "util/build_info.h"

// CMake defines these for this translation unit only
// (set_source_files_properties in CMakeLists.txt). The fallbacks keep
// the file compiling under any other build driver.
#ifndef NOCDR_GIT_SHA
#define NOCDR_GIT_SHA "unknown"
#endif
#ifndef NOCDR_COMPILER_ID
#define NOCDR_COMPILER_ID "unknown"
#endif
#ifndef NOCDR_CXX_FLAGS
#define NOCDR_CXX_FLAGS ""
#endif
#ifndef NOCDR_BUILD_TYPE
#define NOCDR_BUILD_TYPE ""
#endif

namespace nocdr {

const BuildInfo& GetBuildInfo() {
  static const BuildInfo info{
      NOCDR_GIT_SHA,
      NOCDR_COMPILER_ID,
      NOCDR_CXX_FLAGS,
      NOCDR_BUILD_TYPE,
  };
  return info;
}

JsonObject BuildProvenanceJson() {
  const BuildInfo& info = GetBuildInfo();
  JsonObject json;
  json.Set("git_sha", info.git_sha)
      .Set("compiler", info.compiler)
      .Set("compiler_flags", info.compiler_flags)
      .Set("build_type", info.build_type);
  return json;
}

std::string BuildInfoLine(const std::string& tool_name) {
  const BuildInfo& info = GetBuildInfo();
  std::string line = tool_name + " " + info.git_sha + " (" + info.compiler;
  if (!info.build_type.empty()) {
    line += ", " + info.build_type;
  }
  line += ")";
  return line;
}

}  // namespace nocdr
