// Deterministic pseudo-random number generation.
//
// All stochastic pieces of the library (benchmark traffic synthesis, the
// simulator's injection processes, randomized property tests) draw from
// this generator so that every experiment is reproducible from a seed.
// The engine is SplitMix64: tiny state, excellent statistical quality for
// our purposes, and identical output on every platform (unlike
// std::default_random_engine / std::uniform_int_distribution, whose
// behaviour is implementation-defined).
#pragma once

#include <cstdint>
#include <vector>

namespace nocdr {

/// Deterministic 64-bit PRNG (SplitMix64).
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  /// Next raw 64-bit value.
  std::uint64_t Next();

  /// Uniform integer in [0, bound). \p bound must be > 0.
  std::uint64_t NextBelow(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t NextInRange(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Bernoulli trial with success probability \p p (clamped to [0,1]).
  bool NextBool(double p);

  /// Fisher-Yates shuffle of \p items, deterministic given the seed.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(NextBelow(i));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// Derives an independent child generator; used to decorrelate
  /// sub-streams (e.g. per-flow injection processes).
  Rng Fork();

 private:
  std::uint64_t state_;
};

}  // namespace nocdr
