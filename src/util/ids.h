// Strongly-typed integer identifiers for the NoC object model.
//
// Every entity in the library (switch, core, physical link, channel, flow)
// is referred to by a small dense integer index into the owning container.
// Raw std::size_t indices are easy to mix up across entity kinds, so each
// kind gets its own wrapper type. The wrappers are trivially copyable,
// totally ordered and hashable, and support explicit round-trips to the
// underlying integer via value().
#pragma once

#include <compare>
#include <type_traits>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <ostream>

namespace nocdr {

/// CRTP base for a strongly-typed dense index.
///
/// \tparam Tag  The derived identifier type (e.g. SwitchId); used only to
///              make distinct instantiations incompatible with each other.
template <typename Tag>
class DenseId {
 public:
  using value_type = std::uint32_t;

  /// Sentinel for "no object"; default construction yields an invalid id.
  static constexpr value_type kInvalid =
      std::numeric_limits<value_type>::max();

  constexpr DenseId() = default;
  template <typename Int>
    requires std::is_integral_v<Int>
  constexpr explicit DenseId(Int v) : value_(static_cast<value_type>(v)) {}

  /// The raw index. Only meaningful for valid ids.
  [[nodiscard]] constexpr value_type value() const { return value_; }

  [[nodiscard]] constexpr bool valid() const { return value_ != kInvalid; }

  friend constexpr auto operator<=>(DenseId, DenseId) = default;

 private:
  value_type value_ = kInvalid;
};

template <typename Tag>
std::ostream& operator<<(std::ostream& os, DenseId<Tag> id) {
  if (id.valid()) {
    return os << id.value();
  }
  return os << "<invalid>";
}

/// Identifier of a switch (router) in the topology graph.
struct SwitchId : DenseId<SwitchId> {
  using DenseId::DenseId;
};

/// Identifier of a core (IP block) in the communication graph.
struct CoreId : DenseId<CoreId> {
  using DenseId::DenseId;
};

/// Identifier of a directed physical link between two switches.
struct LinkId : DenseId<LinkId> {
  using DenseId::DenseId;
};

/// Identifier of a channel: one (physical link, virtual channel) pair.
/// Channels are the vertices of the channel dependency graph.
struct ChannelId : DenseId<ChannelId> {
  using DenseId::DenseId;
};

/// Identifier of a communication flow (edge of the communication graph).
struct FlowId : DenseId<FlowId> {
  using DenseId::DenseId;
};

}  // namespace nocdr

namespace std {

template <>
struct hash<nocdr::SwitchId> {
  size_t operator()(nocdr::SwitchId id) const noexcept {
    return std::hash<nocdr::SwitchId::value_type>{}(id.value());
  }
};
template <>
struct hash<nocdr::CoreId> {
  size_t operator()(nocdr::CoreId id) const noexcept {
    return std::hash<nocdr::CoreId::value_type>{}(id.value());
  }
};
template <>
struct hash<nocdr::LinkId> {
  size_t operator()(nocdr::LinkId id) const noexcept {
    return std::hash<nocdr::LinkId::value_type>{}(id.value());
  }
};
template <>
struct hash<nocdr::ChannelId> {
  size_t operator()(nocdr::ChannelId id) const noexcept {
    return std::hash<nocdr::ChannelId::value_type>{}(id.value());
  }
};
template <>
struct hash<nocdr::FlowId> {
  size_t operator()(nocdr::FlowId id) const noexcept {
    return std::hash<nocdr::FlowId::value_type>{}(id.value());
  }
};

}  // namespace std
