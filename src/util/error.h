// Exception types and invariant-checking helpers used across the library.
#pragma once

#include <stdexcept>
#include <string>

namespace nocdr {

/// Raised when an input model violates a structural precondition
/// (dangling ids, discontiguous routes, malformed graphs, ...).
class InvalidModelError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Raised when an algorithm exceeds a safety bound (e.g. the deadlock
/// removal iteration cap). Indicates a heuristic livelock, never observed
/// on well-formed inputs but guarded against.
class AlgorithmLimitError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Throws InvalidModelError with \p message unless \p condition holds.
inline void Require(bool condition, const std::string& message) {
  if (!condition) {
    throw InvalidModelError(message);
  }
}

}  // namespace nocdr
