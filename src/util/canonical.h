// Canonical design rendering and content-addressed digesting.
//
// Several subsystems need one answer to "are these two designs the same
// certification problem?": the validation campaign's shrinker must dump
// repros that parse back to exactly the design it validated, and the
// certification service (src/serve) keys its cache by design content.
// Both go through the noc/io text format, which is the only
// representation that is independent of in-memory construction order —
// routes are stored as link:vc pairs, so channel numbering (which
// depends on the order VCs were added) never leaks into the text.
//
// Two canonicalization strengths live here:
//
//   * IoCanonicalize — the text round trip alone. Preserves flow order
//     (and therefore round-robin arbitration order), which is what a
//     simulation repro must keep. Hoisted from valid/shrink.
//   * CanonicalizeDesign — the round trip plus a canonical flow sort.
//     Certification (CDG acyclicity, the topological-order certificate)
//     is a property of the route *set*, not the flow declaration order,
//     so designs differing only in flow order are the same problem and
//     must digest identically. This is the cache key form.
//
// CanonicalDesignDigest hashes the canonical text together with the
// semantically relevant removal options, so one primitive defines the
// cache identity for valid/ and serve/ alike.
#pragma once

#include <cstdint>
#include <string>

#include "deadlock/removal.h"
#include "noc/design.h"

namespace nocdr {

/// Stable, diff-friendly rendering of a whole design (noc/io format).
std::string DesignText(const NocDesign& design);

/// Text round trip through noc/io: the parsed-back design is what a
/// dump consumer will actually reconstruct. Channel ids may be
/// renumbered by the round trip; flow order is preserved.
NocDesign IoCanonicalize(const NocDesign& design);

/// True when the io round trip reproduces \p design exactly (identical
/// text implies identical channel numbering, so identical simulation).
bool IsIoStable(const NocDesign& design);

/// A design in canonical form: flows sorted by (src, dst, bandwidth,
/// route as link:vc pairs), then rendered and parsed back so channel
/// numbering is the one any consumer of \p text reconstructs. The sort
/// never changes the route set, so the certificate of \p design is the
/// certificate of the original up to flow renaming.
struct CanonicalDesign {
  NocDesign design;
  std::string text;
};

/// Canonicalizes \p design (flow sort + io fixpoint). Deterministic;
/// idempotent (canonicalizing the result returns identical text).
/// Throws InvalidModelError if the text rendering fails to reach a
/// round-trip fixpoint (never observed; guards against io drift).
CanonicalDesign CanonicalizeDesign(const NocDesign& design);

/// Mixes the semantically relevant removal options into \p h:
/// cycle_policy, direction_policy, duplication and max_iterations.
/// RemovalEngine is deliberately excluded — the incremental and rebuild
/// engines produce bit-identical designs and certificates (the contract
/// property-tested by test_cdg_incremental), so both may share one
/// cache entry.
void DigestRemovalOptions(std::uint64_t& h, const RemovalOptions& options);

/// Content-addressed identity of one certification problem: FNV-1a over
/// the canonical text of \p design plus the semantically relevant
/// fields of \p options and whether treatment runs at all. Stable under
/// flow reordering, io round trips, comments/whitespace in the source
/// text and channel renumbering; distinct for distinct route sets,
/// topologies, bandwidths or option values.
std::uint64_t CanonicalDesignDigest(const NocDesign& design,
                                    const RemovalOptions& options,
                                    bool treat = true);

/// As above, but over an already-canonicalized text (avoids repeating
/// the canonicalization when the caller holds a CanonicalDesign).
std::uint64_t CanonicalTextDigest(const std::string& canonical_text,
                                  const RemovalOptions& options,
                                  bool treat = true);

}  // namespace nocdr
