#include "util/table.h"

#include <algorithm>
#include <cstdio>

namespace nocdr {

void TextTable::SetHeader(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TextTable::AddRow(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

namespace {

std::vector<std::size_t> ColumnWidths(
    const std::vector<std::string>& header,
    const std::vector<std::vector<std::string>>& rows) {
  std::size_t columns = header.size();
  for (const auto& row : rows) {
    columns = std::max(columns, row.size());
  }
  std::vector<std::size_t> widths(columns, 0);
  for (std::size_t c = 0; c < header.size(); ++c) {
    widths[c] = std::max(widths[c], header[c].size());
  }
  for (const auto& row : rows) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  return widths;
}

void PrintAligned(std::ostream& os, const std::vector<std::string>& row,
                  const std::vector<std::size_t>& widths) {
  for (std::size_t c = 0; c < widths.size(); ++c) {
    const std::string cell = c < row.size() ? row[c] : std::string();
    os << (c == 0 ? "| " : " | ");
    os << cell << std::string(widths[c] - cell.size(), ' ');
  }
  os << " |\n";
}

std::string CsvEscape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) {
    return cell;
  }
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') {
      out += "\"\"";
    } else {
      out += ch;
    }
  }
  out += '"';
  return out;
}

}  // namespace

void TextTable::Print(std::ostream& os) const {
  const auto widths = ColumnWidths(header_, rows_);
  if (!header_.empty()) {
    PrintAligned(os, header_, widths);
    std::size_t total = 1;
    for (std::size_t w : widths) {
      total += w + 3;
    }
    os << std::string(total, '-') << "\n";
  }
  for (const auto& row : rows_) {
    PrintAligned(os, row, widths);
  }
}

void TextTable::PrintCsv(std::ostream& os) const {
  auto emit = [&os](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) {
        os << ',';
      }
      os << CsvEscape(row[c]);
    }
    os << '\n';
  };
  if (!header_.empty()) {
    emit(header_);
  }
  for (const auto& row : rows_) {
    emit(row);
  }
}

std::string FormatDouble(double value, int digits) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", digits, value);
  return buffer;
}

}  // namespace nocdr
