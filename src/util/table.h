// Plain-text and CSV table rendering for benchmark harness output.
//
// Every experiment binary prints the series the paper reports; this helper
// keeps the formatting uniform: fixed-width aligned console tables plus an
// optional CSV dump for plotting.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace nocdr {

/// Accumulates rows of string cells and renders them aligned.
class TextTable {
 public:
  /// Sets the header row (column titles).
  void SetHeader(std::vector<std::string> header);

  /// Appends one data row; ragged rows are allowed and padded on render.
  void AddRow(std::vector<std::string> row);

  /// Number of data rows added so far.
  [[nodiscard]] std::size_t RowCount() const { return rows_.size(); }

  /// Renders an aligned, pipe-separated table.
  void Print(std::ostream& os) const;

  /// Renders RFC-4180-ish CSV (cells containing commas/quotes are quoted).
  void PrintCsv(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats \p value with \p digits digits after the decimal point.
std::string FormatDouble(double value, int digits);

}  // namespace nocdr
