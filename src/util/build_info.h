// Build provenance: which exact binary produced this artifact?
//
// Every durable artifact the repo emits — BENCH_*.json baselines, v2
// stats/metrics responses, `nocdr_serve --version` — carries the same
// four fields, stamped once here so the answers cannot drift between
// surfaces. The values are burned in at compile time via definitions
// CMake scopes to build_info.cpp (see CMakeLists.txt): the git sha is
// read at *configure* time, so an incremental rebuild after new
// commits can lag until the next configure — acceptable for
// provenance, which only needs to identify the build, not the
// worktree.
#pragma once

#include <string>

#include "util/json.h"

namespace nocdr {

struct BuildInfo {
  std::string git_sha;    // short sha, or "unknown" outside a checkout
  std::string compiler;   // e.g. "GNU 12.2.0"
  std::string compiler_flags;
  std::string build_type;  // e.g. "Release"; empty when unset
};

/// The process's burned-in build info (immutable, never destroyed).
const BuildInfo& GetBuildInfo();

/// {"git_sha":...,"compiler":...,"compiler_flags":...,"build_type":...}
/// — the fragment spliced into bench headers and serve responses.
JsonObject BuildProvenanceJson();

/// One-line human rendering for --version flags:
///   "<tool> <sha> (<compiler>, <build_type>)".
std::string BuildInfoLine(const std::string& tool_name);

}  // namespace nocdr
