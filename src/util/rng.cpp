#include "util/rng.h"

namespace nocdr {

std::uint64_t Rng::Next() {
  // SplitMix64 (Steele, Lea, Flood 2014). Public-domain constants.
  std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t Rng::NextBelow(std::uint64_t bound) {
  // Rejection sampling to avoid modulo bias; the loop terminates quickly
  // because the acceptance region covers at least half the range.
  const std::uint64_t limit = bound * (~0ULL / bound);
  std::uint64_t v = Next();
  while (v >= limit) {
    v = Next();
  }
  return v % bound;
}

std::int64_t Rng::NextInRange(std::int64_t lo, std::int64_t hi) {
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(NextBelow(span));
}

double Rng::NextDouble() {
  // 53 high-quality bits -> double in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::NextBool(double p) {
  if (p <= 0.0) {
    return false;
  }
  if (p >= 1.0) {
    return true;
  }
  return NextDouble() < p;
}

Rng Rng::Fork() { return Rng(Next() ^ 0xd1b54a32d192ed03ULL); }

}  // namespace nocdr
