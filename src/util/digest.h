// FNV-1a field digesting shared by the deterministic batch engines.
//
// SweepRunner and the validation campaign both summarize their rows as
// one 64-bit digest so "byte-identical across thread counts" is a
// single comparison. Both must keep using the same primitive — a drift
// between two private copies would silently change one digest format —
// so the helpers live here.
#pragma once

#include <cstdint>
#include <string>

namespace nocdr {

inline constexpr std::uint64_t kFnvOffsetBasis = 0xcbf29ce484222325ull;
inline constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

/// Mixes the 8 bytes of \p value into \p h (FNV-1a).
inline void DigestField(std::uint64_t& h, std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    h ^= (value >> (8 * i)) & 0xffu;
    h *= kFnvPrime;
  }
}

/// Mixes the bytes of \p value plus its length (so "ab","c" and
/// "a","bc" digest differently).
inline void DigestField(std::uint64_t& h, const std::string& value) {
  for (const char c : value) {
    h ^= static_cast<unsigned char>(c);
    h *= kFnvPrime;
  }
  DigestField(h, value.size());
}

}  // namespace nocdr
