#include "util/canonical.h"

#include <algorithm>
#include <numeric>
#include <sstream>
#include <vector>

#include "noc/io.h"
#include "util/digest.h"
#include "util/error.h"

namespace nocdr {

namespace {

/// Channel-numbering-independent sort key of one route: the (link, vc)
/// pairs the text format itself stores.
std::vector<std::pair<std::uint32_t, std::uint32_t>> RouteKey(
    const NocDesign& design, const Route& route) {
  std::vector<std::pair<std::uint32_t, std::uint32_t>> key;
  key.reserve(route.size());
  for (const ChannelId c : route) {
    const Channel& channel = design.topology.ChannelAt(c);
    key.emplace_back(channel.link.value(), channel.vc);
  }
  return key;
}

/// Rebuilds \p design with its flows (and routes) permuted into the
/// canonical order: ascending (src, dst, bandwidth, route). Topology,
/// cores and attachment are untouched, so all ids except FlowId stay
/// stable.
NocDesign SortFlows(const NocDesign& design) {
  const std::size_t flow_count = design.traffic.FlowCount();
  std::vector<std::size_t> order(flow_count);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a,
                                                   std::size_t b) {
    const Flow& fa = design.traffic.FlowAt(FlowId(a));
    const Flow& fb = design.traffic.FlowAt(FlowId(b));
    if (fa.src != fb.src) {
      return fa.src.value() < fb.src.value();
    }
    if (fa.dst != fb.dst) {
      return fa.dst.value() < fb.dst.value();
    }
    if (fa.bandwidth_mbps != fb.bandwidth_mbps) {
      return fa.bandwidth_mbps < fb.bandwidth_mbps;
    }
    return RouteKey(design, design.routes.RouteOf(FlowId(a))) <
           RouteKey(design, design.routes.RouteOf(FlowId(b)));
  });

  NocDesign out;
  out.name = design.name;
  out.topology = design.topology;
  out.attachment = design.attachment;
  for (std::size_t c = 0; c < design.traffic.CoreCount(); ++c) {
    out.traffic.AddCore(design.traffic.CoreName(CoreId(c)));
  }
  out.routes.Resize(flow_count);
  for (std::size_t i = 0; i < flow_count; ++i) {
    const Flow& flow = design.traffic.FlowAt(FlowId(order[i]));
    const FlowId f = out.traffic.AddFlow(flow.src, flow.dst,
                                         flow.bandwidth_mbps);
    out.routes.SetRoute(f, design.routes.RouteOf(FlowId(order[i])));
  }
  return out;
}

}  // namespace

std::string DesignText(const NocDesign& design) {
  std::ostringstream out;
  WriteDesign(out, design);
  return out.str();
}

NocDesign IoCanonicalize(const NocDesign& design) {
  std::istringstream in(DesignText(design));
  return ReadDesign(in);
}

bool IsIoStable(const NocDesign& design) {
  return DesignText(IoCanonicalize(design)) == DesignText(design);
}

CanonicalDesign CanonicalizeDesign(const NocDesign& design) {
  CanonicalDesign out;
  out.text = DesignText(SortFlows(design));
  // Drive the rendering to its round-trip fixpoint so a consumer who
  // parses the text and re-canonicalizes gets byte-identical text (and
  // therefore the same digest). One trip suffices in practice — the
  // format stores link:vc pairs, not channel ids — the loop guards
  // against io drift rather than doing expected work.
  for (int round = 0; round < 4; ++round) {
    std::istringstream in(out.text);
    out.design = ReadDesign(in);
    const std::string reparsed = DesignText(out.design);
    if (reparsed == out.text) {
      return out;
    }
    out.text = reparsed;
  }
  throw InvalidModelError(
      "CanonicalizeDesign: text rendering did not reach a round-trip "
      "fixpoint for design \"" +
      design.name + "\"");
}

void DigestRemovalOptions(std::uint64_t& h, const RemovalOptions& options) {
  DigestField(h, static_cast<std::uint64_t>(options.cycle_policy));
  DigestField(h, static_cast<std::uint64_t>(options.direction_policy));
  DigestField(h, static_cast<std::uint64_t>(options.duplication));
  DigestField(h, static_cast<std::uint64_t>(options.max_iterations));
}

std::uint64_t CanonicalDesignDigest(const NocDesign& design,
                                    const RemovalOptions& options,
                                    bool treat) {
  return CanonicalTextDigest(CanonicalizeDesign(design).text, options,
                             treat);
}

std::uint64_t CanonicalTextDigest(const std::string& canonical_text,
                                  const RemovalOptions& options,
                                  bool treat) {
  std::uint64_t h = kFnvOffsetBasis;
  DigestField(h, canonical_text);
  DigestRemovalOptions(h, options);
  DigestField(h, static_cast<std::uint64_t>(treat));
  return h;
}

}  // namespace nocdr
