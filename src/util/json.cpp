#include "util/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <fstream>

#include "util/build_info.h"
#include "util/error.h"

namespace nocdr {

std::string JsonEscape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

JsonObject& JsonObject::Set(const std::string& key, const std::string& value) {
  fields_.emplace_back(key, "\"" + JsonEscape(value) + "\"");
  return *this;
}

JsonObject& JsonObject::Set(const std::string& key, const char* value) {
  return Set(key, std::string(value));
}

JsonObject& JsonObject::SetRaw(const std::string& key,
                               const std::string& json_fragment) {
  fields_.emplace_back(key, json_fragment);
  return *this;
}

JsonObject& JsonObject::Set(const std::string& key, bool value) {
  fields_.emplace_back(key, value ? "true" : "false");
  return *this;
}

JsonObject& JsonObject::Set(const std::string& key, double value) {
  if (!std::isfinite(value)) {
    // JSON has no Inf/NaN; null is the conventional stand-in.
    fields_.emplace_back(key, "null");
    return *this;
  }
  // Shortest round-trip representation; deterministic for a given value.
  char buf[32];
  const auto result = std::to_chars(buf, buf + sizeof(buf), value);
  fields_.emplace_back(key, std::string(buf, result.ptr));
  return *this;
}

JsonObject& JsonObject::Set(const std::string& key, std::uint64_t value) {
  fields_.emplace_back(key, std::to_string(value));
  return *this;
}

JsonObject& JsonObject::Set(const std::string& key, std::int64_t value) {
  fields_.emplace_back(key, std::to_string(value));
  return *this;
}

std::string JsonObject::Dump() const {
  std::string out = "{";
  for (std::size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) {
      out += ",";
    }
    out += "\"" + JsonEscape(fields_[i].first) + "\":" + fields_[i].second;
  }
  out += "}";
  return out;
}

// ------------------------------------------------------------------ parsing

class JsonValue::Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  JsonValue ParseDocument() {
    JsonValue value = ParseValue();
    SkipWhitespace();
    Check(pos_ == text_.size(), "trailing characters after JSON value");
    return value;
  }

 private:
  void Check(bool ok, const std::string& what) const {
    if (!ok) {
      throw InvalidModelError("JsonValue::Parse: " + what + " at offset " +
                              std::to_string(pos_));
    }
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char Peek() {
    Check(pos_ < text_.size(), "unexpected end of input");
    return text_[pos_];
  }

  void Expect(char c) {
    Check(Peek() == c, std::string("expected '") + c + "'");
    ++pos_;
  }

  bool Consume(const char* literal) {
    const std::size_t len = std::char_traits<char>::length(literal);
    if (text_.compare(pos_, len, literal) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  JsonValue ParseValue() {
    // Recursion guard: arrays/objects nest one stack frame per level, so
    // a hostile document must fail cleanly instead of overflowing the
    // stack. No document this library writes nests anywhere near this.
    struct DepthGuard {
      explicit DepthGuard(Parser& p) : parser(p) { ++parser.depth_; }
      ~DepthGuard() { --parser.depth_; }
      Parser& parser;
    } guard(*this);
    Check(depth_ <= 256, "nesting too deep");
    SkipWhitespace();
    JsonValue v;
    switch (Peek()) {
      case '{': {
        v.kind_ = Kind::kObject;
        ++pos_;
        SkipWhitespace();
        if (Peek() == '}') {
          ++pos_;
          return v;
        }
        while (true) {
          SkipWhitespace();
          std::string key = ParseStringToken();
          SkipWhitespace();
          Expect(':');
          v.members_.emplace_back(std::move(key), ParseValue());
          SkipWhitespace();
          if (Peek() == ',') {
            ++pos_;
            continue;
          }
          Expect('}');
          return v;
        }
      }
      case '[': {
        v.kind_ = Kind::kArray;
        ++pos_;
        SkipWhitespace();
        if (Peek() == ']') {
          ++pos_;
          return v;
        }
        while (true) {
          v.items_.push_back(ParseValue());
          SkipWhitespace();
          if (Peek() == ',') {
            ++pos_;
            continue;
          }
          Expect(']');
          return v;
        }
      }
      case '"':
        v.kind_ = Kind::kString;
        v.scalar_ = ParseStringToken();
        return v;
      case 't':
        Check(Consume("true"), "bad literal");
        v.kind_ = Kind::kBool;
        v.bool_ = true;
        return v;
      case 'f':
        Check(Consume("false"), "bad literal");
        v.kind_ = Kind::kBool;
        v.bool_ = false;
        return v;
      case 'n':
        Check(Consume("null"), "bad literal");
        v.kind_ = Kind::kNull;
        return v;
      default:
        return ParseNumber();
    }
  }

  JsonValue ParseNumber() {
    const std::size_t start = pos_;
    if (Peek() == '-') {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    Check(pos_ > start + (text_[start] == '-' ? 1u : 0u), "expected a value");
    JsonValue v;
    v.kind_ = Kind::kNumber;
    v.scalar_ = text_.substr(start, pos_ - start);
    // Validate the token eagerly so malformed numbers fail at Parse, not
    // at first access.
    double parsed = 0.0;
    const char* begin = v.scalar_.data();
    const char* end = begin + v.scalar_.size();
    const auto result = std::from_chars(begin, end, parsed);
    Check(result.ec == std::errc() && result.ptr == end, "bad number");
    return v;
  }

  std::string ParseStringToken() {
    Expect('"');
    std::string out;
    while (true) {
      Check(pos_ < text_.size(), "unterminated string");
      const char c = text_[pos_++];
      if (c == '"') {
        return out;
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      Check(pos_ < text_.size(), "unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
        case '\\':
        case '/':
          out += esc;
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'u': {
          Check(pos_ + 4 <= text_.size(), "truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              Check(false, "bad \\u escape");
            }
          }
          Check(code < 0xd800 || code > 0xdfff,
                "surrogate pairs are not supported");
          // Encode the BMP code point as UTF-8.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xc0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3f));
          } else {
            out += static_cast<char>(0xe0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (code & 0x3f));
          }
          break;
        }
        default:
          Check(false, "unknown escape");
      }
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  std::size_t depth_ = 0;
};

JsonValue JsonValue::Parse(const std::string& text) {
  return Parser(text).ParseDocument();
}

namespace {

[[noreturn]] void KindError(const char* wanted) {
  throw InvalidModelError(std::string("JsonValue: value is not ") + wanted);
}

}  // namespace

bool JsonValue::AsBool() const {
  if (kind_ != Kind::kBool) {
    KindError("a bool");
  }
  return bool_;
}

double JsonValue::AsDouble() const {
  if (kind_ != Kind::kNumber) {
    KindError("a number");
  }
  double value = 0.0;
  std::from_chars(scalar_.data(), scalar_.data() + scalar_.size(), value);
  return value;
}

std::uint64_t JsonValue::AsUint() const {
  if (kind_ != Kind::kNumber) {
    KindError("a number");
  }
  std::uint64_t value = 0;
  const char* begin = scalar_.data();
  const char* end = begin + scalar_.size();
  const auto result = std::from_chars(begin, end, value);
  if (result.ec != std::errc() || result.ptr != end) {
    KindError("an unsigned integer");
  }
  return value;
}

std::int64_t JsonValue::AsInt() const {
  if (kind_ != Kind::kNumber) {
    KindError("a number");
  }
  std::int64_t value = 0;
  const char* begin = scalar_.data();
  const char* end = begin + scalar_.size();
  const auto result = std::from_chars(begin, end, value);
  if (result.ec != std::errc() || result.ptr != end) {
    KindError("a signed integer");
  }
  return value;
}

const std::string& JsonValue::AsString() const {
  if (kind_ != Kind::kString) {
    KindError("a string");
  }
  return scalar_;
}

const std::vector<JsonValue>& JsonValue::Items() const {
  if (kind_ != Kind::kArray) {
    KindError("an array");
  }
  return items_;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::Members()
    const {
  if (kind_ != Kind::kObject) {
    KindError("an object");
  }
  return members_;
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (kind_ != Kind::kObject) {
    KindError("an object");
  }
  for (const auto& [k, v] : members_) {
    if (k == key) {
      return &v;
    }
  }
  return nullptr;
}

const JsonValue& JsonValue::At(const std::string& key) const {
  const JsonValue* found = Find(key);
  if (found == nullptr) {
    throw InvalidModelError("JsonValue: missing key \"" + key + "\"");
  }
  return *found;
}

BenchJsonWriter::BenchJsonWriter(std::string bench_name)
    : bench_name_(std::move(bench_name)) {}

void BenchJsonWriter::AddRow(JsonObject row) {
  rows_.push_back(row.Set("bench", bench_name_).Dump());
}

std::string BenchJsonWriter::Write() const {
  const std::string path = "BENCH_" + bench_name_ + ".json";
  std::ofstream out(path);
  if (!out) {
    return {};
  }
  // Header row: build provenance, so every committed baseline records
  // which binary produced it. tools/bench_compare.py skips rows with a
  // "provenance" key when pairing measurements.
  out << BuildProvenanceJson()
             .Set("provenance", true)
             .Set("bench", bench_name_)
             .Dump()
      << "\n";
  for (const std::string& row : rows_) {
    out << row << "\n";
  }
  out.close();
  return out ? path : std::string{};
}

}  // namespace nocdr
