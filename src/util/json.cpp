#include "util/json.h"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <fstream>

namespace nocdr {

std::string JsonEscape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

JsonObject& JsonObject::Set(const std::string& key, const std::string& value) {
  fields_.emplace_back(key, "\"" + JsonEscape(value) + "\"");
  return *this;
}

JsonObject& JsonObject::Set(const std::string& key, const char* value) {
  return Set(key, std::string(value));
}

JsonObject& JsonObject::Set(const std::string& key, bool value) {
  fields_.emplace_back(key, value ? "true" : "false");
  return *this;
}

JsonObject& JsonObject::Set(const std::string& key, double value) {
  if (!std::isfinite(value)) {
    // JSON has no Inf/NaN; null is the conventional stand-in.
    fields_.emplace_back(key, "null");
    return *this;
  }
  // Shortest round-trip representation; deterministic for a given value.
  char buf[32];
  const auto result = std::to_chars(buf, buf + sizeof(buf), value);
  fields_.emplace_back(key, std::string(buf, result.ptr));
  return *this;
}

JsonObject& JsonObject::Set(const std::string& key, std::uint64_t value) {
  fields_.emplace_back(key, std::to_string(value));
  return *this;
}

JsonObject& JsonObject::Set(const std::string& key, std::int64_t value) {
  fields_.emplace_back(key, std::to_string(value));
  return *this;
}

std::string JsonObject::Dump() const {
  std::string out = "{";
  for (std::size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) {
      out += ",";
    }
    out += "\"" + JsonEscape(fields_[i].first) + "\":" + fields_[i].second;
  }
  out += "}";
  return out;
}

BenchJsonWriter::BenchJsonWriter(std::string bench_name)
    : bench_name_(std::move(bench_name)) {}

void BenchJsonWriter::AddRow(JsonObject row) {
  rows_.push_back(row.Set("bench", bench_name_).Dump());
}

std::string BenchJsonWriter::Write() const {
  const std::string path = "BENCH_" + bench_name_ + ".json";
  std::ofstream out(path);
  if (!out) {
    return {};
  }
  for (const std::string& row : rows_) {
    out << row << "\n";
  }
  out.close();
  return out ? path : std::string{};
}

}  // namespace nocdr
