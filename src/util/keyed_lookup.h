// Digest-addressed keyed lookup shared by the certificate cache tiers.
//
// Every cache level of the certification service resolves the pair
// (64-bit digest, full key text) the same way: the digest addresses a
// slot, and the slot matches only if its full key text compares equal
// to the query's — so a digest collision degrades to a miss (or, on
// insert, a newcomer-wins replacement), never to serving the wrong
// value. That protocol used to live twice, privately, inside
// serve/cert_cache.h; the disk tier (serve/disk_cache) would have been
// the third copy. It lives here instead so the tiers cannot drift.
//
// The twist that forces the shape below: the memory tier keeps every
// key text resident, but the disk tier deliberately does not — its
// in-memory index holds only (digest -> segment locator), and the full
// key text is read back from the checksummed segment record during the
// lookup itself. KeyedSlotMap therefore takes the key text through a
// callable: the memory tier's returns a pointer to the resident
// string, the disk tier's reads the record (returning nullptr when the
// record turns out to be torn or bit-flipped, which is also a miss).
//
// ShardRouter is the companion primitive: power-of-two shard selection
// by digest, shared by the memory tier's mutex sharding and the disk
// tier's index sharding.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>

namespace nocdr::util {

/// Smallest power of two >= \p n, at least 1.
inline std::size_t RoundUpPow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) {
    p <<= 1;
  }
  return p;
}

/// Digest -> shard routing over a power-of-two shard count. Both cache
/// tiers split their key space with this, so an entry's shard is a
/// stable function of its digest alone.
class ShardRouter {
 public:
  /// Rounds \p shards up to a power of two, at least 1.
  explicit ShardRouter(std::size_t shards)
      : count_(RoundUpPow2(shards < 1 ? 1 : shards)), mask_(count_ - 1) {}

  [[nodiscard]] std::size_t Count() const { return count_; }

  [[nodiscard]] std::size_t IndexFor(std::uint64_t digest) const {
    return static_cast<std::size_t>(digest & mask_);
  }

 private:
  std::size_t count_;
  std::uint64_t mask_;
};

/// One shard's digest-keyed slot map with the collision protocol both
/// cache tiers share. Not internally synchronized: the owner brackets
/// calls with its shard mutex, exactly as it brackets the rest of the
/// shard state.
template <typename Slot>
class KeyedSlotMap {
 public:
  /// Resolves (\p digest, \p key_text): returns the slot stored under
  /// the digest iff its full key text — obtained via
  /// \p key_of(slot), which may read it from disk — compares equal to
  /// \p key_text. \p key_of returns `const std::string*`; nullptr
  /// means the stored key is unobtainable (a damaged disk record),
  /// which is a miss like any text mismatch.
  template <typename KeyOf>
  Slot* Find(std::uint64_t digest, const std::string& key_text,
             KeyOf&& key_of) {
    const auto it = slots_.find(digest);
    if (it == slots_.end()) {
      return nullptr;
    }
    const std::string* stored = key_of(it->second);
    if (stored == nullptr || *stored != key_text) {
      return nullptr;
    }
    return &it->second;
  }

  /// Inserts (or replaces) the slot for \p digest and returns the
  /// displaced slot, if any. Replacement is by digest alone — identical
  /// key text means a duplicate publish, different text a digest
  /// collision; either way the newcomer wins and the old slot's value
  /// becomes unreachable (the collision loser can only ever miss).
  std::optional<Slot> Put(std::uint64_t digest, Slot slot) {
    const auto it = slots_.find(digest);
    if (it == slots_.end()) {
      slots_.emplace(digest, std::move(slot));
      return std::nullopt;
    }
    std::optional<Slot> displaced(std::move(it->second));
    it->second = std::move(slot);
    return displaced;
  }

  /// Removes the slot for \p digest; false if absent.
  bool Erase(std::uint64_t digest) { return slots_.erase(digest) != 0; }

  /// Visits every (digest, slot) pair; \p fn may not mutate the map.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const auto& [digest, slot] : slots_) {
      fn(digest, slot);
    }
  }

  /// Removes every slot \p predicate(digest, slot) accepts; returns the
  /// number removed (segment retirement in the disk tier).
  template <typename Predicate>
  std::size_t EraseIf(Predicate&& predicate) {
    std::size_t erased = 0;
    for (auto it = slots_.begin(); it != slots_.end();) {
      if (predicate(it->first, it->second)) {
        it = slots_.erase(it);
        ++erased;
      } else {
        ++it;
      }
    }
    return erased;
  }

  [[nodiscard]] std::size_t Size() const { return slots_.size(); }

  void Clear() { slots_.clear(); }

 private:
  std::unordered_map<std::uint64_t, Slot> slots_;
};

}  // namespace nocdr::util
