#include "valid/shrink.h"

#include <algorithm>

#include "util/canonical.h"
#include "util/error.h"
#include "util/rng.h"

// DesignText / IoCanonicalize / IsIoStable live in util/canonical: the
// certification service (src/serve) keys its cache by the same
// canonical text the shrinker validates repros against, and two private
// copies of that primitive would be free to drift apart.

namespace nocdr::valid {

namespace {

/// Deterministic workload seed for shrink step \p step (SplitMix64
/// rounds, same construction as runner::JobSeed).
std::uint64_t StepSeed(std::uint64_t seed, std::size_t step) {
  const std::uint64_t mixed = Rng(static_cast<std::uint64_t>(step)).Next();
  return Rng(seed ^ mixed).Next();
}

}  // namespace

NocDesign KeepFlows(const NocDesign& design, const std::vector<bool>& keep) {
  Require(keep.size() == design.traffic.FlowCount(),
          "KeepFlows: mask size != flow count");
  NocDesign out;
  out.name = design.name;
  out.topology = design.topology;
  out.attachment = design.attachment;
  for (std::size_t c = 0; c < design.traffic.CoreCount(); ++c) {
    out.traffic.AddCore(design.traffic.CoreName(CoreId(c)));
  }
  std::vector<Route> routes;
  for (std::size_t f = 0; f < design.traffic.FlowCount(); ++f) {
    if (!keep[f]) {
      continue;
    }
    const Flow& flow = design.traffic.FlowAt(FlowId(f));
    out.traffic.AddFlow(flow.src, flow.dst, flow.bandwidth_mbps);
    routes.push_back(design.routes.RouteOf(FlowId(f)));
  }
  out.routes.Resize(routes.size());
  for (std::size_t f = 0; f < routes.size(); ++f) {
    out.routes.SetRoute(FlowId(f), std::move(routes[f]));
  }
  out.Validate();
  return out;
}

NocDesign PruneUnused(const NocDesign& design) {
  const std::size_t n_switches = design.topology.SwitchCount();
  const std::size_t n_links = design.topology.LinkCount();
  const std::size_t n_cores = design.traffic.CoreCount();

  std::vector<bool> core_used(n_cores, false);
  std::vector<bool> switch_used(n_switches, false);
  // Highest VC index any route uses per link; -1 = link unused.
  std::vector<int> link_max_vc(n_links, -1);

  for (std::size_t f = 0; f < design.traffic.FlowCount(); ++f) {
    const Flow& flow = design.traffic.FlowAt(FlowId(f));
    core_used[flow.src.value()] = true;
    core_used[flow.dst.value()] = true;
    for (const ChannelId c : design.routes.RouteOf(FlowId(f))) {
      const Channel& channel = design.topology.ChannelAt(c);
      link_max_vc[channel.link.value()] =
          std::max(link_max_vc[channel.link.value()],
                   static_cast<int>(channel.vc));
    }
  }
  for (std::size_t c = 0; c < n_cores; ++c) {
    if (core_used[c]) {
      switch_used[design.attachment[c].value()] = true;
    }
  }
  for (std::size_t l = 0; l < n_links; ++l) {
    if (link_max_vc[l] >= 0) {
      const Link& link = design.topology.LinkAt(LinkId(l));
      switch_used[link.src.value()] = true;
      switch_used[link.dst.value()] = true;
    }
  }

  NocDesign out;
  out.name = design.name;
  std::vector<SwitchId> switch_map(n_switches);
  for (std::size_t s = 0; s < n_switches; ++s) {
    if (switch_used[s]) {
      switch_map[s] =
          out.topology.AddSwitch(design.topology.SwitchName(SwitchId(s)));
    }
  }
  std::vector<LinkId> link_map(n_links);
  for (std::size_t l = 0; l < n_links; ++l) {
    if (link_max_vc[l] < 0) {
      continue;
    }
    const Link& link = design.topology.LinkAt(LinkId(l));
    link_map[l] = out.topology.AddLink(switch_map[link.src.value()],
                                       switch_map[link.dst.value()]);
    for (int vc = 1; vc <= link_max_vc[l]; ++vc) {
      out.topology.AddVirtualChannel(link_map[l]);
    }
  }
  std::vector<CoreId> core_map(n_cores);
  for (std::size_t c = 0; c < n_cores; ++c) {
    if (core_used[c]) {
      core_map[c] = out.traffic.AddCore(design.traffic.CoreName(CoreId(c)));
      out.attachment.push_back(switch_map[design.attachment[c].value()]);
    }
  }
  std::vector<Route> routes;
  for (std::size_t f = 0; f < design.traffic.FlowCount(); ++f) {
    const Flow& flow = design.traffic.FlowAt(FlowId(f));
    out.traffic.AddFlow(core_map[flow.src.value()],
                        core_map[flow.dst.value()], flow.bandwidth_mbps);
    Route remapped;
    for (const ChannelId c : design.routes.RouteOf(FlowId(f))) {
      const Channel& channel = design.topology.ChannelAt(c);
      remapped.push_back(*out.topology.FindChannel(
          link_map[channel.link.value()], channel.vc));
    }
    routes.push_back(std::move(remapped));
  }
  out.routes.Resize(routes.size());
  for (std::size_t f = 0; f < routes.size(); ++f) {
    out.routes.SetRoute(FlowId(f), std::move(routes[f]));
  }
  out.Validate();
  return out;
}

ShrinkResult ShrinkMismatch(const NocDesign& design, TrialArm arm,
                            const WorkloadConfig& workload,
                            std::uint64_t seed,
                            std::optional<MismatchKind> known_kind) {
  ShrinkResult result;
  result.design = design;
  result.seed = seed;

  // Shrink against the *kind* of the original disagreement: a candidate
  // that mismatches differently (e.g. a flow drop that flips the
  // certificate from negative to positive and then fails the positive
  // leg) is not a smaller version of the same bug. Classifying the
  // baseline is as expensive as the trial itself, so reuse the caller's
  // observation when it has one.
  MismatchKind kind;
  if (known_kind.has_value()) {
    kind = *known_kind;
  } else {
    const TrialRow baseline = ClassifyTrial(design, arm, workload, seed);
    if (baseline.verdict != TrialVerdict::kMismatch) {
      return result;
    }
    kind = baseline.mismatch_kind;
  }
  if (kind == MismatchKind::kNone) {
    return result;
  }
  const auto mismatches = [&](const NocDesign& candidate,
                              std::uint64_t candidate_seed) {
    ++result.candidates;
    const TrialRow row =
        ClassifyTrial(candidate, arm, workload, candidate_seed);
    return row.verdict == TrialVerdict::kMismatch &&
           row.mismatch_kind == kind;
  };

  // Canonicalize FIRST: once the design is io-stable, every later
  // candidate inherits that property (KeepFlows copies the topology
  // verbatim, PruneUnused rebuilds channels per-link contiguous exactly
  // like ReadDesign does), so the dumped text parses back to exactly
  // the design the shrinker validated. Canonicalization can renumber
  // channels — shifting round-robin arbitration — so it commits only if
  // the mismatch survives; a couple of seed retries guard against a
  // workload-seed accident masking a robust mismatch.
  if (!IsIoStable(result.design)) {
    for (int attempt = 0; attempt < 3; ++attempt) {
      const std::uint64_t step_seed = StepSeed(seed, result.candidates + 1);
      NocDesign candidate = IoCanonicalize(result.design);
      if (mismatches(candidate, step_seed)) {
        result.design = std::move(candidate);
        result.seed = step_seed;
        ++result.steps;
        break;
      }
    }
  }

  // Greedy flow dropping, highest index first so the indices still to be
  // visited stay stable across commits; a second round catches flows
  // that only became droppable after later ones went.
  constexpr int kRounds = 2;
  for (int round = 0; round < kRounds; ++round) {
    bool progress = false;
    for (std::size_t f = result.design.traffic.FlowCount(); f-- > 0;) {
      if (result.design.traffic.FlowCount() <= 1) {
        break;
      }
      std::vector<bool> keep(result.design.traffic.FlowCount(), true);
      keep[f] = false;
      const std::uint64_t step_seed = StepSeed(seed, result.candidates + 1);
      NocDesign candidate = KeepFlows(result.design, keep);
      if (mismatches(candidate, step_seed)) {
        result.design = std::move(candidate);
        result.seed = step_seed;
        ++result.steps;
        progress = true;
      }
    }
    if (!progress) {
      break;
    }
  }

  // Structural prune; renumbers ids, so it is kept only if the
  // mismatch still reproduces on the transformed design.
  {
    const std::uint64_t step_seed = StepSeed(seed, result.candidates + 1);
    NocDesign candidate = PruneUnused(result.design);
    if (mismatches(candidate, step_seed)) {
      result.design = std::move(candidate);
      result.seed = step_seed;
      ++result.steps;
    }
  }
  result.io_stable = IsIoStable(result.design);
  return result;
}

}  // namespace nocdr::valid
