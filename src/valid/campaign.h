// Differential validation campaign engine.
//
// The paper's core claim is that CDG cycle breaking yields deadlock-free
// wormhole NoCs. This module validates that claim at scale by fanning
// randomized end-to-end trials over the thread pool: synthesize a design
// (src/soc/synthetic + src/synth), run one treatment arm, certify the
// result (src/deadlock/verify), then run the cycle-accurate simulator
// and cross-check the four-way contract:
//
//   * a positive certificate must be accepted by the independent checker
//     AND the workload must run to completion with every packet
//     delivered and no deadlock;
//   * a negative certificate (possible only on the untreated arm) must
//     come with a genuine CDG-cycle counterexample AND the simulator
//     must reproduce a circular wait whose channels lie on a CDG cycle —
//     if the base workload completes, pressure is escalated a bounded
//     number of times before the trial is declared a mismatch;
//   * every treated arm must end deadlock-free;
//   * certificates must survive a JSON round trip with the same checker
//     verdict.
//
// Any disagreement is shrunk by a deterministic minimizer (valid/shrink)
// and dumped as a replayable JSON repro (valid/repro). Trials are pure
// functions of (base_seed, trial index), so campaign results are
// byte-identical for any thread count — Digest() makes that checkable in
// one comparison, exactly like runner::SweepRunner.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "noc/design.h"
#include "sim/simulator.h"
#include "synth/route_builder.h"
#include "util/json.h"

namespace nocdr::valid {

/// Which treatment a trial applies before certification + simulation.
enum class TrialArm {
  kUntreated,           // baseline: no treatment, certificate may be negative
  kRemovalIncremental,  // RemoveDeadlocks, incremental CDG engine
  kRemovalRebuild,      // RemoveDeadlocks, rebuild-per-iteration engine
  kResourceOrdering,    // Dally/Towles distance classes
  kUpDown,              // up*/down* turn prohibition (may be infeasible)
};

/// All arms, in the fixed campaign order.
std::vector<TrialArm> AllArms();

/// Stable lowercase identifier ("untreated", "removal_incremental", ...).
std::string ArmName(TrialArm arm);

/// Inverse of ArmName; nullopt for unknown names.
std::optional<TrialArm> ParseArm(const std::string& name);

/// Where a trial's design comes from: the application-specific
/// synthesizer (src/soc/synthetic + src/synth) or one of the standard
/// topology families (src/gen) with their classical routing policies.
/// Generated families give the contract design distributions the
/// removal heuristic was never tuned for — notably the deliberately
/// cyclic torus/ring DOR inputs.
enum class DesignSource {
  kSynthesized,
  kMesh,
  kTorus,
  kRing,
  kFatTree,
};

/// All sources, in the fixed campaign order.
std::vector<DesignSource> AllSources();

/// Stable lowercase identifier ("synthesized", "mesh", "torus", "ring",
/// "fat_tree").
std::string SourceName(DesignSource source);

/// Inverse of SourceName; nullopt for unknown names.
std::optional<DesignSource> ParseSource(const std::string& name);

/// Size envelope the per-trial design generator draws from.
struct DesignEnvelope {
  std::size_t min_cores = 18;
  std::size_t max_cores = 60;
  std::size_t min_fanout = 2;
  std::size_t max_fanout = 6;
  std::size_t min_hubs = 1;
  std::size_t max_hubs = 4;
  /// Cores packed per synthesized switch; fewer switches means more
  /// route overlap and therefore more CDG cycles to validate against.
  std::size_t min_cores_per_switch = 3;
  std::size_t max_cores_per_switch = 6;
};

/// Deterministic design for one trial: draws a SyntheticSocSpec from the
/// envelope under \p seed and synthesizes it onto an irregular topology.
NocDesign GenerateTrialDesign(std::uint64_t seed,
                              const DesignEnvelope& envelope);

/// Deterministic design for one (source, seed) pair: kSynthesized
/// delegates to the overload above; the generated families draw a
/// GeneratorSpec (size, traffic pattern, fanout, cores per switch) from
/// \p seed sized to roughly match the envelope's core range.
NocDesign GenerateTrialDesign(DesignSource source, std::uint64_t seed,
                              const DesignEnvelope& envelope);

/// As above, but additionally hands out the next-hop routing table of a
/// generated (table-routed) family design — the fault-reconfiguration
/// campaign feeds it to the table-driven detour policy. For
/// kSynthesized (congestion-routed, no table) \p table_out comes back
/// empty and detours fall back to rip-up-and-reroute.
NocDesign GenerateTrialDesign(DesignSource source, std::uint64_t seed,
                              const DesignEnvelope& envelope,
                              NextHopTable* table_out);

/// Workload pressure applied by the simulator cross-check. The defaults
/// are aggressive (shallow buffers, worms longer than routes, all flows
/// injecting at once) so that statically unsafe designs actually
/// detonate.
struct WorkloadConfig {
  std::uint16_t buffer_depth = 1;
  std::uint32_t packets_per_flow = 4;
  std::uint16_t packet_length = 8;
  std::uint64_t max_cycles = 200000;
  std::uint64_t stall_threshold = 2000;
  /// When a negative certificate fails to detonate under the blanket
  /// workload, escalate this many times before declaring a mismatch:
  /// level 1 restricts the workload to the counterexample cycle's own
  /// flows with route-spanning worms; levels >= 2 add randomly staggered
  /// short packets (Bernoulli, walking a small rate x length grid) on
  /// those flows, which close wait cycles the synchronized schedule
  /// phase-locks out of.
  std::size_t max_escalations = 6;
  SimEngine engine = SimEngine::kWorklist;
};

enum class TrialVerdict {
  /// Positive certificate; workload ran clean, every packet delivered.
  kPositiveDelivered,
  /// Negative certificate; the simulator reproduced a circular wait
  /// lying on a CDG cycle.
  kNegativeDetonated,
  /// The arm cannot serve this design at all (up*/down* on a design
  /// whose bidirectional sub-topology is disconnected — the structural
  /// limitation the paper critiques). Recorded, not a contract breach.
  kArmInfeasible,
  /// The contract broke somewhere; TrialRow::mismatch says where.
  kMismatch,
};

/// Which leg of the contract broke. The shrinker minimizes against the
/// *kind*, not the message, so a shrink step cannot silently morph one
/// disagreement into a different one.
enum class MismatchKind {
  kNone = 0,
  kTrialThrew,
  kTreatmentThrew,
  kCertificateJsonRoundTrip,
  kTreatedLeftCycle,
  kCheckerRejectedPositive,
  kPositiveDeadlocked,
  kPositiveUndelivered,
  kBadCounterexample,
  kWaitCycleOffCdg,
  kNoDetonation,
  /// Engine-differential mode only: two simulation engines disagreed on
  /// a deterministic trial field. Not minimized by the shrinker (which
  /// re-classifies under a single engine); replay from the row's
  /// design_seed + arm with each engine instead.
  kEngineDivergence,
};

/// Outcome of one trial. Every field except run_ms is a deterministic
/// function of (design, arm, workload, seed).
struct TrialRow {
  std::size_t trial_index = 0;
  std::uint64_t design_seed = 0;
  std::string design;
  DesignSource source = DesignSource::kSynthesized;
  TrialArm arm = TrialArm::kUntreated;

  // Design shape.
  std::size_t switches = 0;
  std::size_t links = 0;
  std::size_t flows = 0;
  std::size_t channels_before = 0;
  std::size_t channels_after = 0;

  // Certification.
  bool certified_free = false;
  bool certificate_checked = false;

  // Simulation (last escalation level that ran).
  bool sim_deadlocked = false;
  bool all_delivered = false;
  std::uint64_t cycles = 0;
  std::uint64_t packets_offered = 0;
  std::uint64_t packets_delivered = 0;
  std::size_t escalations = 0;

  TrialVerdict verdict = TrialVerdict::kMismatch;
  MismatchKind mismatch_kind = MismatchKind::kNone;
  /// Empty unless verdict == kMismatch.
  std::string mismatch;

  // Shrinker summary (mismatching trials with shrinking enabled only).
  std::size_t shrink_flows_kept = 0;
  std::size_t shrink_steps = 0;

  // Wall clock; excluded from Digest and determinism guarantees.
  double run_ms = 0.0;
};

/// Classifies one (design, arm) pair against the contract: treat,
/// certify, JSON-round-trip the certificate, simulate, cross-check.
/// Deterministic in its arguments; never throws for treatment failures
/// (they become mismatch rows).
TrialRow ClassifyTrial(const NocDesign& design, TrialArm arm,
                       const WorkloadConfig& workload, std::uint64_t seed);

struct TrialOutcome {
  TrialRow row;
  /// Replayable repro dump (valid/repro.h); non-empty only for
  /// mismatching trials when shrinking is enabled.
  std::string repro_json;
};

/// ClassifyTrial plus, on mismatch, deterministic shrinking and repro
/// dumping. \p trial_index is recorded in the row and in any repro dump
/// so a dump stays correlated with its campaign row and filename.
TrialOutcome RunTrial(const NocDesign& design, TrialArm arm,
                      const WorkloadConfig& workload, std::uint64_t seed,
                      bool shrink, std::size_t trial_index = 0);

/// Engine-differential trial: runs the full trial under engines[0] (the
/// primary, overriding workload.engine), then re-classifies under every
/// other engine and cross-checks all deterministic row fields. Any
/// disagreement becomes a kEngineDivergence mismatch naming the engine
/// pair and the first differing field. A trial the primary already
/// classifies as a mismatch is shrunk and reported as usual — the
/// engine sweep is skipped, one contract breach per row. Requires at
/// least one engine.
TrialOutcome RunTrialEngines(const NocDesign& design, TrialArm arm,
                             const WorkloadConfig& workload,
                             const std::vector<SimEngine>& engines,
                             std::uint64_t seed, bool shrink,
                             std::size_t trial_index = 0);

struct CampaignConfig {
  /// Total trial rows. Trial i generates design d = i / arms.size() from
  /// source sources[d % sources.size()] — the design seed is shared by
  /// consecutive trials so every arm sees the same design — and applies
  /// arm arms[i % arms.size()].
  std::size_t trials = 400;
  std::uint64_t base_seed = 1;
  /// Worker threads; 0 means hardware concurrency.
  std::size_t threads = 0;
  std::vector<TrialArm> arms = AllArms();
  /// Design sources interleaved across the campaign.
  std::vector<DesignSource> sources = AllSources();
  bool shrink = true;
  DesignEnvelope envelope;
  WorkloadConfig workload;
  /// Engine-differential mode: with two or more entries every trial runs
  /// RunTrialEngines over this matrix (engines[0] primary, the rest
  /// cross-checked field-for-field), turning the whole campaign into a
  /// simulation-engine equivalence test. Empty or singleton: plain
  /// single-engine trials under workload.engine (or engines[0]).
  std::vector<SimEngine> engines;
};

struct CampaignResult {
  std::vector<TrialRow> rows;
  /// (trial index, repro JSON) for every mismatching trial that shrunk.
  std::vector<std::pair<std::size_t, std::string>> repros;
  std::size_t mismatches = 0;
  std::size_t positives = 0;
  std::size_t detonations = 0;
  std::size_t infeasibles = 0;
  /// FNV-1a over the deterministic row fields; byte-identical for any
  /// thread count.
  std::uint64_t digest = 0;
};

/// Runs the whole campaign over an internal thread pool.
CampaignResult RunCampaign(const CampaignConfig& config);

/// FNV-1a digest over the deterministic fields of \p rows, in row order.
std::uint64_t Digest(const std::vector<TrialRow>& rows);

/// Renders \p row as a flat JSON object for BENCH_*.json emission.
JsonObject RowToJson(const TrialRow& row);

}  // namespace nocdr::valid
