// Deterministic mismatch minimizer for validation-campaign repros.
//
// When a trial breaks the certificate/simulation contract, the raw
// design is usually far too large to debug. The shrinker greedily drops
// flows (highest index first, multiple rounds) and then prunes every
// switch, link, channel and core the surviving flows no longer touch —
// keeping a candidate only while the mismatch persists — and only while
// it stays the same MismatchKind, so minimization cannot morph one
// disagreement into a different one. Every candidate evaluation is
// re-seeded deterministically from (seed, step), so a shrink step
// survives only if the mismatch is robust to the workload seed, not a
// seed accident. The design is canonicalized through the noc/io text
// round trip up front (every later transform preserves io-stability),
// so the dumped repro parses back to exactly the design that was
// validated; ShrinkResult::io_stable records whether that held.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "noc/design.h"
#include "valid/campaign.h"

namespace nocdr::valid {

struct ShrinkResult {
  /// The minimized reproducer.
  NocDesign design;
  /// Workload seed under which \p design was last observed to mismatch;
  /// replay with this seed to reproduce.
  std::uint64_t seed = 0;
  /// Committed shrink steps (flow drops + structure prunes).
  std::size_t steps = 0;
  /// Candidate designs evaluated in total.
  std::size_t candidates = 0;
  /// True when \p design survives the noc/io text round trip with
  /// identical channel numbering, i.e. a dumped repro parses back to
  /// exactly the design that was validated. The shrinker canonicalizes
  /// up front to make this the overwhelmingly common case; false means
  /// the mismatch only reproduced under a channel numbering the text
  /// format cannot express, so a replay may come back clean.
  bool io_stable = false;
};

/// Returns a copy of \p design containing only the flows with
/// keep[flow.value()] == true (routes renumbered accordingly). Topology,
/// cores and attachment are untouched, so all ids except FlowId stay
/// stable.
NocDesign KeepFlows(const NocDesign& design, const std::vector<bool>& keep);

/// Drops every switch, link, channel and core that no flow of \p design
/// references (directly or via attachment of a flow endpoint),
/// renumbering ids densely. Per-link VC indices used by routes are
/// preserved.
NocDesign PruneUnused(const NocDesign& design);

/// Minimizes a design whose (arm, workload, seed) trial mismatches.
/// Precondition: ClassifyTrial(design, arm, workload, seed) reports
/// kMismatch; if it does not, the input is returned unshrunk. When the
/// caller already classified the trial, pass the observed kind via
/// \p known_kind to skip re-running that (expensive) baseline.
ShrinkResult ShrinkMismatch(
    const NocDesign& design, TrialArm arm, const WorkloadConfig& workload,
    std::uint64_t seed,
    std::optional<MismatchKind> known_kind = std::nullopt);

}  // namespace nocdr::valid
