// Differential session campaign: protocol v2's stateful streaming
// sessions (serve/session) against a stateless replay, at scale.
//
// Each trial plays both sides of one streaming reconfiguration
// session. The server side is a real SessionService over a real
// CertificationService; the client side keeps a *replica* of the
// session's design — parsed from the session_open response's design
// text — and advances it with ApplyFaultBurstRebuild, the from-scratch
// reference the fault campaign already holds the incremental engine
// to. A seeded FaultPlan is drawn on the replica and streamed to the
// session as name-based fault_burst events, and the contract per burst
// is:
//
//   * session and replica must agree on feasibility, the affected-flow
//     count, the detour/rip-up split, the removal outcome and — byte
//     for byte — the post-burst design text;
//   * the session's epoch must advance by exactly one per applied
//     burst and stay put across infeasible bursts, snapshots and the
//     deliberate stale-epoch probe;
//   * the epoch's certificate must be byte-identical to what a *cold*
//     CertificationService answers for the replica's design text — a
//     streamed session and a stateless re-submission are the same
//     problem and must get the same certificate;
//   * re-serving the replica's text through the session's own service
//     must hit the cache entry the epoch published, with an identical
//     payload — the content-addressed key moved with the design, so a
//     stale certificate is unservable by construction;
//   * the certificate must pass the independent checker against the
//     canonical form of the replica;
//   * every request streamed must survive a protocol codec round trip
//     (render -> parse -> render, byte-identical).
//
// Trials are pure functions of (base_seed, trial index); Digest() makes
// thread-count determinism checkable in one comparison, exactly like
// the base and fault campaigns.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "deadlock/removal.h"
#include "fault/plan.h"
#include "util/json.h"
#include "valid/campaign.h"

namespace nocdr::valid {

enum class SessionVerdict {
  /// Every planned burst streamed, re-certified and replayed clean.
  kStreamed,
  /// Some burst disconnected at least one flow; the session answered
  /// feasible=false with an unchanged epoch and the replica agreed.
  kDisconnected,
  /// The contract broke; SessionTrialRow::mismatch says where.
  kMismatch,
};

enum class SessionMismatchKind {
  kNone = 0,
  kTrialThrew,
  /// session_open did not answer kOk with a positive epoch-0
  /// certificate.
  kOpenFailed,
  /// A request line changed under render -> parse -> render.
  kCodecRoundTrip,
  /// Session and replica disagreed (feasibility, affected count,
  /// detour/rip-up split or removal outcome).
  kEngineDiverged,
  /// Epoch advanced when it must not have, or failed to advance.
  kEpochViolation,
  /// Session design text != replica design text, byte for byte.
  kDesignDiverged,
  /// Session certificate/key != a cold stateless serve of the replica.
  kStatelessDiverged,
  /// Re-serving the epoch's design through the session's service
  /// missed the published cache entry or returned a different payload.
  kStaleCertificate,
  /// The independent checker rejected an epoch's certificate.
  kCheckerRejected,
  /// A lifecycle violation (stale epoch, double close, burst after
  /// close) was not answered with the prescribed structured error.
  kLifecycleViolation,
};

/// Outcome of one session trial. Every field except run_ms is a
/// deterministic function of (source, seed, config).
struct SessionTrialRow {
  std::size_t trial_index = 0;
  std::uint64_t design_seed = 0;
  std::string design;
  DesignSource source = DesignSource::kSynthesized;

  // Design shape at epoch 0 (after the open's removal treatment).
  std::size_t switches = 0;
  std::size_t links = 0;
  std::size_t flows = 0;
  std::size_t channels_initial = 0;
  std::size_t channels_final = 0;
  bool table_routed = false;

  // Stream execution.
  std::size_t bursts_planned = 0;
  std::size_t bursts_streamed = 0;
  /// Plan events dropped because the topology gave no unambiguous
  /// name to stream them by (both sides drop identically).
  std::size_t events_unnamed = 0;
  std::uint64_t final_epoch = 0;
  std::size_t affected_flows = 0;
  std::size_t disconnected_flows = 0;
  std::size_t table_detours = 0;
  std::size_t ripup_reroutes = 0;
  std::size_t removal_iterations = 0;
  std::size_t removal_vcs_added = 0;
  std::size_t failed_links = 0;
  std::size_t failed_switches = 0;

  /// Content-addressed key of the final epoch's certificate.
  std::uint64_t final_key = 0;
  /// SessionResponseDigest over every response the session produced,
  /// in stream order.
  std::uint64_t session_digest = 0;

  SessionVerdict verdict = SessionVerdict::kMismatch;
  SessionMismatchKind mismatch_kind = SessionMismatchKind::kNone;
  /// Empty unless verdict == kMismatch.
  std::string mismatch;

  // Wall clock; excluded from Digest and determinism guarantees.
  double run_ms = 0.0;
};

/// Stable lowercase identifier ("streamed", "disconnected",
/// "mismatch").
std::string SessionVerdictName(SessionVerdict verdict);

struct SessionCampaignConfig {
  /// Trial i draws source sources[i % sources.size()] with seed
  /// runner::JobSeed(base_seed, i).
  std::size_t trials = 500;
  std::uint64_t base_seed = 1;
  /// Worker threads; 0 means hardware concurrency. Each trial runs its
  /// own single-threaded services, so the digest is identical for any
  /// value here.
  std::size_t threads = 0;
  std::vector<DesignSource> sources = AllSources();
  DesignEnvelope envelope;
  fault::FaultPlanOptions plan;
  /// Removal options the session opens with (and the replica re-treats
  /// with).
  RemovalOptions removal;
};

/// Runs one trial; deterministic in its arguments, never throws for
/// pipeline failures (they become mismatch rows).
SessionTrialRow RunSessionTrial(DesignSource source, std::uint64_t seed,
                                const SessionCampaignConfig& config);

struct SessionCampaignResult {
  std::vector<SessionTrialRow> rows;
  std::size_t streamed = 0;
  std::size_t disconnected = 0;
  std::size_t mismatches = 0;
  /// FNV-1a over the deterministic row fields; byte-identical for any
  /// thread count.
  std::uint64_t digest = 0;
};

/// Runs the whole campaign over an internal thread pool.
SessionCampaignResult RunSessionCampaign(const SessionCampaignConfig& config);

/// FNV-1a digest over the deterministic fields of \p rows, in order.
std::uint64_t SessionCampaignDigest(const std::vector<SessionTrialRow>& rows);

/// Renders \p row as a flat JSON object for BENCH_*.json emission.
JsonObject SessionRowToJson(const SessionTrialRow& row);

}  // namespace nocdr::valid
