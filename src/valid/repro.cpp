#include "valid/repro.h"

#include <sstream>

#include "noc/io.h"
#include "util/canonical.h"
#include "util/error.h"

namespace nocdr::valid {

namespace {

SimEngine ParseEngine(const std::string& name) {
  if (name == "worklist") {
    return SimEngine::kWorklist;
  }
  if (name == "fullscan") {
    return SimEngine::kFullScan;
  }
  throw InvalidModelError("ReproFromJson: unknown sim engine \"" + name +
                          "\"");
}

}  // namespace

std::string ReproToJson(const Repro& repro) {
  JsonObject json;
  json.Set("version", 1)
      .Set("trial", repro.trial_index)
      .Set("arm", ArmName(repro.arm))
      .Set("seed", repro.seed)
      .Set("mismatch", repro.mismatch)
      .Set("shrink_steps", repro.shrink_steps)
      .Set("io_stable", repro.io_stable)
      .Set("buffer_depth", repro.workload.buffer_depth)
      .Set("packets_per_flow", repro.workload.packets_per_flow)
      .Set("packet_length", repro.workload.packet_length)
      .Set("max_cycles", repro.workload.max_cycles)
      .Set("stall_threshold", repro.workload.stall_threshold)
      .Set("max_escalations", repro.workload.max_escalations)
      .Set("engine", repro.workload.engine == SimEngine::kWorklist
                         ? "worklist"
                         : "fullscan")
      .Set("design", DesignText(repro.design));
  return json.Dump();
}

Repro ReproFromJson(const std::string& json) {
  const JsonValue value = JsonValue::Parse(json);
  Require(value.At("version").AsUint() == 1,
          "ReproFromJson: unsupported repro version");
  Repro repro;
  repro.trial_index = value.At("trial").AsUint();
  const std::string arm_name = value.At("arm").AsString();
  const auto arm = ParseArm(arm_name);
  Require(arm.has_value(), "ReproFromJson: unknown arm \"" + arm_name + "\"");
  repro.arm = *arm;
  repro.seed = value.At("seed").AsUint();
  repro.mismatch = value.At("mismatch").AsString();
  repro.shrink_steps = value.At("shrink_steps").AsUint();
  repro.io_stable = value.At("io_stable").AsBool();
  repro.workload.buffer_depth =
      static_cast<std::uint16_t>(value.At("buffer_depth").AsUint());
  repro.workload.packets_per_flow =
      static_cast<std::uint32_t>(value.At("packets_per_flow").AsUint());
  repro.workload.packet_length =
      static_cast<std::uint16_t>(value.At("packet_length").AsUint());
  repro.workload.max_cycles = value.At("max_cycles").AsUint();
  repro.workload.stall_threshold = value.At("stall_threshold").AsUint();
  repro.workload.max_escalations = value.At("max_escalations").AsUint();
  repro.workload.engine = ParseEngine(value.At("engine").AsString());
  std::istringstream design_text(value.At("design").AsString());
  repro.design = ReadDesign(design_text);
  return repro;
}

ReplayResult ReplayRepro(const Repro& repro) {
  ReplayResult result;
  result.row =
      ClassifyTrial(repro.design, repro.arm, repro.workload, repro.seed);
  result.row.trial_index = repro.trial_index;
  result.reproduced = result.row.verdict == TrialVerdict::kMismatch;
  return result;
}

}  // namespace nocdr::valid
