#include "valid/session_campaign.h"

#include <chrono>
#include <exception>
#include <optional>
#include <sstream>
#include <string>

#include "deadlock/verify.h"
#include "fault/reconfigure.h"
#include "noc/io.h"
#include "runner/parallel_map.h"
#include "runner/sweep.h"
#include "serve/protocol.h"
#include "serve/service.h"
#include "serve/session.h"
#include "util/canonical.h"
#include "util/digest.h"
#include "util/error.h"

namespace nocdr::valid {

namespace {

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

struct Fail {
  SessionMismatchKind kind;
  std::string message;
};

/// Render -> parse -> render must be byte-identical; the parse must
/// come back as a session message.
std::optional<Fail> CodecRoundTrip(const serve::SessionRequest& request) {
  const std::string line = serve::SessionRequestToJsonLine(request);
  serve::ServeMessage reparsed;
  try {
    reparsed = serve::ParseMessageLine(line);
  } catch (const std::exception& e) {
    return Fail{SessionMismatchKind::kCodecRoundTrip,
                "rendered request failed to parse: " + std::string(e.what())};
  }
  if (!reparsed.is_session) {
    return Fail{SessionMismatchKind::kCodecRoundTrip,
                "rendered session request parsed as stateless"};
  }
  if (serve::SessionRequestToJsonLine(reparsed.session) != line) {
    return Fail{SessionMismatchKind::kCodecRoundTrip,
                "session request changed under render -> parse -> render"};
  }
  return std::nullopt;
}

serve::CertRequest StatelessReplay(const std::string& design_text,
                                   const RemovalOptions& removal) {
  serve::CertRequest request;
  request.protocol_version = serve::kProtocolV2;
  request.kind = serve::RequestKind::kDesignText;
  request.design_text = design_text;
  request.options = removal;
  request.treat = true;
  return request;
}

/// Streams the plan's events by switch names, exactly as a protocol
/// client must. Events the topology gives no unambiguous name for are
/// dropped from *both* sides (the session could not be told about
/// them); \p dropped counts them.
fault::FaultBurst NameBurst(const NocDesign& design,
                            const fault::FaultBurst& burst,
                            std::vector<serve::SessionEventSpec>& specs,
                            std::size_t& dropped) {
  fault::FaultBurst kept;
  for (const fault::FaultEvent& event : burst) {
    if (event.kind == fault::FaultKind::kSwitch) {
      const std::string& name = design.topology.SwitchName(event.switch_id);
      const auto resolved =
          name.empty() ? std::nullopt : fault::MakeSwitchFault(design, name);
      if (!resolved || resolved->switch_id != event.switch_id) {
        ++dropped;
        continue;
      }
      serve::SessionEventSpec spec;
      spec.kind = fault::FaultKind::kSwitch;
      spec.switch_name = name;
      specs.push_back(spec);
    } else {
      const Link& link = design.topology.LinkAt(event.link);
      const std::string& src = design.topology.SwitchName(link.src);
      const std::string& dst = design.topology.SwitchName(link.dst);
      const auto resolved = (src.empty() || dst.empty())
                                ? std::nullopt
                                : fault::MakeLinkFault(design, src, dst);
      if (!resolved || resolved->link != event.link) {
        ++dropped;
        continue;
      }
      serve::SessionEventSpec spec;
      spec.kind = fault::FaultKind::kLink;
      spec.src = src;
      spec.dst = dst;
      specs.push_back(spec);
    }
    kept.push_back(event);
  }
  return kept;
}

}  // namespace

std::string SessionVerdictName(SessionVerdict verdict) {
  switch (verdict) {
    case SessionVerdict::kStreamed:
      return "streamed";
    case SessionVerdict::kDisconnected:
      return "disconnected";
    case SessionVerdict::kMismatch:
      return "mismatch";
  }
  return "unknown";
}

SessionTrialRow RunSessionTrial(DesignSource source, std::uint64_t seed,
                                const SessionCampaignConfig& config) {
  const auto t0 = std::chrono::steady_clock::now();
  SessionTrialRow row;
  row.design_seed = seed;
  row.source = source;

  std::vector<serve::SessionResponse> responses;
  const auto fail = [&](SessionMismatchKind kind,
                        const std::string& message) -> SessionTrialRow& {
    row.verdict = SessionVerdict::kMismatch;
    row.mismatch_kind = kind;
    row.mismatch = message;
    row.session_digest = serve::SessionResponseDigest(responses);
    row.run_ms = MillisSince(t0);
    return row;
  };

  try {
    // The server side: a real service pair, single-threaded so the
    // trial is a pure function of (source, seed).
    serve::ServiceConfig service_config;
    service_config.threads = 1;
    service_config.envelope = config.envelope;
    serve::CertificationService service(service_config);
    serve::SessionService sessions(service);
    // The stateless control: a *cold* service per trial, so every
    // epoch's certificate is recomputed from the design text alone.
    serve::ServiceConfig cold_config;
    cold_config.threads = 1;
    serve::CertificationService cold(cold_config);

    // ---- session_open ----
    serve::SessionRequest open_request;
    open_request.op = serve::SessionOp::kOpen;
    open_request.id = "open";
    open_request.spec.kind = serve::RequestKind::kSourceSeed;
    open_request.spec.source = source;
    open_request.spec.seed = seed;
    open_request.options = config.removal;
    open_request.return_design = true;
    if (const auto bad = CodecRoundTrip(open_request)) {
      return fail(bad->kind, bad->message);
    }

    const serve::SessionResponse open = sessions.Handle(open_request);
    responses.push_back(open);
    if (open.status != serve::ServeStatus::kOk || !open.deadlock_free ||
        open.epoch != 0 || open.session_id.empty() ||
        open.design_text.empty()) {
      return fail(SessionMismatchKind::kOpenFailed,
                  "session_open failed: " + open.error.message);
    }

    // The client replica starts from the open's design text and owns
    // its own copy of the generator's next-hop table (the session holds
    // the server-side copy).
    NextHopTable table;
    GenerateTrialDesign(source, seed, config.envelope, &table);
    std::istringstream stream(open.design_text);
    NocDesign replica = ReadDesign(stream);
    fault::FaultState state = fault::FaultState::None(replica);
    fault::ReconfigureOptions reconfigure;
    reconfigure.table = table.empty() ? nullptr : &table;
    reconfigure.removal = config.removal;

    row.design = replica.name;
    row.switches = replica.topology.SwitchCount();
    row.links = replica.topology.LinkCount();
    row.flows = replica.traffic.FlowCount();
    row.channels_initial = replica.topology.ChannelCount();
    row.table_routed = !table.empty();
    if (open.channels != replica.topology.ChannelCount()) {
      return fail(SessionMismatchKind::kDesignDiverged,
                  "open channel count does not match its design text");
    }

    std::uint64_t epoch = 0;
    std::uint64_t last_key = open.key;
    std::string last_certificate = open.certificate_json;

    // Every epoch (0 and after each applied burst) must satisfy the
    // stateless-replay and cache-coherence contract for the replica's
    // current text.
    const auto verify_epoch = [&](const std::string& design_text,
                                  std::uint64_t key,
                                  const std::string& certificate_json,
                                  const char* what) -> std::optional<Fail> {
      const serve::CertRequest replay =
          StatelessReplay(design_text, config.removal);
      const serve::CertResponse fresh = cold.Serve(replay);
      if (fresh.status != serve::ServeStatus::kOk || !fresh.deadlock_free) {
        return Fail{SessionMismatchKind::kStatelessDiverged,
                    std::string(what) +
                        ": cold stateless replay failed to certify"};
      }
      if (fresh.key != key || fresh.certificate_json != certificate_json) {
        return Fail{SessionMismatchKind::kStatelessDiverged,
                    std::string(what) +
                        ": session certificate differs from a cold "
                        "stateless serve of the same design"};
      }
      const serve::CertResponse warm = service.Serve(replay);
      if (warm.status != serve::ServeStatus::kOk ||
          warm.cache_outcome != serve::CacheOutcome::kHit) {
        return Fail{SessionMismatchKind::kStaleCertificate,
                    std::string(what) +
                        ": epoch certificate was not published into the "
                        "service cache"};
      }
      if (warm.key != key || warm.certificate_json != certificate_json) {
        return Fail{SessionMismatchKind::kStaleCertificate,
                    std::string(what) +
                        ": cached certificate differs from the session's"};
      }
      const DeadlockCertificate reloaded =
          CertificateFromJson(certificate_json);
      if (!reloaded.deadlock_free ||
          !CheckCertificate(CanonicalizeDesign(replica).design, reloaded)) {
        return Fail{SessionMismatchKind::kCheckerRejected,
                    std::string(what) +
                        ": independent checker rejected the certificate"};
      }
      return std::nullopt;
    };

    if (const auto bad =
            verify_epoch(open.design_text, open.key, open.certificate_json,
                         "epoch 0")) {
      return fail(bad->kind, bad->message);
    }

    // ---- the fault stream ----
    const fault::FaultPlan plan = fault::DrawFaultPlan(
        replica, runner::JobSeed(seed, 0x5e55), config.plan);
    row.bursts_planned = plan.bursts.size();
    bool probed_stale = false;

    for (std::size_t b = 0; b < plan.bursts.size(); ++b) {
      std::vector<serve::SessionEventSpec> specs;
      const fault::FaultBurst burst =
          NameBurst(replica, plan.bursts[b], specs, row.events_unnamed);
      if (burst.empty()) {
        continue;
      }
      const std::string tag = "burst " + std::to_string(b);

      serve::SessionRequest burst_request;
      burst_request.op = serve::SessionOp::kBurst;
      burst_request.id = "b" + std::to_string(b);
      burst_request.session_id = open.session_id;
      burst_request.events = specs;
      burst_request.has_expect_epoch = true;
      burst_request.expect_epoch = epoch;
      burst_request.return_design = true;
      if (const auto bad = CodecRoundTrip(burst_request)) {
        return fail(bad->kind, bad->message);
      }

      const serve::SessionResponse reply = sessions.Handle(burst_request);
      responses.push_back(reply);
      if (reply.status != serve::ServeStatus::kOk) {
        return fail(SessionMismatchKind::kEngineDiverged,
                    tag + ": session answered an error: " +
                        reply.error.message);
      }

      const fault::ReconfigureReport report =
          fault::ApplyFaultBurstRebuild(replica, state, burst, reconfigure);

      if (reply.feasible != !report.infeasible()) {
        return fail(SessionMismatchKind::kEngineDiverged,
                    tag + ": session and replica disagree on feasibility");
      }

      if (report.infeasible()) {
        // Infeasible: an answer, not an epoch. Both sides left their
        // state untouched; the session must echo the current epoch and
        // certificate and name the same witnesses.
        std::vector<std::uint64_t> expected;
        expected.reserve(report.disconnected_flows.size());
        for (const FlowId flow : report.disconnected_flows) {
          expected.push_back(flow.value());
        }
        if (reply.disconnected_flows != expected) {
          return fail(SessionMismatchKind::kEngineDiverged,
                      tag + ": disconnected-flow witnesses differ");
        }
        if (reply.epoch != epoch) {
          return fail(SessionMismatchKind::kEpochViolation,
                      tag + ": infeasible burst moved the epoch");
        }
        if (reply.key != last_key ||
            reply.certificate_json != last_certificate) {
          return fail(SessionMismatchKind::kStaleCertificate,
                      tag + ": infeasible burst changed the certificate");
        }
        row.disconnected_flows = report.disconnected_flows.size();
        row.affected_flows += report.affected_flows.size();
        row.verdict = SessionVerdict::kDisconnected;
        break;
      }

      ++epoch;
      ++row.bursts_streamed;
      row.affected_flows += report.affected_flows.size();
      row.table_detours += report.table_detours;
      row.ripup_reroutes += report.ripup_reroutes;
      row.removal_iterations += report.removal.iterations;
      row.removal_vcs_added += report.removal.vcs_added;

      if (reply.epoch != epoch) {
        return fail(SessionMismatchKind::kEpochViolation,
                    tag + ": epoch did not advance by exactly one");
      }
      if (reply.affected_flows != report.affected_flows.size() ||
          reply.table_detours != report.table_detours ||
          reply.ripup_reroutes != report.ripup_reroutes ||
          reply.removal_iterations != report.removal.iterations ||
          reply.vcs_added != report.removal.vcs_added ||
          reply.flows_rerouted != report.removal.flows_rerouted) {
        return fail(SessionMismatchKind::kEngineDiverged,
                    tag + ": delta fields differ from the replica's "
                          "reconfiguration report");
      }
      if (reply.design_text != DesignText(replica) ||
          reply.channels != replica.topology.ChannelCount()) {
        return fail(SessionMismatchKind::kDesignDiverged,
                    tag + ": session design text differs from the replica");
      }
      if (const auto bad = verify_epoch(reply.design_text, reply.key,
                                        reply.certificate_json,
                                        tag.c_str())) {
        return fail(bad->kind, bad->message);
      }
      last_key = reply.key;
      last_certificate = reply.certificate_json;

      if (!probed_stale) {
        // Deliberate optimistic-concurrency violation: replaying the
        // burst against the pre-burst epoch must be rejected with
        // kStaleEpoch and must not touch the session.
        probed_stale = true;
        serve::SessionRequest stale = burst_request;
        stale.id = "stale" + std::to_string(b);
        stale.expect_epoch = epoch - 1;
        const serve::SessionResponse rejected = sessions.Handle(stale);
        responses.push_back(rejected);
        if (rejected.status == serve::ServeStatus::kOk ||
            rejected.error.code != serve::ErrorCode::kStaleEpoch ||
            rejected.epoch != epoch) {
          return fail(SessionMismatchKind::kLifecycleViolation,
                      tag + ": stale expect_epoch was not rejected with "
                            "stale_epoch");
        }
      }
    }
    if (row.verdict != SessionVerdict::kDisconnected) {
      row.verdict = SessionVerdict::kStreamed;
    }

    // ---- session_snapshot: the session's view == the replica ----
    serve::SessionRequest snapshot_request;
    snapshot_request.op = serve::SessionOp::kSnapshot;
    snapshot_request.id = "snap";
    snapshot_request.session_id = open.session_id;
    if (const auto bad = CodecRoundTrip(snapshot_request)) {
      return fail(bad->kind, bad->message);
    }
    const serve::SessionResponse snapshot = sessions.Handle(snapshot_request);
    responses.push_back(snapshot);
    if (snapshot.status != serve::ServeStatus::kOk ||
        snapshot.epoch != epoch || snapshot.key != last_key ||
        snapshot.certificate_json != last_certificate ||
        snapshot.design_text != DesignText(replica) ||
        snapshot.failed_links != state.FailedLinkCount() ||
        snapshot.failed_switches != state.FailedSwitchCount() ||
        snapshot.bursts_applied != row.bursts_streamed) {
      return fail(SessionMismatchKind::kDesignDiverged,
                  "session_snapshot differs from the replica's state");
    }

    // ---- session_close, and the lifecycle fences behind it ----
    serve::SessionRequest close_request;
    close_request.op = serve::SessionOp::kClose;
    close_request.id = "close";
    close_request.session_id = open.session_id;
    if (const auto bad = CodecRoundTrip(close_request)) {
      return fail(bad->kind, bad->message);
    }
    const serve::SessionResponse closed = sessions.Handle(close_request);
    responses.push_back(closed);
    if (closed.status != serve::ServeStatus::kOk ||
        closed.bursts_applied != row.bursts_streamed) {
      return fail(SessionMismatchKind::kLifecycleViolation,
                  "session_close failed: " + closed.error.message);
    }
    const serve::SessionResponse reclosed = sessions.Handle(close_request);
    responses.push_back(reclosed);
    if (reclosed.status == serve::ServeStatus::kOk ||
        reclosed.error.code != serve::ErrorCode::kUnknownSession) {
      return fail(SessionMismatchKind::kLifecycleViolation,
                  "double close was not rejected with unknown_session");
    }
    serve::SessionRequest ghost = snapshot_request;
    ghost.id = "ghost";
    const serve::SessionResponse after = sessions.Handle(ghost);
    responses.push_back(after);
    if (after.status == serve::ServeStatus::kOk ||
        after.error.code != serve::ErrorCode::kUnknownSession) {
      return fail(SessionMismatchKind::kLifecycleViolation,
                  "snapshot after close was not rejected with "
                  "unknown_session");
    }

    row.final_epoch = epoch;
    row.final_key = last_key;
    row.channels_final = replica.topology.ChannelCount();
    row.failed_links = state.FailedLinkCount();
    row.failed_switches = state.FailedSwitchCount();
  } catch (const std::exception& e) {
    return fail(SessionMismatchKind::kTrialThrew,
                "trial threw: " + std::string(e.what()));
  }
  row.session_digest = serve::SessionResponseDigest(responses);
  row.run_ms = MillisSince(t0);
  return row;
}

SessionCampaignResult RunSessionCampaign(const SessionCampaignConfig& config) {
  Require(!config.sources.empty(),
          "RunSessionCampaign: at least one design source required");
  SessionCampaignResult result;
  result.rows = runner::ParallelMapIndexed<SessionTrialRow>(
      config.trials, config.threads, [&](std::size_t i) {
        const DesignSource source =
            config.sources[i % config.sources.size()];
        const std::uint64_t seed = runner::JobSeed(config.base_seed, i);
        SessionTrialRow row = RunSessionTrial(source, seed, config);
        row.trial_index = i;
        return row;
      });
  for (const SessionTrialRow& row : result.rows) {
    switch (row.verdict) {
      case SessionVerdict::kStreamed:
        ++result.streamed;
        break;
      case SessionVerdict::kDisconnected:
        ++result.disconnected;
        break;
      case SessionVerdict::kMismatch:
        ++result.mismatches;
        break;
    }
  }
  result.digest = SessionCampaignDigest(result.rows);
  return result;
}

std::uint64_t SessionCampaignDigest(const std::vector<SessionTrialRow>& rows) {
  std::uint64_t h = kFnvOffsetBasis;
  for (const SessionTrialRow& row : rows) {
    DigestField(h, row.trial_index);
    DigestField(h, row.design_seed);
    DigestField(h, row.design);
    DigestField(h, SourceName(row.source));
    DigestField(h, row.switches);
    DigestField(h, row.links);
    DigestField(h, row.flows);
    DigestField(h, row.channels_initial);
    DigestField(h, row.channels_final);
    DigestField(h, static_cast<std::uint64_t>(row.table_routed));
    DigestField(h, row.bursts_planned);
    DigestField(h, row.bursts_streamed);
    DigestField(h, row.events_unnamed);
    DigestField(h, row.final_epoch);
    DigestField(h, row.affected_flows);
    DigestField(h, row.disconnected_flows);
    DigestField(h, row.table_detours);
    DigestField(h, row.ripup_reroutes);
    DigestField(h, row.removal_iterations);
    DigestField(h, row.removal_vcs_added);
    DigestField(h, row.failed_links);
    DigestField(h, row.failed_switches);
    DigestField(h, row.final_key);
    DigestField(h, row.session_digest);
    DigestField(h, SessionVerdictName(row.verdict));
    DigestField(h, static_cast<std::uint64_t>(row.mismatch_kind));
    DigestField(h, row.mismatch);
  }
  return h;
}

JsonObject SessionRowToJson(const SessionTrialRow& row) {
  JsonObject json;
  json.Set("trial", row.trial_index)
      .Set("design_seed", row.design_seed)
      .Set("design", row.design)
      .Set("source", SourceName(row.source))
      .Set("switches", row.switches)
      .Set("links", row.links)
      .Set("flows", row.flows)
      .Set("channels_initial", row.channels_initial)
      .Set("channels_final", row.channels_final)
      .Set("table_routed", row.table_routed)
      .Set("bursts_planned", row.bursts_planned)
      .Set("bursts_streamed", row.bursts_streamed)
      .Set("events_unnamed", row.events_unnamed)
      .Set("final_epoch", row.final_epoch)
      .Set("affected_flows", row.affected_flows)
      .Set("disconnected_flows", row.disconnected_flows)
      .Set("table_detours", row.table_detours)
      .Set("ripup_reroutes", row.ripup_reroutes)
      .Set("removal_iterations", row.removal_iterations)
      .Set("removal_vcs_added", row.removal_vcs_added)
      .Set("failed_links", row.failed_links)
      .Set("failed_switches", row.failed_switches)
      .Set("final_key", row.final_key)
      .Set("session_digest", row.session_digest)
      .Set("verdict", SessionVerdictName(row.verdict))
      .Set("run_ms", row.run_ms);
  if (!row.mismatch.empty()) {
    json.Set("mismatch", row.mismatch)
        .Set("mismatch_kind", static_cast<std::uint64_t>(row.mismatch_kind));
  }
  return json;
}

}  // namespace nocdr::valid
