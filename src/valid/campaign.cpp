#include "valid/campaign.h"

#include <chrono>
#include <exception>

#include "cdg/cdg.h"
#include "deadlock/removal.h"
#include "deadlock/resource_ordering.h"
#include "deadlock/updown.h"
#include "deadlock/verify.h"
#include "gen/generators.h"
#include "runner/parallel_map.h"
#include "runner/sweep.h"
#include "soc/synthetic.h"
#include "synth/synthesizer.h"
#include "util/digest.h"
#include "util/error.h"
#include "util/rng.h"
#include "valid/repro.h"
#include "valid/shrink.h"

// KeepFlows lives in valid/shrink.h; the focused detonation ladder below
// reuses it to restrict a design to its counterexample's flows.

namespace nocdr::valid {

namespace {

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// The simulator configuration for escalation level \p escalation:
/// every level doubles the worm length and the packet count (and widens
/// the cycle budget to match).
SimConfig MakeSimConfig(const WorkloadConfig& workload, std::uint64_t seed,
                        std::size_t escalation) {
  SimConfig cfg;
  cfg.engine = workload.engine;
  cfg.buffer_depth = workload.buffer_depth;
  cfg.max_cycles = workload.max_cycles << escalation;
  cfg.stall_threshold = workload.stall_threshold;
  cfg.deadlock_check_interval = 256;
  cfg.traffic.mode = InjectionMode::kFixedCount;
  cfg.traffic.packets_per_flow =
      workload.packets_per_flow << escalation;
  cfg.traffic.packet_length =
      static_cast<std::uint16_t>(workload.packet_length << escalation);
  cfg.traffic.seed = seed ^ (0x9e3779b97f4a7c15ull * (escalation + 1));
  return cfg;
}

/// True iff \p cycle is a directed cycle of \p graph: length >= 2, every
/// vertex in range, every consecutive pair (including the wrap-around)
/// an edge.
bool IsCdgCycle(const ChannelDependencyGraph& graph,
                const std::vector<ChannelId>& cycle) {
  if (cycle.size() < 2) {
    return false;
  }
  for (const ChannelId c : cycle) {
    if (!c.valid() || c.value() >= graph.VertexCount()) {
      return false;
    }
  }
  for (std::size_t i = 0; i < cycle.size(); ++i) {
    const ChannelId from = cycle[i];
    const ChannelId to = cycle[(i + 1) % cycle.size()];
    if (!graph.FindEdge(from, to).has_value()) {
      return false;
    }
  }
  return true;
}

void FillSimFields(TrialRow& row, const SimResult& sim,
                   std::size_t escalation) {
  row.sim_deadlocked = sim.deadlocked;
  row.all_delivered = sim.AllDelivered();
  row.cycles = sim.cycles;
  row.packets_offered = sim.packets_offered;
  row.packets_delivered = sim.packets_delivered;
  row.escalations = escalation;
}

}  // namespace

std::vector<TrialArm> AllArms() {
  return {TrialArm::kUntreated, TrialArm::kRemovalIncremental,
          TrialArm::kRemovalRebuild, TrialArm::kResourceOrdering,
          TrialArm::kUpDown};
}

std::string ArmName(TrialArm arm) {
  switch (arm) {
    case TrialArm::kUntreated:
      return "untreated";
    case TrialArm::kRemovalIncremental:
      return "removal_incremental";
    case TrialArm::kRemovalRebuild:
      return "removal_rebuild";
    case TrialArm::kResourceOrdering:
      return "resource_ordering";
    case TrialArm::kUpDown:
      return "updown";
  }
  return "unknown";
}

std::optional<TrialArm> ParseArm(const std::string& name) {
  for (const TrialArm arm : AllArms()) {
    if (ArmName(arm) == name) {
      return arm;
    }
  }
  return std::nullopt;
}

std::vector<DesignSource> AllSources() {
  return {DesignSource::kSynthesized, DesignSource::kMesh,
          DesignSource::kTorus, DesignSource::kRing, DesignSource::kFatTree};
}

std::string SourceName(DesignSource source) {
  switch (source) {
    case DesignSource::kSynthesized:
      return "synthesized";
    case DesignSource::kMesh:
      return "mesh";
    case DesignSource::kTorus:
      return "torus";
    case DesignSource::kRing:
      return "ring";
    case DesignSource::kFatTree:
      return "fat_tree";
  }
  return "unknown";
}

std::optional<DesignSource> ParseSource(const std::string& name) {
  for (const DesignSource source : AllSources()) {
    if (SourceName(source) == name) {
      return source;
    }
  }
  return std::nullopt;
}

NocDesign GenerateTrialDesign(std::uint64_t seed,
                              const DesignEnvelope& envelope) {
  Require(envelope.min_cores <= envelope.max_cores &&
              envelope.min_fanout <= envelope.max_fanout &&
              envelope.min_hubs <= envelope.max_hubs &&
              envelope.min_cores_per_switch <= envelope.max_cores_per_switch,
          "GenerateTrialDesign: inverted envelope range");
  Require(envelope.min_cores >= envelope.max_hubs + 2,
          "GenerateTrialDesign: min_cores must exceed max_hubs + 2");
  Rng rng(seed);
  const auto draw = [&rng](std::size_t lo, std::size_t hi) {
    return lo + static_cast<std::size_t>(rng.NextBelow(hi - lo + 1));
  };
  SyntheticSocSpec spec;
  spec.cores = draw(envelope.min_cores, envelope.max_cores);
  spec.fanout = draw(envelope.min_fanout, envelope.max_fanout);
  spec.hubs = draw(envelope.min_hubs, envelope.max_hubs);
  spec.pipeline_length = draw(3, 7);
  spec.seed = rng.Next();
  const SocBenchmark soc = MakeSyntheticSoc(spec);
  const std::size_t per_switch = draw(envelope.min_cores_per_switch,
                                      envelope.max_cores_per_switch);
  const std::size_t switches =
      std::max<std::size_t>(2, (spec.cores + per_switch - 1) / per_switch);
  return SynthesizeDesign(soc.traffic, soc.name, switches);
}

NocDesign GenerateTrialDesign(DesignSource source, std::uint64_t seed,
                              const DesignEnvelope& envelope) {
  return GenerateTrialDesign(source, seed, envelope, nullptr);
}

NocDesign GenerateTrialDesign(DesignSource source, std::uint64_t seed,
                              const DesignEnvelope& envelope,
                              NextHopTable* table_out) {
  if (table_out != nullptr) {
    table_out->clear();
  }
  if (source == DesignSource::kSynthesized) {
    return GenerateTrialDesign(seed, envelope);
  }
  Require(envelope.min_cores <= envelope.max_cores,
          "GenerateTrialDesign: inverted envelope range");
  Rng rng(seed);
  const auto draw = [&rng](std::size_t lo, std::size_t hi) {
    return lo + static_cast<std::size_t>(rng.NextBelow(hi - lo + 1));
  };
  gen::GeneratorSpec spec;
  // Draw the traffic pattern first so the shape draws below stay aligned
  // across sources that share a seed.
  const auto patterns = gen::AllPatterns();
  spec.pattern = patterns[draw(0, patterns.size() - 1)];
  spec.uniform_fanout = draw(2, 4);
  spec.cores_per_switch = draw(1, 2);
  switch (source) {
    case DesignSource::kMesh:
      spec.family = gen::TopologyFamily::kMesh2D;
      spec.width = draw(4, 8);
      spec.height = draw(3, 7);
      break;
    case DesignSource::kTorus:
      spec.family = gen::TopologyFamily::kTorus2D;
      spec.width = draw(4, 8);
      spec.height = draw(3, 7);
      break;
    case DesignSource::kRing:
      spec.family = gen::TopologyFamily::kRing;
      spec.ring_nodes = draw(envelope.min_cores, envelope.max_cores);
      spec.cores_per_switch = 1;
      break;
    case DesignSource::kFatTree: {
      spec.family = gen::TopologyFamily::kFatTree;
      spec.tree_arity = draw(2, 4);
      // Levels sized so the leaf count lands near the envelope's core
      // range: 2^4=16, 3^3=27, 4^2=16 leaves.
      spec.tree_levels = 7 - spec.tree_arity;
      spec.tree_uplinks = draw(1, 2);
      break;
    }
    case DesignSource::kSynthesized:
      break;  // handled above
  }
  spec.seed = rng.Next();
  return gen::GenerateStandardDesign(spec, table_out);
}

TrialRow ClassifyTrial(const NocDesign& design, TrialArm arm,
                       const WorkloadConfig& workload, std::uint64_t seed) {
  TrialRow row;
  row.design_seed = seed;
  row.design = design.name;
  row.arm = arm;
  row.switches = design.topology.SwitchCount();
  row.links = design.topology.LinkCount();
  row.flows = design.traffic.FlowCount();
  row.channels_before = design.topology.ChannelCount();

  NocDesign treated = design;
  try {
    switch (arm) {
      case TrialArm::kUntreated:
        break;
      case TrialArm::kRemovalIncremental: {
        RemovalOptions options;
        options.engine = RemovalEngine::kIncremental;
        RemoveDeadlocks(treated, options);
        break;
      }
      case TrialArm::kRemovalRebuild: {
        RemovalOptions options;
        options.engine = RemovalEngine::kRebuild;
        RemoveDeadlocks(treated, options);
        break;
      }
      case TrialArm::kResourceOrdering:
        ApplyResourceOrdering(treated);
        break;
      case TrialArm::kUpDown:
        ApplyUpDownRouting(treated);
        break;
    }
  } catch (const TurnProhibitionInfeasibleError&) {
    // Not a contract breach: up*/down* genuinely cannot serve designs
    // whose bidirectional sub-topology is disconnected (the limitation
    // the paper's Section 1 critique is about). Record and move on.
    row.channels_after = row.channels_before;
    row.verdict = TrialVerdict::kArmInfeasible;
    return row;
  } catch (const std::exception& e) {
    row.mismatch_kind = MismatchKind::kTreatmentThrew;
    row.mismatch = "treatment threw: " + std::string(e.what());
    return row;
  }
  row.channels_after = treated.topology.ChannelCount();

  const DeadlockCertificate cert = CertifyDeadlockFreedom(treated);
  row.certified_free = cert.deadlock_free;
  row.certificate_checked = CheckCertificate(treated, cert);

  // Belt and braces: the certificate must survive a JSON round trip with
  // the same verdict from the independent checker.
  const DeadlockCertificate reloaded =
      CertificateFromJson(CertificateToJson(cert));
  if (CheckCertificate(treated, reloaded) != row.certificate_checked) {
    row.mismatch_kind = MismatchKind::kCertificateJsonRoundTrip;
    row.mismatch =
        "certificate changed checker verdict after JSON round trip";
    return row;
  }

  if (arm != TrialArm::kUntreated && !cert.deadlock_free) {
    row.mismatch_kind = MismatchKind::kTreatedLeftCycle;
    row.mismatch = ArmName(arm) + " left a CDG cycle (negative certificate)";
    return row;
  }

  if (cert.deadlock_free) {
    if (!row.certificate_checked) {
      row.mismatch_kind = MismatchKind::kCheckerRejectedPositive;
      row.mismatch = "positive certificate rejected by independent checker";
      return row;
    }
    const SimResult sim =
        SimulateWorkload(treated, MakeSimConfig(workload, seed, 0));
    FillSimFields(row, sim, 0);
    if (sim.deadlocked) {
      row.mismatch_kind = MismatchKind::kPositiveDeadlocked;
      row.mismatch = "positive certificate but the simulator deadlocked";
      return row;
    }
    if (!sim.AllDelivered()) {
      row.mismatch_kind = MismatchKind::kPositiveUndelivered;
      row.mismatch = "positive certificate but only " +
                     std::to_string(sim.packets_delivered) + " of " +
                     std::to_string(sim.packets_offered) +
                     " packets delivered";
      return row;
    }
    row.verdict = TrialVerdict::kPositiveDelivered;
    return row;
  }

  // Negative certificate: the counterexample must be a genuine CDG cycle
  // and the simulator must reproduce a circular wait lying on the CDG.
  //
  // A cyclic CDG is a *worst-case* property — a particular workload may
  // well complete (some cycles need a precise interleaving to close).
  // The escalation ladder therefore moves from the configured blanket
  // workload to the adversarial workload the certificate actually
  // predicts deadlock for: only the flows whose routes create the
  // counterexample cycle's edges, each injecting worms long enough to
  // span their whole route, so every cycle channel ends up held while
  // its successor is requested.
  const auto cdg = ChannelDependencyGraph::Build(treated);
  if (!IsCdgCycle(cdg, cert.counterexample)) {
    row.mismatch_kind = MismatchKind::kBadCounterexample;
    row.mismatch = "negative certificate counterexample is not a CDG cycle";
    return row;
  }
  const auto check_detonation = [&](const SimResult& sim,
                                    const ChannelDependencyGraph& graph) {
    // The simulator's circular wait chains channel c to the next channel
    // of c's head flit's route — exactly a CDG edge — so a reported
    // cycle must be a CDG cycle. (The stall watchdog may detect a
    // deadlock it cannot attribute to a channel-level cycle; an empty
    // report is acceptable, a wrong one is not.)
    if (!sim.deadlock_cycle.empty() && !IsCdgCycle(graph, sim.deadlock_cycle)) {
      row.mismatch_kind = MismatchKind::kWaitCycleOffCdg;
      row.mismatch = "simulator circular wait is not a CDG cycle";
      return;
    }
    row.verdict = TrialVerdict::kNegativeDetonated;
  };

  // Level 0: the full design under the configured blanket workload.
  {
    const SimResult sim =
        SimulateWorkload(treated, MakeSimConfig(workload, seed, 0));
    FillSimFields(row, sim, 0);
    if (sim.deadlocked) {
      check_detonation(sim, cdg);
      return row;
    }
  }

  // Focused levels: restrict to the counterexample's own flows.
  std::vector<bool> keep(treated.traffic.FlowCount(), false);
  std::size_t max_route = 1;
  for (std::size_t i = 0; i < cert.counterexample.size(); ++i) {
    const ChannelId from = cert.counterexample[i];
    const ChannelId to =
        cert.counterexample[(i + 1) % cert.counterexample.size()];
    const auto edge = cdg.FindEdge(from, to);
    for (const FlowId f : cdg.EdgeAt(*edge).flows) {
      keep[f.value()] = true;
      max_route =
          std::max(max_route, treated.routes.RouteOf(f).size());
    }
  }
  const NocDesign focused = KeepFlows(treated, keep);
  const auto focused_cdg = ChannelDependencyGraph::Build(focused);
  const std::uint16_t spanning_length = static_cast<std::uint16_t>(
      std::min<std::size_t>(max_route * workload.buffer_depth + 4, 4096));
  for (std::size_t esc = 1; esc <= workload.max_escalations; ++esc) {
    SimConfig cfg = MakeSimConfig(workload, seed, esc);
    if (esc <= 2) {
      // Worms long enough to span the longest kept route end to end —
      // the tail is still at the injector while the head blocks, so
      // every cycle channel a worm reaches stays held. Level 2 switches
      // to injection-first arbitration: the default in-network priority
      // can phase-lock a cyclic design into a live steady state (a
      // freed cycle channel is always re-taken by the parked waiter
      // that would otherwise starve), and the certificate's claim
      // quantifies over every legal arbitration order.
      cfg.traffic.packet_length = spanning_length;
      cfg.inject_first = esc == 2;
    } else {
      // Randomly staggered short packets close the remaining wait
      // cycles through full buffers rather than worm ownership;
      // different cycles need different pressure profiles, so the
      // levels walk a small (rate, length) grid with distinct traffic
      // seeds, alternating the arbitration order.
      static constexpr struct {
        double rate;
        std::uint16_t length;
      } kStaggeredLevels[] = {
          {0.08, 1}, {0.02, 2}, {0.25, 1}, {0.05, 3}, {0.12, 2},
      };
      const auto& level =
          kStaggeredLevels[(esc - 3) % std::size(kStaggeredLevels)];
      cfg.traffic.mode = InjectionMode::kBernoulli;
      cfg.traffic.reference_injection_rate = level.rate;
      cfg.traffic.packet_length = level.length;
      cfg.max_cycles = workload.max_cycles;
      cfg.inject_first = (esc % 2) == 0;
    }
    const SimResult sim = SimulateWorkload(focused, cfg);
    FillSimFields(row, sim, esc);
    if (sim.deadlocked) {
      check_detonation(sim, focused_cdg);
      return row;
    }
  }
  row.mismatch_kind = MismatchKind::kNoDetonation;
  row.mismatch =
      "negative certificate but the workload completed every escalation "
      "level (" +
      std::to_string(workload.max_escalations) + " focused)";
  return row;
}

TrialOutcome RunTrial(const NocDesign& design, TrialArm arm,
                      const WorkloadConfig& workload, std::uint64_t seed,
                      bool shrink, std::size_t trial_index) {
  const auto t0 = std::chrono::steady_clock::now();
  TrialOutcome out;
  out.row = ClassifyTrial(design, arm, workload, seed);
  out.row.trial_index = trial_index;
  if (out.row.verdict == TrialVerdict::kMismatch && shrink) {
    const ShrinkResult shrunk =
        ShrinkMismatch(design, arm, workload, seed, out.row.mismatch_kind);
    out.row.shrink_flows_kept = shrunk.design.traffic.FlowCount();
    out.row.shrink_steps = shrunk.steps;
    Repro repro;
    repro.design = shrunk.design;
    repro.arm = arm;
    repro.workload = workload;
    repro.seed = shrunk.seed;
    repro.mismatch = out.row.mismatch;
    repro.trial_index = trial_index;
    repro.shrink_steps = shrunk.steps;
    repro.io_stable = shrunk.io_stable;
    out.repro_json = ReproToJson(repro);
  }
  out.row.run_ms = MillisSince(t0);
  return out;
}

namespace {

/// First deterministic field on which two classifications of the same
/// (design, arm, workload, seed) trial disagree; empty when they agree.
/// Wall clock (run_ms) and shrink summaries are excluded by design.
std::string FirstDivergence(const TrialRow& a, const TrialRow& b) {
  const auto diff = [](const std::string& field, auto lhs, auto rhs) {
    return field + " (" + std::to_string(lhs) + " vs " +
           std::to_string(rhs) + ")";
  };
  if (a.channels_after != b.channels_after) {
    return diff("channels_after", a.channels_after, b.channels_after);
  }
  if (a.certified_free != b.certified_free) {
    return diff("certified_free", a.certified_free, b.certified_free);
  }
  if (a.certificate_checked != b.certificate_checked) {
    return diff("certificate_checked", a.certificate_checked,
                b.certificate_checked);
  }
  if (a.sim_deadlocked != b.sim_deadlocked) {
    return diff("sim_deadlocked", a.sim_deadlocked, b.sim_deadlocked);
  }
  if (a.all_delivered != b.all_delivered) {
    return diff("all_delivered", a.all_delivered, b.all_delivered);
  }
  if (a.cycles != b.cycles) {
    return diff("cycles", a.cycles, b.cycles);
  }
  if (a.packets_offered != b.packets_offered) {
    return diff("packets_offered", a.packets_offered, b.packets_offered);
  }
  if (a.packets_delivered != b.packets_delivered) {
    return diff("packets_delivered", a.packets_delivered,
                b.packets_delivered);
  }
  if (a.escalations != b.escalations) {
    return diff("escalations", a.escalations, b.escalations);
  }
  if (a.verdict != b.verdict) {
    return diff("verdict", static_cast<int>(a.verdict),
                static_cast<int>(b.verdict));
  }
  if (a.mismatch_kind != b.mismatch_kind) {
    return diff("mismatch_kind", static_cast<int>(a.mismatch_kind),
                static_cast<int>(b.mismatch_kind));
  }
  return {};
}

}  // namespace

TrialOutcome RunTrialEngines(const NocDesign& design, TrialArm arm,
                             const WorkloadConfig& workload,
                             const std::vector<SimEngine>& engines,
                             std::uint64_t seed, bool shrink,
                             std::size_t trial_index) {
  Require(!engines.empty(),
          "RunTrialEngines: at least one engine required");
  WorkloadConfig primary = workload;
  primary.engine = engines.front();
  TrialOutcome out =
      RunTrial(design, arm, primary, seed, shrink, trial_index);
  if (out.row.verdict == TrialVerdict::kMismatch) {
    return out;  // already a contract breach; one breach per row
  }
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t e = 1; e < engines.size(); ++e) {
    WorkloadConfig secondary = workload;
    secondary.engine = engines[e];
    const TrialRow other = ClassifyTrial(design, arm, secondary, seed);
    const std::string divergence = FirstDivergence(out.row, other);
    if (!divergence.empty()) {
      out.row.verdict = TrialVerdict::kMismatch;
      out.row.mismatch_kind = MismatchKind::kEngineDivergence;
      out.row.mismatch = "engine divergence " +
                         EngineName(engines.front()) + " vs " +
                         EngineName(engines[e]) + ": " + divergence;
      break;
    }
  }
  out.row.run_ms += MillisSince(t0);
  return out;
}

CampaignResult RunCampaign(const CampaignConfig& config) {
  Require(!config.arms.empty(), "RunCampaign: at least one arm required");
  Require(!config.sources.empty(),
          "RunCampaign: at least one design source required");
  CampaignResult result;
  std::vector<TrialOutcome> outcomes =
      runner::ParallelMapIndexed<TrialOutcome>(
          config.trials, config.threads, [&](std::size_t i) {
            const std::size_t design_index = i / config.arms.size();
            const TrialArm arm = config.arms[i % config.arms.size()];
            const DesignSource source =
                config.sources[design_index % config.sources.size()];
            const std::uint64_t seed =
                runner::JobSeed(config.base_seed, design_index);
            TrialOutcome out;
            try {
              const NocDesign design =
                  GenerateTrialDesign(source, seed, config.envelope);
              if (config.engines.size() > 1) {
                out = RunTrialEngines(design, arm, config.workload,
                                      config.engines, seed, config.shrink,
                                      i);
              } else {
                WorkloadConfig workload = config.workload;
                if (!config.engines.empty()) {
                  workload.engine = config.engines.front();
                }
                out = RunTrial(design, arm, workload, seed, config.shrink,
                               i);
              }
            } catch (const std::exception& e) {
              out.row.design_seed = seed;
              out.row.arm = arm;
              out.row.mismatch = "trial threw: " + std::string(e.what());
              out.row.mismatch_kind = MismatchKind::kTrialThrew;
              out.row.verdict = TrialVerdict::kMismatch;
            }
            out.row.trial_index = i;
            out.row.source = source;
            return out;
          });
  result.rows.reserve(outcomes.size());
  for (TrialOutcome& out : outcomes) {
    switch (out.row.verdict) {
      case TrialVerdict::kPositiveDelivered:
        ++result.positives;
        break;
      case TrialVerdict::kNegativeDetonated:
        ++result.detonations;
        break;
      case TrialVerdict::kArmInfeasible:
        ++result.infeasibles;
        break;
      case TrialVerdict::kMismatch:
        ++result.mismatches;
        break;
    }
    if (!out.repro_json.empty()) {
      result.repros.emplace_back(out.row.trial_index,
                                 std::move(out.repro_json));
    }
    result.rows.push_back(std::move(out.row));
  }
  result.digest = Digest(result.rows);
  return result;
}

std::uint64_t Digest(const std::vector<TrialRow>& rows) {
  std::uint64_t h = kFnvOffsetBasis;
  for (const TrialRow& row : rows) {
    DigestField(h, row.trial_index);
    DigestField(h, row.design_seed);
    DigestField(h, row.design);
    DigestField(h, SourceName(row.source));
    DigestField(h, ArmName(row.arm));
    DigestField(h, row.switches);
    DigestField(h, row.links);
    DigestField(h, row.flows);
    DigestField(h, row.channels_before);
    DigestField(h, row.channels_after);
    DigestField(h, static_cast<std::uint64_t>(row.certified_free));
    DigestField(h, static_cast<std::uint64_t>(row.certificate_checked));
    DigestField(h, static_cast<std::uint64_t>(row.sim_deadlocked));
    DigestField(h, static_cast<std::uint64_t>(row.all_delivered));
    DigestField(h, row.cycles);
    DigestField(h, row.packets_offered);
    DigestField(h, row.packets_delivered);
    DigestField(h, row.escalations);
    DigestField(h, static_cast<std::uint64_t>(row.verdict));
    DigestField(h, static_cast<std::uint64_t>(row.mismatch_kind));
    DigestField(h, row.mismatch);
    DigestField(h, row.shrink_flows_kept);
    DigestField(h, row.shrink_steps);
  }
  return h;
}

JsonObject RowToJson(const TrialRow& row) {
  JsonObject json;
  json.Set("trial", row.trial_index)
      .Set("design_seed", row.design_seed)
      .Set("design", row.design)
      .Set("source", SourceName(row.source))
      .Set("arm", ArmName(row.arm))
      .Set("switches", row.switches)
      .Set("links", row.links)
      .Set("flows", row.flows)
      .Set("channels_before", row.channels_before)
      .Set("channels_after", row.channels_after)
      .Set("certified_free", row.certified_free)
      .Set("certificate_checked", row.certificate_checked)
      .Set("sim_deadlocked", row.sim_deadlocked)
      .Set("all_delivered", row.all_delivered)
      .Set("cycles", row.cycles)
      .Set("packets_offered", row.packets_offered)
      .Set("packets_delivered", row.packets_delivered)
      .Set("escalations", row.escalations)
      .Set("verdict",
           row.verdict == TrialVerdict::kPositiveDelivered
               ? "positive_delivered"
               : row.verdict == TrialVerdict::kNegativeDetonated
                     ? "negative_detonated"
                     : row.verdict == TrialVerdict::kArmInfeasible
                           ? "arm_infeasible"
                           : "mismatch")
      .Set("run_ms", row.run_ms);
  if (!row.mismatch.empty()) {
    json.Set("mismatch", row.mismatch)
        .Set("mismatch_kind",
             static_cast<std::uint64_t>(row.mismatch_kind))
        .Set("shrink_flows_kept", row.shrink_flows_kept)
        .Set("shrink_steps", row.shrink_steps);
  }
  return json;
}

}  // namespace nocdr::valid
