// Replayable repro dumps for validation-campaign mismatches.
//
// A repro is one self-contained JSON object: the shrunk design in the
// noc/io text format (embedded as a string), the treatment arm, the full
// workload configuration and the exact seed under which the mismatch was
// observed. ReplayRepro re-runs the identical trial pipeline, so a dump
// attached to a bug report reproduces the disagreement on any machine
// with one command (bench_validation_campaign --replay <file>).
#pragma once

#include <string>

#include "noc/design.h"
#include "valid/campaign.h"

namespace nocdr::valid {

struct Repro {
  NocDesign design;
  TrialArm arm = TrialArm::kUntreated;
  WorkloadConfig workload;
  std::uint64_t seed = 0;
  /// Mismatch text observed by the dumping campaign.
  std::string mismatch;
  std::size_t trial_index = 0;
  std::size_t shrink_steps = 0;
  /// False when the design only mismatched under a channel numbering
  /// the text format cannot express (ShrinkResult::io_stable); the
  /// replay may then legitimately come back clean.
  bool io_stable = true;
};

/// Serializes \p repro as one JSON object (design embedded via
/// WriteDesign).
std::string ReproToJson(const Repro& repro);

/// Parses a dump written by ReproToJson; throws InvalidModelError /
/// DesignParseError on malformed input.
Repro ReproFromJson(const std::string& json);

struct ReplayResult {
  TrialRow row;
  /// True when the replay reproduced a contract mismatch.
  bool reproduced = false;
};

/// Re-runs the trial a repro captured.
ReplayResult ReplayRepro(const Repro& repro);

}  // namespace nocdr::valid
