// Fault-injection validation campaign: the incremental
// reconfiguration pipeline (src/fault) against its from-scratch
// reference and against the cycle-accurate simulator, at scale.
//
// Each trial: generate a design (same five sources as the base
// campaign), make it deadlock-free with the removal algorithm, then
// replay a seeded FaultPlan burst by burst. Every burst runs twice in
// lockstep — ApplyFaultBurst on a live (CDG, finder) pair and
// ApplyFaultBurstRebuild on a pristine copy — and the contract is:
//
//   * both paths must agree on feasibility, the affected-flow set, the
//     detour/rip-up split, the removal outcome and the final design
//     (routes compared flow by flow);
//   * the incrementally maintained CDG must be bit-identical to a
//     from-scratch rebuild of the post-burst design;
//   * the post-fault certificate (computed from the maintained CDG via
//     CertifyFromCdg) must be positive, accepted by the independent
//     checker, survive a JSON round trip, and match the certificate the
//     rebuild path derives from scratch;
//   * a drain-and-restart transition simulation must deliver every
//     packet with no deadlock — the certificate's claim, carried across
//     the reconfiguration boundary;
//   * a mid-flight transition simulation must account for every packet
//     (delivered + dropped-by-the-fault = offered) unless it hits a
//     cross-epoch deadlock, which is recorded, not a mismatch — mixed
//     old/new-route traffic is outside any single certificate's claim;
//   * a burst reported infeasible must name genuinely disconnected
//     flows (re-checked by an independent BFS here); the trial then
//     ends with the distinct kDisconnected verdict, not a mismatch.
//
// Trials are pure functions of (base_seed, trial index); Digest() makes
// thread-count determinism checkable in one comparison, exactly like
// the base campaign.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "fault/plan.h"
#include "sim/simulator.h"
#include "util/json.h"
#include "valid/campaign.h"

namespace nocdr::valid {

enum class FaultVerdict {
  /// Every burst reconfigured, re-certified and simulated clean.
  kReconfigured,
  /// Some burst disconnected at least one flow; verified and recorded.
  /// The distinct non-mismatch outcome for infeasible reconfigurations.
  kDisconnected,
  /// The contract broke; FaultTrialRow::mismatch says where.
  kMismatch,
};

enum class FaultMismatchKind {
  kNone = 0,
  kTrialThrew,
  kPreCertificateNegative,
  /// Incremental and rebuild paths disagreed (feasibility, affected
  /// flows, routes, removal outcome, channel count or certificate).
  kEngineDiverged,
  /// Maintained CDG != from-scratch rebuild of the same design.
  kCdgDesync,
  /// A flow reported disconnected is actually still reachable.
  kFalseDisconnect,
  kPostCertificateNegative,
  kCheckerRejectedCertificate,
  kCertificateJsonRoundTrip,
  /// Positive post-fault certificate but the plain post-fault workload
  /// deadlocked / lost packets.
  kPostSimDeadlocked,
  kPostSimUndelivered,
  kDrainDeadlocked,
  kDrainUndelivered,
  /// Mid-flight transition finished without deadlock but lost packets
  /// beyond the ones the fault destroyed.
  kMidflightLost,
};

/// Workload of the per-burst transition simulations.
struct FaultWorkload {
  std::uint16_t buffer_depth = 1;
  std::uint32_t packets_per_flow = 4;
  std::uint16_t packet_length = 8;
  std::uint64_t max_cycles = 200000;
  std::uint64_t stall_threshold = 2000;
  /// Cycle the fault strikes / the drain begins.
  std::uint64_t transition_cycle = 64;
  SimEngine engine = SimEngine::kWorklist;
};

/// Outcome of one fault trial. Every field except run_ms is a
/// deterministic function of (source, seed, config).
struct FaultTrialRow {
  std::size_t trial_index = 0;
  std::uint64_t design_seed = 0;
  std::string design;
  DesignSource source = DesignSource::kSynthesized;

  // Design shape after the initial removal treatment.
  std::size_t switches = 0;
  std::size_t links = 0;
  std::size_t flows = 0;
  std::size_t channels_initial = 0;
  std::size_t channels_final = 0;
  bool table_routed = false;

  // Fault plan execution.
  std::size_t bursts_planned = 0;
  std::size_t bursts_applied = 0;
  std::size_t failed_links = 0;
  std::size_t failed_switches = 0;
  std::size_t affected_flows = 0;
  std::size_t disconnected_flows = 0;
  std::size_t table_detours = 0;
  std::size_t ripup_reroutes = 0;

  // Post-fault removal re-runs, summed over applied bursts.
  std::size_t removal_iterations = 0;
  std::size_t removal_vcs_added = 0;

  // Post-fault and transition simulations, summed over applied bursts.
  std::uint64_t post_delivered = 0;
  std::uint64_t drain_cycles = 0;
  std::uint64_t drain_delivered = 0;
  std::uint64_t midflight_dropped = 0;
  std::uint64_t midflight_delivered = 0;
  std::size_t midflight_deadlocks = 0;

  FaultVerdict verdict = FaultVerdict::kMismatch;
  FaultMismatchKind mismatch_kind = FaultMismatchKind::kNone;
  /// Empty unless verdict == kMismatch.
  std::string mismatch;

  // Wall clock; excluded from Digest and determinism guarantees.
  double run_ms = 0.0;
};

/// Stable lowercase identifier ("reconfigured", "disconnected",
/// "mismatch").
std::string FaultVerdictName(FaultVerdict verdict);

struct FaultCampaignConfig {
  /// Trial i draws source sources[i % sources.size()] with seed
  /// runner::JobSeed(base_seed, i).
  std::size_t trials = 500;
  std::uint64_t base_seed = 1;
  /// Worker threads; 0 means hardware concurrency.
  std::size_t threads = 0;
  std::vector<DesignSource> sources = AllSources();
  DesignEnvelope envelope;
  FaultWorkload workload;
  fault::FaultPlanOptions plan;
};

/// Runs one trial; deterministic in its arguments, never throws for
/// pipeline failures (they become mismatch rows).
FaultTrialRow RunFaultTrial(DesignSource source, std::uint64_t seed,
                            const FaultCampaignConfig& config);

struct FaultCampaignResult {
  std::vector<FaultTrialRow> rows;
  std::size_t reconfigured = 0;
  std::size_t disconnected = 0;
  std::size_t mismatches = 0;
  /// FNV-1a over the deterministic row fields; byte-identical for any
  /// thread count.
  std::uint64_t digest = 0;
};

/// Runs the whole campaign over an internal thread pool.
FaultCampaignResult RunFaultCampaign(const FaultCampaignConfig& config);

/// FNV-1a digest over the deterministic fields of \p rows, in order.
std::uint64_t FaultDigest(const std::vector<FaultTrialRow>& rows);

/// Renders \p row as a flat JSON object for BENCH_*.json emission.
JsonObject FaultRowToJson(const FaultTrialRow& row);

}  // namespace nocdr::valid
