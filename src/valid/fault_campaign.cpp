#include "valid/fault_campaign.h"

#include <algorithm>
#include <chrono>
#include <exception>

#include "cdg/cdg.h"
#include "cdg/incremental.h"
#include "deadlock/removal.h"
#include "deadlock/verify.h"
#include "fault/reconfigure.h"
#include "runner/parallel_map.h"
#include "runner/sweep.h"
#include "sim/transition.h"
#include "util/digest.h"
#include "util/error.h"

namespace nocdr::valid {

namespace {

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// Independent disconnect re-check: plain forward BFS over surviving
/// links, sharing no code with the reconfiguration pipeline's
/// feasibility scan.
bool IndependentlyReachable(const NocDesign& design,
                            const fault::FaultState& state, SwitchId src,
                            SwitchId dst) {
  if (state.SwitchFailed(src) || state.SwitchFailed(dst)) {
    return false;
  }
  std::vector<char> seen(design.topology.SwitchCount(), 0);
  std::vector<std::uint32_t> queue{src.value()};
  seen[src.value()] = 1;
  for (std::size_t head = 0; head < queue.size(); ++head) {
    if (SwitchId(queue[head]) == dst) {
      return true;
    }
    for (const LinkId l : design.topology.OutLinks(SwitchId(queue[head]))) {
      if (state.LinkFailed(l)) {
        continue;
      }
      const SwitchId w = design.topology.LinkAt(l).dst;
      if (!seen[w.value()] && !state.SwitchFailed(w)) {
        seen[w.value()] = 1;
        queue.push_back(w.value());
      }
    }
  }
  return false;
}

bool SameRoutes(const NocDesign& a, const NocDesign& b) {
  if (a.traffic.FlowCount() != b.traffic.FlowCount()) {
    return false;
  }
  for (std::size_t f = 0; f < a.traffic.FlowCount(); ++f) {
    if (a.routes.RouteOf(FlowId(f)) != b.routes.RouteOf(FlowId(f))) {
      return false;
    }
  }
  return true;
}

SimConfig MakeSimConfig(const FaultWorkload& workload, std::uint64_t seed) {
  SimConfig cfg;
  cfg.engine = workload.engine;
  cfg.buffer_depth = workload.buffer_depth;
  cfg.max_cycles = workload.max_cycles;
  cfg.stall_threshold = workload.stall_threshold;
  cfg.deadlock_check_interval = 256;
  cfg.traffic.mode = InjectionMode::kFixedCount;
  cfg.traffic.packets_per_flow = workload.packets_per_flow;
  cfg.traffic.packet_length = workload.packet_length;
  cfg.traffic.seed = seed;
  return cfg;
}

struct Fail {
  FaultMismatchKind kind;
  std::string message;
};

}  // namespace

std::string FaultVerdictName(FaultVerdict verdict) {
  switch (verdict) {
    case FaultVerdict::kReconfigured:
      return "reconfigured";
    case FaultVerdict::kDisconnected:
      return "disconnected";
    case FaultVerdict::kMismatch:
      return "mismatch";
  }
  return "unknown";
}

FaultTrialRow RunFaultTrial(DesignSource source, std::uint64_t seed,
                            const FaultCampaignConfig& config) {
  const auto t0 = std::chrono::steady_clock::now();
  FaultTrialRow row;
  row.design_seed = seed;
  row.source = source;

  const auto fail = [&](FaultMismatchKind kind,
                        const std::string& message) -> FaultTrialRow& {
    row.verdict = FaultVerdict::kMismatch;
    row.mismatch_kind = kind;
    row.mismatch = message;
    row.run_ms = MillisSince(t0);
    return row;
  };

  try {
    NextHopTable table;
    NocDesign design =
        GenerateTrialDesign(source, seed, config.envelope, &table);
    row.design = design.name;
    row.switches = design.topology.SwitchCount();
    row.links = design.topology.LinkCount();
    row.flows = design.traffic.FlowCount();
    row.table_routed = !table.empty();

    // Start from a certified deadlock-free configuration.
    RemoveDeadlocks(design);
    row.channels_initial = design.topology.ChannelCount();

    auto cdg = ChannelDependencyGraph::Build(design);
    DirtyCycleFinder finder(cdg);
    {
      const DeadlockCertificate pre = CertifyFromCdg(design, cdg);
      if (!pre.deadlock_free || !CheckCertificate(design, pre)) {
        return fail(FaultMismatchKind::kPreCertificateNegative,
                    "treated design failed pre-fault certification");
      }
    }

    const fault::FaultPlan plan =
        fault::DrawFaultPlan(design, runner::JobSeed(seed, 0xfa01),
                             config.plan);
    row.bursts_planned = plan.bursts.size();

    // The rebuild reference runs the same plan on its own copies.
    NocDesign design_reb = design;
    NextHopTable table_inc = table;
    NextHopTable table_reb = table;
    fault::FaultState state_inc = fault::FaultState::None(design);
    fault::FaultState state_reb = fault::FaultState::None(design_reb);
    fault::ReconfigureOptions opts_inc;
    opts_inc.table = table_inc.empty() ? nullptr : &table_inc;
    fault::ReconfigureOptions opts_reb;
    opts_reb.table = table_reb.empty() ? nullptr : &table_reb;

    for (std::size_t b = 0; b < plan.bursts.size(); ++b) {
      const fault::FaultBurst& burst = plan.bursts[b];
      const RouteSet pre_routes = design.routes;

      const fault::ReconfigureReport rep_inc = fault::ApplyFaultBurst(
          design, cdg, finder, state_inc, burst, opts_inc);
      const fault::ReconfigureReport rep_reb =
          fault::ApplyFaultBurstRebuild(design_reb, state_reb, burst,
                                        opts_reb);

      if (rep_inc.infeasible() != rep_reb.infeasible() ||
          rep_inc.affected_flows != rep_reb.affected_flows ||
          rep_inc.disconnected_flows != rep_reb.disconnected_flows) {
        return fail(FaultMismatchKind::kEngineDiverged,
                    "incremental and rebuild paths disagree on burst " +
                        std::to_string(b) + " feasibility/affected set");
      }

      if (rep_inc.infeasible()) {
        // The infeasibility claim must be genuine: every named flow
        // really has no surviving path.
        fault::FaultState probe = state_inc;
        probe.Apply(design, burst);
        for (const FlowId f : rep_inc.disconnected_flows) {
          const Flow& flow = design.traffic.FlowAt(f);
          if (IndependentlyReachable(design, probe,
                                     design.attachment[flow.src.value()],
                                     design.attachment[flow.dst.value()])) {
            return fail(FaultMismatchKind::kFalseDisconnect,
                        "flow " + std::to_string(f.value()) +
                            " reported disconnected but is reachable");
          }
        }
        row.disconnected_flows = rep_inc.disconnected_flows.size();
        row.affected_flows += rep_inc.affected_flows.size();
        row.verdict = FaultVerdict::kDisconnected;
        row.channels_final = design.topology.ChannelCount();
        row.failed_links = state_inc.FailedLinkCount();
        row.failed_switches = state_inc.FailedSwitchCount();
        row.run_ms = MillisSince(t0);
        return row;
      }

      ++row.bursts_applied;
      row.affected_flows += rep_inc.affected_flows.size();
      row.table_detours += rep_inc.table_detours;
      row.ripup_reroutes += rep_inc.ripup_reroutes;
      row.removal_iterations += rep_inc.removal.iterations;
      row.removal_vcs_added += rep_inc.removal.vcs_added;

      // Both paths must land on the same design.
      if (design.topology.ChannelCount() !=
              design_reb.topology.ChannelCount() ||
          !SameRoutes(design, design_reb) ||
          rep_inc.removal.iterations != rep_reb.removal.iterations ||
          rep_inc.removal.vcs_added != rep_reb.removal.vcs_added) {
        return fail(FaultMismatchKind::kEngineDiverged,
                    "incremental and rebuild designs diverged after "
                    "burst " +
                        std::to_string(b));
      }

      // The maintained CDG must equal a from-scratch rebuild.
      if (!cdg.SameDependencies(ChannelDependencyGraph::Build(design))) {
        return fail(FaultMismatchKind::kCdgDesync,
                    "maintained CDG diverged from rebuild after burst " +
                        std::to_string(b));
      }

      // Re-certification: maintained-CDG certificate, independently
      // checked, JSON-round-tripped and cross-checked against the
      // rebuild path's from-scratch certificate.
      const DeadlockCertificate cert = CertifyFromCdg(design, cdg);
      if (!cert.deadlock_free) {
        return fail(FaultMismatchKind::kPostCertificateNegative,
                    "post-fault removal left a CDG cycle on burst " +
                        std::to_string(b));
      }
      if (!CheckCertificate(design, cert)) {
        return fail(FaultMismatchKind::kCheckerRejectedCertificate,
                    "post-fault certificate rejected by checker on "
                    "burst " +
                        std::to_string(b));
      }
      const DeadlockCertificate reloaded =
          CertificateFromJson(CertificateToJson(cert));
      if (!CheckCertificate(design, reloaded)) {
        return fail(FaultMismatchKind::kCertificateJsonRoundTrip,
                    "post-fault certificate changed verdict after JSON "
                    "round trip");
      }
      const DeadlockCertificate scratch = CertifyDeadlockFreedom(design_reb);
      if (scratch.deadlock_free != cert.deadlock_free ||
          scratch.topological_order != cert.topological_order) {
        return fail(FaultMismatchKind::kEngineDiverged,
                    "maintained-CDG certificate differs from the "
                    "from-scratch certificate on burst " +
                        std::to_string(b));
      }

      // Post-fault certificate vs. post-fault simulation: the workload
      // must run clean on the reconfigured design.
      const std::vector<char> dead =
          fault::DeadChannelMask(design, state_inc);
      {
        const SimResult sim = SimulateWorkload(
            design,
            MakeSimConfig(config.workload, runner::JobSeed(seed, 3 * b)));
        if (sim.deadlocked) {
          return fail(FaultMismatchKind::kPostSimDeadlocked,
                      "positive post-fault certificate but the simulator "
                      "deadlocked on burst " +
                          std::to_string(b));
        }
        if (!sim.AllDelivered()) {
          return fail(FaultMismatchKind::kPostSimUndelivered,
                      "positive post-fault certificate but packets "
                      "undelivered on burst " +
                          std::to_string(b));
        }
        row.post_delivered += sim.packets_delivered;
      }

      // Transition disciplines across the reconfiguration boundary.
      TransitionConfig tconfig;
      tconfig.sim =
          MakeSimConfig(config.workload, runner::JobSeed(seed, 3 * b + 1));
      tconfig.transition_cycle = config.workload.transition_cycle;
      tconfig.policy = TransitionPolicy::kDrainAndRestart;
      {
        const TransitionResult drain =
            SimulateTransition(design, pre_routes, dead, tconfig);
        if (drain.sim.deadlocked) {
          return fail(FaultMismatchKind::kDrainDeadlocked,
                      "drain-and-restart transition deadlocked on burst " +
                          std::to_string(b));
        }
        if (!drain.sim.AllDelivered() || drain.packets_dropped != 0) {
          return fail(FaultMismatchKind::kDrainUndelivered,
                      "drain-and-restart transition lost packets on "
                      "burst " +
                          std::to_string(b));
        }
        row.drain_cycles += drain.drain_cycles;
        row.drain_delivered += drain.sim.packets_delivered;
      }
      tconfig.sim =
          MakeSimConfig(config.workload, runner::JobSeed(seed, 3 * b + 2));
      tconfig.policy = TransitionPolicy::kMidFlight;
      {
        const TransitionResult mid =
            SimulateTransition(design, pre_routes, dead, tconfig);
        row.midflight_dropped += mid.packets_dropped;
        row.midflight_delivered += mid.sim.packets_delivered;
        if (mid.sim.deadlocked) {
          // Cross-epoch circular waits are real and outside any single
          // certificate's claim; recorded, not a contract breach.
          ++row.midflight_deadlocks;
        } else if (!mid.AllAccountedFor()) {
          return fail(FaultMismatchKind::kMidflightLost,
                      "mid-flight transition lost packets beyond the "
                      "fault's drops on burst " +
                          std::to_string(b));
        }
      }
    }

    row.channels_final = design.topology.ChannelCount();
    row.failed_links = state_inc.FailedLinkCount();
    row.failed_switches = state_inc.FailedSwitchCount();
    row.verdict = FaultVerdict::kReconfigured;
  } catch (const std::exception& e) {
    return fail(FaultMismatchKind::kTrialThrew,
                "trial threw: " + std::string(e.what()));
  }
  row.run_ms = MillisSince(t0);
  return row;
}

FaultCampaignResult RunFaultCampaign(const FaultCampaignConfig& config) {
  Require(!config.sources.empty(),
          "RunFaultCampaign: at least one design source required");
  FaultCampaignResult result;
  result.rows = runner::ParallelMapIndexed<FaultTrialRow>(
      config.trials, config.threads, [&](std::size_t i) {
        const DesignSource source =
            config.sources[i % config.sources.size()];
        const std::uint64_t seed = runner::JobSeed(config.base_seed, i);
        FaultTrialRow row = RunFaultTrial(source, seed, config);
        row.trial_index = i;
        return row;
      });
  for (const FaultTrialRow& row : result.rows) {
    switch (row.verdict) {
      case FaultVerdict::kReconfigured:
        ++result.reconfigured;
        break;
      case FaultVerdict::kDisconnected:
        ++result.disconnected;
        break;
      case FaultVerdict::kMismatch:
        ++result.mismatches;
        break;
    }
  }
  result.digest = FaultDigest(result.rows);
  return result;
}

std::uint64_t FaultDigest(const std::vector<FaultTrialRow>& rows) {
  std::uint64_t h = kFnvOffsetBasis;
  for (const FaultTrialRow& row : rows) {
    DigestField(h, row.trial_index);
    DigestField(h, row.design_seed);
    DigestField(h, row.design);
    DigestField(h, SourceName(row.source));
    DigestField(h, row.switches);
    DigestField(h, row.links);
    DigestField(h, row.flows);
    DigestField(h, row.channels_initial);
    DigestField(h, row.channels_final);
    DigestField(h, static_cast<std::uint64_t>(row.table_routed));
    DigestField(h, row.bursts_planned);
    DigestField(h, row.bursts_applied);
    DigestField(h, row.failed_links);
    DigestField(h, row.failed_switches);
    DigestField(h, row.affected_flows);
    DigestField(h, row.disconnected_flows);
    DigestField(h, row.table_detours);
    DigestField(h, row.ripup_reroutes);
    DigestField(h, row.removal_iterations);
    DigestField(h, row.removal_vcs_added);
    DigestField(h, row.drain_cycles);
    DigestField(h, row.drain_delivered);
    DigestField(h, row.post_delivered);
    DigestField(h, row.midflight_dropped);
    DigestField(h, row.midflight_delivered);
    DigestField(h, row.midflight_deadlocks);
    DigestField(h, FaultVerdictName(row.verdict));
    DigestField(h, static_cast<std::uint64_t>(row.mismatch_kind));
    DigestField(h, row.mismatch);
  }
  return h;
}

JsonObject FaultRowToJson(const FaultTrialRow& row) {
  JsonObject json;
  json.Set("trial", row.trial_index)
      .Set("design_seed", row.design_seed)
      .Set("design", row.design)
      .Set("source", SourceName(row.source))
      .Set("switches", row.switches)
      .Set("links", row.links)
      .Set("flows", row.flows)
      .Set("channels_initial", row.channels_initial)
      .Set("channels_final", row.channels_final)
      .Set("table_routed", row.table_routed)
      .Set("bursts_planned", row.bursts_planned)
      .Set("bursts_applied", row.bursts_applied)
      .Set("failed_links", row.failed_links)
      .Set("failed_switches", row.failed_switches)
      .Set("affected_flows", row.affected_flows)
      .Set("disconnected_flows", row.disconnected_flows)
      .Set("table_detours", row.table_detours)
      .Set("ripup_reroutes", row.ripup_reroutes)
      .Set("removal_iterations", row.removal_iterations)
      .Set("removal_vcs_added", row.removal_vcs_added)
      .Set("drain_cycles", row.drain_cycles)
      .Set("drain_delivered", row.drain_delivered)
      .Set("post_delivered", row.post_delivered)
      .Set("midflight_dropped", row.midflight_dropped)
      .Set("midflight_delivered", row.midflight_delivered)
      .Set("midflight_deadlocks", row.midflight_deadlocks)
      .Set("verdict", FaultVerdictName(row.verdict))
      .Set("run_ms", row.run_ms);
  if (!row.mismatch.empty()) {
    json.Set("mismatch", row.mismatch)
        .Set("mismatch_kind", static_cast<std::uint64_t>(row.mismatch_kind));
  }
  return json;
}

}  // namespace nocdr::valid
