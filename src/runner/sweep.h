// SweepRunner: parallel batch execution of deadlock-removal experiments.
//
// Every experiment harness in bench/ used to hand-roll the same loop:
// synthesize a design, run a deadlock-handling method, collect VC counts
// and wall-clock times. SweepRunner centralizes that as a job batch
// executed over a thread pool: one job = one (design factory ×
// RemovalOptions) point, one row = its outcome.
//
// Determinism contract: each job gets its own Rng seeded purely from
// (base_seed, job index) — never from time, thread id or schedule — and
// rows are written to result slots indexed by job. The deterministic
// fields of the aggregate are therefore byte-identical for any thread
// count, which Digest() makes checkable in one comparison (wall-clock
// fields are excluded). tests/test_runner.cpp pins this contract.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "deadlock/removal.h"
#include "noc/design.h"
#include "util/json.h"
#include "util/rng.h"

namespace nocdr::runner {

/// Which deadlock-handling method a job runs.
enum class SweepMethod {
  kRemoval,           // Algorithm 1 (RemoveDeadlocks, per job options)
  kResourceOrdering,  // Dally/Towles distance classes (baseline)
};

/// One point of a sweep.
struct SweepJob {
  /// Label of the design family (for rows and tables).
  std::string design;
  /// Label of the option set / method arm.
  std::string variant;
  /// Builds the design; must be deterministic given the Rng it receives
  /// (the runner seeds it from the job index alone).
  std::function<NocDesign(Rng&)> factory;
  RemovalOptions options{};
  SweepMethod method = SweepMethod::kRemoval;
};

/// Outcome of one job. All fields except the *_ms timings are
/// deterministic functions of (job, base_seed).
struct SweepRow {
  std::size_t job_index = 0;
  std::string design;
  std::string variant;
  std::uint64_t seed = 0;

  // Design shape.
  std::size_t switches = 0;
  std::size_t links = 0;
  std::size_t flows = 0;
  std::size_t channels = 0;  // after treatment

  // Method outcome.
  bool initially_deadlock_free = false;
  std::size_t iterations = 0;
  std::size_t vcs_added = 0;
  std::size_t flows_rerouted = 0;
  std::size_t cycle_bfs_runs = 0;
  bool deadlock_free = false;
  /// Non-empty iff the job threw; the sweep itself never throws.
  std::string error;

  // Wall-clock (excluded from Digest and from determinism guarantees).
  double factory_ms = 0.0;
  double run_ms = 0.0;
};

struct SweepConfig {
  /// Worker threads; 0 means hardware concurrency.
  std::size_t threads = 0;
  /// Base seed every per-job seed is derived from.
  std::uint64_t base_seed = 1;
};

/// Seed of job \p job_index under \p base_seed (SplitMix64-style mix;
/// public so tests and harnesses can reproduce single jobs).
std::uint64_t JobSeed(std::uint64_t base_seed, std::size_t job_index);

/// FNV-1a digest over the deterministic fields of \p rows, in row order.
std::uint64_t Digest(const std::vector<SweepRow>& rows);

/// Renders \p row as a flat JSON object for BENCH_*.json emission.
JsonObject RowToJson(const SweepRow& row);

/// Executes job batches on an internal thread pool.
class SweepRunner {
 public:
  explicit SweepRunner(SweepConfig config = {});

  /// Runs every job; the returned vector is indexed like \p jobs.
  /// Per-job exceptions are captured into SweepRow::error.
  [[nodiscard]] std::vector<SweepRow> Run(
      const std::vector<SweepJob>& jobs) const;

  [[nodiscard]] const SweepConfig& config() const { return config_; }

 private:
  SweepConfig config_;
};

}  // namespace nocdr::runner
