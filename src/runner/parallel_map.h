// Deterministic parallel map over a job index space.
//
// The one concurrency idiom every batch engine in this repo uses
// (SweepRunner, the validation campaign in src/valid/): evaluate a pure
// function of the job index for indices 0..count-1 over a private thread
// pool and collect the results into a vector indexed like the input.
// Because each result slot is written by exactly one invocation and the
// function depends only on its index (never on time, thread id or
// schedule), the returned vector is byte-identical for any thread count.
#pragma once

#include <cstddef>
#include <vector>

#include "runner/thread_pool.h"

namespace nocdr::runner {

/// Returns {fn(0), ..., fn(count - 1)}, evaluated concurrently on
/// \p threads workers (0 = hardware concurrency). \p fn must be safe to
/// call concurrently and must not throw — catch per-job exceptions
/// inside it and encode them in the row type.
template <typename Row, typename Fn>
std::vector<Row> ParallelMapIndexed(std::size_t count, std::size_t threads,
                                    Fn&& fn) {
  std::vector<Row> rows(count);
  ThreadPool pool(threads);
  pool.ParallelFor(count, [&](std::size_t i) { rows[i] = fn(i); });
  return rows;
}

}  // namespace nocdr::runner
