#include "runner/thread_pool.h"

#include <memory>

namespace nocdr {

ThreadPool::ThreadPool(std::size_t thread_count) {
  if (thread_count == 0) {
    thread_count = std::thread::hardware_concurrency();
    if (thread_count == 0) {
      thread_count = 1;
    }
  }
  workers_.reserve(thread_count);
  for (std::size_t i = 0; i < thread_count; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  wake_worker_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
    ++unfinished_;
  }
  wake_worker_.notify_one();
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this] { return unfinished_ == 0; });
}

std::size_t ThreadPool::UnfinishedCount() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return unfinished_;
}

void ThreadPool::ParallelFor(std::size_t count,
                             const std::function<void(std::size_t)>& fn) {
  if (count == 0) {
    return;
  }
  // One drainer task per worker, all claiming indices from a shared
  // cursor; cheap and keeps long and short jobs balanced.
  auto cursor = std::make_shared<std::atomic<std::size_t>>(0);
  const std::size_t drainers = std::min(ThreadCount(), count);
  for (std::size_t i = 0; i < drainers; ++i) {
    Submit([cursor, count, &fn] {
      for (std::size_t index = cursor->fetch_add(1); index < count;
           index = cursor->fetch_add(1)) {
        fn(index);
      }
    });
  }
  WaitIdle();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_worker_.wait(lock,
                        [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // stopping and drained
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--unfinished_ == 0) {
        idle_.notify_all();
      }
    }
  }
}

}  // namespace nocdr
