// Fixed-size worker pool for the batch sweep engine.
//
// Deliberately minimal: FIFO task queue, Submit/WaitIdle, and a
// ParallelFor convenience that self-schedules indices over the workers
// via an atomic cursor. Tasks must not throw (SweepRunner catches per-job
// exceptions before they reach the pool); a throwing task terminates.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace nocdr {

class ThreadPool {
 public:
  /// Spawns \p thread_count workers; 0 means std::hardware_concurrency
  /// (at least 1).
  explicit ThreadPool(std::size_t thread_count = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t ThreadCount() const { return workers_.size(); }

  /// Enqueues one task.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void WaitIdle();

  /// Tasks submitted but not yet finished (queued + running). A point
  /// sample for backpressure decisions and stats reporting (the
  /// certification service surfaces it as its pool backlog); the value
  /// may be stale by the time the caller acts on it.
  [[nodiscard]] std::size_t UnfinishedCount() const;

  /// Runs fn(0) ... fn(count - 1) across the pool and returns when all
  /// calls have finished. Indices are claimed dynamically, so callers must
  /// not depend on which worker runs which index — only on the per-index
  /// results they write.
  void ParallelFor(std::size_t count,
                   const std::function<void(std::size_t)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  mutable std::mutex mutex_;
  std::condition_variable wake_worker_;
  std::condition_variable idle_;
  std::size_t unfinished_ = 0;  // queued + currently running
  bool stopping_ = false;
};

}  // namespace nocdr
