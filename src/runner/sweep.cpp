#include "runner/sweep.h"

#include <chrono>
#include <exception>

#include "deadlock/resource_ordering.h"
#include "runner/parallel_map.h"
#include "util/digest.h"

namespace nocdr::runner {

namespace {

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

SweepRow RunJob(const SweepJob& job, std::size_t job_index,
                std::uint64_t base_seed) {
  SweepRow row;
  row.job_index = job_index;
  row.design = job.design;
  row.variant = job.variant;
  row.seed = JobSeed(base_seed, job_index);
  try {
    Rng rng(row.seed);
    auto t0 = std::chrono::steady_clock::now();
    NocDesign design = job.factory(rng);
    row.factory_ms = MillisSince(t0);
    row.switches = design.topology.SwitchCount();
    row.links = design.topology.LinkCount();
    row.flows = design.traffic.FlowCount();
    row.initially_deadlock_free = IsDeadlockFree(design);

    t0 = std::chrono::steady_clock::now();
    if (job.method == SweepMethod::kRemoval) {
      const RemovalReport report = RemoveDeadlocks(design, job.options);
      row.iterations = report.iterations;
      row.vcs_added = report.vcs_added;
      row.flows_rerouted = report.flows_rerouted;
      row.cycle_bfs_runs = report.cycle_bfs_runs;
    } else {
      const ResourceOrderingReport report = ApplyResourceOrdering(design);
      row.iterations = 1;
      row.vcs_added = report.vcs_added;
    }
    row.run_ms = MillisSince(t0);
    row.channels = design.topology.ChannelCount();
    row.deadlock_free = IsDeadlockFree(design);
  } catch (const std::exception& e) {
    row.error = e.what();
  }
  return row;
}

}  // namespace

std::uint64_t JobSeed(std::uint64_t base_seed, std::size_t job_index) {
  // Two rounds of the library's SplitMix64 decorrelate base seed and
  // index without a second copy of the generator constants.
  const std::uint64_t mixed_index =
      Rng(static_cast<std::uint64_t>(job_index)).Next();
  return Rng(base_seed ^ mixed_index).Next();
}

std::uint64_t Digest(const std::vector<SweepRow>& rows) {
  std::uint64_t h = kFnvOffsetBasis;
  for (const SweepRow& row : rows) {
    DigestField(h, row.job_index);
    DigestField(h, row.design);
    DigestField(h, row.variant);
    DigestField(h, row.seed);
    DigestField(h, row.switches);
    DigestField(h, row.links);
    DigestField(h, row.flows);
    DigestField(h, row.channels);
    DigestField(h, static_cast<std::uint64_t>(row.initially_deadlock_free));
    DigestField(h, row.iterations);
    DigestField(h, row.vcs_added);
    DigestField(h, row.flows_rerouted);
    DigestField(h, row.cycle_bfs_runs);
    DigestField(h, static_cast<std::uint64_t>(row.deadlock_free));
    DigestField(h, row.error);
  }
  return h;
}

JsonObject RowToJson(const SweepRow& row) {
  JsonObject json;
  json.Set("design", row.design)
      .Set("variant", row.variant)
      .Set("seed", row.seed)
      .Set("switches", row.switches)
      .Set("links", row.links)
      .Set("flows", row.flows)
      .Set("channels", row.channels)
      .Set("initially_deadlock_free", row.initially_deadlock_free)
      .Set("iterations", row.iterations)
      .Set("vcs_added", row.vcs_added)
      .Set("flows_rerouted", row.flows_rerouted)
      .Set("cycle_bfs_runs", row.cycle_bfs_runs)
      .Set("deadlock_free", row.deadlock_free)
      .Set("factory_ms", row.factory_ms)
      .Set("run_ms", row.run_ms);
  if (!row.error.empty()) {
    json.Set("error", row.error);
  }
  return json;
}

SweepRunner::SweepRunner(SweepConfig config) : config_(config) {}

std::vector<SweepRow> SweepRunner::Run(
    const std::vector<SweepJob>& jobs) const {
  return ParallelMapIndexed<SweepRow>(
      jobs.size(), config_.threads,
      [&](std::size_t i) { return RunJob(jobs[i], i, config_.base_seed); });
}

}  // namespace nocdr::runner
