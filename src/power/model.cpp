#include "power/model.h"

#include "util/error.h"

namespace nocdr {

NocPowerArea EstimatePowerArea(const NocDesign& design,
                               const PowerModelParams& params) {
  const std::vector<double> lengths(design.topology.LinkCount(),
                                    params.default_link_length_mm);
  return EstimatePowerArea(design, lengths, params);
}

NocPowerArea EstimatePowerArea(const NocDesign& design,
                               const std::vector<double>& link_lengths_mm,
                               const PowerModelParams& params) {
  const TopologyGraph& topology = design.topology;
  Require(link_lengths_mm.size() >= topology.LinkCount(),
          "EstimatePowerArea: missing link lengths");
  NocPowerArea result;
  result.switches.resize(topology.SwitchCount());

  // Local (core-side) ports per switch.
  std::vector<std::size_t> local_ports(topology.SwitchCount(), 0);
  for (std::size_t c = 0; c < design.traffic.CoreCount(); ++c) {
    ++local_ports[design.SwitchOf(CoreId(c)).value()];
  }

  for (std::size_t s = 0; s < topology.SwitchCount(); ++s) {
    const SwitchId sw(s);
    SwitchFootprint& fp = result.switches[s];
    fp.in_ports = topology.InLinks(sw).size() + local_ports[s];
    fp.out_ports = topology.OutLinks(sw).size() + local_ports[s];
    fp.buffer_vcs = 0;
    for (LinkId l : topology.InLinks(sw)) {
      fp.buffer_vcs += topology.VcCount(l);
    }

    const double buffer_bits = static_cast<double>(fp.buffer_vcs) *
                               params.buffer_depth_flits *
                               params.flit_width_bits;
    const double area_buffers = buffer_bits * params.area_per_buffer_bit;
    const double area_xbar = params.area_xbar_per_port2_bit *
                             static_cast<double>(fp.in_ports) *
                             static_cast<double>(fp.out_ports) *
                             params.flit_width_bits;
    const double area_alloc =
        params.area_alloc_per_portpair * static_cast<double>(fp.in_ports) *
            static_cast<double>(fp.out_ports) +
        params.area_alloc_per_vc * static_cast<double>(fp.buffer_vcs);
    const double subtotal = area_buffers + area_xbar + area_alloc;
    fp.area_um2 = subtotal * (1.0 + params.clock_area_fraction);
    fp.leakage_mw = fp.area_um2 * params.leakage_mw_per_um2;
    fp.clock_mw = buffer_bits * params.clock_mw_per_bit * params.clock_ghz;

    result.switch_area_um2 += fp.area_um2;
    result.leakage_mw += fp.leakage_mw;
    result.clock_mw += fp.clock_mw;
  }

  // Traffic-dependent dynamic power. A flow of B MB/s moves B*8e6 bits/s.
  // Each route of h channels crosses h links and h+1 switches (source and
  // destination switches included); every switch traversal pays one
  // buffer write+read and one crossbar pass, and every link traversal
  // pays wire energy proportional to its length.
  constexpr double kBitsPerMbps = 8.0e6;
  constexpr double kPjPerSecToMw = 1.0e-9;  // pJ/s -> mW
  for (std::size_t i = 0; i < design.traffic.FlowCount(); ++i) {
    const FlowId f(i);
    const Flow& flow = design.traffic.FlowAt(f);
    const double bits_per_s = flow.bandwidth_mbps * kBitsPerMbps;
    const Route& route = design.routes.RouteOf(f);
    const double switch_traversals = static_cast<double>(route.size()) + 1.0;
    double pj_per_bit =
        switch_traversals * (params.energy_buffer_rw_pj_per_bit +
                             params.energy_xbar_pj_per_bit);
    for (ChannelId c : route) {
      const LinkId link = topology.ChannelAt(c).link;
      pj_per_bit +=
          params.energy_link_pj_per_bit_mm * link_lengths_mm[link.value()];
    }
    result.dynamic_mw += bits_per_s * pj_per_bit * kPjPerSecToMw;
  }

  return result;
}

}  // namespace nocdr
