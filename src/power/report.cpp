#include "power/report.h"

#include "util/table.h"

namespace nocdr {

void PrintPowerSummary(std::ostream& os, const NocDesign& design,
                       const NocPowerArea& estimate) {
  TextTable t;
  t.AddRow({"design", design.name});
  t.AddRow({"switch area (mm^2)",
            FormatDouble(estimate.switch_area_um2 / 1e6, 4)});
  t.AddRow({"dynamic power (mW)", FormatDouble(estimate.dynamic_mw, 3)});
  t.AddRow({"leakage power (mW)", FormatDouble(estimate.leakage_mw, 3)});
  t.AddRow({"clock power (mW)", FormatDouble(estimate.clock_mw, 3)});
  t.AddRow({"total power (mW)", FormatDouble(estimate.TotalPowerMw(), 3)});
  t.Print(os);
}

void PrintPerSwitchBreakdown(std::ostream& os, const NocDesign& design,
                             const NocPowerArea& estimate) {
  TextTable t;
  t.SetHeader({"switch", "in", "out", "buf VCs", "area (um^2)",
               "leakage (mW)", "clock (mW)"});
  for (std::size_t s = 0; s < estimate.switches.size(); ++s) {
    const SwitchFootprint& fp = estimate.switches[s];
    t.AddRow({design.topology.SwitchName(SwitchId(s)),
              std::to_string(fp.in_ports), std::to_string(fp.out_ports),
              std::to_string(fp.buffer_vcs), FormatDouble(fp.area_um2, 0),
              FormatDouble(fp.leakage_mw, 4),
              FormatDouble(fp.clock_mw, 4)});
  }
  t.Print(os);
}

void PrintPowerComparison(std::ostream& os, const std::string& label_a,
                          const NocPowerArea& a, const std::string& label_b,
                          const NocPowerArea& b) {
  auto delta = [](double va, double vb) {
    if (va == 0.0) {
      return std::string("-");
    }
    return FormatDouble(100.0 * (vb / va - 1.0), 1) + "%";
  };
  TextTable t;
  t.SetHeader({"quantity", label_a, label_b, "delta"});
  t.AddRow({"area (mm^2)", FormatDouble(a.switch_area_um2 / 1e6, 4),
            FormatDouble(b.switch_area_um2 / 1e6, 4),
            delta(a.switch_area_um2, b.switch_area_um2)});
  t.AddRow({"dynamic (mW)", FormatDouble(a.dynamic_mw, 3),
            FormatDouble(b.dynamic_mw, 3),
            delta(a.dynamic_mw, b.dynamic_mw)});
  t.AddRow({"leakage (mW)", FormatDouble(a.leakage_mw, 3),
            FormatDouble(b.leakage_mw, 3),
            delta(a.leakage_mw, b.leakage_mw)});
  t.AddRow({"clock (mW)", FormatDouble(a.clock_mw, 3),
            FormatDouble(b.clock_mw, 3), delta(a.clock_mw, b.clock_mw)});
  t.AddRow({"total (mW)", FormatDouble(a.TotalPowerMw(), 3),
            FormatDouble(b.TotalPowerMw(), 3),
            delta(a.TotalPowerMw(), b.TotalPowerMw())});
  t.Print(os);
}

}  // namespace nocdr
