// Rendering of power/area estimates as tables.
//
// Formats a NocPowerArea (optionally next to a second design's estimate,
// the way the paper's comparisons are presented) into the library's
// aligned text tables, with a per-switch breakdown for floorplanning and
// hot-spot inspection.
#pragma once

#include <ostream>

#include "power/model.h"

namespace nocdr {

/// Prints the NoC-level summary: area, dynamic/leakage/clock/total power.
void PrintPowerSummary(std::ostream& os, const NocDesign& design,
                       const NocPowerArea& estimate);

/// Prints one row per switch: ports, buffered VCs, area, leakage, clock.
void PrintPerSwitchBreakdown(std::ostream& os, const NocDesign& design,
                             const NocPowerArea& estimate);

/// Prints a two-column comparison of the same network under two
/// treatments (e.g. removal vs. resource ordering), with relative deltas.
void PrintPowerComparison(std::ostream& os, const std::string& label_a,
                          const NocPowerArea& a, const std::string& label_b,
                          const NocPowerArea& b);

}  // namespace nocdr
