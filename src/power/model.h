// Analytical switch/link power and area model.
//
// Stands in for ORION 2.0 [20] (not redistributable) with the same
// decomposition at 65 nm-class constants:
//   * input buffers  — area/leakage scale with (VCs x depth x flit width);
//     dominant area component of a wormhole switch;
//   * crossbar       — area scales with in-ports x out-ports x width^2-ish;
//     dynamic energy per flit traversal;
//   * allocators     — switch + VC allocation, scales with port and VC
//     counts;
//   * clock tree     — dynamic power proportional to clocked storage;
//   * leakage        — proportional to total area.
// Dynamic power comes from the flow bandwidths (bits/s through each
// switch and link on the route), so it is essentially unchanged when VCs
// are added, while area, leakage and clock grow — the effect behind the
// paper's Figure 10 and its 66%-area / 8.6%-power savings.
#pragma once

#include <cstddef>
#include <vector>

#include "noc/design.h"

namespace nocdr {

/// Technology and microarchitecture constants. Defaults approximate a
/// 65 nm standard-cell wormhole switch with 32-bit flits.
struct PowerModelParams {
  double flit_width_bits = 32.0;
  double buffer_depth_flits = 4.0;
  double clock_ghz = 1.0;

  // Area coefficients (um^2). Input buffers dominate a wormhole switch
  // (FF-based FIFOs with per-VC control), as in ORION's decomposition.
  double area_per_buffer_bit = 90.0;        // FF-based FIFO incl. control
  double area_xbar_per_port2_bit = 8.0;     // per (in x out) port pair, per bit
  double area_alloc_per_portpair = 80.0;    // switch allocator
  double area_alloc_per_vc = 40.0;          // VC state / arbitration
  double clock_area_fraction = 0.10;        // clock tree as fraction of rest

  // Dynamic energy coefficients (pJ per bit); together ~1 pJ/bit for a
  // full switch traversal plus a default-length link, the usual 65 nm
  // ballpark.
  double energy_buffer_rw_pj_per_bit = 0.090;  // write + read
  double energy_xbar_pj_per_bit = 0.036;
  double energy_link_pj_per_bit_mm = 0.030;    // per mm of traversed wire
  /// Wire length assumed when no floorplan is supplied.
  double default_link_length_mm = 2.0;

  // Static power.
  double leakage_mw_per_um2 = 1.5e-5;  // ~15 mW/mm^2 (LP process)
  // Clock dynamic power per clocked bit (buffers dominate FF count).
  double clock_mw_per_bit = 1.0e-5;
};

/// Per-switch microarchitectural footprint derived from the design.
struct SwitchFootprint {
  std::size_t in_ports = 0;    // switch-to-switch in-links + local NIs
  std::size_t out_ports = 0;   // switch-to-switch out-links + local NIs
  std::size_t buffer_vcs = 0;  // buffered VCs at the link inputs; local
                               // injection queues are charged to the NI,
                               // not the switch
  double area_um2 = 0.0;
  double leakage_mw = 0.0;
  double clock_mw = 0.0;
};

/// Whole-NoC power/area estimate.
struct NocPowerArea {
  std::vector<SwitchFootprint> switches;
  double switch_area_um2 = 0.0;
  double dynamic_mw = 0.0;  // traffic-dependent (buffers, crossbars, links)
  double leakage_mw = 0.0;
  double clock_mw = 0.0;

  [[nodiscard]] double TotalPowerMw() const {
    return dynamic_mw + leakage_mw + clock_mw;
  }
};

/// Estimates power and area of \p design under \p params. Every channel
/// of a link contributes one buffered VC at the downstream switch; local
/// cores contribute one injection and one ejection crossbar port each
/// (their queues live in the network interface and are identical across
/// the compared designs, so they are excluded from switch area). Every
/// link is assumed params.default_link_length_mm long.
NocPowerArea EstimatePowerArea(const NocDesign& design,
                               const PowerModelParams& params = {});

/// Floorplan-aware variant: \p link_lengths_mm gives the wire length of
/// each link (e.g. from Floorplan::LinkLengthMm), indexed by LinkId.
/// Must cover every link of the design.
NocPowerArea EstimatePowerArea(const NocDesign& design,
                               const std::vector<double>& link_lengths_mm,
                               const PowerModelParams& params);

}  // namespace nocdr
