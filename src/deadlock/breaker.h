// Cycle breaking: vertex duplication and flow re-routing
// (BreakCycleForward / BreakCycleBackward of the paper).
//
// Breaking cycle edge (c_p, c_{p+1}) re-routes every flow whose route
// contains that consecutive channel pair:
//   * forward:  every cycle channel the flow used up to and including c_p
//     is replaced by a duplicate channel (a new VC on the same physical
//     link); the dependency into c_{p+1} now originates from a fresh
//     vertex, so the cycle edge disappears;
//   * backward: every cycle channel the flow uses from c_{p+1} onwards is
//     replaced by a duplicate, so the edge out of c_p now points at a
//     fresh vertex.
// Duplicates are shared between the re-routed flows (one new VC per
// duplicated cycle channel), which is what makes the per-edge cost the
// max — not the sum — over flows.
#pragma once

#include <vector>

#include "cdg/cycle.h"
#include "deadlock/cost.h"
#include "noc/design.h"

namespace nocdr {

/// How a duplicated CDG vertex is realized in hardware. The paper adds
/// virtual channels by default but notes that physical channels work when
/// the switch architecture has no VC support: a duplicate then becomes a
/// parallel physical link between the same pair of switches.
enum class DuplicationMode {
  kVirtualChannel,
  kPhysicalLink,
};

/// Outcome of one break operation.
struct BreakResult {
  /// Channels added to the topology by this break (new VCs, or the
  /// implicit channel of each new parallel link in kPhysicalLink mode).
  std::vector<ChannelId> added_channels;
  /// Flows whose route was modified.
  std::vector<FlowId> rerouted_flows;
  /// The routes those flows had before the break, in rerouted_flows
  /// order; lets ChannelDependencyGraph::ApplyBreak mirror the break
  /// without re-deriving the graph from the design.
  std::vector<Route> old_routes;
};

/// Breaks \p cycle at edge \p edge_pos in \p direction, mutating the
/// design's topology (new channels per \p mode) and routes. The number
/// of added channels equals the combined cost of that edge in the
/// corresponding cost table. Throws InvalidModelError if no flow creates
/// the chosen edge.
///
/// \p candidate_flows, when given, restricts the re-route scan to those
/// flows (ascending FlowId order); the CDG annotation of the broken edge
/// lists exactly the flows that create it, so passing it is equivalent to
/// scanning every flow. Pass nullptr to scan all flows.
BreakResult BreakCycle(NocDesign& design, const CdgCycle& cycle,
                       std::size_t edge_pos, BreakDirection direction,
                       DuplicationMode mode = DuplicationMode::kVirtualChannel,
                       const std::vector<FlowId>* candidate_flows = nullptr);

}  // namespace nocdr
