#include "deadlock/updown.h"

#include <algorithm>
#include <deque>

namespace nocdr {

namespace {

constexpr std::uint32_t kNone = static_cast<std::uint32_t>(-1);

/// Spanning-tree bookkeeping per switch.
struct TreeNode {
  std::uint32_t parent = kNone;
  std::uint32_t depth = 0;
  LinkId up_link;    // this switch -> parent
  LinkId down_link;  // parent -> this switch
  bool reached = false;
};

}  // namespace

UpDownReport ApplyUpDownRouting(NocDesign& design) {
  const TopologyGraph& topo = design.topology;
  const std::size_t n = topo.SwitchCount();
  Require(n >= 1, "ApplyUpDownRouting: empty topology");

  // Bidirectional degree decides the root: the best-connected switch
  // keeps the tree shallow.
  std::size_t best_degree = 0;
  SwitchId root(0u);
  for (std::size_t s = 0; s < n; ++s) {
    std::size_t degree = 0;
    for (LinkId l : topo.OutLinks(SwitchId(s))) {
      if (topo.FindLink(topo.LinkAt(l).dst, SwitchId(s))) {
        ++degree;
      }
    }
    if (degree > best_degree) {
      best_degree = degree;
      root = SwitchId(s);
    }
  }

  // BFS tree over links whose reverse exists.
  std::vector<TreeNode> tree(n);
  tree[root.value()].reached = true;
  std::deque<SwitchId> queue{root};
  while (!queue.empty()) {
    const SwitchId cur = queue.front();
    queue.pop_front();
    for (LinkId down : topo.OutLinks(cur)) {
      const SwitchId child = topo.LinkAt(down).dst;
      const auto up = topo.FindLink(child, cur);
      if (!up || tree[child.value()].reached) {
        continue;
      }
      TreeNode& node = tree[child.value()];
      node.reached = true;
      node.parent = cur.value();
      node.depth = tree[cur.value()].depth + 1;
      node.down_link = down;
      node.up_link = *up;
      queue.push_back(child);
    }
  }

  UpDownReport report;
  report.root = root;

  for (std::size_t fi = 0; fi < design.traffic.FlowCount(); ++fi) {
    const FlowId f(fi);
    const Flow& flow = design.traffic.FlowAt(f);
    report.hops_before += design.routes.RouteOf(f).size();
    SwitchId src = design.SwitchOf(flow.src);
    SwitchId dst = design.SwitchOf(flow.dst);
    if (src == dst) {
      design.routes.SetRoute(f, {});
      continue;
    }
    if (!tree[src.value()].reached || !tree[dst.value()].reached) {
      throw TurnProhibitionInfeasibleError(
          "up*/down* infeasible: switch of flow " + std::to_string(fi) +
          " is not connected by bidirectional links");
    }
    // Climb both endpoints to their lowest common ancestor, collecting
    // up-hops from the source and down-hops (reversed) to the target.
    Route up_part, down_part;
    std::uint32_t a = src.value(), b = dst.value();
    auto up_hop = [&](std::uint32_t s) {
      up_part.push_back(*topo.FindChannel(tree[s].up_link, 0));
      return tree[s].parent;
    };
    auto down_hop = [&](std::uint32_t s) {
      down_part.push_back(*topo.FindChannel(tree[s].down_link, 0));
      return tree[s].parent;
    };
    while (tree[a].depth > tree[b].depth) {
      a = up_hop(a);
    }
    while (tree[b].depth > tree[a].depth) {
      b = down_hop(b);
    }
    while (a != b) {
      a = up_hop(a);
      b = down_hop(b);
    }
    std::reverse(down_part.begin(), down_part.end());
    up_part.insert(up_part.end(), down_part.begin(), down_part.end());
    report.hops_after += up_part.size();
    design.routes.SetRoute(f, std::move(up_part));
  }

  design.Validate();
  return report;
}

}  // namespace nocdr
