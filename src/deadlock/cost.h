// Cost computation for breaking a CDG cycle (Algorithm 2 of the paper).
//
// To delete one dependency edge of a cycle, every flow that creates that
// edge must be re-routed onto freshly added channels (VCs), and — to avoid
// merely shifting the cycle (Figure 7 of the paper) — the flow must be
// moved onto duplicates of *all* cycle channels it used before the edge
// (forward direction) or after it (backward direction). The cost of
// breaking at a given edge is therefore the maximum, over the flows
// creating it, of the number of cycle vertices that must be duplicated;
// duplicates are shared between flows, which is why the combination rule
// is max and not sum (Step 20 of Algorithm 2).
//
// The cost-table semantics follow the paper's worked example (Table 1):
// a flow contributes a cost at cycle edge (c_p, c_{p+1}) only if its route
// uses c_p immediately followed by c_{p+1}; the contributed value is the
// number of cycle vertices the flow has traversed up to and including c_p
// (forward) or from c_{p+1} to the end of its route (backward).
#pragma once

#include <cstddef>
#include <limits>
#include <optional>
#include <vector>

#include "cdg/cycle.h"
#include "noc/design.h"
#include "util/ids.h"

namespace nocdr {

/// Which side of the removed edge gets duplicated.
enum class BreakDirection {
  kForward,   // duplicate from the flow's cycle entry up to the edge
  kBackward,  // duplicate from the edge to the flow's cycle exit
};

/// The per-flow/per-edge cost table of Algorithm 2, kept explicit so the
/// worked-example reproduction (Table 1) and tests can inspect it.
struct CycleCostTable {
  /// Flows participating in the cycle, in FlowId order (the table rows).
  std::vector<FlowId> flows;
  /// cost[row][p]: duplication cost contributed by flows[row] at cycle
  /// edge p = (c_p, c_{p+1 mod m}); 0 means the flow does not create the
  /// dependency at p.
  std::vector<std::vector<std::size_t>> cost;
  /// Combined per-edge cost: max over rows (0 only if no flow creates
  /// the edge, which cannot happen for a genuine CDG cycle).
  std::vector<std::size_t> combined;
};

/// Result of FindDepToBreak: where to cut and what it costs.
struct BreakCandidate {
  std::size_t cost = std::numeric_limits<std::size_t>::max();
  std::size_t edge_pos = 0;  // p: break edge (c_p, c_{p+1 mod m})
  BreakDirection direction = BreakDirection::kForward;
};

/// Builds the full cost table for breaking \p cycle in \p direction
/// (FindDepToBreakForward / ...Backward of the paper, with the table
/// exposed). \p cycle must be a genuine cycle of the design's CDG.
///
/// \p candidate_flows, when given, restricts the scan to those flows
/// (ascending FlowId order). Only flows that create at least one cycle
/// edge contribute a row, and the CDG's per-edge flow annotations name
/// exactly those flows — so passing the union of the cycle edges' flow
/// lists produces the identical table at a fraction of the cost. Pass
/// nullptr to scan every flow of the design.
CycleCostTable ComputeCycleCostTable(
    const NocDesign& design, const CdgCycle& cycle, BreakDirection direction,
    const std::vector<FlowId>* candidate_flows = nullptr);

/// The paper's FindDepToBreak{Forward,Backward}: minimum combined cost and
/// its edge position (first minimum wins, deterministically).
BreakCandidate FindDepToBreak(
    const NocDesign& design, const CdgCycle& cycle, BreakDirection direction,
    const std::vector<FlowId>* candidate_flows = nullptr);

}  // namespace nocdr
