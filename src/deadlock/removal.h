// The deadlock removal algorithm (Algorithm 1 of the paper).
//
// While the channel dependency graph of the design has a cycle: take the
// smallest cycle, evaluate the cheapest way to break it in the forward and
// in the backward direction (Algorithm 2), apply the cheaper break (VC
// duplication + re-routing), and repeat on the updated design. Terminates
// when the CDG is acyclic, i.e. the design is provably deadlock-free for
// wormhole flow control with static routing.
//
// Two engines drive the loop. The default incremental engine keeps one
// CDG alive across iterations, mirrors each break into it
// (ChannelDependencyGraph::ApplyBreak) and re-scans only dirty vertices
// for the next cycle (cdg/incremental.h). The rebuild engine re-derives
// the CDG from the design and scans every vertex each iteration — the
// paper's literal formulation, kept as the reference baseline the
// incremental engine is benchmarked and property-tested against. Both
// make identical removal decisions (same steps, VC counts and final
// designs); only the cycle_bfs_runs work counter differs, as it exists
// to measure the incremental engine.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "cdg/cycle.h"
#include "deadlock/breaker.h"
#include "deadlock/cost.h"
#include "noc/design.h"

namespace nocdr {

/// Which break directions the cost search may consider; the paper uses
/// both, the restricted variants exist for the ablation study.
enum class DirectionPolicy {
  kBoth,
  kForwardOnly,
  kBackwardOnly,
};

/// How the removal loop maintains the CDG and finds cycles.
enum class RemovalEngine {
  /// Mutate one CDG across breaks; dirty-vertex cycle search.
  kIncremental,
  /// Re-derive the CDG from the design and scan all vertices, every
  /// iteration. Reference baseline; byte-identical results.
  kRebuild,
};

/// Tuning knobs of the removal loop.
struct RemovalOptions {
  CyclePolicy cycle_policy = CyclePolicy::kSmallestFirst;
  DirectionPolicy direction_policy = DirectionPolicy::kBoth;
  RemovalEngine engine = RemovalEngine::kIncremental;
  /// Realize duplicates as extra VCs (default) or, for switch
  /// architectures without VC support, as parallel physical links.
  DuplicationMode duplication = DuplicationMode::kVirtualChannel;
  /// Hard safety cap on loop iterations; the heuristic converges on every
  /// input we have seen, but a cap turns a hypothetical livelock into an
  /// AlgorithmLimitError instead of a hang.
  std::size_t max_iterations = 100000;
  /// Re-validate the whole design after every break, and (incremental
  /// engine) check the mutated CDG against a from-scratch rebuild
  /// (slow; for tests).
  bool paranoid_validation = false;
};

/// One loop iteration, for reporting and debugging.
struct RemovalStep {
  std::size_t cycle_length = 0;
  BreakDirection direction = BreakDirection::kForward;
  std::size_t edge_pos = 0;
  std::size_t cost = 0;
  std::size_t vcs_added = 0;
  std::size_t flows_rerouted = 0;
};

/// Summary of a removal run.
struct RemovalReport {
  /// True when the input CDG was already acyclic (no work needed) — the
  /// common case for sparse application-specific designs (paper, Fig. 8).
  bool initially_deadlock_free = false;
  std::size_t iterations = 0;
  std::size_t vcs_added = 0;
  std::size_t flows_rerouted = 0;
  /// Vertices whose shortest cycle was recomputed by BFS across the whole
  /// run (incremental engine only; 0 for the rebuild engine). The rebuild
  /// engine's equivalent is roughly VertexCount() per iteration.
  std::size_t cycle_bfs_runs = 0;
  std::vector<RemovalStep> steps;
};

/// Runs Algorithm 1 on \p design in place. On return the design's CDG is
/// acyclic and the design still satisfies Validate(). Throws
/// AlgorithmLimitError if options.max_iterations is exceeded.
RemovalReport RemoveDeadlocks(NocDesign& design,
                              const RemovalOptions& options = {});

class DirtyCycleFinder;

/// The incremental-engine removal loop on a caller-maintained CDG and
/// dirty-cycle finder instead of a freshly built pair. \p cdg must
/// mirror design's routes exactly (and \p finder must serve \p cdg);
/// every break is mirrored back via ApplyBreak, so on return the CDG is
/// acyclic and still in sync with the design. This is the entry point
/// the fault-reconfiguration pipeline (src/fault) uses to keep one CDG
/// and one finder cache alive across fault bursts instead of paying a
/// from-scratch Build per burst. options.engine is ignored — this *is*
/// the incremental engine; report.cycle_bfs_runs counts only the BFS
/// work of this call, not the finder's lifetime total.
RemovalReport RemoveDeadlocksOnCdg(NocDesign& design,
                                   ChannelDependencyGraph& cdg,
                                   DirtyCycleFinder& finder,
                                   const RemovalOptions& options = {});

/// True iff the design's CDG is acyclic (Dally/Towles condition).
bool IsDeadlockFree(const NocDesign& design);

/// Human-readable one-line summary of a report.
std::string Summarize(const RemovalReport& report);

}  // namespace nocdr
