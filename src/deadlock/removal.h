// The deadlock removal algorithm (Algorithm 1 of the paper).
//
// While the channel dependency graph of the design has a cycle: take the
// smallest cycle, evaluate the cheapest way to break it in the forward and
// in the backward direction (Algorithm 2), apply the cheaper break (VC
// duplication + re-routing), and repeat on the updated design. Terminates
// when the CDG is acyclic, i.e. the design is provably deadlock-free for
// wormhole flow control with static routing.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "cdg/cycle.h"
#include "deadlock/breaker.h"
#include "deadlock/cost.h"
#include "noc/design.h"

namespace nocdr {

/// Cycle-selection policy; the paper uses smallest-first, the others exist
/// for the ablation study.
enum class CyclePolicy {
  kSmallestFirst,
  kFirstFound,
  kLargestFirst,
};

/// Which break directions the cost search may consider; the paper uses
/// both, the restricted variants exist for the ablation study.
enum class DirectionPolicy {
  kBoth,
  kForwardOnly,
  kBackwardOnly,
};

/// Tuning knobs of the removal loop.
struct RemovalOptions {
  CyclePolicy cycle_policy = CyclePolicy::kSmallestFirst;
  DirectionPolicy direction_policy = DirectionPolicy::kBoth;
  /// Realize duplicates as extra VCs (default) or, for switch
  /// architectures without VC support, as parallel physical links.
  DuplicationMode duplication = DuplicationMode::kVirtualChannel;
  /// Hard safety cap on loop iterations; the heuristic converges on every
  /// input we have seen, but a cap turns a hypothetical livelock into an
  /// AlgorithmLimitError instead of a hang.
  std::size_t max_iterations = 100000;
  /// Re-validate the whole design after every break (slow; for tests).
  bool paranoid_validation = false;
};

/// One loop iteration, for reporting and debugging.
struct RemovalStep {
  std::size_t cycle_length = 0;
  BreakDirection direction = BreakDirection::kForward;
  std::size_t edge_pos = 0;
  std::size_t cost = 0;
  std::size_t vcs_added = 0;
  std::size_t flows_rerouted = 0;
};

/// Summary of a removal run.
struct RemovalReport {
  /// True when the input CDG was already acyclic (no work needed) — the
  /// common case for sparse application-specific designs (paper, Fig. 8).
  bool initially_deadlock_free = false;
  std::size_t iterations = 0;
  std::size_t vcs_added = 0;
  std::size_t flows_rerouted = 0;
  std::vector<RemovalStep> steps;
};

/// Runs Algorithm 1 on \p design in place. On return the design's CDG is
/// acyclic and the design still satisfies Validate(). Throws
/// AlgorithmLimitError if options.max_iterations is exceeded.
RemovalReport RemoveDeadlocks(NocDesign& design,
                              const RemovalOptions& options = {});

/// True iff the design's CDG is acyclic (Dally/Towles condition).
bool IsDeadlockFree(const NocDesign& design);

/// Human-readable one-line summary of a report.
std::string Summarize(const RemovalReport& report);

}  // namespace nocdr
