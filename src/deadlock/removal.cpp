#include "deadlock/removal.h"

#include "cdg/cdg.h"
#include "deadlock/breaker.h"
#include "util/error.h"

namespace nocdr {

namespace {

std::optional<CdgCycle> PickCycle(const ChannelDependencyGraph& cdg,
                                  CyclePolicy policy) {
  switch (policy) {
    case CyclePolicy::kSmallestFirst:
      return SmallestCycle(cdg);
    case CyclePolicy::kFirstFound:
      return FirstCycle(cdg);
    case CyclePolicy::kLargestFirst:
      return LargestShortestCycle(cdg);
  }
  return std::nullopt;
}

BreakCandidate PickBreak(const NocDesign& design, const CdgCycle& cycle,
                         DirectionPolicy policy) {
  switch (policy) {
    case DirectionPolicy::kForwardOnly:
      return FindDepToBreak(design, cycle, BreakDirection::kForward);
    case DirectionPolicy::kBackwardOnly:
      return FindDepToBreak(design, cycle, BreakDirection::kBackward);
    case DirectionPolicy::kBoth:
      break;
  }
  // Algorithm 1, steps 5-11: evaluate both directions, keep the cheaper;
  // forward wins ties (the paper's `if f_cost <= b_cost`).
  const BreakCandidate fwd =
      FindDepToBreak(design, cycle, BreakDirection::kForward);
  const BreakCandidate bwd =
      FindDepToBreak(design, cycle, BreakDirection::kBackward);
  return fwd.cost <= bwd.cost ? fwd : bwd;
}

}  // namespace

RemovalReport RemoveDeadlocks(NocDesign& design,
                              const RemovalOptions& options) {
  RemovalReport report;
  ChannelDependencyGraph cdg = ChannelDependencyGraph::Build(design);
  std::optional<CdgCycle> cycle = PickCycle(cdg, options.cycle_policy);
  report.initially_deadlock_free = !cycle.has_value();

  while (cycle) {
    if (report.iterations >= options.max_iterations) {
      throw AlgorithmLimitError(
          "RemoveDeadlocks: iteration cap exceeded (" +
          std::to_string(options.max_iterations) + ")");
    }
    const BreakCandidate chosen =
        PickBreak(design, *cycle, options.direction_policy);
    const BreakResult applied =
        BreakCycle(design, *cycle, chosen.edge_pos, chosen.direction,
                   options.duplication);

    // Sharing duplicates between flows must keep the realized VC count at
    // the predicted cost; a mismatch means the cost table lied.
    Require(applied.added_channels.size() == chosen.cost,
            "RemoveDeadlocks: realized VC count differs from predicted "
            "cost");
    if (options.paranoid_validation) {
      design.Validate();
    }

    RemovalStep step;
    step.cycle_length = cycle->size();
    step.direction = chosen.direction;
    step.edge_pos = chosen.edge_pos;
    step.cost = chosen.cost;
    step.vcs_added = applied.added_channels.size();
    step.flows_rerouted = applied.rerouted_flows.size();
    report.steps.push_back(step);
    report.vcs_added += step.vcs_added;
    report.flows_rerouted += step.flows_rerouted;
    ++report.iterations;

    cdg = ChannelDependencyGraph::Build(design);
    cycle = PickCycle(cdg, options.cycle_policy);
  }
  return report;
}

bool IsDeadlockFree(const NocDesign& design) {
  return IsAcyclic(ChannelDependencyGraph::Build(design));
}

std::string Summarize(const RemovalReport& report) {
  if (report.initially_deadlock_free) {
    return "already deadlock-free; no VCs added";
  }
  return "broke " + std::to_string(report.iterations) + " cycle(s), added " +
         std::to_string(report.vcs_added) + " VC(s), re-routed " +
         std::to_string(report.flows_rerouted) + " flow traversal(s)";
}

}  // namespace nocdr
