#include "deadlock/removal.h"

#include <algorithm>

#include "cdg/cdg.h"
#include "cdg/incremental.h"
#include "deadlock/breaker.h"
#include "obs/trace.h"
#include "util/error.h"

namespace nocdr {

namespace {

// Stage indices for the removal StageTimer: the four phases of every
// removal iteration, aggregated across the whole loop into one span per
// stage (and one "removal.<stage>_us" metrics histogram each). Both
// engines use the same stage names so trace analysis does not care
// which engine ran; "invalidate" is the full CDG rebuild in the rebuild
// engine and the incremental ApplyBreak in the dirty-finder engine.
constexpr std::size_t kStageCycleSearch = 0;  // PickCycle / DirtyCycleFinder
constexpr std::size_t kStageScore = 1;        // candidate scoring (PickBreak)
constexpr std::size_t kStageApply = 2;        // BreakCycle application
constexpr std::size_t kStageInvalidate = 3;   // CDG rebuild / ApplyBreak

using obs::StageTimer;

constexpr std::initializer_list<const char*> kRemovalStages = {
    "cycle_search", "score", "apply", "invalidate"};

/// Ascending union of the flow annotations on the cycle's edges — by the
/// CDG definition, exactly the flows that can contribute to any cost
/// table row or need re-routing for any break of this cycle.
std::vector<FlowId> CycleFlowUnion(const ChannelDependencyGraph& cdg,
                                   const CdgCycle& cycle) {
  std::vector<FlowId> flows;
  const std::size_t m = cycle.size();
  for (std::size_t p = 0; p < m; ++p) {
    const auto edge = cdg.FindEdge(cycle[p], cycle[(p + 1) % m]);
    Require(edge.has_value(),
            "CycleFlowUnion: cycle edge missing from the CDG");
    const auto& edge_flows = cdg.EdgeAt(*edge).flows;
    flows.insert(flows.end(), edge_flows.begin(), edge_flows.end());
  }
  std::sort(flows.begin(), flows.end());
  flows.erase(std::unique(flows.begin(), flows.end()), flows.end());
  return flows;
}

BreakCandidate PickBreak(const NocDesign& design, const CdgCycle& cycle,
                         DirectionPolicy policy,
                         const std::vector<FlowId>& candidates) {
  switch (policy) {
    case DirectionPolicy::kForwardOnly:
      return FindDepToBreak(design, cycle, BreakDirection::kForward,
                            &candidates);
    case DirectionPolicy::kBackwardOnly:
      return FindDepToBreak(design, cycle, BreakDirection::kBackward,
                            &candidates);
    case DirectionPolicy::kBoth:
      break;
  }
  // Algorithm 1, steps 5-11: evaluate both directions, keep the cheaper;
  // forward wins ties (the paper's `if f_cost <= b_cost`).
  const BreakCandidate fwd =
      FindDepToBreak(design, cycle, BreakDirection::kForward, &candidates);
  const BreakCandidate bwd =
      FindDepToBreak(design, cycle, BreakDirection::kBackward, &candidates);
  return fwd.cost <= bwd.cost ? fwd : bwd;
}

/// Applies the chosen break and records it; shared by both engines.
/// \p stages aggregates the scoring and application time (stage spans
/// and "removal.*_us" histograms are emitted when it is destroyed).
void ApplyAndRecord(NocDesign& design, const ChannelDependencyGraph& cdg,
                    const CdgCycle& cycle, const RemovalOptions& options,
                    StageTimer& stages, RemovalReport& report,
                    BreakResult& applied_out) {
  if (report.iterations >= options.max_iterations) {
    throw AlgorithmLimitError("RemoveDeadlocks: iteration cap exceeded (" +
                              std::to_string(options.max_iterations) + ")");
  }
  const std::vector<FlowId> candidates = CycleFlowUnion(cdg, cycle);
  BreakCandidate chosen;
  {
    StageTimer::Section section(stages, kStageScore);
    chosen = PickBreak(design, cycle, options.direction_policy, candidates);
    stages.Count(kStageScore, "candidates", candidates.size());
  }
  {
    StageTimer::Section section(stages, kStageApply);
    applied_out = BreakCycle(design, cycle, chosen.edge_pos, chosen.direction,
                             options.duplication, &candidates);
    stages.Count(kStageApply, "vcs_added", applied_out.added_channels.size());
  }

  // Sharing duplicates between flows must keep the realized VC count at
  // the predicted cost; a mismatch means the cost table lied.
  Require(applied_out.added_channels.size() == chosen.cost,
          "RemoveDeadlocks: realized VC count differs from predicted cost");
  if (options.paranoid_validation) {
    design.Validate();
  }

  RemovalStep step;
  step.cycle_length = cycle.size();
  step.direction = chosen.direction;
  step.edge_pos = chosen.edge_pos;
  step.cost = chosen.cost;
  step.vcs_added = applied_out.added_channels.size();
  step.flows_rerouted = applied_out.rerouted_flows.size();
  report.steps.push_back(step);
  report.vcs_added += step.vcs_added;
  report.flows_rerouted += step.flows_rerouted;
  ++report.iterations;
}

RemovalReport RemoveDeadlocksRebuild(NocDesign& design,
                                     const RemovalOptions& options) {
  RemovalReport report;
  StageTimer stages("removal", kRemovalStages);
  ChannelDependencyGraph cdg = ChannelDependencyGraph::Build(design);
  std::optional<CdgCycle> cycle;
  {
    StageTimer::Section section(stages, kStageCycleSearch);
    cycle = PickCycle(cdg, options.cycle_policy);
  }
  report.initially_deadlock_free = !cycle.has_value();

  while (cycle) {
    BreakResult applied;
    ApplyAndRecord(design, cdg, *cycle, options, stages, report, applied);
    {
      StageTimer::Section section(stages, kStageInvalidate);
      cdg = ChannelDependencyGraph::Build(design);
    }
    StageTimer::Section section(stages, kStageCycleSearch);
    cycle = PickCycle(cdg, options.cycle_policy);
  }
  return report;
}

}  // namespace

RemovalReport RemoveDeadlocksOnCdg(NocDesign& design,
                                   ChannelDependencyGraph& cdg,
                                   DirtyCycleFinder& finder,
                                   const RemovalOptions& options) {
  RemovalReport report;
  StageTimer stages("removal", kRemovalStages);
  const std::size_t bfs_before = finder.stats().bfs_runs;
  std::optional<CdgCycle> cycle;
  {
    StageTimer::Section section(stages, kStageCycleSearch);
    cycle = finder.Pick(options.cycle_policy);
  }
  report.initially_deadlock_free = !cycle.has_value();

  while (cycle) {
    BreakResult applied;
    ApplyAndRecord(design, cdg, *cycle, options, stages, report, applied);
    {
      StageTimer::Section section(stages, kStageInvalidate);
      cdg.ApplyBreak(design, applied.rerouted_flows, applied.old_routes);
    }
    if (options.paranoid_validation) {
      Require(cdg.SameDependencies(ChannelDependencyGraph::Build(design)),
              "RemoveDeadlocks: incremental CDG diverged from rebuild");
    }
    StageTimer::Section section(stages, kStageCycleSearch);
    cycle = finder.Pick(options.cycle_policy);
  }
  report.cycle_bfs_runs = finder.stats().bfs_runs - bfs_before;
  stages.Count(kStageCycleSearch, "bfs_runs",
               finder.stats().bfs_runs - bfs_before);
  return report;
}

RemovalReport RemoveDeadlocks(NocDesign& design,
                              const RemovalOptions& options) {
  if (options.engine == RemovalEngine::kRebuild) {
    return RemoveDeadlocksRebuild(design, options);
  }
  ChannelDependencyGraph cdg = ChannelDependencyGraph::Build(design);
  DirtyCycleFinder finder(cdg);
  return RemoveDeadlocksOnCdg(design, cdg, finder, options);
}

bool IsDeadlockFree(const NocDesign& design) {
  return IsAcyclic(ChannelDependencyGraph::Build(design));
}

std::string Summarize(const RemovalReport& report) {
  if (report.initially_deadlock_free) {
    return "already deadlock-free; no VCs added";
  }
  return "broke " + std::to_string(report.iterations) + " cycle(s), added " +
         std::to_string(report.vcs_added) + " VC(s), re-routed " +
         std::to_string(report.flows_rerouted) + " flow traversal(s)";
}

}  // namespace nocdr
