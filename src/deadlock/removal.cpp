#include "deadlock/removal.h"

#include <algorithm>

#include "cdg/cdg.h"
#include "cdg/incremental.h"
#include "deadlock/breaker.h"
#include "util/error.h"

namespace nocdr {

namespace {

/// Ascending union of the flow annotations on the cycle's edges — by the
/// CDG definition, exactly the flows that can contribute to any cost
/// table row or need re-routing for any break of this cycle.
std::vector<FlowId> CycleFlowUnion(const ChannelDependencyGraph& cdg,
                                   const CdgCycle& cycle) {
  std::vector<FlowId> flows;
  const std::size_t m = cycle.size();
  for (std::size_t p = 0; p < m; ++p) {
    const auto edge = cdg.FindEdge(cycle[p], cycle[(p + 1) % m]);
    Require(edge.has_value(),
            "CycleFlowUnion: cycle edge missing from the CDG");
    const auto& edge_flows = cdg.EdgeAt(*edge).flows;
    flows.insert(flows.end(), edge_flows.begin(), edge_flows.end());
  }
  std::sort(flows.begin(), flows.end());
  flows.erase(std::unique(flows.begin(), flows.end()), flows.end());
  return flows;
}

BreakCandidate PickBreak(const NocDesign& design, const CdgCycle& cycle,
                         DirectionPolicy policy,
                         const std::vector<FlowId>& candidates) {
  switch (policy) {
    case DirectionPolicy::kForwardOnly:
      return FindDepToBreak(design, cycle, BreakDirection::kForward,
                            &candidates);
    case DirectionPolicy::kBackwardOnly:
      return FindDepToBreak(design, cycle, BreakDirection::kBackward,
                            &candidates);
    case DirectionPolicy::kBoth:
      break;
  }
  // Algorithm 1, steps 5-11: evaluate both directions, keep the cheaper;
  // forward wins ties (the paper's `if f_cost <= b_cost`).
  const BreakCandidate fwd =
      FindDepToBreak(design, cycle, BreakDirection::kForward, &candidates);
  const BreakCandidate bwd =
      FindDepToBreak(design, cycle, BreakDirection::kBackward, &candidates);
  return fwd.cost <= bwd.cost ? fwd : bwd;
}

/// Applies the chosen break and records it; shared by both engines.
void ApplyAndRecord(NocDesign& design, const ChannelDependencyGraph& cdg,
                    const CdgCycle& cycle, const RemovalOptions& options,
                    RemovalReport& report, BreakResult& applied_out) {
  if (report.iterations >= options.max_iterations) {
    throw AlgorithmLimitError("RemoveDeadlocks: iteration cap exceeded (" +
                              std::to_string(options.max_iterations) + ")");
  }
  const std::vector<FlowId> candidates = CycleFlowUnion(cdg, cycle);
  const BreakCandidate chosen =
      PickBreak(design, cycle, options.direction_policy, candidates);
  applied_out = BreakCycle(design, cycle, chosen.edge_pos, chosen.direction,
                           options.duplication, &candidates);

  // Sharing duplicates between flows must keep the realized VC count at
  // the predicted cost; a mismatch means the cost table lied.
  Require(applied_out.added_channels.size() == chosen.cost,
          "RemoveDeadlocks: realized VC count differs from predicted cost");
  if (options.paranoid_validation) {
    design.Validate();
  }

  RemovalStep step;
  step.cycle_length = cycle.size();
  step.direction = chosen.direction;
  step.edge_pos = chosen.edge_pos;
  step.cost = chosen.cost;
  step.vcs_added = applied_out.added_channels.size();
  step.flows_rerouted = applied_out.rerouted_flows.size();
  report.steps.push_back(step);
  report.vcs_added += step.vcs_added;
  report.flows_rerouted += step.flows_rerouted;
  ++report.iterations;
}

RemovalReport RemoveDeadlocksRebuild(NocDesign& design,
                                     const RemovalOptions& options) {
  RemovalReport report;
  ChannelDependencyGraph cdg = ChannelDependencyGraph::Build(design);
  std::optional<CdgCycle> cycle = PickCycle(cdg, options.cycle_policy);
  report.initially_deadlock_free = !cycle.has_value();

  while (cycle) {
    BreakResult applied;
    ApplyAndRecord(design, cdg, *cycle, options, report, applied);
    cdg = ChannelDependencyGraph::Build(design);
    cycle = PickCycle(cdg, options.cycle_policy);
  }
  return report;
}

}  // namespace

RemovalReport RemoveDeadlocksOnCdg(NocDesign& design,
                                   ChannelDependencyGraph& cdg,
                                   DirtyCycleFinder& finder,
                                   const RemovalOptions& options) {
  RemovalReport report;
  const std::size_t bfs_before = finder.stats().bfs_runs;
  std::optional<CdgCycle> cycle = finder.Pick(options.cycle_policy);
  report.initially_deadlock_free = !cycle.has_value();

  while (cycle) {
    BreakResult applied;
    ApplyAndRecord(design, cdg, *cycle, options, report, applied);
    cdg.ApplyBreak(design, applied.rerouted_flows, applied.old_routes);
    if (options.paranoid_validation) {
      Require(cdg.SameDependencies(ChannelDependencyGraph::Build(design)),
              "RemoveDeadlocks: incremental CDG diverged from rebuild");
    }
    cycle = finder.Pick(options.cycle_policy);
  }
  report.cycle_bfs_runs = finder.stats().bfs_runs - bfs_before;
  return report;
}

RemovalReport RemoveDeadlocks(NocDesign& design,
                              const RemovalOptions& options) {
  if (options.engine == RemovalEngine::kRebuild) {
    return RemoveDeadlocksRebuild(design, options);
  }
  ChannelDependencyGraph cdg = ChannelDependencyGraph::Build(design);
  DirtyCycleFinder finder(cdg);
  return RemoveDeadlocksOnCdg(design, cdg, finder, options);
}

bool IsDeadlockFree(const NocDesign& design) {
  return IsAcyclic(ChannelDependencyGraph::Build(design));
}

std::string Summarize(const RemovalReport& report) {
  if (report.initially_deadlock_free) {
    return "already deadlock-free; no VCs added";
  }
  return "broke " + std::to_string(report.iterations) + " cycle(s), added " +
         std::to_string(report.vcs_added) + " VC(s), re-routed " +
         std::to_string(report.flows_rerouted) + " flow traversal(s)";
}

}  // namespace nocdr
