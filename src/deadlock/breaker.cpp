#include "deadlock/breaker.h"

#include <unordered_map>
#include <unordered_set>

#include "util/error.h"

namespace nocdr {

BreakResult BreakCycle(NocDesign& design, const CdgCycle& cycle,
                       std::size_t edge_pos, BreakDirection direction,
                       DuplicationMode mode,
                       const std::vector<FlowId>* candidate_flows) {
  Require(!cycle.empty(), "BreakCycle: empty cycle");
  Require(edge_pos < cycle.size(), "BreakCycle: edge position out of range");
  const std::size_t m = cycle.size();
  const ChannelId edge_from = cycle[edge_pos];
  const ChannelId edge_to = cycle[(edge_pos + 1) % m];

  std::unordered_set<ChannelId> in_cycle(cycle.begin(), cycle.end());

  // Shared duplicate map: original cycle channel -> its new VC. Created
  // lazily so we only add the channels some re-routed flow actually needs.
  std::unordered_map<ChannelId, ChannelId> duplicate;
  BreakResult result;
  auto duplicate_of = [&](ChannelId original) {
    auto it = duplicate.find(original);
    if (it != duplicate.end()) {
      return it->second;
    }
    const LinkId link = design.topology.ChannelAt(original).link;
    ChannelId fresh;
    if (mode == DuplicationMode::kVirtualChannel) {
      fresh = design.topology.AddVirtualChannel(link);
    } else {
      // No VC support: open a parallel physical link between the same
      // switches and use its implicit channel.
      const Link& phys = design.topology.LinkAt(link);
      const LinkId twin = design.topology.AddLink(phys.src, phys.dst);
      fresh = design.topology.ChannelsOf(twin).front();
    }
    duplicate.emplace(original, fresh);
    result.added_channels.push_back(fresh);
    return fresh;
  };

  const std::size_t scan_count = candidate_flows
                                     ? candidate_flows->size()
                                     : design.traffic.FlowCount();
  for (std::size_t fi = 0; fi < scan_count; ++fi) {
    const FlowId f = candidate_flows ? (*candidate_flows)[fi] : FlowId(fi);
    Route& route = design.routes.MutableRouteOf(f);
    // Routes never repeat a channel (validated on construction), so the
    // broken pair occurs at most once per route.
    std::size_t pair_at = route.size();
    for (std::size_t i = 0; i + 1 < route.size(); ++i) {
      if (route[i] == edge_from && route[i + 1] == edge_to) {
        pair_at = i;
        break;
      }
    }
    if (pair_at == route.size()) {
      continue;  // this flow does not create the broken dependency
    }
    result.old_routes.push_back(route);
    if (direction == BreakDirection::kForward) {
      for (std::size_t j = 0; j <= pair_at; ++j) {
        if (in_cycle.contains(route[j])) {
          route[j] = duplicate_of(route[j]);
        }
      }
    } else {
      for (std::size_t j = pair_at + 1; j < route.size(); ++j) {
        if (in_cycle.contains(route[j])) {
          route[j] = duplicate_of(route[j]);
        }
      }
    }
    result.rerouted_flows.push_back(f);
  }

  Require(!result.rerouted_flows.empty(),
          "BreakCycle: no flow creates the selected edge");
  return result;
}

}  // namespace nocdr
