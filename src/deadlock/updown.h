// Up*/down* (turn-prohibition) routing baseline.
//
// The related-work alternative the paper discusses ([17], [18]): instead
// of adding resources, restrict the routing function. Up*/down* builds a
// BFS spanning tree of the topology and requires every route to consist
// of zero or more "up" hops (toward the root) followed by zero or more
// "down" hops — prohibiting down->up turns, which provably leaves the
// CDG acyclic with no extra VCs at all.
//
// The catch, and the reason the paper's method exists: up*/down* needs a
// *bidirectional* link wherever the tree routes traffic, and it often
// lengthens routes (everything funnels toward the root). This
// implementation is faithful to both limitations: it only uses links
// whose reverse link exists (throwing TurnProhibitionInfeasibleError when
// connectivity over the bidirectional sub-topology is missing — exactly
// the paper's critique of [18]), and it reports the hop inflation it
// causes relative to the input routes.
#pragma once

#include <cstddef>

#include "noc/design.h"
#include "util/error.h"

namespace nocdr {

/// Raised when up*/down* cannot serve a flow because the bidirectional
/// sub-topology does not connect its endpoints (application-specific
/// designs frequently have unidirectional links — the paper, Section 1).
class TurnProhibitionInfeasibleError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Summary of an up*/down* re-routing run.
struct UpDownReport {
  /// Root switch used for the spanning tree.
  SwitchId root;
  /// Total route hops before and after: the inflation the restriction
  /// costs (after >= shortest possible within the tree discipline).
  std::size_t hops_before = 0;
  std::size_t hops_after = 0;

  [[nodiscard]] double HopInflation() const {
    return hops_before == 0
               ? 1.0
               : static_cast<double>(hops_after) /
                     static_cast<double>(hops_before);
  }
};

/// Re-routes every flow of \p design with up*/down* over a BFS spanning
/// tree rooted at the most-connected switch. No channels are added; the
/// resulting CDG is acyclic by construction. Throws
/// TurnProhibitionInfeasibleError when some flow cannot be served.
UpDownReport ApplyUpDownRouting(NocDesign& design);

}  // namespace nocdr
