#include "deadlock/verify.h"

#include <deque>

#include "cdg/cdg.h"
#include "util/error.h"
#include "util/json.h"

namespace nocdr {

DeadlockCertificate CertifyDeadlockFreedom(const NocDesign& design) {
  return CertifyFromCdg(design, ChannelDependencyGraph::Build(design));
}

DeadlockCertificate CertifyFromCdg(const NocDesign& design,
                                   const ChannelDependencyGraph& cdg) {
  Require(cdg.VertexCount() == design.topology.ChannelCount(),
          "CertifyFromCdg: CDG vertex count does not match the design's "
          "channel count (graph out of sync)");
  DeadlockCertificate cert;

  // Kahn's algorithm, keeping the emission order as the certificate.
  const std::size_t n = cdg.VertexCount();
  std::vector<std::size_t> in_degree(n, 0);
  for (const CdgEdge& e : cdg.Edges()) {
    ++in_degree[e.to.value()];
  }
  std::deque<ChannelId> ready;
  for (std::size_t v = 0; v < n; ++v) {
    if (in_degree[v] == 0) {
      ready.emplace_back(ChannelId(v));
    }
  }
  while (!ready.empty()) {
    const ChannelId v = ready.front();
    ready.pop_front();
    cert.topological_order.push_back(v);
    for (const auto& ref : cdg.OutEdges(v)) {
      const ChannelId w = ref.to;
      if (--in_degree[w.value()] == 0) {
        ready.push_back(w);
      }
    }
  }
  cert.deadlock_free = cert.topological_order.size() == n;
  if (!cert.deadlock_free) {
    cert.topological_order.clear();
    if (auto cycle = SmallestCycle(cdg)) {
      cert.counterexample = std::move(*cycle);
    }
  }
  return cert;
}

bool CheckCertificate(const NocDesign& design,
                      const DeadlockCertificate& certificate) {
  if (!certificate.deadlock_free) {
    return false;
  }
  const std::size_t n = design.topology.ChannelCount();
  if (certificate.topological_order.size() != n) {
    return false;
  }
  // rank[channel] = position in the claimed order; also detects
  // duplicates and out-of-range entries.
  constexpr std::size_t kUnranked = static_cast<std::size_t>(-1);
  std::vector<std::size_t> rank(n, kUnranked);
  for (std::size_t i = 0; i < n; ++i) {
    const ChannelId c = certificate.topological_order[i];
    if (!c.valid() || c.value() >= n || rank[c.value()] != kUnranked) {
      return false;
    }
    rank[c.value()] = i;
  }
  // Every consecutive pair of every route must step forward. This checks
  // the routes directly rather than trusting any CDG construction.
  for (std::size_t fi = 0; fi < design.traffic.FlowCount(); ++fi) {
    const Route& route = design.routes.RouteOf(FlowId(fi));
    for (std::size_t h = 0; h + 1 < route.size(); ++h) {
      if (rank[route[h].value()] >= rank[route[h + 1].value()]) {
        return false;
      }
    }
  }
  return true;
}

namespace {

void AppendChannelArray(std::string& out, const char* key,
                        const std::vector<ChannelId>& channels) {
  out += '"';
  out += key;
  out += "\":[";
  for (std::size_t i = 0; i < channels.size(); ++i) {
    if (i > 0) {
      out += ',';
    }
    out += std::to_string(channels[i].value());
  }
  out += ']';
}

std::vector<ChannelId> ReadChannelArray(const JsonValue& value) {
  std::vector<ChannelId> channels;
  channels.reserve(value.Items().size());
  for (const JsonValue& item : value.Items()) {
    channels.emplace_back(item.AsUint());
  }
  return channels;
}

}  // namespace

std::string CertificateToJson(const DeadlockCertificate& certificate) {
  std::string out = "{\"deadlock_free\":";
  out += certificate.deadlock_free ? "true" : "false";
  out += ',';
  AppendChannelArray(out, "topological_order",
                     certificate.topological_order);
  out += ',';
  AppendChannelArray(out, "counterexample", certificate.counterexample);
  out += '}';
  return out;
}

DeadlockCertificate CertificateFromJson(const std::string& json) {
  const JsonValue value = JsonValue::Parse(json);
  DeadlockCertificate cert;
  cert.deadlock_free = value.At("deadlock_free").AsBool();
  cert.topological_order = ReadChannelArray(value.At("topological_order"));
  cert.counterexample = ReadChannelArray(value.At("counterexample"));
  return cert;
}

}  // namespace nocdr
