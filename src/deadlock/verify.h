// Independent deadlock-freedom verification with certificates.
//
// RemoveDeadlocks and ApplyResourceOrdering both end by making the CDG
// acyclic. This module produces and checks the *evidence*: a topological
// order of the channels such that every dependency edge goes forward.
// The checker shares no code with the cycle search, so a bug in one is
// caught by the other — the belt-and-braces style hardware sign-off
// flows expect.
#pragma once

#include <string>
#include <vector>

#include "cdg/cycle.h"
#include "noc/design.h"
#include "util/ids.h"

namespace nocdr {

/// Evidence for (or against) deadlock freedom of a design.
struct DeadlockCertificate {
  bool deadlock_free = false;
  /// When deadlock_free: every channel, ordered so that all CDG edges
  /// point forward (a topological order of the CDG).
  std::vector<ChannelId> topological_order;
  /// When not deadlock_free: one CDG cycle as the counterexample.
  CdgCycle counterexample;
};

/// Analyzes \p design and returns either a topological order of its CDG
/// (deadlock-free) or a concrete dependency cycle (deadlock-prone).
DeadlockCertificate CertifyDeadlockFreedom(const NocDesign& design);

/// CertifyDeadlockFreedom computed from an already-maintained CDG
/// instead of re-deriving one from the design — the fault pipeline's
/// fast path: Kahn's algorithm is O(V+E), while a from-scratch Build
/// pays a hash-map insert per route hop. The CDG representation is
/// canonical, so the certificate is identical to the from-scratch one
/// *provided* \p cdg is in sync with \p design (vertex count must match
/// the design's channel count; Require-checked). Sign-off still rests
/// on CheckCertificate, which re-validates the order against the routes
/// directly and trusts no CDG at all.
DeadlockCertificate CertifyFromCdg(const NocDesign& design,
                                   const ChannelDependencyGraph& cdg);

/// Re-validates a positive certificate against the design from scratch:
/// the order must contain every channel exactly once and every
/// consecutive channel pair of every route must step strictly forward in
/// the order. Returns false for negative certificates.
bool CheckCertificate(const NocDesign& design,
                      const DeadlockCertificate& certificate);

/// Serializes \p certificate as one JSON object, e.g.
/// {"deadlock_free":true,"topological_order":[2,0,1],"counterexample":[]}.
/// Certificates are sign-off evidence, so they must survive storage and
/// transport; CertificateFromJson is the exact inverse.
std::string CertificateToJson(const DeadlockCertificate& certificate);

/// Parses a certificate written by CertificateToJson. Throws
/// InvalidModelError on malformed input. The result still has to pass
/// CheckCertificate against the design it claims to describe — parsing
/// performs no semantic validation.
DeadlockCertificate CertificateFromJson(const std::string& json);

}  // namespace nocdr
