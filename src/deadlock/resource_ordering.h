// Resource ordering baseline (Dally/Towles channel classes).
//
// The classic way to make wormhole routing deadlock-free on an arbitrary
// topology: assign every channel an ordered resource class and require
// each flow to acquire channels in strictly increasing class order. We use
// the canonical distance-class scheme: the channel a flow uses at hop h of
// its route belongs to class h. A physical link crossed by flows at k
// distinct hop positions therefore needs k virtual channels — the number
// of classes a flow needs grows with its route length, which is exactly
// the overhead the paper's Figure 8/9 dotted lines show.
#pragma once

#include <cstddef>
#include <vector>

#include "noc/design.h"

namespace nocdr {

/// Summary of a resource-ordering run.
struct ResourceOrderingReport {
  /// VCs added beyond one channel per link.
  std::size_t vcs_added = 0;
  /// Number of distinct (link, hop-class) channels in the final design.
  std::size_t total_channels = 0;
  /// Highest hop class used by any flow (= longest route length).
  std::size_t max_class = 0;
};

/// Applies resource ordering in place: adds the VCs required so that every
/// flow traverses strictly increasing channel classes, and re-routes every
/// flow onto the class-matched channels. The resulting CDG is acyclic by
/// construction (every dependency edge goes from class h to class h+1).
ResourceOrderingReport ApplyResourceOrdering(NocDesign& design);

}  // namespace nocdr
