#include "deadlock/cost.h"

#include <algorithm>
#include <unordered_map>

#include "util/error.h"

namespace nocdr {

namespace {

/// Maps each cycle vertex to its index within the cycle.
std::unordered_map<ChannelId, std::size_t> CyclePositions(
    const CdgCycle& cycle) {
  std::unordered_map<ChannelId, std::size_t> pos;
  for (std::size_t i = 0; i < cycle.size(); ++i) {
    Require(pos.emplace(cycle[i], i).second,
            "cycle repeats a vertex; not a simple cycle");
  }
  return pos;
}

}  // namespace

CycleCostTable ComputeCycleCostTable(
    const NocDesign& design, const CdgCycle& cycle, BreakDirection direction,
    const std::vector<FlowId>* candidate_flows) {
  Require(!cycle.empty(), "ComputeCycleCostTable: empty cycle");
  const std::size_t m = cycle.size();
  const auto pos = CyclePositions(cycle);

  const std::size_t scan_count = candidate_flows
                                     ? candidate_flows->size()
                                     : design.traffic.FlowCount();
  CycleCostTable table;
  for (std::size_t fi = 0; fi < scan_count; ++fi) {
    const FlowId f = candidate_flows ? (*candidate_flows)[fi] : FlowId(fi);
    const Route& route = design.routes.RouteOf(f);

    // Count of cycle vertices along the walk (the paper's `val`), walked
    // source->destination for forward breaks and destination->source for
    // backward breaks.
    std::vector<std::size_t> val_at(route.size(), 0);
    std::size_t val = 0;
    if (direction == BreakDirection::kForward) {
      for (std::size_t i = 0; i < route.size(); ++i) {
        if (pos.contains(route[i])) {
          val_at[i] = ++val;
        }
      }
    } else {
      for (std::size_t i = route.size(); i-- > 0;) {
        if (pos.contains(route[i])) {
          val_at[i] = ++val;
        }
      }
    }
    if (val < 2) {
      // |path ∩ C| <= 1: the flow cannot create any dependency edge of
      // the cycle (Algorithm 2, steps 3-7).
      continue;
    }

    // Record the cost wherever the flow creates a dependency edge of the
    // cycle, i.e. uses c_p immediately followed by c_{p+1 mod m}.
    std::vector<std::size_t> row(m, 0);
    bool creates_any = false;
    for (std::size_t i = 0; i + 1 < route.size(); ++i) {
      auto it = pos.find(route[i]);
      if (it == pos.end()) {
        continue;
      }
      const std::size_t p = it->second;
      if (route[i + 1] != cycle[(p + 1) % m]) {
        continue;
      }
      // Forward: duplicate every cycle channel used up to and including
      // c_p. Backward: duplicate every cycle channel used from c_{p+1} on.
      row[p] = direction == BreakDirection::kForward ? val_at[i]
                                                     : val_at[i + 1];
      creates_any = true;
    }
    if (creates_any) {
      table.flows.push_back(f);
      table.cost.push_back(std::move(row));
    }
  }

  table.combined.assign(m, 0);
  for (const auto& row : table.cost) {
    for (std::size_t p = 0; p < m; ++p) {
      table.combined[p] = std::max(table.combined[p], row[p]);
    }
  }
  return table;
}

BreakCandidate FindDepToBreak(
    const NocDesign& design, const CdgCycle& cycle, BreakDirection direction,
    const std::vector<FlowId>* candidate_flows) {
  const CycleCostTable table =
      ComputeCycleCostTable(design, cycle, direction, candidate_flows);
  BreakCandidate best;
  best.direction = direction;
  for (std::size_t p = 0; p < table.combined.size(); ++p) {
    if (table.combined[p] == 0) {
      continue;  // no flow creates this edge; cannot break here
    }
    if (table.combined[p] < best.cost) {
      best.cost = table.combined[p];
      best.edge_pos = p;
    }
  }
  Require(best.cost != std::numeric_limits<std::size_t>::max(),
          "FindDepToBreak: no breakable edge; cycle is not route-induced");
  return best;
}

}  // namespace nocdr
