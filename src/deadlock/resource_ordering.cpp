#include "deadlock/resource_ordering.h"

#include <algorithm>
#include <map>

#include "util/error.h"

namespace nocdr {

ResourceOrderingReport ApplyResourceOrdering(NocDesign& design) {
  ResourceOrderingReport report;
  const std::size_t extra_before = design.topology.ExtraVcCount();

  // Pass 1: collect, per link, the set of hop classes at which any flow
  // crosses it.
  std::vector<std::map<std::size_t, ChannelId>> class_channel(
      design.topology.LinkCount());
  for (std::size_t fi = 0; fi < design.traffic.FlowCount(); ++fi) {
    const Route& route = design.routes.RouteOf(FlowId(fi));
    for (std::size_t h = 0; h < route.size(); ++h) {
      const LinkId link = design.topology.ChannelAt(route[h]).link;
      class_channel[link.value()].emplace(h, ChannelId{});
      report.max_class = std::max(report.max_class, h + 1);
    }
  }

  // Pass 2: materialize channels in ascending class order per link, so
  // the VC index equals the rank of the class on that link (VC 0 = the
  // link's lowest class, reusing the implicit channel).
  for (std::size_t li = 0; li < class_channel.size(); ++li) {
    const LinkId link(li);
    bool first = true;
    for (auto& [h, channel] : class_channel[li]) {
      if (first) {
        auto vc0 = design.topology.FindChannel(link, 0);
        Require(vc0.has_value(), "link lost its implicit channel");
        channel = *vc0;
        first = false;
      } else {
        channel = design.topology.AddVirtualChannel(link);
      }
    }
  }

  // Pass 3: re-route every flow onto the class-matched channels.
  for (std::size_t fi = 0; fi < design.traffic.FlowCount(); ++fi) {
    Route& route = design.routes.MutableRouteOf(FlowId(fi));
    for (std::size_t h = 0; h < route.size(); ++h) {
      const LinkId link = design.topology.ChannelAt(route[h]).link;
      route[h] = class_channel[link.value()].at(h);
    }
  }

  report.vcs_added = design.topology.ExtraVcCount() - extra_before;
  report.total_channels = design.topology.ChannelCount();
  return report;
}

}  // namespace nocdr
