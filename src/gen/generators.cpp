#include "gen/generators.h"

#include <algorithm>
#include <map>
#include <unordered_set>
#include <utility>

#include "util/error.h"
#include "util/rng.h"

namespace nocdr::gen {

namespace {

/// Directed link registry: (src, dst) -> links in creation order, so
/// parallel fat-tree links are addressable by index.
using LinkIndex =
    std::map<std::pair<std::size_t, std::size_t>, std::vector<LinkId>>;

LinkId AddIndexedLink(TopologyGraph& topology, LinkIndex& index,
                      std::size_t src, std::size_t dst) {
  const LinkId l = topology.AddLink(SwitchId(src), SwitchId(dst));
  index[{src, dst}].push_back(l);
  return l;
}

const LinkId& LinkBetween(const LinkIndex& index, std::size_t src,
                          std::size_t dst, std::size_t parallel = 0) {
  const auto it = index.find({src, dst});
  Require(it != index.end() && parallel < it->second.size(),
          "generator: missing link " + std::to_string(src) + "->" +
              std::to_string(dst));
  return it->second[parallel];
}

// ------------------------------------------------------------- mesh/torus

std::size_t GridIndex(std::size_t x, std::size_t y, std::size_t width) {
  return y * width + x;
}

GeneratedTopology BuildGrid(const GeneratorSpec& spec, bool wrap) {
  const std::size_t w = spec.width;
  const std::size_t h = spec.height;
  if (wrap) {
    Require(w >= 3 && h >= 3,
            "generator: torus needs width and height >= 3 (wrap links must "
            "be distinct from direct links)");
  } else {
    Require(w >= 2 && h >= 2, "generator: mesh needs width and height >= 2");
  }
  GeneratedTopology out;
  LinkIndex links;
  const std::string stem = wrap ? "t" : "m";
  for (std::size_t y = 0; y < h; ++y) {
    for (std::size_t x = 0; x < w; ++x) {
      out.topology.AddSwitch(stem + std::to_string(x) + "_" +
                             std::to_string(y));
    }
  }
  // One bidirectional pair per grid edge; the torus adds the wrap edges.
  for (std::size_t y = 0; y < h; ++y) {
    for (std::size_t x = 0; x < w; ++x) {
      const std::size_t s = GridIndex(x, y, w);
      if (x + 1 < w || wrap) {
        const std::size_t right = GridIndex((x + 1) % w, y, w);
        AddIndexedLink(out.topology, links, s, right);
        AddIndexedLink(out.topology, links, right, s);
      }
      if (y + 1 < h || wrap) {
        const std::size_t down = GridIndex(x, (y + 1) % h, w);
        AddIndexedLink(out.topology, links, s, down);
        AddIndexedLink(out.topology, links, down, s);
      }
    }
  }

  // Dimension-ordered XY: correct x fully, then y. On the torus each
  // dimension goes the shorter way around (ties break toward +).
  const std::size_t n = w * h;
  out.table.assign(n, std::vector<LinkId>(n));
  for (std::size_t s = 0; s < n; ++s) {
    const std::size_t sx = s % w;
    const std::size_t sy = s / w;
    for (std::size_t d = 0; d < n; ++d) {
      if (s == d) {
        continue;
      }
      const std::size_t dx = d % w;
      const std::size_t dy = d / w;
      std::size_t next;
      if (sx != dx) {
        bool positive;
        if (wrap) {
          const std::size_t forward = (dx + w - sx) % w;
          positive = forward <= w - forward;
        } else {
          positive = dx > sx;
        }
        const std::size_t nx = positive ? (sx + 1) % w : (sx + w - 1) % w;
        next = GridIndex(nx, sy, w);
      } else {
        bool positive;
        if (wrap) {
          const std::size_t forward = (dy + h - sy) % h;
          positive = forward <= h - forward;
        } else {
          positive = dy > sy;
        }
        const std::size_t ny = positive ? (sy + 1) % h : (sy + h - 1) % h;
        next = GridIndex(sx, ny, w);
      }
      out.table[s][d] = LinkBetween(links, s, next);
    }
  }
  out.core_switches.reserve(n);
  for (std::size_t s = 0; s < n; ++s) {
    out.core_switches.push_back(SwitchId(s));
  }
  return out;
}

// ------------------------------------------------------------------ ring

GeneratedTopology BuildRing(const GeneratorSpec& spec) {
  const std::size_t n = spec.ring_nodes;
  Require(n >= 3, "generator: ring needs >= 3 nodes");
  GeneratedTopology out;
  LinkIndex links;
  for (std::size_t i = 0; i < n; ++i) {
    out.topology.AddSwitch("r" + std::to_string(i));
  }
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t next = (i + 1) % n;
    AddIndexedLink(out.topology, links, i, next);
    AddIndexedLink(out.topology, links, next, i);
  }
  // Shortest way around; ties (opposite node on an even ring) break
  // clockwise. Flows that chain clockwise segments all the way around
  // are what makes the CDG cyclic.
  out.table.assign(n, std::vector<LinkId>(n));
  for (std::size_t s = 0; s < n; ++s) {
    for (std::size_t d = 0; d < n; ++d) {
      if (s == d) {
        continue;
      }
      const std::size_t clockwise = (d + n - s) % n;
      const std::size_t next =
          clockwise <= n - clockwise ? (s + 1) % n : (s + n - 1) % n;
      out.table[s][d] = LinkBetween(links, s, next);
    }
  }
  out.core_switches.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.core_switches.push_back(SwitchId(i));
  }
  return out;
}

// -------------------------------------------------------------- fat tree

GeneratedTopology BuildFatTree(const GeneratorSpec& spec) {
  const std::size_t k = spec.tree_arity;
  const std::size_t levels = spec.tree_levels;
  const std::size_t uplinks = spec.tree_uplinks;
  Require(k >= 2, "generator: fat tree needs arity >= 2");
  Require(levels >= 2, "generator: fat tree needs >= 2 levels");
  Require(uplinks >= 1, "generator: fat tree needs >= 1 uplink");
  Require(levels <= 8, "generator: fat tree deeper than 8 levels");

  std::vector<std::size_t> level_start(levels + 1, 0);
  std::size_t per_level = 1;
  for (std::size_t l = 0; l < levels; ++l) {
    level_start[l + 1] = level_start[l] + per_level;
    per_level *= k;
  }
  const std::size_t n = level_start[levels];

  GeneratedTopology out;
  LinkIndex links;
  std::vector<std::size_t> level_of(n);
  std::vector<std::size_t> parent(n, 0);
  for (std::size_t l = 0; l < levels; ++l) {
    for (std::size_t j = level_start[l]; j < level_start[l + 1]; ++j) {
      level_of[j] = l;
      out.topology.AddSwitch("f" + std::to_string(l) + "_" +
                             std::to_string(j - level_start[l]));
    }
  }
  for (std::size_t j = level_start[1]; j < n; ++j) {
    const std::size_t l = level_of[j];
    parent[j] = level_start[l - 1] + (j - level_start[l]) / k;
    for (std::size_t p = 0; p < uplinks; ++p) {
      AddIndexedLink(out.topology, links, j, parent[j]);
      AddIndexedLink(out.topology, links, parent[j], j);
    }
  }

  // Ancestor of \p node at \p level (level <= level_of[node]).
  const auto ancestor = [&](std::size_t node, std::size_t level) {
    while (level_of[node] > level) {
      node = parent[node];
    }
    return node;
  };

  // Up to the lowest common ancestor, then down; the parallel link for a
  // hop is picked by destination modulo (d-mod-k spreading). Up*/down*
  // discipline, so the CDG stays acyclic.
  out.table.assign(n, std::vector<LinkId>(n));
  for (std::size_t s = 0; s < n; ++s) {
    for (std::size_t d = 0; d < n; ++d) {
      if (s == d) {
        continue;
      }
      const std::size_t par = d % uplinks;
      if (level_of[d] > level_of[s] && ancestor(d, level_of[s]) == s) {
        const std::size_t child = ancestor(d, level_of[s] + 1);
        out.table[s][d] = LinkBetween(links, s, child, par);
      } else {
        out.table[s][d] = LinkBetween(links, s, parent[s], par);
      }
    }
  }
  out.core_switches.reserve(level_start[levels] - level_start[levels - 1]);
  for (std::size_t j = level_start[levels - 1]; j < n; ++j) {
    out.core_switches.push_back(SwitchId(j));
  }
  return out;
}

// --------------------------------------------------------------- traffic

struct PatternContext {
  const GeneratorSpec& spec;
  const GeneratedTopology& topo;
  std::size_t core_count;
};

/// Uniform destination != \p src (rejection over a dense range; the
/// offset trick keeps the draw single-shot and deterministic).
std::size_t UniformOther(Rng& rng, std::size_t src, std::size_t count) {
  return (src + 1 + static_cast<std::size_t>(rng.NextBelow(count - 1))) %
         count;
}

void AddPatternFlow(CommunicationGraph& traffic, const GeneratorSpec& spec,
                    Rng& rng, std::size_t src, std::size_t dst) {
  if (src == dst) {
    return;
  }
  const double bw = spec.min_bandwidth +
                    rng.NextDouble() *
                        (spec.max_bandwidth - spec.min_bandwidth);
  traffic.AddFlow(CoreId(src), CoreId(dst), bw);
}

void GenerateUniform(CommunicationGraph& traffic, const PatternContext& ctx,
                     Rng& rng) {
  const std::size_t c = ctx.core_count;
  const std::size_t fanout =
      std::min(std::max<std::size_t>(ctx.spec.uniform_fanout, 1), c - 1);
  for (std::size_t i = 0; i < c; ++i) {
    std::unordered_set<std::size_t> picked;
    while (picked.size() < fanout) {
      const std::size_t d = UniformOther(rng, i, c);
      if (picked.insert(d).second) {
        AddPatternFlow(traffic, ctx.spec, rng, i, d);
      }
    }
  }
}

void GenerateTranspose(CommunicationGraph& traffic, const PatternContext& ctx,
                       Rng& rng) {
  const std::size_t c = ctx.core_count;
  const std::size_t attach = ctx.topo.core_switches.size();
  const bool grid = ctx.spec.family == TopologyFamily::kMesh2D ||
                    ctx.spec.family == TopologyFamily::kTorus2D;
  for (std::size_t i = 0; i < c; ++i) {
    std::size_t dst;
    if (grid) {
      const std::size_t w = ctx.spec.width;
      const std::size_t h = ctx.spec.height;
      const std::size_t s = i % attach;
      const std::size_t layer = i / attach;
      const std::size_t x = s % w;
      const std::size_t y = s / w;
      // (x, y) -> (y, x) where that position exists; the off-square
      // remainder reflects through the far corner instead.
      const std::size_t t =
          (y < w && x < h) ? GridIndex(y, x, w) : attach - 1 - s;
      dst = t + layer * attach;
    } else {
      dst = c - 1 - i;
    }
    AddPatternFlow(traffic, ctx.spec, rng, i, dst);
  }
}

void GenerateHotspot(CommunicationGraph& traffic, const PatternContext& ctx,
                     Rng& rng) {
  const std::size_t c = ctx.core_count;
  const double fraction =
      std::clamp(ctx.spec.hotspot_fraction, 0.0, 1.0);
  const std::size_t hotspot =
      static_cast<std::size_t>(rng.NextBelow(c));
  for (std::size_t i = 0; i < c; ++i) {
    if (i == hotspot) {
      continue;
    }
    const bool aimed = rng.NextBool(fraction);
    const std::size_t dst = aimed ? hotspot : UniformOther(rng, i, c);
    AddPatternFlow(traffic, ctx.spec, rng, i, dst);
  }
}

void GenerateNeighbor(CommunicationGraph& traffic, const PatternContext& ctx,
                      Rng& rng) {
  const std::size_t c = ctx.core_count;
  const std::size_t attach = ctx.topo.core_switches.size();
  for (std::size_t i = 0; i < c; ++i) {
    const std::size_t a = i % attach;
    const std::size_t layer = i / attach;
    std::vector<std::size_t> neighbors;
    switch (ctx.spec.family) {
      case TopologyFamily::kMesh2D:
      case TopologyFamily::kTorus2D: {
        const bool wrap = ctx.spec.family == TopologyFamily::kTorus2D;
        const std::size_t w = ctx.spec.width;
        const std::size_t h = ctx.spec.height;
        const std::size_t x = a % w;
        const std::size_t y = a / w;
        if (x + 1 < w || wrap) {
          neighbors.push_back(GridIndex((x + 1) % w, y, w));
        }
        if (y + 1 < h || wrap) {
          neighbors.push_back(GridIndex(x, (y + 1) % h, w));
        }
        break;
      }
      case TopologyFamily::kRing:
      case TopologyFamily::kFatTree:
        neighbors.push_back((a + 1) % attach);
        break;
    }
    for (const std::size_t nb : neighbors) {
      AddPatternFlow(traffic, ctx.spec, rng, i, nb + layer * attach);
    }
  }
}

}  // namespace

std::vector<TopologyFamily> AllFamilies() {
  return {TopologyFamily::kMesh2D, TopologyFamily::kTorus2D,
          TopologyFamily::kRing, TopologyFamily::kFatTree};
}

std::string FamilyName(TopologyFamily family) {
  switch (family) {
    case TopologyFamily::kMesh2D:
      return "mesh";
    case TopologyFamily::kTorus2D:
      return "torus";
    case TopologyFamily::kRing:
      return "ring";
    case TopologyFamily::kFatTree:
      return "fat_tree";
  }
  return "unknown";
}

std::optional<TopologyFamily> ParseFamily(const std::string& name) {
  for (const TopologyFamily family : AllFamilies()) {
    if (FamilyName(family) == name) {
      return family;
    }
  }
  return std::nullopt;
}

std::vector<TrafficPattern> AllPatterns() {
  return {TrafficPattern::kUniform, TrafficPattern::kTranspose,
          TrafficPattern::kHotspot, TrafficPattern::kNeighbor};
}

std::string PatternName(TrafficPattern pattern) {
  switch (pattern) {
    case TrafficPattern::kUniform:
      return "uniform";
    case TrafficPattern::kTranspose:
      return "transpose";
    case TrafficPattern::kHotspot:
      return "hotspot";
    case TrafficPattern::kNeighbor:
      return "neighbor";
  }
  return "unknown";
}

std::optional<TrafficPattern> ParsePattern(const std::string& name) {
  for (const TrafficPattern pattern : AllPatterns()) {
    if (PatternName(pattern) == name) {
      return pattern;
    }
  }
  return std::nullopt;
}

GeneratedTopology BuildFamilyTopology(const GeneratorSpec& spec) {
  GeneratedTopology out;
  switch (spec.family) {
    case TopologyFamily::kMesh2D:
      out = BuildGrid(spec, /*wrap=*/false);
      break;
    case TopologyFamily::kTorus2D:
      out = BuildGrid(spec, /*wrap=*/true);
      break;
    case TopologyFamily::kRing:
      out = BuildRing(spec);
      break;
    case TopologyFamily::kFatTree:
      out = BuildFatTree(spec);
      break;
  }
  ValidateNextHopTable(out.topology, out.table);
  return out;
}

std::string FamilyShapeName(const GeneratorSpec& spec) {
  switch (spec.family) {
    case TopologyFamily::kMesh2D:
      return "mesh" + std::to_string(spec.width) + "x" +
             std::to_string(spec.height);
    case TopologyFamily::kTorus2D:
      return "torus" + std::to_string(spec.width) + "x" +
             std::to_string(spec.height);
    case TopologyFamily::kRing:
      return "ring" + std::to_string(spec.ring_nodes);
    case TopologyFamily::kFatTree:
      return "ftree" + std::to_string(spec.tree_arity) + "x" +
             std::to_string(spec.tree_levels);
  }
  return "unknown";
}

NocDesign GenerateStandardDesign(const GeneratorSpec& spec,
                                 NextHopTable* table_out) {
  Require(spec.cores_per_switch >= 1,
          "generator: cores_per_switch must be >= 1");
  Require(spec.min_bandwidth > 0.0 &&
              spec.min_bandwidth <= spec.max_bandwidth,
          "generator: bandwidth range must satisfy 0 < min <= max");
  GeneratedTopology topo = BuildFamilyTopology(spec);

  NocDesign design;
  design.name = FamilyShapeName(spec) + "_" + PatternName(spec.pattern);
  if (spec.cores_per_switch > 1) {
    design.name += "_c" + std::to_string(spec.cores_per_switch);
  }

  const std::size_t attach = topo.core_switches.size();
  const std::size_t core_count = attach * spec.cores_per_switch;
  Require(core_count >= 2, "generator: needs at least two cores");
  design.attachment.reserve(core_count);
  for (std::size_t i = 0; i < core_count; ++i) {
    design.traffic.AddCore("c" + std::to_string(i));
    design.attachment.push_back(topo.core_switches[i % attach]);
  }

  Rng rng(spec.seed);
  const PatternContext ctx{spec, topo, core_count};
  switch (spec.pattern) {
    case TrafficPattern::kUniform:
      GenerateUniform(design.traffic, ctx, rng);
      break;
    case TrafficPattern::kTranspose:
      GenerateTranspose(design.traffic, ctx, rng);
      break;
    case TrafficPattern::kHotspot:
      GenerateHotspot(design.traffic, ctx, rng);
      break;
    case TrafficPattern::kNeighbor:
      GenerateNeighbor(design.traffic, ctx, rng);
      break;
  }
  Require(design.traffic.FlowCount() > 0,
          "generator: pattern produced no flows");

  design.routes = BuildTableRoutes(topo.topology, design.traffic,
                                   design.attachment, topo.table);
  if (table_out != nullptr) {
    *table_out = std::move(topo.table);
  }
  design.topology = std::move(topo.topology);
  design.Validate();
  return design;
}

}  // namespace nocdr::gen
