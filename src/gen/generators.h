// Standard-topology workload generators: mesh, torus, ring, fat tree.
//
// The paper's method targets *custom* application-specific topologies,
// but its cost claims are all relative to structured baselines. This
// module opens those structured families as first-class design sources:
// each generator emits a complete NocDesign — switches, links, core
// attachment, a pattern-driven flow set and table-driven routes built
// with the family's classical policy:
//
//   * 2D mesh  — dimension-ordered XY. Provably deadlock-free: every
//     route turns at most once, from an X channel into a Y channel, so
//     the CDG is acyclic by the classic turn argument.
//   * 2D torus — dimension-ordered XY over the wraparound links,
//     shortest way around per dimension. Deliberately *cyclic*: the
//     wrap links close ring dependencies in both dimensions, which is
//     exactly the adversarial input the removal / resource-ordering /
//     up*-down* arms need real work on.
//   * ring     — shortest-way-around routing; cyclic for the same
//     reason once flows cover the ring in one direction.
//   * fat tree — up to the lowest common ancestor, then down, with
//     destination-modulo spreading over the parallel parent links
//     (d-mod-k). Deadlock-free: up*/down* discipline, no down->up turn.
//
// All randomness (pattern destinations, bandwidths, hotspot choice)
// comes from util/rng seeded by the spec, so identical specs produce
// byte-identical designs on every platform.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "noc/design.h"
#include "synth/route_builder.h"

namespace nocdr::gen {

enum class TopologyFamily {
  kMesh2D,
  kTorus2D,
  kRing,
  kFatTree,
};

/// All families, in the fixed sweep order.
std::vector<TopologyFamily> AllFamilies();

/// Stable lowercase identifier ("mesh", "torus", "ring", "fat_tree").
std::string FamilyName(TopologyFamily family);

/// Inverse of FamilyName; nullopt for unknown names.
std::optional<TopologyFamily> ParseFamily(const std::string& name);

/// Synthetic traffic-pattern matrix applied over the attached cores.
enum class TrafficPattern {
  /// Every core sends to `uniform_fanout` distinct random cores.
  kUniform,
  /// Matrix transpose: core at grid position (x, y) sends to the core
  /// at (y, x); non-grid families (and off-square remainders) use index
  /// reversal, the 1D analogue.
  kTranspose,
  /// One seeded hotspot core receives most traffic; the rest of each
  /// core's demand goes to a uniform background destination.
  kHotspot,
  /// Nearest-neighbor: each core sends to the core(s) one hop away in
  /// the positive direction(s) of its family (grid: +x and +y, ring:
  /// successor, tree: next leaf).
  kNeighbor,
};

/// All patterns, in the fixed sweep order.
std::vector<TrafficPattern> AllPatterns();

/// Stable lowercase identifier ("uniform", "transpose", ...).
std::string PatternName(TrafficPattern pattern);

/// Inverse of PatternName; nullopt for unknown names.
std::optional<TrafficPattern> ParsePattern(const std::string& name);

/// Full parameterization of one generated design. Only the fields of
/// the selected family are read (e.g. ring_nodes is ignored for a mesh).
struct GeneratorSpec {
  TopologyFamily family = TopologyFamily::kMesh2D;

  /// Mesh / torus grid extent. Mesh needs >= 2 per dimension; the torus
  /// needs >= 3 so wraparound links are distinct from the direct links.
  std::size_t width = 4;
  std::size_t height = 4;

  /// Ring switch count (>= 3).
  std::size_t ring_nodes = 8;

  /// Fat tree: children per switch (>= 2), levels including the root
  /// (>= 2) and parallel links per child<->parent pair (>= 1) — the
  /// "fatness" commodity fat trees realize as multiple uplinks.
  std::size_t tree_arity = 2;
  std::size_t tree_levels = 3;
  std::size_t tree_uplinks = 2;

  /// Cores attached per attachment point (every switch for mesh/torus/
  /// ring, every leaf for the fat tree).
  std::size_t cores_per_switch = 1;

  TrafficPattern pattern = TrafficPattern::kUniform;
  /// kUniform: distinct random destinations per core.
  std::size_t uniform_fanout = 3;
  /// kHotspot: probability a core's flow targets the hotspot core
  /// instead of a uniform background destination. Clamped to [0, 1].
  double hotspot_fraction = 0.75;

  /// Bandwidth range (MB/s) every generated flow draws from.
  double min_bandwidth = 10.0;
  double max_bandwidth = 200.0;

  std::uint64_t seed = 1;
};

/// Topology plus the family's routing policy, before traffic: the
/// next-hop table is complete for every switch pair and loop-free
/// (ValidateNextHopTable holds), and core_switches lists the attachment
/// points in deterministic order (all switches for mesh/torus/ring,
/// leaves for the fat tree).
struct GeneratedTopology {
  TopologyGraph topology;
  NextHopTable table;
  std::vector<SwitchId> core_switches;
};

/// Builds the selected family's switch graph and classical routing
/// table. Deterministic in the spec; throws InvalidModelError on
/// out-of-range parameters.
GeneratedTopology BuildFamilyTopology(const GeneratorSpec& spec);

/// One-line shape label used as the design-name stem, e.g. "mesh5x4",
/// "torus4x4", "ring24", "ftree3x3".
std::string FamilyShapeName(const GeneratorSpec& spec);

/// The complete generated design: BuildFamilyTopology, cores round-robin
/// over the attachment points, the traffic pattern's flow set, and
/// routes expanded from the next-hop table via BuildTableRoutes. The
/// result satisfies Validate() and is named
/// "<shape>_<pattern>[_c<cores_per_switch>]". When \p table_out is
/// non-null it receives the family's next-hop table — the fault
/// pipeline's table-driven detour policy needs it (fault/reconfigure).
NocDesign GenerateStandardDesign(const GeneratorSpec& spec,
                                 NextHopTable* table_out = nullptr);

}  // namespace nocdr::gen
