// Packet workload generation for the wormhole simulator.
//
// Two modes:
//   * kFixedCount — every flow injects a fixed number of packets as fast
//     as flow control allows; the aggressive mode used to provoke
//     deadlocks on cyclic-CDG designs;
//   * kBernoulli  — per-cycle injection probability scaled from the
//     flow's bandwidth demand; the steady-state mode for latency and
//     throughput measurements.
#pragma once

#include <cstdint>
#include <vector>

#include "noc/design.h"
#include "util/rng.h"

namespace nocdr {

enum class InjectionMode {
  kFixedCount,
  kBernoulli,
};

struct TrafficConfig {
  InjectionMode mode = InjectionMode::kFixedCount;
  /// Packets per flow in kFixedCount mode.
  std::uint32_t packets_per_flow = 8;
  /// Flits per packet (head + body + tail).
  std::uint16_t packet_length = 5;
  /// Bernoulli mode: injection probability per cycle for a flow with
  /// bandwidth `reference_bandwidth`; other flows scale linearly.
  double reference_injection_rate = 0.02;
  double reference_bandwidth = 100.0;
  std::uint64_t seed = 1;
};

/// Per-flow packet schedule: for each flow, the cycle at which each
/// packet becomes ready for injection (non-decreasing).
class TrafficSchedule {
 public:
  TrafficSchedule(const NocDesign& design, const TrafficConfig& config,
                  std::uint64_t horizon_cycles);

  /// Number of packets flow \p f wants to inject in total.
  [[nodiscard]] std::uint32_t PacketCount(FlowId f) const;

  /// Cycle at which packet \p seq of flow \p f becomes ready.
  [[nodiscard]] std::uint64_t ReadyAt(FlowId f, std::uint32_t seq) const;

  [[nodiscard]] std::uint64_t TotalPackets() const { return total_; }

  /// Number of flows the schedule was built for.
  [[nodiscard]] std::size_t FlowCount() const { return ready_.size(); }

 private:
  std::vector<std::vector<std::uint64_t>> ready_;  // per flow
  std::uint64_t total_ = 0;
};

}  // namespace nocdr
