// Deterministic discrete-event queue for the event-driven simulator
// engine (SimEngine::kEvent).
//
// A netsim-style binary min-heap of (cycle, kind, id) events. The
// comparison is a *total* order — cycle first, then event kind, then the
// payload id — so the pop sequence of any event multiset is unique
// regardless of insertion order. That property is load-bearing: the
// event engine must stay bit-identical to the cycle-accurate engines no
// matter how the per-cycle handlers happened to enqueue simultaneous
// events, and the seeded heap-order fuzz test (tests/test_sim_engines)
// shuffles insertion orders to prove it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/error.h"

namespace nocdr {

/// What a simulation event announces for its cycle. The engine treats
/// any event as "this cycle needs a visit"; the kind records *why* time
/// had to stop there and fixes the deterministic tie-break among
/// simultaneous events.
enum class EventKind : std::uint8_t {
  /// A flow's next packet becomes ready for injection (id = flow).
  kFlitInjection = 0,
  /// A buffer slot or link freed last cycle; blocked flits may advance.
  kCreditReturn = 1,
  /// A worm's tail ejected; its channel ownerships are released.
  kWormCompletion = 2,
  /// Generic switch-arbitration wake (injection-only activity).
  kArbitrationWake = 3,
};

struct SimEvent {
  std::uint64_t cycle = 0;
  EventKind kind = EventKind::kArbitrationWake;
  /// Kind-specific payload (flow id for kFlitInjection, else 0).
  std::uint32_t id = 0;

  friend bool operator==(const SimEvent&, const SimEvent&) = default;
};

/// Strict total order over events: earliest cycle first, kind and id as
/// deterministic tie-breaks.
[[nodiscard]] constexpr bool EventBefore(const SimEvent& a,
                                         const SimEvent& b) {
  if (a.cycle != b.cycle) {
    return a.cycle < b.cycle;
  }
  if (a.kind != b.kind) {
    return a.kind < b.kind;
  }
  return a.id < b.id;
}

/// Binary min-heap keyed by EventBefore. Hand-rolled rather than
/// std::priority_queue so Top() and the sift order are explicit and the
/// deterministic tie-break contract is testable in isolation.
class EventQueue {
 public:
  [[nodiscard]] bool Empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t Size() const { return heap_.size(); }

  void Clear() { heap_.clear(); }

  /// The earliest event under the total order.
  [[nodiscard]] const SimEvent& Top() const {
    Require(!heap_.empty(), "EventQueue::Top: queue is empty");
    return heap_.front();
  }

  void Push(SimEvent event) {
    heap_.push_back(event);
    SiftUp(heap_.size() - 1);
  }

  /// Removes and returns the earliest event.
  SimEvent PopTop() {
    Require(!heap_.empty(), "EventQueue::PopTop: queue is empty");
    const SimEvent top = heap_.front();
    heap_.front() = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) {
      SiftDown(0);
    }
    return top;
  }

 private:
  void SiftUp(std::size_t i) {
    while (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      if (!EventBefore(heap_[i], heap_[parent])) {
        break;
      }
      std::swap(heap_[i], heap_[parent]);
      i = parent;
    }
  }

  void SiftDown(std::size_t i) {
    const std::size_t n = heap_.size();
    while (true) {
      std::size_t smallest = i;
      const std::size_t left = 2 * i + 1;
      const std::size_t right = 2 * i + 2;
      if (left < n && EventBefore(heap_[left], heap_[smallest])) {
        smallest = left;
      }
      if (right < n && EventBefore(heap_[right], heap_[smallest])) {
        smallest = right;
      }
      if (smallest == i) {
        break;
      }
      std::swap(heap_[i], heap_[smallest]);
      i = smallest;
    }
  }

  std::vector<SimEvent> heap_;
};

}  // namespace nocdr
