#include "sim/simulator.h"

#include <algorithm>
#include <deque>
#include <optional>
#include <queue>

#include "sim/event_queue.h"
#include "sim/transition.h"
#include "util/error.h"

namespace nocdr {

namespace {

/// Internal description of a reconfiguration transition (see
/// sim/transition.h). Null for plain SimulateWorkload runs, whose
/// behavior must stay bit-identical.
struct TransitionSpec {
  const RouteSet* pre_routes = nullptr;
  const std::vector<char>* dead_channels = nullptr;  // may be empty
  std::uint64_t cycle = 0;
  bool midflight = false;
};

/// Runtime state of one channel: its input buffer at the downstream
/// switch and the wormhole ownership.
struct VcState {
  std::deque<Flit> fifo;
  std::optional<PacketKey> owner;
};

/// Injection state of one flow.
struct SourceState {
  std::uint32_t next_packet = 0;   // next schedule entry to inject
  std::uint16_t next_flit = 0;     // 0 = must inject the head
  std::uint64_t head_injected_at = 0;
  /// Route epoch the in-progress packet's head was injected under; body
  /// flits must inherit it so a worm straddling a mid-flight transition
  /// stays on one route.
  std::uint8_t packet_epoch = 0;
};

class Engine {
 public:
  Engine(const NocDesign& design, const SimConfig& config,
         const TransitionSpec* transition = nullptr,
         const TrafficSchedule* schedule = nullptr)
      : design_(design),
        config_(config),
        transition_(transition),
        schedule_(schedule != nullptr
                      ? *schedule
                      : TrafficSchedule(design, config.traffic,
                                        config.max_cycles)),
        vcs_(design.topology.ChannelCount()),
        sources_(design.traffic.FlowCount()) {
    result_.packets_offered = schedule_.TotalPackets();
    result_.flows.resize(design.traffic.FlowCount());
    result_.channel_flits.assign(design.topology.ChannelCount(), 0);
    flow_latency_sum_.assign(design.traffic.FlowCount(), 0);

    link_stamp_.assign(design.topology.LinkCount(), 0);
    popped_stamp_.assign(vcs_.size(), 0);
    claim_stamp_.assign(vcs_.size(), 0);
    slot_stamp_.assign(vcs_.size(), 0);
    free_slots_.assign(vcs_.size(), 0);
    channel_active_.assign(vcs_.size(), 0);
    flow_armed_.assign(sources_.size(), 0);
    for (std::size_t f = 0; f < sources_.size(); ++f) {
      if (schedule_.PacketCount(FlowId(f)) == 0) {
        ++drained_sources_;
      } else if (schedule_.ReadyAt(FlowId(f), 0) == 0) {
        armed_.push_back(static_cast<std::uint32_t>(f));
        flow_armed_[f] = 1;
      } else {
        ParkFlow(static_cast<std::uint32_t>(f),
                 schedule_.ReadyAt(FlowId(f), 0));
      }
    }
  }

  SimResult Run() {
    std::uint64_t last_progress = 0;
    cycle_ = 0;
    while (cycle_ < config_.max_cycles) {
      if (transition_ != nullptr && !epoch_switched_) {
        MaybeTransition();
      }
      const bool moved = Step();
      if (moved) {
        last_progress = cycle_;
      }
      if (result_.packets_delivered + packets_dropped_ ==
              result_.packets_offered &&
          AllSourcesDrained()) {
        ++cycle_;
        break;
      }
      // Early exact detection: a cycle of hard waits is permanent.
      if (cycle_ % config_.deadlock_check_interval == 0 && FlitsInFlight() &&
          DetectCircularWait()) {
        result_.deadlocked = true;
        break;
      }
      // Watchdog: arbitration is work-conserving, so a total stall with
      // flits in flight means no flit is movable — every buffer front is
      // hard-blocked, which in a finite network implies a circular wait
      // even when it hides behind empty-but-owned channels that the
      // channel-level detector cannot chain through.
      if (cycle_ - last_progress >= config_.stall_threshold &&
          FlitsInFlight()) {
        result_.deadlocked = true;
        DetectCircularWait();  // best effort: attach a certificate
        break;
      }
      if (EventDriven() && moved) {
        // The cycle changed state, so the very next cycle may act on the
        // freed credits / released ownerships / fresh flits; announce it
        // with the most specific event kind the cycle produced.
        EventKind kind = EventKind::kArbitrationWake;
        if (tail_ejected_) {
          kind = EventKind::kWormCompletion;
        } else if (!ejects_.empty() || !moves_.empty()) {
          kind = EventKind::kCreditReturn;
        }
        events_.Push({cycle_ + 1, kind, 0});
      }
      if (EventDriven() && !moved) {
        // Nothing moved, so the network state is a fixed point until an
        // external event: jump heap-to-heap instead of grinding through
        // idle cycles. NextWakeCycle never skips a cycle the
        // cycle-accurate engines could have acted on.
        cycle_ = NextWakeCycle(last_progress);
      } else {
        ++cycle_;
      }
    }
    result_.cycles = cycle_;
    for (const VcState& vc : vcs_) {
      result_.stuck_flits += vc.fifo.size();
    }
    if (result_.flits_delivered > 0 && result_.packets_delivered > 0) {
      result_.avg_packet_latency =
          static_cast<double>(latency_sum_) /
          static_cast<double>(result_.packets_delivered);
    }
    for (std::size_t f = 0; f < result_.flows.size(); ++f) {
      FlowStats& stats = result_.flows[f];
      if (stats.packets_delivered > 0) {
        stats.avg_latency = static_cast<double>(flow_latency_sum_[f]) /
                            static_cast<double>(stats.packets_delivered);
      }
    }
    return result_;
  }

 private:
  /// True for the engines that maintain the active/armed worklists (the
  /// event engine is the worklist step machinery under an event-driven
  /// clock); false only for the full-scan reference.
  [[nodiscard]] bool Worklist() const {
    return config_.engine != SimEngine::kFullScan;
  }

  [[nodiscard]] bool EventDriven() const {
    return config_.engine == SimEngine::kEvent;
  }

  /// Parks flow \p f until \p ready: an injection event for the event
  /// engine, a ready-heap entry for the worklist engine. (The full-scan
  /// engine re-polls every flow each cycle and ignores both, but parking
  /// is harmless and keeps the constructor engine-agnostic.)
  void ParkFlow(std::uint32_t f, std::uint64_t ready) {
    if (EventDriven()) {
      events_.Push({ready, EventKind::kFlitInjection, f});
    } else {
      ready_heap_.push({ready, f});
    }
  }

  /// Earliest future cycle at which anything observable can happen,
  /// given that the just-simulated cycle moved nothing (so the network
  /// state is frozen until then). Candidates: the next queued event
  /// (flit injection or wake), the transition window (which must tick
  /// cycle-by-cycle to count drain cycles exactly), the next periodic
  /// deadlock-check boundary, and the stall watchdog's expiry. Clamped
  /// to max_cycles, which ends the run just like the cycle-accurate
  /// engines spinning out their budget.
  [[nodiscard]] std::uint64_t NextWakeCycle(std::uint64_t last_progress) {
    while (!events_.Empty() && events_.Top().cycle <= cycle_) {
      events_.PopTop();  // already handled by this cycle's step
    }
    std::uint64_t next = config_.max_cycles;
    if (transition_ != nullptr && !epoch_switched_) {
      if (cycle_ + 1 >= transition_->cycle) {
        return cycle_ + 1;  // inside the pre-switch window: tick
      }
      next = std::min(next, transition_->cycle);
    }
    if (!events_.Empty()) {
      next = std::min(next, events_.Top().cycle);
    }
    if (FlitsInFlight()) {
      const std::uint64_t interval = config_.deadlock_check_interval;
      next = std::min(next, (cycle_ / interval + 1) * interval);
      next = std::min(next, last_progress + config_.stall_threshold);
    }
    return std::max(next, cycle_ + 1);
  }

  [[nodiscard]] bool FlitsInFlight() const {
    if (Worklist()) {
      return flits_in_network_ > 0;
    }
    for (const VcState& vc : vcs_) {
      if (!vc.fifo.empty()) {
        return true;
      }
    }
    return false;
  }

  [[nodiscard]] bool AllSourcesDrained() const {
    if (Worklist()) {
      return drained_sources_ == sources_.size();
    }
    for (std::size_t i = 0; i < sources_.size(); ++i) {
      if (sources_[i].next_packet < schedule_.PacketCount(FlowId(i))) {
        return false;
      }
    }
    return true;
  }

  /// Route a flit is bound to: packets injected before the transition
  /// follow the pre-fault routes, everything else the design's routes.
  [[nodiscard]] const Route& RouteFor(const Flit& flit) const {
    if (transition_ != nullptr && flit.route_epoch == 0) {
      return transition_->pre_routes->RouteOf(flit.packet.flow);
    }
    return design_.routes.RouteOf(flit.packet.flow);
  }

  [[nodiscard]] bool NoSourceMidPacket() const {
    for (const SourceState& src : sources_) {
      if (src.next_flit != 0) {
        return false;
      }
    }
    return true;
  }

  /// Runs once per cycle from the transition cycle until the route
  /// generations are swapped. Mid-flight: destroy the packets the fault
  /// caught, swap immediately. Drain-and-restart: suspend new packets,
  /// swap once the network is empty.
  void MaybeTransition() {
    if (cycle_ < transition_->cycle) {
      return;
    }
    if (transition_->midflight) {
      KillDeadPackets();
      epoch_switched_ = true;
      return;
    }
    inject_suspended_ = true;
    if (!FlitsInFlight() && NoSourceMidPacket()) {
      inject_suspended_ = false;
      epoch_switched_ = true;
    } else {
      ++drain_cycles_;
    }
  }

  /// Destroys every packet that occupies a dead channel or whose
  /// remaining route needs one: flits vanish from the buffers, channel
  /// ownerships are released, mid-worm sources skip the rest of the
  /// packet. The survivors keep flowing on their pre-fault routes.
  void KillDeadPackets() {
    const std::vector<char>* dead = transition_->dead_channels;
    if (dead == nullptr || dead->empty()) {
      return;
    }
    // A flit in flight sits on channel route[hop], so scanning the route
    // from `hop` covers both "on a dead channel" and "needs one later".
    std::vector<PacketKey> doomed;
    for (const VcState& vc : vcs_) {
      for (const Flit& flit : vc.fifo) {
        const Route& route = RouteFor(flit);
        for (std::size_t h = flit.hop; h < route.size(); ++h) {
          if ((*dead)[route[h].value()]) {
            doomed.push_back(flit.packet);
            break;
          }
        }
      }
    }
    for (std::size_t f = 0; f < sources_.size(); ++f) {
      const SourceState& src = sources_[f];
      if (src.next_flit == 0) {
        continue;  // not mid-worm; future packets take the new routes
      }
      const Route& route = transition_->pre_routes->RouteOf(FlowId(f));
      for (const ChannelId c : route) {
        if ((*dead)[c.value()]) {
          doomed.push_back(PacketKey{FlowId(f), src.next_packet});
          break;
        }
      }
    }
    if (doomed.empty()) {
      return;
    }
    const auto less = [](const PacketKey& a, const PacketKey& b) {
      if (a.flow != b.flow) {
        return a.flow < b.flow;
      }
      return a.sequence < b.sequence;
    };
    std::sort(doomed.begin(), doomed.end(), less);
    doomed.erase(std::unique(doomed.begin(), doomed.end()), doomed.end());
    const auto is_doomed = [&](const PacketKey& key) {
      return std::binary_search(doomed.begin(), doomed.end(), key, less);
    };
    for (VcState& vc : vcs_) {
      const std::size_t before = vc.fifo.size();
      std::erase_if(vc.fifo, [&](const Flit& flit) {
        return is_doomed(flit.packet);
      });
      flits_in_network_ -= before - vc.fifo.size();
      if (vc.owner.has_value() && is_doomed(*vc.owner)) {
        vc.owner.reset();
      }
    }
    for (std::size_t f = 0; f < sources_.size(); ++f) {
      SourceState& src = sources_[f];
      if (src.next_flit != 0 &&
          is_doomed(PacketKey{FlowId(f), src.next_packet})) {
        src.next_flit = 0;
        ++src.next_packet;
        NotePacketInjected(FlowId(f));
      }
    }
    packets_dropped_ += doomed.size();
    if (Worklist()) {
      // One-off full rebuild of the active-channel list; cheaper than
      // threading the purge through the touched_ bookkeeping.
      active_.clear();
      for (std::size_t c = 0; c < vcs_.size(); ++c) {
        channel_active_[c] = vcs_[c].fifo.empty() ? 0 : 1;
        if (channel_active_[c]) {
          active_.push_back(static_cast<std::uint32_t>(c));
        }
      }
    }
  }

  /// One simulated cycle; returns true when at least one flit moved.
  ///
  /// Every engine visits channels in ascending id order starting at
  /// (cycle mod channel count) with wraparound, then flows likewise —
  /// the rotating round-robin. Channels with empty buffers and drained
  /// flows are no-ops under that scan, so the worklist engine skipping
  /// them is semantics-preserving, and the event engine additionally
  /// skipping whole cycles in which nothing could move (see
  /// NextWakeCycle) preserves the cycle numbering those pivots depend
  /// on. All three engines therefore stay bit-identical.
  bool Step() {
    stamp_ = cycle_ + 1;  // distinct from the 0 the scratch stamps start at
    moves_.clear();
    ejects_.clear();
    injections_.clear();
    touched_.clear();
    tail_ejected_ = false;

    bool moved = false;
    if (config_.inject_first) {
      moved |= PlanInjections();
      moved |= PlanForwards();
    } else {
      moved |= PlanForwards();
      moved |= PlanInjections();
    }
    Commit();
    if (Worklist()) {
      UpdateWorklists();
    }
    return moved;
  }

  /// Plans every possible channel traversal this cycle, in rotating
  /// round-robin order over channel ids.
  bool PlanForwards() {
    bool moved = false;
    if (Worklist()) {
      if (!active_.empty()) {
        const std::uint32_t pivot =
            static_cast<std::uint32_t>(cycle_ % vcs_.size());
        const auto split =
            std::lower_bound(active_.begin(), active_.end(), pivot);
        for (auto it = split; it != active_.end(); ++it) {
          moved |= TryForwardFrom(ChannelId(*it));
        }
        for (auto it = active_.begin(); it != split; ++it) {
          moved |= TryForwardFrom(ChannelId(*it));
        }
      }
    } else {
      const std::size_t n = vcs_.size();
      for (std::size_t k = 0; k < n; ++k) {
        const std::size_t c = (k + cycle_) % n;
        if (TryForwardFrom(ChannelId(c))) {
          moved = true;
        }
      }
    }
    return moved;
  }

  /// Plans every possible injection this cycle, in rotating round-robin
  /// order over flow ids.
  bool PlanInjections() {
    bool moved = false;
    if (Worklist()) {
      // Arm the flows whose next packet became ready by now. Equal ready
      // times pop in unspecified order (heap) or tie-break order (event
      // queue), but the batch is sorted before merging, so the armed
      // list is schedule-deterministic either way.
      newly_armed_.clear();
      if (EventDriven()) {
        // Drain every event due this cycle: injection events arm their
        // flow; credit-return / worm-completion / arbitration wakes
        // exist to pull the clock here and are consumed by the step
        // itself.
        while (!events_.Empty() && events_.Top().cycle <= cycle_) {
          const SimEvent event = events_.PopTop();
          if (event.kind == EventKind::kFlitInjection) {
            newly_armed_.push_back(event.id);
            flow_armed_[event.id] = 1;
          }
        }
      } else {
        while (!ready_heap_.empty() && ready_heap_.top().first <= cycle_) {
          newly_armed_.push_back(ready_heap_.top().second);
          flow_armed_[ready_heap_.top().second] = 1;
          ready_heap_.pop();
        }
      }
      if (!newly_armed_.empty()) {
        std::sort(newly_armed_.begin(), newly_armed_.end());
        const auto mid = static_cast<std::ptrdiff_t>(armed_.size());
        armed_.insert(armed_.end(), newly_armed_.begin(),
                      newly_armed_.end());
        std::inplace_merge(armed_.begin(), armed_.begin() + mid,
                           armed_.end());
      }
      if (!armed_.empty()) {
        const std::uint32_t pivot =
            static_cast<std::uint32_t>(cycle_ % sources_.size());
        const auto split =
            std::lower_bound(armed_.begin(), armed_.end(), pivot);
        for (auto it = split; it != armed_.end(); ++it) {
          moved |= TryInject(FlowId(*it));
        }
        for (auto it = armed_.begin(); it != split; ++it) {
          moved |= TryInject(FlowId(*it));
        }
      }
    } else {
      const std::size_t flows = sources_.size();
      for (std::size_t k = 0; k < flows; ++k) {
        const std::size_t f = (k + cycle_) % flows;
        if (TryInject(FlowId(f))) {
          moved = true;
        }
      }
    }
    return moved;
  }

  /// Plans the move of the head flit of channel \p c, if possible.
  bool TryForwardFrom(ChannelId c) {
    VcState& vc = vcs_[c.value()];
    if (vc.fifo.empty() || popped_stamp_[c.value()] == stamp_) {
      return false;
    }
    const Flit& flit = vc.fifo.front();
    const Route& route = RouteFor(flit);
    if (flit.hop + 1u == route.size()) {
      // Last channel: eject into the destination NI (ideal sink).
      ejects_.push_back(c);
      popped_stamp_[c.value()] = stamp_;
      return true;
    }
    const ChannelId t = route[flit.hop + 1];
    if (!ClaimTransfer(t, flit)) {
      return false;
    }
    moves_.push_back({c, t});
    popped_stamp_[c.value()] = stamp_;
    return true;
  }

  /// Plans injecting the next flit of flow \p f, if one is ready.
  bool TryInject(FlowId f) {
    SourceState& src = sources_[f.value()];
    if (src.next_packet >= schedule_.PacketCount(f)) {
      return false;
    }
    if (schedule_.ReadyAt(f, src.next_packet) > cycle_) {
      return false;
    }
    // A drain suspends new packets only; a worm already under way keeps
    // injecting so it can leave the network whole.
    if (inject_suspended_ && src.next_flit == 0) {
      return false;
    }
    if (src.next_flit == 0) {
      src.packet_epoch =
          (transition_ != nullptr && epoch_switched_) ? 1 : 0;
    }
    const Route& route = src.packet_epoch == 0 && transition_ != nullptr
                             ? transition_->pre_routes->RouteOf(f)
                             : design_.routes.RouteOf(f);
    if (route.empty()) {
      // Core-local flow: delivered through the switch's local crossbar
      // turnaround without using any network channel.
      ++src.next_packet;
      ++result_.packets_injected;
      ++result_.packets_delivered;
      result_.flits_delivered += config_.traffic.packet_length;
      latency_sum_ += 1;
      result_.max_packet_latency = std::max<std::uint64_t>(
          result_.max_packet_latency, 1);
      FlowStats& stats = result_.flows[f.value()];
      ++stats.packets_delivered;
      stats.max_latency = std::max<std::uint64_t>(stats.max_latency, 1);
      flow_latency_sum_[f.value()] += 1;
      NotePacketInjected(f);
      return true;
    }
    Flit flit;
    flit.packet = PacketKey{f, src.next_packet};
    flit.index = src.next_flit;
    flit.is_head = src.next_flit == 0;
    flit.is_tail = src.next_flit + 1u == config_.traffic.packet_length;
    flit.hop = 0;
    flit.injected_at = flit.is_head ? cycle_ : src.head_injected_at;
    flit.route_epoch = src.packet_epoch;
    if (!ClaimTransfer(route.front(), flit)) {
      return false;
    }
    injections_.push_back(flit);
    if (flit.is_head) {
      src.head_injected_at = cycle_;
      ++result_.packets_injected;
    }
    if (flit.is_tail) {
      ++src.next_packet;
      src.next_flit = 0;
      NotePacketInjected(f);
    } else {
      ++src.next_flit;
    }
    return true;
  }

  /// Bookkeeping after a packet finished injecting (tail planned, or a
  /// core-local delivery): the flow either drained, stays armed (next
  /// packet already ready), or parks in the ready heap until its next
  /// packet's ready cycle.
  void NotePacketInjected(FlowId f) {
    const SourceState& src = sources_[f.value()];
    if (src.next_packet >= schedule_.PacketCount(f)) {
      ++drained_sources_;
      flow_armed_[f.value()] = 0;
      disarm_dirty_ = true;
      return;
    }
    if (Worklist()) {
      const std::uint64_t ready = schedule_.ReadyAt(f, src.next_packet);
      if (ready > cycle_) {
        flow_armed_[f.value()] = 0;
        disarm_dirty_ = true;
        ParkFlow(f.value(), ready);
      }
    }
  }

  /// Claimable free slots of channel \p t this cycle, lazily initialized
  /// from the buffer occupancy at cycle start (buffers only change in
  /// Commit, after all planning).
  int& FreeSlots(ChannelId t) {
    if (slot_stamp_[t.value()] != stamp_) {
      slot_stamp_[t.value()] = stamp_;
      free_slots_[t.value()] =
          static_cast<int>(config_.buffer_depth) -
          static_cast<int>(vcs_[t.value()].fifo.size());
    }
    return free_slots_[t.value()];
  }

  /// Claims buffer space, link bandwidth and wormhole ownership for
  /// moving \p flit into channel \p t. Returns false (claiming nothing)
  /// if any resource is unavailable this cycle.
  bool ClaimTransfer(ChannelId t, const Flit& flit) {
    const LinkId link = design_.topology.ChannelAt(t).link;
    if (link_stamp_[link.value()] == stamp_) {
      return false;
    }
    if (FreeSlots(t) <= 0) {
      return false;
    }
    VcState& target = vcs_[t.value()];
    if (target.owner.has_value()) {
      if (*target.owner != flit.packet) {
        return false;  // channel held by another worm
      }
    } else {
      // Only a head flit may allocate a free channel, and only one head
      // per channel per cycle.
      if (!flit.is_head || claim_stamp_[t.value()] == stamp_) {
        return false;
      }
      claim_stamp_[t.value()] = stamp_;
    }
    link_stamp_[link.value()] = stamp_;
    --FreeSlots(t);
    return true;
  }

  /// Applies the planned ejections, forwards and injections.
  void Commit() {
    const bool track = Worklist();
    for (ChannelId c : ejects_) {
      VcState& vc = vcs_[c.value()];
      Flit flit = vc.fifo.front();
      vc.fifo.pop_front();
      --flits_in_network_;
      if (track) {
        touched_.push_back(c.value());
      }
      ++result_.flits_delivered;
      ++result_.channel_flits[c.value()];
      if (flit.is_tail) {
        vc.owner.reset();
        tail_ejected_ = true;
        ++result_.packets_delivered;
        const std::uint64_t latency = cycle_ - flit.injected_at + 1;
        latency_sum_ += latency;
        result_.max_packet_latency =
            std::max(result_.max_packet_latency, latency);
        FlowStats& stats = result_.flows[flit.packet.flow.value()];
        ++stats.packets_delivered;
        stats.max_latency = std::max(stats.max_latency, latency);
        flow_latency_sum_[flit.packet.flow.value()] += latency;
      }
    }
    for (const auto& [from, to] : moves_) {
      VcState& src = vcs_[from.value()];
      VcState& dst = vcs_[to.value()];
      Flit flit = src.fifo.front();
      src.fifo.pop_front();
      if (track) {
        touched_.push_back(from.value());
        touched_.push_back(to.value());
      }
      ++result_.channel_flits[from.value()];
      if (flit.is_head) {
        dst.owner = flit.packet;
      }
      if (flit.is_tail) {
        src.owner.reset();
      }
      ++flit.hop;
      dst.fifo.push_back(flit);
    }
    for (const Flit& flit : injections_) {
      const Route& route = RouteFor(flit);
      VcState& dst = vcs_[route.front().value()];
      if (flit.is_head) {
        dst.owner = flit.packet;
      }
      dst.fifo.push_back(flit);
      ++flits_in_network_;
      if (track) {
        touched_.push_back(route.front().value());
      }
    }
  }

  /// Re-syncs the active-channel and live-flow worklists with the state
  /// changes Commit just applied. O(touched + active) and only when
  /// something changed.
  void UpdateWorklists() {
    if (disarm_dirty_) {
      armed_.erase(std::remove_if(armed_.begin(), armed_.end(),
                                  [&](std::uint32_t f) {
                                    return !flow_armed_[f];
                                  }),
                   armed_.end());
      disarm_dirty_ = false;
    }
    if (touched_.empty()) {
      return;
    }
    bool removed = false;
    newly_active_.clear();
    for (const std::uint32_t c : touched_) {
      const bool now = !vcs_[c].fifo.empty();
      if (now == static_cast<bool>(channel_active_[c])) {
        continue;
      }
      channel_active_[c] = now ? 1 : 0;
      if (now) {
        newly_active_.push_back(c);
      } else {
        removed = true;
      }
    }
    if (removed) {
      active_.erase(
          std::remove_if(active_.begin(), active_.end(),
                         [&](std::uint32_t c) { return !channel_active_[c]; }),
          active_.end());
    }
    if (!newly_active_.empty()) {
      std::sort(newly_active_.begin(), newly_active_.end());
      const auto mid = static_cast<std::ptrdiff_t>(active_.size());
      active_.insert(active_.end(), newly_active_.begin(),
                     newly_active_.end());
      std::inplace_merge(active_.begin(), active_.begin() + mid,
                         active_.end());
    }
  }

  /// Exact circular-wait detection. Build the wait-for graph restricted
  /// to *hard* waits: the head flit of channel c needs channel t, and t
  /// is either owned by a different packet or has no free slot. A
  /// directed cycle of hard waits can never resolve (wormhole channels
  /// are non-preemptible), so it is a deadlock certificate.
  bool DetectCircularWait() {
    const std::size_t n = vcs_.size();
    std::vector<std::int32_t> waits_on(n, -1);
    const auto consider = [&](std::size_t c) {
      const VcState& vc = vcs_[c];
      if (vc.fifo.empty()) {
        return;
      }
      const Flit& flit = vc.fifo.front();
      const Route& route = RouteFor(flit);
      if (flit.hop + 1u == route.size()) {
        return;  // ejection never blocks
      }
      const ChannelId t = route[flit.hop + 1];
      const VcState& target = vcs_[t.value()];
      const bool foreign_owner =
          target.owner.has_value() && *target.owner != flit.packet;
      const bool full = target.fifo.size() >= config_.buffer_depth;
      if (foreign_owner || full) {
        waits_on[c] = static_cast<std::int32_t>(t.value());
      }
    };
    if (Worklist()) {
      for (const std::uint32_t c : active_) {
        consider(c);
      }
    } else {
      for (std::size_t c = 0; c < n; ++c) {
        consider(c);
      }
    }
    // Functional graph (out-degree <= 1): cycle detection by pointer
    // chasing with a visit stamp.
    std::vector<std::uint32_t> stamp(n, 0);
    for (std::size_t start = 0; start < n; ++start) {
      if (waits_on[start] < 0 || stamp[start] != 0) {
        continue;
      }
      std::size_t cur = start;
      const std::uint32_t mark = static_cast<std::uint32_t>(start) + 1;
      while (waits_on[cur] >= 0 && stamp[cur] == 0) {
        stamp[cur] = mark;
        cur = static_cast<std::size_t>(waits_on[cur]);
      }
      if (waits_on[cur] >= 0 && stamp[cur] == mark) {
        // Found a cycle through `cur`; record it for the report.
        std::size_t walker = cur;
        do {
          result_.deadlock_cycle.push_back(ChannelId(walker));
          walker = static_cast<std::size_t>(waits_on[walker]);
        } while (walker != cur);
        return true;
      }
    }
    return false;
  }

  const NocDesign& design_;
  SimConfig config_;
  const TransitionSpec* transition_;
  TrafficSchedule schedule_;
  std::vector<VcState> vcs_;
  std::vector<SourceState> sources_;
  SimResult result_;
  std::uint64_t cycle_ = 0;
  std::uint64_t latency_sum_ = 0;
  std::vector<std::uint64_t> flow_latency_sum_;

  // Per-cycle planning scratch, epoch-stamped so no O(channels) clearing
  // is needed between cycles (stamp == cycle + 1 means "set this cycle").
  std::uint64_t stamp_ = 0;
  std::vector<std::uint64_t> link_stamp_;
  std::vector<std::uint64_t> popped_stamp_;
  std::vector<std::uint64_t> claim_stamp_;
  std::vector<std::uint64_t> slot_stamp_;
  std::vector<int> free_slots_;
  std::vector<std::pair<ChannelId, ChannelId>> moves_;
  std::vector<ChannelId> ejects_;
  std::vector<Flit> injections_;

  // Worklist-engine state. `active_` is the sorted list of channels with
  // a non-empty buffer (mirrored by channel_active_); `armed_` the
  // sorted list of flows with a ready packet pending injection
  // (mirrored by flow_armed_). Flows whose next packet lies in the
  // future park in ready_heap_, a min-heap on the ready cycle, so
  // lightly loaded flows cost nothing per cycle.
  std::vector<std::uint32_t> active_;
  std::vector<char> channel_active_;
  std::vector<std::uint32_t> armed_;
  std::vector<char> flow_armed_;
  std::priority_queue<std::pair<std::uint64_t, std::uint32_t>,
                      std::vector<std::pair<std::uint64_t, std::uint32_t>>,
                      std::greater<>>
      ready_heap_;
  std::vector<std::uint32_t> touched_;       // channels mutated in Commit
  std::vector<std::uint32_t> newly_active_;  // scratch for UpdateWorklists
  std::vector<std::uint32_t> newly_armed_;   // scratch for PlanInjections
  std::uint64_t flits_in_network_ = 0;
  std::size_t drained_sources_ = 0;
  bool disarm_dirty_ = false;

  // Event-engine state: the discrete-event queue (flit-injection events
  // replace the ready heap; wake events record why time stopped at a
  // cycle) and the per-cycle worm-completion marker that picks the wake
  // kind.
  EventQueue events_;
  bool tail_ejected_ = false;

  // Transition-run state; inert for plain SimulateWorkload runs.
  bool epoch_switched_ = false;
  bool inject_suspended_ = false;
  std::uint64_t packets_dropped_ = 0;
  std::uint64_t drain_cycles_ = 0;

 public:
  [[nodiscard]] std::uint64_t packets_dropped() const {
    return packets_dropped_;
  }
  [[nodiscard]] std::uint64_t drain_cycles() const { return drain_cycles_; }
};

}  // namespace

std::vector<SimEngine> AllEngines() {
  return {SimEngine::kFullScan, SimEngine::kWorklist, SimEngine::kEvent};
}

std::string EngineName(SimEngine engine) {
  switch (engine) {
    case SimEngine::kWorklist:
      return "worklist";
    case SimEngine::kFullScan:
      return "fullscan";
    case SimEngine::kEvent:
      return "event";
  }
  return "unknown";
}

std::optional<SimEngine> ParseEngine(const std::string& name) {
  for (const SimEngine engine : AllEngines()) {
    if (EngineName(engine) == name) {
      return engine;
    }
  }
  return std::nullopt;
}

SimResult SimulateWorkload(const NocDesign& design, const SimConfig& config) {
  Require(config.traffic.packet_length >= 1,
          "SimulateWorkload: packets need at least one flit");
  Require(config.buffer_depth >= 1,
          "SimulateWorkload: buffers need at least one slot");
  Engine engine(design, config);
  return engine.Run();
}

SimResult SimulateWorkload(const NocDesign& design, const SimConfig& config,
                           const TrafficSchedule& schedule) {
  Require(config.traffic.packet_length >= 1,
          "SimulateWorkload: packets need at least one flit");
  Require(config.buffer_depth >= 1,
          "SimulateWorkload: buffers need at least one slot");
  Require(schedule.FlowCount() == design.traffic.FlowCount(),
          "SimulateWorkload: schedule not sized for the design's flows");
  Engine engine(design, config, nullptr, &schedule);
  return engine.Run();
}

TransitionResult SimulateTransition(const NocDesign& post_design,
                                    const RouteSet& pre_routes,
                                    const std::vector<char>& dead_channels,
                                    const TransitionConfig& config) {
  Require(config.sim.traffic.packet_length >= 1,
          "SimulateTransition: packets need at least one flit");
  Require(config.sim.buffer_depth >= 1,
          "SimulateTransition: buffers need at least one slot");
  Require(pre_routes.FlowCount() == post_design.traffic.FlowCount(),
          "SimulateTransition: pre-fault routes not sized for the design");
  Require(dead_channels.empty() ||
              dead_channels.size() == post_design.topology.ChannelCount(),
          "SimulateTransition: dead-channel mask not sized for the design");

  TransitionSpec spec;
  spec.pre_routes = &pre_routes;
  spec.dead_channels = &dead_channels;
  spec.cycle = config.transition_cycle;
  spec.midflight = config.policy == TransitionPolicy::kMidFlight;

  Engine engine(post_design, config.sim, &spec);
  TransitionResult result;
  result.sim = engine.Run();
  result.packets_dropped = engine.packets_dropped();
  result.drain_cycles = engine.drain_cycles();
  return result;
}

}  // namespace nocdr
