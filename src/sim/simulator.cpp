#include "sim/simulator.h"

#include <algorithm>
#include <deque>
#include <optional>

#include "util/error.h"

namespace nocdr {

namespace {

/// Runtime state of one channel: its input buffer at the downstream
/// switch and the wormhole ownership.
struct VcState {
  std::deque<Flit> fifo;
  std::optional<PacketKey> owner;
};

/// Injection state of one flow.
struct SourceState {
  std::uint32_t next_packet = 0;   // next schedule entry to inject
  std::uint16_t next_flit = 0;     // 0 = must inject the head
  std::uint64_t head_injected_at = 0;
};

class Engine {
 public:
  Engine(const NocDesign& design, const SimConfig& config)
      : design_(design),
        config_(config),
        schedule_(design, config.traffic, config.max_cycles),
        vcs_(design.topology.ChannelCount()),
        sources_(design.traffic.FlowCount()) {
    result_.packets_offered = schedule_.TotalPackets();
    result_.flows.resize(design.traffic.FlowCount());
    result_.channel_flits.assign(design.topology.ChannelCount(), 0);
    flow_latency_sum_.assign(design.traffic.FlowCount(), 0);
  }

  SimResult Run() {
    std::uint64_t last_progress = 0;
    for (cycle_ = 0; cycle_ < config_.max_cycles; ++cycle_) {
      const bool moved = Step();
      if (moved) {
        last_progress = cycle_;
      }
      if (result_.packets_delivered == result_.packets_offered &&
          AllSourcesDrained()) {
        ++cycle_;
        break;
      }
      // Early exact detection: a cycle of hard waits is permanent.
      if (cycle_ % config_.deadlock_check_interval == 0 && FlitsInFlight() &&
          DetectCircularWait()) {
        result_.deadlocked = true;
        break;
      }
      // Watchdog: arbitration is work-conserving, so a total stall with
      // flits in flight means no flit is movable — every buffer front is
      // hard-blocked, which in a finite network implies a circular wait
      // even when it hides behind empty-but-owned channels that the
      // channel-level detector cannot chain through.
      if (cycle_ - last_progress >= config_.stall_threshold &&
          FlitsInFlight()) {
        result_.deadlocked = true;
        DetectCircularWait();  // best effort: attach a certificate
        break;
      }
    }
    result_.cycles = cycle_;
    for (const VcState& vc : vcs_) {
      result_.stuck_flits += vc.fifo.size();
    }
    if (result_.flits_delivered > 0 && result_.packets_delivered > 0) {
      result_.avg_packet_latency =
          static_cast<double>(latency_sum_) /
          static_cast<double>(result_.packets_delivered);
    }
    for (std::size_t f = 0; f < result_.flows.size(); ++f) {
      FlowStats& stats = result_.flows[f];
      if (stats.packets_delivered > 0) {
        stats.avg_latency = static_cast<double>(flow_latency_sum_[f]) /
                            static_cast<double>(stats.packets_delivered);
      }
    }
    return result_;
  }

 private:
  [[nodiscard]] bool FlitsInFlight() const {
    for (const VcState& vc : vcs_) {
      if (!vc.fifo.empty()) {
        return true;
      }
    }
    return false;
  }

  [[nodiscard]] bool AllSourcesDrained() const {
    for (std::size_t i = 0; i < sources_.size(); ++i) {
      if (sources_[i].next_packet < schedule_.PacketCount(FlowId(i))) {
        return false;
      }
    }
    return true;
  }

  /// One simulated cycle; returns true when at least one flit moved.
  bool Step() {
    link_used_.assign(design_.topology.LinkCount(), false);
    popped_.assign(vcs_.size(), false);
    // Claimable free slots per channel at cycle start.
    free_slots_.resize(vcs_.size());
    for (std::size_t c = 0; c < vcs_.size(); ++c) {
      free_slots_[c] =
          static_cast<int>(config_.buffer_depth) -
          static_cast<int>(vcs_[c].fifo.size());
    }
    claimed_by_head_.assign(vcs_.size(), false);
    moves_.clear();
    ejects_.clear();
    injections_.clear();

    bool moved = false;
    // Channel traversals first, in rotating order.
    const std::size_t n = vcs_.size();
    for (std::size_t k = 0; k < n; ++k) {
      const std::size_t c = (k + cycle_) % n;
      if (TryForwardFrom(ChannelId(c))) {
        moved = true;
      }
    }
    // Injections after the in-network traffic.
    const std::size_t flows = sources_.size();
    for (std::size_t k = 0; k < flows; ++k) {
      const std::size_t f = (k + cycle_) % flows;
      if (TryInject(FlowId(f))) {
        moved = true;
      }
    }
    Commit();
    return moved;
  }

  /// Plans the move of the head flit of channel \p c, if possible.
  bool TryForwardFrom(ChannelId c) {
    VcState& vc = vcs_[c.value()];
    if (vc.fifo.empty() || popped_[c.value()]) {
      return false;
    }
    const Flit& flit = vc.fifo.front();
    const Route& route = design_.routes.RouteOf(flit.packet.flow);
    if (flit.hop + 1u == route.size()) {
      // Last channel: eject into the destination NI (ideal sink).
      ejects_.push_back(c);
      popped_[c.value()] = true;
      return true;
    }
    const ChannelId t = route[flit.hop + 1];
    if (!ClaimTransfer(t, flit)) {
      return false;
    }
    moves_.push_back({c, t});
    popped_[c.value()] = true;
    return true;
  }

  /// Plans injecting the next flit of flow \p f, if one is ready.
  bool TryInject(FlowId f) {
    SourceState& src = sources_[f.value()];
    if (src.next_packet >= schedule_.PacketCount(f)) {
      return false;
    }
    if (schedule_.ReadyAt(f, src.next_packet) > cycle_) {
      return false;
    }
    const Route& route = design_.routes.RouteOf(f);
    if (route.empty()) {
      // Core-local flow: delivered through the switch's local crossbar
      // turnaround without using any network channel.
      ++src.next_packet;
      ++result_.packets_injected;
      ++result_.packets_delivered;
      result_.flits_delivered += config_.traffic.packet_length;
      latency_sum_ += 1;
      result_.max_packet_latency = std::max<std::uint64_t>(
          result_.max_packet_latency, 1);
      FlowStats& stats = result_.flows[f.value()];
      ++stats.packets_delivered;
      stats.max_latency = std::max<std::uint64_t>(stats.max_latency, 1);
      flow_latency_sum_[f.value()] += 1;
      return true;
    }
    Flit flit;
    flit.packet = PacketKey{f, src.next_packet};
    flit.index = src.next_flit;
    flit.is_head = src.next_flit == 0;
    flit.is_tail = src.next_flit + 1u == config_.traffic.packet_length;
    flit.hop = 0;
    flit.injected_at = flit.is_head ? cycle_ : src.head_injected_at;
    if (!ClaimTransfer(route.front(), flit)) {
      return false;
    }
    injections_.push_back(flit);
    if (flit.is_head) {
      src.head_injected_at = cycle_;
      ++result_.packets_injected;
    }
    if (flit.is_tail) {
      ++src.next_packet;
      src.next_flit = 0;
    } else {
      ++src.next_flit;
    }
    return true;
  }

  /// Claims buffer space, link bandwidth and wormhole ownership for
  /// moving \p flit into channel \p t. Returns false (claiming nothing)
  /// if any resource is unavailable this cycle.
  bool ClaimTransfer(ChannelId t, const Flit& flit) {
    const LinkId link = design_.topology.ChannelAt(t).link;
    if (link_used_[link.value()]) {
      return false;
    }
    if (free_slots_[t.value()] <= 0) {
      return false;
    }
    VcState& target = vcs_[t.value()];
    if (target.owner.has_value()) {
      if (*target.owner != flit.packet) {
        return false;  // channel held by another worm
      }
    } else {
      // Only a head flit may allocate a free channel, and only one head
      // per channel per cycle.
      if (!flit.is_head || claimed_by_head_[t.value()]) {
        return false;
      }
      claimed_by_head_[t.value()] = true;
    }
    link_used_[link.value()] = true;
    --free_slots_[t.value()];
    return true;
  }

  /// Applies the planned ejections, forwards and injections.
  void Commit() {
    for (ChannelId c : ejects_) {
      VcState& vc = vcs_[c.value()];
      Flit flit = vc.fifo.front();
      vc.fifo.pop_front();
      ++result_.flits_delivered;
      ++result_.channel_flits[c.value()];
      if (flit.is_tail) {
        vc.owner.reset();
        ++result_.packets_delivered;
        const std::uint64_t latency = cycle_ - flit.injected_at + 1;
        latency_sum_ += latency;
        result_.max_packet_latency =
            std::max(result_.max_packet_latency, latency);
        FlowStats& stats = result_.flows[flit.packet.flow.value()];
        ++stats.packets_delivered;
        stats.max_latency = std::max(stats.max_latency, latency);
        flow_latency_sum_[flit.packet.flow.value()] += latency;
      }
    }
    for (const auto& [from, to] : moves_) {
      VcState& src = vcs_[from.value()];
      VcState& dst = vcs_[to.value()];
      Flit flit = src.fifo.front();
      src.fifo.pop_front();
      ++result_.channel_flits[from.value()];
      if (flit.is_head) {
        dst.owner = flit.packet;
      }
      if (flit.is_tail) {
        src.owner.reset();
      }
      ++flit.hop;
      dst.fifo.push_back(flit);
    }
    for (const Flit& flit : injections_) {
      const Route& route = design_.routes.RouteOf(flit.packet.flow);
      VcState& dst = vcs_[route.front().value()];
      if (flit.is_head) {
        dst.owner = flit.packet;
      }
      dst.fifo.push_back(flit);
    }
  }

  /// Exact circular-wait detection. Build the wait-for graph restricted
  /// to *hard* waits: the head flit of channel c needs channel t, and t
  /// is either owned by a different packet or has no free slot. A
  /// directed cycle of hard waits can never resolve (wormhole channels
  /// are non-preemptible), so it is a deadlock certificate.
  bool DetectCircularWait() {
    const std::size_t n = vcs_.size();
    std::vector<std::int32_t> waits_on(n, -1);
    for (std::size_t c = 0; c < n; ++c) {
      const VcState& vc = vcs_[c];
      if (vc.fifo.empty()) {
        continue;
      }
      const Flit& flit = vc.fifo.front();
      const Route& route = design_.routes.RouteOf(flit.packet.flow);
      if (flit.hop + 1u == route.size()) {
        continue;  // ejection never blocks
      }
      const ChannelId t = route[flit.hop + 1];
      const VcState& target = vcs_[t.value()];
      const bool foreign_owner =
          target.owner.has_value() && *target.owner != flit.packet;
      const bool full = target.fifo.size() >= config_.buffer_depth;
      if (foreign_owner || full) {
        waits_on[c] = static_cast<std::int32_t>(t.value());
      }
    }
    // Functional graph (out-degree <= 1): cycle detection by pointer
    // chasing with a visit stamp.
    std::vector<std::uint32_t> stamp(n, 0);
    for (std::size_t start = 0; start < n; ++start) {
      if (waits_on[start] < 0 || stamp[start] != 0) {
        continue;
      }
      std::size_t cur = start;
      const std::uint32_t mark = static_cast<std::uint32_t>(start) + 1;
      while (waits_on[cur] >= 0 && stamp[cur] == 0) {
        stamp[cur] = mark;
        cur = static_cast<std::size_t>(waits_on[cur]);
      }
      if (waits_on[cur] >= 0 && stamp[cur] == mark) {
        // Found a cycle through `cur`; record it for the report.
        std::size_t walker = cur;
        do {
          result_.deadlock_cycle.push_back(ChannelId(walker));
          walker = static_cast<std::size_t>(waits_on[walker]);
        } while (walker != cur);
        return true;
      }
    }
    return false;
  }

  const NocDesign& design_;
  SimConfig config_;
  TrafficSchedule schedule_;
  std::vector<VcState> vcs_;
  std::vector<SourceState> sources_;
  SimResult result_;
  std::uint64_t cycle_ = 0;
  std::uint64_t latency_sum_ = 0;
  std::vector<std::uint64_t> flow_latency_sum_;

  // Per-cycle planning scratch.
  std::vector<bool> link_used_;
  std::vector<bool> popped_;
  std::vector<int> free_slots_;
  std::vector<bool> claimed_by_head_;
  std::vector<std::pair<ChannelId, ChannelId>> moves_;
  std::vector<ChannelId> ejects_;
  std::vector<Flit> injections_;
};

}  // namespace

SimResult SimulateWorkload(const NocDesign& design, const SimConfig& config) {
  Require(config.traffic.packet_length >= 1,
          "SimulateWorkload: packets need at least one flit");
  Require(config.buffer_depth >= 1,
          "SimulateWorkload: buffers need at least one slot");
  Engine engine(design, config);
  return engine.Run();
}

}  // namespace nocdr
