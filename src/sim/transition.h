// Simulating a network *through* a fault-and-reconfigure event.
//
// A certificate only speaks about a fixed configuration; what happens
// between two certified configurations is a protocol choice. Two
// disciplines are modeled, both on one timeline within a single
// cycle-accurate run:
//
//   * drain-and-restart — the planned-maintenance discipline: at the
//     transition cycle injection stops, in-flight packets finish on the
//     pre-fault routes (the links only come down once the network is
//     empty), then injection resumes on the post-fault routes. No
//     packet is ever lost; the price is the drain stall, reported in
//     drain_cycles.
//   * mid-flight — the unplanned-fault discipline: the failure strikes
//     at the transition cycle. Every in-flight packet that occupies a
//     dead channel, or whose remaining pre-fault route would need one,
//     is destroyed (packets_dropped) and its buffers and channel claims
//     are released; surviving packets finish on their pre-fault routes
//     while new injections immediately use the post-fault routes. The
//     mix of old-route survivors and new-route traffic is *not* covered
//     by either configuration's certificate — transient circular waits
//     across the two route generations are a real phenomenon this
//     simulator exists to expose, reported like any other deadlock.
//
// The run happens on the post-fault design (its topology is a superset
// of the pre-fault one: channels are append-only, and failed links keep
// their — dead — channels), with the pre-fault routes supplied
// separately. Packets bind their route generation at injection, which
// is exactly what source routing does in hardware.
#pragma once

#include <cstdint>
#include <vector>

#include "noc/design.h"
#include "sim/simulator.h"

namespace nocdr {

enum class TransitionPolicy {
  kDrainAndRestart,
  kMidFlight,
};

struct TransitionConfig {
  /// Engine, buffers, workload and safety caps, as for SimulateWorkload.
  SimConfig sim;
  /// Cycle at which the fault strikes (mid-flight) or the drain begins
  /// (drain-and-restart).
  std::uint64_t transition_cycle = 64;
  TransitionPolicy policy = TransitionPolicy::kDrainAndRestart;
};

struct TransitionResult {
  /// Aggregate statistics over the whole run (both epochs).
  SimResult sim;
  /// Mid-flight only: packets destroyed by the fault. Never counted as
  /// delivered; a clean mid-flight run has
  /// packets_delivered + packets_dropped == packets_offered.
  std::uint64_t packets_dropped = 0;
  /// Drain-and-restart only: cycles injection was suspended waiting for
  /// the network to empty.
  std::uint64_t drain_cycles = 0;

  [[nodiscard]] bool AllAccountedFor() const {
    return sim.packets_delivered + packets_dropped == sim.packets_offered;
  }
};

/// Runs \p config.sim's workload on \p post_design across the
/// transition. \p pre_routes are the routes in force before the
/// transition cycle (they must be structurally valid against
/// post_design's topology — guaranteed when the post design evolved
/// from the pre design, since channels are append-only).
/// \p dead_channels marks the channels the fault killed, indexed by
/// ChannelId over post_design's topology (fault::DeadChannelMask);
/// it may be empty for a fault-free reconfiguration.
TransitionResult SimulateTransition(const NocDesign& post_design,
                                    const RouteSet& pre_routes,
                                    const std::vector<char>& dead_channels,
                                    const TransitionConfig& config);

}  // namespace nocdr
