// Flit and packet primitives for the wormhole simulator.
#pragma once

#include <cstdint>

#include "util/ids.h"

namespace nocdr {

/// Uniquely identifies a packet in flight: owning flow + sequence number.
struct PacketKey {
  FlowId flow;
  std::uint32_t sequence = 0;

  friend bool operator==(const PacketKey&, const PacketKey&) = default;
};

/// One flow-control unit. Wormhole switching moves packets flit by flit;
/// the head flit acquires each channel for the whole packet and the tail
/// flit releases it — which is precisely how a cyclic channel-wait can
/// freeze the network.
struct Flit {
  PacketKey packet;
  std::uint16_t index = 0;    // position within the packet
  bool is_head = false;
  bool is_tail = false;
  std::uint16_t hop = 0;      // how many channels already traversed
  std::uint64_t injected_at = 0;
  /// Route generation the packet was injected under. 0 everywhere except
  /// in transition simulations (sim/transition.h), where packets injected
  /// before the reconfiguration follow the pre-fault routes (epoch 0) and
  /// later ones the post-fault routes (epoch 1) — source routing binds a
  /// packet's path at injection time.
  std::uint8_t route_epoch = 0;
};

}  // namespace nocdr
