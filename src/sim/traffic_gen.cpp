#include "sim/traffic_gen.h"

#include "util/error.h"

namespace nocdr {

TrafficSchedule::TrafficSchedule(const NocDesign& design,
                                 const TrafficConfig& config,
                                 std::uint64_t horizon_cycles) {
  const std::size_t flows = design.traffic.FlowCount();
  ready_.resize(flows);
  Rng rng(config.seed);
  for (std::size_t i = 0; i < flows; ++i) {
    Rng flow_rng = rng.Fork();
    auto& schedule = ready_[i];
    if (config.mode == InjectionMode::kFixedCount) {
      schedule.assign(config.packets_per_flow, 0);
    } else {
      const Flow& flow = design.traffic.FlowAt(FlowId(i));
      const double rate = config.reference_injection_rate *
                          (flow.bandwidth_mbps / config.reference_bandwidth);
      for (std::uint64_t cycle = 0; cycle < horizon_cycles; ++cycle) {
        if (flow_rng.NextBool(rate)) {
          schedule.push_back(cycle);
        }
      }
    }
    total_ += schedule.size();
  }
}

std::uint32_t TrafficSchedule::PacketCount(FlowId f) const {
  Require(f.valid() && f.value() < ready_.size(),
          "PacketCount: unknown flow");
  return static_cast<std::uint32_t>(ready_[f.value()].size());
}

std::uint64_t TrafficSchedule::ReadyAt(FlowId f, std::uint32_t seq) const {
  Require(f.valid() && f.value() < ready_.size(), "ReadyAt: unknown flow");
  const auto& schedule = ready_[f.value()];
  Require(seq < schedule.size(), "ReadyAt: packet sequence out of range");
  return schedule[seq];
}

}  // namespace nocdr
