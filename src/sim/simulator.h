// Cycle-accurate flit-level wormhole network simulator.
//
// Validates the library's whole premise end to end: designs whose CDG has
// a cycle really do freeze under load, and designs processed by the
// removal algorithm (or resource ordering) run the same workload to
// completion.
//
// Model:
//   * source routing — every packet follows its flow's static route, a
//     list of (link, VC) channels taken verbatim from the design;
//   * wormhole switching — the head flit acquires each channel buffer for
//     the whole packet, the tail flit releases it; body flits may only
//     enter channels their packet owns;
//   * credit/occupancy flow control — a flit advances only into a buffer
//     slot that exists; each physical link carries one flit per cycle;
//     each buffer pops at most one flit per cycle;
//   * rotating round-robin arbitration for links, buffers and injection,
//     making every run deterministic for a given seed;
//   * deadlock detection — a progress watchdog plus an exact circular-
//     wait check on the channel wait-for graph (a cycle of full or
//     foreign-owned channels each blocking the next is a deadlock by
//     definition: no preemption, no timeout in wormhole switching).
#pragma once

#include <cstdint>
#include <vector>

#include "noc/design.h"
#include "sim/flit.h"
#include "sim/traffic_gen.h"

namespace nocdr {

/// How the engine finds work each cycle. Both engines are cycle-accurate
/// and produce bit-identical SimResults (property-tested); they differ
/// only in per-cycle cost.
enum class SimEngine {
  /// Worklists of non-empty channels and undrained sources; per-cycle
  /// cost is O(active), which is what makes million-packet validation
  /// campaigns tractable on large designs.
  kWorklist,
  /// The reference formulation: scan every channel and every flow each
  /// cycle. Kept as the baseline the worklist engine is differential-
  /// tested and benchmarked against.
  kFullScan,
};

struct SimConfig {
  SimEngine engine = SimEngine::kWorklist;
  /// Arbitrate injections before in-network traversals instead of after.
  /// Both orders are legal router arbitrations; the default favors
  /// in-network traffic (the common switch allocator policy), which can
  /// phase-lock some statically unsafe designs into a live steady state
  /// — a freed channel is always re-taken by the parked waiter it would
  /// have starved. Injection-first is the adversarial order validation
  /// campaigns use to detonate such designs (src/valid/).
  bool inject_first = false;
  /// Buffer depth of every channel (flits).
  std::uint16_t buffer_depth = 4;
  /// Hard cap on simulated cycles.
  std::uint64_t max_cycles = 200000;
  /// Declare no-progress after this many cycles without any flit motion
  /// while flits are in flight.
  std::uint64_t stall_threshold = 2000;
  /// How often to run the exact circular-wait check.
  std::uint64_t deadlock_check_interval = 256;
  TrafficConfig traffic;
};

/// Per-flow delivery statistics.
struct FlowStats {
  std::uint64_t packets_delivered = 0;
  double avg_latency = 0.0;
  std::uint64_t max_latency = 0;
};

/// Outcome of one simulation run.
struct SimResult {
  std::uint64_t cycles = 0;
  std::uint64_t packets_offered = 0;    // per the traffic schedule
  std::uint64_t packets_injected = 0;   // entered the network (or local)
  std::uint64_t packets_delivered = 0;
  std::uint64_t flits_delivered = 0;
  bool deadlocked = false;
  /// Channels participating in the detected circular wait (empty unless
  /// deadlocked).
  std::vector<ChannelId> deadlock_cycle;
  std::uint64_t stuck_flits = 0;
  double avg_packet_latency = 0.0;
  std::uint64_t max_packet_latency = 0;
  /// Per-flow breakdown, indexed by FlowId.
  std::vector<FlowStats> flows;
  /// Flits forwarded out of each channel buffer, indexed by ChannelId;
  /// divided by cycles this is the channel utilization.
  std::vector<std::uint64_t> channel_flits;

  [[nodiscard]] bool AllDelivered() const {
    return packets_delivered == packets_offered;
  }

  /// Utilization of a channel in [0, 1] (flits forwarded per cycle).
  [[nodiscard]] double ChannelUtilization(ChannelId c) const {
    if (cycles == 0 || c.value() >= channel_flits.size()) {
      return 0.0;
    }
    return static_cast<double>(channel_flits[c.value()]) /
           static_cast<double>(cycles);
  }
};

/// Runs the workload described by \p config.traffic on \p design.
/// The design must satisfy Validate().
SimResult SimulateWorkload(const NocDesign& design, const SimConfig& config);

}  // namespace nocdr
