// Cycle-accurate flit-level wormhole network simulator.
//
// Validates the library's whole premise end to end: designs whose CDG has
// a cycle really do freeze under load, and designs processed by the
// removal algorithm (or resource ordering) run the same workload to
// completion.
//
// Model:
//   * source routing — every packet follows its flow's static route, a
//     list of (link, VC) channels taken verbatim from the design;
//   * wormhole switching — the head flit acquires each channel buffer for
//     the whole packet, the tail flit releases it; body flits may only
//     enter channels their packet owns;
//   * credit/occupancy flow control — a flit advances only into a buffer
//     slot that exists; each physical link carries one flit per cycle;
//     each buffer pops at most one flit per cycle;
//   * rotating round-robin arbitration for links, buffers and injection,
//     making every run deterministic for a given seed;
//   * deadlock detection — a progress watchdog plus an exact circular-
//     wait check on the channel wait-for graph (a cycle of full or
//     foreign-owned channels each blocking the next is a deadlock by
//     definition: no preemption, no timeout in wormhole switching).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "noc/design.h"
#include "sim/flit.h"
#include "sim/traffic_gen.h"

namespace nocdr {

/// How the engine finds work each cycle. All three engines simulate the
/// same cycle-level semantics and produce bit-identical SimResults
/// (property-tested three ways across the corpus); they differ only in
/// what a cycle — or the absence of one — costs.
enum class SimEngine {
  /// Worklists of non-empty channels and undrained sources; per-cycle
  /// cost is O(active), which is what makes million-packet validation
  /// campaigns tractable on large designs.
  kWorklist,
  /// The reference formulation: scan every channel and every flow each
  /// cycle. Kept as the baseline the other engines are differential-
  /// tested and benchmarked against.
  kFullScan,
  /// Discrete-event core: the worklist step machinery driven by a
  /// binary-heap EventQueue (sim/event_queue.h) of flit-injection,
  /// credit-return, worm-completion and arbitration-wake events keyed
  /// by (cycle, deterministic tie-break). Time advances heap-to-heap:
  /// cycles in which provably nothing can move — no flit in flight that
  /// moved last cycle, no armed flow, no pending event, no transition
  /// window, no deadlock-check deadline — are skipped outright, so idle
  /// time on large sparse designs costs nothing. Wakes land on exactly
  /// the cycles the cycle-accurate engines would have acted on, which
  /// is what keeps the results bit-identical.
  kEvent,
};

/// All engines, in the fixed differential-test order (reference first).
std::vector<SimEngine> AllEngines();

/// Stable lowercase identifier ("worklist", "fullscan", "event").
std::string EngineName(SimEngine engine);

/// Inverse of EngineName; nullopt for unknown names.
std::optional<SimEngine> ParseEngine(const std::string& name);

struct SimConfig {
  SimEngine engine = SimEngine::kWorklist;
  /// Arbitrate injections before in-network traversals instead of after.
  /// Both orders are legal router arbitrations; the default favors
  /// in-network traffic (the common switch allocator policy), which can
  /// phase-lock some statically unsafe designs into a live steady state
  /// — a freed channel is always re-taken by the parked waiter it would
  /// have starved. Injection-first is the adversarial order validation
  /// campaigns use to detonate such designs (src/valid/).
  bool inject_first = false;
  /// Buffer depth of every channel (flits).
  std::uint16_t buffer_depth = 4;
  /// Hard cap on simulated cycles.
  std::uint64_t max_cycles = 200000;
  /// Declare no-progress after this many cycles without any flit motion
  /// while flits are in flight.
  std::uint64_t stall_threshold = 2000;
  /// How often to run the exact circular-wait check.
  std::uint64_t deadlock_check_interval = 256;
  TrafficConfig traffic;
};

/// Per-flow delivery statistics.
struct FlowStats {
  std::uint64_t packets_delivered = 0;
  double avg_latency = 0.0;
  std::uint64_t max_latency = 0;
};

/// Outcome of one simulation run.
struct SimResult {
  std::uint64_t cycles = 0;
  std::uint64_t packets_offered = 0;    // per the traffic schedule
  std::uint64_t packets_injected = 0;   // entered the network (or local)
  std::uint64_t packets_delivered = 0;
  std::uint64_t flits_delivered = 0;
  bool deadlocked = false;
  /// Channels participating in the detected circular wait (empty unless
  /// deadlocked).
  std::vector<ChannelId> deadlock_cycle;
  std::uint64_t stuck_flits = 0;
  double avg_packet_latency = 0.0;
  std::uint64_t max_packet_latency = 0;
  /// Per-flow breakdown, indexed by FlowId.
  std::vector<FlowStats> flows;
  /// Flits forwarded out of each channel buffer, indexed by ChannelId;
  /// divided by cycles this is the channel utilization.
  std::vector<std::uint64_t> channel_flits;

  [[nodiscard]] bool AllDelivered() const {
    return packets_delivered == packets_offered;
  }

  /// Utilization of a channel in [0, 1] (flits forwarded per cycle).
  [[nodiscard]] double ChannelUtilization(ChannelId c) const {
    if (cycles == 0 || c.value() >= channel_flits.size()) {
      return 0.0;
    }
    return static_cast<double>(channel_flits[c.value()]) /
           static_cast<double>(cycles);
  }
};

/// Runs the workload described by \p config.traffic on \p design.
/// The design must satisfy Validate().
SimResult SimulateWorkload(const NocDesign& design, const SimConfig& config);

/// As above, but injects from \p schedule instead of synthesizing one
/// from config.traffic. The schedule must have been built for this
/// design (one entry list per flow). Lets engine benchmarks share one
/// schedule across engines and time the simulation alone — Bernoulli
/// schedule synthesis is O(flows x horizon) and identical for every
/// engine, so folding it into the measurement would mask the engine
/// difference it exists to expose.
SimResult SimulateWorkload(const NocDesign& design, const SimConfig& config,
                           const TrafficSchedule& schedule);

}  // namespace nocdr
