#include "obs/metrics.h"

#include <bit>

namespace nocdr::obs {

void HistogramSnapshot::Merge(const HistogramSnapshot& other) {
  count += other.count;
  sum += other.sum;
  for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
    buckets[i] += other.buckets[i];
  }
}

std::uint64_t HistogramSnapshot::Quantile(double q) const {
  if (count == 0) {
    return 0;
  }
  if (q < 0.0) {
    q = 0.0;
  }
  if (q > 1.0) {
    q = 1.0;
  }
  const auto want = static_cast<std::uint64_t>(
      q * static_cast<double>(count) + 0.999999);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
    seen += buckets[i];
    if (seen >= want) {
      return Histogram::BucketUpperBound(i);
    }
  }
  return Histogram::BucketUpperBound(kHistogramBuckets - 1);
}

std::size_t Histogram::BucketIndex(std::uint64_t value) {
  if (value == 0) {
    return 0;
  }
  const std::size_t index =
      static_cast<std::size_t>(std::bit_width(value));  // 1 + floor(log2 v)
  return index < kHistogramBuckets ? index : kHistogramBuckets - 1;
}

std::uint64_t Histogram::BucketUpperBound(std::size_t index) {
  if (index == 0) {
    return 0;
  }
  if (index >= kHistogramBuckets - 1) {
    return UINT64_MAX;
  }
  return (std::uint64_t{1} << index) - 1;
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snapshot;
  snapshot.count = count_.load(std::memory_order_relaxed);
  snapshot.sum = sum_.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
    snapshot.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return snapshot;
}

void Histogram::Reset() {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  for (auto& bucket : buckets_) {
    bucket.store(0, std::memory_order_relaxed);
  }
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Counter>();
  }
  return *slot;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Gauge>();
  }
  return *slot;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Histogram>();
  }
  return *slot;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot snapshot;
  snapshot.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snapshot.counters.emplace_back(name, counter->Value());
  }
  snapshot.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges.emplace_back(name, gauge->Value());
  }
  snapshot.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    snapshot.histograms.emplace_back(name, histogram->Snapshot());
  }
  return snapshot;
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, counter] : counters_) {
    counter->Reset();
  }
  for (const auto& [name, gauge] : gauges_) {
    gauge->Reset();
  }
  for (const auto& [name, histogram] : histograms_) {
    histogram->Reset();
  }
}

MetricsRegistry& Metrics() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never destroyed
  return *registry;
}

JsonObject CountersToJson(const MetricsSnapshot& snapshot) {
  JsonObject json;
  for (const auto& [name, value] : snapshot.counters) {
    json.Set(name, value);
  }
  return json;
}

JsonObject GaugesToJson(const MetricsSnapshot& snapshot) {
  JsonObject json;
  for (const auto& [name, value] : snapshot.gauges) {
    json.Set(name, value);
  }
  return json;
}

JsonObject HistogramToJson(const HistogramSnapshot& snapshot) {
  JsonObject json;
  json.Set("count", snapshot.count).Set("sum", snapshot.sum);
  std::string buckets = "[";
  bool first = true;
  for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
    if (snapshot.buckets[i] == 0) {
      continue;
    }
    if (!first) {
      buckets += ",";
    }
    first = false;
    buckets += "[" + std::to_string(Histogram::BucketUpperBound(i)) + "," +
               std::to_string(snapshot.buckets[i]) + "]";
  }
  buckets += "]";
  json.SetRaw("buckets", buckets);
  return json;
}

JsonObject HistogramsToJson(const MetricsSnapshot& snapshot) {
  JsonObject json;
  for (const auto& [name, histogram] : snapshot.histograms) {
    json.SetRaw(name, HistogramToJson(histogram).Dump());
  }
  return json;
}

}  // namespace nocdr::obs
