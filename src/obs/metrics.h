// Process-wide metrics: counters, gauges and log-bucketed latency
// histograms.
//
// The serve/removal stack records aggregate timing and event counts
// here; the v2 {"type":"metrics"} protocol request and the
// `nocdr_serve --stats` histogram section read them back out. Design
// constraints, in order:
//
//   * Allocation-free on the hot path. Record()/Add() touch only
//     pre-registered atomics — no locks, no map lookups, no heap. The
//     one-time registration (GetCounter/GetHistogram) takes a mutex and
//     may allocate; callers cache the returned reference (instruments
//     are never destroyed, so references stay valid for the process
//     lifetime).
//
//   * Mergeable across threads. Instruments are plain relaxed atomics;
//     a Snapshot() is a consistent-enough read for reporting (each
//     field individually coherent), and HistogramSnapshot::Merge is
//     elementwise addition — commutative and associative, so merging
//     per-thread or per-shard snapshots in any order yields identical
//     totals (tested in tests/test_obs.cpp).
//
//   * Fixed log bucketing. A histogram has exactly kHistogramBuckets
//     power-of-two buckets: bucket 0 holds the value 0, bucket i >= 1
//     holds [2^(i-1), 2^i - 1], and the last bucket absorbs everything
//     beyond. Values are dimensionless uint64s; by convention the
//     instrumented code records microseconds and names the metric
//     *_us. Bucket boundaries are part of the protocol surface
//     (docs/OBSERVABILITY.md) and pinned by tests.
//
// Metrics are aggregates and deliberately schedule-dependent (a cache
// hit vs. a coalesced wait lands in different histograms depending on
// interleaving); the deterministic per-run story is the trace layer
// (obs/trace.h), which byte-compares. The two are independent:
// metrics accumulate whether or not tracing is on.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "util/json.h"

namespace nocdr::obs {

class Counter {
 public:
  void Add(std::uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t Value() const {
    return value_.load(std::memory_order_relaxed);
  }

  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void Set(std::int64_t value) {
    value_.store(value, std::memory_order_relaxed);
  }

  void Add(std::int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }

  [[nodiscard]] std::int64_t Value() const {
    return value_.load(std::memory_order_relaxed);
  }

  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

inline constexpr std::size_t kHistogramBuckets = 64;

/// A coherent copy of one histogram's buckets; plain integers, so
/// snapshots can be merged, compared and rendered without atomics.
struct HistogramSnapshot {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::array<std::uint64_t, kHistogramBuckets> buckets{};

  /// Elementwise addition — commutative and associative, so any merge
  /// order over any partition of the samples yields the same totals.
  void Merge(const HistogramSnapshot& other);

  /// Upper bound of the smallest-index prefix of buckets holding at
  /// least ceil(q * count) samples — the classic "p99 <= X" bound.
  /// Returns 0 on an empty histogram.
  [[nodiscard]] std::uint64_t Quantile(double q) const;

  bool operator==(const HistogramSnapshot&) const = default;
};

class Histogram {
 public:
  /// 0 -> bucket 0; v >= 1 -> bucket 1 + floor(log2 v), capped at the
  /// last bucket. Exposed (and tested) because the boundaries are part
  /// of the metrics protocol surface.
  static std::size_t BucketIndex(std::uint64_t value);

  /// Largest value bucket \p index holds: 0 for bucket 0, 2^index - 1
  /// for the middle buckets, UINT64_MAX for the last (it absorbs the
  /// tail).
  static std::uint64_t BucketUpperBound(std::size_t index);

  void Record(std::uint64_t value) {
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  }

  [[nodiscard]] HistogramSnapshot Snapshot() const;

  void Reset();

 private:
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::array<std::atomic<std::uint64_t>, kHistogramBuckets> buckets_{};
};

/// Name-sorted copies of every registered instrument.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, std::int64_t>> gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;
};

/// Owns the instruments. Registration returns a stable reference (the
/// instrument lives as long as the registry; the process-wide registry
/// below is never destroyed before exit), so hot paths register once
/// and then touch only atomics.
class MetricsRegistry {
 public:
  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  Histogram& GetHistogram(const std::string& name);

  [[nodiscard]] MetricsSnapshot Snapshot() const;

  /// Zeroes every instrument without invalidating references — test
  /// isolation for the process-wide registry.
  void ResetAll();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// The process-wide registry every instrumented layer records into.
MetricsRegistry& Metrics();

/// Records the wall-clock microseconds of its scope into a histogram
/// (RAII). The histogram reference is typically a cached registration
/// (a function-local static), keeping the per-use cost at two clock
/// reads and one Record().
class ScopedHistogramTimer {
 public:
  explicit ScopedHistogramTimer(Histogram& histogram)
      : histogram_(histogram),
        start_(std::chrono::steady_clock::now()) {}

  ~ScopedHistogramTimer() {
    histogram_.Record(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - start_)
            .count()));
  }

  ScopedHistogramTimer(const ScopedHistogramTimer&) = delete;
  ScopedHistogramTimer& operator=(const ScopedHistogramTimer&) = delete;

 private:
  Histogram& histogram_;
  std::chrono::steady_clock::time_point start_;
};

/// JSON fragments of a snapshot — the shapes the v2 metrics response
/// embeds (serve/protocol.cpp splices them verbatim):
///   counters:   {"name":value,...}
///   gauges:     {"name":value,...}
///   histograms: {"name":{"count":N,"sum":S,"buckets":[[le,count],...]},...}
/// where "le" is the bucket's inclusive upper bound and zero-count
/// buckets are omitted.
JsonObject CountersToJson(const MetricsSnapshot& snapshot);
JsonObject GaugesToJson(const MetricsSnapshot& snapshot);
JsonObject HistogramToJson(const HistogramSnapshot& snapshot);
JsonObject HistogramsToJson(const MetricsSnapshot& snapshot);

}  // namespace nocdr::obs
