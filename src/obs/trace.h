// Structured trace spans with deterministic ids and an injectable
// clock — the profiling instrument of the serve/removal stack.
//
// A *trace* is a tree of spans describing one unit of work: one
// protocol request, one session message, or one certification
// computation. Span ids are assigned sequentially in open order within
// their trace (the root is span 0 with parent -1), so the tree
// structure is a pure function of the code path taken — never of
// thread scheduling. Timestamps come from the owning TraceSink's
// clock:
//
//   * kLogical (default): every span event advances a per-trace tick
//     counter. Two runs of the same seeded input produce *byte
//     identical* trace files, at any client thread count — the
//     property the CI trace-schema job and tests/test_serve_cli.cpp
//     pin. Durations are event counts, not time; use metrics
//     histograms (obs/metrics.h) or wall mode for real latencies.
//   * kWall: microseconds since the sink's construction. Real
//     profiling numbers; structure still deterministic, bytes not.
//
// How the serve stack keeps logical traces byte-stable (the part worth
// reading before adding spans — see docs/OBSERVABILITY.md for the full
// argument):
//
//   * Each protocol line gets a root trace whose id nocdr_serve derives
//     from the line's *stream index* ("q<index>") — stable across
//     thread counts. Its spans carry only deterministic-payload
//     attributes (id, status, key), never schedule-dependent metadata
//     like cache_outcome.
//   * Each certification *computation* gets its own trace keyed by the
//     canonical cache key ("k<hex>"). The coalescer's exactly-once
//     contract makes the *set* of computation traces (and each one's
//     deterministic span tree) identical for any interleaving, as long
//     as no eviction forces a recompute (true at default cache sizes).
//   * Schedule-dependent timing (hit vs. coalesced, memo fast path,
//     disk promotions) goes into metrics histograms, not spans.
//
// Propagation is by thread-local context: ScopedTrace installs a trace
// as current, ScopedSpan nests under whatever is current (and is a
// no-op when nothing is), so deep layers like deadlock/removal.cpp
// need no signature changes. A computation closure running on a pool
// thread starts with an empty context and opens its own trace there.
//
// The on-disk format is JSON Lines (docs/OBSERVABILITY.md): one header
// line {"trace_schema":1,"clock":...}, then one flat object per span —
// reserved keys trace/span/parent/name/start/end, every other key an
// attribute (string or uint64). The sink buffers finished traces and
// writes them sorted by (trace id, span id), which is what makes the
// bytes independent of completion order. tools/nocdr_trace validates
// and analyzes these files; ParseSpanLine below is the shared schema
// checker it and nocdr_docs_check use.
#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <initializer_list>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace nocdr::obs {

inline constexpr int kTraceSchemaVersion = 1;

enum class TraceClockMode {
  kLogical,  // per-trace tick counter; byte-deterministic
  kWall,     // microseconds since sink construction; real latencies
};

/// Stable names ("logical" / "wall") and their inverse; the header
/// line carries the name. ParseTraceClock throws InvalidModelError on
/// an unknown name.
std::string TraceClockName(TraceClockMode mode);
TraceClockMode ParseTraceClock(const std::string& name);

/// One attribute on a span: string or uint64.
struct SpanAttr {
  std::string key;
  bool is_string = false;
  std::uint64_t num = 0;
  std::string str;
};

struct SpanRecord {
  std::uint64_t span = 0;
  std::int64_t parent = -1;  // -1 = root
  std::string name;
  std::uint64_t start = 0;
  std::uint64_t end = 0;
  std::vector<SpanAttr> attrs;
};

/// Thread-safe collector of finished traces. Construction chooses the
/// clock; Finish() may be called from any thread; WriteTo()/WriteFile()
/// render the header plus every span sorted by (trace id, span id).
class TraceSink {
 public:
  explicit TraceSink(TraceClockMode clock = TraceClockMode::kLogical);

  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

  [[nodiscard]] TraceClockMode clock() const { return clock_; }

  /// Wall microseconds since sink construction (used by traces in
  /// kWall mode; monotonic).
  [[nodiscard]] std::uint64_t WallNowUs() const;

  /// Takes ownership of one finished trace's spans.
  void Finish(const std::string& trace_id, std::vector<SpanRecord> spans);

  [[nodiscard]] std::size_t TraceCount() const;
  [[nodiscard]] std::size_t SpanCount() const;

  /// Renders the whole file; returns the number of span lines written.
  std::size_t WriteTo(std::ostream& out) const;

  /// WriteTo() into \p path; false on I/O failure.
  bool WriteFile(const std::string& path) const;

 private:
  const TraceClockMode clock_;
  const std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mutex_;
  std::vector<std::pair<std::string, std::vector<SpanRecord>>> traces_;
};

/// One in-flight trace. Single-threaded by contract: a trace is built
/// by exactly one thread (the serving thread for a request trace, the
/// computing thread for a computation trace) and handed to the sink
/// once. Span ids are assigned in Open/Emit order.
class Trace {
 public:
  Trace(TraceSink& sink, std::string trace_id);
  ~Trace();  // finishes into the sink if not already finished

  Trace(const Trace&) = delete;
  Trace& operator=(const Trace&) = delete;

  [[nodiscard]] const std::string& id() const { return id_; }

  /// One clock read. kLogical: returns and advances the per-trace tick
  /// counter (so *every* read is an event and deterministic code reads
  /// it deterministically often); kWall: sink-relative microseconds.
  std::uint64_t Tick();

  std::uint64_t Open(const std::string& name, std::int64_t parent);
  void Close(std::uint64_t span);

  /// A pre-timed span (StageTimer's accumulated stages): id assigned
  /// now, timestamps supplied by the caller.
  std::uint64_t Emit(const std::string& name, std::int64_t parent,
                     std::uint64_t start, std::uint64_t end);

  void Attr(std::uint64_t span, const std::string& key, std::uint64_t value);
  void Attr(std::uint64_t span, const std::string& key, std::string value);

  /// Hands the spans to the sink; idempotent, called by the destructor.
  void Finish();

 private:
  TraceSink& sink_;
  const std::string id_;
  std::uint64_t ticks_ = 0;
  bool finished_ = false;
  std::vector<SpanRecord> spans_;
};

/// The thread-local propagation cell: which trace (and which span in
/// it) encloses the code currently running on this thread. {nullptr,
/// -1} when tracing is off — the hot-path check is one TLS read.
struct TraceContext {
  Trace* trace = nullptr;
  std::int64_t span = -1;
};

[[nodiscard]] TraceContext CurrentContext();
void SetCurrentContext(TraceContext context);

/// Opens a trace with one root span and installs it as the thread's
/// current context for its scope. Inactive (all methods no-ops) when
/// \p sink is null or \p trace_id is empty — the tracing-off fast
/// path costs one branch.
class ScopedTrace {
 public:
  ScopedTrace(TraceSink* sink, const std::string& trace_id,
              const std::string& root_name);
  ~ScopedTrace();

  ScopedTrace(const ScopedTrace&) = delete;
  ScopedTrace& operator=(const ScopedTrace&) = delete;

  [[nodiscard]] bool active() const { return trace_ != nullptr; }

  /// Attributes on the root span.
  void Attr(const std::string& key, std::uint64_t value);
  void Attr(const std::string& key, std::string value);

 private:
  std::unique_ptr<Trace> trace_;
  std::uint64_t root_ = 0;
  TraceContext saved_;
};

/// Opens a child span under the thread's current context (and becomes
/// the current context for its scope). No-op when no trace is current.
class ScopedSpan {
 public:
  explicit ScopedSpan(const std::string& name);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  [[nodiscard]] bool active() const { return trace_ != nullptr; }

  void Attr(const std::string& key, std::uint64_t value);
  void Attr(const std::string& key, std::string value);

 private:
  Trace* trace_ = nullptr;
  std::uint64_t span_ = 0;
  TraceContext saved_;
};

/// Aggregating stage timers for loops: the removal loop enters its
/// cycle-search / scoring / application / invalidation stages hundreds
/// of times per run, which must not emit hundreds of spans. A
/// StageTimer accumulates per-stage busy time and call counts across
/// the loop and emits *one* span per touched stage at destruction
/// (start = first entry, end = last exit, attrs busy/calls plus any
/// named counters), nested under whatever span was current at
/// construction. Independently of tracing it records each stage's
/// busy time into the metrics histogram "<prefix>.<stage>_us"
/// (obs/metrics.h) — so stage-level aggregates exist even when no
/// trace is attached.
class StageTimer {
 public:
  static constexpr std::size_t kMaxStages = 8;

  /// \p metric_prefix of nullptr disables the metrics side. Stage
  /// names must outlive the timer (string literals).
  StageTimer(const char* metric_prefix,
             std::initializer_list<const char*> stage_names);
  ~StageTimer();

  StageTimer(const StageTimer&) = delete;
  StageTimer& operator=(const StageTimer&) = delete;

  /// Times one section of \p stage (RAII).
  class Section {
   public:
    Section(StageTimer& timer, std::size_t stage);
    ~Section();

    Section(const Section&) = delete;
    Section& operator=(const Section&) = delete;

   private:
    StageTimer& timer_;
    const std::size_t stage_;
    std::chrono::steady_clock::time_point wall_start_;
    std::uint64_t tick_start_ = 0;
  };

  /// Adds a named counter attribute to \p stage's span (e.g. the
  /// number of BFS runs a cycle search cost). Deterministic values
  /// only — they land in byte-compared logical traces.
  void Count(std::size_t stage, const char* key, std::uint64_t delta);

 private:
  friend class Section;

  struct Stage {
    const char* name = nullptr;
    std::uint64_t calls = 0;
    std::uint64_t busy_ticks = 0;
    std::uint64_t busy_ns = 0;  // metrics side, always wall
    std::uint64_t first_tick = 0;
    std::uint64_t last_tick = 0;
    std::vector<std::pair<const char*, std::uint64_t>> counts;
  };

  const char* metric_prefix_;
  TraceContext context_;  // captured at construction
  std::size_t stage_count_ = 0;
  std::array<Stage, kMaxStages> stages_;
};

/// A parsed-and-validated span line; the schema checker shared by
/// tools/nocdr_trace, nocdr_docs_check and the tests.
struct ParsedSpan {
  std::string trace;
  std::uint64_t span = 0;
  std::int64_t parent = -1;
  std::string name;
  std::uint64_t start = 0;
  std::uint64_t end = 0;
  std::map<std::string, std::uint64_t> uint_attrs;
  std::map<std::string, std::string> string_attrs;
};

/// Validates one span line against the schema: required keys with the
/// right shapes, start <= end, parent -1 exactly for span 0 and
/// otherwise an earlier span id, attributes string/uint only. Throws
/// InvalidModelError naming the violation.
ParsedSpan ParseSpanLine(const std::string& line);

/// True iff \p line is a trace-file header ({"trace_schema":...}).
bool IsTraceHeaderLine(const std::string& line);

/// Validates the header line and returns its clock mode. Throws
/// InvalidModelError on a bad schema version or clock name.
TraceClockMode ParseTraceHeaderLine(const std::string& line);

}  // namespace nocdr::obs
