#include "obs/trace.h"

#include <algorithm>
#include <fstream>
#include <ostream>
#include <string_view>

#include "obs/metrics.h"
#include "util/build_info.h"
#include "util/error.h"
#include "util/json.h"

namespace nocdr::obs {

namespace {

thread_local TraceContext g_current;

/// One span as one flat JSON line (reserved keys first, attributes
/// after, in insertion order).
std::string RenderSpanLine(const std::string& trace_id,
                           const SpanRecord& span) {
  JsonObject json;
  json.Set("trace", trace_id)
      .Set("span", span.span)
      .Set("parent", span.parent)
      .Set("name", span.name)
      .Set("start", span.start)
      .Set("end", span.end);
  for (const SpanAttr& attr : span.attrs) {
    if (attr.is_string) {
      json.Set(attr.key, attr.str);
    } else {
      json.Set(attr.key, attr.num);
    }
  }
  return json.Dump();
}

std::string HeaderLine(TraceClockMode clock) {
  JsonObject json;
  json.Set("trace_schema", kTraceSchemaVersion)
      .Set("clock", TraceClockName(clock))
      .Set("git_sha", GetBuildInfo().git_sha);
  return json.Dump();
}

bool IsReservedSpanKey(const std::string& key) {
  return key == "trace" || key == "span" || key == "parent" ||
         key == "name" || key == "start" || key == "end";
}

}  // namespace

std::string TraceClockName(TraceClockMode mode) {
  return mode == TraceClockMode::kLogical ? "logical" : "wall";
}

TraceClockMode ParseTraceClock(const std::string& name) {
  if (name == "logical") {
    return TraceClockMode::kLogical;
  }
  if (name == "wall") {
    return TraceClockMode::kWall;
  }
  throw InvalidModelError("ParseTraceClock: unknown clock \"" + name +
                          "\" (want \"logical\" or \"wall\")");
}

TraceSink::TraceSink(TraceClockMode clock)
    : clock_(clock), epoch_(std::chrono::steady_clock::now()) {}

std::uint64_t TraceSink::WallNowUs() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

void TraceSink::Finish(const std::string& trace_id,
                       std::vector<SpanRecord> spans) {
  std::lock_guard<std::mutex> lock(mutex_);
  traces_.emplace_back(trace_id, std::move(spans));
}

std::size_t TraceSink::TraceCount() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return traces_.size();
}

std::size_t TraceSink::SpanCount() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t count = 0;
  for (const auto& [id, spans] : traces_) {
    count += spans.size();
  }
  return count;
}

std::size_t TraceSink::WriteTo(std::ostream& out) const {
  // Copy the trace order under the lock, then render without it. The
  // sort is what divorces the file bytes from completion order:
  // traces finish in scheduling order, but are always written sorted
  // by id (span ids are already sequential within each trace).
  std::vector<const std::pair<std::string, std::vector<SpanRecord>>*> order;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    order.reserve(traces_.size());
    for (const auto& trace : traces_) {
      order.push_back(&trace);
    }
  }
  std::stable_sort(order.begin(), order.end(),
                   [](const auto* a, const auto* b) {
                     return a->first < b->first;
                   });
  out << HeaderLine(clock_) << "\n";
  std::size_t written = 0;
  for (const auto* trace : order) {
    for (const SpanRecord& span : trace->second) {
      out << RenderSpanLine(trace->first, span) << "\n";
      ++written;
    }
  }
  return written;
}

bool TraceSink::WriteFile(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return false;
  }
  WriteTo(out);
  out.flush();
  return static_cast<bool>(out);
}

Trace::Trace(TraceSink& sink, std::string trace_id)
    : sink_(sink), id_(std::move(trace_id)) {}

Trace::~Trace() { Finish(); }

std::uint64_t Trace::Tick() {
  if (sink_.clock() == TraceClockMode::kLogical) {
    return ticks_++;
  }
  return sink_.WallNowUs();
}

std::uint64_t Trace::Open(const std::string& name, std::int64_t parent) {
  SpanRecord span;
  span.span = spans_.size();
  span.parent = parent;
  span.name = name;
  span.start = Tick();
  span.end = span.start;
  spans_.push_back(std::move(span));
  return spans_.back().span;
}

void Trace::Close(std::uint64_t span) {
  spans_[span].end = Tick();
}

std::uint64_t Trace::Emit(const std::string& name, std::int64_t parent,
                          std::uint64_t start, std::uint64_t end) {
  SpanRecord span;
  span.span = spans_.size();
  span.parent = parent;
  span.name = name;
  span.start = start;
  span.end = end;
  spans_.push_back(std::move(span));
  return spans_.back().span;
}

void Trace::Attr(std::uint64_t span, const std::string& key,
                 std::uint64_t value) {
  spans_[span].attrs.push_back(SpanAttr{key, false, value, {}});
}

void Trace::Attr(std::uint64_t span, const std::string& key,
                 std::string value) {
  spans_[span].attrs.push_back(SpanAttr{key, true, 0, std::move(value)});
}

void Trace::Finish() {
  if (finished_) {
    return;
  }
  finished_ = true;
  sink_.Finish(id_, std::move(spans_));
}

TraceContext CurrentContext() { return g_current; }

void SetCurrentContext(TraceContext context) { g_current = context; }

ScopedTrace::ScopedTrace(TraceSink* sink, const std::string& trace_id,
                         const std::string& root_name) {
  if (sink == nullptr || trace_id.empty()) {
    return;
  }
  trace_ = std::make_unique<Trace>(*sink, trace_id);
  root_ = trace_->Open(root_name, -1);
  saved_ = g_current;
  g_current = TraceContext{trace_.get(), static_cast<std::int64_t>(root_)};
}

ScopedTrace::~ScopedTrace() {
  if (trace_ == nullptr) {
    return;
  }
  g_current = saved_;
  trace_->Close(root_);
  trace_->Finish();
}

void ScopedTrace::Attr(const std::string& key, std::uint64_t value) {
  if (trace_ != nullptr) {
    trace_->Attr(root_, key, value);
  }
}

void ScopedTrace::Attr(const std::string& key, std::string value) {
  if (trace_ != nullptr) {
    trace_->Attr(root_, key, std::move(value));
  }
}

ScopedSpan::ScopedSpan(const std::string& name) {
  if (g_current.trace == nullptr) {
    return;
  }
  trace_ = g_current.trace;
  span_ = trace_->Open(name, g_current.span);
  saved_ = g_current;
  g_current = TraceContext{trace_, static_cast<std::int64_t>(span_)};
}

ScopedSpan::~ScopedSpan() {
  if (trace_ == nullptr) {
    return;
  }
  g_current = saved_;
  trace_->Close(span_);
}

void ScopedSpan::Attr(const std::string& key, std::uint64_t value) {
  if (trace_ != nullptr) {
    trace_->Attr(span_, key, value);
  }
}

void ScopedSpan::Attr(const std::string& key, std::string value) {
  if (trace_ != nullptr) {
    trace_->Attr(span_, key, std::move(value));
  }
}

StageTimer::StageTimer(const char* metric_prefix,
                       std::initializer_list<const char*> stage_names)
    : metric_prefix_(metric_prefix), context_(g_current) {
  for (const char* name : stage_names) {
    if (stage_count_ >= kMaxStages) {
      break;
    }
    stages_[stage_count_++].name = name;
  }
}

StageTimer::~StageTimer() {
  for (std::size_t i = 0; i < stage_count_; ++i) {
    const Stage& stage = stages_[i];
    if (stage.calls == 0) {
      continue;
    }
    if (metric_prefix_ != nullptr) {
      Metrics()
          .GetHistogram(std::string(metric_prefix_) + "." + stage.name +
                        "_us")
          .Record(stage.busy_ns / 1000);
    }
    if (context_.trace != nullptr) {
      const std::uint64_t span = context_.trace->Emit(
          stage.name, context_.span, stage.first_tick, stage.last_tick);
      context_.trace->Attr(span, "busy", stage.busy_ticks);
      context_.trace->Attr(span, "calls", stage.calls);
      for (const auto& [key, value] : stage.counts) {
        context_.trace->Attr(span, key, value);
      }
    }
  }
}

void StageTimer::Count(std::size_t stage, const char* key,
                       std::uint64_t delta) {
  for (auto& [existing, value] : stages_[stage].counts) {
    if (std::string_view(existing) == key) {
      value += delta;
      return;
    }
  }
  stages_[stage].counts.emplace_back(key, delta);
}

StageTimer::Section::Section(StageTimer& timer, std::size_t stage)
    : timer_(timer),
      stage_(stage),
      wall_start_(std::chrono::steady_clock::now()) {
  if (timer_.context_.trace != nullptr) {
    tick_start_ = timer_.context_.trace->Tick();
    if (timer_.stages_[stage_].calls == 0) {
      timer_.stages_[stage_].first_tick = tick_start_;
    }
  }
}

StageTimer::Section::~Section() {
  Stage& stage = timer_.stages_[stage_];
  stage.busy_ns += static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - wall_start_)
          .count());
  if (timer_.context_.trace != nullptr) {
    const std::uint64_t tick_end = timer_.context_.trace->Tick();
    stage.busy_ticks += tick_end - tick_start_;
    stage.last_tick = tick_end;
  }
  ++stage.calls;
}

ParsedSpan ParseSpanLine(const std::string& line) {
  const JsonValue json = [&] {
    try {
      return JsonValue::Parse(line);
    } catch (const std::exception& e) {
      throw InvalidModelError(std::string("span line is not JSON: ") +
                              e.what());
    }
  }();
  if (json.kind() != JsonValue::Kind::kObject) {
    throw InvalidModelError("span line is not a JSON object");
  }
  ParsedSpan span;
  span.trace = json.At("trace").AsString();
  if (span.trace.empty()) {
    throw InvalidModelError("span \"trace\" id must be non-empty");
  }
  span.span = json.At("span").AsUint();
  span.parent = json.At("parent").AsInt();
  span.name = json.At("name").AsString();
  if (span.name.empty()) {
    throw InvalidModelError("span \"name\" must be non-empty");
  }
  span.start = json.At("start").AsUint();
  span.end = json.At("end").AsUint();
  if (span.start > span.end) {
    throw InvalidModelError("span " + std::to_string(span.span) +
                            " has start > end");
  }
  if (span.span == 0) {
    if (span.parent != -1) {
      throw InvalidModelError("root span (id 0) must have parent -1");
    }
  } else if (span.parent < 0 ||
             static_cast<std::uint64_t>(span.parent) >= span.span) {
    throw InvalidModelError(
        "span " + std::to_string(span.span) +
        " parent must be an earlier span id (ids are open-ordered)");
  }
  for (const auto& [key, value] : json.Members()) {
    if (IsReservedSpanKey(key)) {
      continue;
    }
    if (value.kind() == JsonValue::Kind::kString) {
      span.string_attrs[key] = value.AsString();
    } else if (value.kind() == JsonValue::Kind::kNumber) {
      span.uint_attrs[key] = value.AsUint();
    } else {
      throw InvalidModelError("span attribute \"" + key +
                              "\" must be a string or unsigned integer");
    }
  }
  return span;
}

bool IsTraceHeaderLine(const std::string& line) {
  try {
    const JsonValue json = JsonValue::Parse(line);
    return json.kind() == JsonValue::Kind::kObject &&
           json.Find("trace_schema") != nullptr;
  } catch (const std::exception&) {
    return false;
  }
}

TraceClockMode ParseTraceHeaderLine(const std::string& line) {
  const JsonValue json = JsonValue::Parse(line);
  const std::uint64_t version = json.At("trace_schema").AsUint();
  if (version != static_cast<std::uint64_t>(kTraceSchemaVersion)) {
    throw InvalidModelError("unsupported trace_schema " +
                            std::to_string(version) + " (this build reads " +
                            std::to_string(kTraceSchemaVersion) + ")");
  }
  return ParseTraceClock(json.At("clock").AsString());
}

}  // namespace nocdr::obs
