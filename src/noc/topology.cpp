#include "noc/topology.h"

#include "util/error.h"

namespace nocdr {

SwitchId TopologyGraph::AddSwitch(std::string name) {
  SwitchId id(switch_names_.size());
  if (name.empty()) {
    name = "SW" + std::to_string(id.value());
  }
  switch_names_.push_back(std::move(name));
  out_links_.emplace_back();
  in_links_.emplace_back();
  return id;
}

LinkId TopologyGraph::AddLink(SwitchId src, SwitchId dst) {
  Require(IsValidSwitch(src) && IsValidSwitch(dst),
          "AddLink: endpoint switch does not exist");
  Require(src != dst, "AddLink: self-loop links are not allowed");
  LinkId id(links_.size());
  links_.push_back(Link{src, dst});
  link_channels_.emplace_back();
  out_links_[src.value()].push_back(id);
  in_links_[dst.value()].push_back(id);
  AddVirtualChannel(id);  // implicit VC 0
  return id;
}

ChannelId TopologyGraph::AddVirtualChannel(LinkId link) {
  Require(IsValidLink(link), "AddVirtualChannel: link does not exist");
  ChannelId id(channels_.size());
  auto& vcs = link_channels_[link.value()];
  channels_.push_back(Channel{link, static_cast<std::uint32_t>(vcs.size())});
  vcs.push_back(id);
  return id;
}

const std::string& TopologyGraph::SwitchName(SwitchId s) const {
  Require(IsValidSwitch(s), "SwitchName: switch does not exist");
  return switch_names_[s.value()];
}

const Link& TopologyGraph::LinkAt(LinkId l) const {
  Require(IsValidLink(l), "LinkAt: link does not exist");
  return links_[l.value()];
}

const Channel& TopologyGraph::ChannelAt(ChannelId c) const {
  Require(IsValidChannel(c), "ChannelAt: channel does not exist");
  return channels_[c.value()];
}

const std::vector<ChannelId>& TopologyGraph::ChannelsOf(LinkId l) const {
  Require(IsValidLink(l), "ChannelsOf: link does not exist");
  return link_channels_[l.value()];
}

const std::vector<LinkId>& TopologyGraph::OutLinks(SwitchId s) const {
  Require(IsValidSwitch(s), "OutLinks: switch does not exist");
  return out_links_[s.value()];
}

const std::vector<LinkId>& TopologyGraph::InLinks(SwitchId s) const {
  Require(IsValidSwitch(s), "InLinks: switch does not exist");
  return in_links_[s.value()];
}

std::optional<LinkId> TopologyGraph::FindLink(SwitchId src,
                                              SwitchId dst) const {
  Require(IsValidSwitch(src) && IsValidSwitch(dst),
          "FindLink: switch does not exist");
  for (LinkId l : out_links_[src.value()]) {
    if (links_[l.value()].dst == dst) {
      return l;
    }
  }
  return std::nullopt;
}

std::optional<ChannelId> TopologyGraph::FindChannel(LinkId link,
                                                    std::uint32_t vc) const {
  Require(IsValidLink(link), "FindChannel: link does not exist");
  const auto& vcs = link_channels_[link.value()];
  if (vc >= vcs.size()) {
    return std::nullopt;
  }
  return vcs[vc];
}

std::string TopologyGraph::ChannelLabel(ChannelId c) const {
  const Channel& ch = ChannelAt(c);
  const Link& link = LinkAt(ch.link);
  return SwitchName(link.src) + "->" + SwitchName(link.dst) + ".vc" +
         std::to_string(ch.vc);
}

}  // namespace nocdr
