#include "noc/design.h"

#include "util/error.h"

namespace nocdr {

SwitchId NocDesign::SwitchOf(CoreId c) const {
  Require(traffic.IsValidCore(c), "SwitchOf: core does not exist");
  Require(c.value() < attachment.size(), "SwitchOf: core is not attached");
  return attachment[c.value()];
}

void NocDesign::Validate() const {
  Require(attachment.size() == traffic.CoreCount(),
          "Validate: attachment size does not match core count");
  for (std::size_t i = 0; i < attachment.size(); ++i) {
    Require(topology.IsValidSwitch(attachment[i]),
            "Validate: core " + std::to_string(i) +
                " attached to unknown switch");
  }
  Require(routes.FlowCount() == traffic.FlowCount(),
          "Validate: route set size does not match flow count");
  for (std::size_t i = 0; i < traffic.FlowCount(); ++i) {
    FlowId f(i);
    const Flow& flow = traffic.FlowAt(f);
    ValidateRoute(topology, routes.RouteOf(f), SwitchOf(flow.src),
                  SwitchOf(flow.dst), "flow " + std::to_string(i));
  }
}

std::vector<double> NocDesign::LinkLoads() const {
  std::vector<double> loads(topology.LinkCount(), 0.0);
  for (std::size_t i = 0; i < traffic.FlowCount(); ++i) {
    FlowId f(i);
    const double bw = traffic.FlowAt(f).bandwidth_mbps;
    for (ChannelId c : routes.RouteOf(f)) {
      loads[topology.ChannelAt(c).link.value()] += bw;
    }
  }
  return loads;
}

std::vector<FlowId> NocDesign::FlowsOnLink(LinkId link) const {
  std::vector<FlowId> result;
  for (std::size_t i = 0; i < traffic.FlowCount(); ++i) {
    FlowId f(i);
    for (ChannelId c : routes.RouteOf(f)) {
      if (topology.ChannelAt(c).link == link) {
        result.push_back(f);
        break;
      }
    }
  }
  return result;
}

}  // namespace nocdr
