#include "noc/routing.h"

#include <unordered_set>

#include "util/error.h"

namespace nocdr {

const Route& RouteSet::RouteOf(FlowId f) const {
  Require(f.valid() && f.value() < routes_.size(),
          "RouteOf: no route for flow");
  return routes_[f.value()];
}

Route& RouteSet::MutableRouteOf(FlowId f) {
  Require(f.valid() && f.value() < routes_.size(),
          "MutableRouteOf: no route for flow");
  return routes_[f.value()];
}

void RouteSet::SetRoute(FlowId f, Route route) {
  Require(f.valid() && f.value() < routes_.size(),
          "SetRoute: no slot for flow");
  routes_[f.value()] = std::move(route);
}

void ValidateRoute(const TopologyGraph& topology, const Route& route,
                   SwitchId src_switch, SwitchId dst_switch,
                   const std::string& what) {
  if (route.empty()) {
    Require(src_switch == dst_switch,
            what + ": empty route between distinct switches");
    return;
  }
  std::unordered_set<ChannelId> seen;
  for (std::size_t i = 0; i < route.size(); ++i) {
    Require(topology.IsValidChannel(route[i]),
            what + ": route references unknown channel");
    Require(seen.insert(route[i]).second,
            what + ": route repeats a channel (routing loop)");
  }
  const Link& first = topology.LinkAt(topology.ChannelAt(route.front()).link);
  Require(first.src == src_switch,
          what + ": route does not start at the source switch");
  const Link& last = topology.LinkAt(topology.ChannelAt(route.back()).link);
  Require(last.dst == dst_switch,
          what + ": route does not end at the destination switch");
  for (std::size_t i = 0; i + 1 < route.size(); ++i) {
    const Link& a = topology.LinkAt(topology.ChannelAt(route[i]).link);
    const Link& b = topology.LinkAt(topology.ChannelAt(route[i + 1]).link);
    Require(a.dst == b.src, what + ": discontiguous route at hop " +
                                std::to_string(i));
  }
}

}  // namespace nocdr
