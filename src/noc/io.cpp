#include "noc/io.h"

#include <istream>
#include <map>
#include <ostream>
#include <sstream>

#include "cdg/cdg.h"
#include "util/error.h"

namespace nocdr {

void WriteDesign(std::ostream& os, const NocDesign& design) {
  os << "noc " << (design.name.empty() ? "unnamed" : design.name) << "\n";
  const TopologyGraph& topo = design.topology;
  for (std::size_t s = 0; s < topo.SwitchCount(); ++s) {
    os << "switch " << topo.SwitchName(SwitchId(s)) << "\n";
  }
  for (std::size_t l = 0; l < topo.LinkCount(); ++l) {
    const Link& link = topo.LinkAt(LinkId(l));
    os << "link " << topo.SwitchName(link.src) << " "
       << topo.SwitchName(link.dst);
    const std::size_t vcs = topo.VcCount(LinkId(l));
    if (vcs != 1) {
      os << " " << vcs;
    }
    os << "\n";
  }
  const CommunicationGraph& traffic = design.traffic;
  for (std::size_t c = 0; c < traffic.CoreCount(); ++c) {
    os << "core " << traffic.CoreName(CoreId(c)) << " "
       << topo.SwitchName(design.SwitchOf(CoreId(c))) << "\n";
  }
  for (std::size_t f = 0; f < traffic.FlowCount(); ++f) {
    const Flow& flow = traffic.FlowAt(FlowId(f));
    os << "flow " << traffic.CoreName(flow.src) << " "
       << traffic.CoreName(flow.dst) << " " << flow.bandwidth_mbps << "\n";
  }
  for (std::size_t f = 0; f < traffic.FlowCount(); ++f) {
    os << "route " << f;
    for (ChannelId c : design.routes.RouteOf(FlowId(f))) {
      const Channel& ch = topo.ChannelAt(c);
      os << " " << ch.link.value() << ":" << ch.vc;
    }
    os << "\n";
  }
}

namespace {

[[noreturn]] void Fail(std::size_t line, const std::string& message) {
  throw DesignParseError("line " + std::to_string(line) + ": " + message);
}

}  // namespace

NocDesign ReadDesign(std::istream& is) {
  NocDesign design;
  std::map<std::string, SwitchId> switch_by_name;
  std::map<std::string, CoreId> core_by_name;
  std::size_t routes_seen = 0;

  std::string raw;
  std::size_t line_no = 0;
  while (std::getline(is, raw)) {
    ++line_no;
    const auto hash = raw.find('#');
    if (hash != std::string::npos) {
      raw.erase(hash);
    }
    std::istringstream line(raw);
    std::string keyword;
    if (!(line >> keyword)) {
      continue;  // blank or comment-only
    }
    if (keyword == "noc") {
      if (!(line >> design.name)) {
        Fail(line_no, "noc: missing name");
      }
    } else if (keyword == "switch") {
      std::string name;
      if (!(line >> name)) {
        Fail(line_no, "switch: missing name");
      }
      if (switch_by_name.contains(name)) {
        Fail(line_no, "switch: duplicate name '" + name + "'");
      }
      switch_by_name.emplace(name, design.topology.AddSwitch(name));
    } else if (keyword == "link") {
      std::string src, dst;
      if (!(line >> src >> dst)) {
        Fail(line_no, "link: expected two switch names");
      }
      const auto si = switch_by_name.find(src);
      const auto di = switch_by_name.find(dst);
      if (si == switch_by_name.end() || di == switch_by_name.end()) {
        Fail(line_no, "link: unknown switch");
      }
      const LinkId l = design.topology.AddLink(si->second, di->second);
      std::size_t vcs = 1;
      if (line >> vcs) {
        if (vcs < 1) {
          Fail(line_no, "link: vc count must be >= 1");
        }
        for (std::size_t v = 1; v < vcs; ++v) {
          design.topology.AddVirtualChannel(l);
        }
      }
    } else if (keyword == "core") {
      std::string name, sw;
      if (!(line >> name >> sw)) {
        Fail(line_no, "core: expected name and switch");
      }
      const auto si = switch_by_name.find(sw);
      if (si == switch_by_name.end()) {
        Fail(line_no, "core: unknown switch '" + sw + "'");
      }
      if (core_by_name.contains(name)) {
        Fail(line_no, "core: duplicate name '" + name + "'");
      }
      core_by_name.emplace(name, design.traffic.AddCore(name));
      design.attachment.push_back(si->second);
    } else if (keyword == "flow") {
      std::string src, dst;
      double bandwidth = 0.0;
      if (!(line >> src >> dst >> bandwidth)) {
        Fail(line_no, "flow: expected two cores and a bandwidth");
      }
      const auto si = core_by_name.find(src);
      const auto di = core_by_name.find(dst);
      if (si == core_by_name.end() || di == core_by_name.end()) {
        Fail(line_no, "flow: unknown core");
      }
      design.traffic.AddFlow(si->second, di->second, bandwidth);
      design.routes.Resize(design.traffic.FlowCount());
    } else if (keyword == "route") {
      std::size_t flow_index = 0;
      if (!(line >> flow_index) ||
          flow_index >= design.traffic.FlowCount()) {
        Fail(line_no, "route: bad flow index");
      }
      Route route;
      std::string hop;
      while (line >> hop) {
        const auto colon = hop.find(':');
        if (colon == std::string::npos) {
          Fail(line_no, "route: hop must be <link>:<vc>");
        }
        std::size_t link_index = 0, vc = 0;
        try {
          link_index = std::stoul(hop.substr(0, colon));
          vc = std::stoul(hop.substr(colon + 1));
        } catch (const std::exception&) {
          Fail(line_no, "route: malformed hop '" + hop + "'");
        }
        if (link_index >= design.topology.LinkCount()) {
          Fail(line_no, "route: unknown link " + std::to_string(link_index));
        }
        const auto channel = design.topology.FindChannel(
            LinkId(link_index), static_cast<std::uint32_t>(vc));
        if (!channel) {
          Fail(line_no, "route: link " + std::to_string(link_index) +
                            " has no vc " + std::to_string(vc));
        }
        route.push_back(*channel);
      }
      design.routes.SetRoute(FlowId(flow_index), std::move(route));
      ++routes_seen;
    } else {
      Fail(line_no, "unknown keyword '" + keyword + "'");
    }
  }
  if (routes_seen != design.traffic.FlowCount()) {
    throw DesignParseError("missing route lines: " +
                           std::to_string(routes_seen) + " of " +
                           std::to_string(design.traffic.FlowCount()));
  }
  design.Validate();
  return design;
}

void WriteTopologyDot(std::ostream& os, const NocDesign& design) {
  const TopologyGraph& topo = design.topology;
  os << "digraph topology {\n  rankdir=LR;\n  node [shape=box];\n";
  for (std::size_t s = 0; s < topo.SwitchCount(); ++s) {
    os << "  s" << s << " [label=\"" << topo.SwitchName(SwitchId(s))
       << "\"];\n";
  }
  for (std::size_t l = 0; l < topo.LinkCount(); ++l) {
    const Link& link = topo.LinkAt(LinkId(l));
    os << "  s" << link.src.value() << " -> s" << link.dst.value()
       << " [label=\"x" << topo.VcCount(LinkId(l)) << "\"];\n";
  }
  os << "}\n";
}

void WriteCdgDot(std::ostream& os, const NocDesign& design) {
  const auto cdg = ChannelDependencyGraph::Build(design);
  os << "digraph cdg {\n  node [shape=ellipse];\n";
  for (std::size_t c = 0; c < design.topology.ChannelCount(); ++c) {
    os << "  c" << c << " [label=\""
       << design.topology.ChannelLabel(ChannelId(c)) << "\"];\n";
  }
  for (const CdgEdge& e : cdg.Edges()) {
    os << "  c" << e.from.value() << " -> c" << e.to.value()
       << " [label=\"";
    for (std::size_t i = 0; i < e.flows.size(); ++i) {
      os << (i ? "," : "") << "F" << e.flows[i].value();
    }
    os << "\"];\n";
  }
  os << "}\n";
}

}  // namespace nocdr
