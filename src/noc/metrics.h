// Design metrics: the structural quantities reported alongside the
// deadlock experiments (route lengths, channel counts, link utilization
// spread, switch degrees). Pure functions over a NocDesign; used by the
// benches, the examples and the CLI tool.
#pragma once

#include <cstddef>
#include <vector>

#include "noc/design.h"

namespace nocdr {

/// Aggregate structural statistics of one design.
struct DesignMetrics {
  std::size_t switches = 0;
  std::size_t links = 0;
  std::size_t channels = 0;
  std::size_t extra_vcs = 0;
  std::size_t cores = 0;
  std::size_t flows = 0;

  double avg_route_hops = 0.0;   // over flows with non-empty routes
  std::size_t max_route_hops = 0;
  std::size_t local_flows = 0;   // flows with empty routes

  std::size_t max_vcs_per_link = 0;
  double avg_vcs_per_link = 0.0;

  std::size_t max_switch_degree = 0;  // in + out links
  double avg_switch_degree = 0.0;

  /// Max and mean bandwidth crossing a link (MB/s).
  double max_link_load = 0.0;
  double avg_link_load = 0.0;
  /// Coefficient of variation of link loads: 0 = perfectly balanced.
  double link_load_cv = 0.0;
};

/// Computes all metrics of \p design (which must Validate()).
DesignMetrics ComputeMetrics(const NocDesign& design);

/// Histogram of route lengths: result[h] = number of flows with h hops.
std::vector<std::size_t> RouteLengthHistogram(const NocDesign& design);

}  // namespace nocdr
