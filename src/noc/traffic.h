// Communication graph: cores and the flows between them.
//
// Mirrors Definition 2 of the paper: G(V, E) is a directed graph whose
// vertices are cores and whose edges are communication flows. Each flow
// carries a bandwidth demand (MB/s) used by the synthesizer (link capacity
// aware routing) and the power model (switching activity).
#pragma once

#include <string>
#include <vector>

#include "util/ids.h"

namespace nocdr {

/// One directed communication flow between two cores.
struct Flow {
  CoreId src;
  CoreId dst;
  double bandwidth_mbps = 0.0;
};

/// The application's core set and flow set.
class CommunicationGraph {
 public:
  /// Adds a core. \p name is used in diagnostics and reports.
  CoreId AddCore(std::string name = {});

  /// Adds a flow from \p src to \p dst with \p bandwidth_mbps demand.
  /// Self-flows are rejected; parallel flows between the same pair are
  /// allowed (they may use different routes).
  FlowId AddFlow(CoreId src, CoreId dst, double bandwidth_mbps);

  [[nodiscard]] std::size_t CoreCount() const { return core_names_.size(); }
  [[nodiscard]] std::size_t FlowCount() const { return flows_.size(); }

  [[nodiscard]] const std::string& CoreName(CoreId c) const;
  [[nodiscard]] const Flow& FlowAt(FlowId f) const;

  /// Flows leaving / entering a core.
  [[nodiscard]] const std::vector<FlowId>& OutFlows(CoreId c) const;
  [[nodiscard]] const std::vector<FlowId>& InFlows(CoreId c) const;

  /// Sum of all flow bandwidths.
  [[nodiscard]] double TotalBandwidth() const;

  [[nodiscard]] bool IsValidCore(CoreId c) const {
    return c.valid() && c.value() < CoreCount();
  }
  [[nodiscard]] bool IsValidFlow(FlowId f) const {
    return f.valid() && f.value() < FlowCount();
  }

 private:
  std::vector<std::string> core_names_;
  std::vector<Flow> flows_;
  std::vector<std::vector<FlowId>> out_flows_;  // indexed by CoreId
  std::vector<std::vector<FlowId>> in_flows_;   // indexed by CoreId
};

}  // namespace nocdr
