// Routes: ordered channel sequences for each flow (Definition 3).
//
// A route is the ordered set of channels a packet of one flow traverses
// from the source core's switch to the destination core's switch. Routes
// are *static* per flow (table/source routing), which is the setting in
// which the CDG-acyclicity condition of Dally/Towles is both necessary and
// sufficient for deadlock freedom.
#pragma once

#include <vector>

#include "noc/topology.h"
#include "noc/traffic.h"
#include "util/ids.h"

namespace nocdr {

/// Ordered channels traversed by one flow; empty for intra-switch flows.
using Route = std::vector<ChannelId>;

/// Per-flow routes, indexed by FlowId.
class RouteSet {
 public:
  RouteSet() = default;
  explicit RouteSet(std::size_t flow_count) : routes_(flow_count) {}

  void Resize(std::size_t flow_count) { routes_.resize(flow_count); }

  [[nodiscard]] std::size_t FlowCount() const { return routes_.size(); }

  [[nodiscard]] const Route& RouteOf(FlowId f) const;
  [[nodiscard]] Route& MutableRouteOf(FlowId f);

  void SetRoute(FlowId f, Route route);

 private:
  std::vector<Route> routes_;
};

/// Checks that \p route is structurally sound against \p topology:
/// channels exist, consecutive channels are link-contiguous
/// (link[i].dst == link[i+1].src), no channel repeats, and the route
/// starts at \p src_switch and ends at \p dst_switch (an empty route
/// requires src == dst). Throws InvalidModelError on violation;
/// \p what names the route in the error message.
void ValidateRoute(const TopologyGraph& topology, const Route& route,
                   SwitchId src_switch, SwitchId dst_switch,
                   const std::string& what);

}  // namespace nocdr
