// NocDesign: the complete problem instance the paper operates on.
//
// Bundles the topology graph TG(S, L), the communication graph G(V, E),
// the core-to-switch attachment and the per-flow routes R_k. This is the
// input and output type of the deadlock removal algorithm: removal mutates
// the topology (adds VCs) and the routes, never the traffic.
#pragma once

#include <string>
#include <vector>

#include "noc/routing.h"
#include "noc/topology.h"
#include "noc/traffic.h"

namespace nocdr {

/// A complete NoC design instance.
struct NocDesign {
  std::string name;
  TopologyGraph topology;
  CommunicationGraph traffic;
  /// attachment[core] = switch the core's network interface connects to.
  std::vector<SwitchId> attachment;
  RouteSet routes;

  /// Switch a core attaches to.
  [[nodiscard]] SwitchId SwitchOf(CoreId c) const;

  /// Full structural validation: attachment completeness, route presence
  /// and per-route soundness (see ValidateRoute). Throws
  /// InvalidModelError with a descriptive message on the first violation.
  void Validate() const;

  /// Total bandwidth (MB/s) crossing each link, from flow demands.
  [[nodiscard]] std::vector<double> LinkLoads() const;

  /// Flows whose route traverses at least one channel of \p link.
  [[nodiscard]] std::vector<FlowId> FlowsOnLink(LinkId link) const;
};

}  // namespace nocdr
