#include "noc/traffic.h"

#include "util/error.h"

namespace nocdr {

CoreId CommunicationGraph::AddCore(std::string name) {
  CoreId id(core_names_.size());
  if (name.empty()) {
    name = "core" + std::to_string(id.value());
  }
  core_names_.push_back(std::move(name));
  out_flows_.emplace_back();
  in_flows_.emplace_back();
  return id;
}

FlowId CommunicationGraph::AddFlow(CoreId src, CoreId dst,
                                   double bandwidth_mbps) {
  Require(IsValidCore(src) && IsValidCore(dst),
          "AddFlow: endpoint core does not exist");
  Require(src != dst, "AddFlow: self-flows are not allowed");
  Require(bandwidth_mbps >= 0.0, "AddFlow: negative bandwidth");
  FlowId id(flows_.size());
  flows_.push_back(Flow{src, dst, bandwidth_mbps});
  out_flows_[src.value()].push_back(id);
  in_flows_[dst.value()].push_back(id);
  return id;
}

const std::string& CommunicationGraph::CoreName(CoreId c) const {
  Require(IsValidCore(c), "CoreName: core does not exist");
  return core_names_[c.value()];
}

const Flow& CommunicationGraph::FlowAt(FlowId f) const {
  Require(IsValidFlow(f), "FlowAt: flow does not exist");
  return flows_[f.value()];
}

const std::vector<FlowId>& CommunicationGraph::OutFlows(CoreId c) const {
  Require(IsValidCore(c), "OutFlows: core does not exist");
  return out_flows_[c.value()];
}

const std::vector<FlowId>& CommunicationGraph::InFlows(CoreId c) const {
  Require(IsValidCore(c), "InFlows: core does not exist");
  return in_flows_[c.value()];
}

double CommunicationGraph::TotalBandwidth() const {
  double total = 0.0;
  for (const Flow& f : flows_) {
    total += f.bandwidth_mbps;
  }
  return total;
}

}  // namespace nocdr
