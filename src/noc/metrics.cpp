#include "noc/metrics.h"

#include <algorithm>
#include <cmath>

namespace nocdr {

DesignMetrics ComputeMetrics(const NocDesign& design) {
  DesignMetrics m;
  const TopologyGraph& topo = design.topology;
  m.switches = topo.SwitchCount();
  m.links = topo.LinkCount();
  m.channels = topo.ChannelCount();
  m.extra_vcs = topo.ExtraVcCount();
  m.cores = design.traffic.CoreCount();
  m.flows = design.traffic.FlowCount();

  std::size_t routed_flows = 0, hop_sum = 0;
  for (std::size_t fi = 0; fi < m.flows; ++fi) {
    const std::size_t hops = design.routes.RouteOf(FlowId(fi)).size();
    if (hops == 0) {
      ++m.local_flows;
      continue;
    }
    ++routed_flows;
    hop_sum += hops;
    m.max_route_hops = std::max(m.max_route_hops, hops);
  }
  if (routed_flows > 0) {
    m.avg_route_hops =
        static_cast<double>(hop_sum) / static_cast<double>(routed_flows);
  }

  for (std::size_t l = 0; l < m.links; ++l) {
    const std::size_t vcs = topo.VcCount(LinkId(l));
    m.max_vcs_per_link = std::max(m.max_vcs_per_link, vcs);
  }
  if (m.links > 0) {
    m.avg_vcs_per_link =
        static_cast<double>(m.channels) / static_cast<double>(m.links);
  }

  std::size_t degree_sum = 0;
  for (std::size_t s = 0; s < m.switches; ++s) {
    const std::size_t degree = topo.OutLinks(SwitchId(s)).size() +
                               topo.InLinks(SwitchId(s)).size();
    degree_sum += degree;
    m.max_switch_degree = std::max(m.max_switch_degree, degree);
  }
  if (m.switches > 0) {
    m.avg_switch_degree =
        static_cast<double>(degree_sum) / static_cast<double>(m.switches);
  }

  const auto loads = design.LinkLoads();
  if (!loads.empty()) {
    double sum = 0.0;
    for (double load : loads) {
      sum += load;
      m.max_link_load = std::max(m.max_link_load, load);
    }
    m.avg_link_load = sum / static_cast<double>(loads.size());
    if (m.avg_link_load > 0.0) {
      double var = 0.0;
      for (double load : loads) {
        const double d = load - m.avg_link_load;
        var += d * d;
      }
      var /= static_cast<double>(loads.size());
      m.link_load_cv = std::sqrt(var) / m.avg_link_load;
    }
  }
  return m;
}

std::vector<std::size_t> RouteLengthHistogram(const NocDesign& design) {
  std::vector<std::size_t> histogram;
  for (std::size_t fi = 0; fi < design.traffic.FlowCount(); ++fi) {
    const std::size_t hops = design.routes.RouteOf(FlowId(fi)).size();
    if (hops >= histogram.size()) {
      histogram.resize(hops + 1, 0);
    }
    ++histogram[hops];
  }
  return histogram;
}

}  // namespace nocdr
