// Topology graph: switches, directed physical links, and channels.
//
// Mirrors Definition 1 of the paper: TG(S, L) is a directed graph whose
// vertices are switches and whose edges are physical links. On top of the
// physical structure we track *channels* (Definition 3/4): a channel is one
// (physical link, virtual-channel index) pair, and channels — not links —
// are the vertices of the channel dependency graph and the unit of resource
// accounting (the paper minimizes |L'| - |L|, i.e. the number of channels
// added beyond the one implicit channel per link).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/ids.h"

namespace nocdr {

/// One directed physical link between two switches.
struct Link {
  SwitchId src;
  SwitchId dst;
};

/// One channel: a physical link plus a virtual-channel index on that link.
struct Channel {
  LinkId link;
  std::uint32_t vc = 0;

  friend bool operator==(const Channel&, const Channel&) = default;
};

/// Directed switch-level topology with per-link virtual channels.
///
/// Switches and links are append-only; channels can be appended to any link
/// (that is exactly the "add a VC" operation of the deadlock removal
/// algorithm). Every link starts with one channel (VC 0).
class TopologyGraph {
 public:
  /// Adds a switch. \p name is used only for diagnostics and reports.
  SwitchId AddSwitch(std::string name = {});

  /// Adds a directed physical link from \p src to \p dst and its implicit
  /// first channel (VC 0). Self-loops are rejected.
  LinkId AddLink(SwitchId src, SwitchId dst);

  /// Adds one more virtual channel to \p link; returns the new channel.
  ChannelId AddVirtualChannel(LinkId link);

  [[nodiscard]] std::size_t SwitchCount() const { return switch_names_.size(); }
  [[nodiscard]] std::size_t LinkCount() const { return links_.size(); }
  [[nodiscard]] std::size_t ChannelCount() const { return channels_.size(); }

  /// Channels added beyond the one implicit channel per link; this is the
  /// paper's cost metric |L'| - |L|.
  [[nodiscard]] std::size_t ExtraVcCount() const {
    return ChannelCount() - LinkCount();
  }

  [[nodiscard]] const std::string& SwitchName(SwitchId s) const;
  [[nodiscard]] const Link& LinkAt(LinkId l) const;
  [[nodiscard]] const Channel& ChannelAt(ChannelId c) const;

  /// All channels multiplexed onto \p link, in VC order.
  [[nodiscard]] const std::vector<ChannelId>& ChannelsOf(LinkId l) const;

  /// Number of VCs currently on \p link.
  [[nodiscard]] std::size_t VcCount(LinkId l) const {
    return ChannelsOf(l).size();
  }

  /// Outgoing / incoming physical links of a switch.
  [[nodiscard]] const std::vector<LinkId>& OutLinks(SwitchId s) const;
  [[nodiscard]] const std::vector<LinkId>& InLinks(SwitchId s) const;

  /// First link from \p src to \p dst if one exists.
  [[nodiscard]] std::optional<LinkId> FindLink(SwitchId src,
                                               SwitchId dst) const;

  /// The channel (\p link, \p vc) if that VC exists.
  [[nodiscard]] std::optional<ChannelId> FindChannel(LinkId link,
                                                     std::uint32_t vc) const;

  [[nodiscard]] bool IsValidSwitch(SwitchId s) const {
    return s.valid() && s.value() < SwitchCount();
  }
  [[nodiscard]] bool IsValidLink(LinkId l) const {
    return l.valid() && l.value() < LinkCount();
  }
  [[nodiscard]] bool IsValidChannel(ChannelId c) const {
    return c.valid() && c.value() < ChannelCount();
  }

  /// Human-readable channel label, e.g. "SW0->SW3.vc1".
  [[nodiscard]] std::string ChannelLabel(ChannelId c) const;

 private:
  std::vector<std::string> switch_names_;
  std::vector<Link> links_;
  std::vector<Channel> channels_;
  std::vector<std::vector<ChannelId>> link_channels_;  // indexed by LinkId
  std::vector<std::vector<LinkId>> out_links_;         // indexed by SwitchId
  std::vector<std::vector<LinkId>> in_links_;          // indexed by SwitchId
};

}  // namespace nocdr
