// Serialization: a line-oriented text format for complete designs, plus
// Graphviz exports for topologies and channel dependency graphs.
//
// The text format makes the library usable as a standalone tool — a
// designer can describe a hand-made irregular topology with its routes in
// a file, run the deadlock remover, and write the repaired design back.
//
//   noc <name>
//   switch <name>                      # index order = declaration order
//   link <src_switch> <dst_switch> [vc_count]
//   core <name> <switch_name>
//   flow <src_core> <dst_core> <bandwidth_mbps>
//   route <flow_index> <link_index>:<vc> ...
//
// '#' starts a comment; blank lines are ignored. Every flow must receive
// exactly one route line (possibly with zero hops).
#pragma once

#include <iosfwd>
#include <string>

#include "noc/design.h"

namespace nocdr {

/// Raised on malformed input to ReadDesign.
class DesignParseError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Writes \p design in the text format above (stable, diff-friendly).
void WriteDesign(std::ostream& os, const NocDesign& design);

/// Parses a design written by WriteDesign (or by hand). The result is
/// fully validated. Throws DesignParseError with line information on
/// malformed input, InvalidModelError on structurally bad designs.
NocDesign ReadDesign(std::istream& is);

/// Graphviz (dot) rendering of the switch topology: switches as nodes,
/// links as edges labelled with their VC count.
void WriteTopologyDot(std::ostream& os, const NocDesign& design);

/// Graphviz rendering of the channel dependency graph: channels as
/// nodes, dependencies as edges labelled with the flows creating them.
void WriteCdgDot(std::ostream& os, const NocDesign& design);

}  // namespace nocdr
