// End-to-end application-specific NoC synthesis.
//
// Partition cores onto switches, build the irregular switch topology,
// compute static routes — producing the NocDesign instances the deadlock
// experiments run on. Stands in for the closed-source synthesis flow the
// paper cites ([9]); see DESIGN.md for the substitution rationale.
#pragma once

#include <cstddef>
#include <string>

#include "noc/design.h"
#include "synth/partition.h"
#include "synth/route_builder.h"
#include "synth/topology_builder.h"

namespace nocdr {

struct SynthesisOptions {
  PartitionOptions partition;
  TopologyBuildOptions topology;
  RouteBuildOptions routing;
};

/// Synthesizes a complete, validated design named
/// "<traffic name>@<switch_count>sw" for \p traffic on \p switch_count
/// switches. The result has one VC per link; it is *not* guaranteed
/// deadlock-free — that is the job of the removal methods.
NocDesign SynthesizeDesign(const CommunicationGraph& traffic,
                           const std::string& name, std::size_t switch_count,
                           const SynthesisOptions& options = {});

}  // namespace nocdr
