// Switch-level topology construction.
//
// Second stage of application-specific synthesis: given the core
// partition, build the directed switch graph. A maximum-bandwidth
// spanning tree guarantees connectivity (links added in both directions);
// additional direct links are then opened for the heaviest inter-switch
// demands, subject to a per-switch degree budget — exactly the kind of
// link-count-constrained irregular topology the paper targets (cf. its
// discussion of [21], where technology limits the number of links).
#pragma once

#include <cstddef>
#include <vector>

#include "noc/topology.h"
#include "noc/traffic.h"
#include "util/ids.h"

namespace nocdr {

struct TopologyBuildOptions {
  /// Maximum number of switch-to-switch links (in + out) per switch.
  std::size_t max_switch_degree = 8;
  /// Shortcut links to add beyond the spanning tree, as a fraction of the
  /// switch count (rounded down). Denser traffic benefits from more.
  double shortcut_factor = 1.0;
};

/// Builds the directed switch topology for \p switch_count switches given
/// \p attachment (from PartitionCores) and the traffic. Switch names are
/// "SW<i>". Every inter-switch flow has a directed path by construction.
TopologyGraph BuildSwitchTopology(const CommunicationGraph& traffic,
                                  const std::vector<SwitchId>& attachment,
                                  std::size_t switch_count,
                                  const TopologyBuildOptions& options = {});

/// Demand matrix helper: total bandwidth from switch s to switch t.
std::vector<std::vector<double>> InterSwitchDemand(
    const CommunicationGraph& traffic, const std::vector<SwitchId>& attachment,
    std::size_t switch_count);

}  // namespace nocdr
