#include "synth/partition.h"

#include <algorithm>
#include <numeric>

#include "util/error.h"

namespace nocdr {

namespace {

/// Symmetric core-to-core bandwidth lookup.
class AffinityMatrix {
 public:
  explicit AffinityMatrix(const CommunicationGraph& traffic)
      : n_(traffic.CoreCount()), w_(n_ * n_, 0.0) {
    for (std::size_t i = 0; i < traffic.FlowCount(); ++i) {
      const Flow& f = traffic.FlowAt(FlowId(i));
      At(f.src.value(), f.dst.value()) += f.bandwidth_mbps;
      At(f.dst.value(), f.src.value()) += f.bandwidth_mbps;
    }
  }

  [[nodiscard]] double Between(std::size_t a, std::size_t b) const {
    return w_[a * n_ + b];
  }

 private:
  double& At(std::size_t a, std::size_t b) { return w_[a * n_ + b]; }

  std::size_t n_;
  std::vector<double> w_;
};

}  // namespace

std::vector<SwitchId> PartitionCores(const CommunicationGraph& traffic,
                                     std::size_t switch_count,
                                     const PartitionOptions& options) {
  const std::size_t cores = traffic.CoreCount();
  Require(switch_count >= 1, "PartitionCores: need at least one switch");
  Require(switch_count <= cores,
          "PartitionCores: more switches than cores");

  std::size_t capacity = options.max_cores_per_switch;
  if (capacity == 0) {
    capacity = (cores + switch_count - 1) / switch_count;
  }
  Require(capacity * switch_count >= cores,
          "PartitionCores: capacity too small to place all cores");

  const AffinityMatrix affinity(traffic);

  // Seed order: heaviest communicators first, so the hubs anchor clusters.
  std::vector<std::size_t> order(cores);
  std::iota(order.begin(), order.end(), 0);
  std::vector<double> volume(cores, 0.0);
  for (std::size_t i = 0; i < traffic.FlowCount(); ++i) {
    const Flow& f = traffic.FlowAt(FlowId(i));
    volume[f.src.value()] += f.bandwidth_mbps;
    volume[f.dst.value()] += f.bandwidth_mbps;
  }
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return volume[a] > volume[b];
                   });

  constexpr std::size_t kUnassigned = static_cast<std::size_t>(-1);
  std::vector<std::size_t> cluster_of(cores, kUnassigned);
  std::vector<std::vector<std::size_t>> members(switch_count);

  // The first switch_count cores each seed one cluster, guaranteeing no
  // switch is left empty.
  for (std::size_t s = 0; s < switch_count; ++s) {
    cluster_of[order[s]] = s;
    members[s].push_back(order[s]);
  }
  for (std::size_t oi = switch_count; oi < cores; ++oi) {
    const std::size_t core = order[oi];
    double best_gain = -1.0;
    std::size_t best_cluster = 0;
    for (std::size_t s = 0; s < switch_count; ++s) {
      if (members[s].size() >= capacity) {
        continue;
      }
      double gain = 0.0;
      for (std::size_t other : members[s]) {
        gain += affinity.Between(core, other);
      }
      // Prefer higher affinity; among ties, the emptier cluster (keeps
      // switch port counts balanced).
      if (gain > best_gain ||
          (gain == best_gain &&
           members[s].size() < members[best_cluster].size())) {
        best_gain = gain;
        best_cluster = s;
      }
    }
    cluster_of[core] = best_cluster;
    members[best_cluster].push_back(core);
  }

  // Pairwise-swap refinement: swap two cores in different clusters when
  // that increases total intra-cluster affinity.
  auto internal_gain = [&](std::size_t core, std::size_t cluster) {
    double g = 0.0;
    for (std::size_t other : members[cluster]) {
      if (other != core) {
        g += affinity.Between(core, other);
      }
    }
    return g;
  };
  for (std::size_t pass = 0; pass < options.refinement_passes; ++pass) {
    bool improved = false;
    for (std::size_t a = 0; a < cores; ++a) {
      for (std::size_t b = a + 1; b < cores; ++b) {
        const std::size_t ca = cluster_of[a];
        const std::size_t cb = cluster_of[b];
        if (ca == cb) {
          continue;
        }
        const double before = internal_gain(a, ca) + internal_gain(b, cb);
        const double cross = affinity.Between(a, b);
        // After the swap, a joins cb and b joins ca; the pair's mutual
        // affinity stays external either way, so subtract it out.
        const double after = internal_gain(a, cb) - cross +
                             internal_gain(b, ca) - cross;
        if (after > before + 1e-9) {
          std::erase(members[ca], a);
          std::erase(members[cb], b);
          members[cb].push_back(a);
          members[ca].push_back(b);
          cluster_of[a] = cb;
          cluster_of[b] = ca;
          improved = true;
        }
      }
    }
    if (!improved) {
      break;
    }
  }

  std::vector<SwitchId> attachment(cores);
  for (std::size_t c = 0; c < cores; ++c) {
    attachment[c] = SwitchId(cluster_of[c]);
  }
  return attachment;
}

double CutBandwidth(const CommunicationGraph& traffic,
                    const std::vector<SwitchId>& attachment) {
  double cut = 0.0;
  for (std::size_t i = 0; i < traffic.FlowCount(); ++i) {
    const Flow& f = traffic.FlowAt(FlowId(i));
    if (attachment[f.src.value()] != attachment[f.dst.value()]) {
      cut += f.bandwidth_mbps;
    }
  }
  return cut;
}

}  // namespace nocdr
