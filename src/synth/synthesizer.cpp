#include "synth/synthesizer.h"

namespace nocdr {

NocDesign SynthesizeDesign(const CommunicationGraph& traffic,
                           const std::string& name, std::size_t switch_count,
                           const SynthesisOptions& options) {
  NocDesign design;
  design.name = name + "@" + std::to_string(switch_count) + "sw";
  design.traffic = traffic;
  design.attachment =
      PartitionCores(traffic, switch_count, options.partition);
  design.topology = BuildSwitchTopology(traffic, design.attachment,
                                        switch_count, options.topology);
  design.routes = BuildRoutes(design.topology, traffic, design.attachment,
                              options.routing);
  design.Validate();
  return design;
}

}  // namespace nocdr
