// Static route computation over the synthesized switch topology.
//
// Congestion-aware Dijkstra: flows are routed heaviest-first; each link's
// weight is 1 (hop) plus a penalty proportional to the bandwidth already
// committed to it relative to its capacity. Heavier traffic therefore
// spreads across parallel paths, which produces the irregular multi-path
// route sets on which cyclic channel dependencies arise — the situation
// the paper's algorithm exists to fix. Every route uses VC 0 of each link
// (the implicit channel); VCs beyond that are added only by the deadlock
// handling methods.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "noc/design.h"
#include "noc/routing.h"
#include "noc/topology.h"
#include "noc/traffic.h"

namespace nocdr {

struct RouteBuildOptions {
  /// Nominal link capacity (MB/s) for the congestion penalty.
  double link_capacity_mbps = 1600.0;
  /// Weight of the congestion term relative to a hop; 0 disables
  /// load-aware routing (pure shortest path).
  double congestion_weight = 2.0;
};

/// Computes a route for every flow of \p traffic over \p topology.
/// Throws InvalidModelError if some flow's endpoints are not connected.
RouteSet BuildRoutes(const TopologyGraph& topology,
                     const CommunicationGraph& traffic,
                     const std::vector<SwitchId>& attachment,
                     const RouteBuildOptions& options = {});

/// Deterministic distributed routing table: table[s][d] is the outgoing
/// link switch \p s forwards toward destination switch \p d (invalid
/// LinkId on the diagonal and for unreachable pairs). This is the form
/// classical structured-topology policies take — dimension-ordered XY on
/// a mesh/torus, up-then-down on a tree — where every hop is a pure
/// function of (current switch, destination), unlike the per-flow
/// congestion-aware paths of BuildRoutes.
using NextHopTable = std::vector<std::vector<LinkId>>;

/// Checks that \p table is shaped switch_count x switch_count, that every
/// entry is either invalid or a link actually leaving its row's switch,
/// and that following the table from any switch reaches any destination
/// with a filled row without revisiting a switch (i.e. the table is
/// complete and loop-free for every reachable pair). Throws
/// InvalidModelError on the first violation.
void ValidateNextHopTable(const TopologyGraph& topology,
                          const NextHopTable& table);

/// Expands \p table into one static route per flow of \p traffic: walks
/// table[s][dst] hop by hop from each flow's source switch, always on
/// VC 0 (the implicit channel; extra VCs are the deadlock methods' job).
/// Throws InvalidModelError when the table has no entry for a hop some
/// flow needs or a walk exceeds the switch count (a routing loop).
RouteSet BuildTableRoutes(const TopologyGraph& topology,
                          const CommunicationGraph& traffic,
                          const std::vector<SwitchId>& attachment,
                          const NextHopTable& table);

// ------------------------------------------------------------------------
// Fault-driven re-routing (src/fault). Failed links and switches are
// boolean masks indexed by LinkId / SwitchId; an empty mask means nothing
// has failed. A link is unusable when its own entry is set or either of
// its endpoint switches has failed.

/// Expands table[src][dst] hop by hop into a VC-0 route, like
/// BuildTableRoutes does for whole flows. Returns nullopt instead of
/// throwing when the table has a hole on the walk or the walk exceeds
/// the switch count — the caller (the fault detour policy) falls back to
/// rip-up-and-reroute for exactly those pairs.
std::optional<Route> WalkTableRoute(const TopologyGraph& topology,
                                    const NextHopTable& table, SwitchId src,
                                    SwitchId dst);

/// Table-driven detour repair: re-points every next-hop entry whose walk
/// no longer survives the failure masks. Per destination, sources whose
/// current walk traverses a failed link or switch (or a hole left by an
/// earlier patch) are re-aimed along a shortest path over the surviving
/// links (backward BFS from the destination, lowest link id wins ties);
/// intact entries are left untouched, so unaffected traffic keeps its
/// routes — the "detour" character of table-based fault recovery.
/// Entries from or to failed switches are invalidated. Patched tables
/// stay loop-free: a patched prefix strictly descends the surviving-
/// distance to the destination and hands over to an intact suffix.
/// Returns the number of previously-routable (src, dst) pairs the
/// failures disconnected (their entries become invalid).
std::size_t PatchNextHopTable(const TopologyGraph& topology,
                              NextHopTable& table,
                              const std::vector<char>& failed_links,
                              const std::vector<char>& failed_switches);

/// Rip-up-and-reroute fallback: recomputes the routes of \p flows over
/// the surviving topology with the same congestion-aware Dijkstra as
/// BuildRoutes. The listed flows' bandwidth is ripped out of the
/// congestion picture first, then they are re-routed heaviest-first
/// (stable by flow id) against the bandwidth committed by every other
/// flow, accumulating their own as they land. New routes use VC 0 of
/// each surviving link; extra VCs remain the deadlock methods' job.
/// Throws InvalidModelError when some flow's endpoints are disconnected
/// by the failures — callers decide feasibility first (src/fault).
void RerouteFlows(NocDesign& design, const std::vector<FlowId>& flows,
                  const std::vector<char>& failed_links,
                  const std::vector<char>& failed_switches,
                  const RouteBuildOptions& options = {});

}  // namespace nocdr
