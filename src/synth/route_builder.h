// Static route computation over the synthesized switch topology.
//
// Congestion-aware Dijkstra: flows are routed heaviest-first; each link's
// weight is 1 (hop) plus a penalty proportional to the bandwidth already
// committed to it relative to its capacity. Heavier traffic therefore
// spreads across parallel paths, which produces the irregular multi-path
// route sets on which cyclic channel dependencies arise — the situation
// the paper's algorithm exists to fix. Every route uses VC 0 of each link
// (the implicit channel); VCs beyond that are added only by the deadlock
// handling methods.
#pragma once

#include <vector>

#include "noc/design.h"
#include "noc/routing.h"
#include "noc/topology.h"
#include "noc/traffic.h"

namespace nocdr {

struct RouteBuildOptions {
  /// Nominal link capacity (MB/s) for the congestion penalty.
  double link_capacity_mbps = 1600.0;
  /// Weight of the congestion term relative to a hop; 0 disables
  /// load-aware routing (pure shortest path).
  double congestion_weight = 2.0;
};

/// Computes a route for every flow of \p traffic over \p topology.
/// Throws InvalidModelError if some flow's endpoints are not connected.
RouteSet BuildRoutes(const TopologyGraph& topology,
                     const CommunicationGraph& traffic,
                     const std::vector<SwitchId>& attachment,
                     const RouteBuildOptions& options = {});

}  // namespace nocdr
