// Static route computation over the synthesized switch topology.
//
// Congestion-aware Dijkstra: flows are routed heaviest-first; each link's
// weight is 1 (hop) plus a penalty proportional to the bandwidth already
// committed to it relative to its capacity. Heavier traffic therefore
// spreads across parallel paths, which produces the irregular multi-path
// route sets on which cyclic channel dependencies arise — the situation
// the paper's algorithm exists to fix. Every route uses VC 0 of each link
// (the implicit channel); VCs beyond that are added only by the deadlock
// handling methods.
#pragma once

#include <vector>

#include "noc/design.h"
#include "noc/routing.h"
#include "noc/topology.h"
#include "noc/traffic.h"

namespace nocdr {

struct RouteBuildOptions {
  /// Nominal link capacity (MB/s) for the congestion penalty.
  double link_capacity_mbps = 1600.0;
  /// Weight of the congestion term relative to a hop; 0 disables
  /// load-aware routing (pure shortest path).
  double congestion_weight = 2.0;
};

/// Computes a route for every flow of \p traffic over \p topology.
/// Throws InvalidModelError if some flow's endpoints are not connected.
RouteSet BuildRoutes(const TopologyGraph& topology,
                     const CommunicationGraph& traffic,
                     const std::vector<SwitchId>& attachment,
                     const RouteBuildOptions& options = {});

/// Deterministic distributed routing table: table[s][d] is the outgoing
/// link switch \p s forwards toward destination switch \p d (invalid
/// LinkId on the diagonal and for unreachable pairs). This is the form
/// classical structured-topology policies take — dimension-ordered XY on
/// a mesh/torus, up-then-down on a tree — where every hop is a pure
/// function of (current switch, destination), unlike the per-flow
/// congestion-aware paths of BuildRoutes.
using NextHopTable = std::vector<std::vector<LinkId>>;

/// Checks that \p table is shaped switch_count x switch_count, that every
/// entry is either invalid or a link actually leaving its row's switch,
/// and that following the table from any switch reaches any destination
/// with a filled row without revisiting a switch (i.e. the table is
/// complete and loop-free for every reachable pair). Throws
/// InvalidModelError on the first violation.
void ValidateNextHopTable(const TopologyGraph& topology,
                          const NextHopTable& table);

/// Expands \p table into one static route per flow of \p traffic: walks
/// table[s][dst] hop by hop from each flow's source switch, always on
/// VC 0 (the implicit channel; extra VCs are the deadlock methods' job).
/// Throws InvalidModelError when the table has no entry for a hop some
/// flow needs or a walk exceeds the switch count (a routing loop).
RouteSet BuildTableRoutes(const TopologyGraph& topology,
                          const CommunicationGraph& traffic,
                          const std::vector<SwitchId>& attachment,
                          const NextHopTable& table);

}  // namespace nocdr
