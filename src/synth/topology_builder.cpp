#include "synth/topology_builder.h"

#include <algorithm>
#include <numeric>

#include "util/error.h"

namespace nocdr {

std::vector<std::vector<double>> InterSwitchDemand(
    const CommunicationGraph& traffic, const std::vector<SwitchId>& attachment,
    std::size_t switch_count) {
  std::vector<std::vector<double>> demand(
      switch_count, std::vector<double>(switch_count, 0.0));
  for (std::size_t i = 0; i < traffic.FlowCount(); ++i) {
    const Flow& f = traffic.FlowAt(FlowId(i));
    const std::size_t s = attachment[f.src.value()].value();
    const std::size_t t = attachment[f.dst.value()].value();
    if (s != t) {
      demand[s][t] += f.bandwidth_mbps;
    }
  }
  return demand;
}

namespace {

/// Union-find for the maximum spanning tree.
class DisjointSets {
 public:
  explicit DisjointSets(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  std::size_t Find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  bool Union(std::size_t a, std::size_t b) {
    a = Find(a);
    b = Find(b);
    if (a == b) {
      return false;
    }
    parent_[a] = b;
    return true;
  }

 private:
  std::vector<std::size_t> parent_;
};

struct CandidateEdge {
  std::size_t s;
  std::size_t t;
  double weight;
};

}  // namespace

TopologyGraph BuildSwitchTopology(const CommunicationGraph& traffic,
                                  const std::vector<SwitchId>& attachment,
                                  std::size_t switch_count,
                                  const TopologyBuildOptions& options) {
  Require(switch_count >= 1, "BuildSwitchTopology: no switches");
  TopologyGraph topology;
  for (std::size_t s = 0; s < switch_count; ++s) {
    topology.AddSwitch("SW" + std::to_string(s));
  }
  if (switch_count == 1) {
    return topology;  // single switch: all traffic is local
  }

  const auto demand = InterSwitchDemand(traffic, attachment, switch_count);

  // Undirected candidate edges weighted by total demand both ways.
  std::vector<CandidateEdge> undirected;
  for (std::size_t s = 0; s < switch_count; ++s) {
    for (std::size_t t = s + 1; t < switch_count; ++t) {
      undirected.push_back(
          CandidateEdge{s, t, demand[s][t] + demand[t][s]});
    }
  }
  // Maximum spanning tree: sort by descending weight; stable + index
  // tie-break keeps the construction deterministic.
  std::stable_sort(undirected.begin(), undirected.end(),
                   [](const CandidateEdge& a, const CandidateEdge& b) {
                     return a.weight > b.weight;
                   });

  std::vector<std::size_t> degree(switch_count, 0);
  auto add_bidir = [&](std::size_t s, std::size_t t) {
    topology.AddLink(SwitchId(s), SwitchId(t));
    topology.AddLink(SwitchId(t), SwitchId(s));
    degree[s] += 2;
    degree[t] += 2;
  };

  DisjointSets forest(switch_count);
  for (const CandidateEdge& e : undirected) {
    if (forest.Union(e.s, e.t)) {
      add_bidir(e.s, e.t);
    }
  }

  // Shortcut links: heaviest directed demands not yet served by a direct
  // link, subject to the per-switch degree budget.
  std::vector<CandidateEdge> directed;
  for (std::size_t s = 0; s < switch_count; ++s) {
    for (std::size_t t = 0; t < switch_count; ++t) {
      if (s != t && demand[s][t] > 0.0 &&
          !topology.FindLink(SwitchId(s), SwitchId(t))) {
        directed.push_back(CandidateEdge{s, t, demand[s][t]});
      }
    }
  }
  std::stable_sort(directed.begin(), directed.end(),
                   [](const CandidateEdge& a, const CandidateEdge& b) {
                     return a.weight > b.weight;
                   });
  std::size_t budget = static_cast<std::size_t>(
      options.shortcut_factor * static_cast<double>(switch_count));
  for (const CandidateEdge& e : directed) {
    if (budget == 0) {
      break;
    }
    if (degree[e.s] + 1 > options.max_switch_degree ||
        degree[e.t] + 1 > options.max_switch_degree) {
      continue;
    }
    topology.AddLink(SwitchId(e.s), SwitchId(e.t));
    ++degree[e.s];
    ++degree[e.t];
    --budget;
  }

  return topology;
}

}  // namespace nocdr
