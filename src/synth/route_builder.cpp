#include "synth/route_builder.h"

#include <algorithm>
#include <limits>
#include <numeric>
#include <queue>

#include "util/error.h"

namespace nocdr {

namespace {

struct QueueEntry {
  double dist;
  std::uint32_t node;

  bool operator>(const QueueEntry& other) const {
    if (dist != other.dist) {
      return dist > other.dist;
    }
    return node > other.node;  // deterministic tie-break
  }
};

}  // namespace

RouteSet BuildRoutes(const TopologyGraph& topology,
                     const CommunicationGraph& traffic,
                     const std::vector<SwitchId>& attachment,
                     const RouteBuildOptions& options) {
  Require(attachment.size() == traffic.CoreCount(),
          "BuildRoutes: attachment incomplete");
  RouteSet routes(traffic.FlowCount());
  std::vector<double> committed(topology.LinkCount(), 0.0);

  // Heaviest flows first: they get the short paths, lighter flows detour.
  std::vector<std::size_t> order(traffic.FlowCount());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return traffic.FlowAt(FlowId(a)).bandwidth_mbps >
                            traffic.FlowAt(FlowId(b)).bandwidth_mbps;
                   });

  const std::size_t n = topology.SwitchCount();
  for (std::size_t fi : order) {
    const FlowId f(fi);
    const Flow& flow = traffic.FlowAt(f);
    const SwitchId src = attachment[flow.src.value()];
    const SwitchId dst = attachment[flow.dst.value()];
    if (src == dst) {
      routes.SetRoute(f, {});  // local to one switch; no channels used
      continue;
    }

    // Dijkstra from src to dst over physical links.
    constexpr double kInf = std::numeric_limits<double>::infinity();
    std::vector<double> dist(n, kInf);
    std::vector<LinkId> via(n);  // incoming link on the best path
    std::priority_queue<QueueEntry, std::vector<QueueEntry>,
                        std::greater<QueueEntry>>
        queue;
    dist[src.value()] = 0.0;
    queue.push(QueueEntry{0.0, src.value()});
    while (!queue.empty()) {
      const QueueEntry top = queue.top();
      queue.pop();
      if (top.dist > dist[top.node]) {
        continue;
      }
      if (SwitchId(top.node) == dst) {
        break;
      }
      for (LinkId l : topology.OutLinks(SwitchId(top.node))) {
        const Link& link = topology.LinkAt(l);
        const double penalty =
            options.congestion_weight *
            (committed[l.value()] / options.link_capacity_mbps);
        const double candidate = top.dist + 1.0 + penalty;
        if (candidate + 1e-12 < dist[link.dst.value()]) {
          dist[link.dst.value()] = candidate;
          via[link.dst.value()] = l;
          queue.push(QueueEntry{candidate, link.dst.value()});
        }
      }
    }
    Require(dist[dst.value()] != kInf,
            "BuildRoutes: no path between switches of flow " +
                std::to_string(fi));

    // Walk back along `via`, emitting the VC-0 channel of each link.
    Route route;
    for (SwitchId cur = dst; cur != src;) {
      const LinkId l = via[cur.value()];
      auto channel = topology.FindChannel(l, 0);
      Require(channel.has_value(), "BuildRoutes: link missing VC 0");
      route.push_back(*channel);
      committed[l.value()] += flow.bandwidth_mbps;
      cur = topology.LinkAt(l).src;
    }
    std::reverse(route.begin(), route.end());
    routes.SetRoute(f, std::move(route));
  }
  return routes;
}

}  // namespace nocdr
