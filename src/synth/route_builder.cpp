#include "synth/route_builder.h"

#include <algorithm>
#include <limits>
#include <numeric>
#include <queue>

#include "util/error.h"

namespace nocdr {

namespace {

struct QueueEntry {
  double dist;
  std::uint32_t node;

  bool operator>(const QueueEntry& other) const {
    if (dist != other.dist) {
      return dist > other.dist;
    }
    return node > other.node;  // deterministic tie-break
  }
};

}  // namespace

RouteSet BuildRoutes(const TopologyGraph& topology,
                     const CommunicationGraph& traffic,
                     const std::vector<SwitchId>& attachment,
                     const RouteBuildOptions& options) {
  Require(attachment.size() == traffic.CoreCount(),
          "BuildRoutes: attachment incomplete");
  RouteSet routes(traffic.FlowCount());
  std::vector<double> committed(topology.LinkCount(), 0.0);

  // Heaviest flows first: they get the short paths, lighter flows detour.
  std::vector<std::size_t> order(traffic.FlowCount());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return traffic.FlowAt(FlowId(a)).bandwidth_mbps >
                            traffic.FlowAt(FlowId(b)).bandwidth_mbps;
                   });

  const std::size_t n = topology.SwitchCount();
  for (std::size_t fi : order) {
    const FlowId f(fi);
    const Flow& flow = traffic.FlowAt(f);
    const SwitchId src = attachment[flow.src.value()];
    const SwitchId dst = attachment[flow.dst.value()];
    if (src == dst) {
      routes.SetRoute(f, {});  // local to one switch; no channels used
      continue;
    }

    // Dijkstra from src to dst over physical links.
    constexpr double kInf = std::numeric_limits<double>::infinity();
    std::vector<double> dist(n, kInf);
    std::vector<LinkId> via(n);  // incoming link on the best path
    std::priority_queue<QueueEntry, std::vector<QueueEntry>,
                        std::greater<QueueEntry>>
        queue;
    dist[src.value()] = 0.0;
    queue.push(QueueEntry{0.0, src.value()});
    while (!queue.empty()) {
      const QueueEntry top = queue.top();
      queue.pop();
      if (top.dist > dist[top.node]) {
        continue;
      }
      if (SwitchId(top.node) == dst) {
        break;
      }
      for (LinkId l : topology.OutLinks(SwitchId(top.node))) {
        const Link& link = topology.LinkAt(l);
        const double penalty =
            options.congestion_weight *
            (committed[l.value()] / options.link_capacity_mbps);
        const double candidate = top.dist + 1.0 + penalty;
        if (candidate + 1e-12 < dist[link.dst.value()]) {
          dist[link.dst.value()] = candidate;
          via[link.dst.value()] = l;
          queue.push(QueueEntry{candidate, link.dst.value()});
        }
      }
    }
    Require(dist[dst.value()] != kInf,
            "BuildRoutes: no path between switches of flow " +
                std::to_string(fi));

    // Walk back along `via`, emitting the VC-0 channel of each link.
    Route route;
    for (SwitchId cur = dst; cur != src;) {
      const LinkId l = via[cur.value()];
      auto channel = topology.FindChannel(l, 0);
      Require(channel.has_value(), "BuildRoutes: link missing VC 0");
      route.push_back(*channel);
      committed[l.value()] += flow.bandwidth_mbps;
      cur = topology.LinkAt(l).src;
    }
    std::reverse(route.begin(), route.end());
    routes.SetRoute(f, std::move(route));
  }
  return routes;
}

void ValidateNextHopTable(const TopologyGraph& topology,
                          const NextHopTable& table) {
  const std::size_t n = topology.SwitchCount();
  Require(table.size() == n, "NextHopTable: row count != switch count");
  for (std::size_t s = 0; s < n; ++s) {
    Require(table[s].size() == n,
            "NextHopTable: row " + std::to_string(s) +
                " column count != switch count");
    for (std::size_t d = 0; d < n; ++d) {
      const LinkId l = table[s][d];
      if (!l.valid()) {
        continue;
      }
      Require(s != d, "NextHopTable: self entry on switch " +
                          std::to_string(s));
      Require(topology.IsValidLink(l),
              "NextHopTable: invalid link on (" + std::to_string(s) + "," +
                  std::to_string(d) + ")");
      Require(topology.LinkAt(l).src == SwitchId(s),
              "NextHopTable: link on (" + std::to_string(s) + "," +
                  std::to_string(d) + ") does not leave switch " +
                  std::to_string(s));
    }
  }
  // Every filled pair must reach its destination without revisiting a
  // switch; a walk longer than n switches is a loop by pigeonhole.
  for (std::size_t s = 0; s < n; ++s) {
    for (std::size_t d = 0; d < n; ++d) {
      if (s == d || !table[s][d].valid()) {
        continue;
      }
      std::size_t cur = s;
      std::size_t hops = 0;
      while (cur != d) {
        const LinkId l = table[cur][d];
        Require(l.valid(), "NextHopTable: hole at (" + std::to_string(cur) +
                               "," + std::to_string(d) +
                               ") on the walk from " + std::to_string(s));
        cur = topology.LinkAt(l).dst.value();
        Require(++hops <= n, "NextHopTable: routing loop from " +
                                 std::to_string(s) + " to " +
                                 std::to_string(d));
      }
    }
  }
}

RouteSet BuildTableRoutes(const TopologyGraph& topology,
                          const CommunicationGraph& traffic,
                          const std::vector<SwitchId>& attachment,
                          const NextHopTable& table) {
  Require(attachment.size() == traffic.CoreCount(),
          "BuildTableRoutes: attachment incomplete");
  Require(table.size() == topology.SwitchCount(),
          "BuildTableRoutes: table row count != switch count");
  RouteSet routes(traffic.FlowCount());
  const std::size_t n = topology.SwitchCount();
  for (std::size_t fi = 0; fi < traffic.FlowCount(); ++fi) {
    const FlowId f(fi);
    const Flow& flow = traffic.FlowAt(f);
    const SwitchId src = attachment[flow.src.value()];
    const SwitchId dst = attachment[flow.dst.value()];
    Route route;
    SwitchId cur = src;
    while (cur != dst) {
      Require(table[cur.value()].size() == n,
              "BuildTableRoutes: malformed table row " +
                  std::to_string(cur.value()));
      const LinkId l = table[cur.value()][dst.value()];
      Require(l.valid(), "BuildTableRoutes: no next hop from switch " +
                             std::to_string(cur.value()) + " to switch " +
                             std::to_string(dst.value()) + " for flow " +
                             std::to_string(fi));
      Require(topology.IsValidLink(l) &&
                  topology.LinkAt(l).src == cur,
              "BuildTableRoutes: table entry does not leave switch " +
                  std::to_string(cur.value()));
      const auto channel = topology.FindChannel(l, 0);
      Require(channel.has_value(), "BuildTableRoutes: link missing VC 0");
      route.push_back(*channel);
      cur = topology.LinkAt(l).dst;
      Require(route.size() <= n, "BuildTableRoutes: routing loop for flow " +
                                     std::to_string(fi));
    }
    routes.SetRoute(f, std::move(route));
  }
  return routes;
}

}  // namespace nocdr
