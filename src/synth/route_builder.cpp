#include "synth/route_builder.h"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <numeric>
#include <queue>

#include "util/error.h"

namespace nocdr {

namespace {

struct QueueEntry {
  double dist;
  std::uint32_t node;

  bool operator>(const QueueEntry& other) const {
    if (dist != other.dist) {
      return dist > other.dist;
    }
    return node > other.node;  // deterministic tie-break
  }
};

}  // namespace

RouteSet BuildRoutes(const TopologyGraph& topology,
                     const CommunicationGraph& traffic,
                     const std::vector<SwitchId>& attachment,
                     const RouteBuildOptions& options) {
  Require(attachment.size() == traffic.CoreCount(),
          "BuildRoutes: attachment incomplete");
  RouteSet routes(traffic.FlowCount());
  std::vector<double> committed(topology.LinkCount(), 0.0);

  // Heaviest flows first: they get the short paths, lighter flows detour.
  std::vector<std::size_t> order(traffic.FlowCount());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return traffic.FlowAt(FlowId(a)).bandwidth_mbps >
                            traffic.FlowAt(FlowId(b)).bandwidth_mbps;
                   });

  const std::size_t n = topology.SwitchCount();
  for (std::size_t fi : order) {
    const FlowId f(fi);
    const Flow& flow = traffic.FlowAt(f);
    const SwitchId src = attachment[flow.src.value()];
    const SwitchId dst = attachment[flow.dst.value()];
    if (src == dst) {
      routes.SetRoute(f, {});  // local to one switch; no channels used
      continue;
    }

    // Dijkstra from src to dst over physical links.
    constexpr double kInf = std::numeric_limits<double>::infinity();
    std::vector<double> dist(n, kInf);
    std::vector<LinkId> via(n);  // incoming link on the best path
    std::priority_queue<QueueEntry, std::vector<QueueEntry>,
                        std::greater<QueueEntry>>
        queue;
    dist[src.value()] = 0.0;
    queue.push(QueueEntry{0.0, src.value()});
    while (!queue.empty()) {
      const QueueEntry top = queue.top();
      queue.pop();
      if (top.dist > dist[top.node]) {
        continue;
      }
      if (SwitchId(top.node) == dst) {
        break;
      }
      for (LinkId l : topology.OutLinks(SwitchId(top.node))) {
        const Link& link = topology.LinkAt(l);
        const double penalty =
            options.congestion_weight *
            (committed[l.value()] / options.link_capacity_mbps);
        const double candidate = top.dist + 1.0 + penalty;
        if (candidate + 1e-12 < dist[link.dst.value()]) {
          dist[link.dst.value()] = candidate;
          via[link.dst.value()] = l;
          queue.push(QueueEntry{candidate, link.dst.value()});
        }
      }
    }
    Require(dist[dst.value()] != kInf,
            "BuildRoutes: no path between switches of flow " +
                std::to_string(fi));

    // Walk back along `via`, emitting the VC-0 channel of each link.
    Route route;
    for (SwitchId cur = dst; cur != src;) {
      const LinkId l = via[cur.value()];
      auto channel = topology.FindChannel(l, 0);
      Require(channel.has_value(), "BuildRoutes: link missing VC 0");
      route.push_back(*channel);
      committed[l.value()] += flow.bandwidth_mbps;
      cur = topology.LinkAt(l).src;
    }
    std::reverse(route.begin(), route.end());
    routes.SetRoute(f, std::move(route));
  }
  return routes;
}

void ValidateNextHopTable(const TopologyGraph& topology,
                          const NextHopTable& table) {
  const std::size_t n = topology.SwitchCount();
  Require(table.size() == n, "NextHopTable: row count != switch count");
  for (std::size_t s = 0; s < n; ++s) {
    Require(table[s].size() == n,
            "NextHopTable: row " + std::to_string(s) +
                " column count != switch count");
    for (std::size_t d = 0; d < n; ++d) {
      const LinkId l = table[s][d];
      if (!l.valid()) {
        continue;
      }
      Require(s != d, "NextHopTable: self entry on switch " +
                          std::to_string(s));
      Require(topology.IsValidLink(l),
              "NextHopTable: invalid link on (" + std::to_string(s) + "," +
                  std::to_string(d) + ")");
      Require(topology.LinkAt(l).src == SwitchId(s),
              "NextHopTable: link on (" + std::to_string(s) + "," +
                  std::to_string(d) + ") does not leave switch " +
                  std::to_string(s));
    }
  }
  // Every filled pair must reach its destination without revisiting a
  // switch; a walk longer than n switches is a loop by pigeonhole.
  for (std::size_t s = 0; s < n; ++s) {
    for (std::size_t d = 0; d < n; ++d) {
      if (s == d || !table[s][d].valid()) {
        continue;
      }
      std::size_t cur = s;
      std::size_t hops = 0;
      while (cur != d) {
        const LinkId l = table[cur][d];
        Require(l.valid(), "NextHopTable: hole at (" + std::to_string(cur) +
                               "," + std::to_string(d) +
                               ") on the walk from " + std::to_string(s));
        cur = topology.LinkAt(l).dst.value();
        Require(++hops <= n, "NextHopTable: routing loop from " +
                                 std::to_string(s) + " to " +
                                 std::to_string(d));
      }
    }
  }
}

std::optional<Route> WalkTableRoute(const TopologyGraph& topology,
                                    const NextHopTable& table, SwitchId src,
                                    SwitchId dst) {
  Require(topology.IsValidSwitch(src) && topology.IsValidSwitch(dst),
          "WalkTableRoute: invalid endpoint switch");
  Require(table.size() == topology.SwitchCount(),
          "WalkTableRoute: table row count != switch count");
  const std::size_t n = topology.SwitchCount();
  Route route;
  SwitchId cur = src;
  while (cur != dst) {
    const auto& row = table[cur.value()];
    if (row.size() != n || !row[dst.value()].valid()) {
      return std::nullopt;  // hole: this pair needs the rip-up fallback
    }
    const LinkId l = row[dst.value()];
    Require(topology.IsValidLink(l) && topology.LinkAt(l).src == cur,
            "WalkTableRoute: table entry does not leave switch " +
                std::to_string(cur.value()));
    const auto channel = topology.FindChannel(l, 0);
    Require(channel.has_value(), "WalkTableRoute: link missing VC 0");
    route.push_back(*channel);
    cur = topology.LinkAt(l).dst;
    if (route.size() > n) {
      return std::nullopt;  // routing loop (possible mid-patch)
    }
  }
  return route;
}

namespace {

/// True when \p l cannot carry traffic under the failure masks: its own
/// entry is set, or either endpoint switch has failed. Empty masks mean
/// nothing failed.
bool LinkDown(const TopologyGraph& topology, LinkId l,
              const std::vector<char>& failed_links,
              const std::vector<char>& failed_switches) {
  if (!failed_links.empty() && failed_links[l.value()]) {
    return true;
  }
  if (failed_switches.empty()) {
    return false;
  }
  const Link& link = topology.LinkAt(l);
  return failed_switches[link.src.value()] ||
         failed_switches[link.dst.value()];
}

bool SwitchDown(SwitchId s, const std::vector<char>& failed_switches) {
  return !failed_switches.empty() && failed_switches[s.value()];
}

}  // namespace

std::size_t PatchNextHopTable(const TopologyGraph& topology,
                              NextHopTable& table,
                              const std::vector<char>& failed_links,
                              const std::vector<char>& failed_switches) {
  const std::size_t n = topology.SwitchCount();
  Require(table.size() == n, "PatchNextHopTable: row count != switch count");
  Require(failed_links.empty() || failed_links.size() == topology.LinkCount(),
          "PatchNextHopTable: failed-link mask size mismatch");
  Require(failed_switches.empty() || failed_switches.size() == n,
          "PatchNextHopTable: failed-switch mask size mismatch");

  std::size_t disconnected = 0;
  // Walk-status memo per destination: 0 unknown, 1 survives, 2 broken.
  std::vector<std::uint8_t> status(n);
  std::vector<std::uint32_t> dist(n);
  std::vector<LinkId> via(n);
  std::vector<std::uint32_t> queue;
  std::vector<std::uint32_t> chain;
  constexpr std::uint32_t kUnreached =
      std::numeric_limits<std::uint32_t>::max();

  for (std::size_t d = 0; d < n; ++d) {
    Require(table[d].size() == n, "PatchNextHopTable: malformed row " +
                                      std::to_string(d));
    if (SwitchDown(SwitchId(d), failed_switches)) {
      // Nothing can route to a dead switch; drop every entry toward it.
      for (std::size_t s = 0; s < n; ++s) {
        table[s][d] = LinkId();
      }
      continue;
    }
    // Classify each source's current walk toward d by pointer chasing
    // with memoization: broken iff it crosses a failed link/switch or a
    // hole before reaching d.
    std::fill(status.begin(), status.end(), std::uint8_t{0});
    status[d] = 1;
    bool any_broken = false;
    for (std::size_t s = 0; s < n; ++s) {
      if (status[s] != 0 || !table[s][d].valid()) {
        continue;
      }
      chain.clear();
      std::size_t cur = s;
      std::uint8_t verdict = 0;
      while (verdict == 0) {
        if (status[cur] != 0) {
          verdict = status[cur];
          break;
        }
        chain.push_back(static_cast<std::uint32_t>(cur));
        if (chain.size() > n) {
          verdict = 2;  // routing loop: the walk never reaches d
          break;
        }
        if (SwitchDown(SwitchId(cur), failed_switches)) {
          verdict = 2;
          break;
        }
        const LinkId l = table[cur][d];
        if (!l.valid() ||
            LinkDown(topology, l, failed_links, failed_switches)) {
          verdict = 2;
          break;
        }
        cur = topology.LinkAt(l).dst.value();
      }
      for (const std::uint32_t v : chain) {
        status[v] = verdict;
      }
      any_broken = any_broken || verdict == 2;
    }
    if (!any_broken) {
      continue;
    }
    // Backward BFS from d over surviving links: dist[s] = surviving hops
    // from s to d, via[s] = the first link of one such shortest path.
    // Incoming links are scanned in ascending id order, so ties break
    // deterministically toward the lowest link id.
    std::fill(dist.begin(), dist.end(), kUnreached);
    for (std::size_t s = 0; s < n; ++s) {
      via[s] = LinkId();
    }
    dist[d] = 0;
    queue.assign(1, static_cast<std::uint32_t>(d));
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const SwitchId v(queue[head]);
      for (const LinkId l : topology.InLinks(v)) {
        if (LinkDown(topology, l, failed_links, failed_switches)) {
          continue;
        }
        const std::size_t u = topology.LinkAt(l).src.value();
        if (dist[u] != kUnreached) {
          continue;
        }
        dist[u] = dist[v.value()] + 1;
        via[u] = l;
        queue.push_back(static_cast<std::uint32_t>(u));
      }
    }
    for (std::size_t s = 0; s < n; ++s) {
      if (s == d || status[s] != 2) {
        continue;
      }
      if (SwitchDown(SwitchId(s), failed_switches)) {
        table[s][d] = LinkId();
        continue;
      }
      if (dist[s] == kUnreached) {
        table[s][d] = LinkId();
        ++disconnected;
        continue;
      }
      table[s][d] = via[s];
    }
  }
  return disconnected;
}

void RerouteFlows(NocDesign& design, const std::vector<FlowId>& flows,
                  const std::vector<char>& failed_links,
                  const std::vector<char>& failed_switches,
                  const RouteBuildOptions& options) {
  const TopologyGraph& topology = design.topology;
  Require(failed_links.empty() || failed_links.size() == topology.LinkCount(),
          "RerouteFlows: failed-link mask size mismatch");
  Require(failed_switches.empty() ||
              failed_switches.size() == topology.SwitchCount(),
          "RerouteFlows: failed-switch mask size mismatch");

  // Rip up: congestion committed by every flow except the re-routed set.
  std::vector<char> ripped(design.traffic.FlowCount(), 0);
  for (const FlowId f : flows) {
    Require(f.valid() && f.value() < design.traffic.FlowCount(),
            "RerouteFlows: invalid flow id");
    ripped[f.value()] = 1;
  }
  std::vector<double> committed(topology.LinkCount(), 0.0);
  for (std::size_t fi = 0; fi < design.traffic.FlowCount(); ++fi) {
    if (ripped[fi]) {
      continue;
    }
    const double bw = design.traffic.FlowAt(FlowId(fi)).bandwidth_mbps;
    for (const ChannelId c : design.routes.RouteOf(FlowId(fi))) {
      committed[topology.ChannelAt(c).link.value()] += bw;
    }
  }

  // Heaviest first, stable by flow id — the same discipline BuildRoutes
  // applies to a from-scratch route set.
  std::vector<FlowId> order = flows;
  std::stable_sort(order.begin(), order.end(), [&](FlowId a, FlowId b) {
    return design.traffic.FlowAt(a).bandwidth_mbps >
           design.traffic.FlowAt(b).bandwidth_mbps;
  });

  const std::size_t n = topology.SwitchCount();
  for (const FlowId f : order) {
    const Flow& flow = design.traffic.FlowAt(f);
    const SwitchId src = design.attachment[flow.src.value()];
    const SwitchId dst = design.attachment[flow.dst.value()];
    Require(!SwitchDown(src, failed_switches) &&
                !SwitchDown(dst, failed_switches),
            "RerouteFlows: endpoint switch of flow " +
                std::to_string(f.value()) + " has failed");
    if (src == dst) {
      design.routes.SetRoute(f, {});
      continue;
    }
    constexpr double kInf = std::numeric_limits<double>::infinity();
    std::vector<double> dist(n, kInf);
    std::vector<LinkId> via(n);
    std::priority_queue<QueueEntry, std::vector<QueueEntry>,
                        std::greater<QueueEntry>>
        queue;
    dist[src.value()] = 0.0;
    queue.push(QueueEntry{0.0, src.value()});
    while (!queue.empty()) {
      const QueueEntry top = queue.top();
      queue.pop();
      if (top.dist > dist[top.node]) {
        continue;
      }
      if (SwitchId(top.node) == dst) {
        break;
      }
      for (LinkId l : topology.OutLinks(SwitchId(top.node))) {
        if (LinkDown(topology, l, failed_links, failed_switches)) {
          continue;
        }
        const Link& link = topology.LinkAt(l);
        const double penalty =
            options.congestion_weight *
            (committed[l.value()] / options.link_capacity_mbps);
        const double candidate = top.dist + 1.0 + penalty;
        if (candidate + 1e-12 < dist[link.dst.value()]) {
          dist[link.dst.value()] = candidate;
          via[link.dst.value()] = l;
          queue.push(QueueEntry{candidate, link.dst.value()});
        }
      }
    }
    Require(dist[dst.value()] != kInf,
            "RerouteFlows: no surviving path for flow " +
                std::to_string(f.value()));
    Route route;
    for (SwitchId cur = dst; cur != src;) {
      const LinkId l = via[cur.value()];
      auto channel = topology.FindChannel(l, 0);
      Require(channel.has_value(), "RerouteFlows: link missing VC 0");
      route.push_back(*channel);
      committed[l.value()] += flow.bandwidth_mbps;
      cur = topology.LinkAt(l).src;
    }
    std::reverse(route.begin(), route.end());
    design.routes.SetRoute(f, std::move(route));
  }
}

RouteSet BuildTableRoutes(const TopologyGraph& topology,
                          const CommunicationGraph& traffic,
                          const std::vector<SwitchId>& attachment,
                          const NextHopTable& table) {
  Require(attachment.size() == traffic.CoreCount(),
          "BuildTableRoutes: attachment incomplete");
  Require(table.size() == topology.SwitchCount(),
          "BuildTableRoutes: table row count != switch count");
  RouteSet routes(traffic.FlowCount());
  const std::size_t n = topology.SwitchCount();
  for (std::size_t fi = 0; fi < traffic.FlowCount(); ++fi) {
    const FlowId f(fi);
    const Flow& flow = traffic.FlowAt(f);
    const SwitchId src = attachment[flow.src.value()];
    const SwitchId dst = attachment[flow.dst.value()];
    Route route;
    SwitchId cur = src;
    while (cur != dst) {
      Require(table[cur.value()].size() == n,
              "BuildTableRoutes: malformed table row " +
                  std::to_string(cur.value()));
      const LinkId l = table[cur.value()][dst.value()];
      Require(l.valid(), "BuildTableRoutes: no next hop from switch " +
                             std::to_string(cur.value()) + " to switch " +
                             std::to_string(dst.value()) + " for flow " +
                             std::to_string(fi));
      Require(topology.IsValidLink(l) &&
                  topology.LinkAt(l).src == cur,
              "BuildTableRoutes: table entry does not leave switch " +
                  std::to_string(cur.value()));
      const auto channel = topology.FindChannel(l, 0);
      Require(channel.has_value(), "BuildTableRoutes: link missing VC 0");
      route.push_back(*channel);
      cur = topology.LinkAt(l).dst;
      Require(route.size() <= n, "BuildTableRoutes: routing loop for flow " +
                                     std::to_string(fi));
    }
    routes.SetRoute(f, std::move(route));
  }
  return routes;
}

}  // namespace nocdr
