#include "synth/floorplan.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "util/error.h"

namespace nocdr {

namespace {

std::size_t ManhattanTiles(std::size_t a, std::size_t b, std::size_t side) {
  const std::size_t ax = a % side, ay = a / side;
  const std::size_t bx = b % side, by = b / side;
  const std::size_t dx = ax > bx ? ax - bx : bx - ax;
  const std::size_t dy = ay > by ? ay - by : by - ay;
  return dx + dy;
}

}  // namespace

Floorplan Floorplan::Place(const NocDesign& design,
                           const FloorplanOptions& options) {
  const std::size_t n = design.topology.SwitchCount();
  Require(n >= 1, "Floorplan: no switches to place");

  Floorplan plan;
  plan.tile_um_ = options.tile_um;
  plan.side_ = 1;
  while (plan.side_ * plan.side_ < n) {
    ++plan.side_;
  }
  const std::size_t tiles = plan.side_ * plan.side_;

  // Inter-switch demand (both directions) drives the placement.
  std::vector<std::vector<double>> weight(n, std::vector<double>(n, 0.0));
  std::vector<double> volume(n, 0.0);
  for (std::size_t fi = 0; fi < design.traffic.FlowCount(); ++fi) {
    const Flow& flow = design.traffic.FlowAt(FlowId(fi));
    const std::size_t s = design.SwitchOf(flow.src).value();
    const std::size_t t = design.SwitchOf(flow.dst).value();
    if (s != t) {
      weight[s][t] += flow.bandwidth_mbps;
      weight[t][s] += flow.bandwidth_mbps;
      volume[s] += flow.bandwidth_mbps;
      volume[t] += flow.bandwidth_mbps;
    }
  }
  // Physical adjacency matters too (links without mapped flows still
  // exist as wires): give every link a small pull.
  for (std::size_t l = 0; l < design.topology.LinkCount(); ++l) {
    const Link& link = design.topology.LinkAt(LinkId(l));
    weight[link.src.value()][link.dst.value()] += 1.0;
    weight[link.dst.value()][link.src.value()] += 1.0;
  }

  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return volume[a] > volume[b];
                   });

  constexpr std::size_t kFree = static_cast<std::size_t>(-1);
  plan.tile_of_.assign(n, kFree);
  std::vector<bool> occupied(tiles, false);

  // Seed the heaviest switch at the grid center.
  const std::size_t center =
      (plan.side_ / 2) * plan.side_ + plan.side_ / 2;
  plan.tile_of_[order[0]] = center;
  occupied[center] = true;

  for (std::size_t oi = 1; oi < n; ++oi) {
    const std::size_t s = order[oi];
    double best_cost = std::numeric_limits<double>::infinity();
    std::size_t best_tile = 0;
    for (std::size_t tile = 0; tile < tiles; ++tile) {
      if (occupied[tile]) {
        continue;
      }
      double cost = 0.0;
      for (std::size_t other = 0; other < n; ++other) {
        if (plan.tile_of_[other] != kFree && weight[s][other] > 0.0) {
          cost += weight[s][other] *
                  static_cast<double>(
                      ManhattanTiles(tile, plan.tile_of_[other], plan.side_));
        }
      }
      // Prefer central tiles on ties so the plan stays compact.
      cost += 1e-6 * static_cast<double>(
                         ManhattanTiles(tile, center, plan.side_));
      if (cost < best_cost) {
        best_cost = cost;
        best_tile = tile;
      }
    }
    plan.tile_of_[s] = best_tile;
    occupied[best_tile] = true;
  }

  plan.link_length_mm_.resize(design.topology.LinkCount());
  for (std::size_t l = 0; l < design.topology.LinkCount(); ++l) {
    const Link& link = design.topology.LinkAt(LinkId(l));
    const std::size_t hops = ManhattanTiles(
        plan.tile_of_[link.src.value()], plan.tile_of_[link.dst.value()],
        plan.side_);
    // Adjacent tiles are one tile pitch apart; same-tile is impossible
    // (self-loops are rejected by the topology).
    plan.link_length_mm_[l] =
        static_cast<double>(hops) * options.tile_um / 1000.0;
  }
  return plan;
}

std::pair<std::size_t, std::size_t> Floorplan::PositionOf(SwitchId s) const {
  Require(s.valid() && s.value() < tile_of_.size(),
          "Floorplan: unknown switch");
  const std::size_t tile = tile_of_[s.value()];
  return {tile % side_, tile / side_};
}

double Floorplan::LinkLengthMm(LinkId link) const {
  Require(link.valid() && link.value() < link_length_mm_.size(),
          "Floorplan: unknown link");
  return link_length_mm_[link.value()];
}

double Floorplan::TotalWireMm() const {
  double total = 0.0;
  for (double mm : link_length_mm_) {
    total += mm;
  }
  return total;
}

}  // namespace nocdr
