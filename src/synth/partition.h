// Core-to-switch partitioning.
//
// First stage of application-specific topology synthesis (standing in for
// the tool of Murali et al., ICCAD 2006): distribute the cores over a
// given number of switches so that heavily-communicating cores share a
// switch. Greedy seeding by descending communication volume followed by a
// Kernighan-Lin style pairwise-swap refinement; fully deterministic.
#pragma once

#include <cstddef>
#include <vector>

#include "noc/traffic.h"
#include "util/ids.h"

namespace nocdr {

struct PartitionOptions {
  /// Maximum cores per switch; 0 means ceil(cores / switches).
  std::size_t max_cores_per_switch = 0;
  /// Number of full refinement sweeps over all core pairs.
  std::size_t refinement_passes = 2;
};

/// Returns attachment[core] = switch, using exactly \p switch_count
/// switches (every switch receives at least one core when
/// switch_count <= core count; throws otherwise).
std::vector<SwitchId> PartitionCores(const CommunicationGraph& traffic,
                                     std::size_t switch_count,
                                     const PartitionOptions& options = {});

/// Total bandwidth between cores mapped to different switches; the
/// quantity partitioning minimizes (lower = less NoC traffic).
double CutBandwidth(const CommunicationGraph& traffic,
                    const std::vector<SwitchId>& attachment);

}  // namespace nocdr
