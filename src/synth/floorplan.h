// Switch placement and wire lengths.
//
// The synthesis flow the paper builds on ([9]) is floorplan-aware: link
// power depends on wire length, so where switches sit matters. This
// module places the switches of a design on a regular grid of tiles,
// greedily minimizing communication-weighted Manhattan distance, and
// reports per-link wire lengths that the power model can consume instead
// of its flat default.
#pragma once

#include <cstddef>
#include <vector>

#include "noc/design.h"

namespace nocdr {

struct FloorplanOptions {
  /// Edge length of one placement tile (um); one switch per tile.
  double tile_um = 1500.0;
};

/// A placed design: tile coordinates per switch and derived wire lengths.
class Floorplan {
 public:
  /// Places the switches of \p design on the smallest square grid that
  /// fits them: seeds with the switch carrying the most traffic, then
  /// places each remaining switch (in descending communication volume)
  /// on the free tile minimizing demand-weighted distance to its already
  /// placed neighbors. Deterministic.
  static Floorplan Place(const NocDesign& design,
                         const FloorplanOptions& options = {});

  /// Grid side length (tiles).
  [[nodiscard]] std::size_t GridSide() const { return side_; }

  /// Tile coordinates of a switch.
  [[nodiscard]] std::pair<std::size_t, std::size_t> PositionOf(
      SwitchId s) const;

  /// Manhattan wire length of \p link in millimetres.
  [[nodiscard]] double LinkLengthMm(LinkId link) const;

  /// Sum of all link lengths (mm): the wiring cost of the placement.
  [[nodiscard]] double TotalWireMm() const;

 private:
  std::size_t side_ = 0;
  double tile_um_ = 0.0;
  std::vector<std::size_t> tile_of_;  // switch -> tile index (y*side + x)
  std::vector<double> link_length_mm_;
};

}  // namespace nocdr
