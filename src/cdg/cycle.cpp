#include "cdg/cycle.h"

#include <algorithm>
#include <deque>

namespace nocdr {

bool IsAcyclic(const ChannelDependencyGraph& graph) {
  const std::size_t n = graph.VertexCount();
  std::vector<std::size_t> in_degree(n, 0);
  for (const CdgEdge& e : graph.Edges()) {
    ++in_degree[e.to.value()];
  }
  std::deque<ChannelId> ready;
  for (std::size_t v = 0; v < n; ++v) {
    if (in_degree[v] == 0) {
      ready.emplace_back(ChannelId(v));
    }
  }
  std::size_t removed = 0;
  while (!ready.empty()) {
    const ChannelId v = ready.front();
    ready.pop_front();
    ++removed;
    for (const auto& ref : graph.OutEdges(v)) {
      if (--in_degree[ref.to.value()] == 0) {
        ready.push_back(ref.to);
      }
    }
  }
  return removed == n;
}

std::optional<CdgCycle> ShortestCycleThrough(
    const ChannelDependencyGraph& graph, ChannelId start) {
  // BFS over successors; the first time we re-reach `start` we have the
  // shortest closed walk through it. Parent pointers reconstruct the path.
  const std::size_t n = graph.VertexCount();
  constexpr std::uint32_t kUnset = ChannelId::kInvalid;
  std::vector<std::uint32_t> parent(n, kUnset);
  std::deque<ChannelId> queue;

  // Seed with the successors of `start` (a closed walk must leave first).
  for (const auto& ref : graph.OutEdges(start)) {
    const ChannelId w = ref.to;
    if (w == start) {
      // Self-loop (a route repeating a channel); degenerate 1-cycle.
      return CdgCycle{start};
    }
    if (parent[w.value()] == kUnset) {
      parent[w.value()] = start.value();
      queue.push_back(w);
    }
  }
  while (!queue.empty()) {
    const ChannelId v = queue.front();
    queue.pop_front();
    for (const auto& ref : graph.OutEdges(v)) {
      const ChannelId w = ref.to;
      if (w == start) {
        CdgCycle cycle;
        for (ChannelId cur = v; cur != start;
             cur = ChannelId(parent[cur.value()])) {
          cycle.push_back(cur);
        }
        cycle.push_back(start);
        std::reverse(cycle.begin(), cycle.end());
        return cycle;
      }
      if (parent[w.value()] == kUnset) {
        parent[w.value()] = v.value();
        queue.push_back(w);
      }
    }
  }
  return std::nullopt;
}

namespace {

template <typename Better>
std::optional<CdgCycle> SelectCycle(const ChannelDependencyGraph& graph,
                                    Better better) {
  std::optional<CdgCycle> best;
  for (std::size_t v = 0; v < graph.VertexCount(); ++v) {
    if (graph.OutEdges(ChannelId(v)).empty()) {
      continue;
    }
    auto cycle = ShortestCycleThrough(graph, ChannelId(v));
    if (cycle && (!best || better(*cycle, *best))) {
      best = std::move(cycle);
    }
  }
  return best;
}

}  // namespace

std::optional<CdgCycle> SmallestCycle(const ChannelDependencyGraph& graph) {
  return SelectCycle(graph, [](const CdgCycle& a, const CdgCycle& b) {
    return a.size() < b.size();
  });
}

std::optional<CdgCycle> FirstCycle(const ChannelDependencyGraph& graph) {
  for (std::size_t v = 0; v < graph.VertexCount(); ++v) {
    if (graph.OutEdges(ChannelId(v)).empty()) {
      continue;
    }
    auto cycle = ShortestCycleThrough(graph, ChannelId(v));
    if (cycle) {
      return cycle;
    }
  }
  return std::nullopt;
}

std::optional<CdgCycle> LargestShortestCycle(
    const ChannelDependencyGraph& graph) {
  return SelectCycle(graph, [](const CdgCycle& a, const CdgCycle& b) {
    return a.size() > b.size();
  });
}

std::optional<CdgCycle> PickCycle(const ChannelDependencyGraph& graph,
                                  CyclePolicy policy) {
  switch (policy) {
    case CyclePolicy::kSmallestFirst:
      return SmallestCycle(graph);
    case CyclePolicy::kFirstFound:
      return FirstCycle(graph);
    case CyclePolicy::kLargestFirst:
      return LargestShortestCycle(graph);
  }
  return std::nullopt;
}

}  // namespace nocdr
