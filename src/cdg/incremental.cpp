#include "cdg/incremental.h"

#include <algorithm>
#include <deque>

namespace nocdr {

std::optional<CdgCycle> DirtyCycleFinder::Pick(CyclePolicy policy) {
  ++stats_.picks;
  Refresh();

  const std::size_t n = graph_.VertexCount();
  std::optional<std::size_t> best;
  for (std::size_t v = 0; v < n; ++v) {
    if (!cycle_[v]) {
      continue;
    }
    switch (policy) {
      case CyclePolicy::kFirstFound:
        return cycle_[v];
      case CyclePolicy::kSmallestFirst:
        if (!best || cycle_[v]->size() < cycle_[*best]->size()) {
          best = v;
        }
        break;
      case CyclePolicy::kLargestFirst:
        if (!best || cycle_[v]->size() > cycle_[*best]->size()) {
          best = v;
        }
        break;
    }
  }
  if (!best) {
    return std::nullopt;
  }
  return cycle_[*best];
}

void DirtyCycleFinder::NoteExternalEdges(std::span<const ChannelId> vertices) {
  tainted_.insert(tainted_.end(), vertices.begin(), vertices.end());
}

void DirtyCycleFinder::Refresh() {
  const std::size_t n = graph_.VertexCount();
  cycle_.resize(n);
  valid_.resize(n, 0);

  const std::uint32_t scc_count = ComputeSccs();
  // Component size and whether a fresh (post-previous-pick) or
  // externally-tainted vertex joined.
  std::vector<std::uint32_t> scc_size(scc_count, 0);
  std::vector<char> scc_fresh(scc_count, 0);
  for (std::size_t v = 0; v < n; ++v) {
    ++scc_size[scc_[v]];
    if (v >= known_vertices_) {
      scc_fresh[scc_[v]] = 1;
    }
  }
  // Consume the taints that exist; not-yet-created vertices stay pending
  // so the scan they force is not lost.
  std::erase_if(tainted_, [&](ChannelId t) {
    if (t.valid() && t.value() < n) {
      scc_fresh[scc_[t.value()]] = 1;
      return true;
    }
    return !t.valid();
  });

  for (std::size_t v = 0; v < n; ++v) {
    const ChannelId c{v};
    const std::uint32_t comp = scc_[v];
    const bool can_cycle =
        scc_size[comp] > 1 || graph_.FindEdge(c, c).has_value();
    if (!can_cycle) {
      cycle_[v] = std::nullopt;
      valid_[v] = 1;
      ++stats_.trivial_skips;
      continue;
    }
    const bool reusable = valid_[v] && !scc_fresh[comp] && cycle_[v] &&
                          CycleStillPresent(*cycle_[v]);
    if (reusable) {
      ++stats_.cache_hits;
      continue;
    }
    cycle_[v] = BfsWithinScc(c, comp);
    valid_[v] = 1;
    ++stats_.bfs_runs;
  }
  known_vertices_ = n;
}

std::uint32_t DirtyCycleFinder::ComputeSccs() {
  const std::size_t n = graph_.VertexCount();
  constexpr std::uint32_t kUnset = 0xffffffffu;
  scc_.assign(n, kUnset);
  std::vector<std::uint32_t> index(n, kUnset);
  std::vector<std::uint32_t> lowlink(n, 0);
  std::vector<char> on_stack(n, 0);
  std::vector<std::uint32_t> stack;
  std::uint32_t next_index = 0;
  std::uint32_t scc_count = 0;

  // Explicit DFS frame: vertex plus position in its out-edge span.
  struct Frame {
    std::uint32_t vertex;
    std::uint32_t edge_pos;
  };
  std::vector<Frame> frames;

  for (std::size_t root = 0; root < n; ++root) {
    if (index[root] != kUnset) {
      continue;
    }
    frames.push_back({static_cast<std::uint32_t>(root), 0});
    while (!frames.empty()) {
      Frame& frame = frames.back();
      const std::uint32_t v = frame.vertex;
      if (frame.edge_pos == 0) {
        index[v] = lowlink[v] = next_index++;
        stack.push_back(v);
        on_stack[v] = 1;
      }
      const auto out = graph_.OutEdges(ChannelId(v));
      bool descended = false;
      while (frame.edge_pos < out.size()) {
        const std::uint32_t w = out[frame.edge_pos].to.value();
        ++frame.edge_pos;
        if (index[w] == kUnset) {
          frames.push_back({w, 0});
          descended = true;
          break;
        }
        if (on_stack[w]) {
          lowlink[v] = std::min(lowlink[v], index[w]);
        }
      }
      if (descended) {
        continue;
      }
      // v is finished: close its component if it is a root.
      if (lowlink[v] == index[v]) {
        std::uint32_t w;
        do {
          w = stack.back();
          stack.pop_back();
          on_stack[w] = 0;
          scc_[w] = scc_count;
        } while (w != v);
        ++scc_count;
      }
      frames.pop_back();
      if (!frames.empty()) {
        const std::uint32_t parent = frames.back().vertex;
        lowlink[parent] = std::min(lowlink[parent], lowlink[v]);
      }
    }
  }
  return scc_count;
}

std::optional<CdgCycle> DirtyCycleFinder::BfsWithinScc(ChannelId start,
                                                       std::uint32_t scc) {
  // Mirrors ShortestCycleThrough exactly, except vertices outside start's
  // SCC are never enqueued: no closed walk through start can leave the
  // component, and in-component vertices are only ever discovered from
  // in-component parents, so the BFS tree restricted to the component is
  // unchanged and the returned cycle is identical.
  const std::size_t n = graph_.VertexCount();
  parent_.resize(n);
  stamp_.resize(n, 0);
  ++epoch_;

  std::deque<ChannelId> queue;
  for (const auto& ref : graph_.OutEdges(start)) {
    const ChannelId w = ref.to;
    if (w == start) {
      return CdgCycle{start};
    }
    if (scc_[w.value()] == scc && stamp_[w.value()] != epoch_) {
      stamp_[w.value()] = epoch_;
      parent_[w.value()] = start.value();
      queue.push_back(w);
    }
  }
  while (!queue.empty()) {
    const ChannelId v = queue.front();
    queue.pop_front();
    for (const auto& ref : graph_.OutEdges(v)) {
      const ChannelId w = ref.to;
      if (w == start) {
        CdgCycle cycle;
        for (ChannelId cur = v; cur != start;
             cur = ChannelId(parent_[cur.value()])) {
          cycle.push_back(cur);
        }
        cycle.push_back(start);
        std::reverse(cycle.begin(), cycle.end());
        return cycle;
      }
      if (scc_[w.value()] == scc && stamp_[w.value()] != epoch_) {
        stamp_[w.value()] = epoch_;
        parent_[w.value()] = v.value();
        queue.push_back(w);
      }
    }
  }
  return std::nullopt;
}

bool DirtyCycleFinder::CycleStillPresent(const CdgCycle& cycle) const {
  const std::size_t m = cycle.size();
  for (std::size_t i = 0; i < m; ++i) {
    if (!graph_.FindEdge(cycle[i], cycle[(i + 1) % m])) {
      return false;
    }
  }
  return true;
}

}  // namespace nocdr
