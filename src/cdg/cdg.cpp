#include "cdg/cdg.h"

#include "util/error.h"

namespace nocdr {

ChannelDependencyGraph ChannelDependencyGraph::Build(const NocDesign& design) {
  ChannelDependencyGraph g;
  g.out_edges_.resize(design.topology.ChannelCount());
  for (std::size_t i = 0; i < design.traffic.FlowCount(); ++i) {
    FlowId f(i);
    const Route& route = design.routes.RouteOf(f);
    for (std::size_t h = 0; h + 1 < route.size(); ++h) {
      const ChannelId from = route[h];
      const ChannelId to = route[h + 1];
      const std::uint64_t key = Key(from, to);
      auto it = g.edge_index_.find(key);
      if (it == g.edge_index_.end()) {
        const std::size_t index = g.edges_.size();
        g.edges_.push_back(CdgEdge{from, to, {f}});
        g.out_edges_[from.value()].push_back(index);
        g.edge_index_.emplace(key, index);
      } else {
        g.edges_[it->second].flows.push_back(f);
      }
    }
  }
  return g;
}

const CdgEdge& ChannelDependencyGraph::EdgeAt(std::size_t index) const {
  Require(index < edges_.size(), "EdgeAt: edge index out of range");
  return edges_[index];
}

const std::vector<std::size_t>& ChannelDependencyGraph::OutEdges(
    ChannelId c) const {
  Require(c.valid() && c.value() < out_edges_.size(),
          "OutEdges: channel is not a CDG vertex");
  return out_edges_[c.value()];
}

std::optional<std::size_t> ChannelDependencyGraph::FindEdge(
    ChannelId from, ChannelId to) const {
  auto it = edge_index_.find(Key(from, to));
  if (it == edge_index_.end()) {
    return std::nullopt;
  }
  return it->second;
}

std::vector<ChannelId> ChannelDependencyGraph::Successors(ChannelId c) const {
  std::vector<ChannelId> result;
  for (std::size_t e : OutEdges(c)) {
    result.push_back(edges_[e].to);
  }
  return result;
}

}  // namespace nocdr
