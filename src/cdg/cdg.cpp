#include "cdg/cdg.h"

#include <algorithm>

#include "util/error.h"

namespace nocdr {

namespace {

/// Smallest capacity a vertex span is (re)allocated with.
constexpr std::uint32_t kMinSpanCapacity = 4;

}  // namespace

ChannelDependencyGraph ChannelDependencyGraph::Build(const NocDesign& design) {
  ChannelDependencyGraph g;
  g.EnsureVertices(design.topology.ChannelCount());
  for (std::size_t i = 0; i < design.traffic.FlowCount(); ++i) {
    g.AddEdges(design.routes.RouteOf(FlowId(i)), FlowId(i));
  }
  return g;
}

const CdgEdge& ChannelDependencyGraph::EdgeAt(std::size_t index) const {
  Require(index < edges_.size(), "EdgeAt: edge index out of range");
  return edges_[index];
}

std::span<const ChannelDependencyGraph::OutEdgeRef>
ChannelDependencyGraph::OutEdges(ChannelId c) const {
  Require(c.valid() && c.value() < spans_.size(),
          "OutEdges: channel is not a CDG vertex");
  const VertexSpan& span = spans_[c.value()];
  return {pool_.data() + span.begin, span.size};
}

std::optional<std::size_t> ChannelDependencyGraph::FindEdge(
    ChannelId from, ChannelId to) const {
  auto it = edge_index_.find(Key(from, to));
  if (it == edge_index_.end()) {
    return std::nullopt;
  }
  return it->second;
}

std::vector<ChannelId> ChannelDependencyGraph::Successors(ChannelId c) const {
  std::vector<ChannelId> result;
  for (const OutEdgeRef& ref : OutEdges(c)) {
    result.push_back(ref.to);
  }
  return result;
}

void ChannelDependencyGraph::EnsureVertices(std::size_t count) {
  if (count > spans_.size()) {
    spans_.resize(count);
  }
}

void ChannelDependencyGraph::AddEdges(const Route& route, FlowId flow) {
  for (std::size_t h = 0; h + 1 < route.size(); ++h) {
    AddDependency(route[h], route[h + 1], flow);
  }
}

void ChannelDependencyGraph::RemoveEdges(const Route& route, FlowId flow) {
  for (std::size_t h = 0; h + 1 < route.size(); ++h) {
    RemoveDependency(route[h], route[h + 1], flow);
  }
}

void ChannelDependencyGraph::ApplyBreak(
    const NocDesign& design, const std::vector<FlowId>& rerouted_flows,
    const std::vector<Route>& old_routes) {
  Require(rerouted_flows.size() == old_routes.size(),
          "ApplyBreak: rerouted flow and old route counts differ");
  EnsureVertices(design.topology.ChannelCount());
  for (std::size_t i = 0; i < rerouted_flows.size(); ++i) {
    RemoveEdges(old_routes[i], rerouted_flows[i]);
  }
  for (FlowId f : rerouted_flows) {
    AddEdges(design.routes.RouteOf(f), f);
  }
}

bool ChannelDependencyGraph::SameDependencies(
    const ChannelDependencyGraph& other) const {
  if (VertexCount() != other.VertexCount() ||
      EdgeCount() != other.EdgeCount()) {
    return false;
  }
  for (std::size_t v = 0; v < VertexCount(); ++v) {
    const auto mine = OutEdges(ChannelId(v));
    const auto theirs = other.OutEdges(ChannelId(v));
    if (mine.size() != theirs.size()) {
      return false;
    }
    for (std::size_t i = 0; i < mine.size(); ++i) {
      if (mine[i].to != theirs[i].to ||
          edges_[mine[i].edge].flows != other.edges_[theirs[i].edge].flows) {
        return false;
      }
    }
  }
  return true;
}

void ChannelDependencyGraph::AddDependency(ChannelId from, ChannelId to,
                                           FlowId flow) {
  Require(from.valid() && from.value() < spans_.size() && to.valid() &&
              to.value() < spans_.size(),
          "AddDependency: channel is not a CDG vertex");
  const std::uint64_t key = Key(from, to);
  auto it = edge_index_.find(key);
  if (it != edge_index_.end()) {
    std::vector<FlowId>& flows = edges_[it->second].flows;
    auto pos = std::lower_bound(flows.begin(), flows.end(), flow);
    if (pos == flows.end() || *pos != flow) {
      flows.insert(pos, flow);
    }
    return;
  }
  const auto index = static_cast<std::uint32_t>(edges_.size());
  edges_.push_back(CdgEdge{from, to, {flow}});
  edge_index_.emplace(key, index);
  InsertSlot(from, OutEdgeRef{to, index});
}

void ChannelDependencyGraph::RemoveDependency(ChannelId from, ChannelId to,
                                              FlowId flow) {
  auto it = edge_index_.find(Key(from, to));
  Require(it != edge_index_.end(),
          "RemoveDependency: edge not present; CDG out of sync with design");
  const std::uint32_t index = it->second;
  std::vector<FlowId>& flows = edges_[index].flows;
  auto pos = std::lower_bound(flows.begin(), flows.end(), flow);
  Require(pos != flows.end() && *pos == flow,
          "RemoveDependency: flow does not create this edge; CDG out of "
          "sync with design");
  flows.erase(pos);
  if (!flows.empty()) {
    return;
  }

  // Last flow gone: delete the edge. The edge store stays dense via
  // swap-remove; the adjacency slot of the moved edge is repointed.
  EraseSlot(from, to);
  edge_index_.erase(it);
  const auto last = static_cast<std::uint32_t>(edges_.size() - 1);
  if (index != last) {
    edges_[index] = std::move(edges_[last]);
    const CdgEdge& moved = edges_[index];
    edge_index_[Key(moved.from, moved.to)] = index;
    RetargetSlot(moved.from, moved.to, index);
  }
  edges_.pop_back();
  MaybeCompact();
}

void ChannelDependencyGraph::InsertSlot(ChannelId from, OutEdgeRef ref) {
  VertexSpan& span = spans_[from.value()];
  if (span.size == span.capacity) {
    // Relocate the span to the end of the pool with doubled capacity; the
    // old slots become slack reclaimed by MaybeCompact.
    const std::uint32_t capacity =
        std::max(kMinSpanCapacity, span.capacity * 2);
    const auto begin = static_cast<std::uint32_t>(pool_.size());
    pool_.resize(pool_.size() + capacity);
    std::copy_n(pool_.begin() + span.begin, span.size, pool_.begin() + begin);
    span.begin = begin;
    span.capacity = capacity;
  }
  OutEdgeRef* data = pool_.data() + span.begin;
  std::uint32_t at = span.size;
  while (at > 0 && ref.to < data[at - 1].to) {
    data[at] = data[at - 1];
    --at;
  }
  data[at] = ref;
  ++span.size;
  ++live_slots_;
}

void ChannelDependencyGraph::EraseSlot(ChannelId from, ChannelId to) {
  VertexSpan& span = spans_[from.value()];
  OutEdgeRef* data = pool_.data() + span.begin;
  OutEdgeRef* end = data + span.size;
  OutEdgeRef* pos = std::lower_bound(
      data, end, to,
      [](const OutEdgeRef& ref, ChannelId t) { return ref.to < t; });
  Require(pos != end && pos->to == to, "EraseSlot: adjacency slot missing");
  std::move(pos + 1, end, pos);
  --span.size;
  --live_slots_;
}

void ChannelDependencyGraph::RetargetSlot(ChannelId from, ChannelId to,
                                          std::uint32_t edge) {
  VertexSpan& span = spans_[from.value()];
  OutEdgeRef* data = pool_.data() + span.begin;
  OutEdgeRef* end = data + span.size;
  OutEdgeRef* pos = std::lower_bound(
      data, end, to,
      [](const OutEdgeRef& ref, ChannelId t) { return ref.to < t; });
  Require(pos != end && pos->to == to, "RetargetSlot: adjacency slot missing");
  pos->edge = edge;
}

void ChannelDependencyGraph::MaybeCompact() {
  if (pool_.size() < 1024 || live_slots_ * 2 > pool_.size()) {
    return;
  }
  std::vector<OutEdgeRef> packed;
  packed.reserve(live_slots_);
  for (VertexSpan& span : spans_) {
    const auto begin = static_cast<std::uint32_t>(packed.size());
    packed.insert(packed.end(), pool_.begin() + span.begin,
                  pool_.begin() + span.begin + span.size);
    span.begin = begin;
    span.capacity = span.size;
  }
  pool_ = std::move(packed);
}

}  // namespace nocdr
