// Cycle detection on the channel dependency graph.
//
// The paper finds the *smallest* cycle by running a breadth-first search
// from every vertex: the shortest closed walk through a vertex v is the
// shortest path from any successor of v back to v, plus the closing edge.
// Breaking small cycles first is the paper's heuristic — a short cycle
// often shares edges with longer ones, so removing it can kill several
// cycles at once and it is also the cheapest to reason about.
//
// All searches here iterate successors in ascending channel-id order (the
// CDG stores adjacency sorted), so their results depend only on the edge
// *set* of the graph, never on how that set was reached. This is what lets
// the incremental removal engine (cdg/incremental.h) cache per-vertex
// results and still agree bit-for-bit with a from-scratch search.
#pragma once

#include <optional>
#include <vector>

#include "cdg/cdg.h"
#include "util/ids.h"

namespace nocdr {

/// A cycle as an ordered vertex sequence c0, c1, ..., c_{m-1}; the edges
/// are (c_i, c_{i+1}) for i < m-1 plus the closing edge (c_{m-1}, c0).
using CdgCycle = std::vector<ChannelId>;

/// Cycle-selection policy; the paper uses smallest-first, the others exist
/// for the ablation study.
enum class CyclePolicy {
  kSmallestFirst,
  kFirstFound,
  kLargestFirst,
};

/// True iff the graph has no directed cycle (Kahn's algorithm); by
/// Dally/Towles this is exactly the deadlock-freedom condition.
bool IsAcyclic(const ChannelDependencyGraph& graph);

/// Shortest cycle through \p start (BFS), if any. Ties broken by BFS
/// discovery order over id-sorted successors, which is deterministic and
/// representation-independent.
std::optional<CdgCycle> ShortestCycleThrough(
    const ChannelDependencyGraph& graph, ChannelId start);

/// The globally smallest cycle (the paper's GetSmallestCycle): BFS from
/// every vertex, keep the shortest result; ties broken by lowest starting
/// channel id. Returns nullopt when the graph is acyclic.
std::optional<CdgCycle> SmallestCycle(const ChannelDependencyGraph& graph);

/// The first cycle found in vertex order, not necessarily smallest;
/// used by the cycle-selection ablation.
std::optional<CdgCycle> FirstCycle(const ChannelDependencyGraph& graph);

/// The largest of the per-vertex shortest cycles; used by the ablation
/// (note this is *not* the global longest cycle, which is NP-hard).
std::optional<CdgCycle> LargestShortestCycle(
    const ChannelDependencyGraph& graph);

/// Dispatches to the search matching \p policy (full scan, no caching).
std::optional<CdgCycle> PickCycle(const ChannelDependencyGraph& graph,
                                  CyclePolicy policy);

}  // namespace nocdr
