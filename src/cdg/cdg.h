// Channel Dependency Graph (Definition 4).
//
// Vertices are the channels of the topology; a directed edge (ci, cj)
// exists when at least one flow's route uses channel ci immediately
// followed by channel cj. Each edge remembers the set of flows that create
// it — the deadlock-removal cost computation needs to know, per cycle
// edge, which flows must be re-routed to delete that edge.
//
// Dally & Towles: with static (deterministic) routing, the network is
// deadlock-free iff this graph is acyclic. The removal algorithm therefore
// works exclusively on this graph and maps its operations back to the
// topology (duplicate vertex = add VC) and the routes (edge removal =
// re-route the flows that created it).
//
// Storage is CSR-style: one flat adjacency pool holds every vertex's
// out-edge slots contiguously (sorted by target id), with per-vertex
// slack capacity so the removal loop can mutate the graph in place via
// the incremental API (AddEdges / RemoveEdges / ApplyBreak) instead of
// re-deriving it from the design after every break. The representation is
// canonical — adjacency sorted by target, flow annotations sorted by flow
// id — so a graph reached through increments is indistinguishable from a
// from-scratch Build of the same design (see SameDependencies), and every
// order-sensitive consumer (the cycle searches) behaves identically on
// both.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "noc/design.h"
#include "util/ids.h"

namespace nocdr {

/// One dependency edge of the CDG.
struct CdgEdge {
  ChannelId from;
  ChannelId to;
  /// Flows whose route contains the consecutive pair (from, to), in
  /// ascending FlowId order.
  std::vector<FlowId> flows;
};

/// The channel dependency graph of one NoC design.
class ChannelDependencyGraph {
 public:
  /// One slot of the adjacency pool: the target vertex plus the index of
  /// the full edge record in Edges(). The target is duplicated here so the
  /// cycle searches never touch the (colder) edge records.
  struct OutEdgeRef {
    ChannelId to;
    std::uint32_t edge = 0;
  };

  /// Builds the CDG of \p design from its routes. The design is not
  /// retained; the graph is a snapshot that the incremental API can keep
  /// in sync with subsequent design mutations.
  static ChannelDependencyGraph Build(const NocDesign& design);

  /// Number of vertices (= channels of the topology at build time, plus
  /// any vertices added through EnsureVertices).
  [[nodiscard]] std::size_t VertexCount() const { return spans_.size(); }

  [[nodiscard]] std::size_t EdgeCount() const { return edges_.size(); }

  [[nodiscard]] const CdgEdge& EdgeAt(std::size_t index) const;

  /// Out-edge slots of \p c, sorted by target channel id.
  [[nodiscard]] std::span<const OutEdgeRef> OutEdges(ChannelId c) const;

  /// Index of edge (from, to) if present.
  [[nodiscard]] std::optional<std::size_t> FindEdge(ChannelId from,
                                                    ChannelId to) const;

  /// Successor channels of \p c, sorted by channel id.
  [[nodiscard]] std::vector<ChannelId> Successors(ChannelId c) const;

  /// Every live edge. Iteration order is an implementation detail (edge
  /// deletion swap-removes); use OutEdges for a canonical order.
  [[nodiscard]] const std::vector<CdgEdge>& Edges() const { return edges_; }

  // ----------------------------------------------------------------------
  // Incremental update API. The removal loop mutates the design (adds VCs,
  // re-routes flows) and mirrors each mutation here, which is O(touched
  // routes) instead of the O(all routes) of a full rebuild.

  /// Grows the vertex set to \p count (e.g. after the topology gained
  /// channels). Shrinking is not supported; smaller counts are ignored.
  void EnsureVertices(std::size_t count);

  /// Registers every consecutive channel pair of \p route as a dependency
  /// created by \p flow, adding edges as needed.
  void AddEdges(const Route& route, FlowId flow);

  /// Removes \p flow from every consecutive channel pair of \p route;
  /// edges that lose their last flow are deleted. Throws InvalidModelError
  /// if \p route names a dependency the graph does not attribute to
  /// \p flow — that means the graph fell out of sync with the design.
  void RemoveEdges(const Route& route, FlowId flow);

  /// Mirrors one break operation: \p rerouted_flows had \p old_routes
  /// before the break and now have their current routes in \p design,
  /// which also owns any freshly added channels. Equivalent to (but much
  /// cheaper than) rebuilding from \p design.
  void ApplyBreak(const NocDesign& design,
                  const std::vector<FlowId>& rerouted_flows,
                  const std::vector<Route>& old_routes);

  /// True iff \p other represents exactly the same dependencies: same
  /// vertex count, same edge set, same per-edge flow annotations. Both
  /// representations are canonical, so this is a structural comparison.
  [[nodiscard]] bool SameDependencies(
      const ChannelDependencyGraph& other) const;

 private:
  /// Adjacency span of one vertex inside the flat pool.
  struct VertexSpan {
    std::uint32_t begin = 0;
    std::uint32_t size = 0;
    std::uint32_t capacity = 0;
  };

  void AddDependency(ChannelId from, ChannelId to, FlowId flow);
  void RemoveDependency(ChannelId from, ChannelId to, FlowId flow);
  /// Inserts an adjacency slot for (from -> to) keeping the span sorted.
  void InsertSlot(ChannelId from, OutEdgeRef ref);
  /// Removes the adjacency slot with target \p to from \p from's span.
  void EraseSlot(ChannelId from, ChannelId to);
  /// Points from's slot targeting \p to at \p edge (after a swap-remove).
  void RetargetSlot(ChannelId from, ChannelId to, std::uint32_t edge);
  /// Rewrites the pool without slack holes once they dominate.
  void MaybeCompact();

  static std::uint64_t Key(ChannelId from, ChannelId to) {
    return (static_cast<std::uint64_t>(from.value()) << 32) | to.value();
  }

  std::vector<CdgEdge> edges_;  // dense: deletion swap-removes
  std::vector<OutEdgeRef> pool_;
  std::vector<VertexSpan> spans_;  // per vertex
  std::unordered_map<std::uint64_t, std::uint32_t> edge_index_;
  std::size_t live_slots_ = 0;  // pool_ slots currently inside a span
};

}  // namespace nocdr
