// Channel Dependency Graph (Definition 4).
//
// Vertices are the channels of the topology; a directed edge (ci, cj)
// exists when at least one flow's route uses channel ci immediately
// followed by channel cj. Each edge remembers the set of flows that create
// it — the deadlock-removal cost computation needs to know, per cycle
// edge, which flows must be re-routed to delete that edge.
//
// Dally & Towles: with static (deterministic) routing, the network is
// deadlock-free iff this graph is acyclic. The removal algorithm therefore
// works exclusively on this graph and maps its operations back to the
// topology (duplicate vertex = add VC) and the routes (edge removal =
// re-route the flows that created it).
#pragma once

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "noc/design.h"
#include "util/ids.h"

namespace nocdr {

/// One dependency edge of the CDG.
struct CdgEdge {
  ChannelId from;
  ChannelId to;
  /// Flows whose route contains the consecutive pair (from, to).
  std::vector<FlowId> flows;
};

/// The channel dependency graph of one NoC design.
class ChannelDependencyGraph {
 public:
  /// Builds the CDG of \p design from its routes. The design is not
  /// retained; the graph is a snapshot.
  static ChannelDependencyGraph Build(const NocDesign& design);

  /// Number of vertices (= channels of the topology at build time).
  [[nodiscard]] std::size_t VertexCount() const { return out_edges_.size(); }

  [[nodiscard]] std::size_t EdgeCount() const { return edges_.size(); }

  [[nodiscard]] const CdgEdge& EdgeAt(std::size_t index) const;

  /// Indices into edges() of the edges leaving \p c.
  [[nodiscard]] const std::vector<std::size_t>& OutEdges(ChannelId c) const;

  /// Index of edge (from, to) if present.
  [[nodiscard]] std::optional<std::size_t> FindEdge(ChannelId from,
                                                    ChannelId to) const;

  /// Successor channels of \p c (one per out-edge).
  [[nodiscard]] std::vector<ChannelId> Successors(ChannelId c) const;

  [[nodiscard]] const std::vector<CdgEdge>& Edges() const { return edges_; }

 private:
  std::vector<CdgEdge> edges_;
  std::vector<std::vector<std::size_t>> out_edges_;  // per channel
  std::unordered_map<std::uint64_t, std::size_t> edge_index_;

  static std::uint64_t Key(ChannelId from, ChannelId to) {
    return (static_cast<std::uint64_t>(from.value()) << 32) | to.value();
  }
};

}  // namespace nocdr
