// Dirty-vertex shortest-cycle search for the incremental removal engine.
//
// The removal loop asks for the globally smallest CDG cycle after every
// break. A from-scratch answer BFS-scans every vertex (cycle.h), which is
// the hot path of Algorithm 1 on large designs. This finder caches the
// per-vertex shortest cycle between picks and re-scans only the vertices
// whose answer a break could have changed.
//
// Why the cache stays exact (the selection is bit-identical to a full
// SmallestCycle/FirstCycle/LargestShortestCycle scan on the current
// graph):
//   * A break only (a) removes dependencies and (b) adds dependencies
//     incident to freshly duplicated channels — BreakCycle re-routes
//     flows onto brand-new VCs, so every structurally new edge touches a
//     vertex that did not exist at the previous pick.
//   * Removing edges never shortens a cycle; a cached cycle whose edges
//     all still exist therefore remains a shortest cycle through its
//     start vertex, and (because successors are scanned in sorted order
//     and competing candidates can only move later in BFS order when
//     edges disappear) it is exactly the cycle a fresh BFS would return.
//   * A *shorter or new* cycle through v must use an added edge, hence a
//     fresh vertex, and any cycle through v lies entirely inside v's
//     strongly connected component — so it can only appear when a fresh
//     vertex joined that component.
// Fault-driven reconfiguration (src/fault) breaks the "added edges touch
// fresh vertices" half of that argument: re-routed flows add edges
// between vertices that both existed at the previous pick. Callers
// report such mutations through NoteExternalEdges, which taints the
// named vertices; at the next pick every SCC containing a tainted vertex
// is re-scanned exactly like one containing a fresh vertex. External
// *removals* need no notice — removals can never resurrect or shorten a
// cycle, so the cached-cycle reuse rule above still applies verbatim.
// Each pick therefore runs one Tarjan SCC pass (O(V+E)) and re-BFSes
// only: vertices of SCCs containing fresh vertices, vertices whose cached
// cycle lost an edge, and vertices never scanned before. Vertices in
// trivial SCCs (no self-loop) are cycle-free by definition and are never
// scanned at all. The per-iteration equivalence is asserted against the
// full scan by tests/test_cdg_incremental.cpp across the whole corpus.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "cdg/cdg.h"
#include "cdg/cycle.h"

namespace nocdr {

/// Incremental replacement for the full-scan cycle searches of cycle.h.
/// Holds a reference to the graph it serves; the graph may be mutated
/// (via its incremental API) between Pick calls, but not destroyed.
class DirtyCycleFinder {
 public:
  explicit DirtyCycleFinder(const ChannelDependencyGraph& graph)
      : graph_(graph) {}

  /// The cycle PickCycle(graph, policy) would return on the current
  /// graph, at amortized dirty-vertex cost. Returns nullopt when acyclic.
  std::optional<CdgCycle> Pick(CyclePolicy policy);

  /// Reports that edges incident to \p vertices were *added* by a
  /// mutation outside the ApplyBreak discipline (fault-driven
  /// re-routing adds edges between pre-existing vertices). At the next
  /// Pick, every SCC containing one of these vertices is re-scanned as
  /// if a fresh vertex had joined it, restoring the cache-exactness
  /// argument in the header comment. Out-of-range ids are permitted and
  /// simply force a scan once the vertex exists.
  void NoteExternalEdges(std::span<const ChannelId> vertices);

  /// Work counters, for perf reporting and the scalability bench.
  struct Stats {
    std::size_t picks = 0;
    /// Vertices whose shortest cycle was recomputed by BFS.
    std::size_t bfs_runs = 0;
    /// Vertices whose cached shortest cycle was reused.
    std::size_t cache_hits = 0;
    /// Vertices skipped because their SCC cannot contain a cycle.
    std::size_t trivial_skips = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  /// Runs Tarjan + dirty classification and refreshes cycle_/valid_.
  void Refresh();
  /// Iterative Tarjan; fills scc_ and returns the number of components.
  std::uint32_t ComputeSccs();
  /// ShortestCycleThrough restricted to start's SCC (identical result,
  /// smaller frontier).
  std::optional<CdgCycle> BfsWithinScc(ChannelId start, std::uint32_t scc);
  /// True iff every edge of \p cycle still exists.
  [[nodiscard]] bool CycleStillPresent(const CdgCycle& cycle) const;

  const ChannelDependencyGraph& graph_;
  /// Vertices that existed at the previous Pick; anything beyond is fresh.
  std::size_t known_vertices_ = 0;
  /// Vertices named by NoteExternalEdges since the previous Pick.
  std::vector<ChannelId> tainted_;
  std::vector<std::optional<CdgCycle>> cycle_;  // per vertex
  std::vector<char> valid_;                     // per vertex
  std::vector<std::uint32_t> scc_;              // per vertex, scratch
  /// BFS scratch: parent pointers with epoch stamps so repeated searches
  /// need no O(V) clear.
  std::vector<std::uint32_t> parent_;
  std::vector<std::uint32_t> stamp_;
  std::uint32_t epoch_ = 0;
  Stats stats_;
};

}  // namespace nocdr
