// Line-delimited JSON protocol of the certification service.
//
// One request per line in, one response per line out — the transport
// the nocdr_serve binary speaks on stdin/stdout and the format the
// examples/ directory documents. A request names its design exactly one
// of three ways:
//
//   {"id":"r1","design":"noc d\nswitch s0\n..."}          inline text
//   {"id":"r2","generator":{"family":"torus","width":6,   generator spec
//                           "height":6,"pattern":"uniform","seed":3}}
//   {"id":"r3","source":"fat_tree","seed":42}             campaign draw
//
// plus optional fields:
//
//   "options": {"cycle_policy":"smallest_first|first_found|largest_first",
//               "direction":"both|forward_only|backward_only",
//               "engine":"incremental|rebuild",
//               "duplication":"virtual_channel|physical_link",
//               "max_iterations":N}
//   "treat": true|false      (default true; false = certify as-is)
//   "return_design": bool    (include the treated design text)
//
// The response carries the deterministic payload (certificate embedded
// as a JSON object, VC-insertion counts, the content-addressed key)
// plus cache/timing metadata:
//
//   {"id":"r1","status":"ok","key":123...,"deadlock_free":true,
//    "certificate":{...},"vcs_added":2,...,"cache":"hit",
//    "service_ms":0.04}
//
// status is "ok", "overloaded" (admission bound hit — retry later) or
// "error"; failures carry a structured error object
// {"code":"invalid_request","message":"..."} shared by both protocol
// versions (codes: see serve/service.h ErrorCode).
//
// Protocol v2 (explicit {"protocol_version":2}) adds typed messages.
// "type":"certify" is the stateless request above; the other four types
// drive stateful sessions (serve/session.h):
//
//   {"protocol_version":2,"type":"session_open","id":"c1",
//    "generator":{...},"options":{...},"return_design":true}
//   {"protocol_version":2,"type":"fault_burst","id":"c2","session":"s1",
//    "expect_epoch":0,
//    "events":[{"kind":"link","src":"sw_0_0","dst":"sw_0_1"},
//              {"kind":"switch","switch":"sw_1_1"}]}
//   {"protocol_version":2,"type":"session_snapshot","id":"c3","session":"s1"}
//   {"protocol_version":2,"type":"session_close","id":"c4","session":"s1"}
//
// and two introspection types. "stats" returns the service's counters
// — request totals, every cache tier (front memo, memory, disk),
// session totals and the per-class admission split — as one structured
// JSON response:
//
//   {"protocol_version":2,"type":"stats","id":"c5"}
//
// "metrics" returns the process-wide metrics registry (obs/metrics.h)
// — counters, gauges and log-bucketed latency histograms — plus the
// build provenance (git sha, compiler, flags):
//
//   {"protocol_version":2,"type":"metrics","id":"c6"}
//
// The `nocdr_serve --stats` operator text is *rendered from* those
// JSON responses (StatsTextFromJson / MetricsTextFromJson), so the
// human and machine surfaces cannot drift.
//
// Session responses echo the message type and carry the session id,
// epoch number, the delta fields of the operation and the epoch's
// certificate + content-addressed key. Requests without a
// protocol_version field are v1; v1 requests must not carry "type".
// docs/PROTOCOL.md documents the full grammar, with examples
// machine-checked against this codec by tools/docs_check.cpp.
#pragma once

#include <string>

#include "obs/metrics.h"
#include "serve/service.h"
#include "serve/session.h"
#include "util/error.h"

namespace nocdr::serve {

/// What ParseMessageLine and the dispatcher throw: an InvalidModelError
/// that knows its protocol error code, so malformed lines become
/// structured-error responses instead of free text.
class ProtocolError : public InvalidModelError {
 public:
  ProtocolError(ErrorCode code, const std::string& message)
      : InvalidModelError(message), code_(code) {}

  [[nodiscard]] ErrorCode code() const { return code_; }

 private:
  ErrorCode code_;
};

/// The v2 introspection request: carries nothing but its id. The
/// response is the whole ServiceStats + SessionServiceStats picture.
struct StatsRequest {
  int protocol_version = kProtocolV2;
  std::string id;
};

/// The v2 metrics request: like stats, carries nothing but its id. The
/// response is the process-wide metrics registry (obs/metrics.h) plus
/// build provenance.
struct MetricsRequest {
  int protocol_version = kProtocolV2;
  std::string id;
};

/// One parsed protocol line of either version: a stateless certify
/// request, a session message, a stats request or a metrics request.
/// At most one of is_session / is_stats / is_metrics is set; none means
/// certify.
struct ServeMessage {
  bool is_session = false;
  bool is_stats = false;
  bool is_metrics = false;
  CertRequest certify;     // valid iff no flag is set
  SessionRequest session;  // valid iff is_session
  StatsRequest stats;      // valid iff is_stats
  MetricsRequest metrics;  // valid iff is_metrics
};

/// Parses one line of either protocol version. Throws ProtocolError on
/// malformed JSON or fields (kInvalidRequest), a protocol_version the
/// server does not speak (kUnsupportedVersion) or an unknown v2 message
/// type (kUnknownType).
ServeMessage ParseMessageLine(const std::string& line);

/// Parses one *stateless* request line (either version). Throws
/// ProtocolError; a v2 session message is kInvalidRequest here.
CertRequest ParseRequestLine(const std::string& line);

/// Renders \p request as one protocol line (inverse of
/// ParseRequestLine up to field order and JSON escaping). v2 requests
/// carry "type":"certify".
std::string RequestToJsonLine(const CertRequest& request);

/// Renders \p response as one protocol line.
std::string ResponseToJsonLine(const CertResponse& response);

/// Renders \p request as one v2 protocol line (inverse of
/// ParseMessageLine for session messages).
std::string SessionRequestToJsonLine(const SessionRequest& request);

/// Renders \p response as one v2 protocol line.
std::string SessionResponseToJsonLine(const SessionResponse& response);

/// Renders \p request as one v2 protocol line
/// ({"protocol_version":2,"type":"stats",...}).
std::string StatsRequestToJsonLine(const StatsRequest& request);

/// Renders the stats response line: the full counter picture —
/// request totals, the front / memory-cache / disk tiers (one
/// CacheStats shape each), session totals and the per-class admission
/// split.
std::string StatsResponseToJsonLine(const StatsRequest& request,
                                    const ServiceStats& service_stats,
                                    const SessionServiceStats& session_stats);

/// Renders the `nocdr_serve --stats` operator text from a stats
/// *response line* (each output line prefixed with \p prefix). The
/// text is derived from the JSON — never assembled from the structs
/// directly — so the human and machine surfaces cannot drift. Throws
/// ProtocolError on a line that is not a stats response.
std::string StatsTextFromJson(const std::string& response_line,
                              const std::string& prefix);

/// Renders \p request as one v2 protocol line
/// ({"protocol_version":2,"type":"metrics",...}).
std::string MetricsRequestToJsonLine(const MetricsRequest& request);

/// Renders the metrics response line: build provenance plus every
/// registered counter, gauge and histogram
/// ({"histograms":{"name":{"count":N,"sum":S,
/// "buckets":[[le,count],...]},...}); "le" is the bucket's inclusive
/// upper bound and zero-count buckets are omitted (obs/metrics.h).
std::string MetricsResponseToJsonLine(const MetricsRequest& request,
                                      const obs::MetricsSnapshot& snapshot);

/// Renders the `nocdr_serve --stats` latency-histogram section from a
/// metrics *response line* — counters, gauges and per-histogram
/// count/sum/quantile-bound lines, derived from the JSON like
/// StatsTextFromJson. Throws ProtocolError on a line that is not a
/// metrics response.
std::string MetricsTextFromJson(const std::string& response_line,
                                const std::string& prefix);

/// Renders the structured-error response line a malformed input line
/// gets: {"protocol_version":V,"id":...,"status":"error",
/// "error":{"code":...,"message":...}}.
std::string ErrorResponseLine(int protocol_version, const std::string& id,
                              ErrorCode code, const std::string& message);

/// Stable names used by the protocol ("ok" / "overloaded" / "error",
/// "hit" / "computed" / "coalesced" / "none").
std::string StatusName(ServeStatus status);
std::string CacheOutcomeName(CacheOutcome outcome);

/// Stable v2 message-type names ("certify", "session_open",
/// "fault_burst", "session_snapshot", "session_close").
std::string SessionOpName(SessionOp op);

/// Inverse of ErrorCodeName (serve/service.h); nullopt-free: throws
/// ProtocolError(kInvalidRequest) on an unknown name.
ErrorCode ParseErrorCode(const std::string& name);

/// Routes parsed messages to a CertificationService (stateless
/// certify) and a SessionService (session ops); the one-stop line
/// handler a server loop needs.
class ServeDispatcher {
 public:
  ServeDispatcher(CertificationService& service, SessionService& sessions)
      : service_(service), sessions_(sessions) {}

  /// Parses, routes and serves one protocol line of either version.
  /// Malformed lines become structured-error response lines; this never
  /// throws.
  std::string HandleLine(const std::string& line);

  /// Serves one pre-parsed message.
  std::string Handle(const ServeMessage& message);

 private:
  CertificationService& service_;
  SessionService& sessions_;
};

}  // namespace nocdr::serve
