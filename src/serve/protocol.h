// Line-delimited JSON protocol of the certification service.
//
// One request per line in, one response per line out — the transport
// the nocdr_serve binary speaks on stdin/stdout and the format the
// examples/ directory documents. A request names its design exactly one
// of three ways:
//
//   {"id":"r1","design":"noc d\nswitch s0\n..."}          inline text
//   {"id":"r2","generator":{"family":"torus","width":6,   generator spec
//                           "height":6,"pattern":"uniform","seed":3}}
//   {"id":"r3","source":"fat_tree","seed":42}             campaign draw
//
// plus optional fields:
//
//   "options": {"cycle_policy":"smallest_first|first_found|largest_first",
//               "direction":"both|forward_only|backward_only",
//               "engine":"incremental|rebuild",
//               "duplication":"virtual_channel|physical_link",
//               "max_iterations":N}
//   "treat": true|false      (default true; false = certify as-is)
//   "return_design": bool    (include the treated design text)
//
// The response carries the deterministic payload (certificate embedded
// as a JSON object, VC-insertion counts, the content-addressed key)
// plus cache/timing metadata:
//
//   {"id":"r1","status":"ok","key":123...,"deadlock_free":true,
//    "certificate":{...},"vcs_added":2,...,"cache":"hit",
//    "service_ms":0.04}
//
// status is "ok", "overloaded" (admission bound hit — retry later) or
// "error" (malformed request / failed computation, with "error" text).
#pragma once

#include <string>

#include "serve/service.h"

namespace nocdr::serve {

/// Parses one request line. Throws InvalidModelError on malformed JSON,
/// unknown fields values, or a request that names zero or several
/// design sources.
CertRequest ParseRequestLine(const std::string& line);

/// Renders \p request as one protocol line (inverse of
/// ParseRequestLine up to field order and JSON escaping).
std::string RequestToJsonLine(const CertRequest& request);

/// Renders \p response as one protocol line.
std::string ResponseToJsonLine(const CertResponse& response);

/// Stable names used by the protocol ("ok" / "overloaded" / "error",
/// "hit" / "computed" / "coalesced" / "none").
std::string StatusName(ServeStatus status);
std::string CacheOutcomeName(CacheOutcome outcome);

}  // namespace nocdr::serve
