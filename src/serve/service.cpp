#include "serve/service.h"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <utility>

#include "deadlock/verify.h"
#include "noc/io.h"
#include "obs/metrics.h"
#include "runner/parallel_map.h"
#include "serve/protocol.h"
#include "util/canonical.h"
#include "util/digest.h"
#include "util/error.h"

namespace nocdr::serve {

namespace {

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

// Serve sections are timed into histograms only — no spans: they sit
// on schedule-dependent paths (a repeat may hit the memo or coalesce
// depending on interleaving), and request traces must stay
// byte-deterministic.
using TimedSection = obs::ScopedHistogramTimer;

/// The serve-layer instruments, registered once (references stay valid
/// for the process lifetime; see obs/metrics.h).
struct ServeInstruments {
  obs::Histogram& request_us = obs::Metrics().GetHistogram("serve.request_us");
  obs::Histogram& hit_us = obs::Metrics().GetHistogram("serve.hit_us");
  obs::Histogram& compute_us =
      obs::Metrics().GetHistogram("serve.compute_us");
  obs::Histogram& coalesced_us =
      obs::Metrics().GetHistogram("serve.coalesced_us");
  obs::Histogram& materialize_us =
      obs::Metrics().GetHistogram("serve.materialize_us");
  obs::Histogram& canonicalize_us =
      obs::Metrics().GetHistogram("serve.canonicalize_us");
  obs::Histogram& cache_lookup_us =
      obs::Metrics().GetHistogram("serve.cache_lookup_us");
  obs::Histogram& coalesce_wait_us =
      obs::Metrics().GetHistogram("serve.coalesce_wait_us");
};

ServeInstruments& Instruments() {
  static ServeInstruments* instruments = new ServeInstruments();
  return *instruments;
}

/// Total request latency plus the per-outcome split. Outcome histograms
/// are deliberately schedule-dependent (the same request can hit,
/// compute or coalesce depending on interleaving) — that is the point:
/// they show what the traffic actually experienced.
void RecordRequestMetrics(const CertResponse& response) {
  ServeInstruments& instruments = Instruments();
  const auto us = static_cast<std::uint64_t>(response.service_ms * 1000.0);
  instruments.request_us.Record(us);
  switch (response.cache_outcome) {
    case CacheOutcome::kHit:
      instruments.hit_us.Record(us);
      break;
    case CacheOutcome::kComputed:
      instruments.compute_us.Record(us);
      break;
    case CacheOutcome::kCoalesced:
      instruments.coalesced_us.Record(us);
      break;
    case CacheOutcome::kNone:
      break;
  }
}

/// Trace id of the computation for canonical digest \p key: "k" + 16
/// hex digits. One computation trace exists per unique key (the
/// coalescer computes each key exactly once while no eviction
/// interferes), so the set of computation traces — and each one's span
/// tree — is deterministic even though *which* request triggered the
/// computation is not.
std::string KeyTraceId(std::uint64_t key) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "k%016llx",
                static_cast<unsigned long long>(key));
  return buf;
}

/// Encoding of every semantically relevant option (the fields
/// CanonicalDesignDigest covers); appended to both cache key texts.
std::string OptionsKeySuffix(const CertRequest& request) {
  return "#options cycle=" +
         std::to_string(static_cast<int>(request.options.cycle_policy)) +
         " direction=" +
         std::to_string(static_cast<int>(request.options.direction_policy)) +
         " duplication=" +
         std::to_string(static_cast<int>(request.options.duplication)) +
         " max_iterations=" +
         std::to_string(request.options.max_iterations) +
         " treat=" + (request.treat ? "1" : "0");
}

/// Full collision-proof cache key: the canonical design text plus an
/// encoding of every option the digest covers. Two keys are the same
/// certification problem iff their texts compare equal, so a 64-bit
/// digest collision can only ever degrade to a miss.
std::string CacheKeyText(const std::string& canonical_text,
                         const CertRequest& request) {
  return canonical_text + OptionsKeySuffix(request);
}

/// Renders the exact bit pattern of \p value — injective, unlike any
/// fixed-precision decimal rendering (two specs differing in the last
/// ulp must not collide in the front memo: a fingerprint collision
/// would serve the wrong certificate).
std::string DoubleBits(double value) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  return std::to_string(bits);
}

/// Exact-bytes identity of a request for the front memo: the raw design
/// source fields plus the options suffix. Unlike the canonical key this
/// is representation-sensitive by design — it exists so an exact repeat
/// can skip canonicalization; distinct renderings of the same problem
/// simply take the full path once each and converge on one canonical
/// entry.
std::string FingerprintText(const CertRequest& request) {
  std::string fp;
  switch (request.kind) {
    case RequestKind::kDesignText:
      fp = "design\x1f" + request.design_text;
      break;
    case RequestKind::kGeneratorSpec: {
      const gen::GeneratorSpec& g = request.generator;
      fp = "generator\x1f" + std::to_string(static_cast<int>(g.family)) +
           " " + std::to_string(g.width) + " " + std::to_string(g.height) +
           " " + std::to_string(g.ring_nodes) + " " +
           std::to_string(g.tree_arity) + " " +
           std::to_string(g.tree_levels) + " " +
           std::to_string(g.tree_uplinks) + " " +
           std::to_string(g.cores_per_switch) + " " +
           std::to_string(static_cast<int>(g.pattern)) + " " +
           std::to_string(g.uniform_fanout) + " " +
           DoubleBits(g.hotspot_fraction) + " " +
           DoubleBits(g.min_bandwidth) + " " + DoubleBits(g.max_bandwidth) +
           " " + std::to_string(g.seed);
      break;
    }
    case RequestKind::kSourceSeed:
      fp = "source\x1f" + valid::SourceName(request.source) + " " +
           std::to_string(request.seed);
      break;
  }
  return fp + OptionsKeySuffix(request);
}

std::uint64_t FingerprintDigest(const std::string& fingerprint) {
  std::uint64_t h = kFnvOffsetBasis;
  DigestField(h, fingerprint);
  return h;
}

ErrorInfo MakeError(ErrorCode code, std::string message) {
  return ErrorInfo{code, std::move(message)};
}

/// Builds the persistent tier when the config names a directory; null
/// keeps the service memory-only. Compaction (when requested) runs
/// here, before the first request is served.
std::unique_ptr<DiskCache> MakeDiskTier(const ServiceConfig& config) {
  if (config.cache_dir.empty()) {
    return nullptr;
  }
  DiskCacheConfig disk_config;
  disk_config.directory = config.cache_dir;
  disk_config.max_bytes = config.disk_cache_bytes;
  auto disk = std::make_unique<DiskCache>(disk_config);
  if (config.cache_compact) {
    disk->Compact();
  }
  return disk;
}

void FillPayload(CertResponse& response, const CachedCertification& value,
                 const CertRequest& request) {
  response.status = ServeStatus::kOk;
  response.deadlock_free = value.deadlock_free;
  response.initially_deadlock_free = value.initially_deadlock_free;
  response.certificate_json = value.certificate_json;
  if (request.return_design) {
    response.treated_design_text = value.treated_design_text;
  }
  response.channels_before = value.channels_before;
  response.channels_after = value.channels_after;
  response.vcs_added = value.vcs_added;
  response.iterations = value.iterations;
  response.flows_rerouted = value.flows_rerouted;
}

}  // namespace

std::string ErrorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kNone:
      return "none";
    case ErrorCode::kInvalidRequest:
      return "invalid_request";
    case ErrorCode::kUnsupportedVersion:
      return "unsupported_version";
    case ErrorCode::kUnknownType:
      return "unknown_type";
    case ErrorCode::kUnknownSession:
      return "unknown_session";
    case ErrorCode::kStaleEpoch:
      return "stale_epoch";
    case ErrorCode::kSessionLimit:
      return "session_limit";
    case ErrorCode::kOverloaded:
      return "overloaded";
    case ErrorCode::kComputeFailed:
      return "compute_failed";
    case ErrorCode::kInternal:
      return "internal";
  }
  return "unknown";
}

NocDesign MaterializeDesign(const DesignSpec& spec,
                            const valid::DesignEnvelope& envelope,
                            NextHopTable* table_out) {
  switch (spec.kind) {
    case RequestKind::kDesignText: {
      // Inline text carries routes but no next-hop table; fault detours
      // on such designs take the rip-up-and-reroute fallback.
      if (table_out != nullptr) {
        table_out->clear();
      }
      std::istringstream in(spec.design_text);
      return ReadDesign(in);
    }
    case RequestKind::kGeneratorSpec:
      return gen::GenerateStandardDesign(spec.generator, table_out);
    case RequestKind::kSourceSeed:
      return valid::GenerateTrialDesign(spec.source, spec.seed, envelope,
                                        table_out);
  }
  throw InvalidModelError("MaterializeDesign: unknown request kind");
}

CachedCertification ComputeCertification(const NocDesign& canonical_design,
                                         const CertRequest& request) {
  CachedCertification out;
  NocDesign treated = canonical_design;
  out.channels_before = treated.topology.ChannelCount();
  if (request.treat) {
    // The removal StageTimer (deadlock/removal.cpp) nests its
    // cycle_search/score/apply/invalidate stage spans under this one.
    obs::ScopedSpan span("treat");
    const RemovalReport report = RemoveDeadlocks(treated, request.options);
    out.initially_deadlock_free = report.initially_deadlock_free;
    out.iterations = report.iterations;
    out.vcs_added = report.vcs_added;
    out.flows_rerouted = report.flows_rerouted;
    span.Attr("iterations", static_cast<std::uint64_t>(report.iterations));
    span.Attr("vcs_added", static_cast<std::uint64_t>(report.vcs_added));
  }
  out.channels_after = treated.topology.ChannelCount();
  DeadlockCertificate certificate;
  {
    obs::ScopedSpan span("certify");
    certificate = CertifyDeadlockFreedom(treated);
  }
  out.deadlock_free = certificate.deadlock_free;
  if (!request.treat) {
    out.initially_deadlock_free = certificate.deadlock_free;
  }
  {
    obs::ScopedSpan span("serialize");
    out.certificate_json = CertificateToJson(certificate);
    out.treated_design_text = DesignText(treated);
  }
  return out;
}

CertificationService::CertificationService(ServiceConfig config,
                                           Certifier certifier)
    : config_(config),
      certifier_(std::move(certifier)),
      cache_(config.cache, MakeDiskTier(config)),
      front_(config.front_cache),
      coalescer_(CoalescerConfig{config.threads, config.max_pending}),
      admission_(config.admission),
      epoch_(std::chrono::steady_clock::now()) {
  if (!certifier_) {
    certifier_ = ComputeCertification;
  }
}

std::uint64_t CertificationService::NowUs() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

CertResponse CertificationService::Guarded(
    const CertRequest& request, const std::function<CertResponse()>& inner) {
  const auto t0 = std::chrono::steady_clock::now();
  CertResponse response;
  // Request failures are responses, never escaping exceptions: Serve is
  // called from ServeBatch's pool workers (which must not throw) and
  // from long-lived server loops, and an injected test certifier (or an
  // allocation failure outside the inner try blocks) may throw types
  // the inner handlers don't cover.
  try {
    response = inner();
  } catch (const std::exception& e) {
    response = CertResponse{};
    response.protocol_version = request.protocol_version;
    response.id = request.id;
    response.status = ServeStatus::kError;
    response.error = MakeError(ErrorCode::kInternal, e.what());
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.errors;
  } catch (...) {
    response = CertResponse{};
    response.protocol_version = request.protocol_version;
    response.id = request.id;
    response.status = ServeStatus::kError;
    response.error =
        MakeError(ErrorCode::kInternal, "unknown non-standard exception");
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.errors;
  }
  response.service_ms = MillisSince(t0);
  return response;
}

CertResponse CertificationService::Serve(const CertRequest& request) {
  // The request's root span. Only deterministic-payload attributes go
  // on it (id, status, key, error code) — never cache_outcome or
  // timings, which depend on interleaving and would break the
  // byte-identical-traces contract. Timing lives in the metrics
  // histograms below.
  obs::ScopedTrace trace(config_.trace, request.trace_id, "request");
  const CertResponse response =
      Guarded(request, [&] { return ServeInner(request); });
  RecordRequestMetrics(response);
  if (trace.active()) {
    trace.Attr("id", request.id);
    trace.Attr("status", StatusName(response.status));
    trace.Attr("key", response.key);
    if (!response.error.ok()) {
      trace.Attr("error", ErrorCodeName(response.error.code));
    }
  }
  return response;
}

CertResponse CertificationService::ServeDesign(const NocDesign& design,
                                               const CertRequest& request) {
  return Guarded(request, [&] {
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.requests;
    }
    // No raw request bytes exist for an in-memory design, so there is
    // no fingerprint to memoize; the canonical cache still dedups.
    return ServeMaterialized(design, request, {}, 0);
  });
}

// ServeDesign deliberately opens no root trace of its own: its callers
// (sessions) either run under their message's trace — child spans nest
// there via the thread-local context — or pass an empty trace_id.

CertResponse CertificationService::ServeInner(const CertRequest& request) {
  CertResponse response;
  response.protocol_version = request.protocol_version;
  response.id = request.id;
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.requests;
  }

  // Front fast path: an exact repeat of a request already resolved maps
  // straight to its canonical cache entry — no materialization, no
  // canonicalization. An FNV pass over the raw bytes plus two hash
  // lookups; this is what a warm hit costs.
  std::string fingerprint;
  std::uint64_t fingerprint_digest = 0;
  if (config_.cache_enabled) {
    fingerprint = FingerprintText(request);
    fingerprint_digest = FingerprintDigest(fingerprint);
    if (const auto target = front_.Lookup(fingerprint_digest, fingerprint)) {
      // Revalidate, not Lookup: if the canonical entry was evicted, the
      // full path below will count the one miss for this request.
      if (const auto hit = cache_.Revalidate(target->canonical_digest,
                                             target->canonical_key_text)) {
        response.key = target->canonical_digest;
        FillPayload(response, *hit, request);
        response.cache_outcome = CacheOutcome::kHit;
        std::lock_guard<std::mutex> lock(stats_mutex_);
        ++stats_.hits;
        return response;
      }
      // Canonical entry evicted since the memo was written; fall
      // through to the full path (which re-publishes it).
    }
  }

  NocDesign design;
  try {
    TimedSection timer(Instruments().materialize_us);
    design = MaterializeDesign(request, config_.envelope);
  } catch (const std::exception& e) {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.errors;
    response.status = ServeStatus::kError;
    response.error = MakeError(ErrorCode::kInvalidRequest, e.what());
    return response;
  }
  return ServeMaterialized(design, request, std::move(fingerprint),
                           fingerprint_digest);
}

CertResponse CertificationService::ServeMaterialized(
    const NocDesign& design, const CertRequest& request,
    std::string fingerprint, std::uint64_t fingerprint_digest) {
  CertResponse response;
  response.protocol_version = request.protocol_version;
  response.id = request.id;

  CanonicalDesign canonical;
  try {
    TimedSection timer(Instruments().canonicalize_us);
    canonical = CanonicalizeDesign(design);
  } catch (const std::exception& e) {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.errors;
    response.status = ServeStatus::kError;
    response.error = MakeError(ErrorCode::kInvalidRequest, e.what());
    return response;
  }
  response.key =
      CanonicalTextDigest(canonical.text, request.options, request.treat);
  const std::string key_text = CacheKeyText(canonical.text, request);

  if (!config_.cache_enabled) {
    // Recompute path: inline on the caller thread, no memoization, no
    // coalescing. The bench's cold baseline.
    try {
      const CachedCertification value = certifier_(canonical.design, request);
      FillPayload(response, value, request);
      response.cache_outcome = CacheOutcome::kComputed;
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.computations;
    } catch (const std::exception& e) {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.errors;
      response.status = ServeStatus::kError;
      response.error = MakeError(ErrorCode::kComputeFailed, e.what());
    }
    return response;
  }

  // Remember how this exact request resolves, so its next repeat takes
  // the front fast path. ServeDesign requests have no fingerprint.
  const auto publish_front = [&] {
    if (!fingerprint.empty()) {
      front_.Insert(fingerprint_digest, std::move(fingerprint),
                    FrontTarget{response.key, key_text});
    }
  };

  // Fast path: a sharded, counted lookup with no global serialization.
  decltype(cache_.Lookup(response.key, key_text)) lookup_hit;
  {
    TimedSection timer(Instruments().cache_lookup_us);
    lookup_hit = cache_.Lookup(response.key, key_text);
  }
  if (lookup_hit) {
    FillPayload(response, *lookup_hit, request);
    response.cache_outcome = CacheOutcome::kHit;
    publish_front();
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.hits;
    return response;
  }

  // Token-budget admission sits in front of the coalescer, on misses
  // only: a hit costs no compute, so the fast paths above never charge
  // the budget. The rejection is the same structured "overloaded" shape
  // as an in-flight-bound rejection — clients cannot tell which policy
  // said no, and both speak v1 and v2 unchanged.
  if (!admission_.TryAdmit(request.priority_class, sched::EstimateCost(design),
                           NowUs())) {
    response.status = ServeStatus::kOverloaded;
    response.error = MakeError(ErrorCode::kOverloaded,
                               "admission budget exhausted; retry later");
    response.cache_outcome = CacheOutcome::kNone;
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.rejected;
    return response;
  }

  // Slow path: re-probe + single-flight under the coalescer lock. The
  // factory defers the design/request copies to the one leader; the
  // followers a duplicate burst produces never pay them.
  RequestCoalescer::Outcome outcome = coalescer_.Submit(
      response.key, key_text,
      [&]() -> std::optional<RequestCoalescer::Result> {
        if (const auto hit = cache_.Revalidate(response.key, key_text)) {
          return *hit;
        }
        return std::nullopt;
      },
      [&]() -> RequestCoalescer::ComputeFn {
        return [this, design = canonical.design, request,
                key = response.key, key_text]() {
          // The computation's own trace, keyed by canonical digest —
          // not by requester. Runs on a pool thread whose context is
          // empty (ScopedTrace saves/restores, so inline execution
          // would also be correct); ComputeCertification's
          // treat/certify/serialize spans and the removal stage spans
          // nest under this root.
          obs::ScopedTrace trace(config_.trace, KeyTraceId(key), "compute");
          trace.Attr("treat", static_cast<std::uint64_t>(request.treat));
          CachedCertification value = certifier_(design, request);
          trace.Attr("vcs_added", static_cast<std::uint64_t>(value.vcs_added));
          // Publish before the coalescer retires the in-flight entry —
          // the exactly-once-per-key argument lives on this ordering.
          cache_.Insert(key, key_text, value);
          return value;
        };
      });

  switch (outcome.kind) {
    case RequestCoalescer::Outcome::Kind::kResolved: {
      FillPayload(response, *outcome.resolved, request);
      response.cache_outcome = CacheOutcome::kHit;
      publish_front();
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.hits;
      return response;
    }
    case RequestCoalescer::Outcome::Kind::kRejected: {
      response.status = ServeStatus::kOverloaded;
      response.error = MakeError(ErrorCode::kOverloaded,
                                 "admission bound full; retry later");
      response.cache_outcome = CacheOutcome::kNone;
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.rejected;
      return response;
    }
    case RequestCoalescer::Outcome::Kind::kLeader:
    case RequestCoalescer::Outcome::Kind::kFollower: {
      const bool leader =
          outcome.kind == RequestCoalescer::Outcome::Kind::kLeader;
      try {
        TimedSection timer(Instruments().coalesce_wait_us);
        const CachedCertification value = outcome.future.get();
        FillPayload(response, value, request);
        response.cache_outcome =
            leader ? CacheOutcome::kComputed : CacheOutcome::kCoalesced;
        publish_front();
        std::lock_guard<std::mutex> lock(stats_mutex_);
        ++(leader ? stats_.computations : stats_.coalesced);
      } catch (const std::exception& e) {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        ++stats_.errors;
        response.status = ServeStatus::kError;
        response.error = MakeError(ErrorCode::kComputeFailed, e.what());
      }
      return response;
    }
  }
  return response;
}

std::vector<CertResponse> CertificationService::ServeBatch(
    const std::vector<CertRequest>& requests, std::size_t client_threads) {
  if (client_threads == 0) {
    client_threads = coalescer_.ThreadCount();
  }
  return runner::ParallelMapIndexed<CertResponse>(
      requests.size(), client_threads,
      [&](std::size_t i) { return Serve(requests[i]); });
}

ServiceStats CertificationService::Stats() const {
  ServiceStats stats;
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    stats = stats_;
  }
  stats.pool_backlog = coalescer_.PoolBacklog();
  stats.cache = cache_.Stats();
  stats.front = front_.Stats();
  stats.disk = cache_.DiskStats();
  stats.admission_classes = admission_.Counters();
  return stats;
}

std::uint64_t ResponseDigest(const std::vector<CertResponse>& responses) {
  std::uint64_t h = kFnvOffsetBasis;
  for (const CertResponse& response : responses) {
    DigestField(h, static_cast<std::uint64_t>(response.protocol_version));
    DigestField(h, response.id);
    DigestField(h, static_cast<std::uint64_t>(response.status));
    DigestField(h, static_cast<std::uint64_t>(response.error.code));
    DigestField(h, response.error.message);
    DigestField(h, response.key);
    DigestField(h, static_cast<std::uint64_t>(response.deadlock_free));
    DigestField(h,
                static_cast<std::uint64_t>(response.initially_deadlock_free));
    DigestField(h, response.certificate_json);
    DigestField(h, response.treated_design_text);
    DigestField(h, response.channels_before);
    DigestField(h, response.channels_after);
    DigestField(h, response.vcs_added);
    DigestField(h, response.iterations);
    DigestField(h, response.flows_rerouted);
  }
  return h;
}

}  // namespace nocdr::serve
