// Stateful streaming reconfiguration sessions — protocol v2's server
// side.
//
// A stateless client watching a degrading chip must re-ship the whole
// design per fault burst; a session keeps the design *and its channel
// dependency graph* alive on the server instead. session_open
// materializes a design (the same three spec kinds as stateless
// certify, through the shared MaterializeDesign path), treats it and
// answers with a session id plus the epoch-0 certificate. Each
// fault_burst message then advances the session one epoch through the
// online pipeline — fault::ApplyFaultBurst re-routes affected flows and
// mirrors the churn into the live CDG, RemoveDeadlocksOnCdg re-treats
// incrementally, CertifyFromCdg re-certifies at dirty-SCC cost — and
// the delta response carries the detour/rip-up split, VCs added, the
// fresh certificate and the new epoch number. session_snapshot returns
// the current design text + certificate; session_close retires the
// session.
//
// Epoch-versioned cache interaction: every epoch's certificate is also
// published into the owning CertificationService's content-addressed
// cert cache, keyed by the canonical form of that epoch's design — a
// later epoch's design is different content, so it lands on a different
// key and a session can never be answered with a stale certificate.
// The published entry is recomputed on the canonical design (not the
// session's live channel numbering), keeping the service's invariant
// that a cached payload is bit-identical to a from-scratch recompute;
// the live-CDG certificate gates the publish (the expensive removal ran
// incrementally; CertifyFromCdg proves the result acyclic first). The
// differential session campaign (src/valid/session_campaign) holds a
// streamed session and a stateless replay to byte-identical responses.
//
// Concurrency and lifecycle: opens are admission-bounded
// (max_sessions); the epoch-0 certification runs through the service's
// coalescer, so concurrent opens of the same design share one
// computation with stateless clients. Bursts/snapshots on one session
// serialize on that session's mutex; distinct sessions proceed in
// parallel. Lifecycle violations (burst on a closed or never-opened
// session, double close, stale expect_epoch) are structured-error
// responses, never exceptions.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "fault/plan.h"
#include "serve/service.h"

namespace nocdr::serve {

/// The four v2 session operations (plus stateless certify, which is
/// not a session op; see serve/protocol.h for the full v2 surface).
enum class SessionOp {
  kOpen,      // "session_open"
  kBurst,     // "fault_burst"
  kSnapshot,  // "session_snapshot"
  kClose,     // "session_close"
};

/// One failure named at the protocol level: links by (src, dst) switch
/// names, switches by name. Resolved against the session's design
/// (switch and link ids survive canonicalization; channel ids do not,
/// which is why the protocol never names channels).
struct SessionEventSpec {
  fault::FaultKind kind = fault::FaultKind::kLink;
  std::string src;          // kLink: source switch name
  std::string dst;          // kLink: destination switch name
  std::string switch_name;  // kSwitch
};

struct SessionRequest {
  int protocol_version = kProtocolV2;
  SessionOp op = SessionOp::kOpen;
  /// Echoed verbatim in the response; empty is fine.
  std::string id;
  /// Target session; ignored by kOpen (the server assigns ids).
  std::string session_id;

  // ---- kOpen ----
  DesignSpec spec;
  RemovalOptions options;

  // ---- kBurst ----
  std::vector<SessionEventSpec> events;
  /// Optimistic concurrency: when set, the burst only applies if the
  /// session is still at this epoch; otherwise kStaleEpoch, unapplied.
  bool has_expect_epoch = false;
  std::uint64_t expect_epoch = 0;

  // ---- kOpen / kBurst (kSnapshot always returns the design) ----
  bool return_design = false;

  /// Trace identity of this message (obs/trace.h); empty = untraced.
  /// Like CertRequest::trace_id: observability metadata only, never
  /// part of SessionResponseDigest.
  std::string trace_id;
};

struct SessionResponse {
  // ---- deterministic payload (covered by SessionResponseDigest) ----
  int protocol_version = kProtocolV2;
  SessionOp op = SessionOp::kOpen;
  std::string id;
  std::string session_id;
  ServeStatus status = ServeStatus::kError;
  /// Meaningful iff status != kOk.
  ErrorInfo error;
  /// Epoch the payload below describes: 0 at open, +1 per applied
  /// burst; unchanged by infeasible bursts, snapshots and close.
  std::uint64_t epoch = 0;

  /// kBurst only: false means the surviving topology cannot connect
  /// some affected flow — the burst was rejected atomically (status
  /// stays kOk; infeasibility is an answer, not a failure), the epoch
  /// did not advance and disconnected_flows names the witnesses.
  bool feasible = true;
  std::vector<std::uint64_t> disconnected_flows;

  // Delta fields: at kOpen the initial treatment, at kBurst this
  // burst's reconfiguration + incremental re-treatment.
  std::size_t affected_flows = 0;
  std::size_t table_detours = 0;
  std::size_t ripup_reroutes = 0;
  std::size_t removal_iterations = 0;
  std::size_t vcs_added = 0;
  std::size_t flows_rerouted = 0;

  // Current session state (kOpen/kBurst/kSnapshot).
  std::size_t channels = 0;
  /// Content-addressed key of the epoch's certification problem — the
  /// cert-cache entry this epoch's certificate was published under.
  std::uint64_t key = 0;
  bool deadlock_free = false;
  std::string certificate_json;
  /// The epoch's design text (canonical at epoch 0). Set when the
  /// request asked return_design, and always by kSnapshot.
  std::string design_text;

  // Accumulated counters (kSnapshot/kClose).
  std::size_t failed_links = 0;
  std::size_t failed_switches = 0;
  std::size_t bursts_applied = 0;

  // ---- metadata (schedule/timing dependent, excluded) ----
  /// kOpen only: how the epoch-0 certification resolved.
  CacheOutcome cache_outcome = CacheOutcome::kNone;
  double service_ms = 0.0;
};

struct SessionServiceConfig {
  /// Admission bound on concurrently open sessions; opens beyond it get
  /// ErrorCode::kSessionLimit.
  std::size_t max_sessions = 256;
  /// Publish each epoch's certificate into the service's cert cache
  /// (see the header comment). Disabled only by benches isolating the
  /// in-session cost.
  bool publish_epochs = true;
};

struct SessionServiceStats {
  std::uint64_t opened = 0;
  std::uint64_t closed = 0;
  /// Opens rejected by max_sessions or the compute admission bound.
  std::uint64_t open_rejected = 0;
  std::uint64_t bursts_applied = 0;
  std::uint64_t bursts_infeasible = 0;
  /// Certificates served across all ops (open/burst/snapshot).
  std::uint64_t epochs_served = 0;
  std::uint64_t errors = 0;
  std::size_t live_sessions = 0;
};

class SessionService {
 public:
  /// Sessions certify through \p service — its cache, coalescer,
  /// admission bound and design-size envelope. The service must outlive
  /// the SessionService.
  explicit SessionService(CertificationService& service,
                          SessionServiceConfig config = {});
  ~SessionService();

  SessionService(const SessionService&) = delete;
  SessionService& operator=(const SessionService&) = delete;

  /// Serves one session message, blocking until the response is ready.
  /// Failures are structured-error responses, never exceptions. Safe to
  /// call from many threads; per-session operations serialize.
  SessionResponse Handle(const SessionRequest& request);

  [[nodiscard]] SessionServiceStats Stats() const;

  [[nodiscard]] const SessionServiceConfig& config() const { return config_; }

 private:
  struct Session;

  SessionResponse HandleInner(const SessionRequest& request);
  SessionResponse Open(const SessionRequest& request);
  SessionResponse Burst(const SessionRequest& request, Session& session);
  SessionResponse Snapshot(const SessionRequest& request, Session& session);
  SessionResponse Close(const SessionRequest& request, Session& session);
  std::shared_ptr<Session> Find(const std::string& session_id);
  /// Re-certifies the session's current design through the service
  /// (publishing the epoch's cache entry) and refreshes the session's
  /// key/certificate fields. Runs under the session's mutex.
  void PublishEpoch(Session& session, const SessionRequest& request);

  CertificationService& service_;
  SessionServiceConfig config_;

  mutable std::mutex mutex_;  // guards sessions_, next_session_, stats_
  std::unordered_map<std::string, std::shared_ptr<Session>> sessions_;
  /// Opens past admission but before insertion; counted against
  /// max_sessions so a concurrent open burst cannot overshoot the bound.
  std::size_t opening_ = 0;
  std::uint64_t next_session_ = 1;
  SessionServiceStats stats_;
};

/// FNV-1a digest over the deterministic payload fields of \p responses,
/// in order. Identical for any client thread count and any cache state.
std::uint64_t SessionResponseDigest(
    const std::vector<SessionResponse>& responses);

}  // namespace nocdr::serve
