#include "serve/sched.h"

#include <algorithm>
#include <functional>
#include <limits>
#include <utility>

#include "obs/metrics.h"

namespace nocdr::serve::sched {

namespace {

/// SplitMix64 finalizer — the same mix util/rng uses, inlined so a
/// queue salt never perturbs any shared generator stream.
std::uint64_t Mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

std::string DisciplineName(Discipline discipline) {
  switch (discipline) {
    case Discipline::kFifo:
      return "fifo";
    case Discipline::kSjf:
      return "sjf";
    case Discipline::kPriority:
      return "priority";
  }
  return "unknown";
}

std::optional<Discipline> ParseDiscipline(const std::string& name) {
  for (const Discipline discipline : AllDisciplines()) {
    if (DisciplineName(discipline) == name) {
      return discipline;
    }
  }
  return std::nullopt;
}

std::vector<Discipline> AllDisciplines() {
  return {Discipline::kFifo, Discipline::kSjf, Discipline::kPriority};
}

std::uint64_t EstimateCost(std::size_t channels, std::size_t flows) {
  // Channels bound the CDG vertex count, flows the per-iteration
  // cycle-break candidate scan; both enter roughly linearly. +1 keeps
  // the cost of even a degenerate design positive so token charges and
  // SJF keys never hit zero.
  return 1 + static_cast<std::uint64_t>(channels) +
         4 * static_cast<std::uint64_t>(flows);
}

std::uint64_t EstimateCost(const NocDesign& design) {
  return EstimateCost(design.topology.ChannelCount(),
                      design.traffic.FlowCount());
}

TokenBucket::TokenBucket(double tokens_per_us, double capacity,
                         std::uint64_t now_us)
    : rate_per_us_(tokens_per_us),
      capacity_(capacity),
      tokens_(capacity),
      last_us_(now_us) {}

bool TokenBucket::TryTake(double cost, std::uint64_t now_us) {
  if (now_us > last_us_) {
    tokens_ = std::min(
        capacity_,
        tokens_ + rate_per_us_ * static_cast<double>(now_us - last_us_));
    last_us_ = now_us;
  }
  if (tokens_ + 1e-9 < cost) {
    return false;
  }
  tokens_ -= cost;
  return true;
}

AdmissionController::AdmissionController(AdmissionConfig config,
                                         std::uint64_t now_us)
    : config_(std::move(config)) {
  std::vector<ClassConfig> classes = config_.classes;
  const bool has_default =
      std::any_of(classes.begin(), classes.end(),
                  [](const ClassConfig& c) { return c.name == kDefaultClass; });
  if (classes.empty() || !has_default) {
    ClassConfig fallback;
    fallback.name = kDefaultClass;
    classes.push_back(fallback);
  }
  double total_weight = 0.0;
  for (const ClassConfig& c : classes) {
    total_weight += std::max(0.0, c.weight);
  }
  if (total_weight <= 0.0) {
    total_weight = 1.0;
  }
  const double burst =
      config_.burst > 0.0 ? config_.burst : config_.tokens_per_sec;
  for (const ClassConfig& c : classes) {
    const double share = std::max(0.0, c.weight) / total_weight;
    Bucket bucket;
    bucket.config = c;
    bucket.tokens = TokenBucket(config_.tokens_per_sec * share / 1e6,
                                std::max(1.0, burst * share), now_us);
    buckets_.push_back(bucket);
    ClassCounters counters;
    counters.name = c.name;
    counters.rank = c.rank;
    counters_.push_back(counters);
  }
}

std::size_t AdmissionController::BucketIndex(
    const std::string& class_name) const {
  std::size_t fallback = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i].config.name == class_name) {
      return i;
    }
    if (buckets_[i].config.name == kDefaultClass) {
      fallback = i;
    }
  }
  return fallback;
}

bool AdmissionController::TryAdmit(const std::string& class_name,
                                   std::uint64_t cost, std::uint64_t now_us) {
  const std::string& name = class_name.empty() ? kDefaultClass : class_name;
  std::lock_guard<std::mutex> lock(mutex_);
  const std::size_t bucket = BucketIndex(name);
  // Count under the caller's own name even when it shares the default
  // bucket, so the stats show who actually asked.
  ClassCounters* counters = nullptr;
  for (ClassCounters& c : counters_) {
    if (c.name == name) {
      counters = &c;
      break;
    }
  }
  if (counters == nullptr) {
    ClassCounters fresh;
    fresh.name = name;
    fresh.rank = buckets_[bucket].config.rank;
    counters_.push_back(fresh);
    counters = &counters_.back();
  }
  ++counters->requests;
  const double charge =
      config_.charge_cost ? static_cast<double>(cost) : 1.0;
  const bool admitted =
      !config_.enabled || buckets_[bucket].tokens.TryTake(charge, now_us);
  // Process-wide admission counters beside the per-class split: the
  // {"type":"metrics"} response reads these without taking this lock.
  static obs::Counter& admitted_total =
      obs::Metrics().GetCounter("sched.admitted");
  static obs::Counter& rejected_total =
      obs::Metrics().GetCounter("sched.rejected");
  if (admitted) {
    ++counters->admitted;
    counters->cost_admitted += cost;
    admitted_total.Add();
  } else {
    ++counters->rejected;
    rejected_total.Add();
  }
  return admitted;
}

std::vector<ClassCounters> AdmissionController::Counters() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counters_;
}

int AdmissionController::RankOf(const std::string& class_name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return buckets_[BucketIndex(class_name.empty() ? kDefaultClass
                                                 : class_name)]
      .config.rank;
}

ReadyQueue::ReadyQueue(Discipline discipline, std::uint64_t seed,
                       std::size_t capacity)
    : discipline_(discipline), seed_(seed), capacity_(capacity) {}

bool ReadyQueue::Push(const Job& job) {
  if (heap_.size() >= capacity_) {
    return false;
  }
  Entry entry;
  entry.seq = job.seq;
  entry.job = job;
  switch (discipline_) {
    case Discipline::kFifo:
      entry.key0 = job.seq;
      entry.key1 = 0;
      break;
    case Discipline::kSjf:
      entry.key0 = job.cost;
      entry.key1 = Mix(seed_ ^ job.seq);
      break;
    case Discipline::kPriority:
      entry.key0 = static_cast<std::uint64_t>(
          static_cast<std::int64_t>(job.rank) -
          std::numeric_limits<std::int64_t>::min());
      entry.key1 = job.seq;
      break;
  }
  heap_.push_back(entry);
  std::push_heap(heap_.begin(), heap_.end(), std::greater<>{});
  return true;
}

std::optional<Job> ReadyQueue::Pop() {
  if (heap_.empty()) {
    return std::nullopt;
  }
  std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
  Job job = heap_.back().job;
  heap_.pop_back();
  return job;
}

}  // namespace nocdr::serve::sched
