// Sharded in-memory LRU tier of the certification cache.
//
// The serving layer's core bet (and the kv-cache literature's): real
// design-loop traffic is repeat-heavy — the same design is re-certified
// after every unrelated edit, the same generator spec is swept by many
// clients — so memoizing (canonical design + removal options) ->
// (certificate, VC-insertion result) turns the common request into a
// hash lookup. Entries are immutable once inserted: the computation is
// a deterministic function of the key (RemoveDeadlocks and
// CertifyDeadlockFreedom are seed-free), so a cached response is
// bit-identical to a recomputed one, which tests/test_serve.cpp pins.
//
// ShardedLruCache is the bounded in-memory implementation of the
// CacheTier interface (serve/cache_tier.h); both memory levels of the
// service are instantiations of it:
//
//   * the *certificate cache* — the memory tier of TieredCertCache
//     (serve/disk_cache.h), content-addressed by
//     CanonicalDesignDigest: the store hit by any request naming the
//     same certification problem in any representation;
//   * the *request fingerprint memo* in front of it (serve/service),
//     keyed by the raw request bytes, which lets an exact repeat skip
//     design materialization and canonicalization entirely — that skip,
//     not the memoized removal run alone, is what makes a cache hit
//     orders of magnitude cheaper than a recompute.
//
// Concurrency: the key space is split across shards by digest
// (util::ShardRouter), each shard owning one mutex, one keyed slot map
// and one intrusive LRU list — lookups for different keys rarely
// contend. Capacity is bounded both by entry count and by payload
// bytes; eviction is strict LRU per shard, oldest first.
//
// The 64-bit digest is not trusted alone: every entry stores the full
// key text and lookups compare it (util::KeyedSlotMap owns that
// protocol, shared with the disk tier's index), so a digest collision
// degrades to a miss (or an entry replacement), never to serving the
// wrong value.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "serve/cache_tier.h"
#include "util/keyed_lookup.h"

namespace nocdr::serve {

/// Bounded sharded LRU map from (digest, key text) to \p Value, which
/// must provide `std::size_t PayloadBytes() const` for the byte bound.
template <typename Value>
class ShardedLruCache : public CacheTier<Value> {
 public:
  explicit ShardedLruCache(CacheConfig config = {})
      : router_(config.shards), shards_(router_.Count()) {
    max_entries_per_shard_ = config.max_entries / shards_.size();
    if (max_entries_per_shard_ == 0) {
      max_entries_per_shard_ = 1;
    }
    max_bytes_per_shard_ = config.max_bytes / shards_.size();
    if (max_bytes_per_shard_ == 0) {
      max_bytes_per_shard_ = 1;
    }
  }

  /// Looks up \p digest, verifying \p key_text against the stored key.
  /// Counts a hit or a miss and refreshes the entry's LRU position.
  /// Returns a reference to the immutable entry (null = miss): values
  /// are shared, not copied, so a hit moves a refcount under the shard
  /// mutex instead of duplicating multi-KB certificate strings there.
  std::shared_ptr<const Value> Lookup(std::uint64_t digest,
                                      const std::string& key_text) override {
    return LookupImpl(digest, key_text, /*count_miss=*/true);
  }

  /// Lookup variant for the coalescer's under-lock re-probe: a request
  /// that already counted its miss on the fast path must not count a
  /// second one, but a hit here (the racing leader completed in
  /// between) is a real served-from-cache outcome. Counts hits only.
  std::shared_ptr<const Value> Revalidate(
      std::uint64_t digest, const std::string& key_text) override {
    return LookupImpl(digest, key_text, /*count_miss=*/false);
  }

  /// Inserts (or replaces) the entry for (\p digest, \p key_text), then
  /// evicts LRU-last entries until the shard is back under both bounds.
  void Insert(std::uint64_t digest, std::string key_text,
              Value value) override {
    Shard& shard = ShardFor(digest);
    const std::size_t bytes =
        value.PayloadBytes() + key_text.size() + kEntryOverheadBytes;
    auto shared = std::make_shared<const Value>(std::move(value));
    std::lock_guard<std::mutex> lock(shard.mutex);
    if (bytes > max_bytes_per_shard_) {
      ++shard.oversize_rejections;
      return;
    }
    shard.lru.push_front(
        Entry{digest, std::move(key_text), std::move(shared), bytes});
    // Same digest resident: replace (identical key text means a racing
    // duplicate publish; different text is a digest collision and the
    // newcomer wins — either way the old payload goes).
    if (const auto displaced = shard.index.Put(digest, shard.lru.begin())) {
      shard.bytes -= (*displaced)->bytes;
      shard.lru.erase(*displaced);
    }
    shard.bytes += bytes;
    ++shard.insertions;
    while (shard.lru.size() > max_entries_per_shard_ ||
           shard.bytes > max_bytes_per_shard_) {
      const Entry& victim = shard.lru.back();
      shard.bytes -= victim.bytes;
      shard.index.Erase(victim.digest);
      shard.lru.pop_back();
      ++shard.evictions;
    }
  }

  /// Counters summed over all shards plus current occupancy.
  [[nodiscard]] CacheStats Stats() const override {
    CacheStats stats;
    for (const Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mutex);
      stats.hits += shard.hits;
      stats.misses += shard.misses;
      stats.insertions += shard.insertions;
      stats.evictions += shard.evictions;
      stats.oversize_rejections += shard.oversize_rejections;
      stats.entries += shard.lru.size();
      stats.bytes += shard.bytes;
    }
    return stats;
  }

  /// Drops every entry; the lifetime counters stay (evictions are not
  /// incremented — a Clear is an operator action, not capacity
  /// pressure).
  void Clear() override {
    for (Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mutex);
      shard.lru.clear();
      shard.index.Clear();
      shard.bytes = 0;
    }
  }

  [[nodiscard]] std::size_t ShardCount() const { return shards_.size(); }

 private:
  struct Entry {
    std::uint64_t digest = 0;
    std::string key_text;
    std::shared_ptr<const Value> value;
    std::size_t bytes = 0;
  };

  using EntryIter = typename std::list<Entry>::iterator;

  struct Shard {
    mutable std::mutex mutex;
    /// Front = most recently used.
    std::list<Entry> lru;
    /// digest -> entry, with the shared collision protocol: a digest
    /// collision with a different key text replaces the resident entry
    /// on insert and misses on lookup.
    util::KeyedSlotMap<EntryIter> index;
    std::size_t bytes = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;
    std::uint64_t oversize_rejections = 0;
  };

  /// Fixed per-entry overhead charged on top of the payload: list node,
  /// index slot and key text live outside Value.
  static constexpr std::size_t kEntryOverheadBytes = 128;

  Shard& ShardFor(std::uint64_t digest) {
    return shards_[router_.IndexFor(digest)];
  }

  std::shared_ptr<const Value> LookupImpl(std::uint64_t digest,
                                          const std::string& key_text,
                                          bool count_miss) {
    Shard& shard = ShardFor(digest);
    std::lock_guard<std::mutex> lock(shard.mutex);
    EntryIter* slot = shard.index.Find(
        digest, key_text,
        [](const EntryIter& entry) { return &entry->key_text; });
    if (slot == nullptr) {
      if (count_miss) {
        ++shard.misses;
      }
      return nullptr;
    }
    ++shard.hits;
    // Refresh recency: splice the entry to the front of the LRU list
    // (iterators stay valid, so the index slot needs no update).
    shard.lru.splice(shard.lru.begin(), shard.lru, *slot);
    return (*slot)->value;
  }

  util::ShardRouter router_;
  std::vector<Shard> shards_;
  std::size_t max_entries_per_shard_ = 0;
  std::size_t max_bytes_per_shard_ = 0;
};

/// The memoized outcome of one certification computation: everything a
/// response needs, pre-serialized. All fields are deterministic
/// functions of the cache key.
struct CachedCertification {
  /// CertificateToJson of the (treated) canonical design's certificate.
  std::string certificate_json;
  /// noc/io text of the design the certificate describes (post-
  /// treatment; equals the canonical input text when treat was false or
  /// no work was needed). Lets a hit serve the repaired design without
  /// recomputing it.
  std::string treated_design_text;
  bool deadlock_free = false;
  bool initially_deadlock_free = false;
  std::size_t iterations = 0;
  std::size_t vcs_added = 0;
  std::size_t flows_rerouted = 0;
  std::size_t channels_before = 0;
  std::size_t channels_after = 0;

  /// Payload bytes this entry holds (for the byte capacity bound).
  [[nodiscard]] std::size_t PayloadBytes() const {
    return certificate_json.size() + treated_design_text.size();
  }
};

/// The in-memory certificate store, content-addressed by
/// CanonicalDesignDigest (util/canonical) + removal options. The
/// memory tier of TieredCertCache (serve/disk_cache.h).
using ShardedCertCache = ShardedLruCache<CachedCertification>;

}  // namespace nocdr::serve
