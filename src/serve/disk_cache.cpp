#include "serve/disk_cache.h"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "obs/metrics.h"

namespace nocdr::serve {

namespace {

namespace fs = std::filesystem;

// "NDSG" / "NDCR" as little-endian u32s.
constexpr std::uint32_t kSegmentMagic = 0x4753444e;
constexpr std::uint32_t kRecordMagic = 0x5243444e;
constexpr std::uint32_t kFormatVersion = 1;
constexpr std::size_t kSegmentHeaderBytes = 8;
constexpr std::size_t kRecordHeaderBytes = 48;
constexpr std::size_t kCrcBytes = 4;
/// Any single declared payload length past this is treated as frame
/// damage, not data: no real certificate or design text approaches it,
/// and honoring a flipped high bit would make the scanner leap past
/// gigabytes of perfectly good records.
constexpr std::uint32_t kMaxFieldBytes = 1u << 30;

constexpr char kSegmentPrefix[] = "cache-";
constexpr char kSegmentSuffix[] = ".seg";
constexpr char kLockName[] = "LOCK";

/// CRC-32 (reflected, poly 0xEDB88320) — the zlib/ethernet polynomial,
/// table-driven, dependency-free.
const std::array<std::uint32_t, 256>& CrcTable() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

std::uint32_t Crc32(const char* data, std::size_t size) {
  const auto& table = CrcTable();
  std::uint32_t c = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i) {
    c = table[(c ^ static_cast<unsigned char>(data[i])) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

void PutU16(std::string& out, std::uint16_t v) {
  out.push_back(static_cast<char>(v & 0xFF));
  out.push_back(static_cast<char>((v >> 8) & 0xFF));
}

void PutU32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void PutU64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

std::uint32_t GetU32(const char* p) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | static_cast<unsigned char>(p[i]);
  }
  return v;
}

std::uint64_t GetU64(const char* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | static_cast<unsigned char>(p[i]);
  }
  return v;
}

/// The fixed-size counters and flags a record header carries.
struct RecordHeader {
  std::uint32_t key_len = 0;
  std::uint64_t digest = 0;
  std::uint32_t cert_len = 0;
  std::uint32_t design_len = 0;
  bool deadlock_free = false;
  bool initially_deadlock_free = false;
  std::uint32_t iterations = 0;
  std::uint32_t vcs_added = 0;
  std::uint32_t flows_rerouted = 0;
  std::uint32_t channels_before = 0;
  std::uint32_t channels_after = 0;
};

/// Decodes the 48-byte header at \p p; false iff the magic is wrong.
bool DecodeHeader(const char* p, RecordHeader& h) {
  if (GetU32(p) != kRecordMagic) {
    return false;
  }
  h.key_len = GetU32(p + 4);
  h.digest = GetU64(p + 8);
  h.cert_len = GetU32(p + 16);
  h.design_len = GetU32(p + 20);
  h.deadlock_free = p[24] != 0;
  h.initially_deadlock_free = p[25] != 0;
  // p[26..27]: pad.
  h.iterations = GetU32(p + 28);
  h.vcs_added = GetU32(p + 32);
  h.flows_rerouted = GetU32(p + 36);
  h.channels_before = GetU32(p + 40);
  h.channels_after = GetU32(p + 44);
  return true;
}

[[nodiscard]] bool PlausibleLengths(const RecordHeader& h) {
  return h.key_len <= kMaxFieldBytes && h.cert_len <= kMaxFieldBytes &&
         h.design_len <= kMaxFieldBytes;
}

[[nodiscard]] std::uint64_t FramedLength(const RecordHeader& h) {
  return kRecordHeaderBytes + static_cast<std::uint64_t>(h.key_len) +
         h.cert_len + h.design_len + kCrcBytes;
}

std::string EncodeRecord(std::uint64_t digest, const std::string& key_text,
                         const CachedCertification& value) {
  std::string out;
  out.reserve(kRecordHeaderBytes + key_text.size() +
              value.certificate_json.size() +
              value.treated_design_text.size() + kCrcBytes);
  PutU32(out, kRecordMagic);
  PutU32(out, static_cast<std::uint32_t>(key_text.size()));
  PutU64(out, digest);
  PutU32(out, static_cast<std::uint32_t>(value.certificate_json.size()));
  PutU32(out, static_cast<std::uint32_t>(value.treated_design_text.size()));
  out.push_back(value.deadlock_free ? 1 : 0);
  out.push_back(value.initially_deadlock_free ? 1 : 0);
  PutU16(out, 0);
  PutU32(out, static_cast<std::uint32_t>(value.iterations));
  PutU32(out, static_cast<std::uint32_t>(value.vcs_added));
  PutU32(out, static_cast<std::uint32_t>(value.flows_rerouted));
  PutU32(out, static_cast<std::uint32_t>(value.channels_before));
  PutU32(out, static_cast<std::uint32_t>(value.channels_after));
  out += key_text;
  out += value.certificate_json;
  out += value.treated_design_text;
  PutU32(out, Crc32(out.data(), out.size()));
  return out;
}

}  // namespace

DiskCache::DiskCache(DiskCacheConfig config)
    : config_(std::move(config)),
      router_(config_.index_shards),
      index_(router_.Count()) {
  std::error_code ec;
  fs::create_directories(config_.directory, ec);
  if (ec || !fs::is_directory(config_.directory)) {
    throw std::runtime_error("disk cache: cannot create directory '" +
                             config_.directory + "'");
  }
  AcquireLock();
  // Rebuild the index: scan every segment in id order, newest record
  // per digest winning (a later append supersedes an earlier one).
  std::vector<std::uint64_t> ids;
  for (const auto& entry : fs::directory_iterator(config_.directory, ec)) {
    const std::string name = entry.path().filename().string();
    constexpr std::size_t kPrefixLen = sizeof(kSegmentPrefix) - 1;
    constexpr std::size_t kSuffixLen = sizeof(kSegmentSuffix) - 1;
    if (name.size() <= kPrefixLen + kSuffixLen ||
        name.rfind(kSegmentPrefix, 0) != 0 ||
        name.compare(name.size() - kSuffixLen, kSuffixLen,
                     kSegmentSuffix) != 0) {
      continue;
    }
    const std::string digits =
        name.substr(kPrefixLen, name.size() - kPrefixLen - kSuffixLen);
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos) {
      continue;  // foreign file; a garbage directory must open cleanly
    }
    ids.push_back(std::stoull(digits));
  }
  if (ec) {
    throw std::runtime_error("disk cache: cannot list directory '" +
                             config_.directory + "'");
  }
  std::sort(ids.begin(), ids.end());
  for (const std::uint64_t id : ids) {
    segments_[id].bytes = ScanSegment(id);
  }
  if (!read_only_) {
    std::lock_guard<std::mutex> lock(append_mutex_);
    RetireSegmentsLocked();  // config may have shrunk since last run
  }
}

DiskCache::~DiskCache() {
  std::lock_guard<std::mutex> lock(append_mutex_);
  if (active_ != nullptr) {
    std::fclose(active_);
    active_ = nullptr;
  }
  if (lock_fd_ >= 0) {
    ::close(lock_fd_);
    std::error_code ec;
    fs::remove(fs::path(config_.directory) / kLockName, ec);
  }
}

void DiskCache::AcquireLock() {
  const std::string lock_path =
      (fs::path(config_.directory) / kLockName).string();
  // Two attempts: the second handles exactly one stale-lock takeover;
  // losing the recreate race to another starter means a live appender
  // exists, which is the read-only case anyway.
  for (int attempt = 0; attempt < 2; ++attempt) {
    const int fd =
        ::open(lock_path.c_str(), O_CREAT | O_EXCL | O_WRONLY, 0644);
    if (fd >= 0) {
      const std::string pid = std::to_string(::getpid()) + "\n";
      if (::write(fd, pid.data(), pid.size()) < 0) {
        // The pid is advisory (staleness detection); keep the lock.
      }
      lock_fd_ = fd;
      read_only_ = false;
      return;
    }
    if (errno != EEXIST) {
      read_only_ = true;  // unwritable directory: serve what's there
      return;
    }
    long pid = 0;
    {
      std::ifstream in(lock_path);
      in >> pid;
    }
    if (pid > 0 && !(::kill(static_cast<pid_t>(pid), 0) == -1 &&
                     errno == ESRCH)) {
      read_only_ = true;  // live appender owns the store
      return;
    }
    // Dead pid or unreadable garbage: a crashed appender's leftover.
    std::error_code ec;
    fs::remove(lock_path, ec);
  }
  read_only_ = true;
}

std::string DiskCache::SegmentPath(std::uint64_t segment_id) const {
  char name[64];
  std::snprintf(name, sizeof(name), "%s%08llu%s", kSegmentPrefix,
                static_cast<unsigned long long>(segment_id), kSegmentSuffix);
  return (fs::path(config_.directory) / name).string();
}

std::uint64_t DiskCache::ScanSegment(std::uint64_t segment_id) {
  std::string data;
  {
    std::ifstream in(SegmentPath(segment_id), std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    data = buf.str();
  }
  const std::uint64_t size = data.size();
  const auto count_corrupt = [this] {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.corrupt_skipped;
  };
  if (size < kSegmentHeaderBytes || GetU32(data.data()) != kSegmentMagic ||
      GetU32(data.data() + 4) != kFormatVersion) {
    if (size > 0) {
      count_corrupt();  // torn creation or foreign bytes; serve nothing
    }
    return size;
  }
  std::uint64_t pos = kSegmentHeaderBytes;
  while (pos < size) {
    if (size - pos < kRecordHeaderBytes + kCrcBytes) {
      count_corrupt();  // torn tail: a crash mid-header
      break;
    }
    RecordHeader header;
    if (!DecodeHeader(data.data() + pos, header) ||
        !PlausibleLengths(header)) {
      // The frame itself is untrustworthy, so the declared length is
      // too: abandon the rest of the segment rather than resync into
      // garbage. Everything already indexed stays served.
      count_corrupt();
      break;
    }
    const std::uint64_t framed = FramedLength(header);
    if (pos + framed > size) {
      count_corrupt();  // torn tail: a crash mid-payload
      break;
    }
    const std::uint32_t stored_crc =
        GetU32(data.data() + pos + framed - kCrcBytes);
    if (Crc32(data.data() + pos, framed - kCrcBytes) != stored_crc) {
      // Bit rot inside an intact frame: the declared lengths are
      // covered by the (failed) CRC but resyncing by them is safe —
      // worst case the next magic check abandons the segment.
      count_corrupt();
      pos += framed;
      continue;
    }
    IndexShard& shard = index_[router_.IndexFor(header.digest)];
    std::lock_guard<std::mutex> lock(shard.mutex);
    IndexPut(shard, header.digest,
             RecordLoc{segment_id, pos, static_cast<std::uint32_t>(framed)});
    pos += framed;
  }
  return size;
}

void DiskCache::IndexPut(IndexShard& shard, std::uint64_t digest,
                         RecordLoc loc) {
  const std::uint32_t added = loc.length;
  const auto displaced = shard.slots.Put(digest, loc);
  std::lock_guard<std::mutex> lock(stats_mutex_);
  stats_.bytes += added;
  if (displaced.has_value()) {
    stats_.bytes -= displaced->length;
  } else {
    ++stats_.entries;
  }
}

std::optional<DiskCache::DecodedRecord> DiskCache::ReadRecord(
    const RecordLoc& loc) const {
  static obs::Histogram& read_us = obs::Metrics().GetHistogram("disk.read_us");
  obs::ScopedHistogramTimer timer(read_us);
  std::ifstream in(SegmentPath(loc.segment_id), std::ios::binary);
  if (!in) {
    return std::nullopt;
  }
  std::string data(loc.length, '\0');
  in.seekg(static_cast<std::streamoff>(loc.offset));
  in.read(data.data(), static_cast<std::streamsize>(loc.length));
  if (in.gcount() != static_cast<std::streamsize>(loc.length)) {
    return std::nullopt;
  }
  // Re-verify everything at serve time: the index is a hint, the
  // record bytes are the authority.
  RecordHeader header;
  if (loc.length < kRecordHeaderBytes + kCrcBytes ||
      !DecodeHeader(data.data(), header) || !PlausibleLengths(header) ||
      FramedLength(header) != loc.length) {
    return std::nullopt;
  }
  const std::uint32_t stored_crc =
      GetU32(data.data() + loc.length - kCrcBytes);
  if (Crc32(data.data(), loc.length - kCrcBytes) != stored_crc) {
    return std::nullopt;
  }
  DecodedRecord decoded;
  decoded.digest = header.digest;
  const char* p = data.data() + kRecordHeaderBytes;
  decoded.key_text.assign(p, header.key_len);
  p += header.key_len;
  decoded.value.certificate_json.assign(p, header.cert_len);
  p += header.cert_len;
  decoded.value.treated_design_text.assign(p, header.design_len);
  decoded.value.deadlock_free = header.deadlock_free;
  decoded.value.initially_deadlock_free = header.initially_deadlock_free;
  decoded.value.iterations = header.iterations;
  decoded.value.vcs_added = header.vcs_added;
  decoded.value.flows_rerouted = header.flows_rerouted;
  decoded.value.channels_before = header.channels_before;
  decoded.value.channels_after = header.channels_after;
  return decoded;
}

std::shared_ptr<const CachedCertification> DiskCache::Lookup(
    std::uint64_t digest, const std::string& key_text) {
  return LookupImpl(digest, key_text, /*count_miss=*/true);
}

std::shared_ptr<const CachedCertification> DiskCache::Revalidate(
    std::uint64_t digest, const std::string& key_text) {
  return LookupImpl(digest, key_text, /*count_miss=*/false);
}

std::shared_ptr<const CachedCertification> DiskCache::LookupImpl(
    std::uint64_t digest, const std::string& key_text, bool count_miss) {
  IndexShard& shard = index_[router_.IndexFor(digest)];
  // The shard mutex is held across the record read: segment retirement
  // takes every shard mutex while dropping a segment's entries, so a
  // file is never unlinked under a reader following an index hint.
  std::lock_guard<std::mutex> lock(shard.mutex);
  std::optional<DecodedRecord> decoded;
  bool damaged = false;
  std::uint32_t damaged_bytes = 0;
  RecordLoc* slot = shard.slots.Find(
      digest, key_text, [&](const RecordLoc& loc) -> const std::string* {
        decoded = ReadRecord(loc);
        if (!decoded.has_value() || decoded->digest != digest) {
          damaged = true;
          damaged_bytes = loc.length;
          return nullptr;
        }
        return &decoded->key_text;
      });
  if (slot == nullptr) {
    std::lock_guard<std::mutex> stats_lock(stats_mutex_);
    if (damaged) {
      // The bytes under the hint are unservable; drop the hint so the
      // next request goes straight to recompute (whose insert will
      // re-publish a good record).
      shard.slots.Erase(digest);
      ++stats_.corrupt_skipped;
      --stats_.entries;
      stats_.bytes -= damaged_bytes;
    }
    if (count_miss) {
      ++stats_.misses;
    }
    return nullptr;
  }
  {
    std::lock_guard<std::mutex> stats_lock(stats_mutex_);
    ++stats_.hits;
  }
  return std::make_shared<const CachedCertification>(
      std::move(decoded->value));
}

bool DiskCache::OpenActiveSegment() {
  const std::uint64_t id =
      segments_.empty() ? 1 : segments_.rbegin()->first + 1;
  std::FILE* f = std::fopen(SegmentPath(id).c_str(), "wb");
  if (f == nullptr) {
    return false;
  }
  std::string header;
  PutU32(header, kSegmentMagic);
  PutU32(header, kFormatVersion);
  if (std::fwrite(header.data(), 1, header.size(), f) != header.size() ||
      std::fflush(f) != 0) {
    std::fclose(f);
    std::error_code ec;
    fs::remove(SegmentPath(id), ec);
    return false;
  }
  active_ = f;
  active_id_ = id;
  active_bytes_ = kSegmentHeaderBytes;
  segments_[id].bytes = kSegmentHeaderBytes;
  return true;
}

std::optional<DiskCache::RecordLoc> DiskCache::AppendLocked(
    const std::string& record) {
  // Lazy open: the appender starts a *fresh* segment on its first
  // insert rather than at construction, so read-mostly restarts don't
  // litter the directory with empty segments; never append to an old
  // segment (its tail may be torn from a crash).
  if (active_ == nullptr && !OpenActiveSegment()) {
    return std::nullopt;
  }
  const std::uint64_t offset = active_bytes_;
  const bool ok =
      std::fwrite(record.data(), 1, record.size(), active_) ==
          record.size() &&
      std::fflush(active_) == 0;
  if (!ok) {
    // A partial tail may now exist; abandon the segment (the next open
    // scan will skip the torn record) and let the next insert start a
    // fresh one.
    std::fclose(active_);
    active_ = nullptr;
    return std::nullopt;
  }
  active_bytes_ += record.size();
  segments_[active_id_].bytes = active_bytes_;
  RecordLoc loc{active_id_, offset, static_cast<std::uint32_t>(record.size())};
  if (active_bytes_ >= config_.segment_bytes) {
    std::fclose(active_);
    active_ = nullptr;  // rotated; next insert opens the successor
  }
  return loc;
}

void DiskCache::Insert(std::uint64_t digest, std::string key_text,
                       CachedCertification value) {
  if (read_only_) {
    return;  // another live process owns the appender lock
  }
  static obs::Histogram& write_us =
      obs::Metrics().GetHistogram("disk.write_us");
  obs::ScopedHistogramTimer timer(write_us);
  const std::string record = EncodeRecord(digest, key_text, value);
  if (record.size() > config_.max_bytes) {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.oversize_rejections;
    return;
  }
  std::lock_guard<std::mutex> lock(append_mutex_);
  const auto loc = AppendLocked(record);
  if (!loc.has_value()) {
    return;  // I/O failure: degrade to not-persisted, never to wrong data
  }
  {
    IndexShard& shard = index_[router_.IndexFor(digest)];
    std::lock_guard<std::mutex> shard_lock(shard.mutex);
    IndexPut(shard, digest, *loc);
  }
  {
    std::lock_guard<std::mutex> stats_lock(stats_mutex_);
    ++stats_.insertions;
  }
  RetireSegmentsLocked();
}

void DiskCache::RetireSegmentsLocked() {
  std::uint64_t total = 0;
  for (const auto& [id, info] : segments_) {
    total += info.bytes;
  }
  while (total > config_.max_bytes && !segments_.empty()) {
    const std::uint64_t victim = segments_.begin()->first;
    if (active_ != nullptr && victim == active_id_) {
      break;  // never retire the segment being appended to
    }
    total -= segments_.begin()->second.bytes;
    DropSegment(victim, /*count_as_evictions=*/true);
  }
}

void DiskCache::DropSegment(std::uint64_t segment_id,
                            bool count_as_evictions) {
  std::size_t dropped_entries = 0;
  std::uint64_t dropped_bytes = 0;
  for (IndexShard& shard : index_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    dropped_entries += shard.slots.EraseIf(
        [&](std::uint64_t /*digest*/, const RecordLoc& loc) {
          if (loc.segment_id != segment_id) {
            return false;
          }
          dropped_bytes += loc.length;
          return true;
        });
  }
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    stats_.entries -= dropped_entries;
    stats_.bytes -= dropped_bytes;
    if (count_as_evictions) {
      stats_.evictions += dropped_entries;
    }
  }
  std::error_code ec;
  fs::remove(SegmentPath(segment_id), ec);
  segments_.erase(segment_id);
}

CacheStats DiskCache::Stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

void DiskCache::Clear() {
  std::lock_guard<std::mutex> lock(append_mutex_);
  if (active_ != nullptr) {
    std::fclose(active_);
    active_ = nullptr;
  }
  if (read_only_) {
    // Files belong to the live appender; drop only this process's
    // index so it stops serving them.
    std::size_t dropped = 0;
    std::uint64_t dropped_bytes = 0;
    for (IndexShard& shard : index_) {
      std::lock_guard<std::mutex> shard_lock(shard.mutex);
      shard.slots.ForEach([&](std::uint64_t, const RecordLoc& loc) {
        ++dropped;
        dropped_bytes += loc.length;
      });
      shard.slots.Clear();
    }
    std::lock_guard<std::mutex> stats_lock(stats_mutex_);
    stats_.entries -= dropped;
    stats_.bytes -= dropped_bytes;
    return;
  }
  std::vector<std::uint64_t> ids;
  for (const auto& [id, info] : segments_) {
    ids.push_back(id);
  }
  for (const std::uint64_t id : ids) {
    DropSegment(id, /*count_as_evictions=*/false);
  }
}

std::size_t DiskCache::SegmentCount() const {
  std::lock_guard<std::mutex> lock(append_mutex_);
  return segments_.size();
}

std::size_t DiskCache::Compact() {
  if (read_only_) {
    return 0;
  }
  std::lock_guard<std::mutex> lock(append_mutex_);
  if (active_ != nullptr) {
    std::fclose(active_);  // the active segment compacts like any other
    active_ = nullptr;
  }
  std::uint64_t before = 0;
  for (const auto& [id, info] : segments_) {
    before += info.bytes;
  }
  const std::uint64_t old_last =
      segments_.empty() ? 0 : segments_.rbegin()->first;
  // Snapshot the live locations, then rewrite each surviving record
  // into fresh segments. Concurrent lookups stay correct throughout:
  // old files are deleted only after the index points past them, under
  // the shard mutexes (DropSegment).
  std::vector<std::pair<std::uint64_t, RecordLoc>> live;
  for (IndexShard& shard : index_) {
    std::lock_guard<std::mutex> shard_lock(shard.mutex);
    shard.slots.ForEach([&](std::uint64_t digest, const RecordLoc& loc) {
      live.emplace_back(digest, loc);
    });
  }
  for (const auto& [digest, loc] : live) {
    const auto decoded = ReadRecord(loc);
    IndexShard& shard = index_[router_.IndexFor(digest)];
    if (!decoded.has_value() || decoded->digest != digest) {
      std::lock_guard<std::mutex> shard_lock(shard.mutex);
      if (shard.slots.Erase(digest)) {
        std::lock_guard<std::mutex> stats_lock(stats_mutex_);
        ++stats_.corrupt_skipped;
        --stats_.entries;
        stats_.bytes -= loc.length;
      }
      continue;
    }
    const std::string record =
        EncodeRecord(digest, decoded->key_text, decoded->value);
    const auto new_loc = AppendLocked(record);
    if (!new_loc.has_value()) {
      break;  // I/O trouble: keep serving from the old segments
    }
    std::lock_guard<std::mutex> shard_lock(shard.mutex);
    IndexPut(shard, digest, *new_loc);
  }
  for (std::uint64_t id = segments_.empty() ? 1 : segments_.begin()->first;
       id <= old_last;) {
    const auto it = segments_.find(id);
    if (it == segments_.end()) {
      ++id;
      continue;
    }
    DropSegment(id, /*count_as_evictions=*/false);
    ++id;
  }
  std::uint64_t after = 0;
  for (const auto& [id, info] : segments_) {
    after += info.bytes;
  }
  return before > after ? static_cast<std::size_t>(before - after) : 0;
}

TieredCertCache::TieredCertCache(CacheConfig memory_config)
    : memory_(memory_config) {}

TieredCertCache::TieredCertCache(CacheConfig memory_config,
                                 std::unique_ptr<DiskCache> disk)
    : memory_(memory_config), disk_(std::move(disk)) {}

std::shared_ptr<const CachedCertification> TieredCertCache::Lookup(
    std::uint64_t digest, const std::string& key_text) {
  if (auto hit = memory_.Lookup(digest, key_text)) {
    return hit;
  }
  if (disk_ == nullptr) {
    return nullptr;
  }
  auto hit = disk_->Lookup(digest, key_text);
  if (hit != nullptr) {
    // Promote: the repeat traffic this entry is about to see should be
    // memory-speed, not a disk read per request.
    memory_.Insert(digest, key_text, *hit);
    std::lock_guard<std::mutex> lock(tier_mutex_);
    ++promotions_;
  }
  return hit;
}

std::shared_ptr<const CachedCertification> TieredCertCache::Revalidate(
    std::uint64_t digest, const std::string& key_text) {
  if (auto hit = memory_.Revalidate(digest, key_text)) {
    return hit;
  }
  if (disk_ == nullptr) {
    return nullptr;
  }
  auto hit = disk_->Revalidate(digest, key_text);
  if (hit != nullptr) {
    memory_.Insert(digest, key_text, *hit);
    std::lock_guard<std::mutex> lock(tier_mutex_);
    ++promotions_;
  }
  return hit;
}

void TieredCertCache::Insert(std::uint64_t digest, std::string key_text,
                             CachedCertification value) {
  if (disk_ != nullptr && !disk_->read_only()) {
    // Write through (demote) first, then publish to memory: a crash
    // between the two loses only the fast copy, never the durable one.
    disk_->Insert(digest, key_text, value);
    {
      std::lock_guard<std::mutex> lock(tier_mutex_);
      ++demotions_;
    }
  }
  memory_.Insert(digest, std::move(key_text), std::move(value));
}

CacheStats TieredCertCache::Stats() const {
  CacheStats stats = memory_.Stats();
  std::lock_guard<std::mutex> lock(tier_mutex_);
  stats.promotions = promotions_;
  stats.demotions = demotions_;
  return stats;
}

CacheStats TieredCertCache::DiskStats() const {
  return disk_ != nullptr ? disk_->Stats() : CacheStats{};
}

void TieredCertCache::Clear() {
  memory_.Clear();
  if (disk_ != nullptr) {
    disk_->Clear();
  }
}

}  // namespace nocdr::serve
