// Persistent disk tier of the certification cache, and the tiered
// composite the service consumes.
//
// The in-memory certificate cache dies with the process, so every
// restart of nocdr_serve — and every additional worker process on the
// same machine — pays the full cold-recompute cost the warm-hit
// speedup exists to avoid. DiskCache makes cache capacity and warmth
// survive the process boundary: a content-addressed store of
// certification results in append-only, checksummed segment files
// under one directory, with an in-memory digest index rebuilt by
// scanning the segments on open.
//
// On-disk format (all integers little-endian):
//
//   segment file  cache-<id>.seg
//     [8-byte segment header: magic "NDSG" u32, format version u32]
//     [record] [record] ...
//
//   record
//     [48-byte header: magic "NDCR" u32, key_len u32, digest u64,
//      cert_len u32, design_len u32, deadlock_free u8,
//      initially_deadlock_free u8, pad u16, iterations u32,
//      vcs_added u32, flows_rerouted u32, channels_before u32,
//      channels_after u32]
//     [key text] [certificate json] [treated design text]
//     [crc32 u32 over header + payloads]
//
// Trust model: nothing read back is trusted until proven. Every record
// carries a CRC32 over header and payload; the open scan skips (and
// counts) any record that fails it — a torn tail from a crashed
// appender, a bit-flipped payload — resyncing by the declared record
// length when the frame is plausible and abandoning the segment when
// it is not. Lookups re-verify the CRC *and* compare the full key text
// at serve time (the index is a hint, not an authority), so a damaged
// store or a 64-bit digest collision degrades to a miss and a
// recompute, never to serving wrong bytes. Entries are never updated
// in place; a re-publish appends a newer record and the index points
// at the newest, so torn writes cannot damage previously-served data.
//
// Sharing model: multi-reader / single-appender. The appender owns a
// LOCK file (ASCII pid, created O_EXCL); a second process mounting the
// same directory finds the lock held by a live pid and falls back to
// read-only — lookups serve, disk inserts are skipped. A lock whose
// pid is dead (crashed appender) is stale and is silently taken over.
// This lets a fleet of worker processes share one warm directory: one
// writes, the rest read through.
//
// Capacity: the store is bounded by max_bytes; when appends exceed it,
// whole retired (non-active) segments are deleted oldest-first and
// their index entries dropped (counted as evictions). Compact()
// rewrites only the live newest records into fresh segments, dropping
// superseded and corrupt ones — run at open via --cache-compact.
#pragma once

#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "serve/cache_tier.h"
#include "serve/cert_cache.h"
#include "util/keyed_lookup.h"

namespace nocdr::serve {

struct DiskCacheConfig {
  /// Directory holding the segment files and the LOCK file; created if
  /// absent. The content-addressed keys make the store position- and
  /// process-independent: any service mounting this directory serves
  /// the same entries.
  std::string directory;
  /// Whole-store byte bound (sum of segment file sizes). Exceeding it
  /// retires whole segments oldest-first.
  std::size_t max_bytes = 1ull << 30;
  /// Appender segment rotation threshold: a segment that grows past
  /// this is closed and a new one started. Smaller segments make
  /// retirement finer-grained.
  std::size_t segment_bytes = 8ull << 20;
  /// Index shard count (rounded up to a power of two). Shards the
  /// digest index exactly like the memory tier shards its map.
  std::size_t index_shards = 16;
};

/// The persistent tier. Thread-safe; implements the same CacheTier
/// surface as the memory tier, so TieredCertCache composes the two
/// without knowing which is which.
class DiskCache : public CacheTier<CachedCertification> {
 public:
  /// Opens (creating if needed) the store at config.directory, scans
  /// every segment to rebuild the digest index (newest record per key
  /// wins; damaged records are skipped and counted), and takes the
  /// appender lock — falling back to read-only if another live process
  /// holds it. Throws std::runtime_error only if the directory cannot
  /// be created or listed at all.
  explicit DiskCache(DiskCacheConfig config);
  ~DiskCache() override;

  std::shared_ptr<const CachedCertification> Lookup(
      std::uint64_t digest, const std::string& key_text) override;
  std::shared_ptr<const CachedCertification> Revalidate(
      std::uint64_t digest, const std::string& key_text) override;

  /// Appends a record and points the index at it. No-op (beyond the
  /// oversize counter) in read-only mode or when the record alone
  /// exceeds max_bytes.
  void Insert(std::uint64_t digest, std::string key_text,
              CachedCertification value) override;

  [[nodiscard]] CacheStats Stats() const override;

  /// Deletes every segment and drops the index (writable mode only;
  /// read-only Clear drops just this process's index). Lifetime
  /// counters stay.
  void Clear() override;

  /// Rewrites live records into fresh segments and deletes the old
  /// ones, dropping superseded and damaged records. Returns bytes
  /// reclaimed. No-op in read-only mode.
  std::size_t Compact();

  /// True when another live process owns the appender lock: lookups
  /// serve, inserts are skipped.
  [[nodiscard]] bool read_only() const { return read_only_; }

  [[nodiscard]] const std::string& directory() const {
    return config_.directory;
  }

  /// Segment files currently on disk (tests and the compaction bench).
  [[nodiscard]] std::size_t SegmentCount() const;

 private:
  /// Where a live record lives: segment + byte offset + framed length.
  struct RecordLoc {
    std::uint64_t segment_id = 0;
    std::uint64_t offset = 0;
    std::uint32_t length = 0;  // header + payloads + crc
  };

  struct IndexShard {
    mutable std::mutex mutex;
    util::KeyedSlotMap<RecordLoc> slots;
  };

  struct SegmentInfo {
    std::uint64_t bytes = 0;
  };

  /// A record decoded and CRC-verified from disk.
  struct DecodedRecord {
    std::uint64_t digest = 0;
    std::string key_text;
    CachedCertification value;
  };

  std::string SegmentPath(std::uint64_t segment_id) const;
  /// Scans one segment, feeding valid records to the index. Returns
  /// the segment's byte size on disk.
  std::uint64_t ScanSegment(std::uint64_t segment_id);
  /// Reads and verifies the record at \p loc; nullopt (and a
  /// corrupt_skipped count) when the bytes fail the checks.
  std::optional<DecodedRecord> ReadRecord(const RecordLoc& loc) const;
  /// Indexes \p loc under \p digest, adjusting live-byte accounting.
  /// Caller holds the shard mutex.
  void IndexPut(IndexShard& shard, std::uint64_t digest, RecordLoc loc);
  std::shared_ptr<const CachedCertification> LookupImpl(
      std::uint64_t digest, const std::string& key_text, bool count_miss);
  /// Takes or observes the LOCK file; sets read_only_.
  void AcquireLock();
  /// Opens a fresh active segment for appending. Caller holds
  /// append_mutex_. Returns false (leaving the store effectively
  /// insert-dead until the next open) on I/O failure.
  bool OpenActiveSegment();
  /// Appends one encoded record to the active segment (rotating as
  /// needed) and returns its location; nullopt on I/O failure, after
  /// which the half-written tail is abandoned for the next open scan
  /// to skip. Caller holds append_mutex_.
  std::optional<RecordLoc> AppendLocked(const std::string& record);
  /// Deletes oldest retired segments until the store fits max_bytes.
  /// Caller holds append_mutex_.
  void RetireSegmentsLocked();
  /// Drops every index entry pointing into \p segment_id, counting
  /// \p count_as_evictions, and forgets the segment.
  void DropSegment(std::uint64_t segment_id, bool count_as_evictions);

  DiskCacheConfig config_;
  util::ShardRouter router_;
  std::vector<IndexShard> index_;

  /// Guards the appender state: active segment stream, segment table.
  mutable std::mutex append_mutex_;
  std::map<std::uint64_t, SegmentInfo> segments_;  // id -> info, ordered
  std::FILE* active_ = nullptr;
  std::uint64_t active_id_ = 0;
  std::uint64_t active_bytes_ = 0;

  bool read_only_ = false;
  int lock_fd_ = -1;

  mutable std::mutex stats_mutex_;
  CacheStats stats_;  // entries/bytes maintained live, counters monotonic
};

/// The two-level certificate cache CertificationService consumes:
/// memory fronts disk. A memory hit never touches disk; a disk hit is
/// *promoted* (copied up into memory, counted) so its repeats are
/// memory-speed; an insert is *demoted* (written through to disk,
/// counted) so the entry survives the process. With no disk tier
/// configured this is exactly the old bare memory cache — same
/// counters, same behavior, which the serve bench baseline pins.
class TieredCertCache : public CacheTier<CachedCertification> {
 public:
  /// Memory-only (no persistence).
  explicit TieredCertCache(CacheConfig memory_config);
  /// Memory fronting a disk store. \p disk may be null (memory-only).
  TieredCertCache(CacheConfig memory_config, std::unique_ptr<DiskCache> disk);

  std::shared_ptr<const CachedCertification> Lookup(
      std::uint64_t digest, const std::string& key_text) override;
  std::shared_ptr<const CachedCertification> Revalidate(
      std::uint64_t digest, const std::string& key_text) override;
  void Insert(std::uint64_t digest, std::string key_text,
              CachedCertification value) override;

  /// Memory-tier stats plus the composite's promotion/demotion
  /// counters. Deliberately *not* a merge with disk counters: the
  /// memory tier's hit/miss/eviction numbers keep their exact bare-
  /// cache meaning (the serve bench gates them), and the disk tier is
  /// reported separately via DiskStats().
  [[nodiscard]] CacheStats Stats() const override;

  /// Disk-tier stats; all-zero when no disk tier is configured.
  [[nodiscard]] CacheStats DiskStats() const;

  /// Clears both tiers (disk: deletes segments when writable).
  void Clear() override;

  [[nodiscard]] bool has_disk() const { return disk_ != nullptr; }
  /// Null when memory-only.
  [[nodiscard]] DiskCache* disk() { return disk_.get(); }

 private:
  ShardedCertCache memory_;
  std::unique_ptr<DiskCache> disk_;

  mutable std::mutex tier_mutex_;
  std::uint64_t promotions_ = 0;
  std::uint64_t demotions_ = 0;
};

}  // namespace nocdr::serve
