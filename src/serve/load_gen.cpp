#include "serve/load_gen.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <queue>
#include <stdexcept>
#include <utility>

#include "util/rng.h"

namespace nocdr::serve::load {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

void FoldU64(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h = (h ^ ((v >> (8 * i)) & 0xff)) * kFnvPrime;
  }
}

void FoldString(std::uint64_t& h, const std::string& s) {
  FoldU64(h, s.size());
  for (const char c : s) {
    h = (h ^ static_cast<unsigned char>(c)) * kFnvPrime;
  }
}

/// One exponential inter-arrival draw in virtual microseconds.
/// glibc/libc++ std::log is correctly rounded for doubles, so the draw
/// is bit-identical across the CI compilers.
double ExpDraw(Rng& rng, double rate_per_us) {
  const double u = rng.NextDouble();
  return -std::log(1.0 - u) / rate_per_us;
}

}  // namespace

std::string ArrivalKindName(ArrivalKind kind) {
  switch (kind) {
    case ArrivalKind::kPoisson:
      return "poisson";
    case ArrivalKind::kBursty:
      return "bursty";
  }
  return "unknown";
}

std::optional<ArrivalKind> ParseArrivalKind(const std::string& name) {
  for (const ArrivalKind kind : AllArrivalKinds()) {
    if (ArrivalKindName(kind) == name) {
      return kind;
    }
  }
  return std::nullopt;
}

std::vector<ArrivalKind> AllArrivalKinds() {
  return {ArrivalKind::kPoisson, ArrivalKind::kBursty};
}

std::string VerdictName(Verdict verdict) {
  switch (verdict) {
    case Verdict::kServed:
      return "served";
    case Verdict::kRejectedTokens:
      return "rejected_tokens";
    case Verdict::kRejectedQueue:
      return "rejected_queue";
  }
  return "unknown";
}

std::vector<TraceItem> GenerateTrace(const ArrivalConfig& arrival,
                                     std::size_t count,
                                     std::size_t corpus_size,
                                     const std::vector<TraceClassMix>& mix,
                                     std::uint64_t seed,
                                     double hot_fraction) {
  if (corpus_size == 0) {
    throw std::invalid_argument("GenerateTrace: empty corpus");
  }
  if (arrival.rate_per_sec <= 0.0) {
    throw std::invalid_argument("GenerateTrace: rate_per_sec must be > 0");
  }
  std::vector<TraceClassMix> classes = mix;
  if (classes.empty()) {
    classes.push_back(TraceClassMix{});
  }
  double total_share = 0.0;
  for (const TraceClassMix& c : classes) {
    total_share += std::max(0.0, c.share);
  }
  if (total_share <= 0.0) {
    total_share = 1.0;
  }

  // Independent sub-streams so e.g. changing the class mix never
  // perturbs the arrival-time sequence.
  Rng rng(seed);
  Rng time_rng = rng.Fork();
  Rng item_rng = rng.Fork();
  Rng class_rng = rng.Fork();

  const double base_rate_us = arrival.rate_per_sec / 1e6;
  // MMPP-2 state; ignored for kPoisson.
  bool in_burst = false;
  double phase_end_us = 0.0;
  if (arrival.kind == ArrivalKind::kBursty) {
    phase_end_us = ExpDraw(time_rng, 1.0 / (arrival.mean_idle_ms * 1000.0));
  }

  const std::size_t hot = std::max<std::size_t>(1, corpus_size / 5);

  std::vector<TraceItem> trace;
  trace.reserve(count);
  double now_us = 0.0;
  for (std::size_t i = 0; i < count; ++i) {
    if (arrival.kind == ArrivalKind::kPoisson) {
      now_us += ExpDraw(time_rng, base_rate_us);
    } else {
      // Draw the next arrival of the modulated process: while the
      // candidate falls past the current phase, advance to the phase
      // boundary, toggle the state, and redraw at the new rate.
      for (;;) {
        const double rate =
            base_rate_us *
            (in_burst ? arrival.burst_factor : arrival.idle_factor);
        const double candidate = now_us + ExpDraw(time_rng, rate);
        if (candidate <= phase_end_us) {
          now_us = candidate;
          break;
        }
        now_us = phase_end_us;
        in_burst = !in_burst;
        const double mean_ms =
            in_burst ? arrival.mean_burst_ms : arrival.mean_idle_ms;
        phase_end_us = now_us + ExpDraw(time_rng, 1.0 / (mean_ms * 1000.0));
      }
    }

    TraceItem item;
    item.arrival_us = static_cast<std::uint64_t>(now_us);
    item.work_index = item_rng.NextBool(hot_fraction)
                          ? static_cast<std::size_t>(item_rng.NextBelow(hot))
                          : static_cast<std::size_t>(
                                item_rng.NextBelow(corpus_size));
    double pick = class_rng.NextDouble() * total_share;
    const TraceClassMix* chosen = &classes.back();
    for (const TraceClassMix& c : classes) {
      pick -= std::max(0.0, c.share);
      if (pick < 0.0) {
        chosen = &c;
        break;
      }
    }
    item.class_name = chosen->name;
    item.rank = chosen->rank;
    trace.push_back(std::move(item));
  }
  return trace;
}

LoadReport ReplayTrace(const std::vector<TraceItem>& trace,
                       const std::vector<std::uint64_t>& costs,
                       const ReplayConfig& config) {
  if (config.servers == 0) {
    throw std::invalid_argument("ReplayTrace: servers must be > 0");
  }
  LoadReport report;
  report.events.resize(trace.size());

  sched::AdmissionController admission(config.admission,
                                       trace.empty() ? 0
                                                     : trace.front().arrival_us);
  sched::ReadyQueue queue(config.discipline, config.seed,
                          config.queue_capacity);
  // Busy virtual servers, as a min-heap of completion times.
  std::priority_queue<std::uint64_t, std::vector<std::uint64_t>,
                      std::greater<std::uint64_t>>
      busy;

  const auto service_us = [&](std::uint64_t cost) {
    const double us = static_cast<double>(cost) * config.cost_us_per_unit;
    return std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(std::llround(us)));
  };

  const auto start_job = [&](const sched::Job& job, std::uint64_t start) {
    EventOutcome& event = report.events[job.payload];
    event.verdict = Verdict::kServed;
    event.arrival_us = job.arrival_us;
    event.start_us = start;
    event.done_us = start + service_us(job.cost);
    event.cost = job.cost;
    event.trace_index = job.payload;
    busy.push(event.done_us);
  };

  // Frees servers whose jobs complete at or before `horizon`, handing
  // each freed slot to the best queued job. A handed-off job's own
  // completion lands back in the heap, so one drain can cascade.
  const auto drain = [&](std::uint64_t horizon) {
    while (!busy.empty() && busy.top() <= horizon) {
      const std::uint64_t freed = busy.top();
      busy.pop();
      if (std::optional<sched::Job> job = queue.Pop()) {
        start_job(*job, freed);
      }
    }
  };

  std::uint64_t seq = 0;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const TraceItem& item = trace[i];
    const std::uint64_t cost =
        item.work_index < costs.size() ? costs[item.work_index] : 1;
    drain(item.arrival_us);

    EventOutcome& event = report.events[i];
    event.arrival_us = item.arrival_us;
    event.start_us = item.arrival_us;
    event.done_us = item.arrival_us;
    event.cost = cost;
    event.trace_index = i;

    if (!admission.TryAdmit(item.class_name, cost, item.arrival_us)) {
      event.verdict = Verdict::kRejectedTokens;
      continue;
    }
    sched::Job job;
    job.seq = seq++;
    job.cost = cost;
    job.rank = item.rank;
    job.arrival_us = item.arrival_us;
    job.payload = i;
    if (busy.size() < config.servers) {
      start_job(job, item.arrival_us);
    } else if (!queue.Push(job)) {
      event.verdict = Verdict::kRejectedQueue;
    }
    // Queued jobs get their outcome when a server frees up.
  }
  // End of arrivals: let the backlog run dry.
  while (!busy.empty()) {
    drain(busy.top());
  }

  // ---- summarize, in trace order ----
  std::vector<ClassLoadStats> classes;
  for (const sched::ClassConfig& c : config.admission.classes) {
    ClassLoadStats stats;
    stats.name = c.name;
    stats.rank = c.rank;
    classes.push_back(stats);
  }
  const auto class_stats = [&](const std::string& name,
                               int rank) -> ClassLoadStats& {
    const std::string& key = name.empty() ? sched::kDefaultClass : name;
    for (ClassLoadStats& c : classes) {
      if (c.name == key) {
        return c;
      }
    }
    ClassLoadStats stats;
    stats.name = key;
    stats.rank = rank;
    classes.push_back(stats);
    return classes.back();
  };

  std::vector<std::uint64_t> latencies;
  latencies.reserve(trace.size());
  std::uint64_t busy_us = 0;
  std::uint64_t digest = kFnvOffset;
  double latency_sum = 0.0;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const EventOutcome& event = report.events[i];
    ClassLoadStats& stats = class_stats(trace[i].class_name, trace[i].rank);
    ++stats.arrivals;
    switch (event.verdict) {
      case Verdict::kServed: {
        ++report.served;
        ++stats.served;
        stats.cost_served += event.cost;
        const std::uint64_t wait = event.WaitUs();
        stats.total_wait_us += wait;
        stats.max_wait_us = std::max(stats.max_wait_us, wait);
        latencies.push_back(event.LatencyUs());
        latency_sum += static_cast<double>(event.LatencyUs());
        busy_us += event.done_us - event.start_us;
        report.makespan_us = std::max(report.makespan_us, event.done_us);
        break;
      }
      case Verdict::kRejectedTokens:
        ++report.rejected_tokens;
        ++stats.rejected_tokens;
        break;
      case Verdict::kRejectedQueue:
        ++report.rejected_queue;
        ++stats.rejected_queue;
        break;
    }
    report.makespan_us = std::max(report.makespan_us, event.arrival_us);
    FoldU64(digest, static_cast<std::uint64_t>(event.verdict));
    FoldU64(digest, event.arrival_us);
    FoldU64(digest, event.start_us);
    FoldU64(digest, event.done_us);
    FoldU64(digest, event.cost);
    FoldString(digest, trace[i].class_name);
  }
  report.classes = std::move(classes);
  report.digest = digest;

  if (!latencies.empty()) {
    std::sort(latencies.begin(), latencies.end());
    const auto pct = [&](double p) {
      const std::size_t idx = std::min(
          latencies.size() - 1,
          static_cast<std::size_t>(p * static_cast<double>(latencies.size())));
      return latencies[idx];
    };
    report.latency.p50 = pct(0.50);
    report.latency.p90 = pct(0.90);
    report.latency.p99 = pct(0.99);
    report.latency.max = latencies.back();
    report.latency.mean = latency_sum / static_cast<double>(latencies.size());
  }
  if (report.makespan_us > 0) {
    report.goodput_per_sec = static_cast<double>(report.served) /
                             (static_cast<double>(report.makespan_us) / 1e6);
    report.utilization =
        static_cast<double>(busy_us) /
        (static_cast<double>(config.servers) *
         static_cast<double>(report.makespan_us));
  }
  return report;
}

OpenLoopOutcome RunOpenLoop(CertificationService& service,
                            SessionService* sessions,
                            const std::vector<WorkItem>& corpus,
                            const std::vector<TraceItem>& trace,
                            const ReplayConfig& config,
                            std::size_t client_threads) {
  OpenLoopOutcome outcome;
  std::vector<std::uint64_t> costs;
  costs.reserve(corpus.size());
  for (const WorkItem& item : corpus) {
    costs.push_back(item.cost);
  }
  outcome.report = ReplayTrace(trace, costs, config);

  // Served events in virtual completion order — the deterministic
  // sequence the real pass executes.
  std::vector<std::size_t> served;
  for (const EventOutcome& event : outcome.report.events) {
    if (event.verdict == Verdict::kServed) {
      served.push_back(event.trace_index);
    }
  }
  std::sort(served.begin(), served.end(), [&](std::size_t a, std::size_t b) {
    const EventOutcome& ea = outcome.report.events[a];
    const EventOutcome& eb = outcome.report.events[b];
    if (ea.done_us != eb.done_us) {
      return ea.done_us < eb.done_us;
    }
    return a < b;
  });

  // Stateless certify items go wide through ServeBatch (payloads are
  // deterministic for any thread count); session bursts mutate live
  // session state, so they apply sequentially in completion order.
  std::vector<CertRequest> requests;
  std::vector<const WorkItem*> session_items;
  for (const std::size_t trace_index : served) {
    const WorkItem& item = corpus[trace[trace_index].work_index];
    if (item.is_session) {
      session_items.push_back(&item);
    } else {
      requests.push_back(item.certify);
    }
  }

  const std::vector<CertResponse> responses =
      service.ServeBatch(requests, client_threads);
  for (const CertResponse& response : responses) {
    if (response.status != ServeStatus::kOk) {
      ++outcome.bad_responses;
    }
  }
  outcome.response_digest = ResponseDigest(responses);

  std::vector<SessionResponse> session_responses;
  if (!session_items.empty()) {
    if (sessions == nullptr) {
      throw std::invalid_argument(
          "RunOpenLoop: corpus has session items but no SessionService");
    }
    session_responses.reserve(session_items.size());
    for (const WorkItem* item : session_items) {
      session_responses.push_back(sessions->Handle(item->burst));
      if (session_responses.back().status != ServeStatus::kOk) {
        ++outcome.bad_responses;
      }
    }
  }
  outcome.session_digest = SessionResponseDigest(session_responses);

  std::uint64_t combined = kFnvOffset;
  FoldU64(combined, outcome.report.digest);
  FoldU64(combined, outcome.response_digest);
  FoldU64(combined, outcome.session_digest);
  outcome.combined_digest = combined;
  return outcome;
}

}  // namespace nocdr::serve::load
