#include "serve/coalescer.h"

#include <utility>

namespace nocdr::serve {

RequestCoalescer::RequestCoalescer(CoalescerConfig config)
    : config_(config), pool_(config.threads) {}

RequestCoalescer::~RequestCoalescer() {
  // Leaders already admitted must finish (they hold promises followers
  // may be blocked on); the pool drains its queue before stopping.
  pool_.WaitIdle();
}

RequestCoalescer::Outcome RequestCoalescer::Submit(
    std::uint64_t digest, const std::string& key_text, const ProbeFn& probe,
    const MakeComputeFn& make_compute) {
  Outcome outcome;
  std::shared_ptr<std::promise<Result>> promise;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    // Probe the cache under the registry lock: a leader retires its
    // entry only after publishing to the cache (also under this lock),
    // so a request can never fall into the gap between "result
    // published" and "entry retired" and start a duplicate computation.
    if (std::optional<Result> resolved = probe()) {
      outcome.kind = Outcome::Kind::kResolved;
      outcome.resolved = std::move(resolved);
      return outcome;
    }
    auto& slots = inflight_[digest];
    for (const InFlight& slot : slots) {
      if (slot.key_text == key_text) {
        outcome.kind = Outcome::Kind::kFollower;
        outcome.future = slot.future;
        return outcome;
      }
    }
    if (pending_ >= config_.max_pending) {
      if (slots.empty()) {
        inflight_.erase(digest);
      }
      outcome.kind = Outcome::Kind::kRejected;
      return outcome;
    }
    outcome.kind = Outcome::Kind::kLeader;
    promise = std::make_shared<std::promise<Result>>();
    outcome.future = promise->get_future().share();
    slots.push_back(InFlight{key_text, outcome.future});
    ++pending_;
  }
  // Leader only, lock released: materialize the computation (this is
  // where the design/request captures get copied, once per key). If
  // that materialization or the pool enqueue itself throws (allocation
  // failure), the registered slot must not leak: followers would block
  // forever on a promise nobody owns and the admission budget would
  // shrink permanently. Poison the promise and retire the slot instead;
  // the caller observes the failure through the future like any other
  // computation error.
  try {
    pool_.Submit([this, digest, key_text, promise,
                  compute = make_compute()]() {
      try {
        // compute() publishes to the cache before returning; only then
        // is the in-flight entry retired below.
        promise->set_value(compute());
      } catch (...) {
        promise->set_exception(std::current_exception());
      }
      Retire(digest, key_text);
    });
  } catch (...) {
    promise->set_exception(std::current_exception());
    Retire(digest, key_text);
  }
  return outcome;
}

void RequestCoalescer::Retire(std::uint64_t digest,
                              const std::string& key_text) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = inflight_.find(digest);
  if (it != inflight_.end()) {
    auto& slots = it->second;
    for (std::size_t i = 0; i < slots.size(); ++i) {
      if (slots[i].key_text == key_text) {
        slots.erase(slots.begin() + static_cast<std::ptrdiff_t>(i));
        break;
      }
    }
    if (slots.empty()) {
      inflight_.erase(it);
    }
  }
  --pending_;
}

std::size_t RequestCoalescer::Pending() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return pending_;
}

}  // namespace nocdr::serve
