// In-flight request coalescing (single-flight) over the runner pool.
//
// When N clients ask for the same certification key concurrently, the
// service must run the computation once and fan the result out — N
// identical RemoveDeadlocks runs would burn N-1 computations to produce
// bit-identical bytes. The coalescer keeps a registry of in-flight
// computations keyed by canonical digest + key text; the first request
// for a key becomes the *leader* (its computation is submitted to the
// shared ThreadPool), later requests become *followers* sharing the
// leader's future.
//
// Exactly-once contract: a request first probes the cache *under the
// coalescer lock* (via the probe callback). The leader's task inserts
// its result into the cache before the registry entry is retired — also
// under the lock — so every request for a key either sees the cached
// value, joins the in-flight leader, or becomes the first leader. With
// an eviction-free cache this makes "one computation per distinct key"
// exact, not probabilistic; tests/test_serve.cpp pins it across thread
// counts.
//
// Backpressure: leaders admitted but not yet finished are bounded by
// max_pending. A request whose key is not in flight and whose admission
// would exceed the bound is rejected immediately (kRejected) — the
// caller turns that into an "overloaded" response instead of queueing
// unboundedly. Followers never count against the bound (they add no
// work).
//
// Exceptions: a leader computation that throws poisons its future;
// leader and followers all observe the same exception, and nothing is
// cached.
#pragma once

#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "runner/thread_pool.h"
#include "serve/cert_cache.h"

namespace nocdr::serve {

struct CoalescerConfig {
  /// Worker threads of the compute pool; 0 = hardware concurrency.
  std::size_t threads = 0;
  /// Max leaders admitted (queued + running). 0 rejects everything.
  std::size_t max_pending = 1024;
};

class RequestCoalescer {
 public:
  using Result = CachedCertification;
  /// Cache probe, called with the registry lock held; return a value to
  /// resolve the request without computing.
  using ProbeFn = std::function<std::optional<Result>()>;
  /// The computation plus its publication (cache insert); runs on the
  /// pool, exactly once per admitted leader. May throw.
  using ComputeFn = std::function<Result()>;
  /// Builds the ComputeFn. Called synchronously inside Submit, after
  /// the leader decision and outside the registry lock — so the
  /// (potentially multi-KB) captures behind the computation are copied
  /// exactly once per leader, never for resolved, follower or rejected
  /// requests. The factory itself should capture by reference.
  using MakeComputeFn = std::function<ComputeFn()>;

  struct Outcome {
    enum class Kind {
      kResolved,  // probe produced the value; `resolved` is set
      kLeader,    // this request started the computation; wait on future
      kFollower,  // joined an in-flight computation; wait on future
      kRejected,  // admission bound hit; no future
    };
    Kind kind = Kind::kRejected;
    std::optional<Result> resolved;
    std::shared_future<Result> future;
  };

  explicit RequestCoalescer(CoalescerConfig config = {});

  RequestCoalescer(const RequestCoalescer&) = delete;
  RequestCoalescer& operator=(const RequestCoalescer&) = delete;

  /// Destructor waits for in-flight computations.
  ~RequestCoalescer();

  /// Resolves, joins, leads or rejects the request for
  /// (\p digest, \p key_text). The computation \p make_compute builds
  /// must insert its result into the cache the probe reads before
  /// returning (the exactly-once argument above depends on that
  /// ordering).
  Outcome Submit(std::uint64_t digest, const std::string& key_text,
                 const ProbeFn& probe, const MakeComputeFn& make_compute);

  /// Leaders admitted but not yet finished.
  [[nodiscard]] std::size_t Pending() const;

  /// Tasks outstanding on the underlying pool (stats surface).
  [[nodiscard]] std::size_t PoolBacklog() const {
    return pool_.UnfinishedCount();
  }

  [[nodiscard]] std::size_t ThreadCount() const { return pool_.ThreadCount(); }

 private:
  struct InFlight {
    std::string key_text;
    std::shared_future<Result> future;
  };

  /// Removes the in-flight slot for (digest, key_text) and releases its
  /// admission budget.
  void Retire(std::uint64_t digest, const std::string& key_text);

  CoalescerConfig config_;
  mutable std::mutex mutex_;
  /// digest -> in-flight computations with that digest (more than one
  /// only under a digest collision, which text comparison untangles).
  std::unordered_map<std::uint64_t, std::vector<InFlight>> inflight_;
  std::size_t pending_ = 0;
  ThreadPool pool_;  // last member: workers must die before the state above
};

}  // namespace nocdr::serve
