// Pluggable admission control and queue disciplines for the
// certification service.
//
// PR 5's coalescer already had one admission policy — a hard bound on
// in-flight computations, answered with the structured "overloaded"
// error. This module grows that path into a policy layer:
//
//   * a deterministic *cost model* (EstimateCost) mapping a design's
//     size to abstract cost units, so shortest-job-first scheduling and
//     cost-charged token budgets have a machine-independent notion of
//     "job size";
//   * TokenBucket / AdmissionController — token-budget admission in
//     front of the coalescer, optionally split into weighted priority
//     classes, with per-class fairness counters (admitted / rejected /
//     cost) surfaced through ServiceStats and `nocdr_serve --stats`;
//   * ReadyQueue — a bounded ready queue with pluggable disciplines
//     (FIFO, shortest-job-first, priority-class) and fully
//     deterministic ordering: SJF cost ties break on a seeded salt, so
//     a given (seed, job set) pops in exactly one order on every
//     platform and thread count.
//
// Time is always an explicit `now_us` argument (virtual microseconds).
// The open-loop load generator (serve/load_gen.h) drives these classes
// on deterministic virtual time — that is what makes a whole load
// replay bit-identical; the live service maps steady_clock onto the
// same interface. Nothing in here reads a real clock.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "noc/design.h"

namespace nocdr::serve::sched {

/// Ready-queue service order.
enum class Discipline {
  kFifo,      // arrival order
  kSjf,       // shortest job first (EstimateCost), seeded tie-break
  kPriority,  // priority class rank, FIFO within a class
};

/// Stable names: "fifo" / "sjf" / "priority".
std::string DisciplineName(Discipline discipline);
std::optional<Discipline> ParseDiscipline(const std::string& name);
std::vector<Discipline> AllDisciplines();

/// Deterministic service-cost units of a certification job, keyed on
/// design size. Removal cost grows with both the channel count (CDG
/// vertices) and the flow count (cycle-break candidates); the weights
/// match the observed relative cost well enough for SJF ordering and
/// budget charging — the absolute scale is arbitrary.
std::uint64_t EstimateCost(std::size_t channels, std::size_t flows);
std::uint64_t EstimateCost(const NocDesign& design);

/// The class every request without an explicit "class" field lands in.
inline constexpr const char* kDefaultClass = "default";

/// One priority class of the admission policy. Lower rank = more
/// urgent (rank orders the kPriority discipline); weight shares the
/// token budget.
struct ClassConfig {
  std::string name;
  int rank = 0;
  double weight = 1.0;
};

/// Token-budget admission policy. Disabled by default: every request
/// is admitted and only the coalescer's in-flight bound applies.
struct AdmissionConfig {
  bool enabled = false;
  /// Budget refill rate, tokens per (virtual) second, shared by all
  /// classes proportionally to weight.
  double tokens_per_sec = 0.0;
  /// Bucket capacity in tokens; 0 defaults to one second of refill.
  double burst = 0.0;
  /// true: a request costs EstimateCost units; false: every request
  /// costs exactly one token.
  bool charge_cost = false;
  /// Named classes with their own weighted buckets. Empty = one shared
  /// bucket for everyone. Requests naming an unknown class are charged
  /// to kDefaultClass (auto-added with rank 0, weight 1 if absent).
  std::vector<ClassConfig> classes;
};

/// Deterministic token bucket on explicit timestamps.
class TokenBucket {
 public:
  TokenBucket() = default;
  /// Starts full at \p now_us.
  TokenBucket(double tokens_per_us, double capacity, std::uint64_t now_us);

  /// Refills for the elapsed virtual time, then takes \p cost tokens if
  /// available. Monotonic \p now_us is the caller's contract; stale
  /// timestamps are clamped forward.
  bool TryTake(double cost, std::uint64_t now_us);

  [[nodiscard]] double tokens() const { return tokens_; }

 private:
  double rate_per_us_ = 0.0;
  double capacity_ = 0.0;
  double tokens_ = 0.0;
  std::uint64_t last_us_ = 0;
};

/// Per-class fairness counters; the split `nocdr_serve --stats` prints.
struct ClassCounters {
  std::string name;
  int rank = 0;
  std::uint64_t requests = 0;   // TryAdmit calls for this class
  std::uint64_t admitted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t cost_admitted = 0;  // cost units of admitted work
};

/// Thread-safe token-budget admission with per-class buckets.
///
/// With the policy disabled this is a pure counter: everything is
/// admitted, the fairness split still accumulates. Classes not named in
/// the config share kDefaultClass's bucket (and are counted under their
/// own name, so the stats still show who asked).
class AdmissionController {
 public:
  explicit AdmissionController(AdmissionConfig config = {},
                               std::uint64_t now_us = 0);

  /// Admits or rejects \p cost units for \p class_name at \p now_us.
  bool TryAdmit(const std::string& class_name, std::uint64_t cost,
                std::uint64_t now_us);

  [[nodiscard]] const AdmissionConfig& config() const { return config_; }

  /// Snapshot of the per-class counters, config order, classes that
  /// actually sent requests appended after the configured ones.
  [[nodiscard]] std::vector<ClassCounters> Counters() const;

  /// Rank of \p class_name (kDefaultClass rank for unknown names);
  /// the priority key the kPriority discipline uses.
  [[nodiscard]] int RankOf(const std::string& class_name) const;

 private:
  struct Bucket {
    ClassConfig config;
    TokenBucket tokens;
  };

  /// Bucket index serving \p class_name (the default bucket for
  /// unknown names).
  std::size_t BucketIndex(const std::string& class_name) const;

  AdmissionConfig config_;
  mutable std::mutex mutex_;
  std::vector<Bucket> buckets_;
  std::vector<ClassCounters> counters_;
};

/// One schedulable job. `seq` is the arrival sequence number — the
/// deterministic total order every discipline falls back to.
struct Job {
  std::uint64_t seq = 0;
  std::uint64_t cost = 1;
  int rank = 0;                 // priority class rank (lower = first)
  std::uint64_t arrival_us = 0;
  std::size_t payload = 0;      // caller's index (trace item, request)
};

/// Bounded ready queue with a pluggable discipline and deterministic
/// tie-breaks.
///
/// Ordering keys (all ascending, lexicographic):
///   kFifo:     (seq)
///   kSjf:      (cost, salt, seq)   salt = SplitMix64(seed ^ seq)
///   kPriority: (rank, seq)
///
/// The SJF salt makes equal-cost ordering a pure function of the queue
/// seed — replaying a trace with the same seed pops the same order on
/// every platform; a different seed permutes only within cost ties.
/// Not thread-safe: the virtual-time replay drives it from one event
/// loop, the tests directly.
class ReadyQueue {
 public:
  explicit ReadyQueue(Discipline discipline, std::uint64_t seed,
                      std::size_t capacity);

  /// Enqueues \p job; false when the queue is at capacity (the caller
  /// rejects the job as overloaded).
  bool Push(const Job& job);

  /// Pops the next job per the discipline; nullopt when empty.
  std::optional<Job> Pop();

  [[nodiscard]] std::size_t Size() const { return heap_.size(); }
  [[nodiscard]] bool Empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

 private:
  struct Entry {
    std::uint64_t key0;  // discipline-major key
    std::uint64_t key1;  // tie-break
    std::uint64_t seq;   // final, total order
    Job job;

    bool operator>(const Entry& other) const {
      if (key0 != other.key0) {
        return key0 > other.key0;
      }
      if (key1 != other.key1) {
        return key1 > other.key1;
      }
      return seq > other.seq;
    }
  };

  Discipline discipline_;
  std::uint64_t seed_;
  std::size_t capacity_;
  std::vector<Entry> heap_;  // std::push_heap/pop_heap min-heap
};

}  // namespace nocdr::serve::sched
