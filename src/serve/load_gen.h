// Open-loop load generation for the certification service, on
// deterministic virtual time.
//
// bench_serve (PR 5) drives *closed-loop* mixes: the next request is
// only sent when the previous response is back, so the service can
// never fall behind. Real services face *open-loop* arrivals — requests
// land when the world decides, queues grow when service is slower than
// arrival, and tail latency (p99) is the number operators actually
// watch. This module provides that workload model:
//
//   * GenerateTrace — seeded arrival traces: Poisson (exponential
//     inter-arrival) or bursty MMPP-2 (a two-state Markov-modulated
//     Poisson process alternating seeded high-rate bursts and quiet
//     spells), each item stamped with a virtual arrival time in
//     microseconds, a work-item index and a priority class drawn from
//     a configured mix.
//
//   * ReplayTrace — a discrete-event simulation of the serving loop in
//     *virtual time*: S virtual servers, a bounded sched::ReadyQueue
//     with the configured discipline, token-budget admission
//     (sched::AdmissionController) in front. Service time is the
//     deterministic cost model (sched::EstimateCost) scaled by
//     cost_us_per_unit — never a wall clock — so a given (trace,
//     config) pair replays to a bit-identical per-event timeline,
//     latency distribution and digest on every platform, at any thread
//     count. Queue-full and token rejections are the same "overloaded"
//     verdict the live service answers.
//
//   * RunOpenLoop — the virtual replay plus a *real* serving pass: the
//     served events are executed against a live CertificationService
//     (stateless certify items batched over N client threads) and
//     SessionService (fault_burst items applied in deterministic
//     completion order), folding the payload digests into the replay
//     digest. The combined digest is identical for any client thread
//     count: virtual time fixes the schedule, the service's
//     determinism contract fixes the payloads.
//
// bench_serve_load turns these into the p50/p90/p99 + goodput +
// fairness rows the CI perf gate pins (docs/OPERATIONS.md).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "serve/sched.h"
#include "serve/service.h"
#include "serve/session.h"

namespace nocdr::serve::load {

enum class ArrivalKind {
  kPoisson,  // memoryless exponential inter-arrival
  kBursty,   // MMPP-2: seeded burst / idle phases
};

/// Stable names: "poisson" / "bursty".
std::string ArrivalKindName(ArrivalKind kind);
std::optional<ArrivalKind> ParseArrivalKind(const std::string& name);
std::vector<ArrivalKind> AllArrivalKinds();

struct ArrivalConfig {
  ArrivalKind kind = ArrivalKind::kPoisson;
  /// Long-run mean arrival rate, requests per virtual second.
  double rate_per_sec = 200.0;

  // ---- kBursty (MMPP-2) ----
  /// Burst-state rate multiplier over rate_per_sec.
  double burst_factor = 6.0;
  /// Idle-state rate multiplier (usually < 1).
  double idle_factor = 0.25;
  /// Mean dwell in the burst state, virtual milliseconds.
  double mean_burst_ms = 40.0;
  /// Mean dwell in the idle state, virtual milliseconds.
  double mean_idle_ms = 160.0;
};

/// One priority class of a trace mix. `share`s are normalized over the
/// mix; rank feeds the kPriority discipline (lower = more urgent).
struct TraceClassMix {
  std::string name = sched::kDefaultClass;
  int rank = 0;
  double share = 1.0;
};

/// One open-loop arrival.
struct TraceItem {
  std::uint64_t arrival_us = 0;
  /// Index into the caller's work-item corpus.
  std::size_t work_index = 0;
  std::string class_name;
  int rank = 0;
};

/// Draws \p count arrivals over \p corpus_size work items. Work-item
/// choice is repeat-heavy like real traffic: with probability
/// \p hot_fraction the item comes from the hot fifth of the corpus.
/// Byte-identical for identical arguments on every platform.
std::vector<TraceItem> GenerateTrace(const ArrivalConfig& arrival,
                                     std::size_t count,
                                     std::size_t corpus_size,
                                     const std::vector<TraceClassMix>& mix,
                                     std::uint64_t seed,
                                     double hot_fraction = 0.8);

struct ReplayConfig {
  sched::Discipline discipline = sched::Discipline::kFifo;
  /// Virtual service slots (the modeled compute width).
  std::size_t servers = 4;
  /// Ready-queue bound; arrivals beyond it are rejected "overloaded".
  std::size_t queue_capacity = 64;
  /// Virtual service time per cost unit (sched::EstimateCost).
  double cost_us_per_unit = 1.0;
  /// SJF tie-break seed (sched::ReadyQueue).
  std::uint64_t seed = 1;
  /// Token-budget admission in front of the queue; disabled = admit
  /// everything the queue can hold.
  sched::AdmissionConfig admission;
};

enum class Verdict {
  kServed,
  kRejectedTokens,  // token budget exhausted at arrival
  kRejectedQueue,   // no free server and the ready queue was full
};

/// Stable names: "served" / "rejected_tokens" / "rejected_queue".
std::string VerdictName(Verdict verdict);

/// What happened to one trace item, on the virtual timeline. Latency
/// (done - arrival) and wait (start - arrival) are derived.
struct EventOutcome {
  Verdict verdict = Verdict::kServed;
  std::uint64_t arrival_us = 0;
  std::uint64_t start_us = 0;  // service start; == arrival when no wait
  std::uint64_t done_us = 0;
  std::uint64_t cost = 0;
  std::size_t trace_index = 0;

  [[nodiscard]] std::uint64_t LatencyUs() const {
    return done_us - arrival_us;
  }
  [[nodiscard]] std::uint64_t WaitUs() const { return start_us - arrival_us; }
};

/// Latency distribution over the served events, virtual microseconds.
struct LatencySummary {
  std::uint64_t p50 = 0;
  std::uint64_t p90 = 0;
  std::uint64_t p99 = 0;
  std::uint64_t max = 0;
  double mean = 0.0;
};

/// Per-class fairness counters of one replay.
struct ClassLoadStats {
  std::string name;
  int rank = 0;
  std::uint64_t arrivals = 0;
  std::uint64_t served = 0;
  std::uint64_t rejected_tokens = 0;
  std::uint64_t rejected_queue = 0;
  std::uint64_t cost_served = 0;
  std::uint64_t total_wait_us = 0;
  std::uint64_t max_wait_us = 0;
};

struct LoadReport {
  /// Trace order (events[i] is trace[i]'s outcome).
  std::vector<EventOutcome> events;
  /// Mix order, classes seen only in the trace appended.
  std::vector<ClassLoadStats> classes;
  LatencySummary latency;
  std::size_t served = 0;
  std::size_t rejected_tokens = 0;
  std::size_t rejected_queue = 0;
  /// Last virtual completion time.
  std::uint64_t makespan_us = 0;
  /// Served requests per virtual second.
  double goodput_per_sec = 0.0;
  /// Busy server-time over servers * makespan.
  double utilization = 0.0;
  /// FNV-1a over every event's (verdict, times, cost, class), trace
  /// order — the bit-identical-replay witness.
  std::uint64_t digest = 0;
};

/// Pure virtual-time replay: deterministic, no service involved.
/// \p costs[i] is the cost of work item i (sched::EstimateCost of its
/// design); trace items index into it.
LoadReport ReplayTrace(const std::vector<TraceItem>& trace,
                       const std::vector<std::uint64_t>& costs,
                       const ReplayConfig& config);

/// One entry of the work-item corpus an open-loop run serves: a
/// stateless certify request, or a fault_burst applied to a live
/// session (burst.session_id must name a session open on the
/// SessionService passed to RunOpenLoop).
struct WorkItem {
  bool is_session = false;
  CertRequest certify;    // valid iff !is_session
  SessionRequest burst;   // valid iff is_session
  /// sched::EstimateCost of the materialized design (callers compute it
  /// once at corpus build).
  std::uint64_t cost = 1;
};

struct OpenLoopOutcome {
  LoadReport report;
  /// ResponseDigest over the stateless responses, completion order.
  std::uint64_t response_digest = 0;
  /// SessionResponseDigest over the burst responses, completion order.
  std::uint64_t session_digest = 0;
  /// FNV-1a over (report.digest, response_digest, session_digest) —
  /// identical for any client_threads.
  std::uint64_t combined_digest = 0;
  /// Responses that were not kOk (0 on a healthy run).
  std::size_t bad_responses = 0;
};

/// Virtual replay + real serving pass (see the header comment).
/// \p sessions may be null when the corpus has no session items.
OpenLoopOutcome RunOpenLoop(CertificationService& service,
                            SessionService* sessions,
                            const std::vector<WorkItem>& corpus,
                            const std::vector<TraceItem>& trace,
                            const ReplayConfig& config,
                            std::size_t client_threads = 0);

}  // namespace nocdr::serve::load
