// CertificationService: the certify pipeline as a deterministic
// multi-client service.
//
// One request names a certification problem three ways — an inline
// noc/io design text, a standard-topology generator spec (src/gen), or
// a campaign design source + seed (src/valid) — plus the removal
// options to treat it with. The service materializes the design,
// canonicalizes it (util/canonical: flow sort + io fixpoint, so flow
// declaration order, comments and channel numbering never split the
// cache), and serves the certificate + VC-insertion result through a
// sharded LRU cache (serve/cert_cache) fronted by a single-flight
// coalescer (serve/coalescer) running computations on the runner
// thread pool.
//
// Determinism contract: the response *payload* (certificate JSON,
// treated design text, VC counts) is a pure function of the canonical
// key — hit, computed and coalesced requests produce bit-identical
// payloads, and ResponseDigest over a batch is identical for any client
// thread count. Cache/timing metadata (cache_outcome, *_ms) is
// explicitly excluded from that contract.
//
// Two cache levels (see serve/cert_cache.h): the authoritative
// certificate cache is content-addressed by the canonical digest, so
// any representation of the same problem — reordered flows, a comment
// in the text, a generator spec vs. its rendered design — lands on one
// entry. In front of it sits a request *fingerprint* memo keyed by the
// raw request bytes: an exact repeat (the overwhelmingly common case in
// repeat-heavy traffic) resolves to the canonical entry without
// materializing or canonicalizing the design at all, which is what
// makes a warm hit orders of magnitude cheaper than a recompute. The
// memo stores only the mapping to the canonical key; if the canonical
// entry was evicted, the request falls back to the full path.
//
// With ServiceConfig::cache_dir set, the certificate cache is the
// tiered composite of serve/disk_cache.h — memory fronting a
// persistent content-addressed store — so warmth survives process
// restarts and additional worker processes can mount the same
// directory read-through. The determinism contract is unchanged: a
// disk hit re-verifies its checksum and full key text before serving.
//
// Backpressure: when the admission bound is full, novel requests get
// ServeStatus::kOverloaded immediately instead of queueing unboundedly;
// duplicate-in-flight requests always join their leader (they add no
// work). The line protocol (serve/protocol.h) and the nocdr_serve
// binary expose the same semantics over stdin/stdout.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "deadlock/removal.h"
#include "gen/generators.h"
#include "obs/trace.h"
#include "serve/cert_cache.h"
#include "serve/coalescer.h"
#include "serve/disk_cache.h"
#include "serve/sched.h"
#include "valid/campaign.h"

namespace nocdr::serve {

/// The protocol versions this service speaks. v1 is the original
/// stateless request/response pairs; v2 adds typed messages and
/// stateful sessions (serve/session.h). Requests without an explicit
/// protocol_version field are v1.
inline constexpr int kProtocolV1 = 1;
inline constexpr int kProtocolV2 = 2;

enum class RequestKind {
  kDesignText,     // inline noc/io design text
  kGeneratorSpec,  // standard-topology generator parameterization
  kSourceSeed,     // campaign design source + seed (all five sources)
};

/// The three ways a request (stateless certify or session_open) names a
/// design. One struct so stateless serves and sessions share exactly
/// one materialization path (MaterializeDesign below).
struct DesignSpec {
  RequestKind kind = RequestKind::kDesignText;

  std::string design_text;                 // kDesignText
  gen::GeneratorSpec generator;            // kGeneratorSpec
  valid::DesignSource source =
      valid::DesignSource::kSynthesized;   // kSourceSeed
  std::uint64_t seed = 0;                  // kSourceSeed
};

struct CertRequest : DesignSpec {
  /// Echoed in the response. Requests parsed without the field are v1.
  int protocol_version = kProtocolV1;
  /// Echoed verbatim in the response; empty is fine.
  std::string id;

  /// Removal options applied when \p treat is true. engine is accepted
  /// but does not split the cache (both engines are bit-identical).
  RemovalOptions options;
  /// false: certify the design as-is (the certificate may be negative,
  /// carrying a CDG-cycle counterexample).
  bool treat = true;
  /// Include the treated design text in the response payload.
  bool return_design = false;
  /// Admission/scheduling class (protocol field "class"). Routes the
  /// request through its class's token bucket and fairness counters;
  /// empty means sched::kDefaultClass. Never part of the cache key —
  /// the payload is class-independent.
  std::string priority_class;

  /// Trace identity of this request (obs/trace.h); empty = untraced.
  /// nocdr_serve derives it from the request's stdin stream index, so
  /// it is stable across client thread counts. Observability metadata
  /// only: never part of the fingerprint, the cache key or
  /// ResponseDigest.
  std::string trace_id;
};

enum class ServeStatus {
  kOk,
  kOverloaded,  // admission bound hit; retry later
  kError,       // malformed request or failed computation
};

/// Machine-readable failure classification, shared by protocol v1 and
/// v2. A response's error field is meaningful iff status != kOk.
enum class ErrorCode {
  kNone = 0,
  kInvalidRequest,      // malformed JSON, fields, design text or spec
  kUnsupportedVersion,  // protocol_version the server does not speak
  kUnknownType,         // v2 message type the server does not know
  kUnknownSession,      // session id never opened, or already closed
  kStaleEpoch,          // fault_burst expect_epoch != session epoch
  kSessionLimit,        // session admission bound hit; close one first
  kOverloaded,          // compute admission bound hit; retry later
  kComputeFailed,       // the certification computation threw
  kInternal,            // unexpected failure inside the service
};

/// The structured {code, message} error object every protocol response
/// carries on failure (free-text-only errors were protocol v1-alpha).
struct ErrorInfo {
  ErrorCode code = ErrorCode::kNone;
  std::string message;

  [[nodiscard]] bool ok() const { return code == ErrorCode::kNone; }
};

/// Stable protocol name of \p code ("invalid_request", "stale_epoch",
/// ...). Inverse: ParseErrorCode in serve/protocol.h.
std::string ErrorCodeName(ErrorCode code);

/// How the response was produced; metadata only, excluded from the
/// deterministic payload.
enum class CacheOutcome {
  kHit,        // served from the cache
  kComputed,   // this request ran the computation (coalescing leader)
  kCoalesced,  // joined another request's in-flight computation
  kNone,       // overloaded / error before the cache was consulted
};

struct CertResponse {
  // ---- deterministic payload (covered by ResponseDigest) ----
  /// Echo of the request's protocol_version.
  int protocol_version = kProtocolV1;
  std::string id;
  ServeStatus status = ServeStatus::kError;
  /// Meaningful iff status != kOk (kOverloaded carries kOverloaded).
  ErrorInfo error;
  /// Canonical content-addressed key (design + options + treat).
  std::uint64_t key = 0;
  bool deadlock_free = false;
  bool initially_deadlock_free = false;
  std::string certificate_json;
  /// Non-empty iff the request set return_design.
  std::string treated_design_text;
  std::size_t channels_before = 0;
  std::size_t channels_after = 0;
  std::size_t vcs_added = 0;
  std::size_t iterations = 0;
  std::size_t flows_rerouted = 0;

  // ---- metadata (schedule/timing dependent, excluded) ----
  CacheOutcome cache_outcome = CacheOutcome::kNone;
  double service_ms = 0.0;
};

/// Service-level counters. requests == hits + computations + coalesced
/// + rejected + errors; the split between hits and coalesced depends on
/// request interleaving, but computations is exactly the number of
/// distinct keys computed while no eviction interferes (the coalescer's
/// exactly-once contract).
struct ServiceStats {
  std::uint64_t requests = 0;
  std::uint64_t hits = 0;
  std::uint64_t computations = 0;
  std::uint64_t coalesced = 0;
  std::uint64_t rejected = 0;
  std::uint64_t errors = 0;
  std::size_t pool_backlog = 0;
  /// The authoritative certificate cache (memory tier; promotions and
  /// demotions count the tier-crossing traffic when a disk tier is
  /// configured).
  CacheStats cache;
  /// The raw-request fingerprint memo in front of it.
  CacheStats front;
  /// The persistent disk tier (serve/disk_cache); all-zero when the
  /// service runs memory-only.
  CacheStats disk;
  /// Per-class admission fairness split (serve/sched.h); accumulates
  /// even when the token policy is disabled.
  std::vector<sched::ClassCounters> admission_classes;
};

struct ServiceConfig {
  CacheConfig cache;
  /// Bounds of the raw-request fingerprint memo (entries are small:
  /// request bytes + canonical key text).
  CacheConfig front_cache{16, 8192, 32ull << 20};
  /// Compute pool threads; 0 = hardware concurrency.
  std::size_t threads = 0;
  /// Admission bound on in-flight computations (see serve/coalescer.h).
  std::size_t max_pending = 1024;
  /// false: bypass the cache and coalescer entirely — every request
  /// recomputes inline on the caller thread. The bench's recompute
  /// baseline.
  bool cache_enabled = true;
  /// Token-budget admission policy in front of the coalescer (see
  /// serve/sched.h). Disabled by default: only the in-flight bound
  /// (max_pending) rejects. Applies to cache misses — hits carry no
  /// compute cost and always pass.
  sched::AdmissionConfig admission;
  /// Size envelope for kSourceSeed requests (valid::GenerateTrialDesign).
  valid::DesignEnvelope envelope;
  /// Directory of the persistent certificate-cache tier
  /// (serve/disk_cache). Empty = memory-only (the historical
  /// behavior). Non-empty: the certificate cache becomes memory
  /// fronting this disk store — warmth survives restarts, and a fleet
  /// of workers can mount one directory (one appender, many readers).
  std::string cache_dir;
  /// Byte bound of the disk store (segment files on disk).
  std::size_t disk_cache_bytes = 1ull << 30;
  /// Compact the disk store at open (drop superseded and damaged
  /// records) before serving.
  bool cache_compact = false;
  /// Trace collector (obs/trace.h); null disables span emission (the
  /// tracing-off hot path costs one branch per request). Requests with
  /// an empty trace_id stay untraced either way; certification
  /// *computations* are always traced when a sink is present, keyed by
  /// canonical digest ("k<hex>"), so the set of computation traces is
  /// deterministic under the coalescer's exactly-once contract. Not
  /// owned; must outlive the service.
  obs::TraceSink* trace = nullptr;
};

class CertificationService {
 public:
  /// The certification computation: canonical design + request ->
  /// cached value. Injectable so tests can gate, count or fail the
  /// computation deterministically; production uses
  /// ComputeCertification.
  using Certifier = std::function<CachedCertification(
      const NocDesign& canonical_design, const CertRequest& request)>;

  explicit CertificationService(ServiceConfig config = {},
                                Certifier certifier = {});

  CertificationService(const CertificationService&) = delete;
  CertificationService& operator=(const CertificationService&) = delete;

  /// Serves one request, blocking until the response is ready (or
  /// immediately for hits, rejections and malformed requests). Safe to
  /// call from many threads.
  CertResponse Serve(const CertRequest& request);

  /// Serves a design the caller already materialized (sessions hold
  /// their live design in memory). Skips the raw-request fingerprint
  /// memo — there are no raw request bytes — but shares the canonical
  /// cache, the coalescer and the admission bound with Serve: the
  /// response is bit-identical to Serve on any request naming the same
  /// canonical problem. The request's design-source fields are ignored.
  CertResponse ServeDesign(const NocDesign& design,
                           const CertRequest& request);

  /// Serves \p requests over \p client_threads caller-side threads
  /// (0 = the compute pool width); responses come back indexed like the
  /// input. Deterministic payloads for any thread count.
  std::vector<CertResponse> ServeBatch(const std::vector<CertRequest>& requests,
                                       std::size_t client_threads = 0);

  [[nodiscard]] ServiceStats Stats() const;

  [[nodiscard]] const ServiceConfig& config() const { return config_; }

 private:
  /// What the fingerprint memo resolves a raw request to: the canonical
  /// cache coordinates of its certification problem.
  struct FrontTarget {
    std::uint64_t canonical_digest = 0;
    std::string canonical_key_text;

    [[nodiscard]] std::size_t PayloadBytes() const {
      return canonical_key_text.size();
    }
  };

  CertResponse ServeInner(const CertRequest& request);
  /// The canonical-path tail shared by Serve and ServeDesign:
  /// canonicalize, consult the cache, coalesce, compute. A non-empty
  /// \p fingerprint publishes the front-memo mapping on success.
  CertResponse ServeMaterialized(const NocDesign& design,
                                 const CertRequest& request,
                                 std::string fingerprint,
                                 std::uint64_t fingerprint_digest);
  /// Serve's exception-to-response boundary, shared with ServeDesign.
  CertResponse Guarded(const CertRequest& request,
                       const std::function<CertResponse()>& inner);

  /// Microseconds since service construction — the live clock mapped
  /// onto the sched layer's explicit now_us interface.
  std::uint64_t NowUs() const;

  ServiceConfig config_;
  Certifier certifier_;
  TieredCertCache cache_;
  ShardedLruCache<FrontTarget> front_;
  RequestCoalescer coalescer_;
  sched::AdmissionController admission_;
  std::chrono::steady_clock::time_point epoch_;

  mutable std::mutex stats_mutex_;
  ServiceStats stats_;
};

/// The production certification computation: copy the canonical design,
/// optionally RemoveDeadlocks with the request's options, certify, and
/// serialize certificate + treated design. Deterministic in its inputs.
CachedCertification ComputeCertification(const NocDesign& canonical_design,
                                         const CertRequest& request);

/// Materializes the design a spec names (parse, generate, or campaign
/// trial draw) — the one design-sourcing path stateless serves and
/// sessions share. Throws on malformed design text or generator
/// parameters. When \p table_out is non-null it receives the design's
/// next-hop routing table for the generator and source+seed kinds
/// (enabling table-driven fault detours in sessions) and is cleared for
/// inline design text, whose routes carry no table.
NocDesign MaterializeDesign(const DesignSpec& spec,
                            const valid::DesignEnvelope& envelope,
                            NextHopTable* table_out = nullptr);

/// FNV-1a digest over the deterministic payload fields of \p responses,
/// in order. Identical for any client thread count and any cache state.
std::uint64_t ResponseDigest(const std::vector<CertResponse>& responses);

}  // namespace nocdr::serve
