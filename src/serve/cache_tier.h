// CacheTier: the one cache interface of the certification service.
//
// The service grew its caches one concrete class at a time — a sharded
// in-memory LRU for certificates, a second instantiation of the same
// template for the request-fingerprint memo — and the persistent disk
// tier (serve/disk_cache) would have been a third ad-hoc neighbor.
// This header is the redesign that prevents that: every cache level
// implements the same small virtual surface, so the service composes
// tiers (TieredCertCache: memory fronting disk) without knowing what
// backs them, and the introspection protocol reports every tier with
// one stats shape.
//
// The contract every tier honors:
//
//   * Lookup(digest, key_text) — counted probe. The stored entry
//     matches only if its *full key text* equals the query's; a 64-bit
//     digest collision degrades to a miss, never to the wrong value
//     (util/keyed_lookup.h owns that protocol).
//   * Revalidate(digest, key_text) — the coalescer's under-lock
//     re-probe: hits count, misses do not (the request already counted
//     its miss on the fast path).
//   * Insert(digest, key_text, value) — publish or replace; the tier
//     may decline (capacity, read-only disk mount) but must never
//     corrupt what it already serves.
//   * Stats() — monotonic counters plus an occupancy snapshot.
//   * Clear() — drop every entry (counters stay; they are lifetime
//     totals).
//
// Entries are immutable once inserted and shared by reference
// (shared_ptr<const Value>), so a hit moves a refcount instead of
// copying multi-KB certificate strings under a shard mutex.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

namespace nocdr::serve {

struct CacheConfig {
  /// Shard count; rounded up to a power of two, at least 1.
  std::size_t shards = 16;
  /// Whole-cache entry bound (split evenly across shards, at least one
  /// entry per shard).
  std::size_t max_entries = 4096;
  /// Whole-cache payload-byte bound (split evenly across shards). An
  /// entry bigger than its shard's byte budget is never cached.
  std::size_t max_bytes = 64ull << 20;
};

/// Monotonic counters plus a point-in-time occupancy snapshot. Hit and
/// miss totals depend on request interleaving (a request racing a
/// leader's insert is a coalesced join, not a hit); occupancy and
/// eviction totals are deterministic for single-threaded request
/// streams, which the bench's gated rows rely on.
///
/// One stats shape serves every tier; counters a tier cannot produce
/// stay zero (a bare memory tier never skips a corrupt record, a disk
/// tier never promotes).
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
  /// Entries rejected outright because they exceed a shard's byte
  /// budget (memory) or the store's byte bound (disk) on their own.
  std::uint64_t oversize_rejections = 0;
  /// Tier-crossing traffic of a composite tier: disk hits copied up
  /// into memory, and inserts written through down to disk.
  std::uint64_t promotions = 0;
  std::uint64_t demotions = 0;
  /// Torn or bit-flipped disk records skipped (at open scan or at
  /// serve time) — counted, never served.
  std::uint64_t corrupt_skipped = 0;
  std::size_t entries = 0;
  std::size_t bytes = 0;
};

/// The abstract cache level: what CertificationService (and the tiered
/// composite) program against. \p Value must provide
/// `std::size_t PayloadBytes() const` for byte accounting.
template <typename Value>
class CacheTier {
 public:
  virtual ~CacheTier() = default;

  CacheTier() = default;
  CacheTier(const CacheTier&) = delete;
  CacheTier& operator=(const CacheTier&) = delete;

  /// Counted lookup: a hit or a miss is recorded either way.
  virtual std::shared_ptr<const Value> Lookup(std::uint64_t digest,
                                              const std::string& key_text) = 0;

  /// Hit-only re-probe (see the header comment).
  virtual std::shared_ptr<const Value> Revalidate(
      std::uint64_t digest, const std::string& key_text) = 0;

  /// Inserts (or replaces) the entry for (\p digest, \p key_text).
  virtual void Insert(std::uint64_t digest, std::string key_text,
                      Value value) = 0;

  /// Counters summed over the tier plus current occupancy.
  [[nodiscard]] virtual CacheStats Stats() const = 0;

  /// Drops every entry; lifetime counters are preserved.
  virtual void Clear() = 0;
};

}  // namespace nocdr::serve
