#include "serve/session.h"

#include <chrono>
#include <sstream>
#include <utility>

#include "cdg/cdg.h"
#include "cdg/incremental.h"
#include "deadlock/verify.h"
#include "fault/reconfigure.h"
#include "noc/io.h"
#include "obs/metrics.h"
#include "serve/protocol.h"
#include "util/canonical.h"
#include "util/digest.h"

namespace nocdr::serve {

namespace {

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

/// Everything a session keeps alive between messages: the design, the
/// channel dependency graph mirroring its routes, the dirty-cycle
/// finder's cache, the accumulated failure masks and the (possibly
/// patched) next-hop table. Operations serialize on \p mutex; the
/// object lives in a shared_ptr so a concurrent close can never free it
/// under a burst.
struct SessionService::Session {
  Session(std::string session_id, NocDesign live, NextHopTable next_hops,
          RemovalOptions removal_options)
      : id(std::move(session_id)),
        options(removal_options),
        design(std::move(live)),
        cdg(ChannelDependencyGraph::Build(design)),
        finder(cdg),
        table(std::move(next_hops)),
        state(fault::FaultState::None(design)) {
    for (std::size_t s = 0; s < design.topology.SwitchCount(); ++s) {
      // Name resolution for protocol-level fault events; duplicate or
      // empty names simply stay unresolvable by name.
      const SwitchId sid{s};
      const std::string& name = design.topology.SwitchName(sid);
      if (!name.empty()) {
        switch_by_name.emplace(name, sid);
      }
    }
  }

  std::mutex mutex;
  bool closed = false;

  const std::string id;
  const RemovalOptions options;

  // The live quadruple ApplyFaultBurst advances. `finder` references
  // `cdg`; the session is never moved after construction.
  NocDesign design;
  ChannelDependencyGraph cdg;
  DirtyCycleFinder finder;
  NextHopTable table;
  fault::FaultState state;
  std::unordered_map<std::string, SwitchId> switch_by_name;

  std::uint64_t epoch = 0;
  std::size_t bursts_applied = 0;

  // The current epoch's published certification coordinates.
  std::uint64_t key = 0;
  bool deadlock_free = false;
  std::string certificate_json;
};

SessionService::SessionService(CertificationService& service,
                               SessionServiceConfig config)
    : service_(service), config_(config) {}

SessionService::~SessionService() = default;

SessionResponse SessionService::Handle(const SessionRequest& request) {
  const auto t0 = std::chrono::steady_clock::now();
  // The message's root span. nocdr_serve serves session messages
  // synchronously in stream order, so everything about this trace —
  // which child spans run, the assigned session id, the epoch — is
  // deterministic, and the full open/burst pipeline can carry spans
  // (unlike stateless requests, whose inner path is schedule-
  // dependent).
  obs::ScopedTrace trace(service_.config().trace, request.trace_id,
                         "session");
  SessionResponse response;
  // Failures are responses, never escaping exceptions — the server loop
  // and the campaign drive sessions from code that must not unwind.
  try {
    response = HandleInner(request);
  } catch (const std::exception& e) {
    response = SessionResponse{};
    response.protocol_version = request.protocol_version;
    response.op = request.op;
    response.id = request.id;
    response.session_id = request.session_id;
    response.status = ServeStatus::kError;
    response.error = ErrorInfo{ErrorCode::kInternal, e.what()};
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.errors;
  }
  response.service_ms = MillisSince(t0);
  if (trace.active()) {
    trace.Attr("id", request.id);
    trace.Attr("op", SessionOpName(request.op));
    trace.Attr("session", response.session_id);
    trace.Attr("status", StatusName(response.status));
    trace.Attr("epoch", response.epoch);
    if (!response.error.ok()) {
      trace.Attr("error", ErrorCodeName(response.error.code));
    }
  }
  {
    obs::MetricsRegistry& registry = obs::Metrics();
    static obs::Histogram& open_us =
        registry.GetHistogram("session.open_us");
    static obs::Histogram& burst_us =
        registry.GetHistogram("session.burst_us");
    const auto us = static_cast<std::uint64_t>(response.service_ms * 1000.0);
    if (request.op == SessionOp::kOpen) {
      open_us.Record(us);
    } else if (request.op == SessionOp::kBurst) {
      burst_us.Record(us);
    }
  }
  return response;
}

SessionResponse SessionService::HandleInner(const SessionRequest& request) {
  if (request.op == SessionOp::kOpen) {
    return Open(request);
  }
  SessionResponse response;
  response.protocol_version = request.protocol_version;
  response.op = request.op;
  response.id = request.id;
  response.session_id = request.session_id;
  const std::shared_ptr<Session> session = Find(request.session_id);
  if (session == nullptr) {
    response.status = ServeStatus::kError;
    response.error =
        ErrorInfo{ErrorCode::kUnknownSession,
                  "no open session \"" + request.session_id + "\""};
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.errors;
    return response;
  }
  switch (request.op) {
    case SessionOp::kBurst:
      return Burst(request, *session);
    case SessionOp::kSnapshot:
      return Snapshot(request, *session);
    case SessionOp::kClose:
      return Close(request, *session);
    case SessionOp::kOpen:
      break;  // handled above
  }
  response.status = ServeStatus::kError;
  response.error = ErrorInfo{ErrorCode::kInternal, "unhandled session op"};
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.errors;
  return response;
}

SessionResponse SessionService::Open(const SessionRequest& request) {
  SessionResponse response;
  response.protocol_version = request.protocol_version;
  response.op = SessionOp::kOpen;
  response.id = request.id;

  // Reserve an admission slot before the (expensive) certification so a
  // concurrent open burst cannot overshoot max_sessions.
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (sessions_.size() + opening_ >= config_.max_sessions) {
      ++stats_.open_rejected;
      response.status = ServeStatus::kError;
      response.error = ErrorInfo{
          ErrorCode::kSessionLimit,
          "session limit (" + std::to_string(config_.max_sessions) +
              ") reached; close a session first"};
      return response;
    }
    ++opening_;
  }
  const auto release_slot = [&] {
    std::lock_guard<std::mutex> lock(mutex_);
    --opening_;
  };

  CertRequest cert;
  static_cast<DesignSpec&>(cert) = request.spec;
  cert.protocol_version = request.protocol_version;
  cert.id = request.id;
  cert.options = request.options;
  // Sessions always treat: the live CDG must start acyclic for the
  // incremental re-certification contract to mean anything.
  cert.treat = true;
  cert.return_design = true;

  NextHopTable table;
  NocDesign materialized;
  try {
    obs::ScopedSpan span("open.materialize");
    materialized = MaterializeDesign(request.spec, service_.config().envelope,
                                     &table);
  } catch (const std::exception& e) {
    release_slot();
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.errors;
    response.status = ServeStatus::kError;
    response.error = ErrorInfo{ErrorCode::kInvalidRequest, e.what()};
    return response;
  }

  // Epoch-0 certification through the service: coalesces with
  // stateless clients of the same design, hits its cache, respects its
  // admission bound. The computation itself runs (and is traced) under
  // its canonical key on a pool thread; this span is the session's
  // wait for it.
  CertResponse treated;
  {
    obs::ScopedSpan span("open.certify");
    treated = service_.ServeDesign(materialized, cert);
  }
  if (treated.status != ServeStatus::kOk) {
    release_slot();
    std::lock_guard<std::mutex> lock(mutex_);
    if (treated.status == ServeStatus::kOverloaded) {
      ++stats_.open_rejected;
    } else {
      ++stats_.errors;
    }
    response.status = treated.status;
    response.error = treated.error;
    return response;
  }

  // Second, canonical-fixpoint serve: the treated design re-serves as
  // pure content, giving the session the exact certificate + key any
  // stateless client re-shipping the session's current design text
  // would get. Treatment is a no-op (the design is already deadlock
  // free), so this costs one canonicalization — and it seeds the
  // epoch-0 cache entry the session's snapshot text resolves to.
  std::istringstream in(treated.treated_design_text);
  CertResponse fixpoint;
  {
    obs::ScopedSpan span("open.fixpoint");
    fixpoint = service_.ServeDesign(ReadDesign(in), cert);
  }
  if (fixpoint.status != ServeStatus::kOk) {
    release_slot();
    std::lock_guard<std::mutex> lock(mutex_);
    if (fixpoint.status == ServeStatus::kOverloaded) {
      ++stats_.open_rejected;
    } else {
      ++stats_.errors;
    }
    response.status = fixpoint.status;
    response.error = fixpoint.error;
    return response;
  }

  std::istringstream live_in(fixpoint.treated_design_text);
  NocDesign live = ReadDesign(live_in);

  std::shared_ptr<Session> session;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    --opening_;
    const std::string session_id = "s" + std::to_string(next_session_++);
    session = std::make_shared<Session>(session_id, std::move(live),
                                        std::move(table), request.options);
    session->key = fixpoint.key;
    session->deadlock_free = fixpoint.deadlock_free;
    session->certificate_json = fixpoint.certificate_json;
    sessions_.emplace(session_id, session);
    ++stats_.opened;
    ++stats_.epochs_served;
  }

  response.status = ServeStatus::kOk;
  response.session_id = session->id;
  response.epoch = 0;
  // The delta fields of an open describe the initial treatment.
  response.removal_iterations = treated.iterations;
  response.vcs_added = treated.vcs_added;
  response.flows_rerouted = treated.flows_rerouted;
  response.channels = session->design.topology.ChannelCount();
  response.key = session->key;
  response.deadlock_free = session->deadlock_free;
  response.certificate_json = session->certificate_json;
  if (request.return_design) {
    response.design_text = fixpoint.treated_design_text;
  }
  response.cache_outcome = treated.cache_outcome;
  return response;
}

SessionResponse SessionService::Burst(const SessionRequest& request,
                                      Session& session) {
  SessionResponse response;
  response.protocol_version = request.protocol_version;
  response.op = SessionOp::kBurst;
  response.id = request.id;
  response.session_id = session.id;

  const auto fail = [&](ErrorCode code, std::string message) {
    response.status = ServeStatus::kError;
    response.error = ErrorInfo{code, std::move(message)};
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.errors;
    return response;
  };

  std::lock_guard<std::mutex> session_lock(session.mutex);
  if (session.closed) {
    return fail(ErrorCode::kUnknownSession,
                "session \"" + session.id + "\" is closed");
  }
  if (request.has_expect_epoch && request.expect_epoch != session.epoch) {
    // Echo the session's actual epoch so an optimistic client can
    // resync without a snapshot round trip.
    response.epoch = session.epoch;
    return fail(ErrorCode::kStaleEpoch,
                "expect_epoch " + std::to_string(request.expect_epoch) +
                    " but session is at epoch " +
                    std::to_string(session.epoch));
  }
  if (request.events.empty()) {
    return fail(ErrorCode::kInvalidRequest,
                "a fault_burst needs at least one event");
  }

  fault::FaultBurst burst;
  burst.reserve(request.events.size());
  for (const SessionEventSpec& spec : request.events) {
    std::optional<fault::FaultEvent> event;
    if (spec.kind == fault::FaultKind::kLink) {
      event = fault::MakeLinkFault(session.design, spec.src, spec.dst);
      if (!event) {
        return fail(ErrorCode::kInvalidRequest,
                    "no link \"" + spec.src + "\" -> \"" + spec.dst + "\"");
      }
    } else {
      event = fault::MakeSwitchFault(session.design, spec.switch_name);
      if (!event) {
        return fail(ErrorCode::kInvalidRequest,
                    "no switch \"" + spec.switch_name + "\"");
      }
    }
    burst.push_back(*event);
  }

  fault::ReconfigureOptions reconfigure;
  reconfigure.table = session.table.empty() ? nullptr : &session.table;
  reconfigure.removal = session.options;

  fault::ReconfigureReport report;
  try {
    // The incremental removal inside ApplyFaultBurst runs on this
    // thread, so its cycle_search/score/apply/invalidate stage spans
    // nest under this span.
    obs::ScopedSpan span("burst.apply_faults");
    report = fault::ApplyFaultBurst(session.design, session.cdg,
                                    session.finder, session.state, burst,
                                    reconfigure);
    span.Attr("events", static_cast<std::uint64_t>(burst.size()));
    span.Attr("affected_flows",
              static_cast<std::uint64_t>(report.affected_flows.size()));
  } catch (const std::exception& e) {
    // The live quadruple may be mid-mutation; the session is unusable.
    session.closed = true;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      sessions_.erase(session.id);
      ++stats_.closed;
    }
    return fail(ErrorCode::kComputeFailed,
                std::string("reconfiguration failed (session closed): ") +
                    e.what());
  }

  response.status = ServeStatus::kOk;
  response.affected_flows = report.affected_flows.size();
  if (report.infeasible()) {
    // Infeasibility is an answer, not an error: nothing was mutated,
    // the epoch stands and the current certificate is still the truth.
    response.feasible = false;
    response.disconnected_flows.reserve(report.disconnected_flows.size());
    for (const FlowId flow : report.disconnected_flows) {
      response.disconnected_flows.push_back(flow.value());
    }
    response.epoch = session.epoch;
    response.channels = session.design.topology.ChannelCount();
    response.key = session.key;
    response.deadlock_free = session.deadlock_free;
    response.certificate_json = session.certificate_json;
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.bursts_infeasible;
    ++stats_.epochs_served;
    return response;
  }

  session.epoch += 1;
  session.bursts_applied += 1;

  // The incremental re-certification: the removal above ran on the
  // maintained CDG (RemoveDeadlocksOnCdg inside ApplyFaultBurst);
  // CertifyFromCdg proves the surviving graph acyclic at dirty-SCC
  // cost before the epoch's certificate is published.
  DeadlockCertificate live_certificate;
  {
    obs::ScopedSpan span("burst.recertify");
    live_certificate = CertifyFromCdg(session.design, session.cdg);
  }
  if (!live_certificate.deadlock_free) {
    session.closed = true;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      sessions_.erase(session.id);
      ++stats_.closed;
    }
    return fail(ErrorCode::kComputeFailed,
                "post-burst CDG has a cycle (session closed)");
  }

  {
    obs::ScopedSpan span("burst.publish");
    PublishEpoch(session, request);
  }

  response.epoch = session.epoch;
  response.feasible = true;
  response.table_detours = report.table_detours;
  response.ripup_reroutes = report.ripup_reroutes;
  response.removal_iterations = report.removal.iterations;
  response.vcs_added = report.removal.vcs_added;
  response.flows_rerouted = report.removal.flows_rerouted;
  response.channels = session.design.topology.ChannelCount();
  response.key = session.key;
  response.deadlock_free = session.deadlock_free;
  response.certificate_json = session.certificate_json;
  if (request.return_design) {
    response.design_text = DesignText(session.design);
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.bursts_applied;
    ++stats_.epochs_served;
  }
  return response;
}

void SessionService::PublishEpoch(Session& session,
                                  const SessionRequest& request) {
  if (config_.publish_epochs) {
    CertRequest cert;
    cert.protocol_version = request.protocol_version;
    cert.id = request.id;
    cert.options = session.options;
    cert.treat = true;
    cert.return_design = false;
    // Publish through the service: the epoch's certificate lands in the
    // shared cert cache under the canonical key of the *current* design
    // — stateless clients re-shipping the session's snapshot text hit
    // it, and no earlier epoch's key can ever resolve to it. With a
    // persistent tier configured (ServiceConfig::cache_dir) this same
    // insert writes through to disk, so a restarted server serves the
    // session's latest epoch — not a stale pre-burst one — warm: the
    // epoch-versioned keys make every republication content-addressed.
    const CertResponse published = service_.ServeDesign(session.design, cert);
    if (published.status == ServeStatus::kOk) {
      session.key = published.key;
      session.deadlock_free = published.deadlock_free;
      session.certificate_json = published.certificate_json;
      return;
    }
    // Overloaded (or a failure injected by a test certifier): fall
    // through to the local computation — the session must still answer,
    // and the bytes below are exactly what the service would cache.
  }
  const CanonicalDesign canonical = CanonicalizeDesign(session.design);
  session.key =
      CanonicalTextDigest(canonical.text, session.options, /*treat=*/true);
  const DeadlockCertificate certificate =
      CertifyDeadlockFreedom(canonical.design);
  session.deadlock_free = certificate.deadlock_free;
  session.certificate_json = CertificateToJson(certificate);
}

SessionResponse SessionService::Snapshot(const SessionRequest& request,
                                         Session& session) {
  SessionResponse response;
  response.protocol_version = request.protocol_version;
  response.op = SessionOp::kSnapshot;
  response.id = request.id;
  response.session_id = session.id;

  std::lock_guard<std::mutex> session_lock(session.mutex);
  if (session.closed) {
    response.status = ServeStatus::kError;
    response.error = ErrorInfo{ErrorCode::kUnknownSession,
                               "session \"" + session.id + "\" is closed"};
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.errors;
    return response;
  }
  response.status = ServeStatus::kOk;
  response.epoch = session.epoch;
  response.channels = session.design.topology.ChannelCount();
  response.key = session.key;
  response.deadlock_free = session.deadlock_free;
  response.certificate_json = session.certificate_json;
  response.design_text = DesignText(session.design);
  response.failed_links = session.state.FailedLinkCount();
  response.failed_switches = session.state.FailedSwitchCount();
  response.bursts_applied = session.bursts_applied;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.epochs_served;
  }
  return response;
}

SessionResponse SessionService::Close(const SessionRequest& request,
                                      Session& session) {
  SessionResponse response;
  response.protocol_version = request.protocol_version;
  response.op = SessionOp::kClose;
  response.id = request.id;
  response.session_id = session.id;

  std::lock_guard<std::mutex> session_lock(session.mutex);
  if (session.closed) {
    response.status = ServeStatus::kError;
    response.error = ErrorInfo{ErrorCode::kUnknownSession,
                               "session \"" + session.id + "\" is closed"};
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.errors;
    return response;
  }
  session.closed = true;
  response.status = ServeStatus::kOk;
  response.epoch = session.epoch;
  response.failed_links = session.state.FailedLinkCount();
  response.failed_switches = session.state.FailedSwitchCount();
  response.bursts_applied = session.bursts_applied;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    sessions_.erase(session.id);
    ++stats_.closed;
  }
  return response;
}

std::shared_ptr<SessionService::Session> SessionService::Find(
    const std::string& session_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = sessions_.find(session_id);
  return it == sessions_.end() ? nullptr : it->second;
}

SessionServiceStats SessionService::Stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  SessionServiceStats stats = stats_;
  stats.live_sessions = sessions_.size();
  return stats;
}

std::uint64_t SessionResponseDigest(
    const std::vector<SessionResponse>& responses) {
  std::uint64_t h = kFnvOffsetBasis;
  for (const SessionResponse& response : responses) {
    DigestField(h, static_cast<std::uint64_t>(response.protocol_version));
    DigestField(h, static_cast<std::uint64_t>(response.op));
    DigestField(h, response.id);
    DigestField(h, response.session_id);
    DigestField(h, static_cast<std::uint64_t>(response.status));
    DigestField(h, static_cast<std::uint64_t>(response.error.code));
    DigestField(h, response.error.message);
    DigestField(h, response.epoch);
    DigestField(h, static_cast<std::uint64_t>(response.feasible));
    for (const std::uint64_t flow : response.disconnected_flows) {
      DigestField(h, flow);
    }
    DigestField(h, response.affected_flows);
    DigestField(h, response.table_detours);
    DigestField(h, response.ripup_reroutes);
    DigestField(h, response.removal_iterations);
    DigestField(h, response.vcs_added);
    DigestField(h, response.flows_rerouted);
    DigestField(h, response.channels);
    DigestField(h, response.key);
    DigestField(h, static_cast<std::uint64_t>(response.deadlock_free));
    DigestField(h, response.certificate_json);
    DigestField(h, response.design_text);
    DigestField(h, response.failed_links);
    DigestField(h, response.failed_switches);
    DigestField(h, response.bursts_applied);
  }
  return h;
}

}  // namespace nocdr::serve
