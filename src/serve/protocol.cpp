#include "serve/protocol.h"

#include <utility>

#include "util/build_info.h"
#include "util/error.h"
#include "util/json.h"

namespace nocdr::serve {

namespace {

std::string CyclePolicyName(CyclePolicy policy) {
  switch (policy) {
    case CyclePolicy::kSmallestFirst:
      return "smallest_first";
    case CyclePolicy::kFirstFound:
      return "first_found";
    case CyclePolicy::kLargestFirst:
      return "largest_first";
  }
  return "unknown";
}

CyclePolicy ParseCyclePolicy(const std::string& name) {
  for (const CyclePolicy policy :
       {CyclePolicy::kSmallestFirst, CyclePolicy::kFirstFound,
        CyclePolicy::kLargestFirst}) {
    if (CyclePolicyName(policy) == name) {
      return policy;
    }
  }
  throw InvalidModelError("ParseRequestLine: unknown cycle_policy \"" + name +
                          "\"");
}

std::string DirectionName(DirectionPolicy policy) {
  switch (policy) {
    case DirectionPolicy::kBoth:
      return "both";
    case DirectionPolicy::kForwardOnly:
      return "forward_only";
    case DirectionPolicy::kBackwardOnly:
      return "backward_only";
  }
  return "unknown";
}

DirectionPolicy ParseDirection(const std::string& name) {
  for (const DirectionPolicy policy :
       {DirectionPolicy::kBoth, DirectionPolicy::kForwardOnly,
        DirectionPolicy::kBackwardOnly}) {
    if (DirectionName(policy) == name) {
      return policy;
    }
  }
  throw InvalidModelError("ParseRequestLine: unknown direction \"" + name +
                          "\"");
}

std::string EngineName(RemovalEngine engine) {
  return engine == RemovalEngine::kIncremental ? "incremental" : "rebuild";
}

RemovalEngine ParseEngine(const std::string& name) {
  if (name == "incremental") {
    return RemovalEngine::kIncremental;
  }
  if (name == "rebuild") {
    return RemovalEngine::kRebuild;
  }
  throw InvalidModelError("ParseRequestLine: unknown engine \"" + name +
                          "\"");
}

std::string DuplicationName(DuplicationMode mode) {
  return mode == DuplicationMode::kVirtualChannel ? "virtual_channel"
                                                  : "physical_link";
}

DuplicationMode ParseDuplication(const std::string& name) {
  if (name == "virtual_channel") {
    return DuplicationMode::kVirtualChannel;
  }
  if (name == "physical_link") {
    return DuplicationMode::kPhysicalLink;
  }
  throw InvalidModelError("ParseRequestLine: unknown duplication \"" + name +
                          "\"");
}

RemovalOptions ParseOptions(const JsonValue& json) {
  RemovalOptions options;
  if (const JsonValue* value = json.Find("cycle_policy")) {
    options.cycle_policy = ParseCyclePolicy(value->AsString());
  }
  if (const JsonValue* value = json.Find("direction")) {
    options.direction_policy = ParseDirection(value->AsString());
  }
  if (const JsonValue* value = json.Find("engine")) {
    options.engine = ParseEngine(value->AsString());
  }
  if (const JsonValue* value = json.Find("duplication")) {
    options.duplication = ParseDuplication(value->AsString());
  }
  if (const JsonValue* value = json.Find("max_iterations")) {
    options.max_iterations = value->AsUint();
  }
  return options;
}

gen::GeneratorSpec ParseGenerator(const JsonValue& json) {
  gen::GeneratorSpec spec;
  const std::string family_name = json.At("family").AsString();
  const auto family = gen::ParseFamily(family_name);
  Require(family.has_value(),
          "ParseRequestLine: unknown generator family \"" + family_name +
              "\"");
  spec.family = *family;
  const auto size_field = [&](const char* key, std::size_t* target) {
    if (const JsonValue* value = json.Find(key)) {
      *target = value->AsUint();
    }
  };
  size_field("width", &spec.width);
  size_field("height", &spec.height);
  size_field("ring_nodes", &spec.ring_nodes);
  size_field("tree_arity", &spec.tree_arity);
  size_field("tree_levels", &spec.tree_levels);
  size_field("tree_uplinks", &spec.tree_uplinks);
  size_field("cores_per_switch", &spec.cores_per_switch);
  size_field("uniform_fanout", &spec.uniform_fanout);
  if (const JsonValue* value = json.Find("pattern")) {
    const std::string pattern_name = value->AsString();
    const auto pattern = gen::ParsePattern(pattern_name);
    Require(pattern.has_value(),
            "ParseRequestLine: unknown traffic pattern \"" + pattern_name +
                "\"");
    spec.pattern = *pattern;
  }
  if (const JsonValue* value = json.Find("hotspot_fraction")) {
    spec.hotspot_fraction = value->AsDouble();
  }
  if (const JsonValue* value = json.Find("min_bandwidth")) {
    spec.min_bandwidth = value->AsDouble();
  }
  if (const JsonValue* value = json.Find("max_bandwidth")) {
    spec.max_bandwidth = value->AsDouble();
  }
  if (const JsonValue* value = json.Find("seed")) {
    spec.seed = value->AsUint();
  }
  return spec;
}

/// One CacheStats as one JSON object — the same shape for every tier
/// (front memo, memory, disk), zeros included, so clients never probe
/// for optional fields.
JsonObject CacheStatsToJson(const CacheStats& stats) {
  JsonObject json;
  json.Set("hits", stats.hits)
      .Set("misses", stats.misses)
      .Set("insertions", stats.insertions)
      .Set("evictions", stats.evictions)
      .Set("oversize_rejections", stats.oversize_rejections)
      .Set("promotions", stats.promotions)
      .Set("demotions", stats.demotions)
      .Set("corrupt_skipped", stats.corrupt_skipped)
      .Set("entries", stats.entries)
      .Set("bytes", stats.bytes);
  return json;
}

/// The {"code":...,"message":...} object every failure response embeds.
JsonObject ErrorToJson(const ErrorInfo& error) {
  JsonObject json;
  json.Set("code", ErrorCodeName(error.code)).Set("message", error.message);
  return json;
}

JsonObject GeneratorToJson(const gen::GeneratorSpec& spec) {
  JsonObject json;
  json.Set("family", gen::FamilyName(spec.family))
      .Set("width", spec.width)
      .Set("height", spec.height)
      .Set("ring_nodes", spec.ring_nodes)
      .Set("tree_arity", spec.tree_arity)
      .Set("tree_levels", spec.tree_levels)
      .Set("tree_uplinks", spec.tree_uplinks)
      .Set("cores_per_switch", spec.cores_per_switch)
      .Set("pattern", gen::PatternName(spec.pattern))
      .Set("uniform_fanout", spec.uniform_fanout)
      .Set("hotspot_fraction", spec.hotspot_fraction)
      .Set("min_bandwidth", spec.min_bandwidth)
      .Set("max_bandwidth", spec.max_bandwidth)
      .Set("seed", spec.seed);
  return json;
}

/// The design-naming block shared by v1/v2 certify and session_open: a
/// message names exactly one of "design", "generator" or "source".
void ParseDesignSpec(const JsonValue& json, DesignSpec& spec) {
  int source_fields = 0;
  if (const JsonValue* value = json.Find("design")) {
    spec.kind = RequestKind::kDesignText;
    spec.design_text = value->AsString();
    ++source_fields;
  }
  if (const JsonValue* value = json.Find("generator")) {
    spec.kind = RequestKind::kGeneratorSpec;
    spec.generator = ParseGenerator(*value);
    ++source_fields;
  }
  if (const JsonValue* value = json.Find("source")) {
    spec.kind = RequestKind::kSourceSeed;
    const std::string source_name = value->AsString();
    const auto source = valid::ParseSource(source_name);
    Require(source.has_value(), "ParseRequestLine: unknown design source \"" +
                                    source_name + "\"");
    spec.source = *source;
    spec.seed = json.At("seed").AsUint();
    ++source_fields;
  }
  Require(source_fields == 1,
          "ParseRequestLine: a request needs exactly one of \"design\", "
          "\"generator\" or \"source\"");
}

/// Renders the design-naming block (inverse of ParseDesignSpec).
void DesignSpecToJson(const DesignSpec& spec, JsonObject& json) {
  switch (spec.kind) {
    case RequestKind::kDesignText:
      json.Set("design", spec.design_text);
      break;
    case RequestKind::kGeneratorSpec:
      json.SetRaw("generator", GeneratorToJson(spec.generator).Dump());
      break;
    case RequestKind::kSourceSeed:
      json.Set("source", valid::SourceName(spec.source))
          .Set("seed", spec.seed);
      break;
  }
}

CertRequest ParseCertify(const JsonValue& json, int protocol_version) {
  CertRequest request;
  request.protocol_version = protocol_version;
  if (const JsonValue* value = json.Find("id")) {
    request.id = value->AsString();
  }
  ParseDesignSpec(json, request);
  if (const JsonValue* value = json.Find("options")) {
    request.options = ParseOptions(*value);
  }
  if (const JsonValue* value = json.Find("treat")) {
    request.treat = value->AsBool();
  }
  if (const JsonValue* value = json.Find("return_design")) {
    request.return_design = value->AsBool();
  }
  if (const JsonValue* value = json.Find("class")) {
    request.priority_class = value->AsString();
  }
  return request;
}

SessionEventSpec ParseEvent(const JsonValue& json) {
  SessionEventSpec event;
  const std::string kind = json.At("kind").AsString();
  if (kind == "link") {
    event.kind = fault::FaultKind::kLink;
    event.src = json.At("src").AsString();
    event.dst = json.At("dst").AsString();
  } else if (kind == "switch") {
    event.kind = fault::FaultKind::kSwitch;
    event.switch_name = json.At("switch").AsString();
  } else {
    throw ProtocolError(ErrorCode::kInvalidRequest,
                        "ParseMessageLine: unknown event kind \"" + kind +
                            "\" (want \"link\" or \"switch\")");
  }
  return event;
}

SessionRequest ParseSession(const JsonValue& json, SessionOp op,
                            int protocol_version) {
  SessionRequest request;
  request.protocol_version = protocol_version;
  request.op = op;
  if (const JsonValue* value = json.Find("id")) {
    request.id = value->AsString();
  }
  if (op == SessionOp::kOpen) {
    ParseDesignSpec(json, request.spec);
    if (const JsonValue* value = json.Find("options")) {
      request.options = ParseOptions(*value);
    }
  } else {
    request.session_id = json.At("session").AsString();
  }
  if (op == SessionOp::kBurst) {
    if (const JsonValue* value = json.Find("expect_epoch")) {
      request.has_expect_epoch = true;
      request.expect_epoch = value->AsUint();
    }
    for (const JsonValue& item : json.At("events").Items()) {
      request.events.push_back(ParseEvent(item));
    }
  }
  if (const JsonValue* value = json.Find("return_design")) {
    request.return_design = value->AsBool();
  }
  return request;
}

int ParseVersion(const JsonValue& json) {
  const JsonValue* value = json.Find("protocol_version");
  if (value == nullptr) {
    return kProtocolV1;
  }
  const std::uint64_t version = value->AsUint();
  if (version != static_cast<std::uint64_t>(kProtocolV1) &&
      version != static_cast<std::uint64_t>(kProtocolV2)) {
    throw ProtocolError(ErrorCode::kUnsupportedVersion,
                        "this server speaks protocol versions 1 and 2, not " +
                            std::to_string(version));
  }
  return static_cast<int>(version);
}

ServeMessage ParseMessageInner(const std::string& line) {
  const JsonValue json = JsonValue::Parse(line);
  const int version = ParseVersion(json);
  const JsonValue* type_value = json.Find("type");
  ServeMessage message;
  if (version == kProtocolV1) {
    Require(type_value == nullptr,
            "ParseMessageLine: \"type\" requires \"protocol_version\":2");
    message.certify = ParseCertify(json, version);
    return message;
  }
  const std::string type =
      type_value == nullptr ? "certify" : type_value->AsString();
  if (type == "certify") {
    message.certify = ParseCertify(json, version);
    return message;
  }
  if (type == "stats") {
    message.is_stats = true;
    message.stats.protocol_version = version;
    if (const JsonValue* value = json.Find("id")) {
      message.stats.id = value->AsString();
    }
    return message;
  }
  if (type == "metrics") {
    message.is_metrics = true;
    message.metrics.protocol_version = version;
    if (const JsonValue* value = json.Find("id")) {
      message.metrics.id = value->AsString();
    }
    return message;
  }
  message.is_session = true;
  if (type == "session_open") {
    message.session = ParseSession(json, SessionOp::kOpen, version);
  } else if (type == "fault_burst") {
    message.session = ParseSession(json, SessionOp::kBurst, version);
  } else if (type == "session_snapshot") {
    message.session = ParseSession(json, SessionOp::kSnapshot, version);
  } else if (type == "session_close") {
    message.session = ParseSession(json, SessionOp::kClose, version);
  } else {
    throw ProtocolError(ErrorCode::kUnknownType,
                        "unknown v2 message type \"" + type + "\"");
  }
  return message;
}

}  // namespace

ServeMessage ParseMessageLine(const std::string& line) {
  try {
    return ParseMessageInner(line);
  } catch (const ProtocolError&) {
    throw;
  } catch (const std::exception& e) {
    throw ProtocolError(ErrorCode::kInvalidRequest, e.what());
  }
}

CertRequest ParseRequestLine(const std::string& line) {
  ServeMessage message = ParseMessageLine(line);
  if (message.is_session) {
    throw ProtocolError(
        ErrorCode::kInvalidRequest,
        "ParseRequestLine: a session message needs ParseMessageLine");
  }
  return message.certify;
}

std::string RequestToJsonLine(const CertRequest& request) {
  JsonObject json;
  json.Set("protocol_version", request.protocol_version);
  if (request.protocol_version >= kProtocolV2) {
    json.Set("type", "certify");
  }
  if (!request.id.empty()) {
    json.Set("id", request.id);
  }
  DesignSpecToJson(request, json);
  JsonObject options;
  options.Set("cycle_policy", CyclePolicyName(request.options.cycle_policy))
      .Set("direction", DirectionName(request.options.direction_policy))
      .Set("engine", EngineName(request.options.engine))
      .Set("duplication", DuplicationName(request.options.duplication))
      .Set("max_iterations", request.options.max_iterations);
  json.SetRaw("options", options.Dump());
  json.Set("treat", request.treat).Set("return_design", request.return_design);
  if (!request.priority_class.empty()) {
    json.Set("class", request.priority_class);
  }
  return json.Dump();
}

std::string StatusName(ServeStatus status) {
  switch (status) {
    case ServeStatus::kOk:
      return "ok";
    case ServeStatus::kOverloaded:
      return "overloaded";
    case ServeStatus::kError:
      return "error";
  }
  return "unknown";
}

std::string CacheOutcomeName(CacheOutcome outcome) {
  switch (outcome) {
    case CacheOutcome::kHit:
      return "hit";
    case CacheOutcome::kComputed:
      return "computed";
    case CacheOutcome::kCoalesced:
      return "coalesced";
    case CacheOutcome::kNone:
      return "none";
  }
  return "unknown";
}

std::string ResponseToJsonLine(const CertResponse& response) {
  JsonObject json;
  json.Set("protocol_version", response.protocol_version);
  if (!response.id.empty()) {
    json.Set("id", response.id);
  }
  json.Set("status", StatusName(response.status));
  if (response.status != ServeStatus::kOk) {
    json.SetRaw("error", ErrorToJson(response.error).Dump());
    json.Set("cache", CacheOutcomeName(response.cache_outcome))
        .Set("service_ms", response.service_ms);
    return json.Dump();
  }
  json.Set("key", response.key)
      .Set("deadlock_free", response.deadlock_free)
      .Set("initially_deadlock_free", response.initially_deadlock_free)
      .SetRaw("certificate", response.certificate_json)
      .Set("channels_before", response.channels_before)
      .Set("channels_after", response.channels_after)
      .Set("vcs_added", response.vcs_added)
      .Set("iterations", response.iterations)
      .Set("flows_rerouted", response.flows_rerouted);
  if (!response.treated_design_text.empty()) {
    json.Set("design", response.treated_design_text);
  }
  json.Set("cache", CacheOutcomeName(response.cache_outcome))
      .Set("service_ms", response.service_ms);
  return json.Dump();
}

std::string SessionOpName(SessionOp op) {
  switch (op) {
    case SessionOp::kOpen:
      return "session_open";
    case SessionOp::kBurst:
      return "fault_burst";
    case SessionOp::kSnapshot:
      return "session_snapshot";
    case SessionOp::kClose:
      return "session_close";
  }
  return "unknown";
}

ErrorCode ParseErrorCode(const std::string& name) {
  for (const ErrorCode code :
       {ErrorCode::kNone, ErrorCode::kInvalidRequest,
        ErrorCode::kUnsupportedVersion, ErrorCode::kUnknownType,
        ErrorCode::kUnknownSession, ErrorCode::kStaleEpoch,
        ErrorCode::kSessionLimit, ErrorCode::kOverloaded,
        ErrorCode::kComputeFailed, ErrorCode::kInternal}) {
    if (ErrorCodeName(code) == name) {
      return code;
    }
  }
  throw ProtocolError(ErrorCode::kInvalidRequest,
                      "unknown error code \"" + name + "\"");
}

std::string SessionRequestToJsonLine(const SessionRequest& request) {
  JsonObject json;
  json.Set("protocol_version", request.protocol_version)
      .Set("type", SessionOpName(request.op));
  if (!request.id.empty()) {
    json.Set("id", request.id);
  }
  if (request.op == SessionOp::kOpen) {
    DesignSpecToJson(request.spec, json);
    JsonObject options;
    options.Set("cycle_policy", CyclePolicyName(request.options.cycle_policy))
        .Set("direction", DirectionName(request.options.direction_policy))
        .Set("engine", EngineName(request.options.engine))
        .Set("duplication", DuplicationName(request.options.duplication))
        .Set("max_iterations", request.options.max_iterations);
    json.SetRaw("options", options.Dump());
  } else {
    json.Set("session", request.session_id);
  }
  if (request.op == SessionOp::kBurst) {
    if (request.has_expect_epoch) {
      json.Set("expect_epoch", request.expect_epoch);
    }
    std::string events = "[";
    for (std::size_t i = 0; i < request.events.size(); ++i) {
      const SessionEventSpec& event = request.events[i];
      JsonObject item;
      if (event.kind == fault::FaultKind::kLink) {
        item.Set("kind", "link").Set("src", event.src).Set("dst", event.dst);
      } else {
        item.Set("kind", "switch").Set("switch", event.switch_name);
      }
      if (i != 0) {
        events += ",";
      }
      events += item.Dump();
    }
    events += "]";
    json.SetRaw("events", events);
  }
  if (request.op == SessionOp::kOpen || request.op == SessionOp::kBurst) {
    json.Set("return_design", request.return_design);
  }
  return json.Dump();
}

std::string SessionResponseToJsonLine(const SessionResponse& response) {
  JsonObject json;
  json.Set("protocol_version", response.protocol_version)
      .Set("type", SessionOpName(response.op));
  if (!response.id.empty()) {
    json.Set("id", response.id);
  }
  if (!response.session_id.empty()) {
    json.Set("session", response.session_id);
  }
  json.Set("status", StatusName(response.status));
  if (response.status != ServeStatus::kOk) {
    json.SetRaw("error", ErrorToJson(response.error).Dump());
    if (response.error.code == ErrorCode::kStaleEpoch) {
      // The one error that carries state: the session's actual epoch,
      // so an optimistic client can resync without a snapshot.
      json.Set("epoch", response.epoch);
    }
    json.Set("service_ms", response.service_ms);
    return json.Dump();
  }
  json.Set("epoch", response.epoch);
  if (response.op == SessionOp::kBurst) {
    json.Set("feasible", response.feasible);
    if (!response.feasible) {
      std::string flows = "[";
      for (std::size_t i = 0; i < response.disconnected_flows.size(); ++i) {
        if (i != 0) {
          flows += ",";
        }
        flows += std::to_string(response.disconnected_flows[i]);
      }
      flows += "]";
      json.SetRaw("disconnected_flows", flows);
    }
    json.Set("affected_flows", response.affected_flows)
        .Set("table_detours", response.table_detours)
        .Set("ripup_reroutes", response.ripup_reroutes);
  }
  if (response.op == SessionOp::kOpen || response.op == SessionOp::kBurst) {
    json.Set("removal_iterations", response.removal_iterations)
        .Set("vcs_added", response.vcs_added)
        .Set("flows_rerouted", response.flows_rerouted);
  }
  if (response.op != SessionOp::kClose) {
    json.Set("channels", response.channels)
        .Set("key", response.key)
        .Set("deadlock_free", response.deadlock_free);
    if (!response.certificate_json.empty()) {
      json.SetRaw("certificate", response.certificate_json);
    }
  }
  if (!response.design_text.empty()) {
    json.Set("design", response.design_text);
  }
  if (response.op == SessionOp::kSnapshot || response.op == SessionOp::kClose) {
    json.Set("failed_links", response.failed_links)
        .Set("failed_switches", response.failed_switches)
        .Set("bursts_applied", response.bursts_applied);
  }
  if (response.op == SessionOp::kOpen) {
    json.Set("cache", CacheOutcomeName(response.cache_outcome));
  }
  json.Set("service_ms", response.service_ms);
  return json.Dump();
}

std::string StatsRequestToJsonLine(const StatsRequest& request) {
  JsonObject json;
  json.Set("protocol_version", request.protocol_version).Set("type", "stats");
  if (!request.id.empty()) {
    json.Set("id", request.id);
  }
  return json.Dump();
}

std::string StatsResponseToJsonLine(const StatsRequest& request,
                                    const ServiceStats& service_stats,
                                    const SessionServiceStats& session_stats) {
  JsonObject json;
  json.Set("protocol_version", request.protocol_version).Set("type", "stats");
  if (!request.id.empty()) {
    json.Set("id", request.id);
  }
  json.Set("status", StatusName(ServeStatus::kOk))
      .SetRaw("provenance", BuildProvenanceJson().Dump())
      .Set("requests", service_stats.requests)
      .Set("hits", service_stats.hits)
      .Set("computations", service_stats.computations)
      .Set("coalesced", service_stats.coalesced)
      .Set("rejected", service_stats.rejected)
      .Set("errors", service_stats.errors)
      .Set("pool_backlog", service_stats.pool_backlog)
      .SetRaw("front", CacheStatsToJson(service_stats.front).Dump())
      .SetRaw("cache", CacheStatsToJson(service_stats.cache).Dump())
      .SetRaw("disk", CacheStatsToJson(service_stats.disk).Dump());
  JsonObject sessions;
  sessions.Set("opened", session_stats.opened)
      .Set("closed", session_stats.closed)
      .Set("open_rejected", session_stats.open_rejected)
      .Set("bursts_applied", session_stats.bursts_applied)
      .Set("bursts_infeasible", session_stats.bursts_infeasible)
      .Set("epochs_served", session_stats.epochs_served)
      .Set("errors", session_stats.errors)
      .Set("live", session_stats.live_sessions);
  json.SetRaw("sessions", sessions.Dump());
  std::string classes = "[";
  bool first = true;
  for (const sched::ClassCounters& c : service_stats.admission_classes) {
    JsonObject item;
    item.Set("name", c.name)
        .Set("rank", c.rank)
        .Set("requests", c.requests)
        .Set("admitted", c.admitted)
        .Set("rejected", c.rejected)
        .Set("cost_admitted", c.cost_admitted);
    if (!first) {
      classes += ",";
    }
    first = false;
    classes += item.Dump();
  }
  classes += "]";
  json.SetRaw("admission_classes", classes);
  return json.Dump();
}

std::string StatsTextFromJson(const std::string& response_line,
                              const std::string& prefix) {
  JsonValue json;
  try {
    json = JsonValue::Parse(response_line);
  } catch (const std::exception& e) {
    throw ProtocolError(ErrorCode::kInvalidRequest, e.what());
  }
  try {
    const JsonValue* type = json.Find("type");
    if (type == nullptr || type->AsString() != "stats") {
      throw ProtocolError(ErrorCode::kInvalidRequest,
                          "StatsTextFromJson: not a stats response line");
    }
    const auto u = [&](const JsonValue& node, const char* key) {
      return node.At(key).AsUint();
    };
    std::string text;
    text += prefix + std::to_string(u(json, "requests")) + " requests: " +
            std::to_string(u(json, "hits")) + " hits, " +
            std::to_string(u(json, "computations")) + " computed, " +
            std::to_string(u(json, "coalesced")) + " coalesced, " +
            std::to_string(u(json, "rejected")) + " rejected, " +
            std::to_string(u(json, "errors")) + " errors\n";
    const auto tier = [&](const char* key, const char* label) {
      const JsonValue& node = json.At(key);
      std::string line = prefix + std::string(label) + ": " +
                         std::to_string(u(node, "entries")) + " entries / " +
                         std::to_string(u(node, "bytes")) + " bytes, " +
                         std::to_string(u(node, "hits")) + " hits, " +
                         std::to_string(u(node, "insertions")) +
                         " insertions, " +
                         std::to_string(u(node, "evictions")) + " evictions";
      if (u(node, "promotions") != 0 || u(node, "demotions") != 0) {
        line += ", " + std::to_string(u(node, "promotions")) +
                " promotions, " + std::to_string(u(node, "demotions")) +
                " demotions";
      }
      if (u(node, "corrupt_skipped") != 0) {
        line += ", " + std::to_string(u(node, "corrupt_skipped")) +
                " corrupt skipped";
      }
      return line + "\n";
    };
    text += tier("front", "front memo");
    text += tier("cache", "cache");
    text += tier("disk", "disk");
    const JsonValue& sessions = json.At("sessions");
    text += prefix + "sessions: " + std::to_string(u(sessions, "opened")) +
            " opened, " + std::to_string(u(sessions, "closed")) + " closed, " +
            std::to_string(u(sessions, "live")) + " live, " +
            std::to_string(u(sessions, "open_rejected")) + " rejected, " +
            std::to_string(u(sessions, "bursts_applied")) +
            " bursts applied, " +
            std::to_string(u(sessions, "bursts_infeasible")) +
            " infeasible, " + std::to_string(u(sessions, "epochs_served")) +
            " epochs served, " + std::to_string(u(sessions, "errors")) +
            " errors\n";
    for (const JsonValue& c : json.At("admission_classes").Items()) {
      if (u(c, "requests") == 0) {
        continue;  // configured but never used
      }
      text += prefix + "class " + c.At("name").AsString() + ": rank " +
              std::to_string(c.At("rank").AsUint()) + ", " +
              std::to_string(u(c, "requests")) + " requests, " +
              std::to_string(u(c, "admitted")) + " admitted, " +
              std::to_string(u(c, "rejected")) + " rejected, " +
              std::to_string(u(c, "cost_admitted")) + " cost units admitted\n";
    }
    return text;
  } catch (const ProtocolError&) {
    throw;
  } catch (const std::exception& e) {
    throw ProtocolError(ErrorCode::kInvalidRequest, e.what());
  }
}

std::string MetricsRequestToJsonLine(const MetricsRequest& request) {
  JsonObject json;
  json.Set("protocol_version", request.protocol_version)
      .Set("type", "metrics");
  if (!request.id.empty()) {
    json.Set("id", request.id);
  }
  return json.Dump();
}

std::string MetricsResponseToJsonLine(const MetricsRequest& request,
                                      const obs::MetricsSnapshot& snapshot) {
  JsonObject json;
  json.Set("protocol_version", request.protocol_version)
      .Set("type", "metrics");
  if (!request.id.empty()) {
    json.Set("id", request.id);
  }
  json.Set("status", StatusName(ServeStatus::kOk))
      .SetRaw("provenance", BuildProvenanceJson().Dump())
      .SetRaw("counters", obs::CountersToJson(snapshot).Dump())
      .SetRaw("gauges", obs::GaugesToJson(snapshot).Dump())
      .SetRaw("histograms", obs::HistogramsToJson(snapshot).Dump());
  return json.Dump();
}

std::string MetricsTextFromJson(const std::string& response_line,
                                const std::string& prefix) {
  JsonValue json;
  try {
    json = JsonValue::Parse(response_line);
  } catch (const std::exception& e) {
    throw ProtocolError(ErrorCode::kInvalidRequest, e.what());
  }
  try {
    const JsonValue* type = json.Find("type");
    if (type == nullptr || type->AsString() != "metrics") {
      throw ProtocolError(ErrorCode::kInvalidRequest,
                          "MetricsTextFromJson: not a metrics response line");
    }
    std::string text;
    const JsonValue& provenance = json.At("provenance");
    text += prefix + "build " + provenance.At("git_sha").AsString() + " (" +
            provenance.At("compiler").AsString() + ")\n";
    for (const auto& [name, value] : json.At("counters").Members()) {
      text += prefix + "counter " + name + " = " +
              std::to_string(value.AsUint()) + "\n";
    }
    for (const auto& [name, value] : json.At("gauges").Members()) {
      text += prefix + "gauge " + name + " = " +
              std::to_string(value.AsInt()) + "\n";
    }
    for (const auto& [name, histogram] : json.At("histograms").Members()) {
      const std::uint64_t count = histogram.At("count").AsUint();
      const std::uint64_t sum = histogram.At("sum").AsUint();
      // Reconstruct quantile bounds from the [le, count] pairs — the
      // same arithmetic as HistogramSnapshot::Quantile, but over the
      // wire shape, so this text is honest about what a remote
      // consumer of the JSON can know.
      const auto bound = [&](double q) -> std::uint64_t {
        const auto want = static_cast<std::uint64_t>(
            q * static_cast<double>(count) + 0.999999);
        std::uint64_t seen = 0;
        std::uint64_t last = 0;
        for (const JsonValue& pair : histogram.At("buckets").Items()) {
          last = pair.Items().at(0).AsUint();
          seen += pair.Items().at(1).AsUint();
          if (seen >= want) {
            return last;
          }
        }
        return last;
      };
      text += prefix + name + ": " + std::to_string(count) + " samples, sum " +
              std::to_string(sum);
      if (count > 0) {
        text += ", p50 <= " + std::to_string(bound(0.5)) + ", p99 <= " +
                std::to_string(bound(0.99));
      }
      text += "\n";
    }
    return text;
  } catch (const ProtocolError&) {
    throw;
  } catch (const std::exception& e) {
    throw ProtocolError(ErrorCode::kInvalidRequest, e.what());
  }
}

std::string ErrorResponseLine(int protocol_version, const std::string& id,
                              ErrorCode code, const std::string& message) {
  JsonObject json;
  json.Set("protocol_version", protocol_version);
  if (!id.empty()) {
    json.Set("id", id);
  }
  json.Set("status", StatusName(ServeStatus::kError));
  json.SetRaw("error", ErrorToJson(ErrorInfo{code, message}).Dump());
  return json.Dump();
}

std::string ServeDispatcher::Handle(const ServeMessage& message) {
  if (message.is_stats) {
    return StatsResponseToJsonLine(message.stats, service_.Stats(),
                                   sessions_.Stats());
  }
  if (message.is_metrics) {
    return MetricsResponseToJsonLine(message.metrics,
                                     obs::Metrics().Snapshot());
  }
  if (message.is_session) {
    return SessionResponseToJsonLine(sessions_.Handle(message.session));
  }
  return ResponseToJsonLine(service_.Serve(message.certify));
}

std::string ServeDispatcher::HandleLine(const std::string& line) {
  try {
    return Handle(ParseMessageLine(line));
  } catch (const ProtocolError& e) {
    // Best-effort echo of version and id so the client can correlate
    // the failure; the line may be arbitrarily malformed.
    int version = kProtocolV1;
    std::string id;
    try {
      const JsonValue json = JsonValue::Parse(line);
      if (const JsonValue* value = json.Find("protocol_version")) {
        const std::uint64_t v = value->AsUint();
        if (v == static_cast<std::uint64_t>(kProtocolV2)) {
          version = kProtocolV2;
        }
      }
      if (const JsonValue* value = json.Find("id")) {
        id = value->AsString();
      }
    } catch (const std::exception&) {
      // Unparseable line: v1, no id.
    }
    return ErrorResponseLine(version, id, e.code(), e.what());
  } catch (const std::exception& e) {
    return ErrorResponseLine(kProtocolV1, "", ErrorCode::kInternal, e.what());
  }
}

}  // namespace nocdr::serve
