#include "serve/protocol.h"

#include <utility>

#include "util/error.h"
#include "util/json.h"

namespace nocdr::serve {

namespace {

std::string CyclePolicyName(CyclePolicy policy) {
  switch (policy) {
    case CyclePolicy::kSmallestFirst:
      return "smallest_first";
    case CyclePolicy::kFirstFound:
      return "first_found";
    case CyclePolicy::kLargestFirst:
      return "largest_first";
  }
  return "unknown";
}

CyclePolicy ParseCyclePolicy(const std::string& name) {
  for (const CyclePolicy policy :
       {CyclePolicy::kSmallestFirst, CyclePolicy::kFirstFound,
        CyclePolicy::kLargestFirst}) {
    if (CyclePolicyName(policy) == name) {
      return policy;
    }
  }
  throw InvalidModelError("ParseRequestLine: unknown cycle_policy \"" + name +
                          "\"");
}

std::string DirectionName(DirectionPolicy policy) {
  switch (policy) {
    case DirectionPolicy::kBoth:
      return "both";
    case DirectionPolicy::kForwardOnly:
      return "forward_only";
    case DirectionPolicy::kBackwardOnly:
      return "backward_only";
  }
  return "unknown";
}

DirectionPolicy ParseDirection(const std::string& name) {
  for (const DirectionPolicy policy :
       {DirectionPolicy::kBoth, DirectionPolicy::kForwardOnly,
        DirectionPolicy::kBackwardOnly}) {
    if (DirectionName(policy) == name) {
      return policy;
    }
  }
  throw InvalidModelError("ParseRequestLine: unknown direction \"" + name +
                          "\"");
}

std::string EngineName(RemovalEngine engine) {
  return engine == RemovalEngine::kIncremental ? "incremental" : "rebuild";
}

RemovalEngine ParseEngine(const std::string& name) {
  if (name == "incremental") {
    return RemovalEngine::kIncremental;
  }
  if (name == "rebuild") {
    return RemovalEngine::kRebuild;
  }
  throw InvalidModelError("ParseRequestLine: unknown engine \"" + name +
                          "\"");
}

std::string DuplicationName(DuplicationMode mode) {
  return mode == DuplicationMode::kVirtualChannel ? "virtual_channel"
                                                  : "physical_link";
}

DuplicationMode ParseDuplication(const std::string& name) {
  if (name == "virtual_channel") {
    return DuplicationMode::kVirtualChannel;
  }
  if (name == "physical_link") {
    return DuplicationMode::kPhysicalLink;
  }
  throw InvalidModelError("ParseRequestLine: unknown duplication \"" + name +
                          "\"");
}

RemovalOptions ParseOptions(const JsonValue& json) {
  RemovalOptions options;
  if (const JsonValue* value = json.Find("cycle_policy")) {
    options.cycle_policy = ParseCyclePolicy(value->AsString());
  }
  if (const JsonValue* value = json.Find("direction")) {
    options.direction_policy = ParseDirection(value->AsString());
  }
  if (const JsonValue* value = json.Find("engine")) {
    options.engine = ParseEngine(value->AsString());
  }
  if (const JsonValue* value = json.Find("duplication")) {
    options.duplication = ParseDuplication(value->AsString());
  }
  if (const JsonValue* value = json.Find("max_iterations")) {
    options.max_iterations = value->AsUint();
  }
  return options;
}

gen::GeneratorSpec ParseGenerator(const JsonValue& json) {
  gen::GeneratorSpec spec;
  const std::string family_name = json.At("family").AsString();
  const auto family = gen::ParseFamily(family_name);
  Require(family.has_value(),
          "ParseRequestLine: unknown generator family \"" + family_name +
              "\"");
  spec.family = *family;
  const auto size_field = [&](const char* key, std::size_t* target) {
    if (const JsonValue* value = json.Find(key)) {
      *target = value->AsUint();
    }
  };
  size_field("width", &spec.width);
  size_field("height", &spec.height);
  size_field("ring_nodes", &spec.ring_nodes);
  size_field("tree_arity", &spec.tree_arity);
  size_field("tree_levels", &spec.tree_levels);
  size_field("tree_uplinks", &spec.tree_uplinks);
  size_field("cores_per_switch", &spec.cores_per_switch);
  size_field("uniform_fanout", &spec.uniform_fanout);
  if (const JsonValue* value = json.Find("pattern")) {
    const std::string pattern_name = value->AsString();
    const auto pattern = gen::ParsePattern(pattern_name);
    Require(pattern.has_value(),
            "ParseRequestLine: unknown traffic pattern \"" + pattern_name +
                "\"");
    spec.pattern = *pattern;
  }
  if (const JsonValue* value = json.Find("hotspot_fraction")) {
    spec.hotspot_fraction = value->AsDouble();
  }
  if (const JsonValue* value = json.Find("min_bandwidth")) {
    spec.min_bandwidth = value->AsDouble();
  }
  if (const JsonValue* value = json.Find("max_bandwidth")) {
    spec.max_bandwidth = value->AsDouble();
  }
  if (const JsonValue* value = json.Find("seed")) {
    spec.seed = value->AsUint();
  }
  return spec;
}

JsonObject GeneratorToJson(const gen::GeneratorSpec& spec) {
  JsonObject json;
  json.Set("family", gen::FamilyName(spec.family))
      .Set("width", spec.width)
      .Set("height", spec.height)
      .Set("ring_nodes", spec.ring_nodes)
      .Set("tree_arity", spec.tree_arity)
      .Set("tree_levels", spec.tree_levels)
      .Set("tree_uplinks", spec.tree_uplinks)
      .Set("cores_per_switch", spec.cores_per_switch)
      .Set("pattern", gen::PatternName(spec.pattern))
      .Set("uniform_fanout", spec.uniform_fanout)
      .Set("hotspot_fraction", spec.hotspot_fraction)
      .Set("min_bandwidth", spec.min_bandwidth)
      .Set("max_bandwidth", spec.max_bandwidth)
      .Set("seed", spec.seed);
  return json;
}

}  // namespace

CertRequest ParseRequestLine(const std::string& line) {
  const JsonValue json = JsonValue::Parse(line);
  CertRequest request;
  if (const JsonValue* value = json.Find("id")) {
    request.id = value->AsString();
  }

  int source_fields = 0;
  if (const JsonValue* value = json.Find("design")) {
    request.kind = RequestKind::kDesignText;
    request.design_text = value->AsString();
    ++source_fields;
  }
  if (const JsonValue* value = json.Find("generator")) {
    request.kind = RequestKind::kGeneratorSpec;
    request.generator = ParseGenerator(*value);
    ++source_fields;
  }
  if (const JsonValue* value = json.Find("source")) {
    request.kind = RequestKind::kSourceSeed;
    const std::string source_name = value->AsString();
    const auto source = valid::ParseSource(source_name);
    Require(source.has_value(), "ParseRequestLine: unknown design source \"" +
                                    source_name + "\"");
    request.source = *source;
    request.seed = json.At("seed").AsUint();
    ++source_fields;
  }
  Require(source_fields == 1,
          "ParseRequestLine: a request needs exactly one of \"design\", "
          "\"generator\" or \"source\"");

  if (const JsonValue* value = json.Find("options")) {
    request.options = ParseOptions(*value);
  }
  if (const JsonValue* value = json.Find("treat")) {
    request.treat = value->AsBool();
  }
  if (const JsonValue* value = json.Find("return_design")) {
    request.return_design = value->AsBool();
  }
  return request;
}

std::string RequestToJsonLine(const CertRequest& request) {
  JsonObject json;
  if (!request.id.empty()) {
    json.Set("id", request.id);
  }
  switch (request.kind) {
    case RequestKind::kDesignText:
      json.Set("design", request.design_text);
      break;
    case RequestKind::kGeneratorSpec:
      json.SetRaw("generator", GeneratorToJson(request.generator).Dump());
      break;
    case RequestKind::kSourceSeed:
      json.Set("source", valid::SourceName(request.source))
          .Set("seed", request.seed);
      break;
  }
  JsonObject options;
  options.Set("cycle_policy", CyclePolicyName(request.options.cycle_policy))
      .Set("direction", DirectionName(request.options.direction_policy))
      .Set("engine", EngineName(request.options.engine))
      .Set("duplication", DuplicationName(request.options.duplication))
      .Set("max_iterations", request.options.max_iterations);
  json.SetRaw("options", options.Dump());
  json.Set("treat", request.treat).Set("return_design", request.return_design);
  return json.Dump();
}

std::string StatusName(ServeStatus status) {
  switch (status) {
    case ServeStatus::kOk:
      return "ok";
    case ServeStatus::kOverloaded:
      return "overloaded";
    case ServeStatus::kError:
      return "error";
  }
  return "unknown";
}

std::string CacheOutcomeName(CacheOutcome outcome) {
  switch (outcome) {
    case CacheOutcome::kHit:
      return "hit";
    case CacheOutcome::kComputed:
      return "computed";
    case CacheOutcome::kCoalesced:
      return "coalesced";
    case CacheOutcome::kNone:
      return "none";
  }
  return "unknown";
}

std::string ResponseToJsonLine(const CertResponse& response) {
  JsonObject json;
  if (!response.id.empty()) {
    json.Set("id", response.id);
  }
  json.Set("status", StatusName(response.status));
  if (response.status == ServeStatus::kError) {
    json.Set("error", response.error);
    json.Set("cache", CacheOutcomeName(response.cache_outcome))
        .Set("service_ms", response.service_ms);
    return json.Dump();
  }
  if (response.status == ServeStatus::kOverloaded) {
    json.Set("cache", CacheOutcomeName(response.cache_outcome))
        .Set("service_ms", response.service_ms);
    return json.Dump();
  }
  json.Set("key", response.key)
      .Set("deadlock_free", response.deadlock_free)
      .Set("initially_deadlock_free", response.initially_deadlock_free)
      .SetRaw("certificate", response.certificate_json)
      .Set("channels_before", response.channels_before)
      .Set("channels_after", response.channels_after)
      .Set("vcs_added", response.vcs_added)
      .Set("iterations", response.iterations)
      .Set("flows_rerouted", response.flows_rerouted);
  if (!response.treated_design_text.empty()) {
    json.Set("design", response.treated_design_text);
  }
  json.Set("cache", CacheOutcomeName(response.cache_outcome))
      .Set("service_ms", response.service_ms);
  return json.Dump();
}

}  // namespace nocdr::serve
