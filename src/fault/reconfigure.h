// Online reconfiguration after a fault burst.
//
// When links or switches fail, every flow whose route touched them must
// detour — and the detours can close new channel-dependency cycles, so
// deadlock removal has to run again. This module does that *online*,
// without rebuilding anything the fault did not touch:
//
//   1. affected flows are found by scanning routes against the failure
//      masks;
//   2. if the surviving topology cannot connect some affected flow's
//      endpoints, the burst is infeasible: it is reported with the
//      disconnected flows and nothing is mutated;
//   3. otherwise affected flows are re-routed — through the patched
//      next-hop table when the design is table-routed (the detour
//      policy; synth/route_builder::PatchNextHopTable), falling back to
//      congestion-aware rip-up-and-reroute Dijkstra otherwise;
//   4. the route churn is mirrored into the caller's live CDG via
//      RemoveEdges/AddEdges (plus DirtyCycleFinder taints), never a
//      rebuild;
//   5. deadlock removal re-runs incrementally on that CDG
//      (RemoveDeadlocksOnCdg), so only dirty SCCs are re-scanned.
//
// ApplyFaultBurstRebuild is the from-scratch reference: identical
// re-route decisions, but the CDG is re-derived and removal runs the
// rebuild engine. The two paths must produce bit-identical designs —
// the fault-reconfig validation campaign (src/valid/fault_campaign)
// checks that on every trial, and bench_fault_reconfig measures the
// incremental path's speedup.
#pragma once

#include <cstddef>
#include <vector>

#include "cdg/cdg.h"
#include "cdg/incremental.h"
#include "deadlock/removal.h"
#include "fault/plan.h"
#include "noc/design.h"
#include "synth/route_builder.h"

namespace nocdr::fault {

struct ReconfigureOptions {
  /// Next-hop table of a table-routed design; enables the table-driven
  /// detour policy and is patched in place as bursts land. nullptr means
  /// every affected flow takes the rip-up-and-reroute fallback. Each
  /// reconfiguration pipeline (e.g. the incremental and the rebuild
  /// reference of one trial) must own its own copy.
  NextHopTable* table = nullptr;
  /// Congestion model of the rip-up fallback.
  RouteBuildOptions route_options;
  /// Options of the post-fault removal re-run. `engine` is honored only
  /// by the rebuild reference; the incremental path is, by construction,
  /// the incremental engine.
  RemovalOptions removal;
  /// Cross-check the mutated CDG against a from-scratch rebuild after
  /// the burst (slow; tests and the campaign's paranoid arm).
  bool paranoid_validation = false;
};

struct ReconfigureReport {
  /// Flows whose route crossed a failed element (or whose endpoint
  /// switch died), ascending by id.
  std::vector<FlowId> affected_flows;
  /// Affected flows whose endpoints the surviving topology cannot
  /// connect. Non-empty means the burst was infeasible and nothing was
  /// mutated.
  std::vector<FlowId> disconnected_flows;
  /// How each affected flow was re-routed.
  std::size_t table_detours = 0;
  std::size_t ripup_reroutes = 0;
  /// (src, dst) switch pairs the table patch had to leave unroutable
  /// (informational; flows are feasibility-checked individually).
  std::size_t table_pairs_disconnected = 0;
  /// The post-fault removal re-run.
  RemovalReport removal;

  [[nodiscard]] bool infeasible() const {
    return !disconnected_flows.empty();
  }
};

/// Flows of \p design whose current route traverses a failed link or
/// whose endpoint attachment switch has failed, ascending by id.
std::vector<FlowId> AffectedFlows(const NocDesign& design,
                                  const FaultState& state);

/// Per-channel mask of channels multiplexed onto failed links — the
/// channels the transition simulator treats as lethal to in-flight
/// packets (sim/transition.h).
std::vector<char> DeadChannelMask(const NocDesign& design,
                                  const FaultState& state);

/// Applies one burst to a live (design, cdg, finder, state) quadruple:
/// steps 1-5 above. On an infeasible burst, returns the report with
/// disconnected_flows set and mutates nothing (state included). The CDG
/// must mirror the design's routes on entry; it still does on return.
ReconfigureReport ApplyFaultBurst(NocDesign& design,
                                  ChannelDependencyGraph& cdg,
                                  DirtyCycleFinder& finder,
                                  FaultState& state, const FaultBurst& burst,
                                  const ReconfigureOptions& options = {});

/// The from-scratch reference: identical affected-flow set, detours and
/// rip-up re-routes, but no CDG is maintained — removal re-derives the
/// graph from the design and runs the rebuild engine. Infeasible bursts
/// behave exactly like ApplyFaultBurst's.
ReconfigureReport ApplyFaultBurstRebuild(
    NocDesign& design, FaultState& state, const FaultBurst& burst,
    const ReconfigureOptions& options = {});

}  // namespace nocdr::fault
