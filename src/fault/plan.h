// Deterministic fault plans: seeded link and switch failures.
//
// The paper's deadlock-removal method is cheap enough to re-run when the
// network changes; this module produces the changes. A FaultPlan is a
// sequence of bursts — sets of link/switch failures that hit together —
// drawn deterministically from (design, seed), so every fault scenario
// in the validation campaign and the benches is replayable from two
// integers. FaultState is the accumulated failure mask a plan leaves
// behind; it is the vocabulary every downstream stage speaks (masked
// re-routing in synth/route_builder, CDG surgery in fault/reconfigure,
// dead-channel packet drops in sim/transition).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "noc/design.h"
#include "util/ids.h"

namespace nocdr::fault {

enum class FaultKind {
  kLink,    // one directed physical link goes down
  kSwitch,  // a whole switch goes down, taking every incident link
};

/// One failure. Only the id matching the kind is meaningful.
struct FaultEvent {
  FaultKind kind = FaultKind::kLink;
  LinkId link;
  SwitchId switch_id;
};

/// Failures that strike together; the reconfiguration pipeline sees a
/// burst as one atomic topology change.
using FaultBurst = std::vector<FaultEvent>;

/// A full scenario: bursts applied in order, each on the network state
/// the previous ones left behind.
struct FaultPlan {
  std::vector<FaultBurst> bursts;
};

/// Accumulated failure masks, indexed by LinkId / SwitchId. A switch
/// failure also fails every link incident to it, so failed_links alone
/// decides whether a route survives.
struct FaultState {
  std::vector<char> failed_links;
  std::vector<char> failed_switches;

  /// All-alive state sized for \p design.
  static FaultState None(const NocDesign& design);

  [[nodiscard]] bool LinkFailed(LinkId l) const {
    return failed_links[l.value()] != 0;
  }
  [[nodiscard]] bool SwitchFailed(SwitchId s) const {
    return failed_switches[s.value()] != 0;
  }
  [[nodiscard]] std::size_t FailedLinkCount() const;
  [[nodiscard]] std::size_t FailedSwitchCount() const;

  /// Marks every element \p burst names (switch failures fan out to the
  /// switch's incident links). Idempotent per element.
  void Apply(const NocDesign& design, const FaultBurst& burst);
};

struct FaultPlanOptions {
  /// Waves of failures per plan.
  std::size_t bursts = 2;
  /// Links a link-kind burst kills (actual count drawn in [1, max]).
  std::size_t max_links_per_burst = 2;
  /// Probability a burst kills one switch instead of links.
  double switch_fault_probability = 0.2;
  /// Never kill a switch that has cores attached (its flows could not be
  /// re-routed at all — an instant disconnection). Switch faults then
  /// only hit pure transit switches; designs without any (e.g. one core
  /// per switch everywhere) degrade to link faults.
  bool spare_attachment_switches = true;
  /// Probability a burst is drawn *without* the connectivity guard.
  /// Guarded bursts only kill elements that provably keep every pair of
  /// attachment switches mutually reachable (so reconfiguration stays
  /// feasible and the pipeline gets real work); unguarded bursts may
  /// disconnect, exercising the distinct infeasibility verdict. 0 makes
  /// every burst survivable-by-construction, 1 restores pure chance.
  double disconnect_tolerance = 0.25;
};

/// Draws a deterministic plan for \p design from \p seed. Elements
/// already named earlier in the plan are never named again, and at least
/// one outgoing link of every surviving switch is left alive per burst
/// when possible; bursts come out empty once the design has nothing
/// safely failable left. Identical (design, seed, options) triples give
/// byte-identical plans on every platform.
FaultPlan DrawFaultPlan(const NocDesign& design, std::uint64_t seed,
                        const FaultPlanOptions& options = {});

/// Human-readable one-liner, e.g. "link SW2->SW5" or "switch SW3".
std::string Describe(const FaultEvent& event, const NocDesign& design);

/// Resolves a link failure named by (src, dst) switch names — the form
/// the serve protocol's fault_burst events arrive in. nullopt when a
/// name is unknown or no such directed link exists. Switch and link ids
/// are stable across design canonicalization, so an event resolved on
/// any rendering of the design names the same element.
std::optional<FaultEvent> MakeLinkFault(const NocDesign& design,
                                        const std::string& src_switch,
                                        const std::string& dst_switch);

/// Resolves a switch failure by name; nullopt when unknown.
std::optional<FaultEvent> MakeSwitchFault(const NocDesign& design,
                                          const std::string& switch_name);

}  // namespace nocdr::fault
