#include "fault/reconfigure.h"

#include <algorithm>

#include "util/error.h"

namespace nocdr::fault {

namespace {

/// BFS reachability over surviving links, memoized per source switch —
/// many affected flows share a source.
class SurvivorReachability {
 public:
  SurvivorReachability(const NocDesign& design, const FaultState& state)
      : design_(design), state_(state),
        visited_(design.topology.SwitchCount() *
                     design.topology.SwitchCount(),
                 0),
        done_(design.topology.SwitchCount(), 0) {}

  bool Reachable(SwitchId src, SwitchId dst) {
    const std::size_t n = design_.topology.SwitchCount();
    if (!done_[src.value()]) {
      char* row = visited_.data() + src.value() * n;
      std::vector<std::uint32_t> queue;
      if (!state_.SwitchFailed(src)) {
        row[src.value()] = 1;
        queue.push_back(src.value());
      }
      for (std::size_t head = 0; head < queue.size(); ++head) {
        const SwitchId v(queue[head]);
        for (const LinkId l : design_.topology.OutLinks(v)) {
          if (state_.LinkFailed(l)) {
            continue;
          }
          const SwitchId w = design_.topology.LinkAt(l).dst;
          if (!row[w.value()] && !state_.SwitchFailed(w)) {
            row[w.value()] = 1;
            queue.push_back(w.value());
          }
        }
      }
      done_[src.value()] = 1;
    }
    return visited_[src.value() * n + dst.value()] != 0;
  }

 private:
  const NocDesign& design_;
  const FaultState& state_;
  std::vector<char> visited_;  // n x n, rows filled lazily
  std::vector<char> done_;
};

/// The shared burst pipeline. \p cdg / \p finder are null on the rebuild
/// reference path. Returns true when the design was mutated (the burst
/// was feasible).
bool ReconfigureCore(NocDesign& design, ChannelDependencyGraph* cdg,
                     DirtyCycleFinder* finder, FaultState& state,
                     const FaultBurst& burst,
                     const ReconfigureOptions& options,
                     ReconfigureReport& report) {
  FaultState next = state;
  next.Apply(design, burst);

  // 1. Affected flows: endpoint switch died, or the route crosses a
  // failed link. Routes were valid under the previous state, so any
  // failed link on them is newly failed.
  report.affected_flows = AffectedFlows(design, next);

  // 2. Feasibility: every affected flow must still have some surviving
  // path. Any miss makes the whole burst infeasible, untouched.
  SurvivorReachability reach(design, next);
  for (const FlowId f : report.affected_flows) {
    const Flow& flow = design.traffic.FlowAt(f);
    const SwitchId src = design.attachment[flow.src.value()];
    const SwitchId dst = design.attachment[flow.dst.value()];
    if (next.SwitchFailed(src) || next.SwitchFailed(dst) ||
        !reach.Reachable(src, dst)) {
      report.disconnected_flows.push_back(f);
    }
  }
  if (report.infeasible()) {
    return false;
  }
  state = std::move(next);

  // 3. Mirror the rip-up into the CDG before any route changes.
  if (cdg != nullptr) {
    for (const FlowId f : report.affected_flows) {
      cdg->RemoveEdges(design.routes.RouteOf(f), f);
    }
  }

  // 4. Re-route: table detours first, rip-up Dijkstra for the rest.
  std::vector<FlowId> ripup;
  if (options.table != nullptr) {
    report.table_pairs_disconnected = PatchNextHopTable(
        design.topology, *options.table, state.failed_links,
        state.failed_switches);
    for (const FlowId f : report.affected_flows) {
      const Flow& flow = design.traffic.FlowAt(f);
      const SwitchId src = design.attachment[flow.src.value()];
      const SwitchId dst = design.attachment[flow.dst.value()];
      auto detour =
          WalkTableRoute(design.topology, *options.table, src, dst);
      if (detour.has_value()) {
        design.routes.SetRoute(f, std::move(*detour));
        ++report.table_detours;
      } else {
        ripup.push_back(f);
      }
    }
  } else {
    ripup = report.affected_flows;
  }
  if (!ripup.empty()) {
    RerouteFlows(design, ripup, state.failed_links, state.failed_switches,
                 options.route_options);
    report.ripup_reroutes = ripup.size();
  }
  if (cdg != nullptr) {
    for (const FlowId f : report.affected_flows) {
      const Route& route = design.routes.RouteOf(f);
      cdg->AddEdges(route, f);
      // The new edges connect pre-existing vertices, which the finder's
      // fresh-vertex rule would never re-scan on its own.
      finder->NoteExternalEdges(route);
    }
  }

  // 5. Deadlock removal re-runs on what the detours left behind.
  if (cdg != nullptr) {
    report.removal =
        RemoveDeadlocksOnCdg(design, *cdg, *finder, options.removal);
    if (options.paranoid_validation) {
      Require(cdg->SameDependencies(ChannelDependencyGraph::Build(design)),
              "ApplyFaultBurst: maintained CDG diverged from rebuild");
    }
  } else {
    RemovalOptions rebuild = options.removal;
    rebuild.engine = RemovalEngine::kRebuild;
    report.removal = RemoveDeadlocks(design, rebuild);
  }
  if (options.paranoid_validation) {
    design.Validate();
  }
  return true;
}

}  // namespace

std::vector<FlowId> AffectedFlows(const NocDesign& design,
                                  const FaultState& state) {
  std::vector<FlowId> affected;
  for (std::size_t fi = 0; fi < design.traffic.FlowCount(); ++fi) {
    const FlowId f(fi);
    const Flow& flow = design.traffic.FlowAt(f);
    const SwitchId src = design.attachment[flow.src.value()];
    const SwitchId dst = design.attachment[flow.dst.value()];
    if (state.SwitchFailed(src) || state.SwitchFailed(dst)) {
      affected.push_back(f);
      continue;
    }
    for (const ChannelId c : design.routes.RouteOf(f)) {
      if (state.LinkFailed(design.topology.ChannelAt(c).link)) {
        affected.push_back(f);
        break;
      }
    }
  }
  return affected;
}

std::vector<char> DeadChannelMask(const NocDesign& design,
                                  const FaultState& state) {
  std::vector<char> dead(design.topology.ChannelCount(), 0);
  for (std::size_t c = 0; c < design.topology.ChannelCount(); ++c) {
    dead[c] = state.LinkFailed(design.topology.ChannelAt(ChannelId(c)).link)
                  ? 1
                  : 0;
  }
  return dead;
}

ReconfigureReport ApplyFaultBurst(NocDesign& design,
                                  ChannelDependencyGraph& cdg,
                                  DirtyCycleFinder& finder,
                                  FaultState& state, const FaultBurst& burst,
                                  const ReconfigureOptions& options) {
  ReconfigureReport report;
  ReconfigureCore(design, &cdg, &finder, state, burst, options, report);
  return report;
}

ReconfigureReport ApplyFaultBurstRebuild(NocDesign& design,
                                         FaultState& state,
                                         const FaultBurst& burst,
                                         const ReconfigureOptions& options) {
  ReconfigureReport report;
  ReconfigureCore(design, nullptr, nullptr, state, burst, options, report);
  return report;
}

}  // namespace nocdr::fault
