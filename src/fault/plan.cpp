#include "fault/plan.h"

#include <algorithm>

#include "util/error.h"
#include "util/rng.h"

namespace nocdr::fault {

FaultState FaultState::None(const NocDesign& design) {
  FaultState state;
  state.failed_links.assign(design.topology.LinkCount(), 0);
  state.failed_switches.assign(design.topology.SwitchCount(), 0);
  return state;
}

std::size_t FaultState::FailedLinkCount() const {
  return static_cast<std::size_t>(
      std::count(failed_links.begin(), failed_links.end(), 1));
}

std::size_t FaultState::FailedSwitchCount() const {
  return static_cast<std::size_t>(
      std::count(failed_switches.begin(), failed_switches.end(), 1));
}

void FaultState::Apply(const NocDesign& design, const FaultBurst& burst) {
  Require(failed_links.size() == design.topology.LinkCount() &&
              failed_switches.size() == design.topology.SwitchCount(),
          "FaultState::Apply: state not sized for this design");
  for (const FaultEvent& event : burst) {
    switch (event.kind) {
      case FaultKind::kLink:
        Require(design.topology.IsValidLink(event.link),
                "FaultState::Apply: invalid link id");
        failed_links[event.link.value()] = 1;
        break;
      case FaultKind::kSwitch: {
        Require(design.topology.IsValidSwitch(event.switch_id),
                "FaultState::Apply: invalid switch id");
        failed_switches[event.switch_id.value()] = 1;
        for (const LinkId l : design.topology.OutLinks(event.switch_id)) {
          failed_links[l.value()] = 1;
        }
        for (const LinkId l : design.topology.InLinks(event.switch_id)) {
          failed_links[l.value()] = 1;
        }
        break;
      }
    }
  }
}

namespace {

/// Out-links of \p s still alive under \p state.
std::size_t AliveOut(const NocDesign& design, const FaultState& state,
                     SwitchId s) {
  std::size_t alive = 0;
  for (const LinkId l : design.topology.OutLinks(s)) {
    alive += !state.LinkFailed(l);
  }
  return alive;
}

std::size_t AliveIn(const NocDesign& design, const FaultState& state,
                    SwitchId s) {
  std::size_t alive = 0;
  for (const LinkId l : design.topology.InLinks(s)) {
    alive += !state.LinkFailed(l);
  }
  return alive;
}

/// BFS over surviving links; \p forward walks out-links, else in-links.
/// Fills \p seen (resized/cleared here).
void SurvivorBfs(const NocDesign& design, const FaultState& state,
                 SwitchId start, bool forward, std::vector<char>& seen) {
  seen.assign(design.topology.SwitchCount(), 0);
  if (state.SwitchFailed(start)) {
    return;
  }
  std::vector<std::uint32_t> queue{start.value()};
  seen[start.value()] = 1;
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const SwitchId v(queue[head]);
    const auto& links = forward ? design.topology.OutLinks(v)
                                : design.topology.InLinks(v);
    for (const LinkId l : links) {
      if (state.LinkFailed(l)) {
        continue;
      }
      const Link& link = design.topology.LinkAt(l);
      const SwitchId w = forward ? link.dst : link.src;
      if (!seen[w.value()] && !state.SwitchFailed(w)) {
        seen[w.value()] = 1;
        queue.push_back(w.value());
      }
    }
  }
}

/// True when, under \p state, every pair of attachment switches stays
/// mutually reachable: for a pivot attachment switch a0, a0 must reach
/// and be reached by every other attachment switch (then x -> a0 -> y
/// connects any pair). Exactly the condition under which every flow can
/// still be re-routed.
bool AttachmentsStronglyConnected(const NocDesign& design,
                                  const FaultState& state,
                                  const std::vector<char>& has_cores,
                                  std::vector<char>& fwd,
                                  std::vector<char>& bwd) {
  SwitchId pivot;
  for (std::size_t s = 0; s < has_cores.size(); ++s) {
    if (has_cores[s]) {
      pivot = SwitchId(s);
      break;
    }
  }
  if (!pivot.valid()) {
    return true;  // no attached cores, nothing to protect
  }
  SurvivorBfs(design, state, pivot, /*forward=*/true, fwd);
  SurvivorBfs(design, state, pivot, /*forward=*/false, bwd);
  for (std::size_t s = 0; s < has_cores.size(); ++s) {
    if (has_cores[s] && (!fwd[s] || !bwd[s])) {
      return false;
    }
  }
  return true;
}

}  // namespace

FaultPlan DrawFaultPlan(const NocDesign& design, std::uint64_t seed,
                        const FaultPlanOptions& options) {
  Require(options.max_links_per_burst >= 1,
          "DrawFaultPlan: max_links_per_burst must be >= 1");
  Rng rng(seed);
  FaultPlan plan;
  FaultState state = FaultState::None(design);

  std::vector<char> has_cores(design.topology.SwitchCount(), 0);
  for (const SwitchId s : design.attachment) {
    has_cores[s.value()] = 1;
  }

  std::vector<char> fwd, bwd;  // BFS scratch for the connectivity guard
  // True when killing \p event on top of \p state keeps every pair of
  // attachment switches mutually reachable (reconfiguration provably
  // stays feasible).
  const auto survivable = [&](const FaultEvent& event) {
    FaultState probe = state;
    probe.Apply(design, {event});
    return AttachmentsStronglyConnected(design, probe, has_cores, fwd, bwd);
  };

  for (std::size_t b = 0; b < options.bursts; ++b) {
    // Guarded bursts reject disconnecting kills; unguarded ones take
    // their chances (and exercise the infeasibility verdict downstream).
    const bool guarded = !rng.NextBool(options.disconnect_tolerance);
    FaultBurst burst;
    if (rng.NextBool(options.switch_fault_probability)) {
      // Kill one transit switch (or any switch when attachment sparing
      // is off).
      std::vector<SwitchId> candidates;
      for (std::size_t s = 0; s < design.topology.SwitchCount(); ++s) {
        const SwitchId sw(s);
        if (state.SwitchFailed(sw)) {
          continue;
        }
        if (options.spare_attachment_switches && has_cores[s]) {
          continue;
        }
        candidates.push_back(sw);
      }
      while (!candidates.empty()) {
        const std::size_t pick = rng.NextBelow(candidates.size());
        const FaultEvent event{FaultKind::kSwitch, LinkId(),
                               candidates[pick]};
        if (!guarded || survivable(event)) {
          burst.push_back(event);
          break;
        }
        candidates.erase(candidates.begin() +
                         static_cast<std::ptrdiff_t>(pick));
      }
    }
    if (burst.empty()) {
      const std::size_t want =
          1 + static_cast<std::size_t>(
                  rng.NextBelow(options.max_links_per_burst));
      for (std::size_t k = 0; k < want; ++k) {
        // Cheap pre-filter: a link is a candidate when it is alive and
        // neither endpoint would be left without any alive link in that
        // direction. Guarded bursts additionally reject kills the
        // connectivity check proves disconnecting.
        std::vector<LinkId> candidates;
        for (std::size_t li = 0; li < design.topology.LinkCount(); ++li) {
          const LinkId l(li);
          if (state.LinkFailed(l)) {
            continue;
          }
          const Link& link = design.topology.LinkAt(l);
          if (AliveOut(design, state, link.src) <= 1 ||
              AliveIn(design, state, link.dst) <= 1) {
            continue;
          }
          candidates.push_back(l);
        }
        bool placed = false;
        while (!candidates.empty()) {
          const std::size_t pick = rng.NextBelow(candidates.size());
          const FaultEvent event{FaultKind::kLink, candidates[pick],
                                 SwitchId()};
          if (!guarded || survivable(event)) {
            burst.push_back(event);
            state.Apply(design, {event});
            placed = true;
            break;
          }
          candidates.erase(candidates.begin() +
                           static_cast<std::ptrdiff_t>(pick));
        }
        if (!placed) {
          break;
        }
      }
    } else {
      state.Apply(design, burst);
    }
    plan.bursts.push_back(std::move(burst));
  }
  return plan;
}

std::string Describe(const FaultEvent& event, const NocDesign& design) {
  if (event.kind == FaultKind::kSwitch) {
    const std::string& name = design.topology.SwitchName(event.switch_id);
    return "switch " +
           (name.empty() ? "#" + std::to_string(event.switch_id.value())
                         : name);
  }
  const Link& link = design.topology.LinkAt(event.link);
  const auto label = [&](SwitchId s) {
    const std::string& name = design.topology.SwitchName(s);
    return name.empty() ? "#" + std::to_string(s.value()) : name;
  };
  return "link " + label(link.src) + "->" + label(link.dst);
}

namespace {

std::optional<SwitchId> FindSwitchByName(const NocDesign& design,
                                         const std::string& name) {
  for (std::size_t s = 0; s < design.topology.SwitchCount(); ++s) {
    const SwitchId id{s};
    if (design.topology.SwitchName(id) == name) {
      return id;
    }
  }
  return std::nullopt;
}

}  // namespace

std::optional<FaultEvent> MakeLinkFault(const NocDesign& design,
                                        const std::string& src_switch,
                                        const std::string& dst_switch) {
  const auto src = FindSwitchByName(design, src_switch);
  const auto dst = FindSwitchByName(design, dst_switch);
  if (!src || !dst) {
    return std::nullopt;
  }
  const auto link = design.topology.FindLink(*src, *dst);
  if (!link) {
    return std::nullopt;
  }
  FaultEvent event;
  event.kind = FaultKind::kLink;
  event.link = *link;
  return event;
}

std::optional<FaultEvent> MakeSwitchFault(const NocDesign& design,
                                          const std::string& switch_name) {
  const auto id = FindSwitchByName(design, switch_name);
  if (!id) {
    return std::nullopt;
  }
  FaultEvent event;
  event.kind = FaultKind::kSwitch;
  event.switch_id = *id;
  return event;
}

}  // namespace nocdr::fault
