// Configurable synthetic SoC generator.
//
// The six named benchmarks match the paper's suite; this generator
// extrapolates beyond it for scalability studies ("the method runs
// within minutes even for the largest benchmark and it is scalable"):
// arbitrary core counts with the same structural ingredients — memory
// hubs, processing pipelines and strided peer-to-peer flows.
#pragma once

#include <cstdint>

#include "soc/benchmarks.h"

namespace nocdr {

struct SyntheticSocSpec {
  std::size_t cores = 64;
  /// Strided peer-to-peer destinations per processing core.
  std::size_t fanout = 4;
  /// Number of memory-hub cores every pipeline stages through.
  std::size_t hubs = 2;
  /// Length of each processing pipeline chain (>= 1); chains partition
  /// the non-hub cores.
  std::size_t pipeline_length = 6;
  /// Bandwidth range for generated flows (MB/s).
  double min_bandwidth = 10.0;
  double max_bandwidth = 200.0;
  std::uint64_t seed = 1;
};

/// Builds a synthetic SoC communication graph; deterministic in the
/// spec. The name encodes the shape, e.g. "S64_f4".
SocBenchmark MakeSyntheticSoc(const SyntheticSocSpec& spec);

}  // namespace nocdr
