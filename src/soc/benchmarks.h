// Synthetic SoC benchmark suite.
//
// The paper evaluates on proprietary SoC communication specifications
// (described in [21]): D26_media (26-core multimedia + wireless),
// D36_4/6/8 (36 cores, each sending to 4/6/8 others), D35_bot and
// D38_tvo. Those specs are not public, so this module generates
// deterministic synthetic equivalents with the documented core counts,
// fan-outs and traffic character:
//   * D26_media — heterogeneous pipelines (video, audio, wireless) around
//     DRAM/ARM hubs; sparse, hub-and-spoke + chain structure;
//   * D36_k    — uniform 36-core multimedia fabric where every processor
//     sends to k strided peers; fan-out is the documented parameter;
//   * D35_bot  — clustered sensor/fusion/actuation robot pipeline;
//   * D38_tvo  — dual high-bandwidth TV-out video pipelines with shared
//     memory controllers.
// Deadlock structure depends on core count, fan-out and route shape — all
// matched — not on the exact proprietary bandwidth numbers (DESIGN.md).
#pragma once

#include <string>
#include <vector>

#include "noc/traffic.h"

namespace nocdr {

/// Identifiers for the paper's benchmark set.
enum class SocBenchmarkId {
  kD26Media,
  kD36_4,
  kD36_6,
  kD36_8,
  kD35Bot,
  kD38Tvo,
};

/// A named communication specification.
struct SocBenchmark {
  std::string name;
  CommunicationGraph traffic;
};

/// Builds the requested benchmark. Deterministic: repeated calls return
/// identical graphs.
SocBenchmark MakeBenchmark(SocBenchmarkId id);

/// All six benchmarks in the paper's Figure 10 order.
std::vector<SocBenchmarkId> AllBenchmarkIds();

/// Display name ("D26_media", ...).
std::string BenchmarkName(SocBenchmarkId id);

/// The generic D36-style fabric for arbitrary fan-out (used by tests and
/// scaling studies beyond the paper's 4/6/8).
SocBenchmark MakeD36WithFanout(std::size_t fanout);

}  // namespace nocdr
