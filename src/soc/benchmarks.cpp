#include "soc/benchmarks.h"

#include <array>

#include "util/error.h"
#include "util/rng.h"

namespace nocdr {

namespace {

/// Adds a linear pipeline src -> a -> b -> ... with one bandwidth.
void AddChain(CommunicationGraph& g, const std::vector<CoreId>& stages,
              double bandwidth) {
  for (std::size_t i = 0; i + 1 < stages.size(); ++i) {
    g.AddFlow(stages[i], stages[i + 1], bandwidth);
  }
}

SocBenchmark BuildD26Media() {
  SocBenchmark b;
  b.name = "D26_media";
  CommunicationGraph& g = b.traffic;

  // Hubs.
  const CoreId arm = g.AddCore("arm");
  const CoreId dram = g.AddCore("dram");
  const CoreId sram = g.AddCore("sram");
  const CoreId dma = g.AddCore("dma");

  // Video pipeline.
  const CoreId vin = g.AddCore("vin");
  const CoreId mpeg = g.AddCore("mpeg");
  const CoreId idct = g.AddCore("idct");
  const CoreId filt = g.AddCore("filter");
  const CoreId scal = g.AddCore("scaler");
  const CoreId disp = g.AddCore("display");

  // Audio pipeline.
  const CoreId adc = g.AddCore("adc");
  const CoreId aenc = g.AddCore("audio_enc");
  const CoreId adec = g.AddCore("audio_dec");
  const CoreId dac = g.AddCore("dac");

  // Wireless subsystem.
  const CoreId rf = g.AddCore("rf");
  const CoreId bbd = g.AddCore("baseband");
  const CoreId mac = g.AddCore("mac");
  const CoreId viterbi = g.AddCore("viterbi");

  // Imaging subsystem.
  const CoreId cam = g.AddCore("camera");
  const CoreId isp = g.AddCore("isp");
  const CoreId jpeg = g.AddCore("jpeg");

  // Peripherals.
  const CoreId usb = g.AddCore("usb");
  const CoreId sdio = g.AddCore("sdio");
  const CoreId uart = g.AddCore("uart");
  const CoreId gpio = g.AddCore("gpio");
  const CoreId crypto = g.AddCore("crypto");

  Require(g.CoreCount() == 26, "D26_media must have 26 cores");

  // Video: camera-in through decode to display, staged via memory.
  AddChain(g, {vin, mpeg, idct, filt, scal, disp}, 320.0);
  g.AddFlow(mpeg, dram, 240.0);
  g.AddFlow(dram, idct, 240.0);
  g.AddFlow(scal, dram, 160.0);
  g.AddFlow(dram, disp, 400.0);

  // Audio.
  AddChain(g, {adc, aenc, sram}, 24.0);
  AddChain(g, {sram, adec, dac}, 24.0);
  g.AddFlow(arm, adec, 8.0);

  // Wireless: receive and transmit directions.
  AddChain(g, {rf, bbd, viterbi, mac}, 60.0);
  g.AddFlow(mac, arm, 40.0);
  g.AddFlow(arm, mac, 40.0);
  AddChain(g, {mac, bbd, rf}, 60.0);
  g.AddFlow(mac, crypto, 30.0);
  g.AddFlow(crypto, dram, 30.0);

  // Imaging.
  AddChain(g, {cam, isp, jpeg}, 180.0);
  g.AddFlow(jpeg, dram, 90.0);
  g.AddFlow(isp, disp, 120.0);

  // Control and DMA hub-and-spoke.
  for (CoreId periph : {usb, sdio, uart, gpio}) {
    g.AddFlow(arm, periph, 6.0);
    g.AddFlow(periph, arm, 6.0);
  }
  g.AddFlow(usb, dma, 64.0);
  g.AddFlow(sdio, dma, 48.0);
  g.AddFlow(dma, dram, 120.0);
  g.AddFlow(dram, dma, 120.0);
  g.AddFlow(arm, dram, 80.0);
  g.AddFlow(dram, arm, 80.0);
  g.AddFlow(arm, sram, 40.0);
  g.AddFlow(sram, arm, 40.0);

  return b;
}

SocBenchmark BuildD36(std::size_t fanout, std::string name) {
  SocBenchmark b;
  b.name = std::move(name);
  CommunicationGraph& g = b.traffic;
  constexpr std::size_t kCores = 36;
  for (std::size_t i = 0; i < kCores; ++i) {
    g.AddCore("p" + std::to_string(i));
  }
  // Strides chosen co-prime-ish with 36 so destinations spread over the
  // whole fabric; every core sends to exactly `fanout` others.
  constexpr std::array<std::size_t, 8> kStrides = {1, 5, 7, 11, 13, 17, 19,
                                                   23};
  Require(fanout >= 1 && fanout <= kStrides.size(),
          "D36 fan-out out of supported range");
  Rng rng(0xD36 + fanout);  // deterministic per fan-out
  for (std::size_t i = 0; i < kCores; ++i) {
    for (std::size_t j = 0; j < fanout; ++j) {
      const std::size_t dst = (i + kStrides[j]) % kCores;
      const double bandwidth =
          static_cast<double>(rng.NextInRange(20, 160));
      g.AddFlow(CoreId(i), CoreId(dst), bandwidth);
    }
  }
  return b;
}

SocBenchmark BuildD35Bot() {
  SocBenchmark b;
  b.name = "D35_bot";
  CommunicationGraph& g = b.traffic;

  // 5 sensing clusters x 6 cores + fusion core per cluster feeds a
  // central planner; planner drives 4 actuator cores; memory hub.
  const CoreId planner = g.AddCore("planner");
  const CoreId mem = g.AddCore("mem");
  const CoreId safety = g.AddCore("safety");
  std::vector<CoreId> actuators;
  for (int i = 0; i < 4; ++i) {
    actuators.push_back(g.AddCore("act" + std::to_string(i)));
  }
  for (int cl = 0; cl < 4; ++cl) {
    const CoreId fusion = g.AddCore("fusion" + std::to_string(cl));
    for (int s = 0; s < 6; ++s) {
      const CoreId sensor =
          g.AddCore("s" + std::to_string(cl) + "_" + std::to_string(s));
      g.AddFlow(sensor, fusion, 30.0 + 10.0 * s);
    }
    g.AddFlow(fusion, planner, 90.0);
    g.AddFlow(fusion, mem, 60.0);
    g.AddFlow(planner, fusion, 20.0);
  }
  Require(g.CoreCount() == 35, "D35_bot must have 35 cores");
  for (CoreId act : actuators) {
    g.AddFlow(planner, act, 25.0);
    g.AddFlow(act, safety, 10.0);
  }
  g.AddFlow(planner, mem, 120.0);
  g.AddFlow(mem, planner, 120.0);
  g.AddFlow(safety, planner, 15.0);
  return b;
}

SocBenchmark BuildD38Tvo() {
  SocBenchmark b;
  b.name = "D38_tvo";
  CommunicationGraph& g = b.traffic;

  const CoreId host = g.AddCore("host");
  const CoreId ddr0 = g.AddCore("ddr0");
  const CoreId ddr1 = g.AddCore("ddr1");
  const CoreId mixer = g.AddCore("mixer");
  const CoreId tvenc = g.AddCore("tv_enc");
  const CoreId hdmi = g.AddCore("hdmi");
  const CoreId audio = g.AddCore("audio");
  const CoreId osd = g.AddCore("osd");

  // Two independent video pipelines of 13 stages each.
  std::array<CoreId, 2> tails{};
  for (int p = 0; p < 2; ++p) {
    std::vector<CoreId> stages;
    const std::string prefix = "v" + std::to_string(p) + "_";
    for (const char* stage :
         {"tuner", "demod", "ts_demux", "vdec", "deint", "nr", "sclr"}) {
      stages.push_back(g.AddCore(prefix + stage));
    }
    AddChain(g, stages, 420.0);
    const CoreId ddr = p == 0 ? ddr0 : ddr1;
    g.AddFlow(stages[3], ddr, 300.0);  // decoder reference frames
    g.AddFlow(ddr, stages[4], 300.0);
    g.AddFlow(stages.back(), mixer, 380.0);
    tails[p] = stages.back();
  }
  // Picture-in-picture cross traffic between the pipelines' scalers.
  g.AddFlow(tails[0], ddr1, 120.0);
  g.AddFlow(tails[1], ddr0, 120.0);

  // Mix and output.
  g.AddFlow(osd, mixer, 90.0);
  g.AddFlow(host, osd, 20.0);
  g.AddFlow(mixer, tvenc, 500.0);
  g.AddFlow(mixer, hdmi, 500.0);
  g.AddFlow(audio, hdmi, 30.0);
  g.AddFlow(host, audio, 10.0);
  g.AddFlow(mixer, ddr0, 250.0);
  g.AddFlow(ddr0, mixer, 250.0);

  // Host control plane over remaining blocks.
  std::vector<CoreId> ctrl;
  for (const char* name : {"i2c", "ir", "flash", "eth", "usb_tv", "dsp_post",
                           "cc_dec", "vbi", "smartcard", "spdif", "scart",
                           "ypbpr", "vdac", "ts_in", "pvr", "epg"}) {
    ctrl.push_back(g.AddCore(name));
  }
  Require(g.CoreCount() == 38, "D38_tvo must have 38 cores");
  for (CoreId c : ctrl) {
    g.AddFlow(host, c, 5.0);
    g.AddFlow(c, host, 5.0);
  }
  g.AddFlow(host, ddr0, 60.0);
  g.AddFlow(ddr0, host, 60.0);
  return b;
}

}  // namespace

SocBenchmark MakeBenchmark(SocBenchmarkId id) {
  switch (id) {
    case SocBenchmarkId::kD26Media:
      return BuildD26Media();
    case SocBenchmarkId::kD36_4:
      return BuildD36(4, "D36_4");
    case SocBenchmarkId::kD36_6:
      return BuildD36(6, "D36_6");
    case SocBenchmarkId::kD36_8:
      return BuildD36(8, "D36_8");
    case SocBenchmarkId::kD35Bot:
      return BuildD35Bot();
    case SocBenchmarkId::kD38Tvo:
      return BuildD38Tvo();
  }
  throw InvalidModelError("MakeBenchmark: unknown benchmark id");
}

std::vector<SocBenchmarkId> AllBenchmarkIds() {
  return {SocBenchmarkId::kD26Media, SocBenchmarkId::kD36_4,
          SocBenchmarkId::kD36_6,    SocBenchmarkId::kD36_8,
          SocBenchmarkId::kD35Bot,   SocBenchmarkId::kD38Tvo};
}

std::string BenchmarkName(SocBenchmarkId id) {
  return MakeBenchmark(id).name;
}

SocBenchmark MakeD36WithFanout(std::size_t fanout) {
  return BuildD36(fanout, "D36_" + std::to_string(fanout));
}

}  // namespace nocdr
