#include "soc/synthetic.h"

#include "util/error.h"
#include "util/rng.h"

namespace nocdr {

SocBenchmark MakeSyntheticSoc(const SyntheticSocSpec& spec) {
  Require(spec.cores >= spec.hubs + 2,
          "MakeSyntheticSoc: too few cores for the hub count");
  Require(spec.pipeline_length >= 1,
          "MakeSyntheticSoc: pipelines need at least one stage");
  Require(spec.min_bandwidth <= spec.max_bandwidth,
          "MakeSyntheticSoc: bandwidth range inverted");

  SocBenchmark b;
  b.name = "S" + std::to_string(spec.cores) + "_f" +
           std::to_string(spec.fanout);
  CommunicationGraph& g = b.traffic;
  Rng rng(spec.seed ^ (spec.cores * 2654435761ULL));
  auto bandwidth = [&]() {
    return spec.min_bandwidth +
           rng.NextDouble() * (spec.max_bandwidth - spec.min_bandwidth);
  };

  std::vector<CoreId> hubs;
  for (std::size_t h = 0; h < spec.hubs; ++h) {
    hubs.push_back(g.AddCore("hub" + std::to_string(h)));
  }
  std::vector<CoreId> procs;
  for (std::size_t c = spec.hubs; c < spec.cores; ++c) {
    procs.push_back(g.AddCore("p" + std::to_string(c - spec.hubs)));
  }

  // Pipelines: consecutive processing cores chain together; each chain
  // spills to a hub and the next chain reads from one.
  for (std::size_t start = 0; start < procs.size();
       start += spec.pipeline_length) {
    const std::size_t end =
        std::min(start + spec.pipeline_length, procs.size());
    for (std::size_t i = start; i + 1 < end; ++i) {
      g.AddFlow(procs[i], procs[i + 1], bandwidth());
    }
    if (!hubs.empty()) {
      const CoreId spill = hubs[(start / spec.pipeline_length) % hubs.size()];
      g.AddFlow(procs[end - 1], spill, bandwidth());
      g.AddFlow(spill, procs[start], bandwidth());
    }
  }

  // Strided peer-to-peer traffic, as in the D36 family.
  constexpr std::size_t kStrides[] = {1, 5, 7, 11, 13, 17, 19, 23,
                                      29, 31, 37, 41};
  const std::size_t n = procs.size();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < spec.fanout && j < std::size(kStrides);
         ++j) {
      const std::size_t dst = (i + kStrides[j]) % n;
      if (dst != i) {
        g.AddFlow(procs[i], procs[dst], bandwidth());
      }
    }
  }
  return b;
}

}  // namespace nocdr
