// Unit tests for the strongly-typed identifier wrappers.
#include "util/ids.h"

#include <gtest/gtest.h>

#include <sstream>
#include <unordered_set>

namespace nocdr {
namespace {

TEST(DenseIdTest, DefaultConstructedIsInvalid) {
  SwitchId id;
  EXPECT_FALSE(id.valid());
}

TEST(DenseIdTest, ExplicitValueIsValid) {
  SwitchId id(7u);
  EXPECT_TRUE(id.valid());
  EXPECT_EQ(id.value(), 7u);
}

TEST(DenseIdTest, SizeTConstructorNarrows) {
  std::size_t raw = 42;
  LinkId id(raw);
  EXPECT_EQ(id.value(), 42u);
}

TEST(DenseIdTest, EqualityAndOrdering) {
  ChannelId a(1u), b(2u), c(1u);
  EXPECT_EQ(a, c);
  EXPECT_NE(a, b);
  EXPECT_LT(a, b);
  EXPECT_GT(b, c);
}

TEST(DenseIdTest, DistinctTagsAreDistinctTypes) {
  static_assert(!std::is_convertible_v<SwitchId, CoreId>);
  static_assert(!std::is_convertible_v<LinkId, ChannelId>);
  SUCCEED();
}

TEST(DenseIdTest, HashSupportsUnorderedContainers) {
  std::unordered_set<FlowId> set;
  set.insert(FlowId(1u));
  set.insert(FlowId(2u));
  set.insert(FlowId(1u));
  EXPECT_EQ(set.size(), 2u);
  EXPECT_TRUE(set.contains(FlowId(2u)));
}

TEST(DenseIdTest, StreamOutputValid) {
  std::ostringstream os;
  os << CoreId(5u);
  EXPECT_EQ(os.str(), "5");
}

TEST(DenseIdTest, StreamOutputInvalid) {
  std::ostringstream os;
  os << CoreId();
  EXPECT_EQ(os.str(), "<invalid>");
}

TEST(DenseIdTest, InvalidSentinelDoesNotCompareEqualToRealIds) {
  EXPECT_NE(SwitchId(), SwitchId(0u));
}

}  // namespace
}  // namespace nocdr
