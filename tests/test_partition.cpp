// Unit tests for core-to-switch partitioning.
#include "synth/partition.h"

#include <gtest/gtest.h>

#include "soc/benchmarks.h"
#include "util/error.h"

namespace nocdr {
namespace {

CommunicationGraph TwoClusterTraffic() {
  // Cores 0-3 talk among themselves heavily; cores 4-7 likewise; one
  // thin flow crosses.
  CommunicationGraph g;
  for (int i = 0; i < 8; ++i) {
    g.AddCore();
  }
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      if (i != j) {
        g.AddFlow(CoreId(i), CoreId(j), 100.0);
        g.AddFlow(CoreId(i + 4), CoreId(j + 4), 100.0);
      }
    }
  }
  g.AddFlow(CoreId(0u), CoreId(4u), 1.0);
  return g;
}

TEST(PartitionTest, RecoversNaturalClusters) {
  const auto g = TwoClusterTraffic();
  const auto attachment = PartitionCores(g, 2);
  for (int i = 1; i < 4; ++i) {
    EXPECT_EQ(attachment[i], attachment[0]) << "core " << i;
    EXPECT_EQ(attachment[i + 4], attachment[4]) << "core " << i + 4;
  }
  EXPECT_NE(attachment[0], attachment[4]);
}

TEST(PartitionTest, EverySwitchGetsACore) {
  const auto b = MakeBenchmark(SocBenchmarkId::kD26Media);
  for (std::size_t switches : {2u, 5u, 9u, 13u, 26u}) {
    const auto attachment = PartitionCores(b.traffic, switches);
    std::vector<bool> used(switches, false);
    for (SwitchId s : attachment) {
      ASSERT_LT(s.value(), switches);
      used[s.value()] = true;
    }
    for (std::size_t s = 0; s < switches; ++s) {
      EXPECT_TRUE(used[s]) << switches << " switches, switch " << s;
    }
  }
}

TEST(PartitionTest, RespectsCapacity) {
  const auto g = TwoClusterTraffic();
  PartitionOptions options;
  options.max_cores_per_switch = 2;
  const auto attachment = PartitionCores(g, 4, options);
  std::vector<int> count(4, 0);
  for (SwitchId s : attachment) {
    ++count[s.value()];
  }
  for (int c : count) {
    EXPECT_LE(c, 2);
  }
}

TEST(PartitionTest, DefaultCapacityIsBalanced) {
  const auto b = MakeBenchmark(SocBenchmarkId::kD36_8);
  const auto attachment = PartitionCores(b.traffic, 6);
  std::vector<int> count(6, 0);
  for (SwitchId s : attachment) {
    ++count[s.value()];
  }
  for (int c : count) {
    EXPECT_LE(c, 6);  // ceil(36/6)
    EXPECT_GE(c, 1);
  }
}

TEST(PartitionTest, TooSmallCapacityThrows) {
  const auto g = TwoClusterTraffic();
  PartitionOptions options;
  options.max_cores_per_switch = 1;
  EXPECT_THROW(PartitionCores(g, 4, options), InvalidModelError);
}

TEST(PartitionTest, MoreSwitchesThanCoresThrows) {
  const auto g = TwoClusterTraffic();
  EXPECT_THROW(PartitionCores(g, 9), InvalidModelError);
  EXPECT_THROW(PartitionCores(g, 0), InvalidModelError);
}

TEST(PartitionTest, Deterministic) {
  const auto b = MakeBenchmark(SocBenchmarkId::kD35Bot);
  const auto a1 = PartitionCores(b.traffic, 7);
  const auto a2 = PartitionCores(b.traffic, 7);
  EXPECT_EQ(a1, a2);
}

TEST(PartitionTest, RefinementNeverIncreasesCut) {
  const auto b = MakeBenchmark(SocBenchmarkId::kD36_6);
  PartitionOptions no_refine;
  no_refine.refinement_passes = 0;
  PartitionOptions refine;
  refine.refinement_passes = 3;
  const double cut0 =
      CutBandwidth(b.traffic, PartitionCores(b.traffic, 8, no_refine));
  const double cut3 =
      CutBandwidth(b.traffic, PartitionCores(b.traffic, 8, refine));
  EXPECT_LE(cut3, cut0 + 1e-9);
}

TEST(PartitionTest, OneCorePerSwitchIsIdentityLike) {
  const auto b = MakeBenchmark(SocBenchmarkId::kD26Media);
  const auto attachment =
      PartitionCores(b.traffic, b.traffic.CoreCount());
  std::vector<bool> used(b.traffic.CoreCount(), false);
  for (SwitchId s : attachment) {
    EXPECT_FALSE(used[s.value()]) << "two cores on one switch";
    used[s.value()] = true;
  }
}

}  // namespace
}  // namespace nocdr
