// Randomized stress corpus: the full pipeline on many random shapes.
//
// Complements the targeted suites with breadth — a few hundred random
// designs of varied size, all pushed through removal + certificate
// checking, and a sample of them through ordering and simulation.
#include <gtest/gtest.h>

#include "deadlock/removal.h"
#include "deadlock/resource_ordering.h"
#include "deadlock/verify.h"
#include "sim/simulator.h"
#include "test_helpers.h"

namespace nocdr {
namespace {

struct StressShape {
  std::size_t switches;
  std::size_t cores;
  std::size_t flows;
};

class StressSweep
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, int>> {
 protected:
  NocDesign MakeDesign() const {
    const auto [seed, shape_index] = GetParam();
    static constexpr StressShape kShapes[] = {
        {4, 6, 10}, {6, 10, 25}, {10, 16, 40}, {14, 24, 70}, {20, 32, 110}};
    const StressShape& s = kShapes[shape_index];
    return testing::MakeRandomDesign(seed * 7919 + shape_index, s.switches,
                                     s.cores, s.flows);
  }
};

TEST_P(StressSweep, RemovalConvergesAndCertifies) {
  auto d = MakeDesign();
  const auto report = RemoveDeadlocks(d);
  const auto cert = CertifyDeadlockFreedom(d);
  ASSERT_TRUE(cert.deadlock_free);
  EXPECT_TRUE(CheckCertificate(d, cert));
  EXPECT_NO_THROW(d.Validate());
  EXPECT_EQ(d.topology.ExtraVcCount(), report.vcs_added);
}

TEST_P(StressSweep, OrderingNeverBeatenByMoreThanItsGuarantee) {
  // Ordering is always >= removal on this corpus (empirical headline) —
  // and both must end deadlock-free.
  auto rm = MakeDesign();
  auto ro = rm;
  const auto removal = RemoveDeadlocks(rm);
  const auto ordering = ApplyResourceOrdering(ro);
  EXPECT_LE(removal.vcs_added, ordering.vcs_added);
  EXPECT_TRUE(IsDeadlockFree(rm));
  EXPECT_TRUE(IsDeadlockFree(ro));
}

INSTANTIATE_TEST_SUITE_P(Corpus, StressSweep,
                         ::testing::Combine(::testing::Range<std::uint64_t>(
                                                1, 21),
                                            ::testing::Range(0, 5)));

class StressSimSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StressSimSweep, TreatedDesignsNeverFreeze) {
  auto d = testing::MakeRandomDesign(GetParam() * 31 + 5, 8, 14, 36);
  RemoveDeadlocks(d);
  SimConfig cfg;
  cfg.traffic.packets_per_flow = 2;
  cfg.traffic.packet_length = 7;
  cfg.buffer_depth = 2;
  cfg.max_cycles = 150000;
  cfg.stall_threshold = 1500;
  const auto r = SimulateWorkload(d, cfg);
  EXPECT_FALSE(r.deadlocked);
  EXPECT_TRUE(r.AllDelivered());
}

INSTANTIATE_TEST_SUITE_P(Seeds, StressSimSweep,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace nocdr
