// Unit tests for design metrics.
#include "noc/metrics.h"

#include <gtest/gtest.h>

#include "deadlock/removal.h"
#include "deadlock/resource_ordering.h"
#include "soc/benchmarks.h"
#include "synth/synthesizer.h"
#include "test_helpers.h"

namespace nocdr {
namespace {

TEST(MetricsTest, PaperExampleNumbers) {
  auto ex = testing::MakePaperExample();
  const auto m = ComputeMetrics(ex.design);
  EXPECT_EQ(m.switches, 4u);
  EXPECT_EQ(m.links, 4u);
  EXPECT_EQ(m.channels, 4u);
  EXPECT_EQ(m.extra_vcs, 0u);
  EXPECT_EQ(m.cores, 8u);
  EXPECT_EQ(m.flows, 4u);
  // Route lengths 3, 2, 2, 2.
  EXPECT_DOUBLE_EQ(m.avg_route_hops, 9.0 / 4.0);
  EXPECT_EQ(m.max_route_hops, 3u);
  EXPECT_EQ(m.local_flows, 0u);
  EXPECT_EQ(m.max_vcs_per_link, 1u);
  EXPECT_DOUBLE_EQ(m.avg_vcs_per_link, 1.0);
  // Every switch has 1 in + 1 out link.
  EXPECT_EQ(m.max_switch_degree, 2u);
  EXPECT_DOUBLE_EQ(m.avg_switch_degree, 2.0);
  // Loads: 300, 200, 200, 200 (see test_design).
  EXPECT_DOUBLE_EQ(m.max_link_load, 300.0);
  EXPECT_DOUBLE_EQ(m.avg_link_load, 225.0);
  EXPECT_GT(m.link_load_cv, 0.0);
}

TEST(MetricsTest, RemovalChangesOnlyChannelCounts) {
  auto ex = testing::MakePaperExample();
  const auto before = ComputeMetrics(ex.design);
  RemoveDeadlocks(ex.design);
  const auto after = ComputeMetrics(ex.design);
  EXPECT_EQ(after.extra_vcs, 1u);
  EXPECT_EQ(after.channels, before.channels + 1);
  EXPECT_EQ(after.max_vcs_per_link, 2u);
  // Structure and traffic untouched.
  EXPECT_EQ(after.links, before.links);
  EXPECT_DOUBLE_EQ(after.avg_route_hops, before.avg_route_hops);
  EXPECT_DOUBLE_EQ(after.max_link_load, before.max_link_load);
}

TEST(MetricsTest, OrderingInflatesVcsMoreThanRemoval) {
  const auto b = MakeBenchmark(SocBenchmarkId::kD36_8);
  auto rm = SynthesizeDesign(b.traffic, b.name, 14);
  auto ro = rm;
  RemoveDeadlocks(rm);
  ApplyResourceOrdering(ro);
  const auto m_rm = ComputeMetrics(rm);
  const auto m_ro = ComputeMetrics(ro);
  EXPECT_LE(m_rm.extra_vcs, m_ro.extra_vcs);
  EXPECT_LE(m_rm.avg_vcs_per_link, m_ro.avg_vcs_per_link);
}

TEST(MetricsTest, LocalFlowsCounted) {
  NocDesign d;
  const SwitchId a = d.topology.AddSwitch();
  const CoreId x = d.traffic.AddCore(), y = d.traffic.AddCore();
  d.attachment = {a, a};
  d.traffic.AddFlow(x, y, 10.0);
  d.routes.Resize(1);
  d.Validate();
  const auto m = ComputeMetrics(d);
  EXPECT_EQ(m.local_flows, 1u);
  EXPECT_DOUBLE_EQ(m.avg_route_hops, 0.0);
  EXPECT_EQ(m.links, 0u);
  EXPECT_DOUBLE_EQ(m.link_load_cv, 0.0);
}

TEST(MetricsTest, HistogramCoversAllFlows) {
  auto ex = testing::MakePaperExample();
  const auto histogram = RouteLengthHistogram(ex.design);
  ASSERT_EQ(histogram.size(), 4u);  // lengths up to 3
  EXPECT_EQ(histogram[0], 0u);
  EXPECT_EQ(histogram[2], 3u);
  EXPECT_EQ(histogram[3], 1u);
  std::size_t total = 0;
  for (std::size_t count : histogram) {
    total += count;
  }
  EXPECT_EQ(total, ex.design.traffic.FlowCount());
}

TEST(MetricsTest, BalancedLoadHasZeroCv) {
  auto d = testing::MakeRingDesign(4, 2);  // every link carries 2 flows
  const auto m = ComputeMetrics(d);
  EXPECT_NEAR(m.link_load_cv, 0.0, 1e-12);
}

TEST(MetricsTest, SynthesizedDesignsHaveReasonableShape) {
  for (auto id : AllBenchmarkIds()) {
    const auto b = MakeBenchmark(id);
    const auto design = SynthesizeDesign(b.traffic, b.name, 12);
    const auto m = ComputeMetrics(design);
    EXPECT_EQ(m.switches, 12u) << b.name;
    EXPECT_GE(m.avg_route_hops, 1.0) << b.name;
    EXPECT_LE(m.max_route_hops, 12u) << b.name;
    EXPECT_GE(m.avg_switch_degree, 2.0) << b.name;  // tree at minimum
  }
}

}  // namespace
}  // namespace nocdr
