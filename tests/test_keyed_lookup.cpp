// util/keyed_lookup: the digest-shard + full-key-text-compare protocol
// shared by the memory and disk cache tiers.
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <set>
#include <string>

#include "util/keyed_lookup.h"

namespace nocdr {
namespace {

using util::KeyedSlotMap;
using util::RoundUpPow2;
using util::ShardRouter;

TEST(RoundUpPow2Test, KnownValues) {
  EXPECT_EQ(RoundUpPow2(0), 1u);
  EXPECT_EQ(RoundUpPow2(1), 1u);
  EXPECT_EQ(RoundUpPow2(2), 2u);
  EXPECT_EQ(RoundUpPow2(3), 4u);
  EXPECT_EQ(RoundUpPow2(16), 16u);
  EXPECT_EQ(RoundUpPow2(17), 32u);
  EXPECT_EQ(RoundUpPow2(1000), 1024u);
}

TEST(ShardRouterTest, RoundsUpAndStaysInRange) {
  const ShardRouter router(6);
  EXPECT_EQ(router.Count(), 8u);
  for (std::uint64_t digest = 0; digest < 1000; ++digest) {
    EXPECT_LT(router.IndexFor(digest * 0x9E3779B97F4A7C15ull), 8u);
  }
  // Zero shards still routes (a one-shard cache is legal).
  EXPECT_EQ(ShardRouter(0).Count(), 1u);
  EXPECT_EQ(ShardRouter(0).IndexFor(12345), 0u);
}

TEST(ShardRouterTest, RoutingIsAStableFunctionOfDigestAlone) {
  const ShardRouter a(16);
  const ShardRouter b(16);
  std::set<std::size_t> used;
  for (std::uint64_t digest = 0; digest < 4096; ++digest) {
    EXPECT_EQ(a.IndexFor(digest), b.IndexFor(digest));
    used.insert(a.IndexFor(digest));
  }
  EXPECT_EQ(used.size(), 16u);  // low bits spread across every shard
}

/// key_of for slots that carry their key text inline (the memory-tier
/// shape).
const std::string* KeyOfPair(const std::pair<std::string, int>& slot) {
  return &slot.first;
}

TEST(KeyedSlotMapTest, FindRequiresFullKeyTextMatch) {
  KeyedSlotMap<std::pair<std::string, int>> map;
  EXPECT_EQ(map.Find(7, "alpha", KeyOfPair), nullptr);
  map.Put(7, {"alpha", 1});
  auto* slot = map.Find(7, "alpha", KeyOfPair);
  ASSERT_NE(slot, nullptr);
  EXPECT_EQ(slot->second, 1);
  // Same digest, different key text: a collision is a miss, never the
  // resident value.
  EXPECT_EQ(map.Find(7, "beta", KeyOfPair), nullptr);
}

TEST(KeyedSlotMapTest, UnobtainableKeyTextIsAMiss) {
  KeyedSlotMap<int> map;
  map.Put(3, 42);
  // The disk tier's key_of reads the record from disk and returns
  // nullptr when it turns out damaged; that must resolve as a miss.
  const auto* slot =
      map.Find(3, "anything", [](const int&) -> const std::string* {
        return nullptr;
      });
  EXPECT_EQ(slot, nullptr);
  EXPECT_EQ(map.Size(), 1u);  // Find never mutates
}

TEST(KeyedSlotMapTest, PutReplacesByDigestAndReturnsDisplaced) {
  KeyedSlotMap<std::pair<std::string, int>> map;
  EXPECT_FALSE(map.Put(9, {"k", 1}).has_value());
  const auto displaced = map.Put(9, {"k", 2});  // duplicate publish
  ASSERT_TRUE(displaced.has_value());
  EXPECT_EQ(displaced->second, 1);
  // Collision insert: the newcomer wins; the loser can only miss.
  const auto displaced2 = map.Put(9, {"other", 3});
  ASSERT_TRUE(displaced2.has_value());
  EXPECT_EQ(displaced2->second, 2);
  EXPECT_EQ(map.Find(9, "k", KeyOfPair), nullptr);
  ASSERT_NE(map.Find(9, "other", KeyOfPair), nullptr);
  EXPECT_EQ(map.Size(), 1u);
}

TEST(KeyedSlotMapTest, EraseForEachEraseIfAndClear) {
  KeyedSlotMap<int> map;
  for (int i = 0; i < 10; ++i) {
    map.Put(static_cast<std::uint64_t>(i), i * i);
  }
  EXPECT_TRUE(map.Erase(3));
  EXPECT_FALSE(map.Erase(3));
  EXPECT_EQ(map.Size(), 9u);

  int sum = 0;
  map.ForEach([&](std::uint64_t, const int& value) { sum += value; });
  EXPECT_EQ(sum, 0 + 1 + 4 + 16 + 25 + 36 + 49 + 64 + 81);

  const std::size_t erased =
      map.EraseIf([](std::uint64_t digest, const int&) {
        return digest % 2 == 0;  // segment retirement's shape
      });
  EXPECT_EQ(erased, 5u);
  EXPECT_EQ(map.Size(), 4u);

  map.Clear();
  EXPECT_EQ(map.Size(), 0u);
}

}  // namespace
}  // namespace nocdr
