// Unit tests for the NocDesign bundle.
#include "noc/design.h"

#include <gtest/gtest.h>

#include "test_helpers.h"
#include "util/error.h"

namespace nocdr {
namespace {

TEST(DesignTest, PaperExampleValidates) {
  auto ex = testing::MakePaperExample();
  EXPECT_NO_THROW(ex.design.Validate());
  EXPECT_EQ(ex.design.topology.SwitchCount(), 4u);
  EXPECT_EQ(ex.design.topology.LinkCount(), 4u);
  EXPECT_EQ(ex.design.traffic.FlowCount(), 4u);
}

TEST(DesignTest, SwitchOf) {
  auto ex = testing::MakePaperExample();
  EXPECT_EQ(ex.design.SwitchOf(CoreId(0u)).value(), 0u);  // src1 at SW1
}

TEST(DesignTest, MissingAttachmentFails) {
  auto ex = testing::MakePaperExample();
  ex.design.attachment.pop_back();
  EXPECT_THROW(ex.design.Validate(), InvalidModelError);
}

TEST(DesignTest, BadAttachmentFails) {
  auto ex = testing::MakePaperExample();
  ex.design.attachment[0] = SwitchId(77u);
  EXPECT_THROW(ex.design.Validate(), InvalidModelError);
}

TEST(DesignTest, MissingRouteSlotFails) {
  auto ex = testing::MakePaperExample();
  ex.design.routes.Resize(2);
  EXPECT_THROW(ex.design.Validate(), InvalidModelError);
}

TEST(DesignTest, CorruptRouteFails) {
  auto ex = testing::MakePaperExample();
  ex.design.routes.MutableRouteOf(ex.f1).pop_back();  // no longer ends at SW4
  EXPECT_THROW(ex.design.Validate(), InvalidModelError);
}

TEST(DesignTest, LinkLoadsAccumulatePerTraversal) {
  auto ex = testing::MakePaperExample();
  const auto loads = ex.design.LinkLoads();
  // L1 is used by F1, F3 and F4 at 100 MB/s each.
  EXPECT_DOUBLE_EQ(loads[ex.l1.value()], 300.0);
  // L2 by F1 and F4.
  EXPECT_DOUBLE_EQ(loads[ex.l2.value()], 200.0);
  // L3 by F1 and F2.
  EXPECT_DOUBLE_EQ(loads[ex.l3.value()], 200.0);
  // L4 by F2 and F3.
  EXPECT_DOUBLE_EQ(loads[ex.l4.value()], 200.0);
}

TEST(DesignTest, FlowsOnLink) {
  auto ex = testing::MakePaperExample();
  const auto on_l1 = ex.design.FlowsOnLink(ex.l1);
  EXPECT_EQ(on_l1, (std::vector<FlowId>{ex.f1, ex.f3, ex.f4}));
  const auto on_l2 = ex.design.FlowsOnLink(ex.l2);
  EXPECT_EQ(on_l2, (std::vector<FlowId>{ex.f1, ex.f4}));
}

TEST(DesignTest, RingHelperValidates) {
  auto d = testing::MakeRingDesign(6, 3);
  EXPECT_EQ(d.topology.SwitchCount(), 6u);
  EXPECT_EQ(d.traffic.FlowCount(), 6u);
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(d.routes.RouteOf(FlowId(i)).size(), 3u);
  }
}

TEST(DesignTest, RandomHelperValidatesAcrossSeeds) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    EXPECT_NO_THROW(testing::MakeRandomDesign(seed)) << "seed " << seed;
  }
}

}  // namespace
}  // namespace nocdr
