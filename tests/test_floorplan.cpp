// Unit tests for switch placement and wire lengths.
#include "synth/floorplan.h"

#include <gtest/gtest.h>

#include <set>

#include "power/model.h"
#include "soc/benchmarks.h"
#include "synth/synthesizer.h"
#include "test_helpers.h"
#include "util/error.h"

namespace nocdr {
namespace {

TEST(FloorplanTest, GridFitsAllSwitches) {
  const auto b = MakeBenchmark(SocBenchmarkId::kD26Media);
  for (std::size_t switches : {2u, 5u, 9u, 14u, 20u}) {
    const auto design = SynthesizeDesign(b.traffic, b.name, switches);
    const auto plan = Floorplan::Place(design);
    EXPECT_GE(plan.GridSide() * plan.GridSide(), switches);
    // One switch per tile.
    std::set<std::pair<std::size_t, std::size_t>> used;
    for (std::size_t s = 0; s < switches; ++s) {
      EXPECT_TRUE(used.insert(plan.PositionOf(SwitchId(s))).second)
          << "two switches share a tile";
    }
  }
}

TEST(FloorplanTest, LinkLengthsAreManhattanTimesTile) {
  auto ex = testing::MakePaperExample();
  FloorplanOptions options;
  options.tile_um = 1000.0;  // 1 mm per tile hop
  const auto plan = Floorplan::Place(ex.design, options);
  for (std::size_t l = 0; l < ex.design.topology.LinkCount(); ++l) {
    const Link& link = ex.design.topology.LinkAt(LinkId(l));
    const auto [ax, ay] = plan.PositionOf(link.src);
    const auto [bx, by] = plan.PositionOf(link.dst);
    const double manhattan =
        static_cast<double>((ax > bx ? ax - bx : bx - ax) +
                            (ay > by ? ay - by : by - ay));
    EXPECT_DOUBLE_EQ(plan.LinkLengthMm(LinkId(l)), manhattan);
  }
}

TEST(FloorplanTest, HeavyPairsSitCloserThanRandomPairs) {
  // The placement objective: communication-weighted distance. Verify
  // that heavily-communicating switch pairs end up at most the average
  // pairwise distance apart.
  const auto b = MakeBenchmark(SocBenchmarkId::kD36_8);
  const auto design = SynthesizeDesign(b.traffic, b.name, 16);
  const auto plan = Floorplan::Place(design);
  auto distance = [&](SwitchId x, SwitchId y) {
    const auto [ax, ay] = plan.PositionOf(x);
    const auto [bx, by] = plan.PositionOf(y);
    return static_cast<double>((ax > bx ? ax - bx : bx - ax) +
                               (ay > by ? ay - by : by - ay));
  };
  // Weighted mean distance of linked pairs must not exceed the mean
  // distance over all pairs (links were placed for, random pairs not).
  double linked = 0.0;
  std::size_t linked_n = 0;
  for (std::size_t l = 0; l < design.topology.LinkCount(); ++l) {
    const Link& link = design.topology.LinkAt(LinkId(l));
    linked += distance(link.src, link.dst);
    ++linked_n;
  }
  double all = 0.0;
  std::size_t all_n = 0;
  const std::size_t n = design.topology.SwitchCount();
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t c = a + 1; c < n; ++c) {
      all += distance(SwitchId(a), SwitchId(c));
      ++all_n;
    }
  }
  EXPECT_LE(linked / static_cast<double>(linked_n),
            all / static_cast<double>(all_n));
}

TEST(FloorplanTest, Deterministic) {
  const auto b = MakeBenchmark(SocBenchmarkId::kD35Bot);
  const auto design = SynthesizeDesign(b.traffic, b.name, 11);
  const auto p1 = Floorplan::Place(design);
  const auto p2 = Floorplan::Place(design);
  for (std::size_t s = 0; s < 11; ++s) {
    EXPECT_EQ(p1.PositionOf(SwitchId(s)), p2.PositionOf(SwitchId(s)));
  }
}

TEST(FloorplanTest, TotalWireSumsLinkLengths) {
  auto ex = testing::MakePaperExample();
  const auto plan = Floorplan::Place(ex.design);
  double sum = 0.0;
  for (std::size_t l = 0; l < ex.design.topology.LinkCount(); ++l) {
    sum += plan.LinkLengthMm(LinkId(l));
  }
  EXPECT_DOUBLE_EQ(plan.TotalWireMm(), sum);
  EXPECT_GT(plan.TotalWireMm(), 0.0);
}

TEST(FloorplanTest, FeedsPowerModel) {
  auto ex = testing::MakePaperExample();
  const auto plan = Floorplan::Place(ex.design);
  std::vector<double> lengths;
  for (std::size_t l = 0; l < ex.design.topology.LinkCount(); ++l) {
    lengths.push_back(plan.LinkLengthMm(LinkId(l)));
  }
  const PowerModelParams params;
  const auto flat = EstimatePowerArea(ex.design, params);
  const auto placed = EstimatePowerArea(ex.design, lengths, params);
  // Same static parts, different (placement-dependent) dynamic power.
  EXPECT_DOUBLE_EQ(flat.switch_area_um2, placed.switch_area_um2);
  EXPECT_DOUBLE_EQ(flat.leakage_mw, placed.leakage_mw);
  EXPECT_GT(placed.dynamic_mw, 0.0);
  // The wire component must equal the per-route sum of placed lengths:
  // recompute it independently from the two estimates. flat used 2 mm
  // per hop; the difference is exactly the length delta times the wire
  // energy coefficient and the traversing bandwidth.
  double delta_pj_per_s = 0.0;
  for (std::size_t fi = 0; fi < ex.design.traffic.FlowCount(); ++fi) {
    const Flow& flow = ex.design.traffic.FlowAt(FlowId(fi));
    for (ChannelId c : ex.design.routes.RouteOf(FlowId(fi))) {
      const LinkId link = ex.design.topology.ChannelAt(c).link;
      delta_pj_per_s += flow.bandwidth_mbps * 8.0e6 *
                        params.energy_link_pj_per_bit_mm *
                        (lengths[link.value()] -
                         params.default_link_length_mm);
    }
  }
  EXPECT_NEAR(placed.dynamic_mw - flat.dynamic_mw, delta_pj_per_s * 1.0e-9,
              1e-9);
}

TEST(FloorplanTest, MissingLengthsThrow) {
  auto ex = testing::MakePaperExample();
  const std::vector<double> too_few(2, 1.0);
  EXPECT_THROW(EstimatePowerArea(ex.design, too_few, PowerModelParams{}),
               InvalidModelError);
}

TEST(FloorplanTest, SingleSwitchPlacesAtOrigin) {
  NocDesign d;
  d.topology.AddSwitch();
  const auto plan = Floorplan::Place(d);
  EXPECT_EQ(plan.GridSide(), 1u);
  EXPECT_EQ(plan.PositionOf(SwitchId(0u)),
            (std::pair<std::size_t, std::size_t>{0, 0}));
  EXPECT_DOUBLE_EQ(plan.TotalWireMm(), 0.0);
}

}  // namespace
}  // namespace nocdr
