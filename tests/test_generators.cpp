// Standard-topology generators: structural invariants per family,
// routing-table completeness/minimality, deadlock character of the
// classical policies, and byte-identical determinism.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <sstream>

#include "deadlock/removal.h"
#include "gen/generators.h"
#include "noc/io.h"
#include "util/error.h"

namespace nocdr {
namespace {

using gen::GeneratorSpec;
using gen::TopologyFamily;
using gen::TrafficPattern;

/// Canonical byte representation for determinism checks.
std::string DesignText(const NocDesign& design) {
  std::ostringstream os;
  WriteDesign(os, design);
  return os.str();
}

std::size_t ManhattanMesh(std::size_t a, std::size_t b, std::size_t w) {
  const auto dist = [](std::size_t p, std::size_t q) {
    return p > q ? p - q : q - p;
  };
  return dist(a % w, b % w) + dist(a / w, b / w);
}

std::size_t WrappedDist(std::size_t p, std::size_t q, std::size_t extent) {
  const std::size_t forward = (q + extent - p) % extent;
  return std::min(forward, extent - forward);
}

TEST(GeneratorNamesTest, FamilyAndPatternRoundTrip) {
  for (const TopologyFamily family : gen::AllFamilies()) {
    const auto parsed = gen::ParseFamily(gen::FamilyName(family));
    ASSERT_TRUE(parsed.has_value()) << gen::FamilyName(family);
    EXPECT_EQ(*parsed, family);
  }
  for (const TrafficPattern pattern : gen::AllPatterns()) {
    const auto parsed = gen::ParsePattern(gen::PatternName(pattern));
    ASSERT_TRUE(parsed.has_value()) << gen::PatternName(pattern);
    EXPECT_EQ(*parsed, pattern);
  }
  EXPECT_FALSE(gen::ParseFamily("hypercube").has_value());
  EXPECT_FALSE(gen::ParsePattern("tornado").has_value());
}

TEST(MeshGeneratorTest, StructureAndBidirectionality) {
  GeneratorSpec spec;
  spec.family = TopologyFamily::kMesh2D;
  spec.width = 5;
  spec.height = 4;
  const auto topo = gen::BuildFamilyTopology(spec);
  EXPECT_EQ(topo.topology.SwitchCount(), 20u);
  // 2 directed links per grid edge: W*(H-1) vertical + H*(W-1) horizontal.
  EXPECT_EQ(topo.topology.LinkCount(), 2 * (5 * 3 + 4 * 4));
  EXPECT_EQ(topo.core_switches.size(), 20u);
  for (std::size_t l = 0; l < topo.topology.LinkCount(); ++l) {
    const Link& link = topo.topology.LinkAt(LinkId(l));
    EXPECT_TRUE(topo.topology.FindLink(link.dst, link.src).has_value())
        << "missing reverse of link " << l;
  }
}

TEST(MeshGeneratorTest, XyRoutesAreMinimalAndDorShaped) {
  GeneratorSpec spec;
  spec.family = TopologyFamily::kMesh2D;
  spec.width = 6;
  spec.height = 5;
  spec.pattern = TrafficPattern::kUniform;
  spec.uniform_fanout = 4;
  const NocDesign design = gen::GenerateStandardDesign(spec);
  for (std::size_t f = 0; f < design.traffic.FlowCount(); ++f) {
    const Flow& flow = design.traffic.FlowAt(FlowId(f));
    const std::size_t src = design.attachment[flow.src.value()].value();
    const std::size_t dst = design.attachment[flow.dst.value()].value();
    const Route& route = design.routes.RouteOf(FlowId(f));
    EXPECT_EQ(route.size(), ManhattanMesh(src, dst, spec.width))
        << "flow " << f << " is not minimal";
    // Dimension order: once a route turns into Y it never moves in X.
    bool seen_y = false;
    for (const ChannelId c : route) {
      const Link& link =
          design.topology.LinkAt(design.topology.ChannelAt(c).link);
      const bool is_y = link.src.value() % spec.width ==
                        link.dst.value() % spec.width;
      EXPECT_TRUE(is_y || !seen_y) << "flow " << f << " turned back into X";
      seen_y = seen_y || is_y;
    }
  }
}

TEST(MeshGeneratorTest, XyIsDeadlockFreeOnEveryPatternAndSeed) {
  for (const TrafficPattern pattern : gen::AllPatterns()) {
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      GeneratorSpec spec;
      spec.family = TopologyFamily::kMesh2D;
      spec.width = 5;
      spec.height = 5;
      spec.pattern = pattern;
      spec.seed = seed;
      const NocDesign design = gen::GenerateStandardDesign(spec);
      EXPECT_TRUE(IsDeadlockFree(design))
          << gen::PatternName(pattern) << " seed " << seed;
    }
  }
}

TEST(TorusGeneratorTest, WraparoundAndStructure) {
  GeneratorSpec spec;
  spec.family = TopologyFamily::kTorus2D;
  spec.width = 4;
  spec.height = 3;
  const auto topo = gen::BuildFamilyTopology(spec);
  EXPECT_EQ(topo.topology.SwitchCount(), 12u);
  // Every switch has degree 4 in each direction: 4*W*H directed links.
  EXPECT_EQ(topo.topology.LinkCount(), 4u * 12u);
  // Wraparound links exist in both dimensions.
  EXPECT_TRUE(
      topo.topology.FindLink(SwitchId(3), SwitchId(0)).has_value());
  EXPECT_TRUE(
      topo.topology.FindLink(SwitchId(0), SwitchId(3)).has_value());
  EXPECT_TRUE(
      topo.topology.FindLink(SwitchId(2 * 4), SwitchId(2 * 4 + 3))
          .has_value());
  EXPECT_TRUE(
      topo.topology.FindLink(SwitchId(0), SwitchId(2 * 4)).has_value());
}

TEST(TorusGeneratorTest, DorRoutesAreWrappedMinimal) {
  GeneratorSpec spec;
  spec.family = TopologyFamily::kTorus2D;
  spec.width = 5;
  spec.height = 4;
  spec.pattern = TrafficPattern::kUniform;
  const NocDesign design = gen::GenerateStandardDesign(spec);
  for (std::size_t f = 0; f < design.traffic.FlowCount(); ++f) {
    const Flow& flow = design.traffic.FlowAt(FlowId(f));
    const std::size_t src = design.attachment[flow.src.value()].value();
    const std::size_t dst = design.attachment[flow.dst.value()].value();
    EXPECT_EQ(design.routes.RouteOf(FlowId(f)).size(),
              WrappedDist(src % 5, dst % 5, 5) +
                  WrappedDist(src / 5, dst / 5, 4))
        << "flow " << f;
  }
}

TEST(TorusGeneratorTest, WrapDorIsCyclicUnderUniformTraffic) {
  // The whole point of opening the torus family: wraparound DOR has
  // cyclic channel dependencies, so the removal arms get real work.
  GeneratorSpec spec;
  spec.family = TopologyFamily::kTorus2D;
  spec.width = 5;
  spec.height = 5;
  spec.pattern = TrafficPattern::kUniform;
  spec.uniform_fanout = 4;
  const NocDesign design = gen::GenerateStandardDesign(spec);
  EXPECT_FALSE(IsDeadlockFree(design));

  NocDesign treated = design;
  const RemovalReport report = RemoveDeadlocks(treated);
  EXPECT_GT(report.vcs_added, 0u);
  EXPECT_TRUE(IsDeadlockFree(treated));
}

TEST(RingGeneratorTest, StructureAndShortestWayAround) {
  GeneratorSpec spec;
  spec.family = TopologyFamily::kRing;
  spec.ring_nodes = 9;
  spec.pattern = TrafficPattern::kUniform;
  const NocDesign design = gen::GenerateStandardDesign(spec);
  EXPECT_EQ(design.topology.SwitchCount(), 9u);
  EXPECT_EQ(design.topology.LinkCount(), 18u);
  for (std::size_t f = 0; f < design.traffic.FlowCount(); ++f) {
    const Flow& flow = design.traffic.FlowAt(FlowId(f));
    const std::size_t src = design.attachment[flow.src.value()].value();
    const std::size_t dst = design.attachment[flow.dst.value()].value();
    EXPECT_EQ(design.routes.RouteOf(FlowId(f)).size(),
              WrappedDist(src, dst, 9))
        << "flow " << f;
  }
}

TEST(RingGeneratorTest, RingIsCyclicUnderUniformTraffic) {
  GeneratorSpec spec;
  spec.family = TopologyFamily::kRing;
  spec.ring_nodes = 12;
  spec.pattern = TrafficPattern::kUniform;
  spec.uniform_fanout = 3;
  const NocDesign design = gen::GenerateStandardDesign(spec);
  EXPECT_FALSE(IsDeadlockFree(design));
}

TEST(FatTreeGeneratorTest, StructureAndLeafAttachment) {
  GeneratorSpec spec;
  spec.family = TopologyFamily::kFatTree;
  spec.tree_arity = 3;
  spec.tree_levels = 3;
  spec.tree_uplinks = 2;
  const auto topo = gen::BuildFamilyTopology(spec);
  EXPECT_EQ(topo.topology.SwitchCount(), 1u + 3u + 9u);
  // Every non-root switch has `uplinks` parallel links each way.
  EXPECT_EQ(topo.topology.LinkCount(), (3u + 9u) * 2u * 2u);
  // Cores attach to leaves only.
  ASSERT_EQ(topo.core_switches.size(), 9u);
  for (const SwitchId s : topo.core_switches) {
    EXPECT_GE(s.value(), 4u);
  }
}

TEST(FatTreeGeneratorTest, UpDownRoutesAreDeadlockFree) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    GeneratorSpec spec;
    spec.family = TopologyFamily::kFatTree;
    spec.tree_arity = 2;
    spec.tree_levels = 4;
    spec.pattern = TrafficPattern::kUniform;
    spec.seed = seed;
    const NocDesign design = gen::GenerateStandardDesign(spec);
    EXPECT_TRUE(IsDeadlockFree(design)) << "seed " << seed;
    // Up-then-down: no route re-enters an up link after going down.
    // (level(src) > level(dst) means the hop goes up.)
  }
}

TEST(GeneratorPatternsTest, TransposeOnSquareGridMatchesMatrixTranspose) {
  GeneratorSpec spec;
  spec.family = TopologyFamily::kMesh2D;
  spec.width = 4;
  spec.height = 4;
  spec.pattern = TrafficPattern::kTranspose;
  const NocDesign design = gen::GenerateStandardDesign(spec);
  // 16 cores, 4 on the diagonal: 12 flows, each (x,y) -> (y,x).
  EXPECT_EQ(design.traffic.FlowCount(), 12u);
  for (std::size_t f = 0; f < design.traffic.FlowCount(); ++f) {
    const Flow& flow = design.traffic.FlowAt(FlowId(f));
    const std::size_t s = flow.src.value();
    const std::size_t d = flow.dst.value();
    EXPECT_EQ(d, (s % 4) * 4 + s / 4);
  }
}

TEST(GeneratorPatternsTest, HotspotConcentratesTraffic) {
  GeneratorSpec spec;
  spec.family = TopologyFamily::kMesh2D;
  spec.width = 5;
  spec.height = 5;
  spec.pattern = TrafficPattern::kHotspot;
  spec.hotspot_fraction = 1.0;
  const NocDesign design = gen::GenerateStandardDesign(spec);
  // With fraction 1 every non-hotspot core sends exactly one flow to
  // the hotspot.
  ASSERT_EQ(design.traffic.FlowCount(), 24u);
  const CoreId hotspot = design.traffic.FlowAt(FlowId(0)).dst;
  for (std::size_t f = 0; f < design.traffic.FlowCount(); ++f) {
    EXPECT_EQ(design.traffic.FlowAt(FlowId(f)).dst, hotspot);
  }
}

TEST(GeneratorPatternsTest, NeighborFlowsAreOneHop) {
  GeneratorSpec spec;
  spec.family = TopologyFamily::kTorus2D;
  spec.width = 4;
  spec.height = 4;
  spec.pattern = TrafficPattern::kNeighbor;
  const NocDesign design = gen::GenerateStandardDesign(spec);
  // +x and +y neighbor per core on a torus (wrap included).
  EXPECT_EQ(design.traffic.FlowCount(), 32u);
  for (std::size_t f = 0; f < design.traffic.FlowCount(); ++f) {
    EXPECT_EQ(design.routes.RouteOf(FlowId(f)).size(), 1u) << "flow " << f;
  }
}

TEST(GeneratorDeterminismTest, SameSpecSameBytes) {
  for (const TopologyFamily family : gen::AllFamilies()) {
    GeneratorSpec spec;
    spec.family = family;
    spec.pattern = TrafficPattern::kUniform;
    spec.cores_per_switch = 2;
    spec.seed = 77;
    const NocDesign a = gen::GenerateStandardDesign(spec);
    const NocDesign b = gen::GenerateStandardDesign(spec);
    EXPECT_EQ(DesignText(a), DesignText(b)) << gen::FamilyName(family);
    spec.seed = 78;
    const NocDesign c = gen::GenerateStandardDesign(spec);
    EXPECT_NE(DesignText(a), DesignText(c)) << gen::FamilyName(family);
  }
}

TEST(GeneratorSpecTest, OutOfRangeParametersThrow) {
  GeneratorSpec spec;
  spec.family = TopologyFamily::kTorus2D;
  spec.width = 2;
  spec.height = 4;
  EXPECT_THROW(gen::BuildFamilyTopology(spec), InvalidModelError);
  spec.family = TopologyFamily::kMesh2D;
  spec.width = 1;
  EXPECT_THROW(gen::BuildFamilyTopology(spec), InvalidModelError);
  spec = GeneratorSpec{};
  spec.family = TopologyFamily::kRing;
  spec.ring_nodes = 2;
  EXPECT_THROW(gen::BuildFamilyTopology(spec), InvalidModelError);
  spec = GeneratorSpec{};
  spec.family = TopologyFamily::kFatTree;
  spec.tree_arity = 1;
  EXPECT_THROW(gen::BuildFamilyTopology(spec), InvalidModelError);
  spec = GeneratorSpec{};
  spec.min_bandwidth = 0.0;
  EXPECT_THROW(gen::GenerateStandardDesign(spec), InvalidModelError);
}

TEST(NextHopTableTest, ValidatorRejectsHolesAndLoops) {
  GeneratorSpec spec;
  spec.family = TopologyFamily::kRing;
  spec.ring_nodes = 4;
  auto topo = gen::BuildFamilyTopology(spec);
  // A hole on a walk another pair relies on: clear (1 -> 2)'s entry
  // while (0 -> 2) still routes through switch 1.
  NextHopTable holed = topo.table;
  holed[1][2] = LinkId();
  EXPECT_THROW(ValidateNextHopTable(topo.topology, holed),
               InvalidModelError);
  // A loop: 0 -> 2 forwards to 3, 3 -> 2 forwards back to 0.
  NextHopTable looped = topo.table;
  looped[0][2] = *topo.topology.FindLink(SwitchId(0), SwitchId(3));
  looped[3][2] = *topo.topology.FindLink(SwitchId(3), SwitchId(0));
  EXPECT_THROW(ValidateNextHopTable(topo.topology, looped),
               InvalidModelError);
}

}  // namespace
}  // namespace nocdr
