// Validation campaign engine: the four-way contract, thread-count
// determinism, the shrinker and replayable repro dumps.
#include <gtest/gtest.h>

#include <algorithm>

#include "cdg/cdg.h"
#include "deadlock/removal.h"
#include "test_helpers.h"
#include "util/error.h"
#include "valid/campaign.h"
#include "valid/repro.h"
#include "valid/shrink.h"

namespace nocdr {
namespace {

valid::CampaignConfig SmallCampaign() {
  valid::CampaignConfig cfg;
  cfg.trials = 24;
  cfg.base_seed = 5;
  return cfg;
}

TEST(ArmTest, NamesRoundTrip) {
  for (const valid::TrialArm arm : valid::AllArms()) {
    const auto parsed = valid::ParseArm(valid::ArmName(arm));
    ASSERT_TRUE(parsed.has_value()) << valid::ArmName(arm);
    EXPECT_EQ(*parsed, arm);
  }
  EXPECT_FALSE(valid::ParseArm("no_such_arm").has_value());
}

TEST(SourceTest, NamesRoundTrip) {
  for (const valid::DesignSource source : valid::AllSources()) {
    const auto parsed = valid::ParseSource(valid::SourceName(source));
    ASSERT_TRUE(parsed.has_value()) << valid::SourceName(source);
    EXPECT_EQ(*parsed, source);
  }
  EXPECT_FALSE(valid::ParseSource("no_such_source").has_value());
}

TEST(GenerateTrialDesignTest, DeterministicAndValid) {
  const valid::DesignEnvelope envelope;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const NocDesign a = valid::GenerateTrialDesign(seed, envelope);
    const NocDesign b = valid::GenerateTrialDesign(seed, envelope);
    a.Validate();
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.topology.ChannelCount(), b.topology.ChannelCount());
    EXPECT_EQ(a.traffic.FlowCount(), b.traffic.FlowCount());
    EXPECT_GE(a.traffic.CoreCount(), envelope.min_cores);
    EXPECT_LE(a.traffic.CoreCount(), envelope.max_cores);
  }
}

TEST(GenerateTrialDesignTest, EverySourceIsDeterministicAndValid) {
  const valid::DesignEnvelope envelope;
  for (const valid::DesignSource source : valid::AllSources()) {
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
      const NocDesign a = valid::GenerateTrialDesign(source, seed, envelope);
      const NocDesign b = valid::GenerateTrialDesign(source, seed, envelope);
      a.Validate();
      EXPECT_EQ(a.name, b.name) << valid::SourceName(source);
      EXPECT_EQ(a.topology.ChannelCount(), b.topology.ChannelCount());
      EXPECT_EQ(a.traffic.FlowCount(), b.traffic.FlowCount());
    }
  }
}

TEST(CampaignTest, SmallCampaignHasNoMismatches) {
  const auto result = valid::RunCampaign(SmallCampaign());
  ASSERT_EQ(result.rows.size(), 24u);
  EXPECT_EQ(result.mismatches, 0u);
  EXPECT_EQ(result.positives + result.detonations + result.infeasibles,
            24u);
  EXPECT_TRUE(result.repros.empty());
  for (const auto& row : result.rows) {
    EXPECT_TRUE(row.mismatch.empty()) << row.mismatch;
    // Only up*/down* may sit a design out, and only for lack of
    // bidirectional connectivity.
    if (row.verdict == valid::TrialVerdict::kArmInfeasible) {
      EXPECT_EQ(row.arm, valid::TrialArm::kUpDown);
    }
  }
}

TEST(CampaignTest, EveryGeneratedSourceRunsCleanly) {
  for (const valid::DesignSource source :
       {valid::DesignSource::kMesh, valid::DesignSource::kTorus,
        valid::DesignSource::kRing, valid::DesignSource::kFatTree}) {
    valid::CampaignConfig cfg = SmallCampaign();
    cfg.trials = 10;
    cfg.sources = {source};
    const auto result = valid::RunCampaign(cfg);
    EXPECT_EQ(result.mismatches, 0u) << valid::SourceName(source);
    for (const auto& row : result.rows) {
      EXPECT_EQ(row.source, source);
      EXPECT_TRUE(row.mismatch.empty())
          << valid::SourceName(source) << ": " << row.mismatch;
    }
  }
}

TEST(CampaignTest, DigestIdenticalAcrossThreadCounts) {
  valid::CampaignConfig cfg = SmallCampaign();
  cfg.threads = 1;
  const auto serial = valid::RunCampaign(cfg);
  cfg.threads = 2;
  const auto two = valid::RunCampaign(cfg);
  cfg.threads = 8;
  const auto eight = valid::RunCampaign(cfg);
  EXPECT_EQ(serial.digest, two.digest);
  EXPECT_EQ(serial.digest, eight.digest);
  EXPECT_EQ(serial.digest, valid::Digest(serial.rows));
}

TEST(CampaignTest, EngineDifferentialCampaignRunsClean) {
  // The three-way engine matrix cross-checks every trial field-for-field
  // across worklist / fullscan / event; with bit-identical engines the
  // rows must match the plain primary-engine campaign exactly (same
  // digest), with zero divergences, at any thread count.
  valid::CampaignConfig cfg = SmallCampaign();
  cfg.engines = {SimEngine::kWorklist, SimEngine::kFullScan,
                 SimEngine::kEvent};
  const auto differential = valid::RunCampaign(cfg);
  EXPECT_EQ(differential.mismatches, 0u);
  for (const auto& row : differential.rows) {
    EXPECT_NE(row.mismatch_kind, valid::MismatchKind::kEngineDivergence)
        << row.mismatch;
  }

  valid::CampaignConfig plain = SmallCampaign();
  plain.workload.engine = SimEngine::kWorklist;
  const auto single = valid::RunCampaign(plain);
  EXPECT_EQ(differential.digest, single.digest);

  cfg.threads = 1;
  const auto serial = valid::RunCampaign(cfg);
  EXPECT_EQ(serial.digest, differential.digest);
}

TEST(CampaignTest, RunTrialEnginesMatchesSingleEngineTrial) {
  const NocDesign ring = testing::MakeRingDesign(6, 2);
  valid::WorkloadConfig workload;
  workload.engine = SimEngine::kEvent;  // overridden by engines[0]
  const valid::TrialOutcome differential = valid::RunTrialEngines(
      ring, valid::TrialArm::kUntreated, workload,
      {SimEngine::kFullScan, SimEngine::kWorklist, SimEngine::kEvent}, 9,
      /*shrink=*/false);
  valid::WorkloadConfig primary = workload;
  primary.engine = SimEngine::kFullScan;
  const valid::TrialRow single =
      valid::ClassifyTrial(ring, valid::TrialArm::kUntreated, primary, 9);
  EXPECT_EQ(differential.row.verdict, single.verdict);
  EXPECT_EQ(differential.row.cycles, single.cycles);
  EXPECT_EQ(differential.row.mismatch_kind, valid::MismatchKind::kNone);
  EXPECT_TRUE(differential.row.mismatch.empty())
      << differential.row.mismatch;
}

TEST(CampaignTest, ArmsShareTheSameDesign) {
  const auto result = valid::RunCampaign(SmallCampaign());
  // Trials come in groups (one per arm) over one design.
  const std::size_t arms = valid::AllArms().size();
  for (std::size_t g = 0; g + arms - 1 < result.rows.size(); g += arms) {
    for (std::size_t k = 1; k < arms; ++k) {
      EXPECT_EQ(result.rows[g].design_seed, result.rows[g + k].design_seed);
      EXPECT_EQ(result.rows[g].design, result.rows[g + k].design);
      EXPECT_EQ(result.rows[g].source, result.rows[g + k].source);
      EXPECT_EQ(result.rows[g].channels_before,
                result.rows[g + k].channels_before);
    }
  }
}

TEST(CampaignTest, UpDownInfeasibleOnUnidirectionalRing) {
  // The test-helper ring has no reverse links, so up*/down* cannot serve
  // it; that is an kArmInfeasible verdict, not a contract mismatch.
  const NocDesign ring = testing::MakeRingDesign(6, 2);
  const valid::WorkloadConfig workload;
  const valid::TrialRow row =
      valid::ClassifyTrial(ring, valid::TrialArm::kUpDown, workload, 9);
  EXPECT_EQ(row.verdict, valid::TrialVerdict::kArmInfeasible);
  EXPECT_TRUE(row.mismatch.empty());
  EXPECT_EQ(row.channels_after, row.channels_before);
}

TEST(CampaignTest, UntreatedRingDetonatesOnCdgCycle) {
  const NocDesign ring = testing::MakeRingDesign(6, 2);
  const valid::WorkloadConfig workload;
  const valid::TrialRow row =
      valid::ClassifyTrial(ring, valid::TrialArm::kUntreated, workload, 9);
  EXPECT_EQ(row.verdict, valid::TrialVerdict::kNegativeDetonated);
  EXPECT_FALSE(row.certified_free);
  EXPECT_TRUE(row.sim_deadlocked);
}

TEST(CampaignTest, TreatedRingDeliversEverything) {
  const NocDesign ring = testing::MakeRingDesign(6, 2);
  const valid::WorkloadConfig workload;
  for (const valid::TrialArm arm :
       {valid::TrialArm::kRemovalIncremental,
        valid::TrialArm::kRemovalRebuild,
        valid::TrialArm::kResourceOrdering}) {
    const valid::TrialRow row =
        valid::ClassifyTrial(ring, arm, workload, 9);
    EXPECT_EQ(row.verdict, valid::TrialVerdict::kPositiveDelivered)
        << valid::ArmName(arm) << ": " << row.mismatch;
    EXPECT_TRUE(row.certified_free);
    EXPECT_TRUE(row.certificate_checked);
    EXPECT_TRUE(row.all_delivered);
  }
}

/// A workload too strangled to ever detonate: zero escalations, a
/// two-cycle budget and a watchdog that never fires. Combined with
/// MakeApproachRingDesign (whose circular wait needs more than two
/// cycles to form, unlike a plain ring's instant cycle-0 deadlock),
/// this guarantees a deterministic kNoDetonation mismatch — which is
/// how the shrinker and repro paths get exercised.
valid::WorkloadConfig UndetonatableWorkload() {
  valid::WorkloadConfig workload;
  workload.max_cycles = 2;
  workload.stall_threshold = std::uint64_t{1} << 40;
  workload.max_escalations = 0;
  return workload;
}

/// A unidirectional n-ring whose flows reach it through one private
/// access link each (routes [access_i, ring_i, ring_{i+1}]), plus
/// \p extra_flows access-only flows that carry no CDG-cycle edge. The
/// CDG contains the full ring cycle, but at cycle 0 every head sits in
/// its private access channel, so no circular wait exists yet.
NocDesign MakeApproachRingDesign(std::size_t n, std::size_t extra_flows) {
  NocDesign d;
  d.name = "approach_ring" + std::to_string(n);
  std::vector<SwitchId> ring_sw, access_sw;
  for (std::size_t i = 0; i < n; ++i) {
    ring_sw.push_back(d.topology.AddSwitch());
  }
  for (std::size_t i = 0; i < n; ++i) {
    access_sw.push_back(d.topology.AddSwitch());
  }
  std::vector<ChannelId> ring, access;
  for (std::size_t i = 0; i < n; ++i) {
    ring.push_back(*d.topology.FindChannel(
        d.topology.AddLink(ring_sw[i], ring_sw[(i + 1) % n]), 0));
  }
  for (std::size_t i = 0; i < n; ++i) {
    access.push_back(*d.topology.FindChannel(
        d.topology.AddLink(access_sw[i], ring_sw[i]), 0));
  }
  std::vector<Route> routes;
  for (std::size_t i = 0; i < n; ++i) {
    const CoreId src = d.traffic.AddCore(), dst = d.traffic.AddCore();
    d.attachment.push_back(access_sw[i]);
    d.attachment.push_back(ring_sw[(i + 2) % n]);
    d.traffic.AddFlow(src, dst, 50.0);
    routes.push_back({access[i], ring[i], ring[(i + 1) % n]});
  }
  for (std::size_t i = 0; i < extra_flows; ++i) {
    const CoreId src = d.traffic.AddCore(), dst = d.traffic.AddCore();
    d.attachment.push_back(access_sw[i % n]);
    d.attachment.push_back(ring_sw[i % n]);
    d.traffic.AddFlow(src, dst, 25.0);
    routes.push_back({access[i % n]});
  }
  d.routes.Resize(routes.size());
  for (std::size_t i = 0; i < routes.size(); ++i) {
    d.routes.SetRoute(FlowId(i), std::move(routes[i]));
  }
  d.Validate();
  return d;
}

TEST(ShrinkTest, KeepFlowsDropsFlowsAndPreservesValidity) {
  const NocDesign ring = testing::MakeRingDesign(6, 2);
  std::vector<bool> keep(ring.traffic.FlowCount(), true);
  keep[0] = false;
  keep[3] = false;
  const NocDesign kept = valid::KeepFlows(ring, keep);
  kept.Validate();
  EXPECT_EQ(kept.traffic.FlowCount(), ring.traffic.FlowCount() - 2);
  EXPECT_EQ(kept.topology.ChannelCount(), ring.topology.ChannelCount());
  // The second kept flow is the original flow 2.
  EXPECT_EQ(kept.routes.RouteOf(FlowId(1)), ring.routes.RouteOf(FlowId(2)));
}

TEST(ShrinkTest, PruneUnusedDropsUntouchedStructure) {
  // Keep only one 2-hop flow of a 6-ring: pruning must shrink the
  // topology to that flow's corridor.
  const NocDesign ring = testing::MakeRingDesign(6, 2);
  std::vector<bool> keep(ring.traffic.FlowCount(), false);
  keep[0] = true;
  const NocDesign kept = valid::KeepFlows(ring, keep);
  const NocDesign pruned = valid::PruneUnused(kept);
  pruned.Validate();
  EXPECT_EQ(pruned.traffic.FlowCount(), 1u);
  EXPECT_EQ(pruned.topology.LinkCount(), 2u);
  EXPECT_EQ(pruned.topology.SwitchCount(), 3u);
  EXPECT_EQ(pruned.traffic.CoreCount(), 2u);
  EXPECT_EQ(pruned.routes.RouteOf(FlowId(0)).size(), 2u);
}

TEST(ShrinkTest, MismatchShrinksToTheCycleCore) {
  // Under the undetonatable workload the negative certificate cannot
  // detonate, producing a deterministic kNoDetonation mismatch; the
  // shrinker must keep that exact kind while dropping the access-only
  // flows and pruning their structure.
  const NocDesign design = MakeApproachRingDesign(6, 5);
  const valid::WorkloadConfig workload = UndetonatableWorkload();
  const valid::TrialRow row = valid::ClassifyTrial(
      design, valid::TrialArm::kUntreated, workload, 11);
  ASSERT_EQ(row.verdict, valid::TrialVerdict::kMismatch);
  ASSERT_EQ(row.mismatch_kind, valid::MismatchKind::kNoDetonation);

  const valid::ShrinkResult shrunk = valid::ShrinkMismatch(
      design, valid::TrialArm::kUntreated, workload, 11);
  // The five access-only flows carry no cycle edge and must go.
  EXPECT_LE(shrunk.design.traffic.FlowCount(), 6u);
  EXPECT_GT(shrunk.steps, 0u);
  // The shrunk design still mismatches the same way under its recorded
  // seed.
  const valid::TrialRow again = valid::ClassifyTrial(
      shrunk.design, valid::TrialArm::kUntreated, workload, shrunk.seed);
  EXPECT_EQ(again.verdict, valid::TrialVerdict::kMismatch);
  EXPECT_EQ(again.mismatch_kind, valid::MismatchKind::kNoDetonation);
  // And it still needs a CDG cycle to mismatch this way.
  EXPECT_FALSE(IsDeadlockFree(shrunk.design));
  // The reproducer survives the io text round trip unchanged, so the
  // dump replays against exactly this design.
  EXPECT_TRUE(shrunk.io_stable);
}

TEST(ReproTest, DumpReplayRoundTrip) {
  const NocDesign ring = MakeApproachRingDesign(6, 3);
  const valid::WorkloadConfig workload = UndetonatableWorkload();
  const valid::TrialOutcome outcome = valid::RunTrial(
      ring, valid::TrialArm::kUntreated, workload, 11, /*shrink=*/true);
  ASSERT_EQ(outcome.row.verdict, valid::TrialVerdict::kMismatch);
  ASSERT_FALSE(outcome.repro_json.empty());

  const valid::Repro repro = valid::ReproFromJson(outcome.repro_json);
  EXPECT_EQ(repro.arm, valid::TrialArm::kUntreated);
  EXPECT_EQ(repro.workload.max_cycles, workload.max_cycles);
  EXPECT_EQ(repro.mismatch, outcome.row.mismatch);
  repro.design.Validate();

  const valid::ReplayResult replay = valid::ReplayRepro(repro);
  EXPECT_TRUE(replay.reproduced) << replay.row.mismatch;
  EXPECT_EQ(replay.row.mismatch, outcome.row.mismatch);

  // The dump itself round-trips byte-identically.
  valid::Repro reparsed = valid::ReproFromJson(valid::ReproToJson(repro));
  EXPECT_EQ(valid::ReproToJson(reparsed), valid::ReproToJson(repro));
}

TEST(ReproTest, MalformedJsonThrows) {
  EXPECT_THROW(valid::ReproFromJson("{"), InvalidModelError);
  EXPECT_THROW(valid::ReproFromJson("{\"version\":2}"), InvalidModelError);
}

TEST(CampaignTest, RowToJsonCarriesVerdict) {
  valid::TrialRow row;
  row.design = "d";
  row.verdict = valid::TrialVerdict::kNegativeDetonated;
  const std::string dump = valid::RowToJson(row).Dump();
  EXPECT_NE(dump.find("\"verdict\":\"negative_detonated\""),
            std::string::npos);
  EXPECT_EQ(dump.find("\"mismatch\""), std::string::npos);
}

TEST(CampaignTest, DigestReactsToOutcomeChanges) {
  const auto result = valid::RunCampaign(SmallCampaign());
  auto rows = result.rows;
  const std::uint64_t digest = valid::Digest(rows);
  rows[0].cycles += 1;
  EXPECT_NE(digest, valid::Digest(rows));
  rows[0].cycles -= 1;
  rows[0].run_ms += 1000.0;  // timings are excluded
  EXPECT_EQ(digest, valid::Digest(rows));
}

}  // namespace
}  // namespace nocdr
