// Corner cases: inputs whose routes already use several VCs per link.
//
// The algorithm must operate on *channels*, never on physical links —
// designs that arrive pre-treated (hand-assigned VCs, a previous removal
// pass, a partially-ordered route set) are legal inputs and everything
// must keep working at the channel granularity.
#include <gtest/gtest.h>

#include "cdg/cdg.h"
#include "cdg/cycle.h"
#include "deadlock/removal.h"
#include "deadlock/resource_ordering.h"
#include "test_helpers.h"

namespace nocdr {
namespace {

/// The paper-example ring, but F1 and F4 already ride a second VC on L1
/// and L2 (as if a designer had split them off by hand). The remaining
/// VC-0 dependencies no longer close a cycle.
testing::PaperExample MakePreSplitExample() {
  auto ex = testing::MakePaperExample();
  auto& topo = ex.design.topology;
  const ChannelId l1v1 = topo.AddVirtualChannel(ex.l1);
  const ChannelId l2v1 = topo.AddVirtualChannel(ex.l2);
  ex.design.routes.SetRoute(ex.f1, {l1v1, l2v1, ex.c3});
  ex.design.routes.SetRoute(ex.f4, {l1v1, l2v1});
  ex.design.Validate();
  return ex;
}

TEST(MultiVcInputTest, CdgDistinguishesVcsOnOneLink) {
  auto ex = MakePreSplitExample();
  const auto cdg = ChannelDependencyGraph::Build(ex.design);
  // VC0 of L1 is still used by F3, VC1 by F1/F4: different vertices,
  // different edges.
  EXPECT_EQ(cdg.VertexCount(), 6u);
  EXPECT_TRUE(cdg.FindEdge(ex.c4, ex.c1).has_value());   // F3 on VC0
  EXPECT_FALSE(cdg.FindEdge(ex.c1, ex.c2).has_value());  // nobody on VC0 pair
}

TEST(MultiVcInputTest, PreSplitDesignIsAlreadyDeadlockFree) {
  auto ex = MakePreSplitExample();
  EXPECT_TRUE(IsDeadlockFree(ex.design));
  const auto report = RemoveDeadlocks(ex.design);
  EXPECT_TRUE(report.initially_deadlock_free);
  EXPECT_EQ(report.vcs_added, 0u);
}

TEST(MultiVcInputTest, RemovalOnPartiallySplitCycle) {
  // Split F1 off onto VC1, but add a flow that restores the L2->L3
  // dependency on VC0: the VC0 ring cycle closes again. Removal must fix
  // it while leaving the pre-existing VC1 channels alone.
  auto ex = testing::MakePaperExample();
  auto& topo = ex.design.topology;
  const ChannelId l1v1 = topo.AddVirtualChannel(ex.l1);
  const ChannelId l2v1 = topo.AddVirtualChannel(ex.l2);
  ex.design.routes.SetRoute(ex.f1, {l1v1, l2v1, ex.c3});
  const CoreId p = ex.design.traffic.AddCore("p");
  const CoreId q = ex.design.traffic.AddCore("q");
  ex.design.attachment.push_back(SwitchId(1u));  // p at SW2
  ex.design.attachment.push_back(SwitchId(3u));  // q at SW4
  const FlowId f_extra = ex.design.traffic.AddFlow(p, q, 50.0);
  ex.design.routes.Resize(ex.design.traffic.FlowCount());
  ex.design.routes.SetRoute(f_extra, {ex.c2, ex.c3});
  ex.design.Validate();
  ASSERT_FALSE(IsDeadlockFree(ex.design));

  const std::size_t channels_before = topo.ChannelCount();
  const auto report = RemoveDeadlocks(ex.design);
  EXPECT_GE(report.vcs_added, 1u);
  EXPECT_TRUE(IsDeadlockFree(ex.design));
  // F1's hand-assigned channels are untouched.
  EXPECT_EQ(ex.design.routes.RouteOf(ex.f1),
            (Route{l1v1, l2v1, ex.c3}));
  EXPECT_EQ(topo.ChannelCount(), channels_before + report.vcs_added);
}

TEST(MultiVcInputTest, NewVcsGetNextFreeIndex) {
  auto ex = testing::MakePaperExample();
  ex.design.topology.AddVirtualChannel(ex.l1);  // pre-existing VC1
  const auto report = RemoveDeadlocks(ex.design);
  ASSERT_EQ(report.vcs_added, 1u);
  // The duplicate lands on some link; if it picked L1 it must be VC2.
  for (std::size_t c = 0; c < ex.design.topology.ChannelCount(); ++c) {
    const Channel& ch = ex.design.topology.ChannelAt(ChannelId(c));
    if (ch.link == ex.l1) {
      EXPECT_LE(ch.vc, 2u);
    }
  }
  EXPECT_TRUE(IsDeadlockFree(ex.design));
}

TEST(MultiVcInputTest, ResourceOrderingHandlesMultiVcInput) {
  auto ex = MakePreSplitExample();
  const auto report = ApplyResourceOrdering(ex.design);
  EXPECT_TRUE(IsDeadlockFree(ex.design));
  ex.design.Validate();
  (void)report;
}

TEST(MultiVcInputTest, CrossVcCyclesAreFoundAndFixed) {
  // Adversarial input: routes that weave across VCs of the same links
  // and still close a dependency cycle — L1.vc0 -> L2.vc1 -> ... -> back.
  NocDesign d;
  std::vector<SwitchId> sw;
  for (int i = 0; i < 4; ++i) {
    sw.push_back(d.topology.AddSwitch());
  }
  std::vector<LinkId> links;
  std::vector<ChannelId> v0, v1;
  for (int i = 0; i < 4; ++i) {
    const LinkId l = d.topology.AddLink(sw[i], sw[(i + 1) % 4]);
    links.push_back(l);
    v0.push_back(*d.topology.FindChannel(l, 0));
    v1.push_back(d.topology.AddVirtualChannel(l));
  }
  std::vector<CoreId> cores;
  for (int i = 0; i < 4; ++i) {
    cores.push_back(d.traffic.AddCore());
    d.attachment.push_back(sw[i]);
  }
  d.routes.Resize(0);
  // Each flow alternates VCs: i uses (vc i%2) then (vc (i+1)%2).
  std::vector<Route> routes = {
      {v0[0], v1[1]}, {v1[1], v0[2]}, {v0[2], v1[3]}, {v1[3], v0[0]}};
  for (int i = 0; i < 4; ++i) {
    d.traffic.AddFlow(cores[i], cores[(i + 2) % 4], 10.0);
  }
  d.routes.Resize(4);
  for (std::size_t i = 0; i < 4; ++i) {
    d.routes.SetRoute(FlowId(i), routes[i]);
  }
  d.Validate();

  const auto cdg = ChannelDependencyGraph::Build(d);
  const auto cycle = SmallestCycle(cdg);
  ASSERT_TRUE(cycle.has_value());
  EXPECT_EQ(cycle->size(), 4u);  // v0[0] -> v1[1] -> v0[2] -> v1[3] -> ...
  RemoveDeadlocks(d);
  EXPECT_TRUE(IsDeadlockFree(d));
  d.Validate();
}

}  // namespace
}  // namespace nocdr
