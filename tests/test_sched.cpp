// src/serve/sched: queue disciplines, token-budget admission and the
// live service's policy hook — the edge cases the load generator and
// nocdr_serve lean on.
#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "gen/generators.h"
#include "serve/protocol.h"
#include "serve/service.h"
#include "test_helpers.h"
#include "util/canonical.h"

namespace nocdr {
namespace {

using serve::CertRequest;
using serve::CertResponse;
using serve::CertificationService;
using serve::RequestKind;
using serve::ServeStatus;
using serve::ServiceConfig;
using serve::sched::AdmissionConfig;
using serve::sched::AdmissionController;
using serve::sched::ClassConfig;
using serve::sched::ClassCounters;
using serve::sched::Discipline;
using serve::sched::Job;
using serve::sched::ReadyQueue;
using serve::sched::TokenBucket;
using testing::MakeRingDesign;

Job MakeJob(std::uint64_t seq, std::uint64_t cost, int rank = 0) {
  Job job;
  job.seq = seq;
  job.cost = cost;
  job.rank = rank;
  job.payload = static_cast<std::size_t>(seq);
  return job;
}

std::vector<std::uint64_t> PopAll(ReadyQueue& queue) {
  std::vector<std::uint64_t> order;
  while (std::optional<Job> job = queue.Pop()) {
    order.push_back(job->seq);
  }
  return order;
}

// ------------------------------------------------------------ disciplines

TEST(SchedTest, DisciplineNamesRoundTrip) {
  for (const Discipline discipline : serve::sched::AllDisciplines()) {
    const auto parsed =
        serve::sched::ParseDiscipline(serve::sched::DisciplineName(discipline));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, discipline);
  }
  EXPECT_FALSE(serve::sched::ParseDiscipline("lifo").has_value());
}

TEST(SchedTest, FifoPopsInArrivalOrder) {
  ReadyQueue queue(Discipline::kFifo, 7, 16);
  for (std::uint64_t seq : {3, 1, 2, 0}) {
    ASSERT_TRUE(queue.Push(MakeJob(seq, 100 - seq)));
  }
  EXPECT_EQ(PopAll(queue), (std::vector<std::uint64_t>{0, 1, 2, 3}));
}

TEST(SchedTest, SjfPopsCheapestFirst) {
  ReadyQueue queue(Discipline::kSjf, 7, 16);
  ASSERT_TRUE(queue.Push(MakeJob(0, 50)));
  ASSERT_TRUE(queue.Push(MakeJob(1, 5)));
  ASSERT_TRUE(queue.Push(MakeJob(2, 500)));
  ASSERT_TRUE(queue.Push(MakeJob(3, 1)));
  EXPECT_EQ(PopAll(queue), (std::vector<std::uint64_t>{3, 1, 0, 2}));
}

TEST(SchedTest, SjfTieBreaksAreSeedDeterministic) {
  // Equal costs: the pop order is a pure function of the queue seed —
  // the same seed replays the same order, a different seed permutes it.
  const auto order_with_seed = [](std::uint64_t seed) {
    ReadyQueue queue(Discipline::kSjf, seed, 64);
    for (std::uint64_t seq = 0; seq < 32; ++seq) {
      queue.Push(MakeJob(seq, 7));
    }
    return PopAll(queue);
  };
  const std::vector<std::uint64_t> first = order_with_seed(42);
  EXPECT_EQ(first, order_with_seed(42));
  EXPECT_NE(first, order_with_seed(43));
  // Same multiset either way.
  std::vector<std::uint64_t> sorted = first;
  std::sort(sorted.begin(), sorted.end());
  for (std::uint64_t seq = 0; seq < 32; ++seq) {
    EXPECT_EQ(sorted[seq], seq);
  }
}

TEST(SchedTest, PriorityPopsByRankThenFifo) {
  ReadyQueue queue(Discipline::kPriority, 7, 16);
  ASSERT_TRUE(queue.Push(MakeJob(0, 1, 5)));
  ASSERT_TRUE(queue.Push(MakeJob(1, 1, -2)));
  ASSERT_TRUE(queue.Push(MakeJob(2, 1, 5)));
  ASSERT_TRUE(queue.Push(MakeJob(3, 1, 0)));
  EXPECT_EQ(PopAll(queue), (std::vector<std::uint64_t>{1, 3, 0, 2}));
}

TEST(SchedTest, QueueBoundsAndEmptyPop) {
  ReadyQueue queue(Discipline::kFifo, 1, 2);
  EXPECT_FALSE(queue.Pop().has_value());  // empty pop is a clean miss
  EXPECT_TRUE(queue.Push(MakeJob(0, 1)));
  EXPECT_TRUE(queue.Push(MakeJob(1, 1)));
  EXPECT_FALSE(queue.Push(MakeJob(2, 1)));  // at capacity
  EXPECT_EQ(queue.Size(), 2u);
  queue.Pop();
  EXPECT_TRUE(queue.Push(MakeJob(3, 1)));  // slot freed
}

// --------------------------------------------------------------- tokens

TEST(SchedTest, TokenBucketRefillsAtRate) {
  // 1 token per 1000 us, capacity 2, starting full at t=0.
  TokenBucket bucket(0.001, 2.0, 0);
  EXPECT_TRUE(bucket.TryTake(1.0, 0));
  EXPECT_TRUE(bucket.TryTake(1.0, 0));
  EXPECT_FALSE(bucket.TryTake(1.0, 0));      // drained
  EXPECT_FALSE(bucket.TryTake(1.0, 500));    // half a token back
  EXPECT_TRUE(bucket.TryTake(1.0, 1500));    // 1.5 back
  EXPECT_FALSE(bucket.TryTake(1.0, 1500));
  // Capacity caps the refill: a long idle gap earns 2, not 10.
  EXPECT_TRUE(bucket.TryTake(2.0, 100000));
  EXPECT_FALSE(bucket.TryTake(0.5, 100000));
}

TEST(SchedTest, AdmissionDisabledCountsButNeverRejects) {
  AdmissionController admission(AdmissionConfig{});
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(admission.TryAdmit("batch", 5, 0));
  }
  const std::vector<ClassCounters> counters = admission.Counters();
  // "default" is auto-added; "batch" accumulated under its own name.
  ASSERT_EQ(counters.size(), 2u);
  EXPECT_EQ(counters[0].name, "default");
  EXPECT_EQ(counters[1].name, "batch");
  EXPECT_EQ(counters[1].requests, 10u);
  EXPECT_EQ(counters[1].admitted, 10u);
  EXPECT_EQ(counters[1].rejected, 0u);
  EXPECT_EQ(counters[1].cost_admitted, 50u);
}

TEST(SchedTest, WeightedClassesSplitTheBudget) {
  AdmissionConfig config;
  config.enabled = true;
  // Weights 3:1 plus the auto-added default class (weight 1) = 5 total;
  // 5 tokens of burst split into capacities 3, 1 and 1.
  config.tokens_per_sec = 5.0;
  config.burst = 5.0;
  config.classes = {ClassConfig{"interactive", 0, 3.0},
                    ClassConfig{"batch", 1, 1.0}};
  AdmissionController admission(config, 0);
  // At t=0 the buckets hold their capacity: 3 and 1.
  int interactive = 0;
  int batch = 0;
  for (int i = 0; i < 4; ++i) {
    interactive += admission.TryAdmit("interactive", 1, 0) ? 1 : 0;
    batch += admission.TryAdmit("batch", 1, 0) ? 1 : 0;
  }
  EXPECT_EQ(interactive, 3);
  EXPECT_EQ(batch, 1);
}

TEST(SchedTest, PriorityClassStarvesLastUnderTokenExhaustion) {
  // The inversion scenario: a flood of low-priority traffic must not
  // consume the high-priority class's budget — per-class buckets keep
  // the urgent class admitting even when "batch" is long exhausted.
  AdmissionConfig config;
  config.enabled = true;
  // urgent:batch:default weigh 3:1:1 -> capacities 6, 2 and 2 of the
  // 10-token burst.
  config.tokens_per_sec = 10.0;
  config.burst = 10.0;
  config.classes = {ClassConfig{"urgent", 0, 3.0}, ClassConfig{"batch", 5, 1.0}};
  AdmissionController admission(config, 0);
  // Exhaust batch's bucket.
  int batch_admitted = 0;
  for (int i = 0; i < 50; ++i) {
    batch_admitted += admission.TryAdmit("batch", 1, 0) ? 1 : 0;
  }
  EXPECT_EQ(batch_admitted, 2);
  // Urgent still has its full share (6 tokens).
  for (int i = 0; i < 6; ++i) {
    EXPECT_TRUE(admission.TryAdmit("urgent", 1, 0));
  }
  EXPECT_FALSE(admission.TryAdmit("urgent", 1, 0));
  EXPECT_EQ(admission.RankOf("urgent"), 0);
  EXPECT_EQ(admission.RankOf("batch"), 5);
  EXPECT_EQ(admission.RankOf("unknown"), 0);  // default bucket's rank
}

TEST(SchedTest, UnknownClassSharesDefaultBucketButOwnCounters) {
  AdmissionConfig config;
  config.enabled = true;
  config.tokens_per_sec = 2.0;
  config.burst = 2.0;
  AdmissionController admission(config, 0);
  EXPECT_TRUE(admission.TryAdmit("alpha", 1, 0));
  EXPECT_TRUE(admission.TryAdmit("beta", 1, 0));
  EXPECT_FALSE(admission.TryAdmit("alpha", 1, 0));  // shared bucket drained
  const std::vector<ClassCounters> counters = admission.Counters();
  ASSERT_EQ(counters.size(), 3u);
  EXPECT_EQ(counters[0].name, "default");
  EXPECT_EQ(counters[0].requests, 0u);
  EXPECT_EQ(counters[1].name, "alpha");
  EXPECT_EQ(counters[1].requests, 2u);
  EXPECT_EQ(counters[1].rejected, 1u);
  EXPECT_EQ(counters[2].name, "beta");
  EXPECT_EQ(counters[2].admitted, 1u);
}

// ------------------------------------------------------------ cost model

TEST(SchedTest, EstimateCostGrowsWithDesignSize) {
  const NocDesign small = MakeRingDesign(4, 2);
  const NocDesign large = MakeRingDesign(12, 8);
  EXPECT_GT(serve::sched::EstimateCost(large),
            serve::sched::EstimateCost(small));
  EXPECT_GE(serve::sched::EstimateCost(0, 0), 1u);  // never zero
}

// ----------------------------------------------- live service rejection

/// Requests naming distinct designs, so each is a cache miss that must
/// pass admission.
CertRequest RingRequest(const std::string& id, std::size_t nodes) {
  CertRequest request;
  request.id = id;
  request.kind = RequestKind::kDesignText;
  request.design_text = DesignText(MakeRingDesign(nodes, 2));
  return request;
}

TEST(SchedTest, TokenRejectionIsStructuredOverloadedForV1AndV2) {
  ServiceConfig config;
  config.threads = 2;
  config.admission.enabled = true;
  // Zero refill on the live clock: exactly one miss passes, every later
  // miss rejects no matter how slowly the test machine runs.
  config.admission.tokens_per_sec = 0.0;
  config.admission.burst = 1.0;
  CertificationService service(config);

  CertRequest first = RingRequest("a", 4);
  EXPECT_EQ(service.Serve(first).status, ServeStatus::kOk);

  // v1 client: rejection carries the same structured shape the
  // in-flight bound uses — status "overloaded", error.code "overloaded".
  CertRequest v1 = RingRequest("b", 5);
  const CertResponse r1 = service.Serve(v1);
  EXPECT_EQ(r1.status, ServeStatus::kOverloaded);
  EXPECT_EQ(r1.error.code, serve::ErrorCode::kOverloaded);
  const std::string line1 = serve::ResponseToJsonLine(r1);
  EXPECT_NE(line1.find("\"status\":\"overloaded\""), std::string::npos);
  EXPECT_NE(line1.find("\"code\":\"overloaded\""), std::string::npos);

  // v2 client: identical shape, plus the v2 type/version echo.
  CertRequest v2 = RingRequest("c", 6);
  v2.protocol_version = serve::kProtocolV2;
  const CertResponse r2 = service.Serve(v2);
  EXPECT_EQ(r2.status, ServeStatus::kOverloaded);
  EXPECT_EQ(r2.error.code, serve::ErrorCode::kOverloaded);
  const std::string line2 = serve::ResponseToJsonLine(r2);
  EXPECT_NE(line2.find("\"protocol_version\":2"), std::string::npos);
  EXPECT_NE(line2.find("\"code\":\"overloaded\""), std::string::npos);

  // A *hit* bypasses admission even with the budget drained.
  EXPECT_EQ(service.Serve(first).status, ServeStatus::kOk);

  const serve::ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.rejected, 2u);
  ASSERT_FALSE(stats.admission_classes.empty());
  EXPECT_EQ(stats.admission_classes[0].name, "default");
  EXPECT_EQ(stats.admission_classes[0].rejected, 2u);
}

TEST(SchedTest, ProtocolRoundTripsPriorityClass) {
  CertRequest request = RingRequest("classy", 4);
  request.priority_class = "interactive";
  const std::string line = serve::RequestToJsonLine(request);
  EXPECT_NE(line.find("\"class\":\"interactive\""), std::string::npos);
  const CertRequest parsed = serve::ParseRequestLine(line);
  EXPECT_EQ(parsed.priority_class, "interactive");
  // Absent field parses to empty (the default class).
  CertRequest plain = RingRequest("plain", 4);
  EXPECT_EQ(serve::ParseRequestLine(serve::RequestToJsonLine(plain))
                .priority_class,
            "");
  EXPECT_EQ(serve::RequestToJsonLine(plain).find("\"class\""),
            std::string::npos);
}

}  // namespace
}  // namespace nocdr
