// serve/disk_cache: persistence across reopen, corruption tolerance
// (torn tails, bit flips, stale locks, garbage directories), the
// multi-reader/single-appender lock and the tiered composite.
//
// The invariant every corruption test pins: a damaged store opens
// cleanly, counts what it skips, and never serves wrong bytes — a bad
// record degrades to a miss (and a recompute), exactly like a digest
// collision.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "serve/disk_cache.h"
#include "serve/service.h"
#include "test_helpers.h"
#include "util/canonical.h"

namespace nocdr {
namespace {

namespace fs = std::filesystem;

using serve::CacheConfig;
using serve::CachedCertification;
using serve::CacheStats;
using serve::CertRequest;
using serve::ComputeCertification;
using serve::DiskCache;
using serve::DiskCacheConfig;
using serve::TieredCertCache;
using testing::MakePaperExample;

/// A unique empty directory, removed (with contents) on destruction.
class TempDir {
 public:
  TempDir() {
    std::string tmpl =
        (fs::temp_directory_path() / "nocdr_disk_cache_XXXXXX").string();
    const char* made = ::mkdtemp(tmpl.data());
    EXPECT_NE(made, nullptr);
    path_ = tmpl;
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

DiskCacheConfig SmallConfig(const std::string& dir) {
  DiskCacheConfig config;
  config.directory = dir;
  config.max_bytes = 1 << 20;
  config.segment_bytes = 1 << 16;
  return config;
}

CachedCertification MakeValue(const std::string& tag,
                              std::size_t padding = 0) {
  CachedCertification value;
  value.certificate_json = "{\"tag\":\"" + tag + "\"}";
  value.treated_design_text = std::string(padding, 'x');
  value.deadlock_free = true;
  value.iterations = 2;
  value.vcs_added = 3;
  value.channels_before = 10;
  value.channels_after = 13;
  return value;
}

/// Path of the single segment file the store is expected to hold.
std::string OnlySegment(const std::string& dir) {
  std::string found;
  for (const auto& entry : fs::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("cache-", 0) == 0) {
      EXPECT_TRUE(found.empty()) << "more than one segment";
      found = entry.path().string();
    }
  }
  EXPECT_FALSE(found.empty());
  return found;
}

TEST(DiskCacheTest, WarmthSurvivesReopenWithFullFidelity) {
  TempDir dir;
  {
    DiskCache cache(SmallConfig(dir.path()));
    EXPECT_FALSE(cache.read_only());
    cache.Insert(1, "key-one", MakeValue("one", 100));
    cache.Insert(2, "key-two", MakeValue("two"));
    EXPECT_FALSE(cache.Lookup(3, "absent"));
  }  // destroy: the process boundary
  DiskCache reopened(SmallConfig(dir.path()));
  const auto hit = reopened.Lookup(1, "key-one");
  ASSERT_TRUE(hit != nullptr);
  EXPECT_EQ(hit->certificate_json, "{\"tag\":\"one\"}");
  EXPECT_EQ(hit->treated_design_text, std::string(100, 'x'));
  EXPECT_EQ(hit->iterations, 2u);
  EXPECT_EQ(hit->vcs_added, 3u);
  EXPECT_EQ(hit->channels_before, 10u);
  EXPECT_EQ(hit->channels_after, 13u);
  EXPECT_TRUE(hit->deadlock_free);
  ASSERT_TRUE(reopened.Lookup(2, "key-two") != nullptr);
  const CacheStats stats = reopened.Stats();
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.corrupt_skipped, 0u);
}

TEST(DiskCacheTest, DigestCollisionDegradesToMissNeverWrongValue) {
  TempDir dir;
  DiskCache cache(SmallConfig(dir.path()));
  cache.Insert(42, "key_a", MakeValue("a"));
  EXPECT_FALSE(cache.Lookup(42, "key_b"));
  cache.Insert(42, "key_b", MakeValue("b"));
  EXPECT_FALSE(cache.Lookup(42, "key_a"));
  const auto hit = cache.Lookup(42, "key_b");
  ASSERT_TRUE(hit != nullptr);
  EXPECT_EQ(hit->certificate_json, "{\"tag\":\"b\"}");
}

TEST(DiskCacheTest, TruncatedFinalRecordIsSkippedAndCounted) {
  TempDir dir;
  {
    DiskCache cache(SmallConfig(dir.path()));
    cache.Insert(1, "intact", MakeValue("good", 50));
    cache.Insert(2, "torn", MakeValue("casualty", 50));
  }
  // A crash mid-append: the final record loses its tail.
  const std::string segment = OnlySegment(dir.path());
  fs::resize_file(segment, fs::file_size(segment) - 10);

  DiskCache reopened(SmallConfig(dir.path()));
  const CacheStats stats = reopened.Stats();
  EXPECT_EQ(stats.corrupt_skipped, 1u);
  EXPECT_EQ(stats.entries, 1u);
  // Everything before the tear serves, byte-identical.
  const auto hit = reopened.Lookup(1, "intact");
  ASSERT_TRUE(hit != nullptr);
  EXPECT_EQ(hit->certificate_json, "{\"tag\":\"good\"}");
  // The torn entry is a miss — recompute territory, never garbage.
  EXPECT_FALSE(reopened.Lookup(2, "torn"));
}

TEST(DiskCacheTest, BitFlippedRecordAtOpenScanIsSkippedAndCounted) {
  TempDir dir;
  std::uint64_t flip_offset = 0;
  {
    DiskCache cache(SmallConfig(dir.path()));
    cache.Insert(1, "flipped", MakeValue("poisoned", 80));
    flip_offset = fs::file_size(OnlySegment(dir.path())) - 30;
    cache.Insert(2, "clean", MakeValue("after", 20));
  }
  {
    // Flip one payload byte inside the *first* record.
    std::fstream f(OnlySegment(dir.path()),
                   std::ios::in | std::ios::out | std::ios::binary);
    f.seekg(static_cast<std::streamoff>(flip_offset));
    char byte = 0;
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x40);
    f.seekp(static_cast<std::streamoff>(flip_offset));
    f.write(&byte, 1);
  }
  DiskCache reopened(SmallConfig(dir.path()));
  EXPECT_EQ(reopened.Stats().corrupt_skipped, 1u);
  EXPECT_EQ(reopened.Stats().entries, 1u);
  EXPECT_FALSE(reopened.Lookup(1, "flipped"));
  // The scanner resynced by the declared length: the record *after*
  // the damage still serves.
  const auto hit = reopened.Lookup(2, "clean");
  ASSERT_TRUE(hit != nullptr);
  EXPECT_EQ(hit->certificate_json, "{\"tag\":\"after\"}");
}

TEST(DiskCacheTest, BitFlipAfterOpenIsCaughtAtServeTime) {
  TempDir dir;
  DiskCache cache(SmallConfig(dir.path()));
  cache.Insert(1, "rotting", MakeValue("fresh", 60));
  // Rot the byte *after* the index was built: the open scan saw a good
  // record, so only the serve-time re-verify can catch this.
  const std::string segment = OnlySegment(dir.path());
  {
    std::fstream f(segment, std::ios::in | std::ios::out | std::ios::binary);
    const std::streamoff offset =
        static_cast<std::streamoff>(fs::file_size(segment)) - 20;
    f.seekg(offset);
    char byte = 0;
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x01);
    f.seekp(offset);
    f.write(&byte, 1);
  }
  EXPECT_FALSE(cache.Lookup(1, "rotting"));
  EXPECT_EQ(cache.Stats().corrupt_skipped, 1u);
  EXPECT_EQ(cache.Stats().entries, 0u);  // the unservable hint is dropped
  // The slot is free for a clean re-publish.
  cache.Insert(1, "rotting", MakeValue("recomputed", 60));
  const auto hit = cache.Lookup(1, "rotting");
  ASSERT_TRUE(hit != nullptr);
  EXPECT_EQ(hit->certificate_json, "{\"tag\":\"recomputed\"}");
}

TEST(DiskCacheTest, DamagedStoreMatchesFreshRecomputeByteForByte) {
  TempDir dir;
  // Real payloads: the paper example through the real computation.
  const NocDesign design = MakePaperExample().design;
  CertRequest request;
  request.treat = true;
  const CanonicalDesign canonical = CanonicalizeDesign(design);
  const CachedCertification fresh =
      ComputeCertification(canonical.design, request);
  {
    DiskCache cache(SmallConfig(dir.path()));
    cache.Insert(7, "paper-example", fresh);
    cache.Insert(8, "sacrifice", MakeValue("doomed", 40));
  }
  // Damage the *other* record's tail; the survivor must re-serve bytes
  // equal to a fresh recompute.
  const std::string segment = OnlySegment(dir.path());
  fs::resize_file(segment, fs::file_size(segment) - 5);

  DiskCache reopened(SmallConfig(dir.path()));
  EXPECT_EQ(reopened.Stats().corrupt_skipped, 1u);
  const auto hit = reopened.Lookup(7, "paper-example");
  ASSERT_TRUE(hit != nullptr);
  const CachedCertification recompute =
      ComputeCertification(canonical.design, request);
  EXPECT_EQ(hit->certificate_json, recompute.certificate_json);
  EXPECT_EQ(hit->treated_design_text, recompute.treated_design_text);
  EXPECT_EQ(hit->deadlock_free, recompute.deadlock_free);
  EXPECT_EQ(hit->vcs_added, recompute.vcs_added);
  EXPECT_FALSE(reopened.Lookup(8, "sacrifice"));
}

TEST(DiskCacheTest, StaleLockFromDeadProcessIsTakenOver) {
  TempDir dir;
  // A real dead pid: fork a child that exits immediately.
  const pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    ::_exit(0);
  }
  int status = 0;
  ASSERT_EQ(::waitpid(child, &status, 0), child);
  {
    std::ofstream lock(fs::path(dir.path()) / "LOCK");
    lock << child << "\n";
  }
  DiskCache cache(SmallConfig(dir.path()));
  EXPECT_FALSE(cache.read_only());  // the crashed appender's lock fell
  cache.Insert(1, "k", MakeValue("v"));
  EXPECT_TRUE(cache.Lookup(1, "k") != nullptr);
}

TEST(DiskCacheTest, LiveAppenderForcesReadOnlyReaders) {
  TempDir dir;
  DiskCache writer(SmallConfig(dir.path()));
  ASSERT_FALSE(writer.read_only());
  writer.Insert(1, "shared", MakeValue("fleet", 30));

  // A second process mounting the directory (same-process here, but
  // the lock protocol only sees the pid in the LOCK file).
  DiskCache reader(SmallConfig(dir.path()));
  EXPECT_TRUE(reader.read_only());
  const auto hit = reader.Lookup(1, "shared");
  ASSERT_TRUE(hit != nullptr);  // read-through serving works
  EXPECT_EQ(hit->certificate_json, "{\"tag\":\"fleet\"}");
  reader.Insert(2, "dropped", MakeValue("never"));
  EXPECT_FALSE(reader.Lookup(2, "dropped"));
  EXPECT_EQ(reader.Stats().insertions, 0u);
}

TEST(DiskCacheTest, EmptyAndGarbageDirectoriesOpenCleanly) {
  TempDir empty;
  {
    DiskCache cache(SmallConfig(empty.path()));
    EXPECT_EQ(cache.Stats().entries, 0u);
    EXPECT_FALSE(cache.Lookup(1, "nothing"));
  }
  TempDir garbage;
  {
    std::ofstream(fs::path(garbage.path()) / "cache-00000001.seg")
        << "this is not a segment file";
    std::ofstream(fs::path(garbage.path()) / "cache-junk.seg")
        << "not even a valid id";
    std::ofstream(fs::path(garbage.path()) / "README.txt") << "hello";
  }
  DiskCache cache(SmallConfig(garbage.path()));
  EXPECT_EQ(cache.Stats().entries, 0u);
  EXPECT_EQ(cache.Stats().corrupt_skipped, 1u);  // the fake segment
  // The store still works as a cache.
  cache.Insert(5, "k", MakeValue("works"));
  EXPECT_TRUE(cache.Lookup(5, "k") != nullptr);
}

TEST(DiskCacheTest, SupersededRecordsDieInCompaction) {
  TempDir dir;
  DiskCacheConfig config = SmallConfig(dir.path());
  DiskCache cache(config);
  for (int round = 0; round < 20; ++round) {
    cache.Insert(1, "rewritten", MakeValue("v" + std::to_string(round), 200));
  }
  cache.Insert(2, "stable", MakeValue("keep", 50));
  const std::size_t reclaimed = cache.Compact();
  EXPECT_GT(reclaimed, 0u);
  EXPECT_EQ(cache.Stats().entries, 2u);
  const auto hit = cache.Lookup(1, "rewritten");
  ASSERT_TRUE(hit != nullptr);
  EXPECT_EQ(hit->certificate_json, "{\"tag\":\"v19\"}");  // newest wins
  EXPECT_TRUE(cache.Lookup(2, "stable") != nullptr);
}

TEST(DiskCacheTest, ByteBoundRetiresOldestSegmentsWhole) {
  TempDir dir;
  DiskCacheConfig config;
  config.directory = dir.path();
  config.segment_bytes = 4 << 10;
  config.max_bytes = 16 << 10;
  DiskCache cache(config);
  for (int i = 0; i < 40; ++i) {
    cache.Insert(static_cast<std::uint64_t>(i), "key" + std::to_string(i),
                 MakeValue("v" + std::to_string(i), 1024));
  }
  const CacheStats stats = cache.Stats();
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_LT(stats.entries, 40u);
  // The newest entry always survives; retired keys miss cleanly.
  EXPECT_TRUE(cache.Lookup(39, "key39") != nullptr);
  EXPECT_FALSE(cache.Lookup(0, "key0"));
}

TEST(TieredCertCacheTest, PromotesDiskHitsAndWritesThroughInserts) {
  TempDir dir;
  {
    TieredCertCache warm(CacheConfig{4, 64, 1 << 20},
                         std::make_unique<DiskCache>(SmallConfig(dir.path())));
    ASSERT_TRUE(warm.has_disk());
    warm.Insert(1, "k1", MakeValue("persisted", 30));
    EXPECT_EQ(warm.Stats().demotions, 1u);  // write-through happened
    EXPECT_EQ(warm.DiskStats().insertions, 1u);
  }
  // Fresh memory tier over the same directory: the restart shape.
  TieredCertCache restarted(
      CacheConfig{4, 64, 1 << 20},
      std::make_unique<DiskCache>(SmallConfig(dir.path())));
  const auto hit = restarted.Lookup(1, "k1");
  ASSERT_TRUE(hit != nullptr);
  EXPECT_EQ(hit->certificate_json, "{\"tag\":\"persisted\"}");
  EXPECT_EQ(restarted.Stats().promotions, 1u);
  // The repeat is memory-speed: no second disk hit.
  ASSERT_TRUE(restarted.Lookup(1, "k1") != nullptr);
  EXPECT_EQ(restarted.DiskStats().hits, 1u);
  EXPECT_EQ(restarted.Stats().hits, 1u);  // memory tier's own hit
}

TEST(TieredCertCacheTest, MemoryOnlyCompositeKeepsBareCacheSemantics) {
  TieredCertCache cache(CacheConfig{4, 64, 1 << 20});
  EXPECT_FALSE(cache.has_disk());
  EXPECT_FALSE(cache.Lookup(1, "k1"));
  cache.Insert(1, "k1", MakeValue("a"));
  ASSERT_TRUE(cache.Lookup(1, "k1") != nullptr);
  const CacheStats stats = cache.Stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.insertions, 1u);
  EXPECT_EQ(stats.promotions, 0u);
  EXPECT_EQ(stats.demotions, 0u);
  EXPECT_EQ(cache.DiskStats().entries, 0u);
}

TEST(DiskCacheTest, ServiceWarmRestartServesBitIdenticalPayloads) {
  TempDir dir;
  serve::ServiceConfig config;
  config.threads = 2;
  config.cache_dir = dir.path();
  const NocDesign design = MakePaperExample().design;
  std::vector<CertRequest> requests;
  for (int i = 0; i < 4; ++i) {
    CertRequest request;
    request.id = "r" + std::to_string(i);
    request.kind = serve::RequestKind::kDesignText;
    request.design_text = DesignText(design);
    requests.push_back(request);
  }
  std::uint64_t cold_digest = 0;
  {
    serve::CertificationService service(config);
    cold_digest = ResponseDigest(service.ServeBatch(requests));
    EXPECT_GT(service.Stats().disk.insertions, 0u);
  }
  // Restart: same directory, fresh process state.
  serve::CertificationService service(config);
  const auto responses = service.ServeBatch(requests);
  EXPECT_EQ(ResponseDigest(responses), cold_digest);
  const serve::ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.computations, 0u);  // every request warm
  EXPECT_EQ(stats.hits, requests.size());
  EXPECT_GT(stats.disk.hits, 0u);
  EXPECT_GT(stats.cache.promotions, 0u);
}

}  // namespace
}  // namespace nocdr
