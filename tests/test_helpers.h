// Shared fixtures: the paper's worked example (Figures 1-4, Table 1) and
// parameterizable synthetic designs used across the test suite.
#pragma once

#include <string>
#include <vector>

#include "noc/design.h"
#include "util/rng.h"

namespace nocdr::testing {

/// Channels of interest in the paper example, by their Figure 1 names.
struct PaperExample {
  NocDesign design;
  LinkId l1, l2, l3, l4;
  ChannelId c1, c2, c3, c4;  // VC 0 of each link
  FlowId f1, f2, f3, f4;
};

/// Builds the example of Figures 1-2: four switches in a unidirectional
/// ring (L1: SW1->SW2, L2: SW2->SW3, L3: SW3->SW4, L4: SW4->SW1) and four
/// flows with routes R1={L1,L2,L3}, R2={L3,L4}, R3={L4,L1}, R4={L1,L2}.
/// The CDG is the 4-cycle L1->L2->L3->L4->L1.
inline PaperExample MakePaperExample() {
  PaperExample ex;
  NocDesign& d = ex.design;
  d.name = "paper_fig1";
  const SwitchId sw1 = d.topology.AddSwitch("SW1");
  const SwitchId sw2 = d.topology.AddSwitch("SW2");
  const SwitchId sw3 = d.topology.AddSwitch("SW3");
  const SwitchId sw4 = d.topology.AddSwitch("SW4");
  ex.l1 = d.topology.AddLink(sw1, sw2);
  ex.l2 = d.topology.AddLink(sw2, sw3);
  ex.l3 = d.topology.AddLink(sw3, sw4);
  ex.l4 = d.topology.AddLink(sw4, sw1);
  ex.c1 = *d.topology.FindChannel(ex.l1, 0);
  ex.c2 = *d.topology.FindChannel(ex.l2, 0);
  ex.c3 = *d.topology.FindChannel(ex.l3, 0);
  ex.c4 = *d.topology.FindChannel(ex.l4, 0);

  // One source and one sink core per flow, placed on the route endpoints.
  struct Spec {
    SwitchId src;
    SwitchId dst;
    std::vector<ChannelId> route;
  };
  const std::vector<Spec> specs = {
      {sw1, sw4, {ex.c1, ex.c2, ex.c3}},  // F1
      {sw3, sw1, {ex.c3, ex.c4}},         // F2
      {sw4, sw2, {ex.c4, ex.c1}},         // F3
      {sw1, sw3, {ex.c1, ex.c2}},         // F4
  };
  d.routes.Resize(specs.size());
  std::vector<FlowId> flows;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const CoreId src = d.traffic.AddCore("src" + std::to_string(i + 1));
    const CoreId dst = d.traffic.AddCore("dst" + std::to_string(i + 1));
    d.attachment.push_back(specs[i].src);
    d.attachment.push_back(specs[i].dst);
    const FlowId f = d.traffic.AddFlow(src, dst, 100.0);
    d.routes.SetRoute(f, specs[i].route);
    flows.push_back(f);
  }
  ex.f1 = flows[0];
  ex.f2 = flows[1];
  ex.f3 = flows[2];
  ex.f4 = flows[3];
  d.Validate();
  return ex;
}

/// A unidirectional ring of \p n switches with one core per switch and
/// flows core[i] -> core[(i + hop_span) % n] routed the short way around;
/// with hop_span >= 2 and enough flows the CDG contains the full ring
/// cycle, the canonical wormhole deadlock.
inline NocDesign MakeRingDesign(std::size_t n, std::size_t hop_span = 2) {
  NocDesign d;
  d.name = "ring" + std::to_string(n);
  std::vector<SwitchId> switches;
  for (std::size_t i = 0; i < n; ++i) {
    switches.push_back(d.topology.AddSwitch());
  }
  std::vector<ChannelId> ring;
  for (std::size_t i = 0; i < n; ++i) {
    const LinkId l =
        d.topology.AddLink(switches[i], switches[(i + 1) % n]);
    ring.push_back(*d.topology.FindChannel(l, 0));
  }
  std::vector<CoreId> cores;
  for (std::size_t i = 0; i < n; ++i) {
    cores.push_back(d.traffic.AddCore());
    d.attachment.push_back(switches[i]);
  }
  d.routes.Resize(0);
  std::vector<Route> routes;
  for (std::size_t i = 0; i < n; ++i) {
    d.traffic.AddFlow(cores[i], cores[(i + hop_span) % n], 50.0);
    Route r;
    for (std::size_t h = 0; h < hop_span; ++h) {
      r.push_back(ring[(i + h) % n]);
    }
    routes.push_back(std::move(r));
  }
  d.routes.Resize(d.traffic.FlowCount());
  for (std::size_t i = 0; i < routes.size(); ++i) {
    d.routes.SetRoute(FlowId(i), std::move(routes[i]));
  }
  d.Validate();
  return d;
}

/// Random connected design: switches on a bidirectional ring plus random
/// chords, random core placement, random flows routed by BFS shortest
/// path. Deterministic in \p seed. Used by the property suites.
NocDesign MakeRandomDesign(std::uint64_t seed, std::size_t switches = 8,
                           std::size_t cores = 12, std::size_t flows = 20);

}  // namespace nocdr::testing
