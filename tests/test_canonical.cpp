// util/canonical: canonical design rendering and content-addressed
// digesting — the primitive the certification service keys its cache by
// and the shrinker validates repros against.
#include "util/canonical.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <vector>

#include "noc/io.h"
#include "test_helpers.h"
#include "util/error.h"

namespace nocdr {
namespace {

using testing::MakePaperExample;
using testing::MakeRandomDesign;

/// Rebuilds \p design with flows (and their routes) permuted by
/// \p order — the construction-order noise canonicalization must erase.
NocDesign PermuteFlows(const NocDesign& design,
                       const std::vector<std::size_t>& order) {
  NocDesign out;
  out.name = design.name;
  out.topology = design.topology;
  out.attachment = design.attachment;
  for (std::size_t c = 0; c < design.traffic.CoreCount(); ++c) {
    out.traffic.AddCore(design.traffic.CoreName(CoreId(c)));
  }
  out.routes.Resize(order.size());
  for (const std::size_t original : order) {
    const Flow& flow = design.traffic.FlowAt(FlowId(original));
    const FlowId f =
        out.traffic.AddFlow(flow.src, flow.dst, flow.bandwidth_mbps);
    out.routes.SetRoute(f, design.routes.RouteOf(FlowId(original)));
  }
  out.Validate();
  return out;
}

TEST(CanonicalTest, IoCanonicalizePreservesFlowOrderAndText) {
  const NocDesign design = MakePaperExample().design;
  const NocDesign round = IoCanonicalize(design);
  EXPECT_EQ(DesignText(design), DesignText(round));
  ASSERT_EQ(design.traffic.FlowCount(), round.traffic.FlowCount());
  for (std::size_t f = 0; f < design.traffic.FlowCount(); ++f) {
    EXPECT_EQ(design.traffic.FlowAt(FlowId(f)).src,
              round.traffic.FlowAt(FlowId(f)).src);
  }
  EXPECT_TRUE(IsIoStable(design));
}

TEST(CanonicalTest, DigestStableUnderFlowReordering) {
  const RemovalOptions options;
  for (const std::uint64_t seed : {1ull, 7ull, 42ull}) {
    const NocDesign design = MakeRandomDesign(seed);
    const std::uint64_t base = CanonicalDesignDigest(design, options);

    std::vector<std::size_t> order(design.traffic.FlowCount());
    for (std::size_t i = 0; i < order.size(); ++i) {
      order[i] = order.size() - 1 - i;  // full reversal
    }
    EXPECT_EQ(base,
              CanonicalDesignDigest(PermuteFlows(design, order), options))
        << "seed " << seed;

    Rng rng(seed ^ 0xfeed);
    rng.Shuffle(order);
    EXPECT_EQ(base,
              CanonicalDesignDigest(PermuteFlows(design, order), options))
        << "seed " << seed;
  }
}

TEST(CanonicalTest, DigestStableUnderTextNoise) {
  // Comments, blank lines and trailing whitespace-only reformatting of
  // the source text must not change identity: parse both renderings and
  // digest.
  const NocDesign design = MakePaperExample().design;
  const std::string text = DesignText(design);
  std::string noisy = "# a comment\n\n";
  for (const char c : text) {
    noisy += c;
    if (c == '\n') {
      noisy += "# between lines\n\n";
    }
  }
  std::istringstream in(noisy);
  const NocDesign reparsed = ReadDesign(in);
  const RemovalOptions options;
  EXPECT_EQ(CanonicalDesignDigest(design, options),
            CanonicalDesignDigest(reparsed, options));
}

TEST(CanonicalTest, CanonicalizationIsIdempotent) {
  for (const std::uint64_t seed : {3ull, 11ull}) {
    const NocDesign design = MakeRandomDesign(seed);
    const CanonicalDesign once = CanonicalizeDesign(design);
    const CanonicalDesign twice = CanonicalizeDesign(once.design);
    EXPECT_EQ(once.text, twice.text) << "seed " << seed;
    EXPECT_TRUE(IsIoStable(once.design)) << "seed " << seed;
  }
}

TEST(CanonicalTest, CanonicalizationPreservesTheCertificationProblem) {
  // Same switches, links, channel multiset and route multiset — only
  // flow identity may be renamed.
  const NocDesign design = MakeRandomDesign(5);
  const CanonicalDesign canonical = CanonicalizeDesign(design);
  EXPECT_EQ(design.topology.SwitchCount(),
            canonical.design.topology.SwitchCount());
  EXPECT_EQ(design.topology.LinkCount(),
            canonical.design.topology.LinkCount());
  EXPECT_EQ(design.topology.ChannelCount(),
            canonical.design.topology.ChannelCount());
  ASSERT_EQ(design.traffic.FlowCount(),
            canonical.design.traffic.FlowCount());

  const auto route_key = [](const NocDesign& d, FlowId f) {
    std::vector<std::pair<std::uint32_t, std::uint32_t>> key;
    for (const ChannelId c : d.routes.RouteOf(f)) {
      const Channel& channel = d.topology.ChannelAt(c);
      key.emplace_back(channel.link.value(), channel.vc);
    }
    return key;
  };
  std::vector<std::vector<std::pair<std::uint32_t, std::uint32_t>>> a, b;
  for (std::size_t f = 0; f < design.traffic.FlowCount(); ++f) {
    a.push_back(route_key(design, FlowId(f)));
    b.push_back(route_key(canonical.design, FlowId(f)));
  }
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);
}

TEST(CanonicalTest, DigestSeparatesDesignsAndOptions) {
  const NocDesign a = MakeRandomDesign(1);
  const NocDesign b = MakeRandomDesign(2);
  const RemovalOptions options;
  EXPECT_NE(CanonicalDesignDigest(a, options),
            CanonicalDesignDigest(b, options));

  RemovalOptions first_found;
  first_found.cycle_policy = CyclePolicy::kFirstFound;
  EXPECT_NE(CanonicalDesignDigest(a, options),
            CanonicalDesignDigest(a, first_found));

  RemovalOptions capped;
  capped.max_iterations = 7;
  EXPECT_NE(CanonicalDesignDigest(a, options),
            CanonicalDesignDigest(a, capped));

  EXPECT_NE(CanonicalDesignDigest(a, options, /*treat=*/true),
            CanonicalDesignDigest(a, options, /*treat=*/false));

  // The engine choice is *not* part of identity: both engines produce
  // bit-identical results, so they share cache entries.
  RemovalOptions rebuild;
  rebuild.engine = RemovalEngine::kRebuild;
  EXPECT_EQ(CanonicalDesignDigest(a, options),
            CanonicalDesignDigest(a, rebuild));
}

}  // namespace
}  // namespace nocdr
