// JSON emission used for BENCH_*.json perf-trajectory rows.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/json.h"

namespace nocdr {
namespace {

TEST(JsonTest, EscapesControlAndQuoteCharacters) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("back\\slash"), "back\\\\slash");
  EXPECT_EQ(JsonEscape("line\nbreak"), "line\\nbreak");
  EXPECT_EQ(JsonEscape(std::string("nul\x01") + "x"), "nul\\u0001x");
}

TEST(JsonTest, DumpRendersFieldsInInsertionOrder) {
  const std::string dump = JsonObject()
                               .Set("name", "ring8")
                               .Set("vcs", std::size_t{3})
                               .Set("ok", true)
                               .Set("ms", 1.5)
                               .Dump();
  EXPECT_EQ(dump, "{\"name\":\"ring8\",\"vcs\":3,\"ok\":true,\"ms\":1.5}");
}

TEST(JsonTest, SignedAndUnsignedIntegers) {
  const std::string dump = JsonObject()
                               .Set("neg", -5)
                               .Set("big", std::uint64_t{1} << 40)
                               .Dump();
  EXPECT_EQ(dump, "{\"neg\":-5,\"big\":1099511627776}");
}

TEST(JsonTest, NonFiniteDoublesBecomeNull) {
  const std::string dump =
      JsonObject().Set("inf", 1.0 / 0.0).Set("nan", 0.0 / 0.0).Dump();
  EXPECT_EQ(dump, "{\"inf\":null,\"nan\":null}");
}

TEST(BenchJsonWriterTest, WritesOneRowPerLineWithBenchTag) {
  BenchJsonWriter writer("jsontest_tmp");
  writer.AddRow(JsonObject().Set("a", std::size_t{1}));
  writer.AddRow(JsonObject().Set("b", "two"));
  ASSERT_EQ(writer.RowCount(), 2u);
  const std::string path = writer.Write();
  ASSERT_EQ(path, "BENCH_jsontest_tmp.json");

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "{\"a\":1,\"bench\":\"jsontest_tmp\"}");
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "{\"b\":\"two\",\"bench\":\"jsontest_tmp\"}");
  EXPECT_FALSE(std::getline(in, line));
  in.close();
  std::remove(path.c_str());
}

}  // namespace
}  // namespace nocdr
