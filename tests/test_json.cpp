// JSON emission used for BENCH_*.json perf-trajectory rows, and the
// minimal parser used by certificates and campaign repro dumps.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/error.h"
#include "util/json.h"

namespace nocdr {
namespace {

TEST(JsonTest, EscapesControlAndQuoteCharacters) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("back\\slash"), "back\\\\slash");
  EXPECT_EQ(JsonEscape("line\nbreak"), "line\\nbreak");
  EXPECT_EQ(JsonEscape(std::string("nul\x01") + "x"), "nul\\u0001x");
}

TEST(JsonTest, DumpRendersFieldsInInsertionOrder) {
  const std::string dump = JsonObject()
                               .Set("name", "ring8")
                               .Set("vcs", std::size_t{3})
                               .Set("ok", true)
                               .Set("ms", 1.5)
                               .Dump();
  EXPECT_EQ(dump, "{\"name\":\"ring8\",\"vcs\":3,\"ok\":true,\"ms\":1.5}");
}

TEST(JsonTest, SignedAndUnsignedIntegers) {
  const std::string dump = JsonObject()
                               .Set("neg", -5)
                               .Set("big", std::uint64_t{1} << 40)
                               .Dump();
  EXPECT_EQ(dump, "{\"neg\":-5,\"big\":1099511627776}");
}

TEST(JsonTest, NonFiniteDoublesBecomeNull) {
  const std::string dump =
      JsonObject().Set("inf", 1.0 / 0.0).Set("nan", 0.0 / 0.0).Dump();
  EXPECT_EQ(dump, "{\"inf\":null,\"nan\":null}");
}

// ------------------------------------------------------------- parsing

TEST(JsonParseTest, ParsesScalars) {
  EXPECT_TRUE(JsonValue::Parse("null").IsNull());
  EXPECT_TRUE(JsonValue::Parse("true").AsBool());
  EXPECT_FALSE(JsonValue::Parse(" false ").AsBool());
  EXPECT_EQ(JsonValue::Parse("42").AsUint(), 42u);
  EXPECT_EQ(JsonValue::Parse("-7").AsInt(), -7);
  EXPECT_DOUBLE_EQ(JsonValue::Parse("2.5e2").AsDouble(), 250.0);
  EXPECT_EQ(JsonValue::Parse("\"hi\"").AsString(), "hi");
}

TEST(JsonParseTest, Uint64RoundTripsExactly) {
  // Full-range 64-bit seeds must not be squeezed through a double.
  const std::uint64_t big = 18446744073709551615ull;  // 2^64 - 1
  EXPECT_EQ(JsonValue::Parse(std::to_string(big)).AsUint(), big);
  const std::uint64_t seed = 16902019798918317163ull;
  EXPECT_EQ(JsonValue::Parse(std::to_string(seed)).AsUint(), seed);
}

TEST(JsonParseTest, ParsesObjectsAndArrays) {
  const JsonValue v = JsonValue::Parse(
      "{\"a\":[1,2,3],\"b\":{\"c\":true},\"d\":\"x\",\"e\":[]}");
  ASSERT_EQ(v.kind(), JsonValue::Kind::kObject);
  ASSERT_EQ(v.At("a").Items().size(), 3u);
  EXPECT_EQ(v.At("a").Items()[2].AsUint(), 3u);
  EXPECT_TRUE(v.At("b").At("c").AsBool());
  EXPECT_EQ(v.At("d").AsString(), "x");
  EXPECT_TRUE(v.At("e").Items().empty());
  EXPECT_EQ(v.Find("missing"), nullptr);
  EXPECT_THROW(static_cast<void>(v.At("missing")), InvalidModelError);
}

TEST(JsonParseTest, DecodesEscapes) {
  const JsonValue v =
      JsonValue::Parse("\"a\\\"b\\\\c\\n\\t\\u0041\\u00e9\"");
  EXPECT_EQ(v.AsString(), "a\"b\\c\n\tA\xc3\xa9");
}

TEST(JsonParseTest, RoundTripsJsonObjectOutput) {
  const std::string dump = JsonObject()
                               .Set("name", "line \"quoted\"\n")
                               .Set("count", std::size_t{7})
                               .Set("ratio", 0.25)
                               .Set("ok", true)
                               .Dump();
  const JsonValue v = JsonValue::Parse(dump);
  EXPECT_EQ(v.At("name").AsString(), "line \"quoted\"\n");
  EXPECT_EQ(v.At("count").AsUint(), 7u);
  EXPECT_DOUBLE_EQ(v.At("ratio").AsDouble(), 0.25);
  EXPECT_TRUE(v.At("ok").AsBool());
}

TEST(JsonParseTest, RejectsMalformedInput) {
  for (const char* bad :
       {"", "{", "[1,", "{\"a\":}", "tru", "\"unterminated", "1 2",
        "{\"a\":1,}", "nul", "\"bad\\q\"", "--3", "{1:2}"}) {
    EXPECT_THROW(static_cast<void>(JsonValue::Parse(bad)), InvalidModelError)
        << bad;
  }
}

TEST(JsonParseTest, TypeMismatchesThrow) {
  const JsonValue v = JsonValue::Parse("{\"s\":\"x\",\"n\":-1}");
  EXPECT_THROW(static_cast<void>(v.At("s").AsUint()), InvalidModelError);
  EXPECT_THROW(static_cast<void>(v.At("n").AsUint()), InvalidModelError);
  EXPECT_THROW(static_cast<void>(v.At("s").Items()), InvalidModelError);
  EXPECT_THROW(static_cast<void>(v.AsString()), InvalidModelError);
  EXPECT_EQ(v.At("n").AsInt(), -1);
}

TEST(BenchJsonWriterTest, WritesProvenanceHeaderThenOneRowPerLine) {
  BenchJsonWriter writer("jsontest_tmp");
  writer.AddRow(JsonObject().Set("a", std::size_t{1}));
  writer.AddRow(JsonObject().Set("b", "two"));
  ASSERT_EQ(writer.RowCount(), 2u);
  const std::string path = writer.Write();
  ASSERT_EQ(path, "BENCH_jsontest_tmp.json");

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  // The first line is the build-provenance header row; its values are
  // build-dependent, so check shape rather than bytes.
  ASSERT_TRUE(std::getline(in, line));
  const JsonValue header = JsonValue::Parse(line);
  EXPECT_TRUE(header.At("provenance").AsBool());
  EXPECT_FALSE(header.At("git_sha").AsString().empty());
  EXPECT_FALSE(header.At("compiler").AsString().empty());
  EXPECT_EQ(header.At("bench").AsString(), "jsontest_tmp");
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "{\"a\":1,\"bench\":\"jsontest_tmp\"}");
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "{\"b\":\"two\",\"bench\":\"jsontest_tmp\"}");
  EXPECT_FALSE(std::getline(in, line));
  in.close();
  std::remove(path.c_str());
}

}  // namespace
}  // namespace nocdr
