// Unit tests for channel dependency graph construction.
#include "cdg/cdg.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "test_helpers.h"

namespace nocdr {
namespace {

TEST(CdgTest, PaperExampleStructure) {
  auto ex = testing::MakePaperExample();
  const auto cdg = ChannelDependencyGraph::Build(ex.design);
  EXPECT_EQ(cdg.VertexCount(), 4u);
  // Figure 2: edges L1->L2, L2->L3, L3->L4, L4->L1.
  EXPECT_EQ(cdg.EdgeCount(), 4u);
  EXPECT_TRUE(cdg.FindEdge(ex.c1, ex.c2).has_value());
  EXPECT_TRUE(cdg.FindEdge(ex.c2, ex.c3).has_value());
  EXPECT_TRUE(cdg.FindEdge(ex.c3, ex.c4).has_value());
  EXPECT_TRUE(cdg.FindEdge(ex.c4, ex.c1).has_value());
  EXPECT_FALSE(cdg.FindEdge(ex.c1, ex.c3).has_value());
}

TEST(CdgTest, EdgeFlowAnnotations) {
  auto ex = testing::MakePaperExample();
  const auto cdg = ChannelDependencyGraph::Build(ex.design);
  // L1->L2 is created by F1 and F4.
  const auto& e12 = cdg.EdgeAt(*cdg.FindEdge(ex.c1, ex.c2));
  EXPECT_EQ(e12.flows, (std::vector<FlowId>{ex.f1, ex.f4}));
  // L2->L3 only by F1.
  const auto& e23 = cdg.EdgeAt(*cdg.FindEdge(ex.c2, ex.c3));
  EXPECT_EQ(e23.flows, std::vector<FlowId>{ex.f1});
  // L4->L1 only by F3.
  const auto& e41 = cdg.EdgeAt(*cdg.FindEdge(ex.c4, ex.c1));
  EXPECT_EQ(e41.flows, std::vector<FlowId>{ex.f3});
}

TEST(CdgTest, Successors) {
  auto ex = testing::MakePaperExample();
  const auto cdg = ChannelDependencyGraph::Build(ex.design);
  EXPECT_EQ(cdg.Successors(ex.c1), std::vector<ChannelId>{ex.c2});
  EXPECT_EQ(cdg.Successors(ex.c4), std::vector<ChannelId>{ex.c1});
}

TEST(CdgTest, EmptyDesignHasEmptyCdg) {
  NocDesign d;
  d.name = "empty";
  const auto cdg = ChannelDependencyGraph::Build(d);
  EXPECT_EQ(cdg.VertexCount(), 0u);
  EXPECT_EQ(cdg.EdgeCount(), 0u);
}

TEST(CdgTest, SingleHopRoutesCreateNoEdges) {
  NocDesign d;
  const SwitchId a = d.topology.AddSwitch(), b = d.topology.AddSwitch();
  d.topology.AddLink(a, b);
  const CoreId ca = d.traffic.AddCore(), cb = d.traffic.AddCore();
  d.attachment = {a, b};
  const FlowId f = d.traffic.AddFlow(ca, cb, 10.0);
  d.routes.Resize(1);
  d.routes.SetRoute(f, {*d.topology.FindChannel(LinkId(0u), 0)});
  d.Validate();
  const auto cdg = ChannelDependencyGraph::Build(d);
  EXPECT_EQ(cdg.VertexCount(), 1u);
  EXPECT_EQ(cdg.EdgeCount(), 0u);
}

TEST(CdgTest, VertexCountTracksAllChannelsIncludingUnused) {
  auto ex = testing::MakePaperExample();
  ex.design.topology.AddVirtualChannel(ex.l1);
  const auto cdg = ChannelDependencyGraph::Build(ex.design);
  EXPECT_EQ(cdg.VertexCount(), 5u);  // new VC is a vertex with no edges
  EXPECT_EQ(cdg.EdgeCount(), 4u);
}

TEST(CdgTest, DuplicateTraversalsRecordFlowOnce) {
  // Two parallel flows over the same 2-hop path: one edge, two flows.
  NocDesign d;
  const SwitchId a = d.topology.AddSwitch(), b = d.topology.AddSwitch(),
                 c = d.topology.AddSwitch();
  const LinkId ab = d.topology.AddLink(a, b);
  const LinkId bc = d.topology.AddLink(b, c);
  const CoreId ca = d.traffic.AddCore(), cc = d.traffic.AddCore();
  d.attachment = {a, c};
  const Route route = {*d.topology.FindChannel(ab, 0),
                       *d.topology.FindChannel(bc, 0)};
  const FlowId f1 = d.traffic.AddFlow(ca, cc, 1.0);
  const FlowId f2 = d.traffic.AddFlow(ca, cc, 2.0);
  d.routes.Resize(2);
  d.routes.SetRoute(f1, route);
  d.routes.SetRoute(f2, route);
  d.Validate();
  const auto cdg = ChannelDependencyGraph::Build(d);
  EXPECT_EQ(cdg.EdgeCount(), 1u);
  EXPECT_EQ(cdg.EdgeAt(0).flows, (std::vector<FlowId>{f1, f2}));
}

}  // namespace
}  // namespace nocdr
