// Adversarial and structural edge cases across the algorithm stack.
#include <gtest/gtest.h>

#include "cdg/cdg.h"
#include "cdg/cycle.h"
#include "deadlock/cost.h"
#include "deadlock/removal.h"
#include "deadlock/updown.h"
#include "sim/simulator.h"
#include "test_helpers.h"

namespace nocdr {
namespace {

TEST(EdgeCaseTest, BackwardCostCountsSuffixThroughDetours) {
  // Mirror of the forward detour test: flow {c0, det..., c2, c3} creates
  // edge (c2, c3); breaking backward duplicates only the suffix inside
  // the cycle (c3), so the backward cost at D3 is 1 even though the
  // forward cost is 2.
  NocDesign d;
  std::vector<SwitchId> sw;
  for (int i = 0; i < 6; ++i) {
    sw.push_back(d.topology.AddSwitch());
  }
  const LinkId l01 = d.topology.AddLink(sw[0], sw[1]);
  const LinkId l12 = d.topology.AddLink(sw[1], sw[2]);
  const LinkId l23 = d.topology.AddLink(sw[2], sw[3]);
  const LinkId l30 = d.topology.AddLink(sw[3], sw[0]);
  const LinkId l14 = d.topology.AddLink(sw[1], sw[4]);
  const LinkId l42 = d.topology.AddLink(sw[4], sw[2]);
  const ChannelId c0 = *d.topology.FindChannel(l01, 0);
  const ChannelId c1 = *d.topology.FindChannel(l12, 0);
  const ChannelId c2 = *d.topology.FindChannel(l23, 0);
  const ChannelId c3 = *d.topology.FindChannel(l30, 0);
  const ChannelId det1 = *d.topology.FindChannel(l14, 0);
  const ChannelId det2 = *d.topology.FindChannel(l42, 0);

  auto add_flow = [&](SwitchId s, SwitchId t, Route r) {
    const CoreId cs = d.traffic.AddCore();
    const CoreId ct = d.traffic.AddCore();
    d.attachment.push_back(s);
    d.attachment.push_back(t);
    const FlowId f = d.traffic.AddFlow(cs, ct, 1.0);
    d.routes.Resize(d.traffic.FlowCount());
    d.routes.SetRoute(f, std::move(r));
  };
  add_flow(sw[0], sw[2], {c0, c1});
  add_flow(sw[1], sw[3], {c1, c2});
  add_flow(sw[2], sw[0], {c2, c3});
  add_flow(sw[3], sw[1], {c3, c0});
  add_flow(sw[0], sw[0], {c0, det1, det2, c2, c3});
  d.Validate();

  const CdgCycle cycle = {c0, c1, c2, c3};
  const auto fwd = ComputeCycleCostTable(d, cycle, BreakDirection::kForward);
  const auto bwd =
      ComputeCycleCostTable(d, cycle, BreakDirection::kBackward);
  // Detour flow is the last row.
  EXPECT_EQ(fwd.cost.back()[2], 2u);  // duplicate c0 and c2
  EXPECT_EQ(bwd.cost.back()[2], 1u);  // duplicate c3 only
}

TEST(EdgeCaseTest, TwoDisjointCyclesNeedTwoBreaks) {
  // Two independent 2-cycles between separate switch pairs.
  NocDesign d;
  const SwitchId a = d.topology.AddSwitch(), b = d.topology.AddSwitch(),
                 c = d.topology.AddSwitch(), e = d.topology.AddSwitch();
  const ChannelId ab = *d.topology.FindChannel(d.topology.AddLink(a, b), 0);
  const ChannelId ba = *d.topology.FindChannel(d.topology.AddLink(b, a), 0);
  const ChannelId ce = *d.topology.FindChannel(d.topology.AddLink(c, e), 0);
  const ChannelId ec = *d.topology.FindChannel(d.topology.AddLink(e, c), 0);
  auto add_flow = [&](SwitchId s, SwitchId t, Route r) {
    const CoreId cs = d.traffic.AddCore();
    const CoreId ct = d.traffic.AddCore();
    d.attachment.push_back(s);
    d.attachment.push_back(t);
    const FlowId f = d.traffic.AddFlow(cs, ct, 1.0);
    d.routes.Resize(d.traffic.FlowCount());
    d.routes.SetRoute(f, std::move(r));
  };
  add_flow(a, a, {ab, ba});
  add_flow(b, b, {ba, ab});
  add_flow(c, c, {ce, ec});
  add_flow(e, e, {ec, ce});
  d.Validate();

  const auto report = RemoveDeadlocks(d);
  EXPECT_EQ(report.iterations, 2u);
  EXPECT_TRUE(IsDeadlockFree(d));
}

TEST(EdgeCaseTest, SharedEdgeCyclesCanFallTogether) {
  // The paper's motivation for smallest-first: overlapping cycles share
  // edges, so one break can kill several. Build an 8-ring whose flows
  // close the big cycle plus a chord-based small cycle sharing channels,
  // and check the removal takes no more iterations than cycles exist.
  auto d = testing::MakeRingDesign(8, 3);
  const auto report = RemoveDeadlocks(d);
  EXPECT_TRUE(IsDeadlockFree(d));
  // The ring CDG has one simple cycle per "rotation class"; removal must
  // converge in a small number of iterations, not thrash.
  EXPECT_LE(report.iterations, 4u);
}

TEST(EdgeCaseTest, FlowCreatingTwoEdgesOfOneCycle) {
  // A flow whose route runs along two consecutive cycle edges
  // contributes two columns in the cost table (F1 in the paper does
  // exactly this); breaking either edge re-routes it.
  auto ex = testing::MakePaperExample();
  const CdgCycle cycle = {ex.c1, ex.c2, ex.c3, ex.c4};
  const auto table =
      ComputeCycleCostTable(ex.design, cycle, BreakDirection::kForward);
  int multi_edge_rows = 0;
  for (const auto& row : table.cost) {
    int edges = 0;
    for (std::size_t v : row) {
      edges += v > 0 ? 1 : 0;
    }
    multi_edge_rows += edges >= 2 ? 1 : 0;
  }
  EXPECT_EQ(multi_edge_rows, 1);  // F1
}

TEST(EdgeCaseTest, TwoVcsOnOneLinkShareBandwidthFairly) {
  // Two flows on two VCs of the same physical link: both complete, and
  // the link's serialization means total time >= total flits.
  NocDesign d;
  const SwitchId a = d.topology.AddSwitch(), b = d.topology.AddSwitch();
  const LinkId ab = d.topology.AddLink(a, b);
  const ChannelId v0 = *d.topology.FindChannel(ab, 0);
  const ChannelId v1 = d.topology.AddVirtualChannel(ab);
  const CoreId w = d.traffic.AddCore(), x = d.traffic.AddCore(),
               y = d.traffic.AddCore(), z = d.traffic.AddCore();
  d.attachment = {a, b, a, b};
  const FlowId f0 = d.traffic.AddFlow(w, x, 100.0);
  const FlowId f1 = d.traffic.AddFlow(y, z, 100.0);
  d.routes.Resize(2);
  d.routes.SetRoute(f0, {v0});
  d.routes.SetRoute(f1, {v1});
  d.Validate();

  SimConfig cfg;
  cfg.traffic.packets_per_flow = 10;
  cfg.traffic.packet_length = 4;
  cfg.max_cycles = 10000;
  const auto r = SimulateWorkload(d, cfg);
  EXPECT_TRUE(r.AllDelivered());
  EXPECT_GE(r.cycles, 80u);  // 2 x 10 x 4 flits over one wire
  // Both flows progressed concurrently (VC multiplexing): neither flow
  // finished only after the other fully drained, so per-flow max latency
  // must reflect interleaving rather than strict serialization.
  EXPECT_GT(r.flows[0].packets_delivered, 0u);
  EXPECT_GT(r.flows[1].packets_delivered, 0u);
}

TEST(EdgeCaseTest, UpDownFeasibleWhenFlowsStayInBidirectionalRegion) {
  // Mixed topology: bidirectional pair a<->b plus a unidirectional spur
  // b->c that carries no traffic. Up*/down* must succeed for the a<->b
  // flows even though c is unreachable bidirectionally.
  NocDesign d;
  const SwitchId a = d.topology.AddSwitch(), b = d.topology.AddSwitch(),
                 c = d.topology.AddSwitch();
  d.topology.AddLink(a, b);
  d.topology.AddLink(b, a);
  d.topology.AddLink(b, c);  // no reverse
  const CoreId x = d.traffic.AddCore(), y = d.traffic.AddCore();
  d.attachment = {a, b};
  const FlowId f = d.traffic.AddFlow(x, y, 10.0);
  d.routes.Resize(1);
  d.routes.SetRoute(f, {*d.topology.FindChannel(LinkId(0u), 0)});
  d.Validate();
  EXPECT_NO_THROW(ApplyUpDownRouting(d));
  EXPECT_TRUE(IsDeadlockFree(d));
}

TEST(EdgeCaseTest, RemovalHandlesParallelFlowsOnSamePair) {
  // Many parallel flows between one core pair, all creating the same
  // dependencies: duplicates must be shared, so the VC cost equals that
  // of a single flow.
  auto single = testing::MakeRingDesign(4, 2);
  auto multi = testing::MakeRingDesign(4, 2);
  // Triple every flow in `multi`.
  const std::size_t original_flows = multi.traffic.FlowCount();
  for (std::size_t fi = 0; fi < original_flows; ++fi) {
    const Flow f = multi.traffic.FlowAt(FlowId(fi));  // copy: AddFlow
                                                      // reallocates
    const Route route = multi.routes.RouteOf(FlowId(fi));
    for (int copy = 0; copy < 2; ++copy) {
      const FlowId nf = multi.traffic.AddFlow(f.src, f.dst, f.bandwidth_mbps);
      multi.routes.Resize(multi.traffic.FlowCount());
      multi.routes.SetRoute(nf, route);
    }
  }
  multi.Validate();
  const auto single_report = RemoveDeadlocks(single);
  const auto multi_report = RemoveDeadlocks(multi);
  EXPECT_EQ(single_report.vcs_added, multi_report.vcs_added);
  EXPECT_TRUE(IsDeadlockFree(multi));
}

TEST(EdgeCaseTest, ZeroFlowDesignIsTriviallyDeadlockFree) {
  NocDesign d;
  const SwitchId a = d.topology.AddSwitch(), b = d.topology.AddSwitch();
  d.topology.AddLink(a, b);
  d.Validate();
  EXPECT_TRUE(IsDeadlockFree(d));
  const auto report = RemoveDeadlocks(d);
  EXPECT_TRUE(report.initially_deadlock_free);
}

}  // namespace
}  // namespace nocdr
