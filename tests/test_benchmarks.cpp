// Unit tests for the synthetic SoC benchmark suite.
#include "soc/benchmarks.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace nocdr {
namespace {

TEST(BenchmarksTest, CoreCountsMatchTheirNames) {
  EXPECT_EQ(MakeBenchmark(SocBenchmarkId::kD26Media).traffic.CoreCount(),
            26u);
  EXPECT_EQ(MakeBenchmark(SocBenchmarkId::kD36_4).traffic.CoreCount(), 36u);
  EXPECT_EQ(MakeBenchmark(SocBenchmarkId::kD36_6).traffic.CoreCount(), 36u);
  EXPECT_EQ(MakeBenchmark(SocBenchmarkId::kD36_8).traffic.CoreCount(), 36u);
  EXPECT_EQ(MakeBenchmark(SocBenchmarkId::kD35Bot).traffic.CoreCount(), 35u);
  EXPECT_EQ(MakeBenchmark(SocBenchmarkId::kD38Tvo).traffic.CoreCount(), 38u);
}

TEST(BenchmarksTest, Names) {
  EXPECT_EQ(BenchmarkName(SocBenchmarkId::kD26Media), "D26_media");
  EXPECT_EQ(BenchmarkName(SocBenchmarkId::kD36_8), "D36_8");
  EXPECT_EQ(BenchmarkName(SocBenchmarkId::kD35Bot), "D35_bot");
  EXPECT_EQ(BenchmarkName(SocBenchmarkId::kD38Tvo), "D38_tvo");
}

class D36FanoutSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(D36FanoutSweep, EveryCoreSendsToExactlyKOthers) {
  const std::size_t k = GetParam();
  const auto b = MakeD36WithFanout(k);
  EXPECT_EQ(b.traffic.FlowCount(), 36u * k);
  for (std::size_t core = 0; core < 36; ++core) {
    const auto& out = b.traffic.OutFlows(CoreId(core));
    EXPECT_EQ(out.size(), k) << "core " << core;
    // Destinations must be distinct.
    std::set<std::uint32_t> dests;
    for (FlowId f : out) {
      dests.insert(b.traffic.FlowAt(f).dst.value());
    }
    EXPECT_EQ(dests.size(), k);
  }
}

INSTANTIATE_TEST_SUITE_P(Fanouts, D36FanoutSweep,
                         ::testing::Values(1, 2, 4, 6, 8));

TEST(BenchmarksTest, D36FanoutsNest) {
  // D36_8's flow set should contain D36_4's destinations (same strides).
  const auto b4 = MakeBenchmark(SocBenchmarkId::kD36_4);
  const auto b8 = MakeBenchmark(SocBenchmarkId::kD36_8);
  std::set<std::pair<std::uint32_t, std::uint32_t>> pairs8;
  for (std::size_t f = 0; f < b8.traffic.FlowCount(); ++f) {
    const Flow& flow = b8.traffic.FlowAt(FlowId(f));
    pairs8.emplace(flow.src.value(), flow.dst.value());
  }
  for (std::size_t f = 0; f < b4.traffic.FlowCount(); ++f) {
    const Flow& flow = b4.traffic.FlowAt(FlowId(f));
    EXPECT_TRUE(pairs8.contains({flow.src.value(), flow.dst.value()}));
  }
}

TEST(BenchmarksTest, Deterministic) {
  for (auto id : AllBenchmarkIds()) {
    const auto a = MakeBenchmark(id);
    const auto b = MakeBenchmark(id);
    ASSERT_EQ(a.traffic.FlowCount(), b.traffic.FlowCount()) << a.name;
    for (std::size_t f = 0; f < a.traffic.FlowCount(); ++f) {
      const Flow& fa = a.traffic.FlowAt(FlowId(f));
      const Flow& fb = b.traffic.FlowAt(FlowId(f));
      EXPECT_EQ(fa.src, fb.src);
      EXPECT_EQ(fa.dst, fb.dst);
      EXPECT_DOUBLE_EQ(fa.bandwidth_mbps, fb.bandwidth_mbps);
    }
  }
}

TEST(BenchmarksTest, AllBandwidthsPositive) {
  for (auto id : AllBenchmarkIds()) {
    const auto b = MakeBenchmark(id);
    for (std::size_t f = 0; f < b.traffic.FlowCount(); ++f) {
      EXPECT_GT(b.traffic.FlowAt(FlowId(f)).bandwidth_mbps, 0.0)
          << b.name << " flow " << f;
    }
  }
}

TEST(BenchmarksTest, MediaBenchmarkHasHubStructure) {
  const auto b = MakeBenchmark(SocBenchmarkId::kD26Media);
  // The ARM and DRAM hubs must be the most connected cores.
  std::size_t dram_degree = 0, arm_degree = 0, max_degree = 0;
  for (std::size_t c = 0; c < b.traffic.CoreCount(); ++c) {
    const std::size_t degree = b.traffic.OutFlows(CoreId(c)).size() +
                               b.traffic.InFlows(CoreId(c)).size();
    max_degree = std::max(max_degree, degree);
    if (b.traffic.CoreName(CoreId(c)) == "dram") {
      dram_degree = degree;
    }
    if (b.traffic.CoreName(CoreId(c)) == "arm") {
      arm_degree = degree;
    }
  }
  EXPECT_EQ(std::max(arm_degree, dram_degree), max_degree);
  EXPECT_GE(dram_degree, 6u);
  EXPECT_GE(arm_degree, 6u);
}

TEST(BenchmarksTest, AllIdsEnumerated) {
  EXPECT_EQ(AllBenchmarkIds().size(), 6u);
}

}  // namespace
}  // namespace nocdr
