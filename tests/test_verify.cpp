// Unit tests for deadlock-freedom certificates.
#include "deadlock/verify.h"

#include <gtest/gtest.h>

#include "deadlock/removal.h"
#include "deadlock/resource_ordering.h"
#include "test_helpers.h"

namespace nocdr {
namespace {

TEST(VerifyTest, CyclicDesignGetsCounterexample) {
  auto ex = testing::MakePaperExample();
  const auto cert = CertifyDeadlockFreedom(ex.design);
  EXPECT_FALSE(cert.deadlock_free);
  EXPECT_TRUE(cert.topological_order.empty());
  ASSERT_EQ(cert.counterexample.size(), 4u);
  EXPECT_FALSE(CheckCertificate(ex.design, cert));
}

TEST(VerifyTest, RemovalProducesCheckableCertificate) {
  auto ex = testing::MakePaperExample();
  RemoveDeadlocks(ex.design);
  const auto cert = CertifyDeadlockFreedom(ex.design);
  EXPECT_TRUE(cert.deadlock_free);
  EXPECT_EQ(cert.topological_order.size(),
            ex.design.topology.ChannelCount());
  EXPECT_TRUE(CheckCertificate(ex.design, cert));
}

TEST(VerifyTest, ResourceOrderingProducesCheckableCertificate) {
  auto ex = testing::MakePaperExample();
  ApplyResourceOrdering(ex.design);
  const auto cert = CertifyDeadlockFreedom(ex.design);
  EXPECT_TRUE(cert.deadlock_free);
  EXPECT_TRUE(CheckCertificate(ex.design, cert));
}

TEST(VerifyTest, TamperedOrderIsRejected) {
  auto ex = testing::MakePaperExample();
  RemoveDeadlocks(ex.design);
  auto cert = CertifyDeadlockFreedom(ex.design);
  ASSERT_TRUE(cert.deadlock_free);
  ASSERT_GE(cert.topological_order.size(), 2u);
  std::swap(cert.topological_order.front(), cert.topological_order.back());
  // Swapping the extremes of the order must break some route's
  // monotonicity (both endpoints carry traffic in this design).
  EXPECT_FALSE(CheckCertificate(ex.design, cert));
}

TEST(VerifyTest, TruncatedOrderIsRejected) {
  auto ex = testing::MakePaperExample();
  RemoveDeadlocks(ex.design);
  auto cert = CertifyDeadlockFreedom(ex.design);
  cert.topological_order.pop_back();
  EXPECT_FALSE(CheckCertificate(ex.design, cert));
}

TEST(VerifyTest, DuplicateEntryIsRejected) {
  auto ex = testing::MakePaperExample();
  RemoveDeadlocks(ex.design);
  auto cert = CertifyDeadlockFreedom(ex.design);
  cert.topological_order.back() = cert.topological_order.front();
  EXPECT_FALSE(CheckCertificate(ex.design, cert));
}

TEST(VerifyTest, ForgedPositiveVerdictIsRejected) {
  // Claiming deadlock freedom for a cyclic design with an arbitrary
  // order must fail the route-monotonicity check.
  auto ex = testing::MakePaperExample();
  DeadlockCertificate forged;
  forged.deadlock_free = true;
  for (std::size_t c = 0; c < ex.design.topology.ChannelCount(); ++c) {
    forged.topological_order.push_back(ChannelId(c));
  }
  EXPECT_FALSE(CheckCertificate(ex.design, forged));
}

// ---------------------------------------------------------------------
// Adversarial mutations: every corruption of a valid certificate must be
// rejected by the independent checker.

/// A treated random design together with its (checkable) certificate.
struct CertifiedDesign {
  NocDesign design;
  DeadlockCertificate certificate;
};

CertifiedDesign MakeCertified(std::uint64_t seed) {
  CertifiedDesign fixture{testing::MakeRandomDesign(seed), {}};
  RemoveDeadlocks(fixture.design);
  fixture.certificate = CertifyDeadlockFreedom(fixture.design);
  EXPECT_TRUE(fixture.certificate.deadlock_free);
  EXPECT_TRUE(CheckCertificate(fixture.design, fixture.certificate));
  return fixture;
}

TEST(VerifyAdversarialTest, SwappedPairsAreRejected) {
  // Swapping the two endpoints of any route dependency must break that
  // route's monotonicity. (Swapping an *unconstrained* pair can yield
  // another valid topological order, so the adversary swaps across real
  // dependencies.)
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const CertifiedDesign fixture = MakeCertified(seed);
    std::vector<std::size_t> position(
        fixture.design.topology.ChannelCount(), 0);
    for (std::size_t i = 0;
         i < fixture.certificate.topological_order.size(); ++i) {
      position[fixture.certificate.topological_order[i].value()] = i;
    }
    std::size_t swaps = 0;
    for (std::size_t f = 0; f < fixture.design.traffic.FlowCount(); ++f) {
      const Route& route = fixture.design.routes.RouteOf(FlowId(f));
      for (std::size_t h = 0; h + 1 < route.size(); ++h) {
        DeadlockCertificate mutated = fixture.certificate;
        std::swap(mutated.topological_order[position[route[h].value()]],
                  mutated.topological_order[position[route[h + 1].value()]]);
        EXPECT_FALSE(CheckCertificate(fixture.design, mutated))
            << "seed " << seed << " flow " << f << " hop " << h;
        ++swaps;
      }
    }
    EXPECT_GT(swaps, 0u) << "seed " << seed;
    EXPECT_TRUE(CheckCertificate(fixture.design, fixture.certificate));
  }
}

TEST(VerifyAdversarialTest, DroppedChannelIsRejected) {
  const CertifiedDesign fixture = MakeCertified(3);
  for (std::size_t i = 0; i < fixture.certificate.topological_order.size();
       ++i) {
    DeadlockCertificate mutated = fixture.certificate;
    mutated.topological_order.erase(mutated.topological_order.begin() +
                                    static_cast<std::ptrdiff_t>(i));
    EXPECT_FALSE(CheckCertificate(fixture.design, mutated)) << i;
  }
}

TEST(VerifyAdversarialTest, DuplicatedChannelIsRejected) {
  const CertifiedDesign fixture = MakeCertified(4);
  for (std::size_t i = 0; i < fixture.certificate.topological_order.size();
       ++i) {
    DeadlockCertificate mutated = fixture.certificate;
    // Duplicate entry i over its successor (wrapping), keeping the
    // length correct so only the duplicate itself can be the reason.
    const std::size_t j = (i + 1) % mutated.topological_order.size();
    mutated.topological_order[j] = mutated.topological_order[i];
    EXPECT_FALSE(CheckCertificate(fixture.design, mutated)) << i;
  }
}

TEST(VerifyAdversarialTest, ForeignDesignOrderIsRejected) {
  // A certificate is evidence about one design; grafting another
  // design's order onto it must fail (here: different channel counts or
  // different route structure).
  const CertifiedDesign ours = MakeCertified(5);
  for (std::uint64_t foreign_seed = 6; foreign_seed <= 10; ++foreign_seed) {
    const CertifiedDesign theirs = MakeCertified(foreign_seed);
    EXPECT_FALSE(CheckCertificate(ours.design, theirs.certificate))
        << "foreign seed " << foreign_seed;
  }
}

TEST(VerifyAdversarialTest, OutOfRangeAndInvalidIdsAreRejected) {
  const CertifiedDesign fixture = MakeCertified(6);
  DeadlockCertificate mutated = fixture.certificate;
  mutated.topological_order.back() =
      ChannelId(fixture.design.topology.ChannelCount());
  EXPECT_FALSE(CheckCertificate(fixture.design, mutated));
  mutated = fixture.certificate;
  mutated.topological_order.front() = ChannelId();
  EXPECT_FALSE(CheckCertificate(fixture.design, mutated));
}

TEST(VerifyJsonTest, PassingCertificateSurvivesRoundTrip) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const CertifiedDesign fixture = MakeCertified(seed);
    const std::string json = CertificateToJson(fixture.certificate);
    const DeadlockCertificate reloaded = CertificateFromJson(json);
    EXPECT_EQ(reloaded.deadlock_free, fixture.certificate.deadlock_free);
    EXPECT_EQ(reloaded.topological_order,
              fixture.certificate.topological_order);
    EXPECT_EQ(reloaded.counterexample, fixture.certificate.counterexample);
    EXPECT_TRUE(CheckCertificate(fixture.design, reloaded));
    // Serialization is deterministic.
    EXPECT_EQ(json, CertificateToJson(reloaded));
  }
}

TEST(VerifyJsonTest, NegativeCertificateSurvivesRoundTrip) {
  auto ex = testing::MakePaperExample();
  const auto cert = CertifyDeadlockFreedom(ex.design);
  ASSERT_FALSE(cert.deadlock_free);
  const DeadlockCertificate reloaded =
      CertificateFromJson(CertificateToJson(cert));
  EXPECT_FALSE(reloaded.deadlock_free);
  EXPECT_EQ(reloaded.counterexample, cert.counterexample);
  EXPECT_FALSE(CheckCertificate(ex.design, reloaded));
}

class VerifyPropertySweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(VerifyPropertySweep, CertificateAgreesWithIsDeadlockFree) {
  auto d = testing::MakeRandomDesign(GetParam());
  const auto cert = CertifyDeadlockFreedom(d);
  EXPECT_EQ(cert.deadlock_free, IsDeadlockFree(d));
  if (cert.deadlock_free) {
    EXPECT_TRUE(CheckCertificate(d, cert));
  } else {
    EXPECT_GE(cert.counterexample.size(), 2u);
  }
  // After removal the certificate must always check out.
  RemoveDeadlocks(d);
  const auto fixed = CertifyDeadlockFreedom(d);
  EXPECT_TRUE(fixed.deadlock_free);
  EXPECT_TRUE(CheckCertificate(d, fixed));
}

INSTANTIATE_TEST_SUITE_P(Seeds, VerifyPropertySweep,
                         ::testing::Range<std::uint64_t>(1, 16));

}  // namespace
}  // namespace nocdr
