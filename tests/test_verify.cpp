// Unit tests for deadlock-freedom certificates.
#include "deadlock/verify.h"

#include <gtest/gtest.h>

#include "deadlock/removal.h"
#include "deadlock/resource_ordering.h"
#include "test_helpers.h"

namespace nocdr {
namespace {

TEST(VerifyTest, CyclicDesignGetsCounterexample) {
  auto ex = testing::MakePaperExample();
  const auto cert = CertifyDeadlockFreedom(ex.design);
  EXPECT_FALSE(cert.deadlock_free);
  EXPECT_TRUE(cert.topological_order.empty());
  ASSERT_EQ(cert.counterexample.size(), 4u);
  EXPECT_FALSE(CheckCertificate(ex.design, cert));
}

TEST(VerifyTest, RemovalProducesCheckableCertificate) {
  auto ex = testing::MakePaperExample();
  RemoveDeadlocks(ex.design);
  const auto cert = CertifyDeadlockFreedom(ex.design);
  EXPECT_TRUE(cert.deadlock_free);
  EXPECT_EQ(cert.topological_order.size(),
            ex.design.topology.ChannelCount());
  EXPECT_TRUE(CheckCertificate(ex.design, cert));
}

TEST(VerifyTest, ResourceOrderingProducesCheckableCertificate) {
  auto ex = testing::MakePaperExample();
  ApplyResourceOrdering(ex.design);
  const auto cert = CertifyDeadlockFreedom(ex.design);
  EXPECT_TRUE(cert.deadlock_free);
  EXPECT_TRUE(CheckCertificate(ex.design, cert));
}

TEST(VerifyTest, TamperedOrderIsRejected) {
  auto ex = testing::MakePaperExample();
  RemoveDeadlocks(ex.design);
  auto cert = CertifyDeadlockFreedom(ex.design);
  ASSERT_TRUE(cert.deadlock_free);
  ASSERT_GE(cert.topological_order.size(), 2u);
  std::swap(cert.topological_order.front(), cert.topological_order.back());
  // Swapping the extremes of the order must break some route's
  // monotonicity (both endpoints carry traffic in this design).
  EXPECT_FALSE(CheckCertificate(ex.design, cert));
}

TEST(VerifyTest, TruncatedOrderIsRejected) {
  auto ex = testing::MakePaperExample();
  RemoveDeadlocks(ex.design);
  auto cert = CertifyDeadlockFreedom(ex.design);
  cert.topological_order.pop_back();
  EXPECT_FALSE(CheckCertificate(ex.design, cert));
}

TEST(VerifyTest, DuplicateEntryIsRejected) {
  auto ex = testing::MakePaperExample();
  RemoveDeadlocks(ex.design);
  auto cert = CertifyDeadlockFreedom(ex.design);
  cert.topological_order.back() = cert.topological_order.front();
  EXPECT_FALSE(CheckCertificate(ex.design, cert));
}

TEST(VerifyTest, ForgedPositiveVerdictIsRejected) {
  // Claiming deadlock freedom for a cyclic design with an arbitrary
  // order must fail the route-monotonicity check.
  auto ex = testing::MakePaperExample();
  DeadlockCertificate forged;
  forged.deadlock_free = true;
  for (std::size_t c = 0; c < ex.design.topology.ChannelCount(); ++c) {
    forged.topological_order.push_back(ChannelId(c));
  }
  EXPECT_FALSE(CheckCertificate(ex.design, forged));
}

class VerifyPropertySweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(VerifyPropertySweep, CertificateAgreesWithIsDeadlockFree) {
  auto d = testing::MakeRandomDesign(GetParam());
  const auto cert = CertifyDeadlockFreedom(d);
  EXPECT_EQ(cert.deadlock_free, IsDeadlockFree(d));
  if (cert.deadlock_free) {
    EXPECT_TRUE(CheckCertificate(d, cert));
  } else {
    EXPECT_GE(cert.counterexample.size(), 2u);
  }
  // After removal the certificate must always check out.
  RemoveDeadlocks(d);
  const auto fixed = CertifyDeadlockFreedom(d);
  EXPECT_TRUE(fixed.deadlock_free);
  EXPECT_TRUE(CheckCertificate(d, fixed));
}

INSTANTIATE_TEST_SUITE_P(Seeds, VerifyPropertySweep,
                         ::testing::Range<std::uint64_t>(1, 16));

}  // namespace
}  // namespace nocdr
