// Unit tests for the configurable synthetic SoC generator.
#include "soc/synthetic.h"

#include <gtest/gtest.h>

#include "deadlock/removal.h"
#include "synth/synthesizer.h"
#include "util/error.h"

namespace nocdr {
namespace {

TEST(SyntheticSocTest, CoreCountAndName) {
  SyntheticSocSpec spec;
  spec.cores = 48;
  spec.fanout = 3;
  const auto b = MakeSyntheticSoc(spec);
  EXPECT_EQ(b.traffic.CoreCount(), 48u);
  EXPECT_EQ(b.name, "S48_f3");
}

TEST(SyntheticSocTest, Deterministic) {
  SyntheticSocSpec spec;
  spec.cores = 40;
  const auto a = MakeSyntheticSoc(spec);
  const auto b = MakeSyntheticSoc(spec);
  ASSERT_EQ(a.traffic.FlowCount(), b.traffic.FlowCount());
  for (std::size_t f = 0; f < a.traffic.FlowCount(); ++f) {
    EXPECT_DOUBLE_EQ(a.traffic.FlowAt(FlowId(f)).bandwidth_mbps,
                     b.traffic.FlowAt(FlowId(f)).bandwidth_mbps);
  }
}

TEST(SyntheticSocTest, SeedChangesBandwidths) {
  SyntheticSocSpec spec_a, spec_b;
  spec_b.seed = 99;
  const auto a = MakeSyntheticSoc(spec_a);
  const auto b = MakeSyntheticSoc(spec_b);
  ASSERT_EQ(a.traffic.FlowCount(), b.traffic.FlowCount());
  bool any_different = false;
  for (std::size_t f = 0; f < a.traffic.FlowCount(); ++f) {
    any_different |= a.traffic.FlowAt(FlowId(f)).bandwidth_mbps !=
                     b.traffic.FlowAt(FlowId(f)).bandwidth_mbps;
  }
  EXPECT_TRUE(any_different);
}

TEST(SyntheticSocTest, BandwidthsWithinRange) {
  SyntheticSocSpec spec;
  spec.min_bandwidth = 50.0;
  spec.max_bandwidth = 60.0;
  const auto b = MakeSyntheticSoc(spec);
  for (std::size_t f = 0; f < b.traffic.FlowCount(); ++f) {
    const double bw = b.traffic.FlowAt(FlowId(f)).bandwidth_mbps;
    EXPECT_GE(bw, 50.0);
    EXPECT_LE(bw, 60.0);
  }
}

TEST(SyntheticSocTest, InvalidSpecsThrow) {
  SyntheticSocSpec spec;
  spec.cores = 3;
  spec.hubs = 2;
  EXPECT_THROW(MakeSyntheticSoc(spec), InvalidModelError);
  spec = {};
  spec.pipeline_length = 0;
  EXPECT_THROW(MakeSyntheticSoc(spec), InvalidModelError);
  spec = {};
  spec.min_bandwidth = 10.0;
  spec.max_bandwidth = 1.0;
  EXPECT_THROW(MakeSyntheticSoc(spec), InvalidModelError);
}

class SyntheticScaleSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SyntheticScaleSweep, SynthesisAndRemovalScale) {
  SyntheticSocSpec spec;
  spec.cores = GetParam();
  spec.fanout = 4;
  const auto b = MakeSyntheticSoc(spec);
  auto design = SynthesizeDesign(b.traffic, b.name, spec.cores / 4);
  RemoveDeadlocks(design);
  EXPECT_TRUE(IsDeadlockFree(design));
  design.Validate();
}

INSTANTIATE_TEST_SUITE_P(Sizes, SyntheticScaleSweep,
                         ::testing::Values(24, 48, 96, 160));

}  // namespace
}  // namespace nocdr
