// Regression lock on the end-to-end pipeline.
//
// Golden VC counts for both deadlock-handling methods on every benchmark
// at three switch counts. Everything in the pipeline is deterministic
// (partitioning, topology construction, routing, cycle selection,
// tie-breaks), so any diff here means an algorithmic change — intended
// changes must update the table consciously.
#include <gtest/gtest.h>

#include "deadlock/removal.h"
#include "deadlock/resource_ordering.h"
#include "soc/benchmarks.h"
#include "synth/synthesizer.h"

namespace nocdr {
namespace {

struct GoldenRow {
  const char* benchmark;
  std::size_t switches;
  std::size_t removal_vcs;
  std::size_t ordering_vcs;
  std::size_t links;
};

constexpr GoldenRow kGolden[] = {
    {"D26_media", 10, 0, 4, 18},  {"D26_media", 14, 0, 7, 28},
    {"D26_media", 18, 0, 8, 36},  {"D36_4", 10, 1, 30, 28},
    {"D36_4", 14, 1, 51, 40},     {"D36_4", 18, 9, 87, 52},
    {"D36_6", 10, 2, 35, 28},     {"D36_6", 14, 8, 61, 40},
    {"D36_6", 18, 7, 103, 52},    {"D36_8", 10, 1, 38, 28},
    {"D36_8", 14, 3, 70, 40},     {"D36_8", 18, 14, 103, 52},
    {"D35_bot", 10, 0, 0, 22},    {"D35_bot", 14, 0, 3, 33},
    {"D35_bot", 18, 0, 8, 37},    {"D38_tvo", 10, 0, 6, 21},
    {"D38_tvo", 14, 0, 10, 28},   {"D38_tvo", 18, 0, 8, 35},
};

SocBenchmarkId IdFromName(const std::string& name) {
  for (auto id : AllBenchmarkIds()) {
    if (BenchmarkName(id) == name) {
      return id;
    }
  }
  throw std::runtime_error("unknown benchmark " + name);
}

class GoldenSweep : public ::testing::TestWithParam<GoldenRow> {};

TEST_P(GoldenSweep, PipelineProducesGoldenCounts) {
  const GoldenRow& row = GetParam();
  const auto b = MakeBenchmark(IdFromName(row.benchmark));
  auto removal_design = SynthesizeDesign(b.traffic, b.name, row.switches);
  auto ordering_design = removal_design;
  EXPECT_EQ(removal_design.topology.LinkCount(), row.links);
  const auto removal = RemoveDeadlocks(removal_design);
  const auto ordering = ApplyResourceOrdering(ordering_design);
  EXPECT_EQ(removal.vcs_added, row.removal_vcs);
  EXPECT_EQ(ordering.vcs_added, row.ordering_vcs);
  EXPECT_TRUE(IsDeadlockFree(removal_design));
  EXPECT_TRUE(IsDeadlockFree(ordering_design));
}

INSTANTIATE_TEST_SUITE_P(
    AllPoints, GoldenSweep, ::testing::ValuesIn(kGolden),
    [](const ::testing::TestParamInfo<GoldenRow>& info) {
      return std::string(info.param.benchmark) + "_" +
             std::to_string(info.param.switches) + "sw";
    });

TEST(GoldenCorpusTest, RemovalNeverExceedsOrderingAnywhere) {
  for (const GoldenRow& row : kGolden) {
    EXPECT_LE(row.removal_vcs, row.ordering_vcs)
        << row.benchmark << "@" << row.switches;
  }
}

TEST(GoldenCorpusTest, AggregateReductionMatchesHeadline) {
  std::size_t removal = 0, ordering = 0;
  for (const GoldenRow& row : kGolden) {
    removal += row.removal_vcs;
    ordering += row.ordering_vcs;
  }
  // The paper's "large reduction" headline: >= 80% over the corpus.
  EXPECT_GE(ordering, removal * 5);
}

}  // namespace
}  // namespace nocdr
