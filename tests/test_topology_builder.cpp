// Unit tests for switch-topology construction.
#include "synth/topology_builder.h"

#include <gtest/gtest.h>

#include <deque>

#include "soc/benchmarks.h"
#include "synth/partition.h"

namespace nocdr {
namespace {

/// True iff every switch can reach every other over directed links.
bool StronglyConnected(const TopologyGraph& t) {
  const std::size_t n = t.SwitchCount();
  auto reaches_all = [&](SwitchId start, bool reversed) {
    std::vector<bool> seen(n, false);
    std::deque<SwitchId> queue{start};
    seen[start.value()] = true;
    std::size_t count = 1;
    while (!queue.empty()) {
      const SwitchId cur = queue.front();
      queue.pop_front();
      const auto& links = reversed ? t.InLinks(cur) : t.OutLinks(cur);
      for (LinkId l : links) {
        const SwitchId next =
            reversed ? t.LinkAt(l).src : t.LinkAt(l).dst;
        if (!seen[next.value()]) {
          seen[next.value()] = true;
          ++count;
          queue.push_back(next);
        }
      }
    }
    return count == n;
  };
  return reaches_all(SwitchId(0u), false) && reaches_all(SwitchId(0u), true);
}

class TopologyBuilderSweep
    : public ::testing::TestWithParam<std::tuple<SocBenchmarkId, std::size_t>> {
};

TEST_P(TopologyBuilderSweep, ConnectedAndWithinDegree) {
  const auto [bench_id, switches] = GetParam();
  const auto b = MakeBenchmark(bench_id);
  if (switches > b.traffic.CoreCount()) {
    GTEST_SKIP() << "more switches than cores";
  }
  const auto attachment = PartitionCores(b.traffic, switches);
  TopologyBuildOptions options;
  const auto topo =
      BuildSwitchTopology(b.traffic, attachment, switches, options);
  EXPECT_EQ(topo.SwitchCount(), switches);
  EXPECT_TRUE(StronglyConnected(topo));
  for (std::size_t s = 0; s < switches; ++s) {
    const std::size_t degree = topo.OutLinks(SwitchId(s)).size() +
                               topo.InLinks(SwitchId(s)).size();
    // The spanning tree may exceed the cap (connectivity first); the
    // budgeted shortcuts must not blow past it by more than the tree
    // needed. Sanity bound: within cap + tree slack.
    EXPECT_LE(degree, options.max_switch_degree + 2 * switches);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Benchmarks, TopologyBuilderSweep,
    ::testing::Combine(::testing::Values(SocBenchmarkId::kD26Media,
                                         SocBenchmarkId::kD36_8,
                                         SocBenchmarkId::kD35Bot),
                       ::testing::Values(4u, 8u, 14u, 20u)));

TEST(TopologyBuilderTest, SingleSwitchHasNoLinks) {
  const auto b = MakeBenchmark(SocBenchmarkId::kD26Media);
  const auto attachment = PartitionCores(b.traffic, 1);
  const auto topo = BuildSwitchTopology(b.traffic, attachment, 1);
  EXPECT_EQ(topo.LinkCount(), 0u);
}

TEST(TopologyBuilderTest, DemandMatrixMatchesFlows) {
  CommunicationGraph g;
  const CoreId a = g.AddCore(), b = g.AddCore(), c = g.AddCore();
  g.AddFlow(a, b, 100.0);
  g.AddFlow(b, a, 50.0);
  g.AddFlow(a, c, 25.0);
  const std::vector<SwitchId> attachment = {SwitchId(0u), SwitchId(1u),
                                            SwitchId(1u)};
  const auto demand = InterSwitchDemand(g, attachment, 2);
  EXPECT_DOUBLE_EQ(demand[0][1], 125.0);  // a->b plus a->c
  EXPECT_DOUBLE_EQ(demand[1][0], 50.0);
  EXPECT_DOUBLE_EQ(demand[0][0], 0.0);  // intra-switch not counted
}

TEST(TopologyBuilderTest, ZeroShortcutFactorGivesTreeOnly) {
  const auto b = MakeBenchmark(SocBenchmarkId::kD36_8);
  const auto attachment = PartitionCores(b.traffic, 9);
  TopologyBuildOptions options;
  options.shortcut_factor = 0.0;
  const auto topo = BuildSwitchTopology(b.traffic, attachment, 9, options);
  // Spanning tree over 9 switches = 8 undirected edges = 16 links.
  EXPECT_EQ(topo.LinkCount(), 16u);
}

TEST(TopologyBuilderTest, ShortcutsIncreaseLinkCount) {
  const auto b = MakeBenchmark(SocBenchmarkId::kD36_8);
  const auto attachment = PartitionCores(b.traffic, 9);
  TopologyBuildOptions tree_only;
  tree_only.shortcut_factor = 0.0;
  TopologyBuildOptions rich;
  rich.shortcut_factor = 2.0;
  const auto t0 = BuildSwitchTopology(b.traffic, attachment, 9, tree_only);
  const auto t2 = BuildSwitchTopology(b.traffic, attachment, 9, rich);
  EXPECT_GT(t2.LinkCount(), t0.LinkCount());
}

TEST(TopologyBuilderTest, Deterministic) {
  const auto b = MakeBenchmark(SocBenchmarkId::kD38Tvo);
  const auto attachment = PartitionCores(b.traffic, 11);
  const auto t1 = BuildSwitchTopology(b.traffic, attachment, 11);
  const auto t2 = BuildSwitchTopology(b.traffic, attachment, 11);
  ASSERT_EQ(t1.LinkCount(), t2.LinkCount());
  for (std::size_t l = 0; l < t1.LinkCount(); ++l) {
    EXPECT_EQ(t1.LinkAt(LinkId(l)).src, t2.LinkAt(LinkId(l)).src);
    EXPECT_EQ(t1.LinkAt(LinkId(l)).dst, t2.LinkAt(LinkId(l)).dst);
  }
}

}  // namespace
}  // namespace nocdr
