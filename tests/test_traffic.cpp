// Unit tests for the communication graph.
#include "noc/traffic.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace nocdr {
namespace {

TEST(TrafficTest, AddCoresAndFlows) {
  CommunicationGraph g;
  const CoreId a = g.AddCore("cpu");
  const CoreId b = g.AddCore();
  EXPECT_EQ(g.CoreCount(), 2u);
  EXPECT_EQ(g.CoreName(a), "cpu");
  EXPECT_EQ(g.CoreName(b), "core1");
  const FlowId f = g.AddFlow(a, b, 150.0);
  EXPECT_EQ(g.FlowCount(), 1u);
  EXPECT_EQ(g.FlowAt(f).src, a);
  EXPECT_EQ(g.FlowAt(f).dst, b);
  EXPECT_DOUBLE_EQ(g.FlowAt(f).bandwidth_mbps, 150.0);
}

TEST(TrafficTest, SelfFlowRejected) {
  CommunicationGraph g;
  const CoreId a = g.AddCore();
  EXPECT_THROW(g.AddFlow(a, a, 10.0), InvalidModelError);
}

TEST(TrafficTest, NegativeBandwidthRejected) {
  CommunicationGraph g;
  const CoreId a = g.AddCore(), b = g.AddCore();
  EXPECT_THROW(g.AddFlow(a, b, -1.0), InvalidModelError);
}

TEST(TrafficTest, UnknownCoreRejected) {
  CommunicationGraph g;
  const CoreId a = g.AddCore();
  EXPECT_THROW(g.AddFlow(a, CoreId(9u), 1.0), InvalidModelError);
}

TEST(TrafficTest, ParallelFlowsAllowed) {
  CommunicationGraph g;
  const CoreId a = g.AddCore(), b = g.AddCore();
  const FlowId f1 = g.AddFlow(a, b, 10.0);
  const FlowId f2 = g.AddFlow(a, b, 20.0);
  EXPECT_NE(f1, f2);
  EXPECT_EQ(g.FlowCount(), 2u);
}

TEST(TrafficTest, InOutFlowIndices) {
  CommunicationGraph g;
  const CoreId a = g.AddCore(), b = g.AddCore(), c = g.AddCore();
  const FlowId ab = g.AddFlow(a, b, 1.0);
  const FlowId ac = g.AddFlow(a, c, 2.0);
  const FlowId cb = g.AddFlow(c, b, 3.0);
  EXPECT_EQ(g.OutFlows(a), (std::vector<FlowId>{ab, ac}));
  EXPECT_EQ(g.InFlows(b), (std::vector<FlowId>{ab, cb}));
  EXPECT_TRUE(g.OutFlows(b).empty());
}

TEST(TrafficTest, TotalBandwidth) {
  CommunicationGraph g;
  const CoreId a = g.AddCore(), b = g.AddCore();
  g.AddFlow(a, b, 10.0);
  g.AddFlow(b, a, 30.0);
  EXPECT_DOUBLE_EQ(g.TotalBandwidth(), 40.0);
}

TEST(TrafficTest, ZeroBandwidthAllowed) {
  CommunicationGraph g;
  const CoreId a = g.AddCore(), b = g.AddCore();
  const FlowId f = g.AddFlow(a, b, 0.0);
  EXPECT_DOUBLE_EQ(g.FlowAt(f).bandwidth_mbps, 0.0);
}

}  // namespace
}  // namespace nocdr
