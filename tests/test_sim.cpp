// Unit tests for the wormhole simulator.
#include "sim/simulator.h"

#include <gtest/gtest.h>

#include "deadlock/removal.h"
#include "test_helpers.h"
#include "util/error.h"

namespace nocdr {
namespace {

SimConfig QuickConfig(std::uint32_t packets = 4) {
  SimConfig cfg;
  cfg.traffic.mode = InjectionMode::kFixedCount;
  cfg.traffic.packets_per_flow = packets;
  cfg.traffic.packet_length = 4;
  cfg.max_cycles = 50000;
  cfg.stall_threshold = 500;
  return cfg;
}

/// One flow across a 3-switch line.
NocDesign LineDesign() {
  NocDesign d;
  const SwitchId a = d.topology.AddSwitch(), b = d.topology.AddSwitch(),
                 c = d.topology.AddSwitch();
  const LinkId ab = d.topology.AddLink(a, b);
  const LinkId bc = d.topology.AddLink(b, c);
  const CoreId x = d.traffic.AddCore(), y = d.traffic.AddCore();
  d.attachment = {a, c};
  const FlowId f = d.traffic.AddFlow(x, y, 100.0);
  d.routes.Resize(1);
  d.routes.SetRoute(f, {*d.topology.FindChannel(ab, 0),
                        *d.topology.FindChannel(bc, 0)});
  d.Validate();
  return d;
}

TEST(SimTest, SingleFlowDeliversEverything) {
  const auto d = LineDesign();
  const auto result = SimulateWorkload(d, QuickConfig(10));
  EXPECT_FALSE(result.deadlocked);
  EXPECT_TRUE(result.AllDelivered());
  EXPECT_EQ(result.packets_delivered, 10u);
  EXPECT_EQ(result.flits_delivered, 10u * 4u);
  EXPECT_EQ(result.stuck_flits, 0u);
}

TEST(SimTest, LatencyIsAtLeastPipelineDepth) {
  const auto d = LineDesign();
  const auto result = SimulateWorkload(d, QuickConfig(1));
  // 4 flits over 2 hops + ejection: at least route length + packet
  // length cycles.
  EXPECT_GE(result.avg_packet_latency, 4.0);
  EXPECT_GE(result.max_packet_latency, 4u);
}

TEST(SimTest, LocalFlowsBypassNetwork) {
  NocDesign d;
  const SwitchId a = d.topology.AddSwitch();
  const CoreId x = d.traffic.AddCore(), y = d.traffic.AddCore();
  d.attachment = {a, a};
  d.traffic.AddFlow(x, y, 10.0);
  d.routes.Resize(1);
  d.Validate();
  const auto result = SimulateWorkload(d, QuickConfig(5));
  EXPECT_TRUE(result.AllDelivered());
  EXPECT_FALSE(result.deadlocked);
  EXPECT_EQ(result.max_packet_latency, 1u);
}

TEST(SimTest, RingWithAggressiveTrafficDeadlocks) {
  // The canonical scenario: 4-ring, every flow spans 2 hops, packets
  // longer than the buffers, all flows injecting at once. The CDG has a
  // cycle and the sim must actually freeze.
  auto d = testing::MakeRingDesign(4, 2);
  SimConfig cfg = QuickConfig(8);
  cfg.traffic.packet_length = 12;  // worms span both hops
  cfg.buffer_depth = 2;
  const auto result = SimulateWorkload(d, cfg);
  EXPECT_TRUE(result.deadlocked);
  EXPECT_FALSE(result.AllDelivered());
  EXPECT_GT(result.stuck_flits, 0u);
  EXPECT_FALSE(result.deadlock_cycle.empty());
}

TEST(SimTest, SameRingAfterRemovalCompletes) {
  auto d = testing::MakeRingDesign(4, 2);
  RemoveDeadlocks(d);
  SimConfig cfg = QuickConfig(8);
  cfg.traffic.packet_length = 12;
  cfg.buffer_depth = 2;
  const auto result = SimulateWorkload(d, cfg);
  EXPECT_FALSE(result.deadlocked);
  EXPECT_TRUE(result.AllDelivered());
  EXPECT_EQ(result.stuck_flits, 0u);
}

TEST(SimTest, PaperExampleDeadlocksThenIsFixed) {
  auto ex = testing::MakePaperExample();
  SimConfig cfg = QuickConfig(6);
  cfg.traffic.packet_length = 10;
  cfg.buffer_depth = 2;
  const auto before = SimulateWorkload(ex.design, cfg);
  EXPECT_TRUE(before.deadlocked);

  RemoveDeadlocks(ex.design);
  const auto after = SimulateWorkload(ex.design, cfg);
  EXPECT_FALSE(after.deadlocked);
  EXPECT_TRUE(after.AllDelivered());
}

TEST(SimTest, DeadlockCycleIsReportedOnRealChannels) {
  auto d = testing::MakeRingDesign(4, 2);
  SimConfig cfg = QuickConfig(8);
  cfg.traffic.packet_length = 12;
  cfg.buffer_depth = 2;
  const auto result = SimulateWorkload(d, cfg);
  ASSERT_TRUE(result.deadlocked);
  for (ChannelId c : result.deadlock_cycle) {
    EXPECT_TRUE(d.topology.IsValidChannel(c));
  }
}

TEST(SimTest, BernoulliModeDeliversUnderLightLoad) {
  const auto d = LineDesign();
  SimConfig cfg;
  cfg.traffic.mode = InjectionMode::kBernoulli;
  cfg.traffic.packet_length = 4;
  cfg.traffic.reference_injection_rate = 0.01;
  cfg.max_cycles = 3000;
  const auto result = SimulateWorkload(d, cfg);
  EXPECT_FALSE(result.deadlocked);
  EXPECT_GT(result.packets_offered, 0u);
  // Most offered packets delivered (the horizon truncates stragglers).
  EXPECT_GE(result.packets_delivered + 5, result.packets_offered);
}

TEST(SimTest, DeterministicAcrossRuns) {
  auto d = testing::MakeRingDesign(6, 2);
  const auto r1 = SimulateWorkload(d, QuickConfig(5));
  const auto r2 = SimulateWorkload(d, QuickConfig(5));
  EXPECT_EQ(r1.cycles, r2.cycles);
  EXPECT_EQ(r1.packets_delivered, r2.packets_delivered);
  EXPECT_EQ(r1.deadlocked, r2.deadlocked);
  EXPECT_DOUBLE_EQ(r1.avg_packet_latency, r2.avg_packet_latency);
}

TEST(SimTest, InvalidConfigThrows) {
  const auto d = LineDesign();
  SimConfig cfg = QuickConfig();
  cfg.traffic.packet_length = 0;
  EXPECT_THROW(SimulateWorkload(d, cfg), InvalidModelError);
  cfg = QuickConfig();
  cfg.buffer_depth = 0;
  EXPECT_THROW(SimulateWorkload(d, cfg), InvalidModelError);
}

void ExpectSameResult(const SimResult& a, const SimResult& b) {
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.packets_offered, b.packets_offered);
  EXPECT_EQ(a.packets_injected, b.packets_injected);
  EXPECT_EQ(a.packets_delivered, b.packets_delivered);
  EXPECT_EQ(a.flits_delivered, b.flits_delivered);
  EXPECT_EQ(a.deadlocked, b.deadlocked);
  EXPECT_EQ(a.deadlock_cycle, b.deadlock_cycle);
  EXPECT_EQ(a.stuck_flits, b.stuck_flits);
  EXPECT_DOUBLE_EQ(a.avg_packet_latency, b.avg_packet_latency);
  EXPECT_EQ(a.max_packet_latency, b.max_packet_latency);
  EXPECT_EQ(a.channel_flits, b.channel_flits);
  ASSERT_EQ(a.flows.size(), b.flows.size());
  for (std::size_t f = 0; f < a.flows.size(); ++f) {
    EXPECT_EQ(a.flows[f].packets_delivered, b.flows[f].packets_delivered);
    EXPECT_DOUBLE_EQ(a.flows[f].avg_latency, b.flows[f].avg_latency);
    EXPECT_EQ(a.flows[f].max_latency, b.flows[f].max_latency);
  }
}

/// The worklist engine must be bit-identical to the full-scan reference
/// on every workload shape: clean runs, deadlocks, Bernoulli traffic,
/// both arbitration orders.
TEST(SimEngineTest, WorklistMatchesFullScanEverywhere) {
  std::vector<std::pair<std::string, NocDesign>> designs;
  designs.emplace_back("line", LineDesign());
  designs.emplace_back("ring4", testing::MakeRingDesign(4, 2));
  designs.emplace_back("ring8", testing::MakeRingDesign(8, 3));
  for (std::uint64_t seed : {3ull, 4ull, 5ull}) {
    designs.emplace_back("random" + std::to_string(seed),
                         testing::MakeRandomDesign(seed, 8, 12, 24));
  }
  std::vector<SimConfig> configs;
  {
    SimConfig deadlocky = QuickConfig(8);
    deadlocky.traffic.packet_length = 12;
    deadlocky.buffer_depth = 2;
    configs.push_back(deadlocky);
    SimConfig tiny = QuickConfig(3);
    tiny.buffer_depth = 1;
    tiny.traffic.packet_length = 1;
    configs.push_back(tiny);
    SimConfig bernoulli;
    bernoulli.traffic.mode = InjectionMode::kBernoulli;
    bernoulli.traffic.reference_injection_rate = 0.05;
    bernoulli.traffic.packet_length = 4;
    bernoulli.max_cycles = 4000;
    configs.push_back(bernoulli);
    SimConfig inject_first = QuickConfig(6);
    inject_first.inject_first = true;
    inject_first.buffer_depth = 1;
    configs.push_back(inject_first);
  }
  for (const auto& [name, design] : designs) {
    for (std::size_t c = 0; c < configs.size(); ++c) {
      SimConfig cfg = configs[c];
      cfg.engine = SimEngine::kFullScan;
      const SimResult reference = SimulateWorkload(design, cfg);
      cfg.engine = SimEngine::kWorklist;
      const SimResult optimized = SimulateWorkload(design, cfg);
      SCOPED_TRACE(name + " config " + std::to_string(c));
      ExpectSameResult(reference, optimized);
    }
  }
}

void ExpectConsistentStats(const NocDesign& design, const SimResult& r) {
  EXPECT_LE(r.packets_delivered, r.packets_offered);
  EXPECT_LE(r.packets_delivered, r.packets_injected);
  EXPECT_EQ(r.flows.size(), design.traffic.FlowCount());
  std::uint64_t per_flow = 0;
  for (const FlowStats& stats : r.flows) {
    per_flow += stats.packets_delivered;
  }
  EXPECT_EQ(per_flow, r.packets_delivered);
}

TEST(SimEdgeCaseTest, SingleFlitPackets) {
  // packet_length == 1: the head is also the tail.
  const auto d = LineDesign();
  SimConfig cfg = QuickConfig(10);
  cfg.traffic.packet_length = 1;
  const auto r = SimulateWorkload(d, cfg);
  EXPECT_FALSE(r.deadlocked);
  EXPECT_TRUE(r.AllDelivered());
  EXPECT_EQ(r.flits_delivered, 10u);
  EXPECT_EQ(r.stuck_flits, 0u);
  ExpectConsistentStats(d, r);
}

TEST(SimEdgeCaseTest, SingleSlotBuffers) {
  const auto d = LineDesign();
  SimConfig cfg = QuickConfig(10);
  cfg.buffer_depth = 1;
  const auto r = SimulateWorkload(d, cfg);
  EXPECT_FALSE(r.deadlocked);
  EXPECT_TRUE(r.AllDelivered());
  ExpectConsistentStats(d, r);
}

TEST(SimEdgeCaseTest, ZeroFlowsTerminatesImmediately) {
  NocDesign d;
  const SwitchId a = d.topology.AddSwitch(), b = d.topology.AddSwitch();
  d.topology.AddLink(a, b);
  d.routes.Resize(0);
  d.Validate();
  for (const SimEngine engine :
       {SimEngine::kWorklist, SimEngine::kFullScan}) {
    SimConfig cfg = QuickConfig(5);
    cfg.engine = engine;
    const auto r = SimulateWorkload(d, cfg);
    EXPECT_FALSE(r.deadlocked);
    EXPECT_EQ(r.packets_offered, 0u);
    EXPECT_TRUE(r.AllDelivered());
    EXPECT_LE(r.cycles, 2u);
    ExpectConsistentStats(d, r);
  }
}

TEST(SimEdgeCaseTest, SelfFlowIsRejectedByTheModel) {
  // A flow whose source core equals its destination core is not a legal
  // communication edge.
  NocDesign d;
  d.topology.AddSwitch();
  const CoreId x = d.traffic.AddCore();
  EXPECT_THROW(d.traffic.AddFlow(x, x, 10.0), InvalidModelError);
}

TEST(SimEdgeCaseTest, SameSwitchFlowUsesLocalDelivery) {
  // Source and destination attach to the same switch: the empty route is
  // the degenerate "source equals destination" case the simulator must
  // deliver without touching the network.
  NocDesign d;
  const SwitchId a = d.topology.AddSwitch(), b = d.topology.AddSwitch();
  d.topology.AddLink(a, b);
  const CoreId x = d.traffic.AddCore(), y = d.traffic.AddCore();
  d.attachment = {a, a};
  d.traffic.AddFlow(x, y, 10.0);
  d.routes.Resize(1);
  d.Validate();
  SimConfig cfg = QuickConfig(7);
  cfg.traffic.packet_length = 1;
  const auto r = SimulateWorkload(d, cfg);
  EXPECT_FALSE(r.deadlocked);
  EXPECT_TRUE(r.AllDelivered());
  EXPECT_EQ(r.packets_delivered, 7u);
  EXPECT_EQ(r.stuck_flits, 0u);
  ExpectConsistentStats(d, r);
}

TEST(SimTest, ThroughputBoundedByLinkBandwidth) {
  // Two flows share one link; at most one flit per cycle can cross it,
  // so delivering all flits takes at least total_flits cycles.
  NocDesign d;
  const SwitchId a = d.topology.AddSwitch(), b = d.topology.AddSwitch();
  const LinkId ab = d.topology.AddLink(a, b);
  const CoreId w = d.traffic.AddCore(), x = d.traffic.AddCore(),
               y = d.traffic.AddCore(), z = d.traffic.AddCore();
  d.attachment = {a, b, a, b};
  const FlowId f1 = d.traffic.AddFlow(w, x, 100.0);
  const FlowId f2 = d.traffic.AddFlow(y, z, 100.0);
  d.routes.Resize(2);
  const ChannelId ch = *d.topology.FindChannel(ab, 0);
  d.routes.SetRoute(f1, {ch});
  d.routes.SetRoute(f2, {ch});
  d.Validate();
  const auto result = SimulateWorkload(d, QuickConfig(10));
  EXPECT_TRUE(result.AllDelivered());
  EXPECT_GE(result.cycles, 2u * 10u * 4u);  // 80 flits over one link
}

}  // namespace
}  // namespace nocdr
