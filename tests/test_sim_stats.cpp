// Unit tests for the simulator's per-flow and per-channel statistics.
#include <gtest/gtest.h>

#include "sim/simulator.h"
#include "test_helpers.h"

namespace nocdr {
namespace {

SimConfig Config(std::uint32_t packets, std::uint16_t length = 4) {
  SimConfig cfg;
  cfg.traffic.mode = InjectionMode::kFixedCount;
  cfg.traffic.packets_per_flow = packets;
  cfg.traffic.packet_length = length;
  cfg.max_cycles = 100000;
  cfg.stall_threshold = 1000;
  return cfg;
}

NocDesign TwoFlowLine() {
  // a -> b -> c with one 2-hop flow and one 1-hop flow.
  NocDesign d;
  const SwitchId a = d.topology.AddSwitch(), b = d.topology.AddSwitch(),
                 c = d.topology.AddSwitch();
  const LinkId ab = d.topology.AddLink(a, b);
  const LinkId bc = d.topology.AddLink(b, c);
  const CoreId w = d.traffic.AddCore(), x = d.traffic.AddCore(),
               y = d.traffic.AddCore(), z = d.traffic.AddCore();
  d.attachment = {a, c, b, c};
  const FlowId f_long = d.traffic.AddFlow(w, x, 100.0);
  const FlowId f_short = d.traffic.AddFlow(y, z, 100.0);
  d.routes.Resize(2);
  d.routes.SetRoute(f_long, {*d.topology.FindChannel(ab, 0),
                             *d.topology.FindChannel(bc, 0)});
  d.routes.SetRoute(f_short, {*d.topology.FindChannel(bc, 0)});
  d.Validate();
  return d;
}

TEST(SimStatsTest, PerFlowCountsSumToTotal) {
  const auto d = TwoFlowLine();
  const auto r = SimulateWorkload(d, Config(7));
  ASSERT_EQ(r.flows.size(), 2u);
  EXPECT_EQ(r.flows[0].packets_delivered + r.flows[1].packets_delivered,
            r.packets_delivered);
  EXPECT_EQ(r.flows[0].packets_delivered, 7u);
  EXPECT_EQ(r.flows[1].packets_delivered, 7u);
}

TEST(SimStatsTest, LongerRouteHasHigherLatency) {
  const auto d = TwoFlowLine();
  const auto r = SimulateWorkload(d, Config(5));
  EXPECT_GT(r.flows[0].avg_latency, r.flows[1].avg_latency);
  EXPECT_GE(r.flows[0].max_latency, r.flows[0].avg_latency);
}

TEST(SimStatsTest, AggregateLatencyIsWeightedMean) {
  const auto d = TwoFlowLine();
  const auto r = SimulateWorkload(d, Config(5));
  const double weighted =
      (r.flows[0].avg_latency *
           static_cast<double>(r.flows[0].packets_delivered) +
       r.flows[1].avg_latency *
           static_cast<double>(r.flows[1].packets_delivered)) /
      static_cast<double>(r.packets_delivered);
  EXPECT_NEAR(r.avg_packet_latency, weighted, 1e-9);
}

TEST(SimStatsTest, ChannelFlitCountsMatchTraffic) {
  const auto d = TwoFlowLine();
  const std::uint32_t packets = 6;
  const std::uint16_t length = 4;
  const auto r = SimulateWorkload(d, Config(packets, length));
  ASSERT_EQ(r.channel_flits.size(), 2u);
  // Channel ab forwards only the long flow; bc forwards both.
  EXPECT_EQ(r.channel_flits[0],
            static_cast<std::uint64_t>(packets) * length);
  EXPECT_EQ(r.channel_flits[1],
            2ull * static_cast<std::uint64_t>(packets) * length);
}

TEST(SimStatsTest, UtilizationBetweenZeroAndOne) {
  const auto d = TwoFlowLine();
  const auto r = SimulateWorkload(d, Config(10));
  for (std::size_t c = 0; c < r.channel_flits.size(); ++c) {
    const double u = r.ChannelUtilization(ChannelId(c));
    EXPECT_GE(u, 0.0);
    EXPECT_LE(u, 1.0);
  }
  // The shared link is the bottleneck: strictly busier than the private
  // one.
  EXPECT_GT(r.ChannelUtilization(ChannelId(1u)),
            r.ChannelUtilization(ChannelId(0u)));
}

TEST(SimStatsTest, LocalFlowsAppearInFlowStats) {
  NocDesign d;
  const SwitchId a = d.topology.AddSwitch();
  const CoreId x = d.traffic.AddCore(), y = d.traffic.AddCore();
  d.attachment = {a, a};
  d.traffic.AddFlow(x, y, 10.0);
  d.routes.Resize(1);
  d.Validate();
  const auto r = SimulateWorkload(d, Config(3));
  ASSERT_EQ(r.flows.size(), 1u);
  EXPECT_EQ(r.flows[0].packets_delivered, 3u);
  EXPECT_DOUBLE_EQ(r.flows[0].avg_latency, 1.0);
}

TEST(SimStatsTest, DeadlockedRunStillReportsPartialStats) {
  auto d = testing::MakeRingDesign(4, 2);
  SimConfig cfg = Config(8, 12);
  cfg.buffer_depth = 2;
  const auto r = SimulateWorkload(d, cfg);
  ASSERT_TRUE(r.deadlocked);
  ASSERT_EQ(r.flows.size(), 4u);
  std::uint64_t delivered = 0;
  for (const auto& f : r.flows) {
    delivered += f.packets_delivered;
  }
  EXPECT_EQ(delivered, r.packets_delivered);
}

}  // namespace
}  // namespace nocdr
