// Unit tests for congestion-aware route construction.
#include "synth/route_builder.h"

#include <gtest/gtest.h>

#include "soc/benchmarks.h"
#include "synth/partition.h"
#include "synth/synthesizer.h"
#include "synth/topology_builder.h"
#include "util/error.h"

namespace nocdr {
namespace {

/// Small diamond: a -> {b, c} -> d lets traffic split.
struct Diamond {
  TopologyGraph topo;
  SwitchId a, b, c, d;
};

Diamond MakeDiamond() {
  Diamond dm;
  dm.a = dm.topo.AddSwitch("a");
  dm.b = dm.topo.AddSwitch("b");
  dm.c = dm.topo.AddSwitch("c");
  dm.d = dm.topo.AddSwitch("d");
  dm.topo.AddLink(dm.a, dm.b);
  dm.topo.AddLink(dm.b, dm.d);
  dm.topo.AddLink(dm.a, dm.c);
  dm.topo.AddLink(dm.c, dm.d);
  return dm;
}

TEST(RouteBuilderTest, ShortestPathWhenUncongested) {
  Diamond dm = MakeDiamond();
  // Extra 3-hop detour a->b->c->d would never win.
  dm.topo.AddLink(dm.b, dm.c);
  CommunicationGraph g;
  const CoreId x = g.AddCore(), y = g.AddCore();
  g.AddFlow(x, y, 10.0);
  const std::vector<SwitchId> attachment = {dm.a, dm.d};
  const auto routes = BuildRoutes(dm.topo, g, attachment);
  EXPECT_EQ(routes.RouteOf(FlowId(0u)).size(), 2u);
}

TEST(RouteBuilderTest, CongestionSplitsHeavyTraffic) {
  Diamond dm = MakeDiamond();
  CommunicationGraph g;
  const CoreId x = g.AddCore(), y = g.AddCore();
  // Two very heavy parallel flows: with load-aware weights the second
  // must take the other branch of the diamond.
  g.AddFlow(x, y, 2000.0);
  g.AddFlow(x, y, 2000.0);
  const std::vector<SwitchId> attachment = {dm.a, dm.d};
  RouteBuildOptions options;
  options.congestion_weight = 4.0;
  options.link_capacity_mbps = 1000.0;
  const auto routes = BuildRoutes(dm.topo, g, attachment, options);
  const Route& r0 = routes.RouteOf(FlowId(0u));
  const Route& r1 = routes.RouteOf(FlowId(1u));
  ASSERT_EQ(r0.size(), 2u);
  ASSERT_EQ(r1.size(), 2u);
  EXPECT_NE(r0[0], r1[0]) << "both flows took the same branch";
}

TEST(RouteBuilderTest, ZeroCongestionWeightIgnoresLoad) {
  Diamond dm = MakeDiamond();
  CommunicationGraph g;
  const CoreId x = g.AddCore(), y = g.AddCore();
  g.AddFlow(x, y, 2000.0);
  g.AddFlow(x, y, 2000.0);
  const std::vector<SwitchId> attachment = {dm.a, dm.d};
  RouteBuildOptions options;
  options.congestion_weight = 0.0;
  const auto routes = BuildRoutes(dm.topo, g, attachment, options);
  // Pure shortest path with deterministic tie-break: identical routes.
  EXPECT_EQ(routes.RouteOf(FlowId(0u)), routes.RouteOf(FlowId(1u)));
}

TEST(RouteBuilderTest, IntraSwitchFlowsGetEmptyRoutes) {
  Diamond dm = MakeDiamond();
  CommunicationGraph g;
  const CoreId x = g.AddCore(), y = g.AddCore();
  g.AddFlow(x, y, 50.0);
  const std::vector<SwitchId> attachment = {dm.a, dm.a};
  const auto routes = BuildRoutes(dm.topo, g, attachment);
  EXPECT_TRUE(routes.RouteOf(FlowId(0u)).empty());
}

TEST(RouteBuilderTest, DisconnectedThrows) {
  TopologyGraph t;
  const SwitchId a = t.AddSwitch(), b = t.AddSwitch();
  (void)b;
  CommunicationGraph g;
  const CoreId x = g.AddCore(), y = g.AddCore();
  g.AddFlow(x, y, 1.0);
  const std::vector<SwitchId> attachment = {a, SwitchId(1u)};
  EXPECT_THROW(BuildRoutes(t, g, attachment), InvalidModelError);
}

TEST(RouteBuilderTest, AllRoutesValidateOnSynthesizedTopologies) {
  for (auto id : AllBenchmarkIds()) {
    const auto b = MakeBenchmark(id);
    const auto design = SynthesizeDesign(b.traffic, b.name, 10);
    EXPECT_NO_THROW(design.Validate()) << b.name;
  }
}

TEST(RouteBuilderTest, RoutesUseOnlyVcZero) {
  const auto b = MakeBenchmark(SocBenchmarkId::kD36_6);
  const auto design = SynthesizeDesign(b.traffic, b.name, 12);
  for (std::size_t fi = 0; fi < design.traffic.FlowCount(); ++fi) {
    for (ChannelId c : design.routes.RouteOf(FlowId(fi))) {
      EXPECT_EQ(design.topology.ChannelAt(c).vc, 0u);
    }
  }
}

}  // namespace
}  // namespace nocdr
