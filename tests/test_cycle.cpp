// Unit tests for cycle detection on the CDG.
#include "cdg/cycle.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "test_helpers.h"

namespace nocdr {
namespace {

/// Checks that `cycle` is a genuine cycle of `graph`.
void ExpectIsCycle(const ChannelDependencyGraph& graph,
                   const CdgCycle& cycle) {
  ASSERT_FALSE(cycle.empty());
  for (std::size_t i = 0; i < cycle.size(); ++i) {
    const ChannelId from = cycle[i];
    const ChannelId to = cycle[(i + 1) % cycle.size()];
    EXPECT_TRUE(graph.FindEdge(from, to).has_value())
        << "missing edge " << from.value() << "->" << to.value();
  }
}

TEST(CycleTest, PaperExampleHasFourCycle) {
  auto ex = testing::MakePaperExample();
  const auto cdg = ChannelDependencyGraph::Build(ex.design);
  EXPECT_FALSE(IsAcyclic(cdg));
  const auto cycle = SmallestCycle(cdg);
  ASSERT_TRUE(cycle.has_value());
  EXPECT_EQ(cycle->size(), 4u);
  ExpectIsCycle(cdg, *cycle);
}

TEST(CycleTest, AcyclicAfterRemovingOneRoute) {
  auto ex = testing::MakePaperExample();
  // Drop F3 (the L4->L1 dependency): the ring no longer closes.
  ex.design.routes.SetRoute(ex.f3, {ex.c4});
  // Fix attachment: route {L4} ends at SW1, but dst3 is at SW2; rebuild
  // the design consistently by re-homing the destination core.
  ex.design.attachment[5] = SwitchId(0u);  // dst3 -> SW1
  ex.design.Validate();
  const auto cdg = ChannelDependencyGraph::Build(ex.design);
  EXPECT_TRUE(IsAcyclic(cdg));
  EXPECT_FALSE(SmallestCycle(cdg).has_value());
  EXPECT_FALSE(FirstCycle(cdg).has_value());
  EXPECT_FALSE(LargestShortestCycle(cdg).has_value());
}

TEST(CycleTest, ShortestCycleThroughSpecificVertex) {
  auto ex = testing::MakePaperExample();
  const auto cdg = ChannelDependencyGraph::Build(ex.design);
  const auto cycle = ShortestCycleThrough(cdg, ex.c2);
  ASSERT_TRUE(cycle.has_value());
  EXPECT_EQ(cycle->size(), 4u);
  EXPECT_EQ(cycle->front(), ex.c2);
}

TEST(CycleTest, VertexNotOnCycle) {
  // Chain a->b->c plus cycle among d,e: starting from a finds nothing.
  NocDesign d;
  const SwitchId s0 = d.topology.AddSwitch(), s1 = d.topology.AddSwitch(),
                 s2 = d.topology.AddSwitch();
  const LinkId l01 = d.topology.AddLink(s0, s1);
  const LinkId l12 = d.topology.AddLink(s1, s2);
  const LinkId l20 = d.topology.AddLink(s2, s0);
  const ChannelId c01 = *d.topology.FindChannel(l01, 0);
  const ChannelId c12 = *d.topology.FindChannel(l12, 0);
  const ChannelId c20 = *d.topology.FindChannel(l20, 0);
  const CoreId x = d.traffic.AddCore(), y = d.traffic.AddCore(),
               z = d.traffic.AddCore();
  d.attachment = {s1, s0, s1};
  // Flow x(s1)->y(s0): route {l12, l20}; flow z(s1)->... build a 2-cycle
  // between c12 and c20 plus a pendant c01.
  const FlowId f1 = d.traffic.AddFlow(x, y, 1.0);
  const FlowId f2 = d.traffic.AddFlow(y, z, 1.0);
  d.routes.Resize(2);
  d.routes.SetRoute(f1, {c12, c20});
  d.routes.SetRoute(f2, {c01});
  d.Validate();
  const auto cdg = ChannelDependencyGraph::Build(d);
  // c12 -> c20 only; no cycle anywhere.
  EXPECT_TRUE(IsAcyclic(cdg));
  EXPECT_FALSE(ShortestCycleThrough(cdg, c01).has_value());
  EXPECT_FALSE(ShortestCycleThrough(cdg, c12).has_value());
}

TEST(CycleTest, SmallestOfTwoCycles) {
  // Ring of 6 switches: flows induce a 2-cycle (via a reverse link) and
  // the big 6-cycle; SmallestCycle must return the 2-cycle.
  NocDesign d;
  std::vector<SwitchId> sw;
  for (int i = 0; i < 6; ++i) {
    sw.push_back(d.topology.AddSwitch());
  }
  std::vector<ChannelId> fwd;
  for (int i = 0; i < 6; ++i) {
    const LinkId l = d.topology.AddLink(sw[i], sw[(i + 1) % 6]);
    fwd.push_back(*d.topology.FindChannel(l, 0));
  }
  const LinkId back = d.topology.AddLink(sw[1], sw[0]);
  const ChannelId cback = *d.topology.FindChannel(back, 0);

  std::vector<CoreId> cores;
  for (int i = 0; i < 6; ++i) {
    cores.push_back(d.traffic.AddCore());
    d.attachment.push_back(sw[i]);
  }
  std::vector<Route> routes;
  std::vector<FlowId> flows;
  // Big ring cycle: each core i sends 2 hops forward, so consecutive
  // forward channels depend on each other all the way around.
  for (int i = 0; i < 6; ++i) {
    flows.push_back(d.traffic.AddFlow(cores[i], cores[(i + 2) % 6], 1.0));
    routes.push_back({fwd[i], fwd[(i + 1) % 6]});
  }
  // 2-cycle between fwd[0] (sw0->sw1) and `back` (sw1->sw0): one flow
  // bounces sw1->sw0->sw1, another sw0->sw1->sw0, using dedicated cores.
  const CoreId p = d.traffic.AddCore("p");
  const CoreId q = d.traffic.AddCore("q");
  d.attachment.push_back(sw[1]);
  d.attachment.push_back(sw[1]);
  flows.push_back(d.traffic.AddFlow(p, q, 1.0));
  routes.push_back({cback, fwd[0]});
  const CoreId r = d.traffic.AddCore("r");
  const CoreId s = d.traffic.AddCore("s");
  d.attachment.push_back(sw[0]);
  d.attachment.push_back(sw[0]);
  flows.push_back(d.traffic.AddFlow(r, s, 1.0));
  routes.push_back({fwd[0], cback});

  d.routes.Resize(d.traffic.FlowCount());
  for (std::size_t i = 0; i < routes.size(); ++i) {
    d.routes.SetRoute(flows[i], routes[i]);
  }
  d.Validate();

  const auto cdg = ChannelDependencyGraph::Build(d);
  const auto smallest = SmallestCycle(cdg);
  ASSERT_TRUE(smallest.has_value());
  EXPECT_EQ(smallest->size(), 2u);
  ExpectIsCycle(cdg, *smallest);

  const auto largest = LargestShortestCycle(cdg);
  ASSERT_TRUE(largest.has_value());
  EXPECT_EQ(largest->size(), 6u);
  ExpectIsCycle(cdg, *largest);
}

TEST(CycleTest, FirstCycleIsValidCycle) {
  auto ex = testing::MakePaperExample();
  const auto cdg = ChannelDependencyGraph::Build(ex.design);
  const auto cycle = FirstCycle(cdg);
  ASSERT_TRUE(cycle.has_value());
  ExpectIsCycle(cdg, *cycle);
}

TEST(CycleTest, RingDesignsOfManySizes) {
  for (std::size_t n : {3u, 4u, 5u, 8u, 12u}) {
    auto d = testing::MakeRingDesign(n, 2);
    const auto cdg = ChannelDependencyGraph::Build(d);
    EXPECT_FALSE(IsAcyclic(cdg)) << "ring " << n;
    const auto cycle = SmallestCycle(cdg);
    ASSERT_TRUE(cycle.has_value()) << "ring " << n;
    EXPECT_EQ(cycle->size(), n) << "ring " << n;
  }
}

}  // namespace
}  // namespace nocdr
