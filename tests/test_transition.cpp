// Transition-simulation semantics: drain-and-restart loses nothing,
// mid-flight drops exactly the packets the fault caught, and a
// transition with nothing changed degenerates to a plain run.
#include <gtest/gtest.h>

#include "noc/design.h"
#include "sim/simulator.h"
#include "sim/transition.h"
#include "test_helpers.h"
#include "util/error.h"

namespace nocdr {
namespace {

/// Three switches, a two-hop path S0->S1->S2 and a direct spare
/// S0->S2: the smallest design where a fault on the second hop has a
/// detour. Flow 0 runs S0->S2 (route {a, b}), flow 1 runs S0->S1
/// (route {a}).
struct DetourFixture {
  NocDesign design;   // routes already detoured: flow 0 on {c}
  RouteSet pre_routes;  // original routes: flow 0 on {a, b}
  std::vector<char> dead;  // channel of link b
};

DetourFixture MakeDetourFixture() {
  DetourFixture fx;
  NocDesign& d = fx.design;
  d.name = "detour_line";
  const SwitchId s0 = d.topology.AddSwitch("S0");
  const SwitchId s1 = d.topology.AddSwitch("S1");
  const SwitchId s2 = d.topology.AddSwitch("S2");
  const LinkId a = d.topology.AddLink(s0, s1);
  const LinkId b = d.topology.AddLink(s1, s2);
  const LinkId c = d.topology.AddLink(s0, s2);
  const ChannelId ca = *d.topology.FindChannel(a, 0);
  const ChannelId cb = *d.topology.FindChannel(b, 0);
  const ChannelId cc = *d.topology.FindChannel(c, 0);

  const CoreId src0 = d.traffic.AddCore("src0");
  const CoreId dst0 = d.traffic.AddCore("dst0");
  const CoreId src1 = d.traffic.AddCore("src1");
  const CoreId dst1 = d.traffic.AddCore("dst1");
  d.attachment = {s0, s2, s0, s1};
  const FlowId f0 = d.traffic.AddFlow(src0, dst0, 100.0);
  const FlowId f1 = d.traffic.AddFlow(src1, dst1, 100.0);

  d.routes.Resize(2);
  fx.pre_routes.Resize(2);
  fx.pre_routes.SetRoute(f0, {ca, cb});
  fx.pre_routes.SetRoute(f1, {ca});
  d.routes.SetRoute(f0, {cc});  // post-fault detour
  d.routes.SetRoute(f1, {ca});  // unaffected
  d.Validate();

  fx.dead.assign(d.topology.ChannelCount(), 0);
  fx.dead[cb.value()] = 1;
  return fx;
}

TransitionConfig MakeConfig(TransitionPolicy policy,
                            std::uint64_t transition_cycle,
                            SimEngine engine = SimEngine::kWorklist) {
  TransitionConfig config;
  config.sim.engine = engine;
  config.sim.buffer_depth = 1;
  config.sim.max_cycles = 50000;
  config.sim.stall_threshold = 1000;
  config.sim.traffic.mode = InjectionMode::kFixedCount;
  config.sim.traffic.packets_per_flow = 8;
  config.sim.traffic.packet_length = 6;
  config.policy = policy;
  config.transition_cycle = transition_cycle;
  return config;
}

TEST(TransitionTest, DrainAndRestartLosesNothing) {
  const DetourFixture fx = MakeDetourFixture();
  const auto result = SimulateTransition(
      fx.design, fx.pre_routes, fx.dead,
      MakeConfig(TransitionPolicy::kDrainAndRestart, 10));
  EXPECT_FALSE(result.sim.deadlocked);
  EXPECT_EQ(result.packets_dropped, 0u);
  EXPECT_TRUE(result.sim.AllDelivered());
  // Traffic was mid-flight at cycle 10, so the drain had to stall.
  EXPECT_GT(result.drain_cycles, 0u);
}

TEST(TransitionTest, MidFlightDropsExactlyTheDoomedPackets) {
  const DetourFixture fx = MakeDetourFixture();
  const auto result =
      SimulateTransition(fx.design, fx.pre_routes, fx.dead,
                         MakeConfig(TransitionPolicy::kMidFlight, 10));
  EXPECT_FALSE(result.sim.deadlocked);
  // The fault destroys something (flow 0 worms were in flight on the
  // doomed path at cycle 10) but every packet is accounted for.
  EXPECT_GT(result.packets_dropped, 0u);
  EXPECT_LT(result.sim.packets_delivered, result.sim.packets_offered);
  EXPECT_TRUE(result.AllAccountedFor());
  EXPECT_EQ(result.drain_cycles, 0u);
  // Flow 1 never touches the dead link: all its packets arrive.
  EXPECT_EQ(result.sim.flows[1].packets_delivered, 8u);
}

TEST(TransitionTest, LateTransitionTouchesNothing) {
  // If the whole workload drains before the transition cycle, both
  // policies must match a plain simulation of the pre-fault routes.
  const DetourFixture fx = MakeDetourFixture();
  NocDesign pre = fx.design;
  pre.routes = fx.pre_routes;
  TransitionConfig config =
      MakeConfig(TransitionPolicy::kMidFlight, 40000);
  const SimResult plain = SimulateWorkload(pre, config.sim);
  ASSERT_TRUE(plain.AllDelivered());

  for (const TransitionPolicy policy :
       {TransitionPolicy::kMidFlight, TransitionPolicy::kDrainAndRestart}) {
    config.policy = policy;
    const auto result =
        SimulateTransition(fx.design, fx.pre_routes, fx.dead, config);
    EXPECT_EQ(result.packets_dropped, 0u);
    EXPECT_EQ(result.sim.packets_delivered, plain.packets_delivered);
    EXPECT_EQ(result.sim.flits_delivered, plain.flits_delivered);
  }
}

TEST(TransitionTest, IdentityTransitionMatchesPlainRun) {
  // Same routes on both sides and nothing dead: a mid-flight
  // "transition" is a no-op and must be cycle-accurate-identical to
  // SimulateWorkload.
  const NocDesign design = testing::MakeRandomDesign(3, 8, 12, 20);
  TransitionConfig config = MakeConfig(TransitionPolicy::kMidFlight, 32);
  config.sim.max_cycles = 200000;
  const SimResult plain = SimulateWorkload(design, config.sim);
  const auto result =
      SimulateTransition(design, design.routes, {}, config);
  EXPECT_EQ(result.packets_dropped, 0u);
  EXPECT_EQ(result.sim.cycles, plain.cycles);
  EXPECT_EQ(result.sim.packets_delivered, plain.packets_delivered);
  EXPECT_EQ(result.sim.flits_delivered, plain.flits_delivered);
  EXPECT_EQ(result.sim.avg_packet_latency, plain.avg_packet_latency);
  EXPECT_EQ(result.sim.deadlocked, plain.deadlocked);
}

TEST(TransitionTest, EnginesAgreeAcrossTheTransition) {
  const DetourFixture fx = MakeDetourFixture();
  for (const TransitionPolicy policy :
       {TransitionPolicy::kDrainAndRestart, TransitionPolicy::kMidFlight}) {
    const auto fullscan = SimulateTransition(
        fx.design, fx.pre_routes, fx.dead,
        MakeConfig(policy, 10, SimEngine::kFullScan));
    for (const SimEngine engine :
         {SimEngine::kWorklist, SimEngine::kEvent}) {
      const auto candidate = SimulateTransition(
          fx.design, fx.pre_routes, fx.dead, MakeConfig(policy, 10, engine));
      EXPECT_EQ(candidate.sim.cycles, fullscan.sim.cycles);
      EXPECT_EQ(candidate.sim.packets_delivered,
                fullscan.sim.packets_delivered);
      EXPECT_EQ(candidate.sim.flits_delivered, fullscan.sim.flits_delivered);
      EXPECT_EQ(candidate.packets_dropped, fullscan.packets_dropped);
      EXPECT_EQ(candidate.drain_cycles, fullscan.drain_cycles);
    }
  }
}

TEST(TransitionTest, DeterministicAcrossRuns) {
  const DetourFixture fx = MakeDetourFixture();
  const auto config = MakeConfig(TransitionPolicy::kMidFlight, 12);
  const auto a =
      SimulateTransition(fx.design, fx.pre_routes, fx.dead, config);
  const auto b =
      SimulateTransition(fx.design, fx.pre_routes, fx.dead, config);
  EXPECT_EQ(a.sim.cycles, b.sim.cycles);
  EXPECT_EQ(a.packets_dropped, b.packets_dropped);
  EXPECT_EQ(a.sim.packets_delivered, b.sim.packets_delivered);
}

TEST(TransitionTest, RejectsMalformedInputs) {
  const DetourFixture fx = MakeDetourFixture();
  TransitionConfig config = MakeConfig(TransitionPolicy::kMidFlight, 10);
  RouteSet short_routes(1);  // wrong flow count
  EXPECT_THROW(
      SimulateTransition(fx.design, short_routes, fx.dead, config),
      InvalidModelError);
  std::vector<char> short_mask(1, 0);  // wrong channel count
  EXPECT_THROW(
      SimulateTransition(fx.design, fx.pre_routes, short_mask, config),
      InvalidModelError);
}

}  // namespace
}  // namespace nocdr
