// Unit tests for power/area report rendering.
#include "power/report.h"

#include <gtest/gtest.h>

#include <sstream>

#include "deadlock/resource_ordering.h"
#include "test_helpers.h"

namespace nocdr {
namespace {

TEST(PowerReportTest, SummaryContainsAllComponents) {
  auto ex = testing::MakePaperExample();
  const auto pa = EstimatePowerArea(ex.design);
  std::ostringstream os;
  PrintPowerSummary(os, ex.design, pa);
  const std::string out = os.str();
  EXPECT_NE(out.find("paper_fig1"), std::string::npos);
  EXPECT_NE(out.find("switch area"), std::string::npos);
  EXPECT_NE(out.find("dynamic power"), std::string::npos);
  EXPECT_NE(out.find("leakage power"), std::string::npos);
  EXPECT_NE(out.find("clock power"), std::string::npos);
  EXPECT_NE(out.find("total power"), std::string::npos);
}

TEST(PowerReportTest, BreakdownHasOneRowPerSwitch) {
  auto ex = testing::MakePaperExample();
  const auto pa = EstimatePowerArea(ex.design);
  std::ostringstream os;
  PrintPerSwitchBreakdown(os, ex.design, pa);
  const std::string out = os.str();
  for (const char* name : {"SW1", "SW2", "SW3", "SW4"}) {
    EXPECT_NE(out.find(name), std::string::npos) << name;
  }
}

TEST(PowerReportTest, ComparisonShowsDeltas) {
  auto base = testing::MakePaperExample();
  auto treated = testing::MakePaperExample();
  ApplyResourceOrdering(treated.design);
  const auto pa_base = EstimatePowerArea(base.design);
  const auto pa_treated = EstimatePowerArea(treated.design);
  std::ostringstream os;
  PrintPowerComparison(os, "untreated", pa_base, "ordered", pa_treated);
  const std::string out = os.str();
  EXPECT_NE(out.find("untreated"), std::string::npos);
  EXPECT_NE(out.find("ordered"), std::string::npos);
  EXPECT_NE(out.find("delta"), std::string::npos);
  // Ordering added VCs: some positive area delta must appear.
  EXPECT_NE(out.find("%"), std::string::npos);
}

TEST(PowerReportTest, ZeroBaselineRendersDash) {
  NocPowerArea zero;
  NocPowerArea some;
  some.dynamic_mw = 1.0;
  std::ostringstream os;
  PrintPowerComparison(os, "a", zero, "b", some);
  EXPECT_NE(os.str().find("| -"), std::string::npos);
}

}  // namespace
}  // namespace nocdr
