// Unit tests for cycle breaking (vertex duplication + re-routing).
#include "deadlock/breaker.h"

#include <gtest/gtest.h>

#include "cdg/cdg.h"
#include "cdg/cycle.h"
#include "test_helpers.h"
#include "util/error.h"

namespace nocdr {
namespace {

CdgCycle PaperCycle(const testing::PaperExample& ex) {
  return {ex.c1, ex.c2, ex.c3, ex.c4};
}

TEST(BreakerTest, ForwardBreakAtD1) {
  auto ex = testing::MakePaperExample();
  const auto result =
      BreakCycle(ex.design, PaperCycle(ex), 0, BreakDirection::kForward);
  // D1 = (L1, L2), created by F1 and F4; both entered the cycle at L1,
  // so one duplicate of L1 suffices and is shared.
  EXPECT_EQ(result.added_channels.size(), 1u);
  EXPECT_EQ(result.rerouted_flows, (std::vector<FlowId>{ex.f1, ex.f4}));
  const ChannelId dup = result.added_channels[0];
  EXPECT_EQ(ex.design.topology.ChannelAt(dup).link, ex.l1);
  EXPECT_EQ(ex.design.topology.ChannelAt(dup).vc, 1u);
  // F1 route becomes {L1', L2, L3}; F4 becomes {L1', L2}.
  EXPECT_EQ(ex.design.routes.RouteOf(ex.f1),
            (Route{dup, ex.c2, ex.c3}));
  EXPECT_EQ(ex.design.routes.RouteOf(ex.f4), (Route{dup, ex.c2}));
  // F3 keeps using the original L1.
  EXPECT_EQ(ex.design.routes.RouteOf(ex.f3), (Route{ex.c4, ex.c1}));
  // Design still structurally valid, and the CDG is now acyclic.
  ex.design.Validate();
  EXPECT_TRUE(IsAcyclic(ChannelDependencyGraph::Build(ex.design)));
}

TEST(BreakerTest, ForwardBreakAtD2CostsTwo) {
  auto ex = testing::MakePaperExample();
  const auto result =
      BreakCycle(ex.design, PaperCycle(ex), 1, BreakDirection::kForward);
  // D2 = (L2, L3), created only by F1 which has used L1 and L2: both get
  // duplicated.
  EXPECT_EQ(result.added_channels.size(), 2u);
  EXPECT_EQ(result.rerouted_flows, std::vector<FlowId>{ex.f1});
  const Route& r1 = ex.design.routes.RouteOf(ex.f1);
  ASSERT_EQ(r1.size(), 3u);
  EXPECT_EQ(ex.design.topology.ChannelAt(r1[0]).link, ex.l1);
  EXPECT_EQ(ex.design.topology.ChannelAt(r1[0]).vc, 1u);
  EXPECT_EQ(ex.design.topology.ChannelAt(r1[1]).link, ex.l2);
  EXPECT_EQ(ex.design.topology.ChannelAt(r1[1]).vc, 1u);
  EXPECT_EQ(r1[2], ex.c3);  // the edge target stays original
  ex.design.Validate();
  EXPECT_TRUE(IsAcyclic(ChannelDependencyGraph::Build(ex.design)));
}

TEST(BreakerTest, BackwardBreakAtD2) {
  auto ex = testing::MakePaperExample();
  const auto result =
      BreakCycle(ex.design, PaperCycle(ex), 1, BreakDirection::kBackward);
  // D2 = (L2, L3) backward: duplicate L3 onward for F1.
  EXPECT_EQ(result.added_channels.size(), 1u);
  EXPECT_EQ(result.rerouted_flows, std::vector<FlowId>{ex.f1});
  const Route& r1 = ex.design.routes.RouteOf(ex.f1);
  ASSERT_EQ(r1.size(), 3u);
  EXPECT_EQ(r1[0], ex.c1);
  EXPECT_EQ(r1[1], ex.c2);
  EXPECT_EQ(ex.design.topology.ChannelAt(r1[2]).link, ex.l3);
  EXPECT_EQ(ex.design.topology.ChannelAt(r1[2]).vc, 1u);
  ex.design.Validate();
  EXPECT_TRUE(IsAcyclic(ChannelDependencyGraph::Build(ex.design)));
}

TEST(BreakerTest, BackwardBreakAtD4MatchesPaperFigure3) {
  auto ex = testing::MakePaperExample();
  // The paper's Figure 3/4 modification: F3 re-routed to a new L1'.
  const auto result =
      BreakCycle(ex.design, PaperCycle(ex), 3, BreakDirection::kBackward);
  EXPECT_EQ(result.added_channels.size(), 1u);
  EXPECT_EQ(result.rerouted_flows, std::vector<FlowId>{ex.f3});
  const Route& r3 = ex.design.routes.RouteOf(ex.f3);
  ASSERT_EQ(r3.size(), 2u);
  EXPECT_EQ(r3[0], ex.c4);
  EXPECT_EQ(ex.design.topology.ChannelAt(r3[1]).link, ex.l1);
  EXPECT_EQ(ex.design.topology.ChannelAt(r3[1]).vc, 1u);
  ex.design.Validate();
  EXPECT_TRUE(IsAcyclic(ChannelDependencyGraph::Build(ex.design)));
}

TEST(BreakerTest, SharedDuplicatesAcrossFlows) {
  // Ring where two flows create the same edge from different entries:
  // duplicates must be shared so the VC count equals the max cost.
  auto d = testing::MakeRingDesign(4, 2);
  // Flows: i -> i+2 with routes {ring[i], ring[i+1]}. Edge
  // (ring[1], ring[2]) is created by flow 1 only. Add one more flow with
  // a 3-hop route 0 -> 3 = {ring[0], ring[1], ring[2]}.
  const CoreId src = d.traffic.AddCore();
  const CoreId dst = d.traffic.AddCore();
  d.attachment.push_back(SwitchId(0u));
  d.attachment.push_back(SwitchId(3u));
  const FlowId extra = d.traffic.AddFlow(src, dst, 1.0);
  d.routes.Resize(d.traffic.FlowCount());
  Route long_route;
  for (int h = 0; h < 3; ++h) {
    long_route.push_back(
        *d.topology.FindChannel(LinkId(static_cast<std::uint32_t>(h)), 0));
  }
  d.routes.SetRoute(extra, long_route);
  d.Validate();

  const auto cdg = ChannelDependencyGraph::Build(d);
  auto cycle = SmallestCycle(cdg);
  ASSERT_TRUE(cycle.has_value());
  ASSERT_EQ(cycle->size(), 4u);
  // Identify the position of edge (ring1, ring2) inside the found cycle.
  const ChannelId ring1 = *d.topology.FindChannel(LinkId(1u), 0);
  std::size_t pos = cycle->size();
  for (std::size_t i = 0; i < cycle->size(); ++i) {
    if ((*cycle)[i] == ring1) {
      pos = i;
      break;
    }
  }
  ASSERT_LT(pos, cycle->size());
  const auto result = BreakCycle(d, *cycle, pos, BreakDirection::kForward);
  // Flow 1 entered at ring1 (1 dup); extra flow used ring0 and ring1
  // (2 dups). Shared: ring1's duplicate serves both -> 2 channels total.
  EXPECT_EQ(result.added_channels.size(), 2u);
  EXPECT_EQ(result.rerouted_flows.size(), 2u);
  d.Validate();
}

TEST(BreakerTest, EdgeWithNoFlowsThrows) {
  auto ex = testing::MakePaperExample();
  // Break D1 first; afterwards the pair (c1, c2) no longer exists in any
  // route, so breaking it again must fail loudly.
  BreakCycle(ex.design, PaperCycle(ex), 0, BreakDirection::kForward);
  EXPECT_THROW(
      BreakCycle(ex.design, PaperCycle(ex), 0, BreakDirection::kForward),
      InvalidModelError);
}

TEST(BreakerTest, OutOfRangeEdgeThrows) {
  auto ex = testing::MakePaperExample();
  EXPECT_THROW(
      BreakCycle(ex.design, PaperCycle(ex), 9, BreakDirection::kForward),
      InvalidModelError);
  EXPECT_THROW(BreakCycle(ex.design, {}, 0, BreakDirection::kForward),
               InvalidModelError);
}

TEST(BreakerTest, PhysicalPathPreserved) {
  // Re-routing must only change VCs, never the physical links.
  auto ex = testing::MakePaperExample();
  auto links_of = [&](FlowId f) {
    std::vector<LinkId> links;
    for (ChannelId c : ex.design.routes.RouteOf(f)) {
      links.push_back(ex.design.topology.ChannelAt(c).link);
    }
    return links;
  };
  const auto before1 = links_of(ex.f1);
  const auto before4 = links_of(ex.f4);
  BreakCycle(ex.design, PaperCycle(ex), 0, BreakDirection::kForward);
  EXPECT_EQ(links_of(ex.f1), before1);
  EXPECT_EQ(links_of(ex.f4), before4);
}

}  // namespace
}  // namespace nocdr
