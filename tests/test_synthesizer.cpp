// End-to-end synthesis tests across benchmarks and switch counts.
#include "synth/synthesizer.h"

#include <gtest/gtest.h>

#include "cdg/cdg.h"
#include "cdg/cycle.h"
#include "deadlock/removal.h"
#include "soc/benchmarks.h"

namespace nocdr {
namespace {

class SynthesisSweep
    : public ::testing::TestWithParam<std::tuple<SocBenchmarkId, std::size_t>> {
};

TEST_P(SynthesisSweep, ProducesValidDesign) {
  const auto [id, switches] = GetParam();
  const auto b = MakeBenchmark(id);
  if (switches > b.traffic.CoreCount()) {
    GTEST_SKIP();
  }
  const auto design = SynthesizeDesign(b.traffic, b.name, switches);
  EXPECT_NO_THROW(design.Validate());
  EXPECT_EQ(design.topology.SwitchCount(), switches);
  EXPECT_EQ(design.topology.ExtraVcCount(), 0u) << "synthesis adds no VCs";
}

TEST_P(SynthesisSweep, RemovalAlwaysSucceedsOnSynthesizedDesigns) {
  const auto [id, switches] = GetParam();
  const auto b = MakeBenchmark(id);
  if (switches > b.traffic.CoreCount()) {
    GTEST_SKIP();
  }
  auto design = SynthesizeDesign(b.traffic, b.name, switches);
  const auto report = RemoveDeadlocks(design);
  EXPECT_TRUE(IsDeadlockFree(design));
  design.Validate();
  (void)report;
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, SynthesisSweep,
    ::testing::Combine(::testing::Values(SocBenchmarkId::kD26Media,
                                         SocBenchmarkId::kD36_4,
                                         SocBenchmarkId::kD36_6,
                                         SocBenchmarkId::kD36_8,
                                         SocBenchmarkId::kD35Bot,
                                         SocBenchmarkId::kD38Tvo),
                       ::testing::Values(5u, 10u, 14u, 20u, 25u)));

TEST(SynthesizerTest, DesignNameEncodesSwitchCount) {
  const auto b = MakeBenchmark(SocBenchmarkId::kD26Media);
  const auto design = SynthesizeDesign(b.traffic, b.name, 7);
  EXPECT_EQ(design.name, "D26_media@7sw");
}

TEST(SynthesizerTest, DenseTrafficProducesCyclicCdgSomewhere) {
  // The paper's premise: dense many-to-many traffic on irregular
  // topologies yields deadlock-prone designs. At least one switch count
  // in the sweep must produce a cyclic CDG for D36_8.
  const auto b = MakeBenchmark(SocBenchmarkId::kD36_8);
  bool found_cycle = false;
  for (std::size_t switches = 10; switches <= 35 && !found_cycle;
       switches += 5) {
    const auto design = SynthesizeDesign(b.traffic, b.name, switches);
    found_cycle = !IsAcyclic(ChannelDependencyGraph::Build(design));
  }
  EXPECT_TRUE(found_cycle);
}

TEST(SynthesizerTest, SparseTrafficMostlyAcyclic) {
  // Counterpart of Figure 8's flat solid line: most D26_media designs
  // need no VCs at all.
  const auto b = MakeBenchmark(SocBenchmarkId::kD26Media);
  int acyclic = 0, total = 0;
  for (std::size_t switches = 5; switches <= 25; switches += 2) {
    const auto design = SynthesizeDesign(b.traffic, b.name, switches);
    acyclic += IsAcyclic(ChannelDependencyGraph::Build(design)) ? 1 : 0;
    ++total;
  }
  EXPECT_GE(acyclic * 2, total) << "expected mostly deadlock-free designs";
}

TEST(SynthesizerTest, Deterministic) {
  const auto b = MakeBenchmark(SocBenchmarkId::kD36_4);
  const auto d1 = SynthesizeDesign(b.traffic, b.name, 9);
  const auto d2 = SynthesizeDesign(b.traffic, b.name, 9);
  ASSERT_EQ(d1.topology.LinkCount(), d2.topology.LinkCount());
  for (std::size_t fi = 0; fi < d1.traffic.FlowCount(); ++fi) {
    EXPECT_EQ(d1.routes.RouteOf(FlowId(fi)), d2.routes.RouteOf(FlowId(fi)));
  }
}

}  // namespace
}  // namespace nocdr
