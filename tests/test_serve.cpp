// src/serve: sharded certificate cache, request coalescing and the
// certification service's determinism / backpressure contracts.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "deadlock/verify.h"
#include "gen/generators.h"
#include "noc/io.h"
#include "serve/cert_cache.h"
#include "serve/coalescer.h"
#include "serve/protocol.h"
#include "serve/service.h"
#include "test_helpers.h"
#include "util/canonical.h"
#include "util/error.h"
#include "util/json.h"

namespace nocdr {
namespace {

using serve::CachedCertification;
using serve::CacheConfig;
using serve::CacheOutcome;
using serve::CertificationService;
using serve::CertRequest;
using serve::CertResponse;
using serve::CoalescerConfig;
using serve::RequestCoalescer;
using serve::RequestKind;
using serve::ServeStatus;
using serve::ServiceConfig;
using serve::ShardedCertCache;
using testing::MakePaperExample;
using testing::MakeRandomDesign;
using testing::MakeRingDesign;

CachedCertification MakeValue(const std::string& tag,
                              std::size_t padding = 0) {
  CachedCertification value;
  value.certificate_json = "{\"tag\":\"" + tag + "\"}";
  value.treated_design_text = std::string(padding, 'x');
  value.deadlock_free = true;
  return value;
}

CertRequest TextRequest(const std::string& id, const NocDesign& design) {
  CertRequest request;
  request.id = id;
  request.kind = RequestKind::kDesignText;
  request.design_text = DesignText(design);
  return request;
}

/// Spins until \p predicate holds or ~10 s elapse.
template <typename Predicate>
bool SpinUntil(const Predicate& predicate) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (!predicate()) {
    if (std::chrono::steady_clock::now() > deadline) {
      return false;
    }
    std::this_thread::yield();
  }
  return true;
}

// ---------------------------------------------------------------- cache

TEST(CertCacheTest, InsertLookupRoundTripAndCounters) {
  ShardedCertCache cache(CacheConfig{4, 64, 1 << 20});
  EXPECT_FALSE(cache.Lookup(1, "k1"));
  cache.Insert(1, "k1", MakeValue("a"));
  const auto hit = cache.Lookup(1, "k1");
  ASSERT_TRUE(hit != nullptr);
  EXPECT_EQ(hit->certificate_json, "{\"tag\":\"a\"}");

  const serve::CacheStats stats = cache.Stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.insertions, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_GT(stats.bytes, 0u);
}

TEST(CertCacheTest, DigestCollisionDegradesToMissNeverWrongValue) {
  ShardedCertCache cache(CacheConfig{1, 8, 1 << 20});
  cache.Insert(42, "key_a", MakeValue("a"));
  // Same digest, different key text: must miss, not serve "a".
  EXPECT_FALSE(cache.Lookup(42, "key_b"));
  // The collision insert replaces; the old key then misses.
  cache.Insert(42, "key_b", MakeValue("b"));
  EXPECT_FALSE(cache.Lookup(42, "key_a"));
  const auto hit = cache.Lookup(42, "key_b");
  ASSERT_TRUE(hit != nullptr);
  EXPECT_EQ(hit->certificate_json, "{\"tag\":\"b\"}");
}

TEST(CertCacheTest, LruEvictionRespectsEntryBoundAndRecency) {
  ShardedCertCache cache(CacheConfig{1, 3, 1 << 20});
  cache.Insert(1, "k1", MakeValue("a"));
  cache.Insert(2, "k2", MakeValue("b"));
  cache.Insert(3, "k3", MakeValue("c"));
  // Touch k1 so k2 becomes the LRU victim.
  EXPECT_TRUE(cache.Lookup(1, "k1") != nullptr);
  cache.Insert(4, "k4", MakeValue("d"));

  EXPECT_TRUE(cache.Lookup(1, "k1") != nullptr);
  EXPECT_FALSE(cache.Lookup(2, "k2"));
  EXPECT_TRUE(cache.Lookup(3, "k3") != nullptr);
  EXPECT_TRUE(cache.Lookup(4, "k4") != nullptr);

  const serve::CacheStats stats = cache.Stats();
  EXPECT_EQ(stats.entries, 3u);
  EXPECT_EQ(stats.evictions, 1u);
}

TEST(CertCacheTest, ByteBoundEvictsAndRejectsOversize) {
  // Each padded value is ~1 KiB; the shard budget fits about two.
  ShardedCertCache cache(CacheConfig{1, 100, 2600});
  cache.Insert(1, "k1", MakeValue("a", 1000));
  cache.Insert(2, "k2", MakeValue("b", 1000));
  cache.Insert(3, "k3", MakeValue("c", 1000));
  serve::CacheStats stats = cache.Stats();
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_LE(stats.bytes, 2600u);
  EXPECT_LE(stats.entries, 2u);

  // An entry that alone exceeds the budget is rejected outright and
  // does not wipe the resident entries.
  const std::size_t entries_before = stats.entries;
  cache.Insert(9, "huge", MakeValue("h", 100000));
  stats = cache.Stats();
  EXPECT_EQ(stats.oversize_rejections, 1u);
  EXPECT_EQ(stats.entries, entries_before);
}

TEST(CertCacheTest, RevalidateCountsHitsOnly) {
  ShardedCertCache cache(CacheConfig{1, 8, 1 << 20});
  EXPECT_FALSE(cache.Revalidate(5, "k"));
  serve::CacheStats stats = cache.Stats();
  EXPECT_EQ(stats.misses, 0u);
  cache.Insert(5, "k", MakeValue("v"));
  EXPECT_TRUE(cache.Revalidate(5, "k") != nullptr);
  stats = cache.Stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 0u);
}

// ------------------------------------------------------------ coalescer

TEST(CoalescerTest, ConcurrentDuplicatesShareExactlyOneComputation) {
  constexpr std::size_t kClients = 4;
  RequestCoalescer coalescer(CoalescerConfig{2, 8});
  std::atomic<std::size_t> submitted{0};
  std::atomic<std::size_t> computes{0};

  // The computation refuses to finish until every client has submitted,
  // so all of them are provably in flight together — none can be served
  // by a cache or by a fresh leader after the fact.
  const auto compute = [&]() -> CachedCertification {
    ++computes;
    EXPECT_TRUE(SpinUntil([&] { return submitted.load() == kClients; }));
    return MakeValue("shared");
  };
  const auto probe = []() -> std::optional<CachedCertification> {
    return std::nullopt;
  };
  const auto make_compute = [&]() -> RequestCoalescer::ComputeFn {
    return compute;
  };

  std::vector<RequestCoalescer::Outcome> outcomes(kClients);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (std::size_t i = 0; i < kClients; ++i) {
    clients.emplace_back([&, i] {
      outcomes[i] = coalescer.Submit(99, "same-key", probe, make_compute);
      ++submitted;
    });
  }
  for (std::thread& client : clients) {
    client.join();
  }

  std::size_t leaders = 0;
  for (const auto& outcome : outcomes) {
    ASSERT_TRUE(outcome.kind == RequestCoalescer::Outcome::Kind::kLeader ||
                outcome.kind == RequestCoalescer::Outcome::Kind::kFollower);
    leaders += outcome.kind == RequestCoalescer::Outcome::Kind::kLeader;
    const CachedCertification value = outcome.future.get();
    EXPECT_EQ(value.certificate_json, "{\"tag\":\"shared\"}");
  }
  EXPECT_EQ(leaders, 1u);
  EXPECT_EQ(computes.load(), 1u);
}

TEST(CoalescerTest, ComputeExceptionReachesEveryWaiter) {
  constexpr std::size_t kClients = 3;
  RequestCoalescer coalescer(CoalescerConfig{1, 8});
  std::atomic<std::size_t> submitted{0};
  const auto compute = [&]() -> CachedCertification {
    if (!SpinUntil([&] { return submitted.load() == kClients; })) {
      ADD_FAILURE() << "clients never all submitted";
    }
    throw AlgorithmLimitError("deliberate failure");
  };
  const auto probe = []() -> std::optional<CachedCertification> {
    return std::nullopt;
  };
  const auto make_compute = [&]() -> RequestCoalescer::ComputeFn {
    return compute;
  };

  std::vector<RequestCoalescer::Outcome> outcomes(kClients);
  std::vector<std::thread> clients;
  for (std::size_t i = 0; i < kClients; ++i) {
    clients.emplace_back([&, i] {
      outcomes[i] = coalescer.Submit(7, "poisoned", probe, make_compute);
      ++submitted;
    });
  }
  for (std::thread& client : clients) {
    client.join();
  }
  for (const auto& outcome : outcomes) {
    EXPECT_THROW((void)outcome.future.get(), AlgorithmLimitError);
  }
}

TEST(CoalescerTest, AdmissionBoundRejectsNovelWorkNotFollowers) {
  RequestCoalescer coalescer(CoalescerConfig{1, 1});
  std::atomic<bool> release{false};
  std::atomic<std::size_t> computes{0};
  const auto slow_compute = [&]() -> CachedCertification {
    ++computes;
    EXPECT_TRUE(SpinUntil([&] { return release.load(); }));
    return MakeValue("slow");
  };
  const auto probe = []() -> std::optional<CachedCertification> {
    return std::nullopt;
  };
  const auto make_compute = [&]() -> RequestCoalescer::ComputeFn {
    return slow_compute;
  };

  const auto leader = coalescer.Submit(1, "busy", probe, make_compute);
  ASSERT_EQ(leader.kind, RequestCoalescer::Outcome::Kind::kLeader);

  // A duplicate joins for free while a novel key is turned away.
  const auto follower = coalescer.Submit(1, "busy", probe, make_compute);
  EXPECT_EQ(follower.kind, RequestCoalescer::Outcome::Kind::kFollower);
  const auto rejected = coalescer.Submit(2, "novel", probe, make_compute);
  EXPECT_EQ(rejected.kind, RequestCoalescer::Outcome::Kind::kRejected);

  release = true;
  (void)leader.future.get();
  (void)follower.future.get();
  ASSERT_TRUE(SpinUntil([&] { return coalescer.Pending() == 0; }));

  // Capacity freed: the novel key is admitted now.
  const auto retry = coalescer.Submit(2, "novel", probe, make_compute);
  EXPECT_EQ(retry.kind, RequestCoalescer::Outcome::Kind::kLeader);
  (void)retry.future.get();
  EXPECT_EQ(computes.load(), 2u);
}

// -------------------------------------------------------------- service

TEST(ServiceTest, FlowOrderDoesNotSplitTheCache) {
  CertificationService service;
  const NocDesign design = MakeRandomDesign(3);

  // Reverse the flow declaration order (routes follow).
  NocDesign reversed;
  reversed.name = design.name;
  reversed.topology = design.topology;
  reversed.attachment = design.attachment;
  for (std::size_t c = 0; c < design.traffic.CoreCount(); ++c) {
    reversed.traffic.AddCore(design.traffic.CoreName(CoreId(c)));
  }
  reversed.routes.Resize(design.traffic.FlowCount());
  for (std::size_t f = design.traffic.FlowCount(); f-- > 0;) {
    const Flow& flow = design.traffic.FlowAt(FlowId(f));
    const FlowId nf =
        reversed.traffic.AddFlow(flow.src, flow.dst, flow.bandwidth_mbps);
    reversed.routes.SetRoute(nf, design.routes.RouteOf(FlowId(f)));
  }

  const CertResponse first = service.Serve(TextRequest("a", design));
  const CertResponse second = service.Serve(TextRequest("a", reversed));
  ASSERT_EQ(first.status, ServeStatus::kOk);
  ASSERT_EQ(second.status, ServeStatus::kOk);
  EXPECT_EQ(first.key, second.key);
  EXPECT_EQ(second.cache_outcome, CacheOutcome::kHit);
  EXPECT_EQ(serve::ResponseDigest({first}), serve::ResponseDigest({second}));
}

TEST(ServiceTest, GeneratorSpecAndRenderedTextConverge) {
  CertificationService service;
  gen::GeneratorSpec spec;
  spec.family = gen::TopologyFamily::kTorus2D;
  spec.width = 4;
  spec.height = 4;
  spec.seed = 11;

  CertRequest by_spec;
  by_spec.id = "g";
  by_spec.kind = RequestKind::kGeneratorSpec;
  by_spec.generator = spec;
  const CertResponse first = service.Serve(by_spec);
  ASSERT_EQ(first.status, ServeStatus::kOk);
  EXPECT_EQ(first.cache_outcome, CacheOutcome::kComputed);

  const CertResponse second =
      service.Serve(TextRequest("g", gen::GenerateStandardDesign(spec)));
  ASSERT_EQ(second.status, ServeStatus::kOk);
  EXPECT_EQ(second.cache_outcome, CacheOutcome::kHit);
  EXPECT_EQ(first.key, second.key);
  EXPECT_EQ(serve::ResponseDigest({first}), serve::ResponseDigest({second}));

  // The torus under removal must have been repaired.
  EXPECT_TRUE(first.deadlock_free);
}

TEST(ServiceTest, UntreatedNegativeCertificateIsServedAndCached) {
  CertificationService service;
  CertRequest request = TextRequest("ring", MakeRingDesign(6, 2));
  request.treat = false;

  const CertResponse first = service.Serve(request);
  ASSERT_EQ(first.status, ServeStatus::kOk);
  EXPECT_FALSE(first.deadlock_free);
  EXPECT_EQ(first.vcs_added, 0u);
  const JsonValue certificate = JsonValue::Parse(first.certificate_json);
  EXPECT_FALSE(certificate.At("deadlock_free").AsBool());
  EXPECT_GE(certificate.At("counterexample").Items().size(), 2u);

  const CertResponse second = service.Serve(request);
  EXPECT_EQ(second.cache_outcome, CacheOutcome::kHit);
  EXPECT_EQ(serve::ResponseDigest({first}), serve::ResponseDigest({second}));
}

TEST(ServiceTest, ReturnDesignServesTheRepairedDesign) {
  CertificationService service;
  CertRequest request = TextRequest("ring", MakeRingDesign(6, 2));
  request.return_design = true;
  const CertResponse response = service.Serve(request);
  ASSERT_EQ(response.status, ServeStatus::kOk);
  EXPECT_TRUE(response.deadlock_free);
  EXPECT_GT(response.vcs_added, 0u);
  ASSERT_FALSE(response.treated_design_text.empty());
  // The returned text parses back to a deadlock-free design.
  std::istringstream in(response.treated_design_text);
  const NocDesign repaired = ReadDesign(in);
  EXPECT_TRUE(IsDeadlockFree(repaired));
  EXPECT_EQ(repaired.topology.ChannelCount(), response.channels_after);
}

TEST(ServiceTest, ConcurrentDuplicateRequestsShareOneCertifyRun) {
  constexpr std::size_t kClients = 4;
  std::atomic<std::size_t> responded{0};
  std::atomic<std::size_t> certifier_runs{0};
  ServiceConfig config;
  config.threads = 2;
  CertificationService service(
      config, [&](const NocDesign& canonical, const CertRequest& request) {
        ++certifier_runs;
        // Hold the computation open until every client has *submitted*
        // (the coalescer replies to followers without waiting for
        // completion, so all four must be in flight together).
        EXPECT_TRUE(SpinUntil([&] { return responded.load() == kClients; }));
        return serve::ComputeCertification(canonical, request);
      });

  const CertRequest request = TextRequest("dup", MakeRandomDesign(8));
  std::vector<CertResponse> responses(kClients);
  std::vector<std::thread> clients;
  for (std::size_t i = 0; i < kClients; ++i) {
    clients.emplace_back([&, i] {
      // Count this client as soon as its request is guaranteed to be
      // registered: Serve blocks, so count from a sibling thread is
      // impossible — instead count *before* serving and let the
      // certifier wait for all counts plus the registration race to
      // settle via the coalescer's own registry.
      ++responded;
      responses[i] = service.Serve(request);
    });
  }
  for (std::thread& client : clients) {
    client.join();
  }

  EXPECT_EQ(certifier_runs.load(), 1u);
  std::size_t computed = 0, coalesced = 0, hits = 0;
  for (const CertResponse& response : responses) {
    ASSERT_EQ(response.status, ServeStatus::kOk);
    computed += response.cache_outcome == CacheOutcome::kComputed;
    coalesced += response.cache_outcome == CacheOutcome::kCoalesced;
    hits += response.cache_outcome == CacheOutcome::kHit;
    EXPECT_EQ(serve::ResponseDigest({response}),
              serve::ResponseDigest({responses[0]}));
  }
  EXPECT_EQ(computed, 1u);
  EXPECT_EQ(computed + coalesced + hits, kClients);
  EXPECT_EQ(service.Stats().computations, 1u);
}

TEST(ServiceTest, BackpressureReturnsOverloadedImmediately) {
  std::atomic<bool> release{false};
  std::atomic<bool> computing{false};
  ServiceConfig config;
  config.threads = 1;
  config.max_pending = 1;
  CertificationService service(
      config, [&](const NocDesign& canonical, const CertRequest& request) {
        computing = true;
        EXPECT_TRUE(SpinUntil([&] { return release.load(); }));
        return serve::ComputeCertification(canonical, request);
      });

  const CertRequest busy = TextRequest("busy", MakeRandomDesign(1));
  const CertRequest novel = TextRequest("novel", MakeRandomDesign(2));

  std::thread blocked([&] {
    const CertResponse response = service.Serve(busy);
    EXPECT_EQ(response.status, ServeStatus::kOk);
  });
  ASSERT_TRUE(SpinUntil([&] { return computing.load(); }));

  const CertResponse overloaded = service.Serve(novel);
  EXPECT_EQ(overloaded.status, ServeStatus::kOverloaded);
  EXPECT_EQ(overloaded.cache_outcome, CacheOutcome::kNone);

  release = true;
  blocked.join();
  ASSERT_TRUE(SpinUntil([&] { return service.Stats().pool_backlog == 0; }));

  const CertResponse retry = service.Serve(novel);
  EXPECT_EQ(retry.status, ServeStatus::kOk);
  EXPECT_EQ(service.Stats().rejected, 1u);
}

TEST(ServiceTest, ResponseDigestIsClientThreadCountStable) {
  // Duplicate-heavy batch across all request kinds.
  std::vector<CertRequest> batch;
  const NocDesign a = MakeRandomDesign(4);
  const NocDesign b = MakeRingDesign(8, 2);
  for (int round = 0; round < 6; ++round) {
    batch.push_back(TextRequest("a" + std::to_string(round), a));
    batch.push_back(TextRequest("b" + std::to_string(round), b));
    CertRequest source;
    source.id = "s" + std::to_string(round);
    source.kind = RequestKind::kSourceSeed;
    source.source = valid::DesignSource::kMesh;
    source.seed = 21;
    batch.push_back(source);
  }

  std::optional<std::uint64_t> reference;
  for (const std::size_t clients : {std::size_t{1}, std::size_t{3}}) {
    ServiceConfig config;
    config.threads = 2;
    CertificationService service(config);
    const std::vector<CertResponse> responses =
        service.ServeBatch(batch, clients);
    const serve::ServiceStats stats = service.Stats();
    // Exactly one computation per distinct problem, at any concurrency.
    EXPECT_EQ(stats.computations, 3u) << clients << " clients";
    EXPECT_EQ(stats.requests, batch.size());
    EXPECT_EQ(stats.hits + stats.coalesced + stats.computations,
              batch.size());
    const std::uint64_t digest = serve::ResponseDigest(responses);
    if (reference.has_value()) {
      EXPECT_EQ(digest, *reference) << clients << " clients";
    }
    reference = digest;
  }
}

TEST(ServiceTest, MalformedRequestsAreErrorsAndNeverCached) {
  CertificationService service;
  CertRequest request;
  request.id = "bad";
  request.kind = RequestKind::kDesignText;
  request.design_text = "this is not a design";
  const CertResponse first = service.Serve(request);
  EXPECT_EQ(first.status, ServeStatus::kError);
  EXPECT_EQ(first.error.code, serve::ErrorCode::kInvalidRequest);
  EXPECT_FALSE(first.error.message.empty());
  const CertResponse second = service.Serve(request);
  EXPECT_EQ(second.status, ServeStatus::kError);
  const serve::ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.errors, 2u);
  EXPECT_EQ(stats.computations, 0u);
  EXPECT_EQ(stats.cache.entries, 0u);
}

TEST(ServiceTest, CachedAndRecomputedResponsesAreBitIdentical) {
  const CertRequest request = TextRequest("x", MakeRandomDesign(9));

  ServiceConfig cold_config;
  cold_config.cache_enabled = false;
  CertificationService cold(cold_config);
  const CertResponse recomputed_a = cold.Serve(request);
  const CertResponse recomputed_b = cold.Serve(request);

  CertificationService warm;
  const CertResponse computed = warm.Serve(request);
  const CertResponse hit = warm.Serve(request);
  EXPECT_EQ(hit.cache_outcome, CacheOutcome::kHit);

  const std::uint64_t reference = serve::ResponseDigest({recomputed_a});
  EXPECT_EQ(serve::ResponseDigest({recomputed_b}), reference);
  EXPECT_EQ(serve::ResponseDigest({computed}), reference);
  EXPECT_EQ(serve::ResponseDigest({hit}), reference);
}

// ------------------------------------------------------------- protocol

TEST(ProtocolTest, DesignRequestRoundTrips) {
  CertRequest request = TextRequest("r1", MakePaperExample().design);
  request.treat = false;
  request.return_design = true;
  request.options.cycle_policy = CyclePolicy::kFirstFound;
  request.options.max_iterations = 12;

  const CertRequest parsed =
      serve::ParseRequestLine(serve::RequestToJsonLine(request));
  EXPECT_EQ(parsed.id, "r1");
  EXPECT_EQ(parsed.kind, RequestKind::kDesignText);
  EXPECT_EQ(parsed.design_text, request.design_text);
  EXPECT_FALSE(parsed.treat);
  EXPECT_TRUE(parsed.return_design);
  EXPECT_EQ(parsed.options.cycle_policy, CyclePolicy::kFirstFound);
  EXPECT_EQ(parsed.options.max_iterations, 12u);
}

TEST(ProtocolTest, GeneratorAndSourceRequestsRoundTrip) {
  CertRequest generator;
  generator.id = "g1";
  generator.kind = RequestKind::kGeneratorSpec;
  generator.generator.family = gen::TopologyFamily::kFatTree;
  generator.generator.tree_arity = 3;
  generator.generator.pattern = gen::TrafficPattern::kHotspot;
  generator.generator.hotspot_fraction = 0.5;
  generator.generator.seed = 99;
  CertRequest parsed =
      serve::ParseRequestLine(serve::RequestToJsonLine(generator));
  EXPECT_EQ(parsed.kind, RequestKind::kGeneratorSpec);
  EXPECT_EQ(parsed.generator.family, gen::TopologyFamily::kFatTree);
  EXPECT_EQ(parsed.generator.tree_arity, 3u);
  EXPECT_EQ(parsed.generator.pattern, gen::TrafficPattern::kHotspot);
  EXPECT_DOUBLE_EQ(parsed.generator.hotspot_fraction, 0.5);
  EXPECT_EQ(parsed.generator.seed, 99u);

  CertRequest source;
  source.id = "s1";
  source.kind = RequestKind::kSourceSeed;
  source.source = valid::DesignSource::kTorus;
  source.seed = 1234567890123456789ull;
  parsed = serve::ParseRequestLine(serve::RequestToJsonLine(source));
  EXPECT_EQ(parsed.kind, RequestKind::kSourceSeed);
  EXPECT_EQ(parsed.source, valid::DesignSource::kTorus);
  EXPECT_EQ(parsed.seed, 1234567890123456789ull);
}

TEST(ProtocolTest, RejectsAmbiguousEmptyAndUnknown) {
  EXPECT_THROW((void)serve::ParseRequestLine("{}"), InvalidModelError);
  EXPECT_THROW((void)serve::ParseRequestLine(
                   R"({"design":"noc x","source":"mesh","seed":1})"),
               InvalidModelError);
  EXPECT_THROW((void)serve::ParseRequestLine(R"({"source":"nope","seed":1})"),
               InvalidModelError);
  EXPECT_THROW((void)serve::ParseRequestLine(
                   R"({"source":"mesh","seed":1,"options":{"engine":"warp"}})"),
               InvalidModelError);
  EXPECT_THROW((void)serve::ParseRequestLine("not json"), InvalidModelError);
}

TEST(ProtocolTest, ResponseLineEmbedsTheCertificate) {
  CertificationService service;
  CertRequest request = TextRequest("r", MakeRingDesign(5, 2));
  request.return_design = true;
  const CertResponse response = service.Serve(request);
  ASSERT_EQ(response.status, ServeStatus::kOk);

  const JsonValue line =
      JsonValue::Parse(serve::ResponseToJsonLine(response));
  EXPECT_EQ(line.At("id").AsString(), "r");
  EXPECT_EQ(line.At("status").AsString(), "ok");
  EXPECT_EQ(line.At("cache").AsString(), "computed");
  EXPECT_EQ(line.At("key").AsUint(), response.key);
  EXPECT_TRUE(line.At("deadlock_free").AsBool());
  EXPECT_EQ(line.At("vcs_added").AsUint(), response.vcs_added);
  // The certificate is a real nested object, parseable on its own.
  EXPECT_EQ(line.At("certificate").kind(), JsonValue::Kind::kObject);
  const DeadlockCertificate certificate = CertificateFromJson(
      response.certificate_json);
  EXPECT_TRUE(certificate.deadlock_free);
  // The embedded treated design parses.
  std::istringstream in(line.At("design").AsString());
  (void)ReadDesign(in);
}

TEST(ProtocolTest, StatsRequestRoundTripsThroughTheCodec) {
  serve::StatsRequest request;
  request.id = "s1";
  const std::string line = serve::StatsRequestToJsonLine(request);
  const serve::ServeMessage message = serve::ParseMessageLine(line);
  EXPECT_TRUE(message.is_stats);
  EXPECT_FALSE(message.is_session);
  EXPECT_EQ(message.stats.id, "s1");
  EXPECT_EQ(message.stats.protocol_version, serve::kProtocolV2);
  // v1 must not grow a stats type silently.
  EXPECT_THROW((void)serve::ParseMessageLine(R"({"type":"stats"})"),
               InvalidModelError);
}

TEST(ProtocolTest, StatsResponseReportsEveryTierThroughTheRealDispatcher) {
  CertificationService service;
  serve::SessionService sessions(service);
  serve::ServeDispatcher dispatcher(service, sessions);
  // Work the service so the counters are nonzero: one computation, one
  // warm hit.
  const std::string certify =
      serve::RequestToJsonLine(TextRequest("r1", MakeRingDesign(5, 2)));
  (void)dispatcher.HandleLine(certify);
  (void)dispatcher.HandleLine(certify);

  const std::string response = dispatcher.HandleLine(
      R"({"protocol_version":2,"type":"stats","id":"s1"})");
  const JsonValue json = JsonValue::Parse(response);
  EXPECT_EQ(json.At("type").AsString(), "stats");
  EXPECT_EQ(json.At("id").AsString(), "s1");
  EXPECT_EQ(json.At("status").AsString(), "ok");

  // The JSON must agree with the in-process stats structs exactly.
  const serve::ServiceStats stats = service.Stats();
  EXPECT_EQ(json.At("requests").AsUint(), stats.requests);
  EXPECT_EQ(json.At("hits").AsUint(), stats.hits);
  EXPECT_EQ(json.At("computations").AsUint(), stats.computations);
  EXPECT_EQ(json.At("cache").At("entries").AsUint(), stats.cache.entries);
  EXPECT_EQ(json.At("cache").At("insertions").AsUint(),
            stats.cache.insertions);
  EXPECT_EQ(json.At("front").At("hits").AsUint(), stats.front.hits);
  // Memory-only service: the disk tier reports, as all-zero.
  EXPECT_EQ(json.At("disk").At("entries").AsUint(), 0u);
  EXPECT_EQ(json.At("sessions").At("opened").AsUint(), 0u);
  EXPECT_EQ(json.At("admission_classes").kind(), JsonValue::Kind::kArray);

  // The operator text renders from this same JSON (drift-proof by
  // construction) and carries the load-bearing numbers.
  const std::string text = serve::StatsTextFromJson(response, "serve: ");
  EXPECT_NE(text.find(std::to_string(stats.requests) + " requests"),
            std::string::npos);
  EXPECT_NE(text.find(std::to_string(stats.hits) + " hits"),
            std::string::npos);
  EXPECT_NE(text.find("serve: sessions:"), std::string::npos);
  // A certify response is not a stats line.
  EXPECT_THROW((void)serve::StatsTextFromJson(certify, ""),
               serve::ProtocolError);
}

}  // namespace
}  // namespace nocdr
