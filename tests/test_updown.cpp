// Unit tests for the up*/down* turn-prohibition baseline.
#include "deadlock/updown.h"

#include <gtest/gtest.h>

#include "deadlock/removal.h"
#include "soc/benchmarks.h"
#include "synth/synthesizer.h"
#include "test_helpers.h"

namespace nocdr {
namespace {

TEST(UpDownTest, InfeasibleOnUnidirectionalRing) {
  // The paper's critique of turn prohibition: it needs bidirectional
  // links. A unidirectional ring has none.
  auto d = testing::MakeRingDesign(4, 2);
  EXPECT_THROW(ApplyUpDownRouting(d), TurnProhibitionInfeasibleError);
}

TEST(UpDownTest, AcyclicOnBidirectionalRing) {
  // Bidirectional ring: up*/down* must succeed and the CDG must be
  // acyclic with zero added channels.
  NocDesign d;
  std::vector<SwitchId> sw;
  for (int i = 0; i < 6; ++i) {
    sw.push_back(d.topology.AddSwitch());
  }
  for (int i = 0; i < 6; ++i) {
    d.topology.AddLink(sw[i], sw[(i + 1) % 6]);
    d.topology.AddLink(sw[(i + 1) % 6], sw[i]);
  }
  std::vector<CoreId> cores;
  for (int i = 0; i < 6; ++i) {
    cores.push_back(d.traffic.AddCore());
    d.attachment.push_back(sw[i]);
  }
  d.routes.Resize(0);
  for (int i = 0; i < 6; ++i) {
    d.traffic.AddFlow(cores[i], cores[(i + 2) % 6], 10.0);
  }
  d.routes.Resize(d.traffic.FlowCount());
  // Seed with direct clockwise routes (which would be cyclic).
  for (std::size_t i = 0; i < 6; ++i) {
    Route r;
    for (std::size_t h = 0; h < 2; ++h) {
      const SwitchId from = sw[(i + h) % 6];
      const SwitchId to = sw[(i + h + 1) % 6];
      r.push_back(*d.topology.FindChannel(*d.topology.FindLink(from, to), 0));
    }
    d.routes.SetRoute(FlowId(i), r);
  }
  d.Validate();

  const std::size_t channels_before = d.topology.ChannelCount();
  const auto report = ApplyUpDownRouting(d);
  EXPECT_TRUE(IsDeadlockFree(d));
  EXPECT_EQ(d.topology.ChannelCount(), channels_before);  // no resources
  EXPECT_GE(report.HopInflation(), 1.0);  // tree routing can't be shorter
  d.Validate();
}

TEST(UpDownTest, WorksOnSynthesizedTreeOnlyTopologies) {
  // With shortcut_factor = 0 the synthesizer emits a bidirectional tree:
  // up*/down* is always feasible there.
  const auto b = MakeBenchmark(SocBenchmarkId::kD36_6);
  SynthesisOptions options;
  options.topology.shortcut_factor = 0.0;
  auto d = SynthesizeDesign(b.traffic, b.name, 12, options);
  const auto report = ApplyUpDownRouting(d);
  EXPECT_TRUE(IsDeadlockFree(d));
  EXPECT_EQ(d.topology.ExtraVcCount(), 0u);
  // On a tree, the unique path is already up-then-down, so hop counts
  // are identical.
  EXPECT_EQ(report.hops_before, report.hops_after);
}

TEST(UpDownTest, HopInflationOnRichTopologies) {
  // With shortcuts available to the original router but forbidden to the
  // tree discipline, up*/down* pays in hops — the cost the paper's
  // method avoids.
  const auto b = MakeBenchmark(SocBenchmarkId::kD36_8);
  SynthesisOptions options;
  options.topology.shortcut_factor = 2.0;
  auto d = SynthesizeDesign(b.traffic, b.name, 12, options);
  const auto report = ApplyUpDownRouting(d);
  EXPECT_TRUE(IsDeadlockFree(d));
  EXPECT_GT(report.HopInflation(), 1.0);
}

TEST(UpDownTest, LocalFlowsKeepEmptyRoutes) {
  NocDesign d;
  const SwitchId a = d.topology.AddSwitch(), b = d.topology.AddSwitch();
  d.topology.AddLink(a, b);
  d.topology.AddLink(b, a);
  const CoreId x = d.traffic.AddCore(), y = d.traffic.AddCore();
  d.attachment = {a, a};
  d.traffic.AddFlow(x, y, 5.0);
  d.routes.Resize(1);
  d.Validate();
  ApplyUpDownRouting(d);
  EXPECT_TRUE(d.routes.RouteOf(FlowId(0u)).empty());
}

class UpDownSweep : public ::testing::TestWithParam<SocBenchmarkId> {};

TEST_P(UpDownSweep, TreeTopologiesAlwaysFeasibleAndAcyclic) {
  const auto b = MakeBenchmark(GetParam());
  SynthesisOptions options;
  options.topology.shortcut_factor = 0.0;
  for (std::size_t switches : {6u, 10u, 14u}) {
    auto d = SynthesizeDesign(b.traffic, b.name, switches, options);
    ApplyUpDownRouting(d);
    EXPECT_TRUE(IsDeadlockFree(d)) << b.name << "@" << switches;
    d.Validate();
  }
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, UpDownSweep,
                         ::testing::Values(SocBenchmarkId::kD26Media,
                                           SocBenchmarkId::kD36_8,
                                           SocBenchmarkId::kD35Bot,
                                           SocBenchmarkId::kD38Tvo));

}  // namespace
}  // namespace nocdr
