// Cross-module integration tests: benchmark -> synthesis -> deadlock
// handling -> power model -> wormhole simulation.
#include <gtest/gtest.h>

#include "cdg/cdg.h"
#include "cdg/cycle.h"
#include "deadlock/removal.h"
#include "deadlock/resource_ordering.h"
#include "power/model.h"
#include "sim/simulator.h"
#include "soc/benchmarks.h"
#include "synth/synthesizer.h"

namespace nocdr {
namespace {

SimConfig StressConfig() {
  SimConfig cfg;
  cfg.traffic.mode = InjectionMode::kFixedCount;
  cfg.traffic.packets_per_flow = 3;
  cfg.traffic.packet_length = 8;
  cfg.buffer_depth = 2;
  cfg.max_cycles = 400000;
  cfg.stall_threshold = 3000;
  return cfg;
}

class PipelineSweep : public ::testing::TestWithParam<SocBenchmarkId> {};

TEST_P(PipelineSweep, RemovalThenSimulationCompletes) {
  const auto b = MakeBenchmark(GetParam());
  auto design = SynthesizeDesign(b.traffic, b.name, 12);
  RemoveDeadlocks(design);
  ASSERT_TRUE(IsDeadlockFree(design));
  const auto result = SimulateWorkload(design, StressConfig());
  EXPECT_FALSE(result.deadlocked) << b.name;
  EXPECT_TRUE(result.AllDelivered()) << b.name;
}

TEST_P(PipelineSweep, ResourceOrderingThenSimulationCompletes) {
  const auto b = MakeBenchmark(GetParam());
  auto design = SynthesizeDesign(b.traffic, b.name, 12);
  ApplyResourceOrdering(design);
  ASSERT_TRUE(IsDeadlockFree(design));
  const auto result = SimulateWorkload(design, StressConfig());
  EXPECT_FALSE(result.deadlocked) << b.name;
  EXPECT_TRUE(result.AllDelivered()) << b.name;
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, PipelineSweep,
                         ::testing::Values(SocBenchmarkId::kD26Media,
                                           SocBenchmarkId::kD36_4,
                                           SocBenchmarkId::kD36_6,
                                           SocBenchmarkId::kD36_8,
                                           SocBenchmarkId::kD35Bot,
                                           SocBenchmarkId::kD38Tvo));

TEST(IntegrationTest, DeadlockProneDesignFreezesWithoutTreatment) {
  // Find a synthesized design with a cyclic CDG and demonstrate the
  // freeze in simulation — the experiment motivating the whole paper.
  const auto b = MakeBenchmark(SocBenchmarkId::kD36_8);
  bool demonstrated = false;
  for (std::size_t switches : {10u, 14u, 18u, 22u, 26u, 30u}) {
    auto design = SynthesizeDesign(b.traffic, b.name, switches);
    if (IsAcyclic(ChannelDependencyGraph::Build(design))) {
      continue;
    }
    const auto result = SimulateWorkload(design, StressConfig());
    if (result.deadlocked) {
      demonstrated = true;
      break;
    }
  }
  EXPECT_TRUE(demonstrated)
      << "no cyclic-CDG design actually deadlocked under stress";
}

TEST(IntegrationTest, RemovalBeatsOrderingOnVcCountAcrossSuite) {
  // Aggregate comparison backing the paper's 88% claim: over the whole
  // suite at 14 switches the removal algorithm must add far fewer VCs.
  std::size_t removal_total = 0, ordering_total = 0;
  for (auto id : AllBenchmarkIds()) {
    const auto b = MakeBenchmark(id);
    auto removal_design = SynthesizeDesign(b.traffic, b.name, 14);
    auto ordering_design = removal_design;
    removal_total += RemoveDeadlocks(removal_design).vcs_added;
    ordering_total += ApplyResourceOrdering(ordering_design).vcs_added;
  }
  EXPECT_LT(removal_total, ordering_total);
  // "Large reduction": at least half, on aggregate.
  EXPECT_LE(removal_total * 2, ordering_total);
}

TEST(IntegrationTest, RemovalPowerOverheadIsSmall) {
  // The paper: < 5% power overhead vs. the untreated design, on average
  // across the suite (individual dense designs may pay slightly more).
  double before_sum = 0.0, after_sum = 0.0;
  for (auto id : AllBenchmarkIds()) {
    const auto b = MakeBenchmark(id);
    auto design = SynthesizeDesign(b.traffic, b.name, 14);
    const double before = EstimatePowerArea(design).TotalPowerMw();
    RemoveDeadlocks(design);
    const double after = EstimatePowerArea(design).TotalPowerMw();
    EXPECT_LE(after, before * 1.10) << b.name;
    before_sum += before;
    after_sum += after;
  }
  EXPECT_LE(after_sum, before_sum * 1.05);
}

TEST(IntegrationTest, BothMethodsPreservePhysicalRoutes) {
  const auto b = MakeBenchmark(SocBenchmarkId::kD36_6);
  const auto original = SynthesizeDesign(b.traffic, b.name, 14);
  auto removal_design = original;
  auto ordering_design = original;
  RemoveDeadlocks(removal_design);
  ApplyResourceOrdering(ordering_design);
  for (std::size_t fi = 0; fi < original.traffic.FlowCount(); ++fi) {
    const FlowId f(fi);
    const Route& base = original.routes.RouteOf(f);
    for (const NocDesign* d : {&removal_design, &ordering_design}) {
      const Route& modified = d->routes.RouteOf(f);
      ASSERT_EQ(modified.size(), base.size());
      for (std::size_t h = 0; h < base.size(); ++h) {
        EXPECT_EQ(d->topology.ChannelAt(modified[h]).link,
                  original.topology.ChannelAt(base[h]).link);
      }
    }
  }
}

TEST(IntegrationTest, LatencyComparableAfterRemoval) {
  // Removal must not degrade the delivered workload: same packets, same
  // physical hops, so latency stays in the same ballpark on a light
  // Bernoulli load.
  const auto b = MakeBenchmark(SocBenchmarkId::kD26Media);
  auto design = SynthesizeDesign(b.traffic, b.name, 10);
  RemoveDeadlocks(design);
  SimConfig cfg;
  cfg.traffic.mode = InjectionMode::kBernoulli;
  cfg.traffic.reference_injection_rate = 0.002;
  cfg.traffic.packet_length = 4;
  cfg.max_cycles = 20000;
  const auto result = SimulateWorkload(design, cfg);
  EXPECT_FALSE(result.deadlocked);
  EXPECT_GT(result.packets_delivered, 0u);
  EXPECT_LT(result.avg_packet_latency, 200.0);
}

}  // namespace
}  // namespace nocdr
